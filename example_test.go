package xdaq_test

import (
	"context"
	"errors"
	"fmt"
	"time"

	"xdaq"
)

// Example shows the complete life of a two-node cluster: connect, plug a
// device class, discover it remotely, call it.
func Example() {
	a, _ := xdaq.NewNode(xdaq.NodeOptions{Name: "a", Node: 1, Logf: func(string, ...any) {}})
	b, _ := xdaq.NewNode(xdaq.NodeOptions{Name: "b", Node: 2, Logf: func(string, ...any) {}})
	defer a.Close()
	defer b.Close()
	if err := xdaq.Connect(xdaq.Loopback(), xdaq.Nodes(a, b)); err != nil {
		fmt.Println(err)
		return
	}

	echo := xdaq.NewDevice("echo", 0)
	echo.Bind(1, func(ctx *xdaq.Context, m *xdaq.Message) error {
		return xdaq.ReplyIfExpected(ctx, m, m.Payload)
	})
	if _, err := b.Plug(echo); err != nil {
		fmt.Println(err)
		return
	}

	target, _ := a.Discover(2, "echo", 0)
	reply, _ := a.CallContext(context.Background(), target, 1, []byte("ping"))
	fmt.Printf("%s\n", reply)
	// Output: ping
}

// ExampleNode_CallContext shows the typed error surface of the request
// path: a context deadline turns into ErrTimeout, classified with
// errors.Is rather than string matching.  A peer declared dead by the
// health monitor would surface as ErrPeerDown the same way.
func ExampleNode_CallContext() {
	a, _ := xdaq.NewNode(xdaq.NodeOptions{Name: "a", Node: 1, Logf: func(string, ...any) {}})
	b, _ := xdaq.NewNode(xdaq.NodeOptions{Name: "b", Node: 2, Logf: func(string, ...any) {}})
	defer a.Close()
	defer b.Close()
	_ = xdaq.Connect(xdaq.Loopback(), xdaq.Nodes(a, b))

	// A device that accepts the request but never answers it.
	tarpit := xdaq.NewDevice("tarpit", 0)
	block := make(chan struct{})
	defer close(block)
	tarpit.Bind(1, func(ctx *xdaq.Context, m *xdaq.Message) error {
		<-block
		return nil
	})
	b.Plug(tarpit)

	target, _ := a.Discover(2, "tarpit", 0)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := a.CallContext(ctx, target, 1, []byte("anyone home?"))
	switch {
	case errors.Is(err, xdaq.ErrPeerDown):
		fmt.Println("peer is down")
	case errors.Is(err, xdaq.ErrTimeout):
		fmt.Println("request timed out")
	case err == nil:
		fmt.Println("unexpected reply")
	}
	// Output: request timed out
}

// ExampleJoin shows the multi-process deployment path: each Join call
// here would normally live in its own OS process (see cmd/xdaqd).  The
// first process seeds the cluster; later ones rendezvous at any live
// member's listen address, exchange TiD tables, and converge on the same
// membership.
func ExampleJoin() {
	ctx := context.Background()
	seed, err := xdaq.Join(ctx, xdaq.ClusterConfig{
		Node: xdaq.NodeOptions{Name: "seed", Node: 1, Logf: func(string, ...any) {}},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer seed.Close()

	echo := xdaq.NewDevice("echo", 0)
	echo.Bind(1, func(ctx *xdaq.Context, m *xdaq.Message) error {
		return xdaq.ReplyIfExpected(ctx, m, m.Payload)
	})
	seed.Node().Plug(echo)

	worker, err := xdaq.Join(ctx, xdaq.ClusterConfig{
		Node: xdaq.NodeOptions{Name: "worker", Node: 2, Logf: func(string, ...any) {}},
		Seed: seed.Listener().Addr(),
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer worker.Close()

	worker.WaitReady(ctx, 2)
	fmt.Println("members:", len(worker.Members()))

	// The join exchange carried the seed's device table: Resolve finds
	// the echo proxy with no Discover round trip.
	target, _ := worker.Node().Resolve("echo", 0, 1)
	reply, _ := worker.Node().Call(target, 1, []byte("over the wire"))
	fmt.Printf("%s\n", reply)
	// Output:
	// members: 2
	// over the wire
}

// ExampleNode_Send shows fire-and-forget messaging: no reply is expected,
// the frame is dispatched to the bound handler and that is all.
func ExampleNode_Send() {
	n, _ := xdaq.NewNode(xdaq.NodeOptions{Name: "solo", Node: 1, Logf: func(string, ...any) {}})
	defer n.Close()

	done := make(chan string, 1)
	sink := xdaq.NewDevice("sink", 0)
	sink.Bind(7, func(ctx *xdaq.Context, m *xdaq.Message) error {
		done <- string(m.Payload)
		return nil
	})
	id, _ := n.Plug(sink)

	_ = n.Send(id, 7, []byte("datagram"))
	fmt.Println(<-done)
	// Output: datagram
}
