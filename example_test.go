package xdaq_test

import (
	"fmt"

	"xdaq"
)

// Example shows the complete life of a two-node cluster: connect, plug a
// device class, discover it remotely, call it.
func Example() {
	a, _ := xdaq.NewNode(xdaq.NodeOptions{Name: "a", Node: 1, Logf: func(string, ...any) {}})
	b, _ := xdaq.NewNode(xdaq.NodeOptions{Name: "b", Node: 2, Logf: func(string, ...any) {}})
	defer a.Close()
	defer b.Close()
	if err := xdaq.ConnectLoopback(a, b); err != nil {
		fmt.Println(err)
		return
	}

	echo := xdaq.NewDevice("echo", 0)
	echo.Bind(1, func(ctx *xdaq.Context, m *xdaq.Message) error {
		return xdaq.ReplyIfExpected(ctx, m, m.Payload)
	})
	if _, err := b.Plug(echo); err != nil {
		fmt.Println(err)
		return
	}

	target, _ := a.Discover(2, "echo", 0)
	reply, _ := a.Call(target, 1, []byte("ping"))
	fmt.Printf("%s\n", reply)
	// Output: ping
}

// ExampleNode_Send shows fire-and-forget messaging: no reply is expected,
// the frame is dispatched to the bound handler and that is all.
func ExampleNode_Send() {
	n, _ := xdaq.NewNode(xdaq.NodeOptions{Name: "solo", Node: 1, Logf: func(string, ...any) {}})
	defer n.Close()

	done := make(chan string, 1)
	sink := xdaq.NewDevice("sink", 0)
	sink.Bind(7, func(ctx *xdaq.Context, m *xdaq.Message) error {
		done <- string(m.Payload)
		return nil
	})
	id, _ := n.Plug(sink)

	_ = n.Send(id, 7, []byte("datagram"))
	fmt.Println(<-done)
	// Output: datagram
}
