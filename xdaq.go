// Package xdaq is the public face of the XDAQ toolkit: a Go reproduction
// of "Architectural Software Support for Processing Clusters" (Gutleber et
// al., IEEE CLUSTER 2000) — the I2O-based distributed data acquisition
// framework developed at CERN for the CMS experiment.
//
// The model in one paragraph: every node in the processing cluster is an
// I2O I/O processor running an executive.  Applications are device
// classes — bundles of handlers for private I2O messages — addressed by
// node-local Target IDs (TiDs).  Remote devices appear behind local proxy
// TiDs, so callers never know whether a call is redirected (transparency
// of location).  Frames are scheduled through seven priority FIFOs and
// dispatched round-robin per device; payloads live in reference-counted
// buffer pool blocks for zero-copy operation; peer transports (simulated
// Myrinet/GM, TCP, in-process loopback, simulated PCI message units) carry
// frames between nodes under a Peer Transport Agent.
//
// Quick start:
//
//	a, _ := xdaq.NewNode(xdaq.NodeOptions{Name: "a", Node: 1})
//	b, _ := xdaq.NewNode(xdaq.NodeOptions{Name: "b", Node: 2})
//	defer a.Close()
//	defer b.Close()
//	xdaq.Connect(xdaq.Loopback(), xdaq.Nodes(a, b))
//
//	echo := xdaq.NewDevice("echo", 0)
//	echo.Bind(1, func(ctx *xdaq.Context, m *xdaq.Message) error {
//	    return xdaq.ReplyIfExpected(ctx, m, m.Payload)
//	})
//	b.Plug(echo)
//
//	target, _ := a.Discover(2, "echo", 0)
//	reply, _ := a.CallContext(context.Background(), target, 1, []byte("ping"))
//	fmt.Printf("%s\n", reply) // "ping"
//
// Fault tolerance: Connect accepts a WithRetry policy for transient
// transport errors, and Node.StartHealth runs a peer liveness monitor
// that fails routes over to a backup fabric or turns a dead peer's
// requests into fast ErrPeerDown returns.  See doc/fault-tolerance.md.
package xdaq

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"xdaq/internal/device"
	"xdaq/internal/executive"
	"xdaq/internal/health"
	"xdaq/internal/i2o"
	"xdaq/internal/pool"
	"xdaq/internal/pta"
)

// Re-exported core types.  The type aliases make the internal packages'
// documented APIs available to library users through one import.
type (
	// Message is one I2O message frame.
	Message = i2o.Message

	// TID is a node-local target identifier.
	TID = i2o.TID

	// NodeID identifies one IOP in the cluster.
	NodeID = i2o.NodeID

	// Priority is a frame scheduling level (0 most urgent, 7 levels).
	Priority = i2o.Priority

	// Param is a typed device parameter.
	Param = i2o.Param

	// Device is one device-class instance.
	Device = device.Device

	// Context gives handlers access to executive services.
	Context = device.Context

	// Handler processes one frame addressed to a device.
	Handler = device.Handler

	// Executive is the per-node runtime.
	Executive = executive.Executive
)

// Re-exported constants.
const (
	TIDExecutive = i2o.TIDExecutive

	PriorityUrgent  = i2o.PriorityUrgent
	PriorityHigh    = i2o.PriorityHigh
	PriorityNormal  = i2o.PriorityNormal
	PriorityLow     = i2o.PriorityLow
	PriorityBulk    = i2o.PriorityBulk
	PriorityDefault = i2o.PriorityDefault
)

// NewDevice creates a device-class instance; bind private handlers with
// Bind, then plug it into a node.
func NewDevice(class string, instance int) *Device { return device.New(class, instance) }

// ReplyIfExpected sends a success reply carrying payload when the request
// asked for one.
func ReplyIfExpected(ctx *Context, req *Message, payload []byte) error {
	return device.ReplyIfExpected(ctx, req, payload)
}

// NodeOptions configures a Node.
type NodeOptions struct {
	// Name tags logs and status reports.
	Name string

	// Node is the IOP identity; must be unique in the cluster.
	Node NodeID

	// Allocator selects the buffer pool scheme: "table" (default, the
	// paper's optimized allocator) or "fixed" (the original scheme).
	Allocator string

	// QueueCapacity bounds the inbound scheduler (0 = unbounded).
	QueueCapacity int

	// RequestTimeout bounds synchronous calls (default 5s).
	RequestTimeout time.Duration

	// Watchdog bounds handler run time (0 = disabled, the fast path).
	Watchdog time.Duration

	// Dispatchers is the number of parallel dispatch workers (0 or 1 = the
	// paper's single loop of control).  N > 1 dispatches distinct devices
	// on distinct cores while keeping per-device FIFO order and
	// at-most-one-in-flight per device, so handlers need no new locking.
	// Also settable per Connect call via WithDispatchers.
	Dispatchers int

	// DispatchBatch caps frames drained from the scheduler per lock
	// acquisition (0 = 1: full priority preemption and slow-device
	// isolation; larger batches trade those for scheduler-lock
	// amortization).
	DispatchBatch int

	// Logf sinks diagnostics (default: standard logger).
	Logf func(format string, args ...any)
}

// Node is one cluster member: an executive plus its peer transport agent.
type Node struct {
	// Exec is the underlying executive, exposed for advanced use
	// (AllocMessage, timers, the address table).
	Exec *Executive

	// Agent is the peer transport agent.
	Agent *pta.Agent

	health atomic.Pointer[health.Monitor]
}

// NewNode builds and starts a node.
func NewNode(opts NodeOptions) (*Node, error) {
	var alloc pool.Allocator
	switch opts.Allocator {
	case "", "table":
		alloc = pool.NewTable(0)
	case "fixed":
		var err error
		alloc, err = pool.NewFixed(pool.DefaultFixedClasses())
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("xdaq: unknown allocator %q (want table or fixed)", opts.Allocator)
	}
	e := executive.New(executive.Options{
		Name:           opts.Name,
		Node:           opts.Node,
		Allocator:      alloc,
		QueueCapacity:  opts.QueueCapacity,
		RequestTimeout: opts.RequestTimeout,
		Watchdog:       opts.Watchdog,
		Dispatchers:    opts.Dispatchers,
		DispatchBatch:  opts.DispatchBatch,
		Logf:           opts.Logf,
	})
	agent, err := pta.New(e)
	if err != nil {
		e.Close()
		return nil, err
	}
	return &Node{Exec: e, Agent: agent}, nil
}

// Close shuts the node down: the health monitor first, then the
// transports, then the executive.
func (n *Node) Close() {
	if mon := n.health.Swap(nil); mon != nil {
		mon.Close()
	}
	n.Agent.Close()
	n.Exec.Close()
}

// Plug registers a device module and returns its TiD.
func (n *Node) Plug(d *Device) (TID, error) { return n.Exec.Plug(d) }

// Unplug removes a device module.
func (n *Node) Unplug(id TID) error { return n.Exec.Unplug(id) }

// Discover resolves (class, instance) on a remote node, creating a local
// proxy TiD for it.
func (n *Node) Discover(node NodeID, class string, instance int) (TID, error) {
	return n.Exec.Discover(node, class, instance)
}

// Resolve returns the local TiD for a known device (local, or a proxy
// created earlier).
func (n *Node) Resolve(class string, instance int, node NodeID) (TID, error) {
	return n.Exec.Resolve(class, instance, node)
}

// Send delivers a fire-and-forget private frame to target.
func (n *Node) Send(target TID, xfunc uint16, payload []byte) error {
	m, err := n.message(target, xfunc, payload)
	if err != nil {
		return err
	}
	return n.Exec.Send(m)
}

// Call sends a private frame to target and returns the reply payload,
// bounded by the node's default request timeout.  It is CallContext with
// a background context.
func (n *Node) Call(target TID, xfunc uint16, payload []byte) ([]byte, error) {
	return n.CallContext(context.Background(), target, xfunc, payload)
}

// CallContext sends a private frame to target and returns the reply
// payload.  The context's deadline bounds the call (falling back to the
// node's request timeout when it has none) and cancelling it abandons the
// call immediately — the frame's buffer is released and the pending reply
// slot is torn down.  Failures wrap the package sentinels: ErrPeerDown,
// ErrTimeout, ErrNoRoute, ErrQueueFull.
//
// The reply's buffer is released before returning; use Exec.RequestContext
// directly to keep zero-copy access to the reply.
func (n *Node) CallContext(ctx context.Context, target TID, xfunc uint16, payload []byte) ([]byte, error) {
	m, err := n.message(target, xfunc, payload)
	if err != nil {
		return nil, err
	}
	rep, err := n.Exec.RequestContext(ctx, m)
	if err != nil {
		return nil, err
	}
	out := append([]byte(nil), rep.Payload...)
	rep.Recycle()
	return out, nil
}

// message builds a private frame with a pool-backed payload.
func (n *Node) message(target TID, xfunc uint16, payload []byte) (*Message, error) {
	m, err := n.Exec.AllocMessage(len(payload))
	if err != nil {
		return nil, err
	}
	copy(m.Payload, payload)
	m.Target = target
	m.Initiator = TIDExecutive
	m.XFunction = xfunc
	return m, nil
}

// ListenTCP attaches a TCP peer transport listening on addr.
//
// Deprecated: use Listen, which returns the same Listener.  ListenTCP
// survives one release as a thin wrapper and then goes away.
func (n *Node) ListenTCP(addr string) (*Listener, error) {
	return n.Listen(addr)
}

// AddTCPPeer maps a remote node to its TCP address and routes frames for
// it over the listener's transport.
//
// Deprecated: use Listener.AddPeer.  AddTCPPeer survives one release as
// a thin wrapper and then goes away.
func (n *Node) AddTCPPeer(l *Listener, node NodeID, addr string) {
	l.AddPeer(node, addr)
}
