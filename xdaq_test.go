package xdaq

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func quiet(name string, id NodeID) NodeOptions {
	return NodeOptions{
		Name: name, Node: id,
		RequestTimeout: 2 * time.Second,
		Logf:           func(string, ...any) {},
	}
}

func pair(t *testing.T, connect func(a, b *Node) error) (*Node, *Node) {
	t.Helper()
	a, err := NewNode(quiet("a", 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNode(quiet("b", 2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	t.Cleanup(b.Close)
	if err := connect(a, b); err != nil {
		t.Fatal(err)
	}
	return a, b
}

func plugEcho(t *testing.T, n *Node) {
	t.Helper()
	echo := NewDevice("echo", 0)
	echo.Bind(1, func(ctx *Context, m *Message) error {
		return ReplyIfExpected(ctx, m, m.Payload)
	})
	if _, err := n.Plug(echo); err != nil {
		t.Fatal(err)
	}
}

func TestQuickstartLoopback(t *testing.T) {
	a, b := pair(t, func(a, b *Node) error { return Connect(Loopback(), Nodes(a, b)) })
	plugEcho(t, b)
	target, err := a.Discover(2, "echo", 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.Call(target, 1, []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "ping" {
		t.Fatalf("reply %q", got)
	}
}

func TestQuickstartGM(t *testing.T) {
	a, b := pair(t, func(a, b *Node) error { return Connect(GM(), Nodes(a, b)) })
	plugEcho(t, b)
	target, err := a.Discover(2, "echo", 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{7}, 4096)
	got, err := a.Call(target, 1, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch over GM")
	}
}

func TestQuickstartTCP(t *testing.T) {
	a, b := pair(t, func(a, b *Node) error {
		ta, err := a.ListenTCP("127.0.0.1:0")
		if err != nil {
			return err
		}
		tb, err := b.ListenTCP("127.0.0.1:0")
		if err != nil {
			return err
		}
		a.AddTCPPeer(ta, 2, tb.Addr())
		b.AddTCPPeer(tb, 1, ta.Addr())
		return nil
	})
	plugEcho(t, b)
	target, err := a.Discover(2, "echo", 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.Call(target, 1, []byte("over tcp"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "over tcp" {
		t.Fatalf("reply %q", got)
	}
}

func TestSendFireAndForget(t *testing.T) {
	a, b := pair(t, func(a, b *Node) error { return Connect(Loopback(), Nodes(a, b)) })
	got := make(chan []byte, 1)
	sink := NewDevice("sink", 0)
	sink.Bind(2, func(ctx *Context, m *Message) error {
		got <- append([]byte(nil), m.Payload...)
		return nil
	})
	if _, err := b.Plug(sink); err != nil {
		t.Fatal(err)
	}
	target, err := a.Discover(2, "sink", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(target, 2, []byte("datagram")); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-got:
		if string(p) != "datagram" {
			t.Fatalf("payload %q", p)
		}
	case <-time.After(time.Second):
		t.Fatal("frame never arrived")
	}
}

func TestAllocatorSelection(t *testing.T) {
	for _, name := range []string{"", "table", "fixed"} {
		opts := quiet("alloc", 9)
		opts.Allocator = name
		n, err := NewNode(opts)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		want := name
		if want == "" {
			want = "table"
		}
		if got := n.Exec.Allocator().Name(); got != want {
			t.Fatalf("%q: allocator %q", name, got)
		}
		n.Close()
	}
	opts := quiet("alloc", 9)
	opts.Allocator = "bogus"
	if _, err := NewNode(opts); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("bogus allocator: %v", err)
	}
}

func TestThreeNodeLoopbackMesh(t *testing.T) {
	var nodes []*Node
	for i := NodeID(1); i <= 3; i++ {
		n, err := NewNode(quiet("n", i))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(n.Close)
		nodes = append(nodes, n)
	}
	if err := Connect(Loopback(), Nodes(nodes...)); err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		plugEcho(t, n)
	}
	// Every node calls every other node.
	for _, from := range nodes {
		for _, to := range nodes {
			if from == to {
				continue
			}
			target, err := from.Discover(to.Exec.Node(), "echo", 0)
			if err != nil {
				t.Fatal(err)
			}
			got, err := from.Call(target, 1, []byte("mesh"))
			if err != nil || string(got) != "mesh" {
				t.Fatalf("%v -> %v: %q %v", from.Exec.Node(), to.Exec.Node(), got, err)
			}
		}
	}
}

func TestQuickstartPCI(t *testing.T) {
	a, b := pair(t, func(a, b *Node) error { return Connect(PCI(8), Nodes(a, b)) })
	plugEcho(t, b)
	target, err := a.Discover(2, "echo", 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.Call(target, 1, []byte("over the bus"))
	if err != nil || string(got) != "over the bus" {
		t.Fatalf("%q %v", got, err)
	}
}

func TestResolveLocal(t *testing.T) {
	n, err := NewNode(quiet("solo", 4))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	plugEcho(t, n)
	id, err := n.Resolve("echo", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Local call through the full dispatch path.
	got, err := n.Call(id, 1, []byte("local"))
	if err != nil || string(got) != "local" {
		t.Fatalf("%q %v", got, err)
	}
	if err := n.Unplug(id); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Resolve("echo", 0, 0); err == nil {
		t.Fatal("resolve after unplug")
	}
}

func TestQuickstartTCPFabric(t *testing.T) {
	a, b := pair(t, func(a, b *Node) error { return Connect(TCP(), Nodes(a, b)) })
	plugEcho(t, b)
	target, err := a.Discover(2, "echo", 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.Call(target, 1, []byte("tcp fabric"))
	if err != nil || string(got) != "tcp fabric" {
		t.Fatalf("%q %v", got, err)
	}
}

func TestDeprecatedConnectWrappers(t *testing.T) {
	// The pre-redesign entry points must keep working for one release.
	wrappers := map[string]func(a, b *Node) error{
		"loopback": func(a, b *Node) error { return ConnectLoopback(a, b) },
		"gm":       func(a, b *Node) error { return ConnectGM(GMOptions{}, a, b) },
		"pci":      func(a, b *Node) error { return ConnectPCI(0, a, b) },
	}
	for name, connect := range wrappers {
		t.Run(name, func(t *testing.T) {
			a, b := pair(t, connect)
			plugEcho(t, b)
			target, err := a.Discover(2, "echo", 0)
			if err != nil {
				t.Fatal(err)
			}
			got, err := a.Call(target, 1, []byte("legacy"))
			if err != nil || string(got) != "legacy" {
				t.Fatalf("%q %v", got, err)
			}
		})
	}
}

func TestConnectNeedsTwoNodes(t *testing.T) {
	n, err := NewNode(quiet("solo", 1))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := Connect(Loopback(), Nodes(n)); err == nil {
		t.Fatal("Connect accepted a single node")
	}
	if err := Connect(Loopback()); err == nil {
		t.Fatal("Connect accepted zero nodes")
	}
}

func TestConnectWithRetryAndFaults(t *testing.T) {
	// The first two frames on the fabric are refused; a retry policy of
	// three attempts hides that from the application entirely.
	in := NewFaultInjector(42).Add(FaultRule{Op: FaultError, Nth: 1, Limit: 2})
	a, b := pair(t, func(a, b *Node) error {
		return Connect(Loopback(), Nodes(a, b),
			WithFaults(in),
			WithRetry(RetryPolicy{Attempts: 3, Backoff: time.Millisecond}))
	})
	plugEcho(t, b)
	target, err := a.Discover(2, "echo", 0)
	if err != nil {
		t.Fatalf("discover through injected faults: %v", err)
	}
	got, err := a.Call(target, 1, []byte("despite faults"))
	if err != nil || string(got) != "despite faults" {
		t.Fatalf("%q %v", got, err)
	}
	if n := a.Exec.Metrics().Counter("pta.retries").Value(); n == 0 {
		t.Fatal("no retries recorded despite injected errors")
	}
}
