package xdaq

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func quiet(name string, id NodeID) NodeOptions {
	return NodeOptions{
		Name: name, Node: id,
		RequestTimeout: 2 * time.Second,
		Logf:           func(string, ...any) {},
	}
}

func pair(t *testing.T, connect func(a, b *Node) error) (*Node, *Node) {
	t.Helper()
	a, err := NewNode(quiet("a", 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNode(quiet("b", 2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	t.Cleanup(b.Close)
	if err := connect(a, b); err != nil {
		t.Fatal(err)
	}
	return a, b
}

func plugEcho(t *testing.T, n *Node) {
	t.Helper()
	echo := NewDevice("echo", 0)
	echo.Bind(1, func(ctx *Context, m *Message) error {
		return ReplyIfExpected(ctx, m, m.Payload)
	})
	if _, err := n.Plug(echo); err != nil {
		t.Fatal(err)
	}
}

func TestQuickstartLoopback(t *testing.T) {
	a, b := pair(t, func(a, b *Node) error { return Connect(Loopback(), Nodes(a, b)) })
	plugEcho(t, b)
	target, err := a.Discover(2, "echo", 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.Call(target, 1, []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "ping" {
		t.Fatalf("reply %q", got)
	}
}

func TestQuickstartGM(t *testing.T) {
	a, b := pair(t, func(a, b *Node) error { return Connect(GM(), Nodes(a, b)) })
	plugEcho(t, b)
	target, err := a.Discover(2, "echo", 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{7}, 4096)
	got, err := a.Call(target, 1, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch over GM")
	}
}

func TestQuickstartTCP(t *testing.T) {
	a, b := pair(t, func(a, b *Node) error {
		la, err := a.Listen("127.0.0.1:0")
		if err != nil {
			return err
		}
		lb, err := b.Listen("127.0.0.1:0")
		if err != nil {
			return err
		}
		la.AddPeer(2, lb.Addr())
		lb.AddPeer(1, la.Addr())
		return nil
	})
	plugEcho(t, b)
	target, err := a.Discover(2, "echo", 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.Call(target, 1, []byte("over tcp"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "over tcp" {
		t.Fatalf("reply %q", got)
	}
}

func TestSendFireAndForget(t *testing.T) {
	a, b := pair(t, func(a, b *Node) error { return Connect(Loopback(), Nodes(a, b)) })
	got := make(chan []byte, 1)
	sink := NewDevice("sink", 0)
	sink.Bind(2, func(ctx *Context, m *Message) error {
		got <- append([]byte(nil), m.Payload...)
		return nil
	})
	if _, err := b.Plug(sink); err != nil {
		t.Fatal(err)
	}
	target, err := a.Discover(2, "sink", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(target, 2, []byte("datagram")); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-got:
		if string(p) != "datagram" {
			t.Fatalf("payload %q", p)
		}
	case <-time.After(time.Second):
		t.Fatal("frame never arrived")
	}
}

func TestAllocatorSelection(t *testing.T) {
	for _, name := range []string{"", "table", "fixed"} {
		opts := quiet("alloc", 9)
		opts.Allocator = name
		n, err := NewNode(opts)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		want := name
		if want == "" {
			want = "table"
		}
		if got := n.Exec.Allocator().Name(); got != want {
			t.Fatalf("%q: allocator %q", name, got)
		}
		n.Close()
	}
	opts := quiet("alloc", 9)
	opts.Allocator = "bogus"
	if _, err := NewNode(opts); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("bogus allocator: %v", err)
	}
}

func TestThreeNodeLoopbackMesh(t *testing.T) {
	var nodes []*Node
	for i := NodeID(1); i <= 3; i++ {
		n, err := NewNode(quiet("n", i))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(n.Close)
		nodes = append(nodes, n)
	}
	if err := Connect(Loopback(), Nodes(nodes...)); err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		plugEcho(t, n)
	}
	// Every node calls every other node.
	for _, from := range nodes {
		for _, to := range nodes {
			if from == to {
				continue
			}
			target, err := from.Discover(to.Exec.Node(), "echo", 0)
			if err != nil {
				t.Fatal(err)
			}
			got, err := from.Call(target, 1, []byte("mesh"))
			if err != nil || string(got) != "mesh" {
				t.Fatalf("%v -> %v: %q %v", from.Exec.Node(), to.Exec.Node(), got, err)
			}
		}
	}
}

func TestQuickstartPCI(t *testing.T) {
	a, b := pair(t, func(a, b *Node) error { return Connect(PCI(8), Nodes(a, b)) })
	plugEcho(t, b)
	target, err := a.Discover(2, "echo", 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.Call(target, 1, []byte("over the bus"))
	if err != nil || string(got) != "over the bus" {
		t.Fatalf("%q %v", got, err)
	}
}

func TestResolveLocal(t *testing.T) {
	n, err := NewNode(quiet("solo", 4))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	plugEcho(t, n)
	id, err := n.Resolve("echo", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Local call through the full dispatch path.
	got, err := n.Call(id, 1, []byte("local"))
	if err != nil || string(got) != "local" {
		t.Fatalf("%q %v", got, err)
	}
	if err := n.Unplug(id); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Resolve("echo", 0, 0); err == nil {
		t.Fatal("resolve after unplug")
	}
}

func TestQuickstartTCPFabric(t *testing.T) {
	a, b := pair(t, func(a, b *Node) error { return Connect(TCP(), Nodes(a, b)) })
	plugEcho(t, b)
	target, err := a.Discover(2, "echo", 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.Call(target, 1, []byte("tcp fabric"))
	if err != nil || string(got) != "tcp fabric" {
		t.Fatalf("%q %v", got, err)
	}
}

func TestDeprecatedListenTCP(t *testing.T) {
	// The pre-redesign entry points must keep working for one release.
	a, b := pair(t, func(a, b *Node) error {
		la, err := a.ListenTCP("127.0.0.1:0")
		if err != nil {
			return err
		}
		lb, err := b.ListenTCP("127.0.0.1:0")
		if err != nil {
			return err
		}
		a.AddTCPPeer(la, 2, lb.Addr())
		b.AddTCPPeer(lb, 1, la.Addr())
		return nil
	})
	plugEcho(t, b)
	target, err := a.Discover(2, "echo", 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.Call(target, 1, []byte("legacy"))
	if err != nil || string(got) != "legacy" {
		t.Fatalf("%q %v", got, err)
	}
}

func TestQuickstartShm(t *testing.T) {
	dir := t.TempDir()
	a, b := pair(t, func(a, b *Node) error { return Connect(Shm(dir), Nodes(a, b)) })
	plugEcho(t, b)
	target, err := a.Discover(2, "echo", 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{3}, 10_000)
	got, err := a.Call(target, 1, payload)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("shm echo failed: %v", err)
	}
}

func TestQuickstartRemote(t *testing.T) {
	a, b := pair(t, func(a, b *Node) error {
		return Connect(Remote(map[NodeID]string{1: "127.0.0.1:0", 2: "127.0.0.1:0"}), Nodes(a, b))
	})
	plugEcho(t, b)
	target, err := a.Discover(2, "echo", 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.Call(target, 1, []byte("remote fabric"))
	if err != nil || string(got) != "remote fabric" {
		t.Fatalf("%q %v", got, err)
	}
}

func TestConnectContextExpired(t *testing.T) {
	a, err := NewNode(quiet("a", 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNode(quiet("b", 2))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	err = ConnectContext(ctx, Loopback(), Nodes(a, b))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("expired context: %v, want ErrTimeout", err)
	}
}

// joinCluster spins up one member over real sockets and registers cleanup.
func joinCluster(t *testing.T, id NodeID, seed string, shmDir string) *Cluster {
	t.Helper()
	cl, err := Join(context.Background(), ClusterConfig{
		Node:   quiet("m", id),
		Seed:   seed,
		ShmDir: shmDir,
		Health: &HealthOptions{Interval: 50 * time.Millisecond, Threshold: 2},
	})
	if err != nil {
		t.Fatalf("join node %d: %v", id, err)
	}
	t.Cleanup(cl.Close)
	return cl
}

func TestJoinLeaveOverSockets(t *testing.T) {
	seed := joinCluster(t, 1, "", "")
	plugEcho(t, seed.Node())
	b := joinCluster(t, 2, seed.Listener().Addr(), "")
	c := joinCluster(t, 3, seed.Listener().Addr(), "")

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, cl := range []*Cluster{seed, b, c} {
		if err := cl.WaitReady(ctx, 3); err != nil {
			t.Fatalf("node %v never saw 3 members: %v", cl.Node().Exec.Node(), err)
		}
	}

	// The seed's echo device was exported in the join exchange: resolve
	// without a Discover round trip, call across real sockets.
	target, err := c.Node().Resolve("echo", 0, 1)
	if err != nil {
		t.Fatalf("resolve exported device: %v", err)
	}
	got, err := c.Node().Call(target, 1, []byte("cross-socket"))
	if err != nil || string(got) != "cross-socket" {
		t.Fatalf("%q %v", got, err)
	}

	if err := c.Leave(ctx); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for len(seed.Members()) != 2 || len(b.Members()) != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("leave did not propagate: seed=%v b=%v", seed.Members(), b.Members())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestJoinColocatedShmRoute(t *testing.T) {
	dir := t.TempDir()
	seed := joinCluster(t, 1, "", dir)
	plugEcho(t, seed.Node())
	b := joinCluster(t, 2, seed.Listener().Addr(), dir)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := b.WaitReady(ctx, 2); err != nil {
		t.Fatal(err)
	}
	// Colocated members (same shm dir) route over the shm rings.
	if route, _ := b.Node().Exec.Route(1); route != "pt.shm" {
		t.Fatalf("colocated route = %q, want pt.shm", route)
	}
	if route, _ := seed.Node().Exec.Route(2); route != "pt.shm" {
		t.Fatalf("colocated route = %q, want pt.shm", route)
	}
	target, err := b.Node().Resolve("echo", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.Node().Call(target, 1, []byte("over rings"))
	if err != nil || string(got) != "over rings" {
		t.Fatalf("%q %v", got, err)
	}
}

func TestJoinDeadSeedTimesOut(t *testing.T) {
	// A dead seed must surface as ErrTimeout (or a fast dial error), not
	// hang.  Port 9 (discard) on localhost is almost certainly closed; if
	// something answers, the join still fails — just differently.
	_, err := Join(context.Background(), ClusterConfig{
		Node:    quiet("x", 9),
		Seed:    "127.0.0.1:9",
		Timeout: 500 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("join via dead seed succeeded")
	}
}

func TestConnectNeedsTwoNodes(t *testing.T) {
	n, err := NewNode(quiet("solo", 1))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := Connect(Loopback(), Nodes(n)); err == nil {
		t.Fatal("Connect accepted a single node")
	}
	if err := Connect(Loopback()); err == nil {
		t.Fatal("Connect accepted zero nodes")
	}
}

func TestConnectWithRetryAndFaults(t *testing.T) {
	// The first two frames on the fabric are refused; a retry policy of
	// three attempts hides that from the application entirely.
	in := NewFaultInjector(42).Add(FaultRule{Op: FaultError, Nth: 1, Limit: 2})
	a, b := pair(t, func(a, b *Node) error {
		return Connect(Loopback(), Nodes(a, b),
			WithFaults(in),
			WithRetry(RetryPolicy{Attempts: 3, Backoff: time.Millisecond}))
	})
	plugEcho(t, b)
	target, err := a.Discover(2, "echo", 0)
	if err != nil {
		t.Fatalf("discover through injected faults: %v", err)
	}
	got, err := a.Call(target, 1, []byte("despite faults"))
	if err != nil || string(got) != "despite faults" {
		t.Fatalf("%q %v", got, err)
	}
	if n := a.Exec.Metrics().Counter("pta.retries").Value(); n == 0 {
		t.Fatal("no retries recorded despite injected errors")
	}
}
