# Development entry points.  `make check` is the gate every change must
# pass: vet, full build, full test suite, and the race detector on the
# packages with the most concurrency (dispatch loop, transport agent,
# metrics hot path).

GO ?= go

.PHONY: check build test vet race bench

check: vet build test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/executive/ ./internal/pta/ ./internal/metrics/ ./internal/health/

bench:
	$(GO) test -bench . -benchmem ./...
