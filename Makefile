# Development entry points.  `make check` is the gate every change must
# pass: vet, full build, full test suite, and the race detector on the
# packages with the most concurrency (dispatch workers, scheduler,
# transport agent, metrics hot path).

GO ?= go

.PHONY: check build test vet race bench bench-remote benchall

check: vet build test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/executive/ ./internal/queue/ ./internal/pta/ ./internal/metrics/ ./internal/health/ ./internal/transport/tcp/ ./internal/transport/gm/

# bench runs the dispatch-engine benchmarks (hot-path allocations, worker
# scaling, watchdog overhead, event builder) and archives the numbers as
# JSON for before/after comparison.
bench:
	$(GO) test -run '^$$' -bench 'Dispatch|EventBuilder|Watchdog' -benchmem . \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_dispatch.json

# bench-remote runs the remote data-path benchmarks (batched send path,
# request/reply latency sweep, batched-vs-unbatched throughput under
# concurrent senders) and archives them, baseline included, as JSON.
# Merge with other archives via `go run ./cmd/benchjson a.json b.json`.
bench-remote:
	$(GO) test -run '^$$' -bench 'Remote' -benchmem -timeout 30m ./internal/transport/tcp/ \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_remote.json

# benchall is the full sweep across every package.
benchall:
	$(GO) test -bench . -benchmem ./...
