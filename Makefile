# Development entry points.  `make check` is the gate every change must
# pass: vet, full build, full test suite, and the race detector on the
# packages with the most concurrency (dispatch workers, scheduler,
# transport agent, metrics hot path).

GO ?= go

.PHONY: check build test vet race cover soak-short fuzz bench bench-remote bench-cluster bench-eb bench-storage bench-gate benchall

check: vet build test race soak-short

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/executive/ ./internal/queue/ ./internal/pta/ ./internal/metrics/ ./internal/health/ ./internal/transport/tcp/ ./internal/transport/gm/ ./internal/transport/shm/ ./internal/cluster/ ./internal/chaos/ ./internal/daq/ ./internal/storage/ ./internal/controlplane/ ./internal/e2e/

# cover prints per-package statement coverage and enforces the floor on
# the control plane: the autopilot actuates live clusters, so its decision
# logic stays at >= 80% covered or the build goes red.
COVER_FLOOR ?= 80
cover:
	$(GO) test -cover ./...
	@$(GO) test -coverprofile=/tmp/xdaq_cover_cp.out ./internal/controlplane/ > /dev/null; \
	pct=$$($(GO) tool cover -func=/tmp/xdaq_cover_cp.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "controlplane coverage: $$pct% (floor $(COVER_FLOOR)%)"; \
	awk "BEGIN { exit !($$pct >= $(COVER_FLOOR)) }" || { echo "controlplane coverage $$pct% is below the $(COVER_FLOOR)% floor"; exit 1; }

# soak-short is the CI face of the chaos harness (see doc/testing.md):
# six short seeded soaks under the race detector, one per cluster shape —
# kill+failover on the mixed fabric, heavy wire faults on batched TCP,
# dispatcher rescales under load on loopback, a loopback run that kills a
# builder unit mid-round and audits the shard-map rebalance, a loopback
# run that crashes a storage writer mid-replay and audits the recovered
# stripes for exactly-once persistence, and a loopback run where a device
# turns hot, the autopilot must rescale it (then dies on the last round,
# auditing graceful degradation).  xdaqsoak exits nonzero the moment any
# invariant checker reports, printing the seed and trace rings, so a red
# soak-short is reproducible with the seed it prints.
soak-short:
	$(GO) run -race ./cmd/xdaqsoak -seed 101 -duration 5s -rounds 3 -fabric gm+tcp -faults light -q
	$(GO) run -race ./cmd/xdaqsoak -seed 202 -duration 5s -rounds 3 -fabric tcp -faults heavy -kill=false -q
	$(GO) run -race ./cmd/xdaqsoak -seed 303 -duration 5s -rounds 3 -fabric loopback -faults none -kill=false -q
	$(GO) run -race ./cmd/xdaqsoak -seed 404 -duration 5s -rounds 3 -fabric loopback -faults none -kill=false -killbu -q
	$(GO) run -race ./cmd/xdaqsoak -seed 505 -duration 5s -rounds 3 -fabric loopback -faults none -kill=false -killsw -q
	$(GO) run -race ./cmd/xdaqsoak -seed 606 -duration 5s -rounds 3 -fabric loopback -faults none -kill=false -hotdev -killcp -q

# fuzz gives each fuzz target a short exploration budget on top of its checked-in
# seed corpus; lengthen with FUZZTIME=1m for a real session.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeAcquired$$' -fuzztime $(FUZZTIME) ./internal/i2o/
	$(GO) test -run '^$$' -fuzz '^FuzzSGLRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/sgl/
	$(GO) test -run '^$$' -fuzz '^FuzzWireRecords$$' -fuzztime $(FUZZTIME) ./internal/daq/
	$(GO) test -run '^$$' -fuzz '^FuzzSegment$$' -fuzztime $(FUZZTIME) ./internal/storage/
	$(GO) test -run '^$$' -fuzz '^FuzzPolicy$$' -fuzztime $(FUZZTIME) ./internal/controlplane/

# bench runs the dispatch-engine benchmarks (hot-path allocations, worker
# scaling, watchdog overhead, event builder) and archives the numbers as
# JSON for before/after comparison.
bench:
	$(GO) test -run '^$$' -bench 'Dispatch|EventBuilder|Watchdog' -benchmem . \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_dispatch.json

# bench-remote runs the remote data-path benchmarks (batched send path,
# request/reply latency sweep, batched-vs-unbatched throughput under
# concurrent senders) and archives them, baseline included, as JSON.
# -count 5 because single runs are hostage to machine-wide load drift:
# benchjson collapses the five samples per benchmark to their median,
# which is what BENCH_remote.json records (see doc/performance.md).
# Merge with other archives via `go run ./cmd/benchjson a.json b.json`.
bench-remote:
	$(GO) test -run '^$$' -bench 'Remote' -benchmem -count 5 -timeout 60m ./internal/transport/tcp/ \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_remote.json

# bench-cluster runs the multi-process deployment benchmarks: each spawns
# real child processes (internal/proc re-execs its test binary as cluster
# members), so the numbers include genuine process-boundary costs —
# cross-process request/reply latency over sockets, and shm-ring vs
# loopback-TCP throughput for colocated processes.  The chaos package
# contributes the control-plane pair: round trips against a node with a
# hot device, with and without the autopilot rescaling it.  Median of 5
# runs, as in bench-remote.
bench-cluster:
	($(GO) test -run '^$$' -bench 'Cluster' -benchmem -count 5 -timeout 30m ./internal/proc/ && \
	 $(GO) test -run '^$$' -bench 'ClusterSkewedLoad' -benchmem -count 5 -timeout 30m ./internal/chaos/) \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_cluster.json

# bench-eb runs the event-builder scaling sweep — flat vs hierarchical
# wiring at 4..256 readout units — and archives the median of 5 runs as
# BENCH_eb.json (see doc/performance.md).
bench-eb:
	$(GO) test -run '^$$' -bench 'EventBuilder' -benchmem -count 5 -timeout 60m . \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_eb.json

# bench-storage runs the striped-storage writer benchmarks: the
# single-stripe append hot path (gated at zero allocations per record)
# and the striping sweep at 1/2/4/8 writers over a simulated per-stripe
# disk (SimDelay; see doc/storage.md for why real fsync is not bench
# material on a shared host).  Median of 5 runs, as in bench-remote.
bench-storage:
	$(GO) test -run '^$$' -bench 'Storage' -benchmem -count 5 -benchtime 200x -timeout 30m ./internal/storage/ \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_storage.json

# bench-gate holds the archived performance claims: the batched remote
# path must beat the unbatched baseline at every payload size
# (BENCH_remote.json), the hierarchical event builder must beat the
# flat one at high readout counts (BENCH_eb.json; at small counts the
# tree's extra hop is allowed to cost), eight storage stripes must
# deliver at least twice the throughput of one (BENCH_storage.json, the
# -min 1.0 floor), and the autopilot must at least double round-trip
# throughput against a hot device versus a cluster left at one
# dispatcher (BENCH_cluster.json).  Regenerate the archives with `make
# bench-remote bench-eb bench-storage bench-cluster` first.  GATE_TOL
# forgives slowdowns inside the band, e.g. GATE_TOL=0.05 tolerates 5%.
GATE_TOL ?= 0
bench-gate:
	$(GO) run ./cmd/benchjson -compare -tol $(GATE_TOL) BENCH_remote.json
	$(GO) run ./cmd/benchjson -compare -pair 'topo=tree:topo=flat' -grep 'rus=(64|256)$$' -tol $(GATE_TOL) BENCH_eb.json
	$(GO) run ./cmd/benchjson -compare -pair 'writers=8:writers=1' -min 1.0 -tol $(GATE_TOL) BENCH_storage.json
	$(GO) run ./cmd/benchjson -compare -pair 'autopilot=on:autopilot=off' -min 1.0 -tol $(GATE_TOL) BENCH_cluster.json

# benchall regenerates every archive and merges them into one document
# (benchjson's merge mode tags each result with its source package), so
# BENCH_all.json is the single cross-package snapshot of a host.
benchall: bench bench-remote bench-cluster bench-eb bench-storage
	$(GO) run ./cmd/benchjson BENCH_dispatch.json BENCH_remote.json BENCH_cluster.json BENCH_eb.json BENCH_storage.json > BENCH_all.json
