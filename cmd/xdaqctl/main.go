// Command xdaqctl is the primary-host control client: it connects to a
// set of xdaqd processing nodes over the TCP peer transport and drives
// them with a tclish script — the paper's Tcl-based configuration and
// control channel.
//
// Examples:
//
//	xdaqctl -node 100 -peer 1=127.0.0.1:9101 -e 'status 1'
//	xdaqctl -node 100 -peer 1=... -peer 2=... -script setup.tcl
//	echo 'resources 1' | xdaqctl -node 100 -peer 1=...
//	xdaqctl -i -node 100 -peer 1=...          # interactive session
//	xdaqctl -node 100 -peer 1=... -e 'metrics 1 exec.'   # scrape counters
//	xdaqctl -node 100 -peer 1=... -e 'health 1'          # peer liveness
//
// The cluster commands available in scripts are documented on
// cluster.Controller.Bind: nodes, status, resources, plug, unplug,
// enable, quiesce, clear, systab, paramget, paramset, trace, metrics,
// health, control.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"xdaq"
	"xdaq/internal/cluster"
	"xdaq/internal/i2o"
	_ "xdaq/internal/modules"
	"xdaq/internal/tclish"
)

type peerList map[i2o.NodeID]string

func (p peerList) String() string {
	parts := make([]string, 0, len(p))
	for n, a := range p {
		parts = append(parts, fmt.Sprintf("%d=%s", n, a))
	}
	return strings.Join(parts, ",")
}

func (p peerList) Set(v string) error {
	node, addr, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want node=addr, got %q", v)
	}
	n, err := strconv.ParseUint(node, 10, 32)
	if err != nil {
		return fmt.Errorf("bad node %q: %v", node, err)
	}
	p[i2o.NodeID(n)] = addr
	return nil
}

func main() {
	var (
		node        = flag.Uint("node", 100, "the control host's own node identifier")
		script      = flag.String("script", "", "tclish script file to run ('-' or empty reads stdin when -e is not given)")
		inline      = flag.String("e", "", "inline tclish script")
		interactive = flag.Bool("i", false, "interactive session: evaluate stdin line by line")
		peers       = peerList{}
	)
	flag.Var(peers, "peer", "processing node as node=addr (repeatable)")
	flag.Parse()

	var src string
	if !*interactive {
		var err error
		src, err = loadScript(*script, *inline)
		if err != nil {
			log.Fatalf("xdaqctl: %v", err)
		}
	}

	host, err := xdaq.NewNode(xdaq.NodeOptions{
		Name: "ctl",
		Node: i2o.NodeID(*node),
		Logf: func(string, ...any) {}, // control session: keep stdout for script output
	})
	if err != nil {
		log.Fatalf("xdaqctl: %v", err)
	}
	defer host.Close()

	tr, err := host.ListenTCP("127.0.0.1:0")
	if err != nil {
		log.Fatalf("xdaqctl: %v", err)
	}
	ctl, err := cluster.NewPrimary(host.Exec)
	if err != nil {
		log.Fatalf("xdaqctl: %v", err)
	}
	for peer, addr := range peers {
		host.AddTCPPeer(tr, peer, addr)
		if err := ctl.AddNode(peer, addr); err != nil {
			log.Fatalf("xdaqctl: add node %d: %v", peer, err)
		}
	}

	interp := tclish.New(os.Stdout)
	ctl.Bind(interp)

	if *interactive {
		repl(interp)
		return
	}
	result, err := interp.Eval(src)
	if err != nil && !strings.Contains(err.Error(), "return outside proc") {
		log.Fatalf("xdaqctl: script: %v", err)
	}
	if result != "" {
		fmt.Println(result)
	}
}

// repl evaluates stdin line by line, continuing across errors — the
// interactive control session of a cluster operator.
func repl(interp *tclish.Interp) {
	scanner := bufio.NewScanner(os.Stdin)
	fmt.Print("xdaq> ")
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "exit" || line == "quit" {
			return
		}
		if line != "" {
			result, err := interp.Eval(line)
			switch {
			case err != nil && !strings.Contains(err.Error(), "return outside proc"):
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
			case result != "":
				fmt.Println(result)
			}
		}
		fmt.Print("xdaq> ")
	}
}

func loadScript(path, inline string) (string, error) {
	if inline != "" {
		return inline, nil
	}
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}
