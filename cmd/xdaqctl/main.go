// Command xdaqctl is the primary-host control client: it connects to a
// set of xdaqd processing nodes over the TCP peer transport and drives
// them with a tclish script — the paper's Tcl-based configuration and
// control channel.
//
// Examples:
//
//	xdaqctl -node 100 -join 127.0.0.1:9101 -e 'members; status 1'
//	xdaqctl -node 100 -peer 1=127.0.0.1:9101 -e 'status 1'
//	xdaqctl -node 100 -peer 1=... -peer 2=... -script setup.tcl
//	echo 'resources 1' | xdaqctl -node 100 -peer 1=...
//	xdaqctl -i -node 100 -join 127.0.0.1:9101          # interactive session
//	xdaqctl -node 100 -peer 1=... -e 'metrics 1 exec.'   # scrape counters
//	xdaqctl -node 100 -peer 1=... -e 'health 1'          # peer liveness
//	xdaqctl -node 100 -peer 1=... -e 'policy 1'          # autopilot decision log
//	xdaqctl -node 100 -join 127.0.0.1:9101 -e 'ebround 1000 2048'
//	xdaqctl -node 100 -join ... -e 'plug 2 storage.sw 0 dir /data; ebround 1000 2048 8 2'
//	xdaqctl -node 100 -peer 1=... -e 'storage 1'         # storage-writer gauges
//
// -join enters the cluster through any live member's address using the
// bootstrap protocol and registers every member automatically; -peer
// wires nodes statically by id and address.  The cluster commands
// available in scripts are documented on cluster.Controller.Bind: nodes,
// status, resources, plug, unplug, enable, quiesce, clear, systab,
// paramget, paramset, trace, metrics, health, policy, control — plus members
// (the bootstrap membership view) and ebround (an event-builder round
// across the cluster, with the builder unit hosted on the control node).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"xdaq"
	"xdaq/internal/cluster"
	"xdaq/internal/daq"
	"xdaq/internal/i2o"
	_ "xdaq/internal/modules"
	"xdaq/internal/storage"
	"xdaq/internal/tclish"
)

type peerList map[i2o.NodeID]string

func (p peerList) String() string {
	parts := make([]string, 0, len(p))
	for n, a := range p {
		parts = append(parts, fmt.Sprintf("%d=%s", n, a))
	}
	return strings.Join(parts, ",")
}

func (p peerList) Set(v string) error {
	node, addr, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want node=addr, got %q", v)
	}
	n, err := strconv.ParseUint(node, 10, 32)
	if err != nil {
		return fmt.Errorf("bad node %q: %v", node, err)
	}
	p[i2o.NodeID(n)] = addr
	return nil
}

func main() {
	var (
		node        = flag.Uint("node", 100, "the control host's own node identifier")
		join        = flag.String("join", "", "cluster member address to join; members are registered automatically")
		script      = flag.String("script", "", "tclish script file to run ('-' or empty reads stdin when -e is not given)")
		inline      = flag.String("e", "", "inline tclish script")
		interactive = flag.Bool("i", false, "interactive session: evaluate stdin line by line")
		peers       = peerList{}
	)
	flag.Var(peers, "peer", "processing node as node=addr (repeatable)")
	flag.Parse()

	var src string
	if !*interactive {
		var err error
		src, err = loadScript(*script, *inline)
		if err != nil {
			log.Fatalf("xdaqctl: %v", err)
		}
	}

	quiet := func(string, ...any) {} // control session: keep stdout for script output
	cl, err := xdaq.Join(context.Background(), xdaq.ClusterConfig{
		Node: xdaq.NodeOptions{
			Name: "ctl",
			Node: i2o.NodeID(*node),
			Logf: quiet,
		},
		Seed:     *join,
		NoHealth: true, // a control session should not evict working nodes
		Logf:     quiet,
	})
	if err != nil {
		log.Fatalf("xdaqctl: %v", err)
	}
	defer cl.Close()
	defer func() { // announce the departure so members drop us cleanly
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		cl.Leave(ctx)
	}()
	host := cl.Node()

	ctl, err := cluster.NewPrimary(host.Exec)
	if err != nil {
		log.Fatalf("xdaqctl: %v", err)
	}
	for _, m := range cl.Members() {
		if m.Node == host.Exec.Node() {
			continue
		}
		if err := ctl.AddNode(m.Node, m.Name); err != nil {
			log.Fatalf("xdaqctl: add member %d: %v", m.Node, err)
		}
	}
	for peer, addr := range peers {
		cl.Listener().AddPeer(peer, addr)
		if err := ctl.AddNode(peer, addr); err != nil {
			log.Fatalf("xdaqctl: add node %d: %v", peer, err)
		}
	}

	interp := tclish.New(os.Stdout)
	ctl.Bind(interp)
	bindClusterCommands(interp, cl, ctl, host)

	if *interactive {
		repl(interp)
		return
	}
	result, err := interp.Eval(src)
	if err != nil && !strings.Contains(err.Error(), "return outside proc") {
		log.Fatalf("xdaqctl: script: %v", err)
	}
	if result != "" {
		fmt.Println(result)
	}
}

// bindClusterCommands adds the bootstrap-membership commands on top of
// the controller's standard set.
func bindClusterCommands(interp *tclish.Interp, cl *xdaq.Cluster, ctl *cluster.Controller, host *xdaq.Node) {
	// members — one line per cluster member: node, name, addr, shm.
	interp.Register("members", func(in *tclish.Interp, args []string) (string, error) {
		var b strings.Builder
		for _, m := range cl.Members() {
			fmt.Fprintf(&b, "node %d name %q addr %q", m.Node, m.Name, m.Addr)
			if m.Shm != "" {
				fmt.Fprintf(&b, " shm %q", m.Shm)
			}
			b.WriteByte('\n')
		}
		return strings.TrimRight(b.String(), "\n"), nil
	})

	// storage <node> — the node's storage-writer gauges (stripe depth,
	// bytes, stalls, recovery counters): a metrics scrape filtered to
	// the storage. prefix, one "key value" row per line.
	interp.Register("storage", func(in *tclish.Interp, args []string) (string, error) {
		if len(args) != 2 {
			return "", fmt.Errorf("tclish: usage: storage <node>")
		}
		n, err := strconv.ParseUint(args[1], 10, 32)
		if err != nil {
			return "", fmt.Errorf("tclish: bad node %q", args[1])
		}
		params, err := ctl.Metrics(i2o.NodeID(n), "storage.")
		if err != nil {
			return "", err
		}
		if len(params) == 0 {
			return "no storage writer on node " + args[1], nil
		}
		var b strings.Builder
		for _, p := range params {
			fmt.Fprintf(&b, "%s %v\n", p.Key, p.Value)
		}
		return strings.TrimRight(b.String(), "\n"), nil
	})

	// ebround <events> <fragsize> ?pipeline? ?swnodes? — run one
	// event-builder round across the registered processing nodes: the EVM
	// on the first node, a readout unit on each other node, and the
	// builder unit here on the control host pulling fragments from all of
	// them.  swnodes (comma-separated node ids, each hosting a plugged
	// storage.sw instance 0) extends the chain to disk: built events
	// stripe across the writers and the round waits for their acks.
	interp.Register("ebround", func(in *tclish.Interp, args []string) (string, error) {
		if len(args) < 3 || len(args) > 5 {
			return "", fmt.Errorf("tclish: usage: ebround <events> <fragsize> ?pipeline? ?swnodes?")
		}
		events, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil || events == 0 {
			return "", fmt.Errorf("tclish: bad event count %q", args[1])
		}
		fragSize, err := strconv.Atoi(args[2])
		if err != nil || fragSize <= 0 {
			return "", fmt.Errorf("tclish: bad fragment size %q", args[2])
		}
		pipeline := 8
		if len(args) >= 4 {
			if pipeline, err = strconv.Atoi(args[3]); err != nil || pipeline <= 0 {
				return "", fmt.Errorf("tclish: bad pipeline %q", args[3])
			}
		}
		var swNodes []i2o.NodeID
		if len(args) == 5 {
			for _, s := range strings.Split(args[4], ",") {
				n, err := strconv.ParseUint(s, 10, 32)
				if err != nil {
					return "", fmt.Errorf("tclish: bad storage node %q", s)
				}
				swNodes = append(swNodes, i2o.NodeID(n))
			}
		}
		nodes := ctl.Nodes()
		if len(nodes) < 2 {
			return "", fmt.Errorf("tclish: ebround needs at least 2 processing nodes (EVM + RUs), have %d", len(nodes))
		}
		return ebround(cl, ctl, host, nodes, swNodes, events, fragSize, pipeline)
	})
}

// ebround plugs an EVM and RUs across the cluster, builds events into a
// locally hosted BU — striping them to the swNodes' storage writers when
// given — and unplugs everything again.
func ebround(cl *xdaq.Cluster, ctl *cluster.Controller, host *xdaq.Node,
	nodes, swNodes []i2o.NodeID, events uint64, fragSize, pipeline int) (string, error) {
	evmNode, ruNodes := nodes[0], nodes[1:]

	evmTID, err := ctl.Plug(evmNode, "daq.evm", 0, []i2o.Param{{Key: "events", Value: int64(events)}})
	if err != nil {
		return "", fmt.Errorf("plug daq.evm on node %v: %w", evmNode, err)
	}
	defer ctl.Unplug(evmNode, evmTID)

	ruTIDs := make([]i2o.TID, len(ruNodes))
	for i, n := range ruNodes {
		ruTIDs[i], err = ctl.Plug(n, "daq.ru", i, []i2o.Param{{Key: "fragsize", Value: int64(fragSize)}})
		if err != nil {
			return "", fmt.Errorf("plug daq.ru on node %v: %w", n, err)
		}
		defer func(n i2o.NodeID, id i2o.TID) { ctl.Unplug(n, id) }(n, ruTIDs[i])
	}

	// The BU lives on the control host and pulls across the wire.
	bu := daq.NewBU(0)
	buTID, err := host.Plug(bu.Device())
	if err != nil {
		return "", fmt.Errorf("plug local BU: %w", err)
	}
	defer host.Unplug(buTID)

	evmProxy, err := host.Discover(evmNode, daq.EVMClass, 0)
	if err != nil {
		return "", fmt.Errorf("discover EVM: %w", err)
	}
	ruProxies := make([]i2o.TID, len(ruNodes))
	for i, n := range ruNodes {
		if ruProxies[i], err = host.Discover(n, daq.RUClass, i); err != nil {
			return "", fmt.Errorf("discover RU on node %v: %w", n, err)
		}
	}
	bu.Configure(evmProxy, ruProxies)
	if len(swNodes) > 0 {
		swTIDs := make([]i2o.TID, len(swNodes))
		for i, n := range swNodes {
			if swTIDs[i], err = host.Discover(n, storage.ClassSW, 0); err != nil {
				return "", fmt.Errorf("discover storage.sw on node %v (plug it first): %w", n, err)
			}
		}
		bu.SetStorage(swTIDs, pipeline)
	}

	start := time.Now()
	if _, err := bu.Start(0, pipeline); err != nil {
		return "", err
	}
	stats, err := bu.Wait()
	if err != nil {
		return "", fmt.Errorf("event builder round: %w", err)
	}
	elapsed := time.Since(start)
	out := fmt.Sprintf("built %d events (%d corrupt) from %d RUs x %d B in %v: %.0f events/s, %.2f MB/s",
		stats.Built, stats.Corrupt, len(ruNodes), fragSize, elapsed.Round(time.Millisecond),
		float64(stats.Built)/elapsed.Seconds(), float64(stats.Bytes)/elapsed.Seconds()/1e6)
	if len(swNodes) > 0 {
		out += fmt.Sprintf("; stored %d across %d stripes (%d write stalls)",
			stats.Stored, len(swNodes), stats.WriteStalls)
	}
	return out, nil
}

// repl evaluates stdin line by line, continuing across errors — the
// interactive control session of a cluster operator.
func repl(interp *tclish.Interp) {
	scanner := bufio.NewScanner(os.Stdin)
	fmt.Print("xdaq> ")
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "exit" || line == "quit" {
			return
		}
		if line != "" {
			result, err := interp.Eval(line)
			switch {
			case err != nil && !strings.Contains(err.Error(), "return outside proc"):
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
			case result != "":
				fmt.Println(result)
			}
		}
		fmt.Print("xdaq> ")
	}
}

func loadScript(path, inline string) (string, error) {
	if inline != "" {
		return inline, nil
	}
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}
