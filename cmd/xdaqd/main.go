// Command xdaqd runs one XDAQ processing node: an executive with a TCP
// peer transport, ready to be configured and controlled by a primary host
// (cmd/xdaqctl) through I2O executive messages.
//
// Example three-node cluster on one machine:
//
//	xdaqd -node 1 -listen 127.0.0.1:9101 -metrics 127.0.0.1:9190 &
//	xdaqd -node 2 -listen 127.0.0.1:9102 -peer 1=127.0.0.1:9101 &
//	xdaqctl -node 100 -peer 1=127.0.0.1:9101 -peer 2=127.0.0.1:9102 \
//	        -e 'plug 1 echo 0; status 1'
//
// Modules available to ExecPlugin are those compiled in through the
// module registry (see internal/modules): echo, daq.evm, daq.ru, daq.bu.
// Use -module to plug modules at startup without a controller.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"xdaq"
	"xdaq/internal/executive"
	"xdaq/internal/i2o"
	_ "xdaq/internal/modules"
)

type peerList map[i2o.NodeID]string

func (p peerList) String() string {
	parts := make([]string, 0, len(p))
	for n, a := range p {
		parts = append(parts, fmt.Sprintf("%d=%s", n, a))
	}
	return strings.Join(parts, ",")
}

func (p peerList) Set(v string) error {
	node, addr, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want node=addr, got %q", v)
	}
	n, err := strconv.ParseUint(node, 10, 32)
	if err != nil {
		return fmt.Errorf("bad node %q: %v", node, err)
	}
	p[i2o.NodeID(n)] = addr
	return nil
}

type moduleList []string

func (m *moduleList) String() string     { return strings.Join(*m, ",") }
func (m *moduleList) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var (
		node    = flag.Uint("node", 1, "this IOP's node identifier")
		name    = flag.String("name", "", "executive name (default: node<N>)")
		listen  = flag.String("listen", "127.0.0.1:0", "TCP peer transport listen address")
		metrics = flag.String("metrics", "", "HTTP metrics address, e.g. 127.0.0.1:9190 (empty disables)")
		alloc   = flag.String("alloc", "table", "buffer pool scheme: table or fixed")
		disp    = flag.Int("dispatchers", 0, "parallel dispatch workers (0 or 1: the single I2O loop)")
		health  = flag.Duration("health", 0, "peer health probe interval, e.g. 1s (0 disables)")
		peers   = peerList{}
		modules = moduleList{}
	)
	flag.Var(peers, "peer", "peer node as node=addr (repeatable)")
	flag.Var(&modules, "module", "module to plug at startup as name[:instance] (repeatable)")
	flag.Parse()

	if *name == "" {
		*name = fmt.Sprintf("node%d", *node)
	}
	n, err := xdaq.NewNode(xdaq.NodeOptions{
		Name:        *name,
		Node:        i2o.NodeID(*node),
		Allocator:   *alloc,
		Dispatchers: *disp,
	})
	if err != nil {
		log.Fatalf("xdaqd: %v", err)
	}
	defer n.Close()

	tr, err := n.ListenTCP(*listen)
	if err != nil {
		log.Fatalf("xdaqd: %v", err)
	}
	for peer, addr := range peers {
		n.AddTCPPeer(tr, peer, addr)
	}
	if *metrics != "" {
		ln, err := net.Listen("tcp", *metrics)
		if err != nil {
			log.Fatalf("xdaqd: metrics listen %s: %v", *metrics, err)
		}
		defer ln.Close()
		mux := http.NewServeMux()
		mux.Handle("/metrics", n.Exec.Metrics())
		go func() {
			if err := http.Serve(ln, mux); err != nil {
				log.Printf("xdaqd: metrics server: %v", err)
			}
		}()
		log.Printf("xdaqd: metrics on http://%s/metrics", ln.Addr())
	}
	for _, spec := range modules {
		mod, instStr, _ := strings.Cut(spec, ":")
		instance := 0
		if instStr != "" {
			instance, err = strconv.Atoi(instStr)
			if err != nil {
				log.Fatalf("xdaqd: bad module instance in %q", spec)
			}
		}
		d, err := executive.Instantiate(mod, instance, nil)
		if err != nil {
			log.Fatalf("xdaqd: %v (registered: %v)", err, executive.Modules())
		}
		id, err := n.Plug(d)
		if err != nil {
			log.Fatalf("xdaqd: plug %s: %v", spec, err)
		}
		log.Printf("xdaqd: plugged %s as %v", spec, id)
	}

	if *health > 0 {
		n.StartHealth(xdaq.HealthOptions{Interval: *health, Logf: log.Printf})
		log.Printf("xdaqd: peer health monitor on, probing every %v", *health)
	}

	log.Printf("xdaqd: node %d (%s) listening on %s; modules: %v",
		*node, *name, tr.Addr(), executive.Modules())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("xdaqd: shutting down")
}
