// Command xdaqd runs one XDAQ processing node as its own OS process: an
// executive with a TCP peer transport (and optionally shared-memory rings
// toward colocated processes), joined into a cluster through the
// bootstrap protocol and ready to be configured and controlled by a
// primary host (cmd/xdaqctl) through I2O executive messages.
//
// Example three-process cluster on one machine:
//
//	xdaqd -node 1 -listen 127.0.0.1:9101 &                  # the seed
//	xdaqd -node 2 -listen 127.0.0.1:9102 -join 127.0.0.1:9101 &
//	xdaqd -node 3 -listen 127.0.0.1:9103 -join 127.0.0.1:9101 &
//	xdaqctl -node 100 -join 127.0.0.1:9101 -e 'members; status 1'
//
// Colocated processes that share a -shm directory exchange frames over
// mmap'd rings instead of sockets, falling back to TCP if the rings fail.
// The legacy -peer node=addr flag still wires static peers without the
// bootstrap protocol.
//
// Modules available to ExecPlugin are those compiled in through the
// module registry (see internal/modules): echo, daq.evm, daq.ru, daq.bu.
// Use -module to plug modules at startup without a controller.
//
// -policy file.tcl starts the self-tuning control plane: the node plugs
// a cp.autopilot device that scrapes every cluster member and actuates
// the rules in the policy script (see doc/control-plane.md).  Inspect
// its decisions with `xdaqctl ... -e 'policy <node>'`.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"xdaq"
	"xdaq/internal/controlplane"
	"xdaq/internal/executive"
	"xdaq/internal/i2o"
	_ "xdaq/internal/modules"
)

type peerList map[i2o.NodeID]string

func (p peerList) String() string {
	parts := make([]string, 0, len(p))
	for n, a := range p {
		parts = append(parts, fmt.Sprintf("%d=%s", n, a))
	}
	return strings.Join(parts, ",")
}

func (p peerList) Set(v string) error {
	node, addr, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want node=addr, got %q", v)
	}
	n, err := strconv.ParseUint(node, 10, 32)
	if err != nil {
		return fmt.Errorf("bad node %q: %v", node, err)
	}
	p[i2o.NodeID(n)] = addr
	return nil
}

type moduleList []string

func (m *moduleList) String() string     { return strings.Join(*m, ",") }
func (m *moduleList) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var (
		node    = flag.Uint("node", 1, "this IOP's node identifier")
		name    = flag.String("name", "", "executive name (default: node<N>)")
		listen  = flag.String("listen", "127.0.0.1:0", "TCP peer transport listen address")
		join    = flag.String("join", "", "seed member address to join (empty: start a new cluster as the seed)")
		shmDir  = flag.String("shm", "", "shared-memory ring directory for colocated processes (empty disables)")
		metrics = flag.String("metrics", "", "HTTP metrics address, e.g. 127.0.0.1:9190 (empty disables)")
		alloc   = flag.String("alloc", "table", "buffer pool scheme: table or fixed")
		disp    = flag.Int("dispatchers", 0, "parallel dispatch workers (0 or 1: the single I2O loop)")
		health  = flag.Duration("health", 0, "peer health probe interval (0: the 1s default; negative disables)")
		policy  = flag.String("policy", "", "control-plane policy script; plugs the cp.autopilot device (empty disables)")
		ptick   = flag.Duration("policy-tick", time.Second, "autopilot scrape interval")
		peers   = peerList{}
		modules = moduleList{}
	)
	flag.Var(peers, "peer", "static peer as node=addr, wired without the bootstrap protocol (repeatable)")
	flag.Var(&modules, "module", "module to plug at startup as name[:instance] (repeatable)")
	flag.Parse()

	if *name == "" {
		*name = fmt.Sprintf("node%d", *node)
	}
	cfg := xdaq.ClusterConfig{
		Node: xdaq.NodeOptions{
			Name:        *name,
			Node:        i2o.NodeID(*node),
			Allocator:   *alloc,
			Dispatchers: *disp,
		},
		Listen:   *listen,
		Seed:     *join,
		ShmDir:   *shmDir,
		NoHealth: *health < 0,
		Logf:     log.Printf,
	}
	if *health > 0 {
		cfg.Health = &xdaq.HealthOptions{Interval: *health, Logf: log.Printf}
	}
	cl, err := xdaq.Join(context.Background(), cfg)
	if err != nil {
		log.Fatalf("xdaqd: %v", err)
	}
	defer cl.Close()
	n := cl.Node()

	for peer, addr := range peers {
		cl.Listener().AddPeer(peer, addr)
	}
	if *metrics != "" {
		ln, err := net.Listen("tcp", *metrics)
		if err != nil {
			log.Fatalf("xdaqd: metrics listen %s: %v", *metrics, err)
		}
		defer ln.Close()
		mux := http.NewServeMux()
		mux.Handle("/metrics", n.Exec.Metrics())
		go func() {
			if err := http.Serve(ln, mux); err != nil {
				log.Printf("xdaqd: metrics server: %v", err)
			}
		}()
		log.Printf("xdaqd: metrics on http://%s/metrics", ln.Addr())
	}
	for _, spec := range modules {
		mod, instStr, _ := strings.Cut(spec, ":")
		instance := 0
		if instStr != "" {
			instance, err = strconv.Atoi(instStr)
			if err != nil {
				log.Fatalf("xdaqd: bad module instance in %q", spec)
			}
		}
		d, err := executive.Instantiate(mod, instance, nil)
		if err != nil {
			log.Fatalf("xdaqd: %v (registered: %v)", err, executive.Modules())
		}
		id, err := n.Plug(d)
		if err != nil {
			log.Fatalf("xdaqd: plug %s: %v", spec, err)
		}
		log.Printf("xdaqd: plugged %s as %v", spec, id)
	}

	if *policy != "" {
		src, err := os.ReadFile(*policy)
		if err != nil {
			log.Fatalf("xdaqd: %v", err)
		}
		pol, err := controlplane.Load(filepath.Base(*policy), string(src))
		if err != nil {
			log.Fatalf("xdaqd: %v", err)
		}
		ap, err := controlplane.NewAutopilot(controlplane.AutopilotConfig{
			Exec:     n.Exec,
			Policy:   pol,
			Interval: *ptick,
			Nodes: func() []i2o.NodeID {
				members := cl.Members()
				out := make([]i2o.NodeID, 0, len(members))
				for _, m := range members {
					out = append(out, m.Node)
				}
				return out
			},
		})
		if err != nil {
			log.Fatalf("xdaqd: autopilot: %v", err)
		}
		defer ap.Close()
		log.Printf("xdaqd: autopilot on policy %s (hash %s, %d rules, tick %v)",
			pol.Name, pol.Hash, len(pol.Rules), *ptick)
	}

	role := "seed"
	if *join != "" {
		role = fmt.Sprintf("joined via %s", *join)
	}
	log.Printf("xdaqd: node %d (%s) listening on %s (%s, %d members); modules: %v",
		*node, *name, cl.Listener().Addr(), role, len(cl.Members()), executive.Modules())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("xdaqd: leaving cluster")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := cl.Leave(ctx); err != nil {
		log.Printf("xdaqd: leave: %v", err)
	}
	log.Printf("xdaqd: shutting down")
}
