// Command benchtab regenerates the paper's evaluation artifacts — the
// figure 6 latency series, the Table 1 whitebox breakdown, the §5
// allocator ablation and the §6.2 ORB comparison — plus the design
// ablations indexed in DESIGN.md, printing each next to the values the
// paper reports.
//
// Absolute numbers will differ (the substrate is a simulated fabric on a
// modern machine, not a Pentium II with a Myrinet NIC); what must hold is
// the shape: who wins, by roughly what factor, and that the framework
// overhead is constant in payload size.
//
// Usage:
//
//	benchtab [-experiment fig6|table1|alloc|orb|polling|parallel|priority|all]
//	         [-iters N] [-payload BYTES]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"xdaq/internal/benchlab"
)

var (
	experiment = flag.String("experiment", "all", "which experiment to run: fig6, table1, alloc, orb, polling, parallel, priority or all")
	iters      = flag.Int("iters", 2000, "calls per measurement point (the paper used 100000)")
	payload    = flag.Int("payload", 64, "payload bytes for the fixed-size experiments")
)

func main() {
	flag.Parse()
	run := func(name string, fn func() error) {
		if *experiment != "all" && *experiment != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	run("fig6", fig6)
	run("table1", table1)
	run("alloc", alloc)
	run("orb", orbCompare)
	run("polling", polling)
	run("parallel", parallel)
	run("priority", priority)
	switch *experiment {
	case "all", "fig6", "table1", "alloc", "orb", "polling", "parallel", "priority":
	default:
		fmt.Fprintf(os.Stderr, "benchtab: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

func fig6() error {
	fmt.Println("== Figure 6: GM/XDAQ blackbox ping-pong latencies (one-way, µs) ==")
	fmt.Println("   paper testbed: PII 400 MHz, Myrinet/GM 1.1.3; overhead fit y = -7e-05x + 9.105")
	res, err := benchlab.RunFig6(*iters, "table")
	if err != nil {
		return err
	}
	fmt.Printf("%10s %14s %14s %14s\n", "bytes", "XDAQ/GM", "GM direct", "overhead")
	for i := range res.XDAQ {
		fmt.Printf("%10d %14.2f %14.2f %14.2f\n",
			res.XDAQ[i].Bytes, us(res.XDAQ[i].OneWay), us(res.Direct[i].OneWay), us(res.Overhead[i].OneWay))
	}
	fmt.Printf("\nlinear fits (µs = slope*bytes + intercept):\n")
	fmt.Printf("  %-12s slope=%+.6f  intercept=%8.3f\n", "XDAQ/GM", res.FitXDAQ.Slope, res.FitXDAQ.Intercept)
	fmt.Printf("  %-12s slope=%+.6f  intercept=%8.3f\n", "GM direct", res.FitDirect.Slope, res.FitDirect.Intercept)
	fmt.Printf("  %-12s slope=%+.6f  intercept=%8.3f   (paper: slope=-0.00007 intercept=9.105)\n",
		"overhead", res.FitOverhead.Slope, res.FitOverhead.Intercept)
	fmt.Printf("\nshape check: overhead is payload-independent when |slope*4096| << intercept: %.3f << %.3f\n\n",
		abs(res.FitOverhead.Slope*4096), res.FitOverhead.Intercept)
	return nil
}

func table1() error {
	fmt.Println("== Table 1: µseconds spent in the XDAQ framework (whitebox, medians) ==")
	rows, err := benchlab.RunTable1(*iters, *payload, "table")
	if err != nil {
		return err
	}
	fmt.Printf("%-24s %12s %12s %10s %9s\n", "Activity", "paper (µs)", "here (µs)", "σ (µs)", "samples")
	var paperSum, hereSum float64
	for _, row := range rows {
		fmt.Printf("%-24s %12.2f %12.2f %10.2f %9d\n",
			row.Activity, row.Paper, us(row.Stats.Median), us(row.Stats.StdDev), row.Stats.Count)
		if row.Activity != "pool.frameAlloc" && row.Activity != "pool.frameFree" {
			paperSum += row.Paper
			hereSum += us(row.Stats.Median)
		}
	}
	fmt.Printf("%-24s %12.2f %12.2f   (frameAlloc/frameFree are cross checks, not summed)\n\n",
		"sum of overhead", paperSum, hereSum)
	return nil
}

func alloc() error {
	fmt.Println("== §5 allocator ablation: original fixed pool vs optimized table pool ==")
	fmt.Println("   paper: blackbox overhead 8.9 µs (fixed, s=0.6) -> 4.9 µs (table, s=0.8)")
	res, err := benchlab.RunAllocAblation(*iters, *payload)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %16s %18s\n", "allocator", "one-way (µs)", "overhead (µs)")
	for _, r := range res {
		fmt.Printf("%-10s %16.2f %18.2f\n", r.Allocator, us(r.OneWay), us(r.Overhead))
	}
	if len(res) == 2 && res[1].Overhead > 0 {
		fmt.Printf("ratio fixed/table overhead: %.2fx   (paper: %.2fx)\n\n",
			float64(res[0].Overhead)/float64(res[1].Overhead), 8.9/4.9)
	}
	return nil
}

func orbCompare() error {
	fmt.Println("== §6.2 comparison: CORBA-like ORB vs XDAQ over the same fabric ==")
	fmt.Println("   paper: ORB core overhead ~90 µs/call vs XDAQ ~9 µs")
	orbLat, err := benchlab.RunORB(*iters, *payload)
	if err != nil {
		return err
	}
	rig, err := benchlab.NewGMRig(benchlab.RigConfig{})
	if err != nil {
		return err
	}
	xdaqLat, err := rig.MeasureXDAQ(*payload, *iters)
	rig.Close()
	if err != nil {
		return err
	}
	direct, err := benchlab.NewGMDirect()
	if err != nil {
		return err
	}
	base, err := direct.Measure(*payload, *iters)
	direct.Close()
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %16s %18s\n", "middleware", "one-way (µs)", "overhead (µs)")
	fmt.Printf("%-12s %16.2f %18.2f\n", "ORB", us(orbLat), us(orbLat-base))
	fmt.Printf("%-12s %16.2f %18.2f\n", "XDAQ", us(xdaqLat), us(xdaqLat-base))
	if xdaqLat > base {
		fmt.Printf("overhead ratio ORB/XDAQ: %.1fx   (paper: ~10x)\n\n",
			float64(orbLat-base)/float64(xdaqLat-base))
	}
	return nil
}

func polling() error {
	fmt.Println("== §4 ablation: peer transport polling vs task mode ==")
	fmt.Println("   paper: a slow PT in the polling set negates the benefits of a fast interface")
	res, err := benchlab.RunPollingVsTask(*iters, *payload, 100*time.Microsecond)
	if err != nil {
		return err
	}
	fmt.Printf("%-28s %16s\n", "configuration", "one-way (µs)")
	for _, r := range res {
		fmt.Printf("%-28s %16.2f\n", r.Config, us(r.OneWay))
	}
	fmt.Println()
	return nil
}

func parallel() error {
	fmt.Println("== §4 ablation: multiple peer transports in parallel ==")
	fmt.Println("   paper: per-device routes allow sending/receiving over several PTs in parallel")
	res, err := benchlab.RunParallelTransports(2*time.Second, 131072, 4)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %18s\n", "transports", "round trips/s")
	for _, r := range res {
		fmt.Printf("%-12d %18.0f\n", r.Transports, r.Throughput)
	}
	if len(res) == 2 && res[0].Throughput > 0 {
		fmt.Printf("scaling: %.2fx\n\n", res[1].Throughput/res[0].Throughput)
	}
	return nil
}

func priority() error {
	fmt.Println("== §3.2 ablation: seven-level priority scheduling ==")
	fmt.Println("   an urgent probe bypasses a 512-frame bulk backlog; a bulk probe waits behind it")
	res, err := benchlab.RunPriorityDispatch(min(*iters, 200), 512)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %26s\n", "priority", "gate-to-reply latency (µs)")
	for _, r := range res {
		fmt.Printf("%-10d %26.2f\n", r.Priority, us(r.Latency))
	}
	if len(res) == 2 && res[0].Latency > 0 {
		fmt.Printf("bulk/urgent latency ratio: %.1fx\n\n", float64(res[1].Latency)/float64(res[0].Latency))
	}
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
