// Command xdaqsoak runs the deterministic chaos/soak harness from
// internal/chaos against an in-process cluster for as long as asked,
// printing the reproduction seed up front and a full report — violations,
// the fault schedule, and per-node trace rings — whenever an invariant
// checker fires.
//
// Every run is a pure function of its seed: the fault schedule, kill
// victims, rescales, and bulk sizes all derive from it, so a failure
// printed by CI or a long soak reproduces exactly with
//
//	xdaqsoak -seed N [same shape flags]
//
// Examples:
//
//	xdaqsoak                                   # 30s, 3 nodes, mixed fabric, light faults
//	xdaqsoak -duration 10m -faults heavy       # longer and nastier
//	xdaqsoak -fabric tcp -faults heavy -rounds 20
//	xdaqsoak -seed 4242 -plan                  # print the schedule, run nothing
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"xdaq/internal/chaos"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the process plumbing, so tests can drive the driver:
// parse flags, build chaos.Options, print the plan or run the soak.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xdaqsoak", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed     = fs.Int64("seed", 0, "run seed; 0 picks one from the clock (printed for reproduction)")
		duration = fs.Duration("duration", 30*time.Second, "total storm time, split across rounds")
		nodes    = fs.Int("nodes", 3, "cluster size")
		fabric   = fs.String("fabric", "gm+tcp", "interconnect: loopback, tcp, gm, or gm+tcp")
		faultLvl = fs.String("faults", "light", "fault intensity: none, light, or heavy")
		rounds   = fs.Int("rounds", 0, "storm/quiesce/check cycles; 0 scales with duration (one per ~5s, at least 3)")
		workers  = fs.Int("workers", 3, "storm goroutines per node")
		kill     = fs.Bool("kill", true, "kill one node's data transport mid-run (gm+tcp only)")
		rescale  = fs.Bool("rescale", true, "churn dispatcher counts between rounds")
		bulk     = fs.Bool("bulk", true, "add SGL bulk transfers on serializing fabrics")
		eb       = fs.Bool("eb", true, "add DAQ event-builder rounds")
		killbu   = fs.Bool("killbu", false, "kill one builder unit mid-round and audit the shard-map rebalance (needs -eb)")
		store    = fs.Bool("storage", true, "add striped-storage replay rounds with an on-disk exactly-once audit")
		killsw   = fs.Bool("killsw", false, "crash one storage writer mid-replay and audit the recovery (needs -storage)")
		hotdev   = fs.Bool("hotdev", false, "turn one node's device hot mid-run and let the autopilot rescale it (disables -rescale)")
		killcp   = fs.Bool("killcp", false, "kill the autopilot on the last round and audit graceful degradation (needs -hotdev)")
		planOnly = fs.Bool("plan", false, "print the run's schedule and exit without running")
		quiet    = fs.Bool("q", false, "suppress progress diagnostics")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	if *rounds <= 0 {
		*rounds = int(*duration / (5 * time.Second))
		if *rounds < 3 {
			*rounds = 3
		}
	}
	o := chaos.Options{
		Seed:         *seed,
		Nodes:        *nodes,
		Fabric:       *fabric,
		Rounds:       *rounds,
		Duration:     *duration,
		Faults:       *faultLvl,
		Workers:      *workers,
		Kill:         *kill && *fabric == "gm+tcp",
		Rescale:      *rescale && !*hotdev,
		Bulk:         *bulk,
		EventBuilder: *eb,
		KillBU:       *killbu && *eb,
		Storage:      *store,
		KillSW:       *killsw && *store,
		HotDev:       *hotdev,
		KillCP:       *killcp && *hotdev,
	}
	if *hotdev {
		// The hot round is meaningful only with the autopilot watching;
		// the shipped policy rescales on sustained queue pressure.
		o.Policy = chaos.HotDevPolicy
	}
	if !*quiet {
		o.Logf = log.New(stderr, "", log.Ltime|log.Lmicroseconds).Printf
	}

	if *planOnly {
		fmt.Fprint(stdout, chaos.PlanString(o))
		return 0
	}

	fmt.Fprintf(stdout, "xdaqsoak: seed=%d nodes=%d fabric=%s faults=%s rounds=%d duration=%v\n",
		o.Seed, o.Nodes, o.Fabric, o.Faults, o.Rounds, o.Duration)
	start := time.Now()
	rep, err := chaos.Run(o)
	if err != nil {
		// Run's error already carries the report: violations, the seed to
		// reproduce with, the schedule, and the trace rings.
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintf(stdout, "%selapsed %v, all invariants held\n", rep, time.Since(start).Round(time.Millisecond))
	return 0
}
