package main

import (
	"bytes"
	"strings"
	"testing"
)

// plan invokes the driver with -plan and returns what it printed: the full
// deterministic schedule, including every per-peer fault-stream preview.
func plan(t *testing.T, args ...string) string {
	t.Helper()
	var out, errb bytes.Buffer
	if code := run(append(args, "-plan"), &out, &errb); code != 0 {
		t.Fatalf("xdaqsoak %v: exit %d\n%s", args, code, errb.String())
	}
	return out.String()
}

// The reproducibility contract: `xdaqsoak -seed N` derives its entire fault
// schedule from the seed, so two invocations with the same seed print
// byte-identical schedules, and a different seed prints a different one.
func TestSeedReproducesFaultSchedule(t *testing.T) {
	args := []string{"-seed", "31337", "-fabric", "tcp", "-faults", "heavy", "-nodes", "4", "-rounds", "5"}
	first := plan(t, args...)
	second := plan(t, args...)
	if first != second {
		t.Fatalf("same seed printed different schedules:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
	for _, want := range []string{"seed=31337", "send rules", "wire rules", "rounds:"} {
		if !strings.Contains(first, want) {
			t.Fatalf("schedule missing %q:\n%s", want, first)
		}
	}
	if other := plan(t, "-seed", "31338", "-fabric", "tcp", "-faults", "heavy", "-nodes", "4", "-rounds", "5"); other == first {
		t.Fatal("different seeds printed identical schedules")
	}
}

// A seeded short soak must also *run* identically: same seed, same options,
// same fault verdict sequence — asserted end to end by the chaos package's
// TestRunPlansMatchAcrossRuns; here we pin the driver's flag plumbing, which
// must not inject any nondeterminism of its own (clock seeds, round
// derivation) when a seed is given.
func TestDriverDerivesRoundsFromDuration(t *testing.T) {
	// 30s default duration → 6 rounds; short durations clamp to 3.
	long := plan(t, "-seed", "7", "-duration", "30s")
	if !strings.Contains(long, "rounds=6") {
		t.Fatalf("30s run should script 6 rounds:\n%s", long)
	}
	short := plan(t, "-seed", "7", "-duration", "1s")
	if !strings.Contains(short, "rounds=3") {
		t.Fatalf("1s run should clamp to 3 rounds:\n%s", short)
	}
}

func TestBadFlagsFailCleanly(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "no-such-flag") {
		t.Fatalf("usage message missing offending flag:\n%s", errb.String())
	}
}
