// Command benchjson converts `go test -bench` text output on stdin into a
// JSON document on stdout, so benchmark runs can be archived and diffed
// (see the Makefile's bench and bench-remote targets, which write
// BENCH_dispatch.json and BENCH_remote.json).
//
// Usage:
//
//	go test -bench Dispatch -benchmem . | go run ./cmd/benchjson > BENCH_dispatch.json
//	go run ./cmd/benchjson BENCH_dispatch.json BENCH_remote.json > BENCH_all.json
//	go run ./cmd/benchjson -compare [-tol 0.05] BENCH_remote.json
//
// Each benchmark line becomes one record with the standard columns
// (iterations, ns/op, B/op, allocs/op, MB/s) plus any custom
// b.ReportMetric values keyed by their unit.  Context lines (goos, goarch,
// cpu, pkg) are captured into the header.  Repeated lines for the same
// benchmark (a `-count N` run) collapse into one record holding the
// per-column medians and a "samples" count; medians survive the
// correlated load drift of a busy host far better than any single run.
//
// With file arguments benchjson runs in merge mode instead: each argument
// is a previously archived JSON document, and the output is one document
// holding every result.  The header comes from the first file; results
// from a file whose package differs are tagged with their own pkg so the
// provenance survives the merge.
//
// With -compare, benchjson reads one archived document and pairs every
// result whose name has the left path component of -pair (default
// "batched:unbatched") with the counterpart whose name has the right
// component instead, printing a delta table and exiting non-zero if the
// left side is slower anywhere (beyond -tol, a fraction; default 0).
// -min raises the bar from "no slower" to a required fractional gain:
// -min 1.0 demands the left side deliver at least 2x the baseline at
// every pairing (-tol still forgives a band below that floor).  -grep
// restricts the gate to left-side names matching a regular expression.
// This is the `make bench-gate` regression gate for the remote data path
// (batched vs unbatched), the hierarchical event builder (topo=tree vs
// topo=flat at high readout counts), and the striped-storage scaling
// claim (writers=8 vs writers=1):
//
//	benchjson -compare -tol 0.05 BENCH_remote.json
//	benchjson -compare -pair topo=tree:topo=flat -grep 'rus=(64|256)$' BENCH_eb.json
//	benchjson -compare -pair writers=8:writers=1 -min 1.0 BENCH_storage.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"` // set in merged documents when it differs from the header
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	MBPerSec   float64            `json:"mb_per_s,omitempty"`
	BytesPerOp int64              `json:"bytes_per_op,omitempty"`
	AllocsOp   int64              `json:"allocs_per_op,omitempty"`
	Samples    int                `json:"samples,omitempty"` // > 1 when collapsed from a -count run
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the whole document.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	compareMode := flag.Bool("compare", false, "compare paired results in one archived document")
	tol := flag.Float64("tol", 0, "tolerated fractional slowdown in -compare mode (0.05 = 5%)")
	minGain := flag.Float64("min", 0, "required fractional gain in -compare mode (1.0 = the gated side must be 2x its baseline)")
	pair := flag.String("pair", "batched:unbatched", "colon-separated path components pairing the gated side with its baseline")
	grep := flag.String("grep", "", "regexp restricting -compare to matching gated-side names")
	flag.Parse()
	if *compareMode {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly one archived JSON document")
			os.Exit(2)
		}
		left, right, found := strings.Cut(*pair, ":")
		if !found || left == "" || right == "" {
			fmt.Fprintln(os.Stderr, "benchjson: -pair must be two colon-separated path components")
			os.Exit(2)
		}
		var re *regexp.Regexp
		if *grep != "" {
			var err error
			if re, err = regexp.Compile(*grep); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: -grep: %v\n", err)
				os.Exit(2)
			}
		}
		ok, err := compare(flag.Arg(0), *tol, *minGain, left, right, re)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		if !ok {
			os.Exit(1)
		}
		return
	}
	if flag.NArg() > 0 {
		if err := merge(flag.Args()); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}
	rep := Report{Results: []Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read stdin: %v\n", err)
		os.Exit(1)
	}
	rep.Results = collapse(rep.Results)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// merge reads previously archived reports and writes one combined report.
// The header (goos/goarch/cpu/pkg) is taken from the first file; results
// whose source package differs from that header carry their own pkg.
func merge(files []string) error {
	var out Report
	out.Results = []Result{}
	for i, name := range files {
		data, err := os.ReadFile(name)
		if err != nil {
			return err
		}
		var rep Report
		if err := json.Unmarshal(data, &rep); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if i == 0 {
			out.Goos, out.Goarch, out.CPU, out.Pkg = rep.Goos, rep.Goarch, rep.CPU, rep.Pkg
		}
		for _, r := range rep.Results {
			if r.Pkg == "" && rep.Pkg != out.Pkg {
				r.Pkg = rep.Pkg
			}
			out.Results = append(out.Results, r)
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// collapse folds results that share a name (a `-count N` run) into one
// record per name.  Timing columns (ns/op, MB/s, custom metrics) take the
// median across samples — robust against the correlated load drift that
// makes any single run on a shared host untrustworthy.  Allocation columns
// (B/op, allocs/op) take the maximum instead, so an allocation regression
// in even one sample cannot hide behind four clean ones.
func collapse(in []Result) []Result {
	groups := make(map[string][]Result, len(in))
	order := make([]string, 0, len(in))
	for _, r := range in {
		if _, seen := groups[r.Name]; !seen {
			order = append(order, r.Name)
		}
		groups[r.Name] = append(groups[r.Name], r)
	}
	out := make([]Result, 0, len(order))
	for _, name := range order {
		g := groups[name]
		if len(g) == 1 {
			out = append(out, g[0])
			continue
		}
		agg := Result{Name: name, Pkg: g[0].Pkg, Samples: len(g)}
		var ns, mb, iters []float64
		for _, r := range g {
			ns = append(ns, r.NsPerOp)
			mb = append(mb, r.MBPerSec)
			iters = append(iters, float64(r.Iterations))
			if r.BytesPerOp > agg.BytesPerOp {
				agg.BytesPerOp = r.BytesPerOp
			}
			if r.AllocsOp > agg.AllocsOp {
				agg.AllocsOp = r.AllocsOp
			}
			for unit := range r.Metrics {
				if agg.Metrics == nil {
					agg.Metrics = make(map[string]float64)
				}
				agg.Metrics[unit] = 0 // placeholder; median filled in below
			}
		}
		agg.NsPerOp = median(ns)
		agg.MBPerSec = median(mb)
		agg.Iterations = int64(median(iters))
		for unit := range agg.Metrics {
			vals := make([]float64, 0, len(g))
			for _, r := range g {
				if v, ok := r.Metrics[unit]; ok {
					vals = append(vals, v)
				}
			}
			agg.Metrics[unit] = median(vals)
		}
		out = append(out, agg)
	}
	return out
}

// median returns the middle value (mean of the middle two for even n).
func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// compare loads one archived document and pairs each result whose name
// has the `left` path component with the twin whose name carries `right`
// in that component's place.  It prints a delta table and returns false
// if the left side delivers less throughput (or, when no MB/s column
// exists, more ns/op) beyond the tolerated fraction tol at any pairing.
// min raises the floor from zero to a required fractional gain — the
// speedup-claim gate (min 1.0: left must be at least 2x right), with tol
// still forgiving a band below it.  re, when non-nil, restricts the gate
// to left-side names it matches.  Unpaired left-side results are an
// error: a gate that silently skips sizes is not a gate.
func compare(file string, tol, min float64, left, right string, re *regexp.Regexp) (bool, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return false, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return false, fmt.Errorf("%s: %w", file, err)
	}
	byName := make(map[string]Result, len(rep.Results))
	for _, r := range collapse(rep.Results) {
		byName[stripCPUSuffix(r.Name)] = r
	}
	var names []string
	for name := range byName {
		if hasComponent(name, left) && (re == nil || re.MatchString(name)) {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return false, fmt.Errorf("%s: no benchmark with a %q component matching the filter", file, left)
	}
	sort.Strings(names)
	fmt.Printf("%-52s %12s %12s %8s\n", "benchmark", left, right, "delta")
	ok := true
	for _, name := range names {
		gated := byName[name]
		base, found := byName[replaceComponent(name, left, right)]
		if !found {
			return false, fmt.Errorf("%s: no %q twin for %s", file, right, name)
		}
		label := replaceComponent(name, left, "")
		var delta float64 // fractional gain of the gated side; < 0 is a loss
		var col string
		if gated.MBPerSec > 0 && base.MBPerSec > 0 {
			delta = gated.MBPerSec/base.MBPerSec - 1
			col = fmt.Sprintf("%-52s %9.2f MB/s %9.2f MB/s", label, gated.MBPerSec, base.MBPerSec)
		} else if gated.NsPerOp > 0 && base.NsPerOp > 0 {
			delta = base.NsPerOp/gated.NsPerOp - 1
			col = fmt.Sprintf("%-52s %9.0f ns/op %9.0f ns/op", label, gated.NsPerOp, base.NsPerOp)
		} else {
			return false, fmt.Errorf("%s: %s has neither MB/s nor ns/op", file, name)
		}
		mark := ""
		if delta < min-tol {
			mark = "  FAIL"
			ok = false
		}
		fmt.Printf("%s %+7.1f%%%s\n", col, delta*100, mark)
	}
	floor := fmt.Sprintf("tol %.1f%%", tol*100)
	if min > 0 {
		floor = fmt.Sprintf("required gain %.0f%%, tol %.1f%%", min*100, tol*100)
	}
	if !ok {
		fmt.Printf("FAIL: %s below its %s baseline floor (%s)\n", left, right, floor)
	} else {
		fmt.Printf("ok: %s >= %s at every pairing (%s)\n", left, right, floor)
	}
	return ok, nil
}

// hasComponent reports whether one "/"-separated component of name equals
// comp exactly (a substring match would conflate topo=flat with
// topo=flat8 and the like).
func hasComponent(name, comp string) bool {
	for _, seg := range strings.Split(name, "/") {
		if seg == comp {
			return true
		}
	}
	return false
}

// replaceComponent swaps the first path component equal to old for new;
// an empty new drops the component entirely (for display labels).
func replaceComponent(name, old, new string) string {
	segs := strings.Split(name, "/")
	for i, seg := range segs {
		if seg == old {
			if new == "" {
				return strings.Join(append(segs[:i:i], segs[i+1:]...), "/")
			}
			segs[i] = new
			return strings.Join(segs, "/")
		}
	}
	return name
}

// stripCPUSuffix removes the trailing -N GOMAXPROCS tag Go appends to
// benchmark names when running with more than one CPU.
func stripCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// parseLine parses one benchmark result line of the form:
//
//	BenchmarkName-8   123456   987 ns/op   12 B/op   3 allocs/op   45.6 custom-unit
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	// The remainder alternates value, unit.
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
		case "MB/s":
			r.MBPerSec = val
		case "B/op":
			r.BytesPerOp = int64(val)
		case "allocs/op":
			r.AllocsOp = int64(val)
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = val
		}
	}
	return r, true
}
