// Command benchjson converts `go test -bench` text output on stdin into a
// JSON document on stdout, so benchmark runs can be archived and diffed
// (see the Makefile's bench target, which writes BENCH_dispatch.json).
//
// Usage:
//
//	go test -bench Dispatch -benchmem . | go run ./cmd/benchjson > BENCH_dispatch.json
//
// Each benchmark line becomes one record with the standard columns
// (iterations, ns/op, B/op, allocs/op, MB/s) plus any custom
// b.ReportMetric values keyed by their unit.  Context lines (goos, goarch,
// cpu, pkg) are captured into the header.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	MBPerSec   float64            `json:"mb_per_s,omitempty"`
	BytesPerOp int64              `json:"bytes_per_op,omitempty"`
	AllocsOp   int64              `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the whole document.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	rep := Report{Results: []Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read stdin: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseLine parses one benchmark result line of the form:
//
//	BenchmarkName-8   123456   987 ns/op   12 B/op   3 allocs/op   45.6 custom-unit
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	// The remainder alternates value, unit.
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
		case "MB/s":
			r.MBPerSec = val
		case "B/op":
			r.BytesPerOp = int64(val)
		case "allocs/op":
			r.AllocsOp = int64(val)
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = val
		}
	}
	return r, true
}
