// Command benchjson converts `go test -bench` text output on stdin into a
// JSON document on stdout, so benchmark runs can be archived and diffed
// (see the Makefile's bench and bench-remote targets, which write
// BENCH_dispatch.json and BENCH_remote.json).
//
// Usage:
//
//	go test -bench Dispatch -benchmem . | go run ./cmd/benchjson > BENCH_dispatch.json
//	go run ./cmd/benchjson BENCH_dispatch.json BENCH_remote.json > BENCH_all.json
//
// Each benchmark line becomes one record with the standard columns
// (iterations, ns/op, B/op, allocs/op, MB/s) plus any custom
// b.ReportMetric values keyed by their unit.  Context lines (goos, goarch,
// cpu, pkg) are captured into the header.
//
// With file arguments benchjson runs in merge mode instead: each argument
// is a previously archived JSON document, and the output is one document
// holding every result.  The header comes from the first file; results
// from a file whose package differs are tagged with their own pkg so the
// provenance survives the merge.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"` // set in merged documents when it differs from the header
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	MBPerSec   float64            `json:"mb_per_s,omitempty"`
	BytesPerOp int64              `json:"bytes_per_op,omitempty"`
	AllocsOp   int64              `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the whole document.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	if len(os.Args) > 1 {
		if err := merge(os.Args[1:]); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}
	rep := Report{Results: []Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read stdin: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// merge reads previously archived reports and writes one combined report.
// The header (goos/goarch/cpu/pkg) is taken from the first file; results
// whose source package differs from that header carry their own pkg.
func merge(files []string) error {
	var out Report
	out.Results = []Result{}
	for i, name := range files {
		data, err := os.ReadFile(name)
		if err != nil {
			return err
		}
		var rep Report
		if err := json.Unmarshal(data, &rep); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if i == 0 {
			out.Goos, out.Goarch, out.CPU, out.Pkg = rep.Goos, rep.Goarch, rep.CPU, rep.Pkg
		}
		for _, r := range rep.Results {
			if r.Pkg == "" && rep.Pkg != out.Pkg {
				r.Pkg = rep.Pkg
			}
			out.Results = append(out.Results, r)
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// parseLine parses one benchmark result line of the form:
//
//	BenchmarkName-8   123456   987 ns/op   12 B/op   3 allocs/op   45.6 custom-unit
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	// The remainder alternates value, unit.
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
		case "MB/s":
			r.MBPerSec = val
		case "B/op":
			r.BytesPerOp = int64(val)
		case "allocs/op":
			r.AllocsOp = int64(val)
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = val
		}
	}
	return r, true
}
