package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkRemoteSend-4   1000   9357 ns/op   27.36 MB/s   0 B/op   0 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if r.Name != "BenchmarkRemoteSend-4" || r.Iterations != 1000 ||
		r.NsPerOp != 9357 || r.MBPerSec != 27.36 || r.AllocsOp != 0 {
		t.Fatalf("parsed %+v", r)
	}
	if _, ok := parseLine("not a benchmark"); ok {
		t.Fatal("junk line parsed")
	}
}

func writeReport(t *testing.T, dir, name string, rep Report) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMergeCombinesReports(t *testing.T) {
	dir := t.TempDir()
	a := writeReport(t, dir, "a.json", Report{
		Goos: "linux", Pkg: "xdaq",
		Results: []Result{{Name: "BenchmarkDispatch-4", Iterations: 10}},
	})
	b := writeReport(t, dir, "b.json", Report{
		Goos: "linux", Pkg: "xdaq/internal/transport/tcp",
		Results: []Result{{Name: "BenchmarkRemoteSend-4", Iterations: 20}},
	})

	// Capture merge's stdout.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	mergeErr := merge([]string{a, b})
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	if mergeErr != nil {
		t.Fatal(mergeErr)
	}

	var out Report
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Pkg != "xdaq" || len(out.Results) != 2 {
		t.Fatalf("merged %+v", out)
	}
	if out.Results[0].Pkg != "" {
		t.Fatalf("first result gained a pkg tag: %+v", out.Results[0])
	}
	if out.Results[1].Pkg != "xdaq/internal/transport/tcp" {
		t.Fatalf("second result lost its provenance: %+v", out.Results[1])
	}
}
