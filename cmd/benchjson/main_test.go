package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkRemoteSend-4   1000   9357 ns/op   27.36 MB/s   0 B/op   0 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if r.Name != "BenchmarkRemoteSend-4" || r.Iterations != 1000 ||
		r.NsPerOp != 9357 || r.MBPerSec != 27.36 || r.AllocsOp != 0 {
		t.Fatalf("parsed %+v", r)
	}
	if _, ok := parseLine("not a benchmark"); ok {
		t.Fatal("junk line parsed")
	}
}

func TestCollapseMediansDuplicates(t *testing.T) {
	in := []Result{
		{Name: "BenchmarkX", Iterations: 10, NsPerOp: 100, MBPerSec: 10, Metrics: map[string]float64{"frames/op": 4}},
		{Name: "BenchmarkY", Iterations: 5, NsPerOp: 7},
		{Name: "BenchmarkX", Iterations: 30, NsPerOp: 300, MBPerSec: 30, AllocsOp: 1, Metrics: map[string]float64{"frames/op": 8}},
		{Name: "BenchmarkX", Iterations: 20, NsPerOp: 200, MBPerSec: 20, Metrics: map[string]float64{"frames/op": 6}},
	}
	out := collapse(in)
	if len(out) != 2 {
		t.Fatalf("collapsed to %d results", len(out))
	}
	x := out[0]
	if x.Name != "BenchmarkX" || x.Samples != 3 {
		t.Fatalf("first result %+v", x)
	}
	if x.NsPerOp != 200 || x.MBPerSec != 20 || x.Iterations != 20 {
		t.Fatalf("medians wrong: %+v", x)
	}
	if x.AllocsOp != 1 {
		t.Fatalf("allocs must take the max so regressions cannot hide: %+v", x)
	}
	if x.Metrics["frames/op"] != 6 {
		t.Fatalf("custom metric median wrong: %+v", x.Metrics)
	}
	if y := out[1]; y.Name != "BenchmarkY" || y.Samples != 0 || y.NsPerOp != 7 {
		t.Fatalf("singleton result mangled: %+v", y)
	}
}

func TestCompareGate(t *testing.T) {
	dir := t.TempDir()
	mk := func(batched, unbatched float64) string {
		return writeReport(t, dir, "r.json", Report{Results: []Result{
			{Name: "BenchmarkRemoteThroughput/batched/64B/senders=4", MBPerSec: batched, NsPerOp: 1},
			{Name: "BenchmarkRemoteThroughput/unbatched/64B/senders=4", MBPerSec: unbatched, NsPerOp: 1},
		}})
	}
	if ok, err := compare(mk(100, 50), 0, 0, "batched", "unbatched", nil); err != nil || !ok {
		t.Fatalf("faster batched failed the gate: ok=%v err=%v", ok, err)
	}
	if ok, err := compare(mk(50, 100), 0, 0, "batched", "unbatched", nil); err != nil || ok {
		t.Fatalf("slower batched passed the gate: ok=%v err=%v", ok, err)
	}
	// Tolerance forgives a slowdown inside the band but not outside it.
	if ok, err := compare(mk(96, 100), 0.05, 0, "batched", "unbatched", nil); err != nil || !ok {
		t.Fatalf("4%% slowdown failed a 5%% tolerance: ok=%v err=%v", ok, err)
	}
	if ok, err := compare(mk(90, 100), 0.05, 0, "batched", "unbatched", nil); err != nil || ok {
		t.Fatalf("10%% slowdown passed a 5%% tolerance: ok=%v err=%v", ok, err)
	}
	// A batched result with no unbatched twin is an error, not a skip.
	p := writeReport(t, dir, "orphan.json", Report{Results: []Result{
		{Name: "BenchmarkRemoteThroughput/batched/64B/senders=4", MBPerSec: 1},
	}})
	if _, err := compare(p, 0, 0, "batched", "unbatched", nil); err == nil {
		t.Fatal("orphan batched result did not error")
	}
}

func TestComparePairAndGrep(t *testing.T) {
	dir := t.TempDir()
	p := writeReport(t, dir, "eb.json", Report{Results: []Result{
		{Name: "BenchmarkEventBuilder/topo=tree/rus=4", MBPerSec: 50, NsPerOp: 1},
		{Name: "BenchmarkEventBuilder/topo=flat/rus=4", MBPerSec: 100, NsPerOp: 1},
		{Name: "BenchmarkEventBuilder/topo=tree/rus=64", MBPerSec: 200, NsPerOp: 1},
		{Name: "BenchmarkEventBuilder/topo=flat/rus=64", MBPerSec: 100, NsPerOp: 1},
	}})
	// Ungated, the rus=4 pairing (tree slower) fails the gate.
	if ok, err := compare(p, 0, 0, "topo=tree", "topo=flat", nil); err != nil || ok {
		t.Fatalf("slower tree pairing passed: ok=%v err=%v", ok, err)
	}
	// The grep narrows the gate to the pairings where tree must win.
	re := regexp.MustCompile(`rus=(64|256)$`)
	if ok, err := compare(p, 0, 0, "topo=tree", "topo=flat", re); err != nil || !ok {
		t.Fatalf("grep-narrowed gate failed: ok=%v err=%v", ok, err)
	}
	// A grep matching nothing is an error, not a vacuous pass.
	if _, err := compare(p, 0, 0, "topo=tree", "topo=flat", regexp.MustCompile(`rus=512`)); err == nil {
		t.Fatal("empty gate did not error")
	}
	// Pair components match whole path segments, not substrings.
	if _, err := compare(p, 0, 0, "topo=tre", "topo=flat", nil); err == nil {
		t.Fatal("partial segment matched")
	}
}

// -min turns the gate from "no slower" into a speedup claim: the gated
// side must beat its baseline by the required fractional gain.
func TestCompareMinGain(t *testing.T) {
	dir := t.TempDir()
	mk := func(w8, w1 float64) string {
		return writeReport(t, dir, "st.json", Report{Results: []Result{
			{Name: "BenchmarkStorageStriped/writers=8", MBPerSec: w8, NsPerOp: 1},
			{Name: "BenchmarkStorageStriped/writers=1", MBPerSec: w1, NsPerOp: 1},
		}})
	}
	// 2.5x clears a 2x floor; 1.5x does not, even though it is faster.
	if ok, err := compare(mk(250, 100), 0, 1.0, "writers=8", "writers=1", nil); err != nil || !ok {
		t.Fatalf("2.5x gain failed a 2x floor: ok=%v err=%v", ok, err)
	}
	if ok, err := compare(mk(150, 100), 0, 1.0, "writers=8", "writers=1", nil); err != nil || ok {
		t.Fatalf("1.5x gain passed a 2x floor: ok=%v err=%v", ok, err)
	}
	// Tolerance forgives a band below the floor, as it does at zero.
	if ok, err := compare(mk(196, 100), 0.05, 1.0, "writers=8", "writers=1", nil); err != nil || !ok {
		t.Fatalf("1.96x failed a 2x floor with 5%% tolerance: ok=%v err=%v", ok, err)
	}
}

func TestStripCPUSuffix(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkX-4":                 "BenchmarkX",
		"BenchmarkX":                   "BenchmarkX",
		"BenchmarkX/size=64B/thr=rv-8": "BenchmarkX/size=64B/thr=rv",
		"BenchmarkX/thr=rv":            "BenchmarkX/thr=rv",
	} {
		if got := stripCPUSuffix(in); got != want {
			t.Errorf("stripCPUSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func writeReport(t *testing.T, dir, name string, rep Report) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMergeCombinesReports(t *testing.T) {
	dir := t.TempDir()
	a := writeReport(t, dir, "a.json", Report{
		Goos: "linux", Pkg: "xdaq",
		Results: []Result{{Name: "BenchmarkDispatch-4", Iterations: 10}},
	})
	b := writeReport(t, dir, "b.json", Report{
		Goos: "linux", Pkg: "xdaq/internal/transport/tcp",
		Results: []Result{{Name: "BenchmarkRemoteSend-4", Iterations: 20}},
	})

	// Capture merge's stdout.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	mergeErr := merge([]string{a, b})
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	if mergeErr != nil {
		t.Fatal(mergeErr)
	}

	var out Report
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Pkg != "xdaq" || len(out.Results) != 2 {
		t.Fatalf("merged %+v", out)
	}
	if out.Results[0].Pkg != "" {
		t.Fatalf("first result gained a pkg tag: %+v", out.Results[0])
	}
	if out.Results[1].Pkg != "xdaq/internal/transport/tcp" {
		t.Fatalf("second result lost its provenance: %+v", out.Results[1])
	}
}
