// Eventbuilder assembles physics events from distributed detector
// fragments — the CMS-style data acquisition workload the XDAQ framework
// was built for, and the origin of its name: n builder units talk to m
// readout units in both directions, so the communication channels cross.
//
// Flat topology (all in this process, over the simulated Myrinet fabric):
//
//	node 1         node 2..1+nRU      node 2+nRU..1+nRU+nBU
//	┌─────┐        ┌────┐             ┌────┐
//	│ EVM │◄──────►│ RU │◄───────────►│ BU │
//	└─────┘        └────┘             └────┘
//
// Each BU asks the EVM for an event block, pulls the events' fragments
// from every RU, verifies and counts the built events, and reports
// completion.  With -topo tree the BUs instead pull super-fragments
// through a layer of aggregators (one per -fanin readout units, hosted on
// the first child's node), and the EVM hands out events in blocks of
// -rangesize via the versioned shard map — the hierarchical path that
// scales toward hundreds of RUs.
//
//	go run ./examples/eventbuilder [-topo flat|tree] [-events N] [-rus N] [-bus N] [-fragsize BYTES]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"xdaq"
	"xdaq/internal/daq"
	"xdaq/internal/storage"
)

func main() {
	var (
		events    = flag.Uint64("events", 10000, "events to build")
		nRU       = flag.Int("rus", 3, "readout units")
		nBU       = flag.Int("bus", 2, "builder units")
		fragSize  = flag.Int("fragsize", 2048, "fragment bytes per RU")
		pipeline  = flag.Int("pipeline", 8, "event blocks in flight per BU")
		topo      = flag.String("topo", "flat", "wiring: flat (BU asks every RU) or tree (aggregator fan-in, event-range blocks)")
		fanin     = flag.Int("fanin", 4, "readout units per aggregator (tree only)")
		rangeSize = flag.Int("rangesize", 8, "events per allocation block (tree only)")
		writers   = flag.Int("writers", 0, "storage writers: stripe built events across N on-disk segments (0 disables)")
		dataDir   = flag.String("datadir", "", "segment directory for -writers (default: a scratch temp dir)")
	)
	flag.Parse()
	if *topo != "flat" && *topo != "tree" {
		log.Fatalf("unknown -topo %q (want flat or tree)", *topo)
	}

	// One node per component: EVM, RUs, BUs.  Tree-topology aggregators
	// ride on their first child RU's node.
	total := 1 + *nRU + *nBU + *writers
	nodes := make([]*xdaq.Node, total)
	for i := range nodes {
		n, err := xdaq.NewNode(xdaq.NodeOptions{
			Name: fmt.Sprintf("n%d", i+1),
			Node: xdaq.NodeID(i + 1),
			Logf: func(string, ...any) {},
		})
		if err != nil {
			log.Fatal(err)
		}
		defer n.Close()
		nodes[i] = n
	}
	if err := xdaq.Connect(xdaq.GM(), xdaq.Nodes(nodes...), xdaq.WithMode(xdaq.ModeTask)); err != nil {
		log.Fatal(err)
	}

	// Plug the device modules.
	evm := daq.NewEVM(*events)
	if *topo == "tree" {
		evm.SetSharding(daq.DefaultShardSlots, uint32(*rangeSize))
	}
	if _, err := nodes[0].Plug(evm.Device()); err != nil {
		log.Fatal(err)
	}
	rus := make([]*daq.RU, *nRU)
	ruNode := func(i int) *xdaq.Node { return nodes[1+i] }
	for i := range rus {
		rus[i] = daq.NewRU(i, *fragSize)
		evmTID, err := ruNode(i).Discover(1, daq.EVMClass, 0)
		if err != nil {
			log.Fatal(err)
		}
		rus[i].SetEVM(evmTID)
		if _, err := ruNode(i).Plug(rus[i].Device()); err != nil {
			log.Fatal(err)
		}
	}

	// Tree wiring: one aggregator per fanin RUs, on its first child's node.
	var nAgg int
	var aggNodes []*xdaq.Node
	if *topo == "tree" {
		nAgg = (*nRU + *fanin - 1) / *fanin
		aggNodes = make([]*xdaq.Node, nAgg)
		for a := 0; a < nAgg; a++ {
			first := a * *fanin
			host := ruNode(first)
			aggNodes[a] = host
			agg := daq.NewAggregator(a)
			var children []daq.AggChild
			for i := first; i < first+*fanin && i < *nRU; i++ {
				tid := rus[i].Device().TID()
				if ruNode(i) != host {
					var err error
					if tid, err = host.Discover(xdaq.NodeID(2+i), daq.RUClass, i); err != nil {
						log.Fatal(err)
					}
				}
				children = append(children, daq.AggChild{TID: tid})
			}
			evmTID, err := host.Discover(1, daq.EVMClass, 0)
			if err != nil {
				log.Fatal(err)
			}
			agg.Configure(evmTID, children)
			if _, err := host.Plug(agg.Device()); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Storage writers: the acquisition chain's disk stage, one stripe per
	// writer, each on its own node.
	var sws []*storage.SW
	dir := *dataDir
	if *writers > 0 && dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "xdaq-eventbuilder-*"); err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
	}
	for i := 0; i < *writers; i++ {
		swNode := nodes[1+*nRU+*nBU+i]
		sw := storage.NewSW(i, swNode.Exec.Allocator())
		if _, err := swNode.Plug(sw.Device()); err != nil {
			log.Fatal(err)
		}
		w, err := storage.Open(storage.Options{
			Dir: dir, Instance: i, ArenaSize: 1 << 20, IndexHint: int(*events)/(*writers) + 2,
		})
		if err != nil {
			log.Fatal(err)
		}
		sw.Attach(w)
		sws = append(sws, sw)
	}

	bus := make([]*daq.BU, *nBU)
	for i := range bus {
		bus[i] = daq.NewBU(i)
		buNode := nodes[1+*nRU+i]
		if _, err := buNode.Plug(bus[i].Device()); err != nil {
			log.Fatal(err)
		}
		// Wire the BU: discover the EVM and its fragment sources — every
		// RU when flat, the aggregator roots when hierarchical.
		evmTID, err := buNode.Discover(1, daq.EVMClass, 0)
		if err != nil {
			log.Fatal(err)
		}
		if *topo == "tree" {
			roots := make([]xdaq.TID, nAgg)
			for a := range roots {
				if roots[a], err = buNode.Discover(aggNodes[a].Exec.Node(), daq.AggClass, a); err != nil {
					log.Fatal(err)
				}
			}
			bus[i].ConfigureTree(evmTID, roots, *nRU)
		} else {
			ruTIDs := make([]xdaq.TID, *nRU)
			for j := range ruTIDs {
				if ruTIDs[j], err = buNode.Discover(xdaq.NodeID(2+j), daq.RUClass, j); err != nil {
					log.Fatal(err)
				}
			}
			bus[i].Configure(evmTID, ruTIDs)
		}
		if *writers > 0 {
			swTIDs := make([]xdaq.TID, *writers)
			for s := range swTIDs {
				if swTIDs[s], err = buNode.Discover(xdaq.NodeID(2+*nRU+*nBU+s), storage.ClassSW, s); err != nil {
					log.Fatal(err)
				}
			}
			bus[i].SetStorage(swTIDs, 32)
		}
	}

	fmt.Printf("event builder (%s): %d events, %d RUs x %d B fragments, %d BUs, pipeline %d\n",
		*topo, *events, *nRU, *fragSize, *nBU, *pipeline)
	if *writers > 0 {
		fmt.Printf("  %d storage writers striping to %s\n", *writers, dir)
	}
	if *topo == "tree" {
		fmt.Printf("  %d aggregators (fan-in %d), %d-event blocks, shard map v%d\n",
			nAgg, *fanin, *rangeSize, evm.ShardVersion())
	}
	start := time.Now()
	for _, bu := range bus {
		if _, err := bu.Start(0, *pipeline); err != nil {
			log.Fatal(err)
		}
	}
	var built, bytes, corrupt uint64
	for i, bu := range bus {
		stats, err := bu.Wait()
		if err != nil {
			log.Fatalf("BU %d: %v", i, err)
		}
		fmt.Printf("  BU %d: %6d events, %9d bytes, %d corrupt\n", i, stats.Built, stats.Bytes, stats.Corrupt)
		built += stats.Built
		bytes += stats.Bytes
		corrupt += stats.Corrupt
	}
	elapsed := time.Since(start)
	fmt.Printf("built %d events (%d corrupt fragments) in %v\n", built, corrupt, elapsed.Round(time.Millisecond))
	fmt.Printf("rate: %.0f events/s, %.1f MB/s aggregate fragment throughput\n",
		float64(built)/elapsed.Seconds(), float64(bytes)/elapsed.Seconds()/1e6)
	// Completion notifications are fire-and-forget; give the last ones a
	// moment to reach the EVM before cross-checking the accounting.
	deadline := time.Now().Add(time.Second)
	for evm.Built() != built && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if evm.Built() != built {
		log.Fatalf("EVM accounted %d built events, BUs report %d", evm.Built(), built)
	}
	if *writers > 0 {
		var stored uint64
		for i, sw := range sws {
			st := sw.Stats()
			fmt.Printf("  SW %d: %6d events, %9d bytes, %d stalls, %d flushes\n",
				i, st.Events, st.Bytes, st.Stalls, st.Flushes)
			stored += st.Events
			if err := sw.Writer().Close(); err != nil {
				log.Fatalf("SW %d close: %v", i, err)
			}
		}
		if stored != built {
			log.Fatalf("storage holds %d events, BUs built %d", stored, built)
		}
		fmt.Printf("stored %d events across %d stripes\n", stored, *writers)
	}
}
