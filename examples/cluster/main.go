// Cluster demonstrates the paper's operational model (§3.5 and §4): a
// primary host configures and controls processing nodes entirely through
// I2O executive messages, driven by a Tcl-style script — with a secondary
// host that must acquire the control rights before it may change
// anything.
//
// Everything runs in one process over loopback so the example is
// self-contained; cmd/xdaqd and cmd/xdaqctl run the identical protocol
// across real TCP.
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"
	"os"

	"xdaq"
	"xdaq/internal/cluster"
	_ "xdaq/internal/modules"
	"xdaq/internal/tclish"
)

func main() {
	// Topology: primary host (100), secondary host (101), workers (1, 2).
	mk := func(id xdaq.NodeID, name string) *xdaq.Node {
		n, err := xdaq.NewNode(xdaq.NodeOptions{Name: name, Node: id, Logf: func(string, ...any) {}})
		if err != nil {
			log.Fatal(err)
		}
		return n
	}
	primary := mk(100, "primary")
	secondary := mk(101, "secondary")
	w1 := mk(1, "worker1")
	w2 := mk(2, "worker2")
	defer primary.Close()
	defer secondary.Close()
	defer w1.Close()
	defer w2.Close()
	if err := xdaq.Connect(xdaq.Loopback(), xdaq.Nodes(primary, secondary, w1, w2)); err != nil {
		log.Fatal(err)
	}

	ctlP, err := cluster.NewPrimary(primary.Exec)
	if err != nil {
		log.Fatal(err)
	}
	for _, worker := range []xdaq.NodeID{1, 2} {
		if err := ctlP.AddNode(worker, "worker"); err != nil {
			log.Fatal(err)
		}
	}

	// The primary's configuration session, as a tclish script.
	interp := tclish.New(os.Stdout)
	ctlP.Bind(interp)
	script := `
puts "nodes under control: [nodes]"
trace 1 on
foreach n [nodes] {
    set tid [plug $n daq.ru 0 fragsize 1024]
    puts "node $n: plugged daq.ru as tid $tid"
}
paramset 1 daq.ru 0 fragsize 4096
puts "node 1 fragsize now [paramget 1 daq.ru 0 fragsize]"
quiesce all
enable all
puts "node 1 status: [status 1]"
puts "node 1 recent frames:"
puts [trace 1 dump]
trace 1 off
`
	if _, err := interp.Eval(script); err != nil {
		log.Fatalf("control script: %v", err)
	}

	// The secondary host registers and must take the control rights
	// before mutating anything.
	ctlS, err := cluster.NewSecondary(secondary.Exec, 100)
	if err != nil {
		log.Fatal(err)
	}
	if err := ctlS.AddNode(2, "worker"); err != nil {
		log.Fatal(err)
	}
	if err := ctlS.Quiesce(2); err != nil {
		fmt.Printf("secondary without rights: %v (expected)\n", err)
	}
	if err := ctlS.RequestControl(); err != nil {
		log.Fatal(err)
	}
	if err := ctlS.Quiesce(2); err != nil {
		log.Fatal(err)
	}
	if err := ctlS.Enable(2); err != nil {
		log.Fatal(err)
	}
	if err := ctlS.ReleaseControl(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("secondary host acquired rights, cycled node 2, released rights")
}
