// Airtraffic models the other grand-challenge domain from the paper's
// introduction: an air-traffic monitoring system with a real-time path.
//
// Radar stations stream position updates to a central tracker as
// bulk-priority frames — volume traffic that may queue up.  Conflict
// queries ("are any two aircraft too close right now?") ride the same
// wires at urgent priority.  The example shows the seven-level I2O
// scheduler doing its job: with a deep bulk backlog, urgent queries keep
// answering in microseconds while the same query at bulk priority waits
// behind the stream.  A framework timer sweeps stale tracks, showing that
// even timer expirations arrive as I2O messages.
//
//	go run ./examples/airtraffic [-radars N] [-updates N]
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"math"
	"sync"
	"time"

	"xdaq"
	"xdaq/internal/executive"
	"xdaq/internal/i2o"
)

// Private function codes of the tracker device class.
const (
	xfuncTrack    uint16 = 1 // position update: id, x, y (bulk traffic)
	xfuncConflict uint16 = 2 // conflict query: reply = closest pair distance
)

// conflictRadius is the separation below which two aircraft conflict.
const conflictRadius = 5.0

// tracker is the central surveillance device.
type tracker struct {
	mu     sync.Mutex
	pos    map[uint32][2]float64
	vel    map[uint32][2]float64
	seen   map[uint32]time.Time
	sweeps int
}

// update runs the per-report smoothing a real tracker performs: an
// exponential filter over position and a velocity estimate.  The work per
// update is what lets the bulk stream back up behind the dispatcher —
// the condition under which the priority levels earn their keep.
func (t *tracker) update(id uint32, x, y float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	const alpha = 0.3
	prev, known := t.pos[id]
	if known {
		vx, vy := x-prev[0], y-prev[1]
		old := t.vel[id]
		t.vel[id] = [2]float64{alpha*vx + (1-alpha)*old[0], alpha*vy + (1-alpha)*old[1]}
		x = alpha*x + (1-alpha)*prev[0]
		y = alpha*y + (1-alpha)*prev[1]
	}
	// Residual smoothing pass (stands in for gating/covariance updates).
	acc := 0.0
	for i := 0; i < 400; i++ {
		acc += math.Sqrt(float64(i) + x*y)
	}
	_ = acc
	t.pos[id] = [2]float64{x, y}
	t.seen[id] = time.Now()
}

// closestPair returns the smallest pairwise distance currently tracked.
func (t *tracker) closestPair() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	min := math.Inf(1)
	ids := make([]uint32, 0, len(t.pos))
	for id := range t.pos {
		ids = append(ids, id)
	}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			a, b := t.pos[ids[i]], t.pos[ids[j]]
			d := math.Hypot(a[0]-b[0], a[1]-b[1])
			if d < min {
				min = d
			}
		}
	}
	return min
}

func (t *tracker) sweep(maxAge time.Duration) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sweeps++
	dropped := 0
	for id, at := range t.seen {
		if time.Since(at) > maxAge {
			delete(t.seen, id)
			delete(t.pos, id)
			dropped++
		}
	}
	return dropped
}

func main() {
	var (
		radars  = flag.Int("radars", 4, "radar stations streaming updates")
		updates = flag.Int("updates", 20000, "updates per radar")
	)
	flag.Parse()

	center, err := xdaq.NewNode(xdaq.NodeOptions{Name: "center", Node: 1, Logf: func(string, ...any) {}})
	if err != nil {
		log.Fatal(err)
	}
	defer center.Close()
	site, err := xdaq.NewNode(xdaq.NodeOptions{Name: "site", Node: 2, Logf: func(string, ...any) {}})
	if err != nil {
		log.Fatal(err)
	}
	defer site.Close()
	if err := xdaq.Connect(xdaq.Loopback(), xdaq.Nodes(center, site)); err != nil {
		log.Fatal(err)
	}

	tr := &tracker{pos: map[uint32][2]float64{}, vel: map[uint32][2]float64{}, seen: map[uint32]time.Time{}}
	dev := xdaq.NewDevice("tracker", 0)
	dev.Bind(xfuncTrack, func(ctx *xdaq.Context, m *xdaq.Message) error {
		if len(m.Payload) < 20 {
			return i2o.ErrTruncated
		}
		id := binary.LittleEndian.Uint32(m.Payload)
		x := math.Float64frombits(binary.LittleEndian.Uint64(m.Payload[4:]))
		y := math.Float64frombits(binary.LittleEndian.Uint64(m.Payload[12:]))
		tr.update(id, x, y)
		return nil
	})
	var trackerTID xdaq.TID
	dev.Bind(xfuncConflict, func(ctx *xdaq.Context, m *xdaq.Message) error {
		// The query payload carries the send timestamp; the handler
		// reports how long the frame waited in the scheduler, measured on
		// the dispatch goroutine itself.
		if len(m.Payload) < 8 {
			return i2o.ErrTruncated
		}
		sentNanos := int64(binary.LittleEndian.Uint64(m.Payload))
		queued := time.Since(time.Unix(0, sentNanos))
		var out [16]byte
		binary.LittleEndian.PutUint64(out[:], uint64(queued))
		binary.LittleEndian.PutUint64(out[8:], math.Float64bits(tr.closestPair()))
		return xdaq.ReplyIfExpected(ctx, m, out[:])
	})
	dev.Bind(executive.XFuncTimerExpired, func(ctx *xdaq.Context, m *xdaq.Message) error {
		tr.sweep(2 * time.Second)
		// Timers fire once; the sweep re-arms itself, event-driven.
		ctx.Host.(*executive.Executive).After(50*time.Millisecond, trackerTID, nil)
		return nil
	})
	var errPlug error
	trackerTID, errPlug = center.Plug(dev)
	if errPlug != nil {
		log.Fatal(errPlug)
	}
	// Kick off the periodic sweep via the executive's I2O core timers.
	center.Exec.After(50*time.Millisecond, trackerTID, nil)

	remote, err := site.Discover(1, "tracker", 0)
	if err != nil {
		log.Fatal(err)
	}

	// Radar stations: each streams updates for its own flight corridor.
	var wg sync.WaitGroup
	start := time.Now()
	for r := 0; r < *radars; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var buf [20]byte
			for i := 0; i < *updates; i++ {
				id := uint32(r*100 + i%16)
				x := float64(r*1000) + float64(i%360)
				y := 100 + 10*math.Sin(float64(i)/50)
				binary.LittleEndian.PutUint32(buf[:], id)
				binary.LittleEndian.PutUint64(buf[4:], math.Float64bits(x))
				binary.LittleEndian.PutUint64(buf[12:], math.Float64bits(y))
				m, err := site.Exec.AllocMessage(len(buf))
				if err != nil {
					continue
				}
				copy(m.Payload, buf[:])
				m.Target = remote
				m.Initiator = xdaq.TIDExecutive
				m.XFunction = xfuncTrack
				m.Priority = xdaq.PriorityBulk
				_ = site.Exec.Send(m)
			}
		}(r)
	}

	// The real-time path: conflict queries at both priorities while the
	// update stream is flowing.  The reported latency is the queueing
	// delay observed by the tracker's scheduler, so the comparison shows
	// the seven-level dispatch discipline rather than goroutine wake-up
	// noise.
	query := func(prio xdaq.Priority) (time.Duration, float64, error) {
		m, err := site.Exec.AllocMessage(8)
		if err != nil {
			return 0, 0, err
		}
		binary.LittleEndian.PutUint64(m.Payload, uint64(time.Now().UnixNano()))
		m.Target = remote
		m.Initiator = xdaq.TIDExecutive
		m.XFunction = xfuncConflict
		m.Priority = prio
		rep, err := site.Exec.Request(m)
		if err != nil {
			return 0, 0, err
		}
		queued := time.Duration(binary.LittleEndian.Uint64(rep.Payload))
		d := math.Float64frombits(binary.LittleEndian.Uint64(rep.Payload[8:]))
		rep.Release()
		return queued, d, nil
	}

	var urgentTot, bulkTot time.Duration
	const probes = 50
	for i := 0; i < probes; i++ {
		// Alternate the probe order: on a loaded machine the first probe
		// after a sleep pays the dispatcher's wake-up, and that cost must
		// fall on both priorities equally.
		order := []xdaq.Priority{xdaq.PriorityUrgent, xdaq.PriorityBulk}
		if i%2 == 1 {
			order[0], order[1] = order[1], order[0]
		}
		var dist float64
		for _, prio := range order {
			lat, d, err := query(prio)
			if err != nil {
				log.Fatal(err)
			}
			dist = d
			if prio == xdaq.PriorityUrgent {
				urgentTot += lat
			} else {
				bulkTot += lat
			}
		}
		if i == probes/2 {
			status := "separated"
			if dist < conflictRadius {
				status = "CONFLICT"
			}
			fmt.Printf("mid-stream conflict check: closest pair %.1f units (%s)\n", dist, status)
		}
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("streamed %d updates from %d radars in %v (%.0f updates/s)\n",
		*radars**updates, *radars, elapsed.Round(time.Millisecond),
		float64(*radars**updates)/elapsed.Seconds())
	fmt.Printf("conflict query scheduler delay under load: urgent %v, bulk %v\n",
		(urgentTot / probes).Round(time.Microsecond), (bulkTot / probes).Round(time.Microsecond))
	fmt.Printf("tracked aircraft: %d; timer sweeps ran: %d\n", len(tr.pos), tr.sweeps)
}
