// Quickstart: two in-process XDAQ nodes, an echo device class, and one
// request/reply round trip — the minimal use of the public API.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"xdaq"
)

func main() {
	// Two IOPs (nodes 1 and 2) joined by the in-process loopback fabric.
	a, err := xdaq.NewNode(xdaq.NodeOptions{Name: "a", Node: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer a.Close()
	b, err := xdaq.NewNode(xdaq.NodeOptions{Name: "b", Node: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer b.Close()
	if err := xdaq.Connect(xdaq.Loopback(), xdaq.Nodes(a, b)); err != nil {
		log.Fatal(err)
	}

	// An application is a new private device class (§3.3 of the paper):
	// handlers bound to extended function codes.
	echo := xdaq.NewDevice("echo", 0)
	echo.Bind(1, func(ctx *xdaq.Context, m *xdaq.Message) error {
		return xdaq.ReplyIfExpected(ctx, m, m.Payload)
	})
	if _, err := b.Plug(echo); err != nil {
		log.Fatal(err)
	}

	// Node A discovers the remote device: the executive queries B's
	// resource table and creates a local proxy TiD.  From here on, A's
	// code cannot tell the device is remote — transparency of location.
	target, err := a.Discover(2, "echo", 0)
	if err != nil {
		log.Fatal(err)
	}
	// CallContext bounds the round trip: a dead or wedged peer turns
	// into a typed error (xdaq.ErrTimeout / xdaq.ErrPeerDown) instead of
	// an indefinite hang.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	reply, err := a.CallContext(ctx, target, 1, []byte("ping across the cluster"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("echo device %v answered: %q\n", target, reply)
}
