// RMI demonstrates the stub/skeleton adapters of §4: "adapters can be
// provided that allow a remote method invocation style communication
// scheme.  The stub part will take the call parameters and marshal them
// into a standard message, whereas the skeleton part scans the message
// and provides typed pointers to its contents."
//
// A vector-analysis service runs on node 2 behind a skeleton; node 1
// calls it through a stub over the simulated Myrinet fabric, never
// touching a frame by hand.
//
//	go run ./examples/rmi
package main

import (
	"errors"
	"fmt"
	"log"
	"math"

	"xdaq"
	"xdaq/internal/rmi"
)

// Extended function codes of the vector service.
const (
	opDot   uint16 = 1
	opStats uint16 = 2
	opScale uint16 = 3
)

func main() {
	client, err := xdaq.NewNode(xdaq.NodeOptions{Name: "client", Node: 1, Logf: func(string, ...any) {}})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	server, err := xdaq.NewNode(xdaq.NodeOptions{Name: "server", Node: 2, Logf: func(string, ...any) {}})
	if err != nil {
		log.Fatal(err)
	}
	defer server.Close()
	if err := xdaq.Connect(xdaq.GM(), xdaq.Nodes(client, server)); err != nil {
		log.Fatal(err)
	}

	// Server side: a skeleton turns typed methods into a device class.
	skel := rmi.NewSkeleton(xdaq.NewDevice("vector", 0))
	skel.Handle(opDot, func(args *rmi.Decoder, result *rmi.Encoder) error {
		a, b := args.Float64s(), args.Float64s()
		if len(a) != len(b) {
			return errors.New("vectors differ in length")
		}
		dot := 0.0
		for i := range a {
			dot += a[i] * b[i]
		}
		result.Float64(dot)
		return nil
	})
	skel.Handle(opStats, func(args *rmi.Decoder, result *rmi.Encoder) error {
		v := args.Float64s()
		if len(v) == 0 {
			return errors.New("empty vector")
		}
		min, max, sum := math.Inf(1), math.Inf(-1), 0.0
		for _, x := range v {
			min = math.Min(min, x)
			max = math.Max(max, x)
			sum += x
		}
		result.Float64(min)
		result.Float64(max)
		result.Float64(sum / float64(len(v)))
		return nil
	})
	skel.Handle(opScale, func(args *rmi.Decoder, result *rmi.Encoder) error {
		factor := args.Float64()
		v := args.Float64s()
		for i := range v {
			v[i] *= factor
		}
		result.Float64s(v)
		return nil
	})
	if _, err := server.Plug(skel.Device()); err != nil {
		log.Fatal(err)
	}

	// Client side: a stub for the remote device.
	target, err := client.Discover(2, "vector", 0)
	if err != nil {
		log.Fatal(err)
	}
	stub := rmi.NewStub(client.Exec, target)

	a := []float64{1, 2, 3, 4}
	b := []float64{4, 3, 2, 1}

	var dot float64
	if err := stub.Invoke(opDot,
		func(e *rmi.Encoder) { e.Float64s(a); e.Float64s(b) },
		func(d *rmi.Decoder) error { dot = d.Float64(); return nil },
	); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dot(%v, %v) = %v\n", a, b, dot)

	var min, max, mean float64
	if err := stub.Invoke(opStats,
		func(e *rmi.Encoder) { e.Float64s(a) },
		func(d *rmi.Decoder) error { min, max, mean = d.Float64(), d.Float64(), d.Float64(); return nil },
	); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stats(%v): min=%v max=%v mean=%v\n", a, min, max, mean)

	var scaled []float64
	if err := stub.Invoke(opScale,
		func(e *rmi.Encoder) { e.Float64(2.5); e.Float64s(b) },
		func(d *rmi.Decoder) error { scaled = d.Float64s(); return nil },
	); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scale(2.5, %v) = %v\n", b, scaled)

	// Application errors surface as typed failures at the stub.
	err = stub.Invoke(opDot,
		func(e *rmi.Encoder) { e.Float64s(a); e.Float64s([]float64{1}) },
		nil)
	fmt.Printf("mismatched vectors -> error: %v\n", err)
}
