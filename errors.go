package xdaq

import (
	"xdaq/internal/executive"
	"xdaq/internal/queue"
	"xdaq/internal/transport/faults"
)

// Typed sentinel errors.  Every failure surfaced by Call, CallContext,
// Send and the executive request path wraps one of these, so callers
// classify outcomes with errors.Is instead of string matching:
//
//	_, err := n.CallContext(ctx, target, 1, payload)
//	switch {
//	case errors.Is(err, xdaq.ErrPeerDown):
//	    // the health monitor declared the peer dead; pick another node
//	case errors.Is(err, xdaq.ErrTimeout):
//	    // the peer is routed and believed up, but the reply never came
//	case errors.Is(err, xdaq.ErrNoRoute):
//	    // no transport knows the peer; configuration problem
//	case errors.Is(err, xdaq.ErrQueueFull):
//	    // local backpressure: the inbound scheduler is at capacity
//	}
var (
	// ErrPeerDown reports a frame addressed to a peer the health monitor
	// has declared down.  Pending requests for the peer fail with it the
	// moment the verdict lands; new ones fail immediately after.
	ErrPeerDown = executive.ErrPeerDown

	// ErrTimeout reports a request whose reply did not arrive within the
	// per-call deadline (context or option) or the node default.
	ErrTimeout = executive.ErrTimeout

	// ErrNoRoute reports a frame for a node absent from the system table.
	ErrNoRoute = executive.ErrNoRoute

	// ErrQueueFull reports local backpressure from a bounded inbound
	// scheduler (NodeOptions.QueueCapacity).
	ErrQueueFull = queue.ErrFull

	// ErrInjected marks transport failures produced by a FaultInjector,
	// so tests can tell scripted faults from real ones.
	ErrInjected = faults.ErrInjected
)
