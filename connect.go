package xdaq

import (
	"context"
	"fmt"
	"os"

	"xdaq/internal/pta"
	"xdaq/internal/transport/faults"
	"xdaq/internal/transport/gm"
	"xdaq/internal/transport/loopback"
	"xdaq/internal/transport/pci"
	"xdaq/internal/transport/shm"
	"xdaq/internal/transport/tcp"
)

// Mode selects how a peer transport is driven: ModeTask gives the
// transport its own goroutine, ModePolling makes the agent's scan loop
// drive it (the paper's §4.2 dichotomy).
type Mode = pta.Mode

// Peer transport modes.
const (
	ModeTask    = pta.Task
	ModePolling = pta.Polling
)

// RetryPolicy bounds the peer transport agent's resend behavior for
// transient transport errors; see pta.RetryPolicy.
type RetryPolicy = pta.RetryPolicy

// FaultInjector deterministically injects drops, delays and errors into a
// transport's send path; see the faults package.  Share one injector
// across a fabric to script a global frame sequence, or build one per
// node for per-link scripts.
type FaultInjector = faults.Injector

// FaultRule is one fault-injection rule.
type FaultRule = faults.Rule

// FaultOp is a fault-injection operation.
type FaultOp = faults.Op

// Fault-injection operations.
const (
	FaultPass      = faults.Pass
	FaultDrop      = faults.Drop
	FaultDelay     = faults.Delay
	FaultError     = faults.Error
	FaultDuplicate = faults.Duplicate
)

// NewFaultInjector creates a deterministic injector from seed.
func NewFaultInjector(seed int64) *FaultInjector { return faults.New(seed) }

// ConnectConfig collects the options applied by Connect.  Fabrics read it
// through their attach hook; users populate it with ConnectOption values.
type ConnectConfig struct {
	ctx         context.Context
	nodes       []*Node
	mode        Mode
	modeSet     bool
	provide     int
	retry       *RetryPolicy
	faults      *FaultInjector
	dispatchers int
}

// modeOr returns the configured mode, or def when none was set — each
// fabric has its natural default (GM and loopback run in task mode, PCI
// message units are polled).
func (c *ConnectConfig) modeOr(def Mode) Mode {
	if c.modeSet {
		return c.mode
	}
	return def
}

// ConnectOption configures one aspect of a Connect call.
type ConnectOption func(*ConnectConfig)

// Nodes names the cluster members to wire together.  At least two are
// required.
func Nodes(nodes ...*Node) ConnectOption {
	return func(c *ConnectConfig) { c.nodes = append(c.nodes, nodes...) }
}

// WithMode overrides the fabric's default transport mode.
func WithMode(m Mode) ConnectOption {
	return func(c *ConnectConfig) { c.mode, c.modeSet = m, true }
}

// WithProvide sets how many receive blocks each transport keeps posted
// (fabrics without a provided-block scheme ignore it).
func WithProvide(n int) ConnectOption {
	return func(c *ConnectConfig) { c.provide = n }
}

// WithRetry installs a resend policy on every node's peer transport
// agent: transient transport errors are retried with exponential backoff.
func WithRetry(p RetryPolicy) ConnectOption {
	return func(c *ConnectConfig) { c.retry = &p }
}

// WithFaults installs a fault injector on every transport the fabric
// creates.  The injector is shared, so its rules see one global frame
// sequence across the whole fabric.
func WithFaults(in *FaultInjector) ConnectOption {
	return func(c *ConnectConfig) { c.faults = in }
}

// WithDispatchers runs n parallel dispatch workers on every connected
// node's executive (n < 1 is clamped to 1, the paper's single loop).  The
// I2O discipline — strict priority, per-device FIFO, at most one in-flight
// frame per device — holds for any n, so handlers written for the single
// loop need no new locking.
func WithDispatchers(n int) ConnectOption {
	return func(c *ConnectConfig) { c.dispatchers = n }
}

// Fabric is one interconnect technology a cluster can be wired over.
// Implementations are provided by Loopback, GM, PCI and TCP; the
// interface is sealed (the attach hook needs Node internals).
type Fabric interface {
	// Name is the route name frames for peers are forwarded under.
	Name() string

	// attach wires one node into the fabric per the config.
	attach(n *Node, cfg *ConnectConfig) error
}

// linker is implemented by fabrics that need a second pass once every
// node is attached (e.g. TCP address exchange, GM port routes).
type linker interface {
	link(nodes []*Node) error
}

// Connect wires the given nodes over one fabric: every node gets a
// transport endpoint, a route to every other node, and any configured
// retry policy or fault injector.
//
//	a, _ := xdaq.NewNode(xdaq.NodeOptions{Name: "a", Node: 1})
//	b, _ := xdaq.NewNode(xdaq.NodeOptions{Name: "b", Node: 2})
//	err := xdaq.Connect(xdaq.GM(), xdaq.Nodes(a, b),
//	    xdaq.WithRetry(xdaq.RetryPolicy{Attempts: 3, Backoff: time.Millisecond}))
//
// Call Connect once per fabric; a cluster may layer several (say, GM for
// data and TCP for control) and fail routes over between them with
// Node.StartHealth.
func Connect(fabric Fabric, opts ...ConnectOption) error {
	return ConnectContext(context.Background(), fabric, opts...)
}

// ConnectContext is Connect bounded by a context: the deadline covers
// the whole wiring pass (attach every node, link the fabric) and expiry
// surfaces as ErrTimeout.  Fabrics whose links dial real sockets (Remote)
// honor the deadline per dial as well.
func ConnectContext(ctx context.Context, fabric Fabric, opts ...ConnectOption) error {
	cfg := &ConnectConfig{ctx: ctx}
	for _, opt := range opts {
		opt(cfg)
	}
	if len(cfg.nodes) < 2 {
		return fmt.Errorf("xdaq: Connect needs at least two nodes, got %d", len(cfg.nodes))
	}
	for _, n := range cfg.nodes {
		if err := ctx.Err(); err != nil {
			return timeoutErr(ctx, err)
		}
		if err := fabric.attach(n, cfg); err != nil {
			return timeoutErr(ctx, fmt.Errorf("xdaq: attach node %v to %s: %w", n.Exec.Node(), fabric.Name(), err))
		}
	}
	if lk, ok := fabric.(linker); ok {
		if err := ctx.Err(); err != nil {
			return timeoutErr(ctx, err)
		}
		if err := lk.link(cfg.nodes); err != nil {
			return timeoutErr(ctx, err)
		}
	}
	for _, n := range cfg.nodes {
		if cfg.retry != nil {
			n.Agent.SetRetryPolicy(*cfg.retry)
		}
		if cfg.dispatchers > 0 {
			n.Exec.SetDispatchers(cfg.dispatchers)
		}
		for _, peer := range cfg.nodes {
			if n != peer {
				n.Exec.SetRoute(peer.Exec.Node(), fabric.Name())
			}
		}
	}
	return nil
}

// Loopback returns the in-process fabric: synchronous pointer-passing
// between executives in one address space.
func Loopback() Fabric { return &loopbackFabric{f: loopback.NewFabric()} }

type loopbackFabric struct {
	f *loopback.Fabric
}

func (lf *loopbackFabric) Name() string { return loopback.DefaultName }

func (lf *loopbackFabric) attach(n *Node, cfg *ConnectConfig) error {
	ep, err := lf.f.Attach(n.Exec.Node())
	if err != nil {
		return err
	}
	ep.SetMetrics(n.Exec.Metrics())
	if cfg.faults != nil {
		ep.SetFaults(cfg.faults)
	}
	return n.Agent.Register(ep, cfg.modeOr(ModeTask))
}

// GM returns a simulated Myrinet/GM fabric with one NIC per node
// (port = node id), the paper's §5 data path.
func GM() Fabric {
	return &gmFabric{f: gm.NewFabric(), trs: make(map[*Node]*gm.Transport)}
}

type gmFabric struct {
	f   *gm.Fabric
	trs map[*Node]*gm.Transport
}

func (gf *gmFabric) Name() string { return gm.PTName }

func (gf *gmFabric) attach(n *Node, cfg *ConnectConfig) error {
	nic, err := gf.f.Open(gm.Port(n.Exec.Node()))
	if err != nil {
		return err
	}
	tr, err := gm.NewTransport(nic, n.Exec.Allocator(), gm.Config{
		Provide: cfg.provide,
		Metrics: n.Exec.Metrics(),
	})
	if err != nil {
		return err
	}
	if cfg.faults != nil {
		tr.SetFaults(cfg.faults)
	}
	if err := n.Agent.Register(tr, cfg.modeOr(ModeTask)); err != nil {
		return err
	}
	gf.trs[n] = tr
	return nil
}

func (gf *gmFabric) link(nodes []*Node) error {
	for _, n := range nodes {
		tr := gf.trs[n]
		for _, peer := range nodes {
			if n != peer {
				id := peer.Exec.Node()
				tr.AddRoute(id, gm.Port(id))
			}
		}
	}
	return nil
}

// PCI returns a simulated PCI bus segment with hardware message-unit
// FIFOs of the given depth (0 selects the default) — the §7 "ongoing
// work" configuration.  Endpoints default to polling mode.
func PCI(depth int) Fabric { return &pciFabric{seg: pci.NewSegment(depth)} }

type pciFabric struct {
	seg *pci.Segment
}

func (pf *pciFabric) Name() string { return pci.PTName }

func (pf *pciFabric) attach(n *Node, cfg *ConnectConfig) error {
	ep, err := pf.seg.Attach(n.Exec.Node())
	if err != nil {
		return err
	}
	ep.SetMetrics(n.Exec.Metrics())
	if cfg.faults != nil {
		ep.SetFaults(cfg.faults)
	}
	return n.Agent.Register(ep, cfg.modeOr(ModePolling))
}

// TCP returns a localhost TCP fabric: every node listens on an ephemeral
// 127.0.0.1 port and dials its peers on demand.  For genuinely
// distributed deployments use Remote with real addresses — or Join,
// which bootstraps membership instead of wiring a fixed node set.
func TCP() Fabric { return &tcpFabric{trs: make(map[*Node]*tcp.Transport)} }

type tcpFabric struct {
	trs map[*Node]*tcp.Transport
}

func (tf *tcpFabric) Name() string { return tcp.PTName }

func (tf *tcpFabric) attach(n *Node, cfg *ConnectConfig) error {
	tr, err := tcp.New(n.Exec.Node(), n.Exec.Allocator(), tcp.Config{
		Listen:  "127.0.0.1:0",
		Metrics: n.Exec.Metrics(),
	})
	if err != nil {
		return err
	}
	if cfg.faults != nil {
		tr.SetFaults(cfg.faults)
	}
	if err := n.Agent.Register(tr, cfg.modeOr(ModeTask)); err != nil {
		tr.Stop()
		return err
	}
	tf.trs[n] = tr
	return nil
}

func (tf *tcpFabric) link(nodes []*Node) error {
	for _, n := range nodes {
		tr := tf.trs[n]
		for _, peer := range nodes {
			if n != peer {
				tr.AddPeer(peer.Exec.Node(), tf.trs[peer].Addr())
			}
		}
	}
	return nil
}

// Shm returns a shared-memory fabric: every pair of nodes exchanges
// frames over mmap'd descriptor rings rooted at dir (one file per
// direction per pair).  An empty dir creates a fresh temporary directory.
// Within one process Loopback is cheaper; Shm is the colocated-process
// transport — this fabric form exists so single-process tests and
// benchmarks can exercise the exact cross-process data path.
func Shm(dir string) Fabric { return &shmFabric{dir: dir, trs: make(map[*Node]*shm.Transport)} }

type shmFabric struct {
	dir string
	trs map[*Node]*shm.Transport
}

func (sf *shmFabric) Name() string { return shm.PTName }

func (sf *shmFabric) attach(n *Node, cfg *ConnectConfig) error {
	if sf.dir == "" {
		dir, err := os.MkdirTemp("", "xdaq-shm-")
		if err != nil {
			return err
		}
		sf.dir = dir
	}
	tr, err := shm.New(n.Exec.Node(), n.Exec.Allocator(), shm.Config{
		Dir:     sf.dir,
		Metrics: n.Exec.Metrics(),
	})
	if err != nil {
		return err
	}
	if cfg.faults != nil {
		tr.SetFaults(cfg.faults)
	}
	if err := n.Agent.Register(tr, cfg.modeOr(ModeTask)); err != nil {
		tr.Stop()
		return err
	}
	sf.trs[n] = tr
	return nil
}

func (sf *shmFabric) link(nodes []*Node) error {
	for _, n := range nodes {
		tr := sf.trs[n]
		for _, peer := range nodes {
			if n != peer {
				if err := tr.AddPeer(peer.Exec.Node()); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Remote returns a TCP fabric bound to real addresses: each node listens
// on addrs[node id] ("host:port"; missing entries default to
// "127.0.0.1:0") and the link pass exchanges the bound addresses.  It is
// the Connect-style counterpart to Join for deployments that wire a
// fixed node set explicitly instead of running the bootstrap protocol.
func Remote(addrs map[NodeID]string) Fabric {
	return &remoteFabric{addrs: addrs, trs: make(map[*Node]*tcp.Transport)}
}

type remoteFabric struct {
	addrs map[NodeID]string
	trs   map[*Node]*tcp.Transport
}

func (rf *remoteFabric) Name() string { return tcp.PTName }

func (rf *remoteFabric) attach(n *Node, cfg *ConnectConfig) error {
	listen := rf.addrs[n.Exec.Node()]
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	tr, err := tcp.New(n.Exec.Node(), n.Exec.Allocator(), tcp.Config{
		Listen:  listen,
		Metrics: n.Exec.Metrics(),
	})
	if err != nil {
		return err
	}
	if cfg.faults != nil {
		tr.SetFaults(cfg.faults)
	}
	if err := n.Agent.Register(tr, cfg.modeOr(ModeTask)); err != nil {
		tr.Stop()
		return err
	}
	rf.trs[n] = tr
	return nil
}

func (rf *remoteFabric) link(nodes []*Node) error {
	for _, n := range nodes {
		tr := rf.trs[n]
		for _, peer := range nodes {
			if n != peer {
				tr.AddPeer(peer.Exec.Node(), rf.trs[peer].Addr())
			}
		}
	}
	return nil
}
