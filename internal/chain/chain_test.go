package chain

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"xdaq/internal/device"
	"xdaq/internal/executive"
	"xdaq/internal/i2o"
	"xdaq/internal/pool"
	"xdaq/internal/pta"
	"xdaq/internal/transport/gm"
)

const xferXFunc uint16 = 9

// rig wires a sender executive to a receiver executive over GM, with a
// reassembling sink device on the receiver.
type rig struct {
	sender, receiver *executive.Executive
	sink             i2o.TID // proxy on sender for the sink on receiver
	done             chan *Transfer
	reasm            *Reassembler
}

func buildRig(t *testing.T) *rig {
	t.Helper()
	fabric := gm.NewFabric()
	fabric.SetBandwidth(0) // copies only; these tests move megabytes
	routes := map[i2o.NodeID]gm.Port{1: 1, 2: 2}
	mk := func(id i2o.NodeID) (*executive.Executive, *pta.Agent) {
		e := executive.New(executive.Options{
			Name: "chain", Node: id,
			RequestTimeout: 5 * time.Second,
			Logf:           func(string, ...any) {},
		})
		nic, err := fabric.Open(routes[id])
		if err != nil {
			t.Fatal(err)
		}
		tr, err := gm.NewTransport(nic, e.Allocator(), gm.Config{Routes: routes})
		if err != nil {
			t.Fatal(err)
		}
		agent, err := pta.New(e)
		if err != nil {
			t.Fatal(err)
		}
		if err := agent.Register(tr, pta.Task); err != nil {
			t.Fatal(err)
		}
		e.SetRoute(1, gm.PTName)
		e.SetRoute(2, gm.PTName)
		t.Cleanup(func() {
			agent.Close()
			e.Close()
		})
		return e, agent
	}
	s, _ := mk(1)
	r, _ := mk(2)

	rg := &rig{sender: s, receiver: r, done: make(chan *Transfer, 16)}
	rg.reasm = NewReassembler(r.Allocator(), func(tr *Transfer) error {
		rg.done <- tr
		return nil
	})
	sink := device.New("xfersink", 0)
	sink.Bind(xferXFunc, rg.reasm.Handler)
	if _, err := r.Plug(sink); err != nil {
		t.Fatal(err)
	}
	proxy, err := s.Discover(2, "xfersink", 0)
	if err != nil {
		t.Fatal(err)
	}
	rg.sink = proxy
	return rg
}

func (rg *rig) wait(t *testing.T) *Transfer {
	t.Helper()
	select {
	case tr := <-rg.done:
		return tr
	case <-time.After(10 * time.Second):
		t.Fatal("transfer never completed")
		return nil
	}
}

func TestSingleChunkTransfer(t *testing.T) {
	rg := buildRig(t)
	data := []byte("small transfer")
	if err := SendBytes(rg.sender, rg.sink, i2o.TIDExecutive, xferXFunc, i2o.PriorityNormal, 1, data); err != nil {
		t.Fatal(err)
	}
	tr := rg.wait(t)
	defer tr.Data.Release()
	if tr.ID != 1 || !bytes.Equal(tr.Data.Bytes(), data) {
		t.Fatalf("transfer %d: %q", tr.ID, tr.Data.Bytes())
	}
}

func TestMultiMegabyteTransfer(t *testing.T) {
	rg := buildRig(t)
	data := make([]byte, 3*pool.MaxBlock+12345) // forces several chunks
	rand.New(rand.NewSource(3)).Read(data)
	if err := SendBytes(rg.sender, rg.sink, i2o.TIDExecutive, xferXFunc, i2o.PriorityBulk, 7, data); err != nil {
		t.Fatal(err)
	}
	tr := rg.wait(t)
	defer tr.Data.Release()
	if tr.Data.Len() != len(data) {
		t.Fatalf("length %d, want %d", tr.Data.Len(), len(data))
	}
	if !bytes.Equal(tr.Data.Bytes(), data) {
		t.Fatal("content mismatch")
	}
	chunks, transfers := rg.reasm.Stats()
	if transfers != 1 || chunks < 4 {
		t.Fatalf("chunks=%d transfers=%d", chunks, transfers)
	}
}

func TestEmptyTransfer(t *testing.T) {
	rg := buildRig(t)
	if err := SendBytes(rg.sender, rg.sink, i2o.TIDExecutive, xferXFunc, i2o.PriorityNormal, 2, nil); err != nil {
		t.Fatal(err)
	}
	tr := rg.wait(t)
	defer tr.Data.Release()
	if tr.Data.Len() != 0 {
		t.Fatalf("empty transfer has %d bytes", tr.Data.Len())
	}
}

func TestInterleavedTransfers(t *testing.T) {
	rg := buildRig(t)
	// Two transfers whose chunks interleave: send chunk streams from two
	// goroutines with distinct transfer ids.
	mk := func(seed int64, size int) []byte {
		b := make([]byte, size)
		rand.New(rand.NewSource(seed)).Read(b)
		return b
	}
	d1 := mk(1, pool.MaxBlock+100)
	d2 := mk(2, 2*pool.MaxBlock+5)
	go func() {
		_ = SendBytes(rg.sender, rg.sink, i2o.TIDExecutive, xferXFunc, i2o.PriorityNormal, 11, d1)
	}()
	go func() {
		_ = SendBytes(rg.sender, rg.sink, i2o.TIDExecutive, xferXFunc, i2o.PriorityNormal, 22, d2)
	}()
	got := map[uint32][]byte{}
	for len(got) < 2 {
		tr := rg.wait(t)
		got[tr.ID] = append([]byte(nil), tr.Data.Bytes()...)
		tr.Data.Release()
	}
	if !bytes.Equal(got[11], d1) || !bytes.Equal(got[22], d2) {
		t.Fatal("interleaved transfers corrupted")
	}
}

func TestNoLeaksAfterTransfers(t *testing.T) {
	rg := buildRig(t)
	data := make([]byte, 2*pool.MaxBlock)
	for i := 0; i < 5; i++ {
		if err := SendBytes(rg.sender, rg.sink, i2o.TIDExecutive, xferXFunc, i2o.PriorityNormal, uint32(i), data); err != nil {
			t.Fatal(err)
		}
		tr := rg.wait(t)
		tr.Data.Release()
	}
	if rg.reasm.Pending() != 0 {
		t.Fatalf("%d transfers still pending", rg.reasm.Pending())
	}
	// Allow the last released frames to recycle.
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if rg.sender.Allocator().Stats().InUse == 32 && rg.receiver.Allocator().Stats().InUse == 32 {
			return // exactly the PTs' provided blocks remain
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("blocks in use: sender=%d receiver=%d (want 32 each)",
		rg.sender.Allocator().Stats().InUse, rg.receiver.Allocator().Stats().InUse)
}

// directHandler tests the reassembler without a network.
func directReassembler(t *testing.T) (*Reassembler, *device.Context, chan *Transfer) {
	t.Helper()
	done := make(chan *Transfer, 4)
	alloc := pool.NewTable(0)
	r := NewReassembler(alloc, func(tr *Transfer) error {
		done <- tr
		return nil
	})
	d := device.New("sink", 0)
	d.Bind(xferXFunc, r.Handler)
	e := executive.New(executive.Options{Name: "x", Node: 1, Logf: func(string, ...any) {}})
	t.Cleanup(e.Close)
	if _, err := e.Plug(d); err != nil {
		t.Fatal(err)
	}
	ctx, err := d.Ctx()
	if err != nil {
		t.Fatal(err)
	}
	return r, ctx, done
}

func chunkFrame(seq, chunks uint32, total uint64, body []byte, id uint32) *i2o.Message {
	payload := make([]byte, headerSize+len(body))
	binary.LittleEndian.PutUint32(payload, seq)
	binary.LittleEndian.PutUint32(payload[4:], chunks)
	binary.LittleEndian.PutUint64(payload[8:], total)
	copy(payload[headerSize:], body)
	return &i2o.Message{
		Target: 5, Initiator: 9,
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: xferXFunc,
		TransactionContext: id,
		Payload:            payload,
	}
}

func TestReassemblerRejectsMalformed(t *testing.T) {
	r, ctx, _ := directReassembler(t)
	cases := []*i2o.Message{
		{Payload: []byte{1, 2, 3}},                        // short header
		chunkFrame(0, 0, 0, nil, 1),                       // zero chunks
		chunkFrame(5, 2, 10, nil, 1),                      // seq out of range
		chunkFrame(0, 1, 4, []byte("too long body"), 1),   // wrong body size
		chunkFrame(0, 2, MaxChunk+10, []byte("short"), 1), // wrong body size
	}
	for i, m := range cases {
		if err := r.Handler(ctx, m); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestReassemblerDuplicateChunk(t *testing.T) {
	r, ctx, done := directReassembler(t)
	body := []byte("abcd")
	two := make([]byte, MaxChunk)
	// chunks=2: first chunk MaxChunk bytes, second 4 bytes.
	total := uint64(MaxChunk + len(body))
	if err := r.Handler(ctx, chunkFrame(0, 2, total, two, 3)); err != nil {
		t.Fatal(err)
	}
	if err := r.Handler(ctx, chunkFrame(0, 2, total, two, 3)); err != nil {
		t.Fatalf("duplicate chunk: %v", err)
	}
	if err := r.Handler(ctx, chunkFrame(1, 2, total, body, 3)); err != nil {
		t.Fatal(err)
	}
	tr := <-done
	defer tr.Data.Release()
	if tr.Data.Len() != int(total) {
		t.Fatalf("len %d", tr.Data.Len())
	}
}

func TestReassemblerInconsistentShape(t *testing.T) {
	r, ctx, _ := directReassembler(t)
	two := make([]byte, MaxChunk)
	if err := r.Handler(ctx, chunkFrame(0, 2, uint64(MaxChunk+4), two, 4)); err != nil {
		t.Fatal(err)
	}
	err := r.Handler(ctx, chunkFrame(1, 3, uint64(MaxChunk+4), []byte("abcd"), 4))
	if !errors.Is(err, ErrInconsistent) {
		t.Fatalf("reshaped transfer: %v", err)
	}
}

func TestAbortReleasesBlocks(t *testing.T) {
	r, ctx, _ := directReassembler(t)
	two := make([]byte, MaxChunk)
	if err := r.Handler(ctx, chunkFrame(0, 2, uint64(MaxChunk+4), two, 5)); err != nil {
		t.Fatal(err)
	}
	if r.Pending() != 1 {
		t.Fatal("transfer not pending")
	}
	if !r.Abort(9, 5) {
		t.Fatal("abort missed")
	}
	if r.Abort(9, 5) {
		t.Fatal("second abort succeeded")
	}
	if r.Pending() != 0 {
		t.Fatal("still pending after abort")
	}
}

func TestNilCallbackReleases(t *testing.T) {
	alloc := pool.NewTable(0)
	r := NewReassembler(alloc, nil)
	d := device.New("sink", 0)
	d.Bind(xferXFunc, r.Handler)
	e := executive.New(executive.Options{Name: "x", Node: 1, Logf: func(string, ...any) {}})
	defer e.Close()
	if _, err := e.Plug(d); err != nil {
		t.Fatal(err)
	}
	ctx, _ := d.Ctx()
	if err := r.Handler(ctx, chunkFrame(0, 1, 4, []byte("abcd"), 6)); err != nil {
		t.Fatal(err)
	}
	if alloc.Stats().InUse != 0 {
		t.Fatal("nil callback leaked the transfer")
	}
}

func TestQuickChunkingRoundTrip(t *testing.T) {
	// Pure local round trip: Send writes into a capture host, Reassembler
	// consumes, bytes must match for arbitrary sizes.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		size := r.Intn(3 * pool.MaxBlock)
		data := make([]byte, size)
		r.Read(data)

		alloc := pool.NewTable(0)
		done := make(chan *Transfer, 1)
		reasm := NewReassembler(alloc, func(tr *Transfer) error {
			done <- tr
			return nil
		})
		d := device.New("sink", 0)
		d.Bind(xferXFunc, reasm.Handler)
		e := executive.New(executive.Options{Name: "q", Node: 1, Logf: func(string, ...any) {}})
		defer e.Close()
		id, err := e.Plug(d)
		if err != nil {
			return false
		}
		if err := SendBytes(e, id, i2o.TIDExecutive, xferXFunc, i2o.PriorityNormal, 1, data); err != nil {
			return false
		}
		select {
		case tr := <-done:
			ok := bytes.Equal(tr.Data.Bytes(), data)
			tr.Data.Release()
			return ok
		case <-time.After(5 * time.Second):
			return false
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
