// Package chain implements arbitrary-length transfers over the
// fixed-maximum I2O frames: §4's "Memory is allocated in fixed sized
// blocks with a maximum length of 256 KB.  Making use of I2O's
// Scatter-Gather Lists (SGL) or chaining blocks helps to transmit
// arbitrary length information."
//
// A Sender splits a scatter-gather list into a numbered sequence of
// private frames; the Reassembler on the receiving device collects the
// sequence back into an SGL and hands the completed transfer to the
// application.  Chunks of one transfer share a transfer id carried in the
// TransactionContext; each chunk's payload starts with a small header
// (sequence number, chunk count, total length).
package chain

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"xdaq/internal/device"
	"xdaq/internal/i2o"
	"xdaq/internal/pool"
	"xdaq/internal/sgl"
)

// header layout: seq (uint32), chunks (uint32), total (uint64).
const headerSize = 16

// MaxChunk is the data carried per frame: the largest private-frame
// payload minus the chunk header.  (This is slightly below a full pool
// block: the 16-bit word count in the frame header caps the wire size
// just under 256 KB.)
const MaxChunk = i2o.MaxPayload - headerSize

// Errors.
var (
	// ErrTooManyChunks reports a transfer above ~4G chunks.
	ErrTooManyChunks = errors.New("chain: transfer too large")

	// ErrBadChunk reports a malformed chunk frame.
	ErrBadChunk = errors.New("chain: malformed chunk")

	// ErrInconsistent reports chunks that disagree about their transfer's
	// shape.
	ErrInconsistent = errors.New("chain: inconsistent transfer")
)

// Send streams the content of list to target as a chunked transfer with
// the given extended function code.  Ownership of the list stays with the
// caller.  Each chunk travels as an ordinary frame, so transfers
// interleave freely with other traffic and cross any peer transport.
func Send(host device.Host, target, initiator i2o.TID, xfunc uint16, prio i2o.Priority, transferID uint32, list *sgl.List) error {
	total := list.Len()
	chunks := (total + MaxChunk - 1) / MaxChunk
	if chunks == 0 {
		chunks = 1
	}
	if chunks > int(^uint32(0)>>1) {
		return ErrTooManyChunks
	}
	for seq := 0; seq < chunks; seq++ {
		off := seq * MaxChunk
		n := total - off
		if n > MaxChunk {
			n = MaxChunk
		}
		buf, err := host.Alloc(headerSize + n)
		if err != nil {
			return fmt.Errorf("chain: chunk %d: %w", seq, err)
		}
		body := buf.Bytes()
		binary.LittleEndian.PutUint32(body, uint32(seq))
		binary.LittleEndian.PutUint32(body[4:], uint32(chunks))
		binary.LittleEndian.PutUint64(body[8:], uint64(total))
		if _, err := list.CopyTo(off, body[headerSize:]); err != nil {
			buf.Release()
			return err
		}
		m := &i2o.Message{
			Priority:           prio,
			Target:             target,
			Initiator:          initiator,
			Function:           i2o.FuncPrivate,
			Org:                i2o.OrgXDAQ,
			XFunction:          xfunc,
			TransactionContext: transferID,
			Payload:            body,
		}
		m.AttachBuffer(buf)
		if err := host.Send(m); err != nil {
			return fmt.Errorf("chain: chunk %d/%d: %w", seq, chunks, err)
		}
	}
	return nil
}

// SendBytes is Send for a flat byte slice: it builds a temporary SGL from
// the executive pool and releases it after the last chunk is queued.
func SendBytes(host device.Host, target, initiator i2o.TID, xfunc uint16, prio i2o.Priority, transferID uint32, data []byte) error {
	alloc := allocatorOf(host)
	list, err := sgl.FromBytes(alloc, data, pool.MaxBlock)
	if err != nil {
		return err
	}
	defer list.Release()
	return Send(host, target, initiator, xfunc, prio, transferID, list)
}

// allocatorOf adapts a device.Host into a pool allocator for sgl.
func allocatorOf(host device.Host) pool.Allocator { return hostAllocator{host} }

type hostAllocator struct{ host device.Host }

func (h hostAllocator) Alloc(n int) (*pool.Buffer, error) { return h.host.Alloc(n) }
func (h hostAllocator) Stats() pool.Stats                 { return pool.Stats{} }
func (h hostAllocator) Name() string                      { return "host" }

// Transfer is one completed reassembly.
type Transfer struct {
	ID        uint32
	Initiator i2o.TID
	Data      *sgl.List
}

// pending is one in-progress reassembly.
type pending struct {
	chunks   int
	total    int
	received int
	data     *sgl.List
	got      []bool
}

// Reassembler collects chunked transfers arriving at a device.  Bind its
// Handler to the transfer xfunc; completed transfers are delivered to the
// callback (on the dispatch goroutine) with ownership of the SGL.
type Reassembler struct {
	alloc    pool.Allocator
	onDone   func(*Transfer) error
	mu       sync.Mutex
	inflight map[key]*pending

	nChunks    atomic.Uint64
	nTransfers atomic.Uint64
}

type key struct {
	initiator i2o.TID
	id        uint32
}

// NewReassembler builds a reassembler allocating from alloc and
// delivering completed transfers to onDone.
func NewReassembler(alloc pool.Allocator, onDone func(*Transfer) error) *Reassembler {
	return &Reassembler{
		alloc:    alloc,
		onDone:   onDone,
		inflight: make(map[key]*pending),
	}
}

// Stats reports chunks and transfers completed.
func (r *Reassembler) Stats() (chunks, transfers uint64) {
	return r.nChunks.Load(), r.nTransfers.Load()
}

// Pending reports in-progress transfers, for leak diagnostics.
func (r *Reassembler) Pending() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.inflight)
}

// Handler processes one chunk frame.
func (r *Reassembler) Handler(ctx *device.Context, m *i2o.Message) error {
	if len(m.Payload) < headerSize {
		return fmt.Errorf("%w: %d bytes", ErrBadChunk, len(m.Payload))
	}
	seq := int(binary.LittleEndian.Uint32(m.Payload))
	chunks := int(binary.LittleEndian.Uint32(m.Payload[4:]))
	total := int(binary.LittleEndian.Uint64(m.Payload[8:]))
	body := m.Payload[headerSize:]
	if chunks <= 0 || seq < 0 || seq >= chunks || total < 0 {
		return fmt.Errorf("%w: seq %d of %d, total %d", ErrBadChunk, seq, chunks, total)
	}

	k := key{initiator: m.Initiator, id: m.TransactionContext}
	r.mu.Lock()
	p, ok := r.inflight[k]
	if !ok {
		data, err := sgl.Build(r.alloc, total, pool.MaxBlock)
		if err != nil {
			r.mu.Unlock()
			return err
		}
		p = &pending{chunks: chunks, total: total, data: data, got: make([]bool, chunks)}
		r.inflight[k] = p
	}
	if p.chunks != chunks || p.total != total {
		r.mu.Unlock()
		return fmt.Errorf("%w: transfer %d reshaped mid-flight", ErrInconsistent, k.id)
	}
	if p.got[seq] {
		r.mu.Unlock()
		return nil // duplicate chunk: idempotent
	}
	off := seq * MaxChunk
	want := p.total - off
	if want > MaxChunk {
		want = MaxChunk
	}
	if len(body) != want {
		r.mu.Unlock()
		return fmt.Errorf("%w: chunk %d carries %d bytes, want %d", ErrInconsistent, seq, len(body), want)
	}
	if err := p.data.CopyFrom(off, body); err != nil {
		r.mu.Unlock()
		return err
	}
	p.got[seq] = true
	p.received++
	done := p.received == p.chunks
	if done {
		delete(r.inflight, k)
	}
	r.mu.Unlock()

	r.nChunks.Add(1)
	if !done {
		return nil
	}
	r.nTransfers.Add(1)
	t := &Transfer{ID: k.id, Initiator: k.initiator, Data: p.data}
	if r.onDone == nil {
		t.Data.Release()
		return nil
	}
	return r.onDone(t)
}

// Abort drops an in-progress transfer and releases its blocks.
func (r *Reassembler) Abort(initiator i2o.TID, id uint32) bool {
	r.mu.Lock()
	k := key{initiator: initiator, id: id}
	p, ok := r.inflight[k]
	if ok {
		delete(r.inflight, k)
	}
	r.mu.Unlock()
	if ok {
		p.data.Release()
	}
	return ok
}
