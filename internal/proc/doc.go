// Package proc exercises the deployment surface at the real process
// boundary.  Its tests re-exec the test binary as xdaqd-like child
// processes, join them into one cluster over loopback sockets (and,
// where configured, shared-memory rings), and assert the bootstrap
// protocol across genuine OS process boundaries: rendezvous at any live
// member, TiD exchange, eviction of a killed seed.  The benchmarks
// behind `make bench-cluster` live here too.
package proc
