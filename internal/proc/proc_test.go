package proc

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"xdaq"
)

// The child role: when these env vars are set, the test binary is not a
// test runner but one cluster member process (see TestMain).
const (
	roleEnv     = "XDAQ_PROC_ROLE"
	nodeEnv     = "XDAQ_PROC_NODE"
	seedEnv     = "XDAQ_PROC_SEED"
	shmEnv      = "XDAQ_PROC_SHM"
	addrFileEnv = "XDAQ_PROC_ADDRFILE"
	noHealthEnv = "XDAQ_PROC_NOHEALTH"
)

func TestMain(m *testing.M) {
	if os.Getenv(roleEnv) == "member" {
		runMember()
		return
	}
	os.Exit(m.Run())
}

// runMember is the whole life of a child process: join the cluster,
// plug an echo device, publish the bound address, serve until killed.
func runMember() {
	node, err := strconv.ParseUint(os.Getenv(nodeEnv), 10, 32)
	if err != nil {
		fmt.Fprintf(os.Stderr, "proc member: bad %s: %v\n", nodeEnv, err)
		os.Exit(1)
	}
	cfg := xdaq.ClusterConfig{
		Node: xdaq.NodeOptions{
			Name: fmt.Sprintf("proc%d", node),
			Node: xdaq.NodeID(node),
			Logf: func(string, ...any) {},
		},
		Seed:     os.Getenv(seedEnv),
		ShmDir:   os.Getenv(shmEnv),
		NoHealth: os.Getenv(noHealthEnv) != "",
		Logf:     func(string, ...any) {},
	}
	if !cfg.NoHealth {
		cfg.Health = &xdaq.HealthOptions{Interval: 40 * time.Millisecond, Threshold: 3}
	}
	cl, err := xdaq.Join(context.Background(), cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "proc member %d: join: %v\n", node, err)
		os.Exit(1)
	}
	defer cl.Close()

	echo := xdaq.NewDevice("echo", 0)
	echo.Bind(1, func(ctx *xdaq.Context, m *xdaq.Message) error {
		return xdaq.ReplyIfExpected(ctx, m, m.Payload)
	})
	if _, err := cl.Node().Plug(echo); err != nil {
		fmt.Fprintf(os.Stderr, "proc member %d: plug: %v\n", node, err)
		os.Exit(1)
	}

	// Publish the bound address atomically: the parent polls for this
	// file and must never read a half-written one.
	path := os.Getenv(addrFileEnv)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(cl.Listener().Addr()), 0o644); err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "proc member %d: addr file: %v\n", node, err)
		os.Exit(1)
	}
	select {} // serve until the parent kills us
}

// member is the parent's handle on one child process.
type member struct {
	cmd  *exec.Cmd
	node xdaq.NodeID
	addr string
}

// spawnMember re-execs the test binary as a cluster member process and
// waits for it to publish its bound listen address.
func spawnMember(tb testing.TB, node uint, seed, shmDir string, noHealth bool) *member {
	tb.Helper()
	addrFile := filepath.Join(tb.TempDir(), fmt.Sprintf("addr%d", node))
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		roleEnv+"=member",
		fmt.Sprintf("%s=%d", nodeEnv, node),
		seedEnv+"="+seed,
		shmEnv+"="+shmDir,
		addrFileEnv+"="+addrFile,
	)
	if noHealth {
		cmd.Env = append(cmd.Env, noHealthEnv+"=1")
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		tb.Fatalf("spawn member %d: %v", node, err)
	}
	m := &member{cmd: cmd, node: xdaq.NodeID(node)}
	tb.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	deadline := time.Now().Add(10 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil {
			m.addr = string(b)
			return m
		}
		if time.Now().After(deadline) {
			tb.Fatalf("member %d never published its address", node)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// joinLocal joins the parent test process into the cluster in-process.
func joinLocal(tb testing.TB, node uint, seed, shmDir string, noHealth bool) *xdaq.Cluster {
	tb.Helper()
	cfg := xdaq.ClusterConfig{
		Node: xdaq.NodeOptions{
			Name: fmt.Sprintf("parent%d", node),
			Node: xdaq.NodeID(node),
			Logf: func(string, ...any) {},
		},
		Seed:     seed,
		ShmDir:   shmDir,
		NoHealth: noHealth,
		Logf:     func(string, ...any) {},
	}
	if !noHealth {
		cfg.Health = &xdaq.HealthOptions{Interval: 30 * time.Millisecond, Threshold: 3}
	}
	cl, err := xdaq.Join(context.Background(), cfg)
	if err != nil {
		tb.Fatalf("join local node %d: %v", node, err)
	}
	tb.Cleanup(cl.Close)
	return cl
}

// waitFor polls cond until it holds or the budget expires.
func waitFor(budget time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(budget)
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// hasMember reports whether the cluster currently lists node.
func hasMember(cl *xdaq.Cluster, node xdaq.NodeID) bool {
	for _, m := range cl.Members() {
		if m.Node == node {
			return true
		}
	}
	return false
}

// echoVia reaches the echo device on node and round-trips a payload
// through it.  Devices advertised through the TiD exchange resolve
// locally; ones plugged after the owner's join need a Discover round
// trip, exactly as on a single-process cluster.
func echoVia(tb testing.TB, cl *xdaq.Cluster, node xdaq.NodeID, payload []byte) {
	tb.Helper()
	target, err := cl.Node().Resolve("echo", 0, node)
	if err != nil {
		target, err = cl.Node().Discover(node, "echo", 0)
	}
	if err != nil {
		tb.Fatalf("reach echo on node %d: %v", node, err)
	}
	reply, err := cl.Node().Call(target, 1, payload)
	if err != nil {
		tb.Fatalf("echo via node %d: %v", node, err)
	}
	if string(reply) != string(payload) {
		tb.Fatalf("echo via node %d: got %d bytes, want %d", node, len(reply), len(payload))
	}
}

// TestClusterKillSeed is the end-to-end process story: three child
// processes plus the parent form a cluster through the seed, the seed is
// then killed, the survivors evict it and stay callable, and a brand-new
// process still joins — rendezvousing at a non-seed member, because
// after bootstrap every member is an equal admission point.
func TestClusterKillSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	seed := spawnMember(t, 1, "", "", false)
	m2 := spawnMember(t, 2, seed.addr, "", false)
	m3 := spawnMember(t, 3, seed.addr, "", false)

	cl := joinLocal(t, 100, seed.addr, "", false)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := cl.WaitReady(ctx, 4); err != nil {
		t.Fatalf("wait for 4 members: %v", err)
	}

	// The TiD exchange crossed the process boundary: the seed's device
	// table was re-snapshotted when it admitted us, so its echo resolves
	// with no Discover round trip.
	if _, err := cl.Node().Resolve("echo", 0, seed.node); err != nil {
		t.Fatalf("seed's exported echo did not cross in the TiD exchange: %v", err)
	}
	for _, m := range []*member{seed, m2, m3} {
		echoVia(t, cl, m.node, []byte("cross-process"))
	}

	// Kill the seed outright — no Leave, a crash.  Health demotes it,
	// the OnState hook evicts it from the membership.
	seed.cmd.Process.Kill()
	seed.cmd.Wait()
	if !waitFor(10*time.Second, func() bool { return !hasMember(cl, seed.node) }) {
		t.Fatalf("killed seed %d was never evicted; members: %v", seed.node, cl.Members())
	}

	// The survivors are unaffected.
	echoVia(t, cl, m2.node, []byte("still here"))
	echoVia(t, cl, m3.node, []byte("still here"))

	// A new process joins through node 2 — the seed is gone, but any
	// live member admits joiners.
	m4 := spawnMember(t, 4, m2.addr, "", false)
	if !waitFor(10*time.Second, func() bool { return hasMember(cl, m4.node) }) {
		t.Fatalf("join via non-seed member never propagated; members: %v", cl.Members())
	}
	echoVia(t, cl, m4.node, []byte("late joiner"))

	// Admitting node 4 made node 2 re-snapshot its own device table, so
	// the push that announced the join also carried node 2's echo — it
	// now resolves here without Discover.
	if !waitFor(5*time.Second, func() bool {
		_, err := cl.Node().Resolve("echo", 0, m2.node)
		return err == nil
	}) {
		t.Fatalf("node 2's device table never propagated with the admission push")
	}
}

// TestClusterShmRoute verifies two processes sharing a ring directory
// route frames over shared memory, across a real process boundary.
func TestClusterShmRoute(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	shmDir := t.TempDir()
	seed := spawnMember(t, 1, "", shmDir, false)
	cl := joinLocal(t, 2, seed.addr, shmDir, false)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := cl.WaitReady(ctx, 2); err != nil {
		t.Fatalf("wait for 2 members: %v", err)
	}
	if route, ok := cl.Node().Exec.Route(seed.node); !ok || route != "pt.shm" {
		t.Fatalf("colocated peer routed via %q, want pt.shm", route)
	}
	echoVia(t, cl, seed.node, make([]byte, 32<<10))
}

// BenchmarkClusterRoundTrip measures a 64 B request/reply between two OS
// processes over the TCP peer transport — the cross-process round-trip
// latency figure in BENCH_cluster.json.
func BenchmarkClusterRoundTrip(b *testing.B) {
	seed := spawnMember(b, 1, "", "", true)
	cl := joinLocal(b, 2, seed.addr, "", true)
	target, err := cl.Node().Resolve("echo", 0, seed.node)
	if err != nil {
		b.Fatalf("resolve echo: %v", err)
	}
	payload := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Node().Call(target, 1, payload); err != nil {
			b.Fatalf("round trip: %v", err)
		}
	}
}

// BenchmarkClusterShmVsTCP contrasts colocated-process throughput over
// mmap'd shared-memory rings against loopback TCP with 16 KiB payloads.
func BenchmarkClusterShmVsTCP(b *testing.B) {
	run := func(b *testing.B, shmDir string) {
		seed := spawnMember(b, 1, "", shmDir, true)
		cl := joinLocal(b, 2, seed.addr, shmDir, true)
		target, err := cl.Node().Resolve("echo", 0, seed.node)
		if err != nil {
			b.Fatalf("resolve echo: %v", err)
		}
		payload := make([]byte, 16<<10)
		b.SetBytes(int64(len(payload)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cl.Node().Call(target, 1, payload); err != nil {
				b.Fatalf("round trip: %v", err)
			}
		}
	}
	b.Run("tcp", func(b *testing.B) { run(b, "") })
	b.Run("shm", func(b *testing.B) { run(b, b.TempDir()) })
}
