package trace

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"xdaq/internal/i2o"
)

func rec(i int) Record {
	return Record{
		At: time.Unix(0, int64(i)), Kind: Dispatched,
		Target: i2o.TID(i + 1), Initiator: 2,
		Function: i2o.FuncPrivate, XFunction: uint16(i), Priority: 3, Bytes: i,
	}
}

func TestRingOrderAndEviction(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 3; i++ {
		r.Add(rec(i))
	}
	snap := r.Snapshot()
	if len(snap) != 3 || snap[0].XFunction != 0 || snap[2].XFunction != 2 {
		t.Fatalf("partial snapshot %v", snap)
	}
	for i := 3; i < 10; i++ {
		r.Add(rec(i))
	}
	snap = r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("full snapshot len %d", len(snap))
	}
	for j, want := range []uint16{6, 7, 8, 9} {
		if snap[j].XFunction != want {
			t.Fatalf("snapshot[%d] = %d, want %d (oldest-first order)", j, snap[j].XFunction, want)
		}
	}
	if r.Total() != 10 || r.Len() != 4 {
		t.Fatalf("total=%d len=%d", r.Total(), r.Len())
	}
}

func TestRingReset(t *testing.T) {
	r := NewRing(2)
	r.Add(rec(1))
	r.Reset()
	if r.Len() != 0 || r.Total() != 0 || len(r.Snapshot()) != 0 {
		t.Fatal("reset incomplete")
	}
	r.Add(rec(2))
	if r.Len() != 1 {
		t.Fatal("ring unusable after reset")
	}
}

func TestDefaultDepth(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < DefaultDepth+10; i++ {
		r.Add(rec(i))
	}
	if r.Len() != DefaultDepth {
		t.Fatalf("len %d", r.Len())
	}
}

func TestOfAndFormat(t *testing.T) {
	m := &i2o.Message{
		Target: 5, Initiator: 6,
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 0x42,
		Priority: 2, Payload: []byte("abc"),
	}
	record := Of(Forwarded, m)
	if record.Target != 5 || record.Bytes != 3 || record.Kind != Forwarded {
		t.Fatalf("record %+v", record)
	}
	line := record.Format()
	if !strings.Contains(line, "forward") || !strings.Contains(line, "0x0042") {
		t.Fatalf("format %q", line)
	}
	// Standard functions print their names.
	std := Of(Failed, &i2o.Message{Target: 1, Function: i2o.UtilNOP})
	if !strings.Contains(std.Format(), "UtilNOP") {
		t.Fatalf("format %q", std.Format())
	}
}

func TestDump(t *testing.T) {
	r := NewRing(8)
	r.Add(rec(0))
	r.Add(rec(1))
	dump := r.Dump()
	if strings.Count(dump, "\n") != 2 {
		t.Fatalf("dump %q", dump)
	}
}

func TestKindStrings(t *testing.T) {
	for k := Dispatched; k <= Dropped; k++ {
		if k.String() == "" {
			t.Fatal("empty kind")
		}
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind")
	}
}

func TestConcurrentAdd(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Add(rec(i))
			}
		}()
	}
	wg.Wait()
	if r.Total() != 4000 || r.Len() != 64 {
		t.Fatalf("total=%d len=%d", r.Total(), r.Len())
	}
}

func TestQuickRingInvariants(t *testing.T) {
	f := func(depth uint8, adds uint16) bool {
		d := int(depth%32) + 1
		r := NewRing(d)
		n := int(adds % 200)
		for i := 0; i < n; i++ {
			r.Add(rec(i))
		}
		snap := r.Snapshot()
		if r.Total() != uint64(n) {
			return false
		}
		want := n
		if want > d {
			want = d
		}
		if len(snap) != want {
			return false
		}
		// Snapshot must be the most recent records, oldest first.
		for j := range snap {
			if snap[j].XFunction != uint16(n-want+j) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
