// Package trace implements the executive's frame tracer: a bounded ring
// of recent dispatch records that operators can inspect remotely.
//
// The paper's third requirement dimension (§2) is system management: "a
// successful scheme has to allow configuring all cluster components …
// according to one common scheme".  The tracer follows that scheme — it
// is switched on, sized and read entirely through the executive's own
// parameter and status messages, so `xdaqctl` scripts can watch frame
// flow on any node without new protocol.
package trace

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"xdaq/internal/i2o"
)

// Kind classifies one trace record.
type Kind uint8

const (
	// Dispatched records a frame upcalled to a local device.
	Dispatched Kind = iota

	// Forwarded records a frame routed to a remote IOP.
	Forwarded

	// Failed records a frame that produced a failure reply.
	Failed

	// Dropped records a frame discarded undeliverable.
	Dropped
)

func (k Kind) String() string {
	switch k {
	case Dispatched:
		return "dispatch"
	case Forwarded:
		return "forward"
	case Failed:
		return "fail"
	case Dropped:
		return "drop"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Record is one traced frame event.
type Record struct {
	At        time.Time
	Kind      Kind
	Target    i2o.TID
	Initiator i2o.TID
	Function  i2o.Function
	XFunction uint16
	Priority  i2o.Priority
	Bytes     int
}

// Format renders one line for operator consumption.
func (r Record) Format() string {
	fn := r.Function.String()
	if r.Function.IsPrivate() {
		fn = fmt.Sprintf("%#04x", r.XFunction)
	}
	return fmt.Sprintf("%s %-8s %v<-%v fn=%s prio=%d len=%d",
		r.At.Format("15:04:05.000000"), r.Kind, r.Target, r.Initiator, fn, r.Priority, r.Bytes)
}

// DefaultDepth is the ring capacity used when none is configured.
const DefaultDepth = 256

// Ring is a fixed-capacity trace buffer.  Recording is cheap (one mutexed
// slot write) and disabled rings cost a single atomic-free boolean load
// under the mutex of the caller's choice — the executive gates recording
// on its own enabled flag before calling Add.
type Ring struct {
	mu    sync.Mutex
	buf   []Record
	next  int
	total uint64
}

// NewRing builds a ring of the given depth (DefaultDepth when <= 0).
func NewRing(depth int) *Ring {
	if depth <= 0 {
		depth = DefaultDepth
	}
	return &Ring{buf: make([]Record, 0, depth)}
}

// Add appends one record, evicting the oldest when full.
func (r *Ring) Add(rec Record) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, rec)
	} else {
		r.buf[r.next] = rec
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
	r.mu.Unlock()
}

// Of builds a record for a frame.
func Of(kind Kind, m *i2o.Message) Record {
	return Record{
		At:        time.Now(),
		Kind:      kind,
		Target:    m.Target,
		Initiator: m.Initiator,
		Function:  m.Function,
		XFunction: m.XFunction,
		Priority:  m.Priority,
		Bytes:     len(m.Payload),
	}
}

// Total returns how many records were ever added (including evicted).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Len returns how many records are currently held.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Snapshot returns the held records oldest-first.
func (r *Ring) Snapshot() []Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Record, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		out = append(out, r.buf...)
		return out
	}
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Reset drops all records.
func (r *Ring) Reset() {
	r.mu.Lock()
	r.buf = r.buf[:0]
	r.next = 0
	r.total = 0
	r.mu.Unlock()
}

// Dump renders the whole ring as text, one record per line.
func (r *Ring) Dump() string {
	records := r.Snapshot()
	var b strings.Builder
	for _, rec := range records {
		b.WriteString(rec.Format())
		b.WriteByte('\n')
	}
	return b.String()
}
