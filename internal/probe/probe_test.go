package probe

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestDisabledRecordsNothing(t *testing.T) {
	Enable(false)
	var r Registry
	p := r.Point("x")
	p.Record(time.Second)
	if s := p.Stats(); s.Count != 0 {
		t.Fatalf("disabled probe recorded %d samples", s.Count)
	}
}

func TestStats(t *testing.T) {
	Enable(true)
	defer Enable(false)
	var r Registry
	p := r.Point("lat")
	for _, d := range []time.Duration{4, 1, 3, 2, 5} {
		p.Record(d * time.Microsecond)
	}
	s := p.Stats()
	if s.Count != 5 || s.Median != 3*time.Microsecond {
		t.Fatalf("stats %+v", s)
	}
	if s.Min != 1*time.Microsecond || s.Max != 5*time.Microsecond {
		t.Fatalf("min/max %+v", s)
	}
	if s.Mean != 3*time.Microsecond {
		t.Fatalf("mean %v", s.Mean)
	}
	// Population stddev of 1..5 µs is sqrt(2) µs.
	want := math.Sqrt2 * float64(time.Microsecond)
	if got := float64(s.StdDev); math.Abs(got-want) > float64(50*time.Nanosecond) {
		t.Fatalf("stddev %v, want ~%v", s.StdDev, time.Duration(want))
	}
}

func TestMedianEvenCount(t *testing.T) {
	Enable(true)
	defer Enable(false)
	var r Registry
	p := r.Point("even")
	for _, d := range []time.Duration{10, 20, 30, 40} {
		p.Record(d)
	}
	if m := p.Stats().Median; m != 25 {
		t.Fatalf("median %v, want 25", m)
	}
}

func TestEmptyStats(t *testing.T) {
	var r Registry
	s := r.Point("empty").Stats()
	if s.Count != 0 || s.Median != 0 || s.StdDev != 0 {
		t.Fatalf("empty stats %+v", s)
	}
}

func TestResetAndDrop(t *testing.T) {
	Enable(true)
	defer Enable(false)
	var r Registry
	p := r.Point("d")
	// Shrink capacity by replacing buf via many records against default cap
	// would be slow; instead verify drop accounting with a tiny point.
	small := &Point{name: "small", buf: make([]time.Duration, 0, 2)}
	for i := 0; i < 5; i++ {
		small.Record(time.Duration(i))
	}
	s := small.Stats()
	if s.Count != 2 || s.Dropped != 3 {
		t.Fatalf("drop accounting %+v", s)
	}
	small.Reset()
	if s := small.Stats(); s.Count != 0 || s.Dropped != 0 {
		t.Fatalf("after reset %+v", s)
	}
	p.Record(time.Second)
	r.Reset()
	if s := p.Stats(); s.Count != 0 {
		t.Fatalf("registry reset left %d samples", s.Count)
	}
}

func TestPointIdentityAndOrder(t *testing.T) {
	var r Registry
	a := r.Point("b-probe")
	if r.Point("b-probe") != a {
		t.Fatal("Point not idempotent")
	}
	r.Point("a-probe")
	pts := r.Points()
	if len(pts) != 2 || pts[0].Name() != "a-probe" || pts[1].Name() != "b-probe" {
		t.Fatalf("points order: %v %v", pts[0].Name(), pts[1].Name())
	}
}

func TestTableRendering(t *testing.T) {
	Enable(true)
	defer Enable(false)
	var r Registry
	r.Point("pt.gm.processing").Record(2920 * time.Nanosecond)
	r.Point("exec.demux").Record(220 * time.Nanosecond)
	tab := r.Table()
	if !strings.Contains(tab, "pt.gm.processing") || !strings.Contains(tab, "2.92") {
		t.Fatalf("table:\n%s", tab)
	}
}

func TestSince(t *testing.T) {
	Enable(true)
	defer Enable(false)
	var r Registry
	p := r.Point("since")
	start := time.Now().Add(-time.Millisecond)
	p.Since(start)
	if s := p.Stats(); s.Count != 1 || s.Median < time.Millisecond {
		t.Fatalf("since stats %+v", s)
	}
}

func TestConcurrentRecord(t *testing.T) {
	Enable(true)
	defer Enable(false)
	var r Registry
	p := r.Point("conc")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				p.Record(time.Duration(i))
			}
		}()
	}
	wg.Wait()
	if s := p.Stats(); s.Count != 8000 {
		t.Fatalf("count %d", s.Count)
	}
}

func TestQuickSqrt(t *testing.T) {
	f := func(v float64) bool {
		x := math.Abs(v)
		if math.IsInf(x, 0) || math.IsNaN(x) || x > 1e30 {
			return true
		}
		got := sqrt(x)
		want := math.Sqrt(x)
		if want == 0 {
			return got == 0
		}
		return math.Abs(got-want)/want < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMedianWithinRange(t *testing.T) {
	Enable(true)
	defer Enable(false)
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		p := &Point{name: "q", buf: make([]time.Duration, 0, len(raw))}
		min, max := time.Duration(raw[0]), time.Duration(raw[0])
		for _, v := range raw {
			d := time.Duration(v)
			p.Record(d)
			if d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		s := p.Stats()
		return s.Median >= min && s.Median <= max && s.Min == min && s.Max == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
