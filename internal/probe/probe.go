// Package probe implements the lightweight time probes used for the
// paper's whitebox measurements (§5, Table 1).
//
// The original system read the CPU tick counter into reserved memory and
// computed medians over 100,000 samples offline.  Here a Point accumulates
// monotonic-clock durations and reports median, mean and standard
// deviation.  Probing is globally gated by an atomic flag so that the
// instrumented fast paths cost a single load when probes are off (the
// blackbox configuration).
package probe

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

var enabled atomic.Bool

// Enable turns sample collection on or off globally.
func Enable(on bool) { enabled.Store(on) }

// Enabled reports whether probes collect samples.  Instrumented code paths
// must check it before taking timestamps so that disabled probes cost
// nothing but this load.
func Enabled() bool { return enabled.Load() }

// DefaultCapacity bounds the samples kept per point; the paper used
// 100,000 calls per measurement.
const DefaultCapacity = 200_000

// Point is one named probe location.
type Point struct {
	name string
	mu   sync.Mutex
	buf  []time.Duration
	drop uint64 // samples discarded after the buffer filled
}

// Record adds one sample if probing is enabled and the buffer has room.
func (p *Point) Record(d time.Duration) {
	if !enabled.Load() {
		return
	}
	p.mu.Lock()
	if len(p.buf) < cap(p.buf) {
		p.buf = append(p.buf, d)
	} else {
		p.drop++
	}
	p.mu.Unlock()
}

// Since records the time elapsed from start; a convenience for
// `defer pt.Since(time.Now())`-style instrumentation.
func (p *Point) Since(start time.Time) { p.Record(time.Since(start)) }

// Name returns the probe's registered name.
func (p *Point) Name() string { return p.name }

// Reset discards all samples.
func (p *Point) Reset() {
	p.mu.Lock()
	p.buf = p.buf[:0]
	p.drop = 0
	p.mu.Unlock()
}

// Stats summarizes a point's samples.
type Stats struct {
	Name    string
	Count   int
	Dropped uint64
	Median  time.Duration
	Mean    time.Duration
	StdDev  time.Duration
	Min     time.Duration
	Max     time.Duration
}

// Stats computes the summary of the samples collected so far.
func (p *Point) Stats() Stats {
	p.mu.Lock()
	samples := append([]time.Duration(nil), p.buf...)
	drop := p.drop
	p.mu.Unlock()

	s := Stats{Name: p.name, Count: len(samples), Dropped: drop}
	if len(samples) == 0 {
		return s
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	s.Min = samples[0]
	s.Max = samples[len(samples)-1]
	if n := len(samples); n%2 == 1 {
		s.Median = samples[n/2]
	} else {
		s.Median = (samples[n/2-1] + samples[n/2]) / 2
	}
	var sum float64
	for _, d := range samples {
		sum += float64(d)
	}
	mean := sum / float64(len(samples))
	s.Mean = time.Duration(mean)
	var sq float64
	for _, d := range samples {
		diff := float64(d) - mean
		sq += diff * diff
	}
	s.StdDev = time.Duration(sqrt(sq / float64(len(samples))))
	return s
}

// sqrt avoids importing math for one call site; Newton iteration is plenty
// for reporting purposes.
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// Registry is a named collection of probe points.  The zero value is ready
// to use.
type Registry struct {
	mu     sync.Mutex
	points map[string]*Point
}

// Point returns the named probe, creating it (with DefaultCapacity) on
// first use.
func (r *Registry) Point(name string) *Point {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.points == nil {
		r.points = make(map[string]*Point)
	}
	p, ok := r.points[name]
	if !ok {
		p = &Point{name: name, buf: make([]time.Duration, 0, DefaultCapacity)}
		r.points[name] = p
	}
	return p
}

// Points returns all probes sorted by name.
func (r *Registry) Points() []*Point {
	r.mu.Lock()
	out := make([]*Point, 0, len(r.points))
	for _, p := range r.points {
		out = append(out, p)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Reset clears the samples of every registered probe.
func (r *Registry) Reset() {
	for _, p := range r.Points() {
		p.Reset()
	}
}

// Table renders a whitebox report in the style of the paper's Table 1:
// one row per probe with the median in microseconds.  The Dropped column
// counts samples discarded after a point's buffer filled — a nonzero
// value means the statistics describe only the first DefaultCapacity
// samples, not the whole run.
func (r *Registry) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-32s %12s %12s %10s %8s %8s\n", "Activity", "Median (µs)", "Mean (µs)", "σ (µs)", "Samples", "Dropped")
	for _, p := range r.Points() {
		s := p.Stats()
		fmt.Fprintf(&b, "%-32s %12.2f %12.2f %10.2f %8d %8d\n",
			s.Name, us(s.Median), us(s.Mean), us(s.StdDev), s.Count, s.Dropped)
	}
	return b.String()
}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// Default is the process-wide registry used by the executive and the
// transports.
var Default = &Registry{}
