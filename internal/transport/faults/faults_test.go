package faults

import (
	"errors"
	"testing"
	"time"
)

func TestNthSchedule(t *testing.T) {
	in := New(1).DropNth(3)
	var got []Op
	for i := 0; i < 9; i++ {
		got = append(got, in.Next().Op)
	}
	want := []Op{Pass, Pass, Drop, Pass, Pass, Drop, Pass, Pass, Drop}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frame %d: got %v, want %v (full: %v)", i+1, got[i], want[i], got)
		}
	}
	if in.Frames() != 9 {
		t.Fatalf("Frames() = %d, want 9", in.Frames())
	}
	if n := in.Applied()[0]; n != 3 {
		t.Fatalf("Applied() = %d, want 3", n)
	}
}

func TestAfterAndLimit(t *testing.T) {
	in := New(1).Add(Rule{Op: Error, Nth: 1, After: 2, Limit: 2})
	var errs int
	for i := 0; i < 6; i++ {
		act := in.Next()
		if act.Op == Error {
			errs++
			if i < 2 {
				t.Fatalf("rule fired during warm-up, frame %d", i+1)
			}
			if !errors.Is(act.Err, ErrInjected) {
				t.Fatalf("generated error %v does not wrap ErrInjected", act.Err)
			}
		}
	}
	if errs != 2 {
		t.Fatalf("rule hit %d frames, want limit 2", errs)
	}
}

func TestDropAfterGoesSilent(t *testing.T) {
	in := New(1).DropAfter(4)
	for i := 1; i <= 10; i++ {
		act := in.Next()
		if i <= 4 && act.Op != Pass {
			t.Fatalf("frame %d faulted during warm-up: %v", i, act.Op)
		}
		if i > 4 && act.Op != Drop {
			t.Fatalf("frame %d not dropped after cutoff: %v", i, act.Op)
		}
	}
}

func TestSeededProbabilityIsDeterministic(t *testing.T) {
	run := func() []Op {
		in := New(42).Add(Rule{Op: Drop, Prob: 0.5})
		var out []Op
		for i := 0; i < 32; i++ {
			out = append(out, in.Next().Op)
		}
		return out
	}
	a, b := run(), run()
	var drops int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at frame %d", i+1)
		}
		if a[i] == Drop {
			drops++
		}
	}
	if drops == 0 || drops == len(a) {
		t.Fatalf("p=0.5 rule hit %d/%d frames; generator not engaged", drops, len(a))
	}
}

func TestFirstMatchWinsAndDelayCarries(t *testing.T) {
	in := New(1).
		Add(Rule{Op: Delay, Nth: 2, Delay: 5 * time.Millisecond}).
		Add(Rule{Op: Drop, Nth: 2})
	in.Next() // frame 1: pass
	act := in.Next()
	if act.Op != Delay || act.Delay != 5*time.Millisecond {
		t.Fatalf("frame 2: got %v/%v, want first-listed Delay rule", act.Op, act.Delay)
	}
}
