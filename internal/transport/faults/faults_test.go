package faults

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNthSchedule(t *testing.T) {
	in := New(1).DropNth(3)
	var got []Op
	for i := 0; i < 9; i++ {
		got = append(got, in.Next().Op)
	}
	want := []Op{Pass, Pass, Drop, Pass, Pass, Drop, Pass, Pass, Drop}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frame %d: got %v, want %v (full: %v)", i+1, got[i], want[i], got)
		}
	}
	if in.Frames() != 9 {
		t.Fatalf("Frames() = %d, want 9", in.Frames())
	}
	if n := in.Applied()[0]; n != 3 {
		t.Fatalf("Applied() = %d, want 3", n)
	}
}

func TestAfterAndLimit(t *testing.T) {
	in := New(1).Add(Rule{Op: Error, Nth: 1, After: 2, Limit: 2})
	var errs int
	for i := 0; i < 6; i++ {
		act := in.Next()
		if act.Op == Error {
			errs++
			if i < 2 {
				t.Fatalf("rule fired during warm-up, frame %d", i+1)
			}
			if !errors.Is(act.Err, ErrInjected) {
				t.Fatalf("generated error %v does not wrap ErrInjected", act.Err)
			}
		}
	}
	if errs != 2 {
		t.Fatalf("rule hit %d frames, want limit 2", errs)
	}
}

func TestDropAfterGoesSilent(t *testing.T) {
	in := New(1).DropAfter(4)
	for i := 1; i <= 10; i++ {
		act := in.Next()
		if i <= 4 && act.Op != Pass {
			t.Fatalf("frame %d faulted during warm-up: %v", i, act.Op)
		}
		if i > 4 && act.Op != Drop {
			t.Fatalf("frame %d not dropped after cutoff: %v", i, act.Op)
		}
	}
}

func TestSeededProbabilityIsDeterministic(t *testing.T) {
	run := func() []Op {
		in := New(42).Add(Rule{Op: Drop, Prob: 0.5})
		var out []Op
		for i := 0; i < 32; i++ {
			out = append(out, in.Next().Op)
		}
		return out
	}
	a, b := run(), run()
	var drops int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at frame %d", i+1)
		}
		if a[i] == Drop {
			drops++
		}
	}
	if drops == 0 || drops == len(a) {
		t.Fatalf("p=0.5 rule hit %d/%d frames; generator not engaged", drops, len(a))
	}
}

func TestFirstMatchWinsAndDelayCarries(t *testing.T) {
	in := New(1).
		Add(Rule{Op: Delay, Nth: 2, Delay: 5 * time.Millisecond}).
		Add(Rule{Op: Drop, Nth: 2})
	in.Next() // frame 1: pass
	act := in.Next()
	if act.Op != Delay || act.Delay != 5*time.Millisecond {
		t.Fatalf("frame 2: got %v/%v, want first-listed Delay rule", act.Op, act.Delay)
	}
}

// Per-peer streams: the verdict for "the Nth frame to peer P" must not
// depend on how sends to other peers interleave with it.
func TestPerPeerStreamsIndependentOfInterleaving(t *testing.T) {
	const frames = 64
	// Sequential: drain peer 1 fully, then peer 2.
	seq := func() (a, b []Op) {
		in := New(7).Add(Rule{Op: Drop, Prob: 0.3}).DupNth(5)
		for i := 0; i < frames; i++ {
			a = append(a, in.NextFor(1).Op)
		}
		for i := 0; i < frames; i++ {
			b = append(b, in.NextFor(2).Op)
		}
		return
	}
	// Interleaved: alternate peers, with global Next() traffic mixed in.
	inter := func() (a, b []Op) {
		in := New(7).Add(Rule{Op: Drop, Prob: 0.3}).DupNth(5)
		for i := 0; i < frames; i++ {
			b = append(b, in.NextFor(2).Op)
			in.Next() // unrelated global traffic must not perturb peer streams
			a = append(a, in.NextFor(1).Op)
		}
		return
	}
	a1, b1 := seq()
	a2, b2 := inter()
	for i := 0; i < frames; i++ {
		if a1[i] != a2[i] {
			t.Fatalf("peer 1 frame %d: %v sequential vs %v interleaved", i+1, a1[i], a2[i])
		}
		if b1[i] != b2[i] {
			t.Fatalf("peer 2 frame %d: %v sequential vs %v interleaved", i+1, b1[i], b2[i])
		}
	}
	// Distinct peers must see distinct schedules (independent generators).
	same := true
	for i := range a1 {
		if a1[i] != b1[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("peers 1 and 2 drew identical %d-frame schedules; streams not independently seeded", frames)
	}
}

// Concurrent senders to different peers: each peer's schedule must match
// the single-threaded one exactly, whatever the goroutine interleaving.
func TestPerPeerStreamsDeterministicUnderConcurrency(t *testing.T) {
	const peers, frames = 4, 128
	want := make([][]Op, peers)
	in := New(99).Add(Rule{Op: Drop, Prob: 0.25}).Add(Rule{Op: Error, Nth: 7})
	for p := 0; p < peers; p++ {
		for i := 0; i < frames; i++ {
			want[p] = append(want[p], in.NextFor(uint64(p)).Op)
		}
	}
	got := make([][]Op, peers)
	in2 := New(99).Add(Rule{Op: Drop, Prob: 0.25}).Add(Rule{Op: Error, Nth: 7})
	var wg sync.WaitGroup
	for p := 0; p < peers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < frames; i++ {
				got[p] = append(got[p], in2.NextFor(uint64(p)).Op)
			}
		}(p)
	}
	wg.Wait()
	for p := 0; p < peers; p++ {
		for i := 0; i < frames; i++ {
			if got[p][i] != want[p][i] {
				t.Fatalf("peer %d frame %d: got %v, want %v", p, i+1, got[p][i], want[p][i])
			}
		}
	}
}

// Limits are per stream: a Limit-2 rule fires twice on every peer, not
// twice total.
func TestLimitIsPerStream(t *testing.T) {
	in := New(1).Add(Rule{Op: Drop, Nth: 1, Limit: 2})
	for _, peer := range []uint64{10, 20} {
		var drops int
		for i := 0; i < 5; i++ {
			if in.NextFor(peer).Op == Drop {
				drops++
			}
		}
		if drops != 2 {
			t.Fatalf("peer %d: rule hit %d frames, want per-stream limit 2", peer, drops)
		}
		if got := in.AppliedFor(peer)[0]; got != 2 {
			t.Fatalf("peer %d: AppliedFor = %d, want 2", peer, got)
		}
	}
	if got := in.Applied()[0]; got != 4 {
		t.Fatalf("Applied() total = %d, want 4 (2 per stream)", got)
	}
	if got := in.FramesFor(10); got != 5 {
		t.Fatalf("FramesFor(10) = %d, want 5", got)
	}
	if got := in.Frames(); got != 10 {
		t.Fatalf("Frames() = %d, want 10", got)
	}
}

// Rules added after a stream already exists apply to it from that point.
func TestAddRuleAfterStreamCreated(t *testing.T) {
	in := New(1)
	if act := in.NextFor(3); act.Op != Pass {
		t.Fatalf("no rules: got %v, want pass", act.Op)
	}
	in.DropNth(1)
	if act := in.NextFor(3); act.Op != Drop {
		t.Fatalf("after DropNth(1): got %v, want drop", act.Op)
	}
}

func TestDuplicateOp(t *testing.T) {
	in := New(1).DupNth(2)
	if act := in.Next(); act.Op != Pass {
		t.Fatalf("frame 1: got %v, want pass", act.Op)
	}
	if act := in.Next(); act.Op != Duplicate {
		t.Fatalf("frame 2: got %v, want dup", act.Op)
	}
	if Duplicate.String() != "dup" {
		t.Fatalf("Duplicate.String() = %q", Duplicate.String())
	}
}

func TestSeedAccessor(t *testing.T) {
	if got := New(1234).Seed(); got != 1234 {
		t.Fatalf("Seed() = %d, want 1234", got)
	}
}
