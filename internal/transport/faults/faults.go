// Package faults provides a deterministic, seedable fault injector for the
// peer transports.  Every transport consults an optional Injector at the top
// of its Send path and either passes the frame through, drops it silently
// (lost on the wire), delays it, duplicates it, or refuses it with an error —
// the failure modes a real fabric exhibits.  Rules select frames by position
// (every Nth, after a warm-up offset, up to a limit) or by seeded
// probability, so fault schedules are reproducible: the same seed and the
// same send sequence always yield the same faults.  The health monitor,
// the PTA retry policy, the failover path and the chaos harness
// (internal/chaos) are all tested against it.
//
// # Per-peer streams
//
// The transports key the injector by destination: Send paths call
// NextFor(peer), which draws from a per-peer stream whose generator is
// seeded independently (derived from the injector seed and the peer
// identity) and whose sequence counter counts only that peer's frames.
// This is what keeps chaos runs deterministic under parallel dispatchers:
// frames for different peers are interleaved nondeterministically by the
// scheduler, but each peer's own frame sequence is totally ordered by the
// transport (a send ring, a NIC queue, a synchronous deliver), so the
// verdict for "the Nth frame to peer P" never depends on cross-peer
// timing.  A single shared generator — the original design — made every
// verdict depend on the global arrival order and turned any multi-worker
// run into a new schedule.
//
// Next() remains for callers that genuinely want one global sequence (and
// for single-peer tests, where the two are identical); it draws from its
// own stream and never perturbs the per-peer ones.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Op is what the injector does to one frame.
type Op int

const (
	// Pass lets the frame through untouched.
	Pass Op = iota

	// Drop discards the frame silently; the send reports success, exactly
	// like a datagram lost on the wire.
	Drop

	// Delay holds the sending goroutine for the rule's duration, then
	// passes the frame through.
	Delay

	// Error refuses the frame: the send fails with the rule's error (or a
	// generated one wrapping ErrInjected).
	Error

	// Duplicate sends the frame twice — the retransmission a real fabric
	// produces when an ack is lost.  The duplicate does not consult the
	// injector again, so one rule hit yields exactly two wire frames.
	Duplicate
)

func (o Op) String() string {
	switch o {
	case Pass:
		return "pass"
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Error:
		return "error"
	case Duplicate:
		return "dup"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// ErrInjected marks errors produced by an injector.  It counts as a
// transient transport error for the PTA retry policy, so injected refusals
// exercise the same code path as real fabric hiccups.
var ErrInjected = errors.New("faults: injected transport error")

// Rule selects frames and the fault to apply to them.  A frame is hit when
// its sequence number (1-based, counted per stream) is past After and
// either lands on an Nth multiple or wins the probability roll.  A zero
// Rule never matches.
type Rule struct {
	// Op is the fault to apply.
	Op Op

	// Nth hits every Nth frame counted from After (1 hits every frame).
	Nth uint64

	// Prob hits each frame independently with this probability, using the
	// stream's seeded generator.
	Prob float64

	// After skips the first After frames of each stream entirely (warm-up
	// traffic).
	After uint64

	// Limit caps how many frames this rule may hit per stream; 0 is
	// unlimited.  Per stream — not global — because a global budget shared
	// between peers would make each stream's schedule depend on cross-peer
	// arrival order again.
	Limit uint64

	// Delay is the hold time for Op == Delay.
	Delay time.Duration

	// Err overrides the generated error for Op == Error.  It should wrap
	// ErrInjected if retry behavior is under test.
	Err error
}

// Action is the injector's verdict for one frame.
type Action struct {
	Op    Op
	Delay time.Duration
	Err   error
}

// stream is one independent fault sequence: its own seeded generator, its
// own frame counter, its own per-rule hit counts.
type stream struct {
	rng     *rand.Rand
	seq     uint64
	applied []uint64
}

// Injector applies an ordered rule list to send sequences.  It is safe for
// concurrent use; the mutex serializes verdicts, but because verdicts for
// different peers come from independent streams, the schedule seen by any
// one peer does not depend on the interleaving.
type Injector struct {
	mu     sync.Mutex
	seed   int64
	rules  []Rule
	global *stream
	peers  map[uint64]*stream
}

// New returns an injector whose streams derive their generators from seed.
func New(seed int64) *Injector {
	return &Injector{
		seed:   seed,
		global: &stream{rng: rand.New(rand.NewSource(seed))},
		peers:  make(map[uint64]*stream),
	}
}

// Seed returns the seed the injector was built from.
func (in *Injector) Seed() int64 { return in.seed }

// Add appends a rule and returns the injector for chaining.
func (in *Injector) Add(r Rule) *Injector {
	in.mu.Lock()
	in.rules = append(in.rules, r)
	in.global.applied = append(in.global.applied, 0)
	for _, s := range in.peers {
		s.applied = append(s.applied, 0)
	}
	in.mu.Unlock()
	return in
}

// DropNth drops every nth frame.
func (in *Injector) DropNth(n uint64) *Injector { return in.Add(Rule{Op: Drop, Nth: n}) }

// DropAfter drops every frame past the first n (a peer that goes silent).
func (in *Injector) DropAfter(n uint64) *Injector {
	return in.Add(Rule{Op: Drop, Nth: 1, After: n})
}

// ErrorNth refuses every nth frame with an error wrapping ErrInjected.
func (in *Injector) ErrorNth(n uint64) *Injector { return in.Add(Rule{Op: Error, Nth: n}) }

// DelayNth holds every nth frame for d.
func (in *Injector) DelayNth(n uint64, d time.Duration) *Injector {
	return in.Add(Rule{Op: Delay, Nth: n, Delay: d})
}

// DupNth duplicates every nth frame.
func (in *Injector) DupNth(n uint64) *Injector { return in.Add(Rule{Op: Duplicate, Nth: n}) }

// splitmix64 is the seed-mixing finalizer (Steele et al.), used to derive a
// well-separated per-peer generator seed from (injector seed, peer id).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// peerStream returns (creating if needed) the stream for peer; in.mu held.
func (in *Injector) peerStream(peer uint64) *stream {
	s := in.peers[peer]
	if s == nil {
		s = &stream{
			rng:     rand.New(rand.NewSource(int64(splitmix64(uint64(in.seed) ^ splitmix64(peer))))),
			applied: make([]uint64, len(in.rules)),
		}
		in.peers[peer] = s
	}
	return s
}

// step assigns the stream's next sequence number and returns the action for
// it; in.mu held.  The first matching rule wins.
func (in *Injector) step(s *stream) Action {
	s.seq++
	for i, r := range in.rules {
		if r.Limit > 0 && s.applied[i] >= r.Limit {
			continue
		}
		if s.seq <= r.After {
			continue
		}
		hit := r.Nth > 0 && (s.seq-r.After)%r.Nth == 0
		if !hit && r.Prob > 0 && s.rng.Float64() < r.Prob {
			hit = true
		}
		if !hit {
			continue
		}
		s.applied[i]++
		act := Action{Op: r.Op, Delay: r.Delay, Err: r.Err}
		if act.Op == Error && act.Err == nil {
			act.Err = fmt.Errorf("%w: frame %d", ErrInjected, s.seq)
		}
		return act
	}
	return Action{Op: Pass}
}

// Next assigns the next global sequence number and returns the action for
// it.  Use NextFor from transports; Next exists for single-sequence tests
// and scripted global schedules.
func (in *Injector) Next() Action {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.step(in.global)
}

// NextFor assigns the next sequence number of the peer's stream and returns
// the action for it.  Streams are created on first use, independently
// seeded from (injector seed, peer), so the schedule for one peer is a pure
// function of that peer's own send count.
func (in *Injector) NextFor(peer uint64) Action {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.step(in.peerStream(peer))
}

// Frames reports how many frames the injector has seen, over all streams.
func (in *Injector) Frames() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := in.global.seq
	for _, s := range in.peers {
		n += s.seq
	}
	return n
}

// FramesFor reports how many frames the peer's stream has seen.
func (in *Injector) FramesFor(peer uint64) uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	if s := in.peers[peer]; s != nil {
		return s.seq
	}
	return 0
}

// Applied reports how many frames each rule has hit, in rule order, summed
// over all streams.
func (in *Injector) Applied() []uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]uint64, len(in.rules))
	copy(out, in.global.applied)
	for _, s := range in.peers {
		for i, n := range s.applied {
			out[i] += n
		}
	}
	return out
}

// AppliedFor reports how many frames each rule has hit on the peer's
// stream, in rule order.
func (in *Injector) AppliedFor(peer uint64) []uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]uint64, len(in.rules))
	if s := in.peers[peer]; s != nil {
		copy(out, s.applied)
	}
	return out
}
