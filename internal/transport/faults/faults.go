// Package faults provides a deterministic, seedable fault injector for the
// peer transports.  Every transport consults an optional Injector at the top
// of its Send path and either passes the frame through, drops it silently
// (lost on the wire), delays it, or refuses it with an error — the three
// failure modes a real fabric exhibits.  Rules select frames by position
// (every Nth, after a warm-up offset, up to a limit) or by seeded
// probability, so fault schedules are reproducible: the same seed and the
// same send sequence always yield the same faults.  The health monitor,
// the PTA retry policy and the failover path are all tested against it.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Op is what the injector does to one frame.
type Op int

const (
	// Pass lets the frame through untouched.
	Pass Op = iota

	// Drop discards the frame silently; the send reports success, exactly
	// like a datagram lost on the wire.
	Drop

	// Delay holds the sending goroutine for the rule's duration, then
	// passes the frame through.
	Delay

	// Error refuses the frame: the send fails with the rule's error (or a
	// generated one wrapping ErrInjected).
	Error
)

func (o Op) String() string {
	switch o {
	case Pass:
		return "pass"
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Error:
		return "error"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// ErrInjected marks errors produced by an injector.  It counts as a
// transient transport error for the PTA retry policy, so injected refusals
// exercise the same code path as real fabric hiccups.
var ErrInjected = errors.New("faults: injected transport error")

// Rule selects frames and the fault to apply to them.  A frame is hit when
// its sequence number (1-based, counted per injector) is past After and
// either lands on an Nth multiple or wins the probability roll.  A zero
// Rule never matches.
type Rule struct {
	// Op is the fault to apply.
	Op Op

	// Nth hits every Nth frame counted from After (1 hits every frame).
	Nth uint64

	// Prob hits each frame independently with this probability, using the
	// injector's seeded generator.
	Prob float64

	// After skips the first After frames entirely (warm-up traffic).
	After uint64

	// Limit caps how many frames this rule may hit; 0 is unlimited.
	Limit uint64

	// Delay is the hold time for Op == Delay.
	Delay time.Duration

	// Err overrides the generated error for Op == Error.  It should wrap
	// ErrInjected if retry behavior is under test.
	Err error
}

// Action is the injector's verdict for one frame.
type Action struct {
	Op    Op
	Delay time.Duration
	Err   error
}

// Injector applies an ordered rule list to a send sequence.  It is safe
// for concurrent use; concurrent senders serialize on the sequence counter,
// which keeps the schedule deterministic for single-goroutine tests.
type Injector struct {
	mu      sync.Mutex
	rng     *rand.Rand
	seq     uint64
	rules   []Rule
	applied []uint64
}

// New returns an injector whose probability rolls use the given seed.
func New(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// Add appends a rule and returns the injector for chaining.
func (in *Injector) Add(r Rule) *Injector {
	in.mu.Lock()
	in.rules = append(in.rules, r)
	in.applied = append(in.applied, 0)
	in.mu.Unlock()
	return in
}

// DropNth drops every nth frame.
func (in *Injector) DropNth(n uint64) *Injector { return in.Add(Rule{Op: Drop, Nth: n}) }

// DropAfter drops every frame past the first n (a peer that goes silent).
func (in *Injector) DropAfter(n uint64) *Injector {
	return in.Add(Rule{Op: Drop, Nth: 1, After: n})
}

// ErrorNth refuses every nth frame with an error wrapping ErrInjected.
func (in *Injector) ErrorNth(n uint64) *Injector { return in.Add(Rule{Op: Error, Nth: n}) }

// DelayNth holds every nth frame for d.
func (in *Injector) DelayNth(n uint64, d time.Duration) *Injector {
	return in.Add(Rule{Op: Delay, Nth: n, Delay: d})
}

// Next assigns the next sequence number and returns the action for it.
// The first matching rule wins.
func (in *Injector) Next() Action {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.seq++
	for i, r := range in.rules {
		if r.Limit > 0 && in.applied[i] >= r.Limit {
			continue
		}
		if in.seq <= r.After {
			continue
		}
		hit := r.Nth > 0 && (in.seq-r.After)%r.Nth == 0
		if !hit && r.Prob > 0 && in.rng.Float64() < r.Prob {
			hit = true
		}
		if !hit {
			continue
		}
		in.applied[i]++
		act := Action{Op: r.Op, Delay: r.Delay, Err: r.Err}
		if act.Op == Error && act.Err == nil {
			act.Err = fmt.Errorf("%w: frame %d", ErrInjected, in.seq)
		}
		return act
	}
	return Action{Op: Pass}
}

// Frames reports how many frames the injector has seen.
func (in *Injector) Frames() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.seq
}

// Applied reports how many frames each rule has hit, in rule order.
func (in *Injector) Applied() []uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]uint64, len(in.applied))
	copy(out, in.applied)
	return out
}
