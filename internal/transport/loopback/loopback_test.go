package loopback

import (
	"errors"
	"testing"
	"time"

	"xdaq/internal/device"
	"xdaq/internal/executive"
	"xdaq/internal/i2o"
	"xdaq/internal/pta"
)

func buildNode(t *testing.T, f *Fabric, id i2o.NodeID) (*executive.Executive, *pta.Agent) {
	t.Helper()
	e := executive.New(executive.Options{
		Name: "lb", Node: id,
		RequestTimeout: 2 * time.Second,
		Logf:           func(string, ...any) {},
	})
	ep, err := f.Attach(id)
	if err != nil {
		t.Fatal(err)
	}
	agent, err := pta.New(e)
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.Register(ep, pta.Task); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		agent.Close()
		e.Close()
	})
	return e, agent
}

func TestCrossExecutiveRoundTrip(t *testing.T) {
	f := NewFabric()
	a, _ := buildNode(t, f, 1)
	b, _ := buildNode(t, f, 2)
	a.SetRoute(2, DefaultName)
	b.SetRoute(1, DefaultName)

	d := device.New("echo", 0)
	d.Bind(1, func(ctx *device.Context, m *i2o.Message) error {
		return device.ReplyIfExpected(ctx, m, append([]byte(nil), m.Payload...))
	})
	if _, err := b.Plug(d); err != nil {
		t.Fatal(err)
	}
	remote, err := a.Discover(2, "echo", 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.Request(&i2o.Message{
		Target: remote, Initiator: i2o.TIDExecutive,
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
		Payload: []byte("zero-copy"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Release()
	if string(rep.Payload) != "zero-copy" {
		t.Fatalf("payload %q", rep.Payload)
	}
}

func TestSendToUnknownNode(t *testing.T) {
	f := NewFabric()
	ep, err := f.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Stop()
	m := &i2o.Message{Target: 1, Function: i2o.UtilNOP}
	if err := ep.Send(99, m); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("send: %v", err)
	}
}

func TestSendToUnstartedPeer(t *testing.T) {
	f := NewFabric()
	a, _ := f.Attach(1)
	b, _ := f.Attach(2)
	defer a.Stop()
	defer b.Stop()
	m := &i2o.Message{Target: 1, Function: i2o.UtilNOP}
	if err := a.Send(2, m); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("send: %v", err)
	}
}

func TestDuplicateAttach(t *testing.T) {
	f := NewFabric()
	if _, err := f.Attach(1); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Attach(1); !errors.Is(err, ErrDuplicateNode) {
		t.Fatalf("dup attach: %v", err)
	}
}

func TestStopDetaches(t *testing.T) {
	f := NewFabric()
	a, _ := f.Attach(1)
	b, _ := f.Attach(2)
	if err := b.Start(func(i2o.NodeID, *i2o.Message) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := b.Stop(); err != nil {
		t.Fatal(err)
	}
	m := &i2o.Message{Target: 1, Function: i2o.UtilNOP}
	if err := a.Send(2, m); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("send after stop: %v", err)
	}
	// The node id is reusable after Stop.
	if _, err := f.Attach(2); err != nil {
		t.Fatalf("reattach: %v", err)
	}
}

func TestPollIsAlwaysEmpty(t *testing.T) {
	f := NewFabric()
	ep, _ := f.Attach(1)
	defer ep.Stop()
	if n := ep.Poll(func(i2o.NodeID, *i2o.Message) error { return nil }, 10); n != 0 {
		t.Fatalf("poll delivered %d", n)
	}
	if ep.Name() != DefaultName || ep.Node() != 1 {
		t.Fatal("identity")
	}
}
