// Package loopback implements an in-process peer transport: executives in
// the same address space exchange frame pointers directly, with no
// serialization at all.  It is the degenerate case of the peer transport
// architecture of §3.4/figure 4 — a PT is "an ordinary device class" and
// the fabric behind it can be anything, including shared memory on one
// host (§2 lists "shared memory (e.g. PCI)" among the interconnect
// technologies to support).  As the cheapest possible transport it is the
// reference point for measuring what any other transport adds, and it
// lets examples and tests build multi-node clusters inside one process.
package loopback

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"xdaq/internal/i2o"
	"xdaq/internal/metrics"
	"xdaq/internal/pta"
	"xdaq/internal/transport/faults"
)

// DefaultName is the route name endpoints register under.
const DefaultName = "pt.loopback"

// Errors.
var (
	// ErrNotStarted reports a send to an endpoint whose owner has not
	// started task-mode delivery yet.
	ErrNotStarted = errors.New("loopback: peer not started")

	// ErrUnknownNode reports a send to a node with no endpoint.
	ErrUnknownNode = errors.New("loopback: unknown node")

	// ErrDuplicateNode reports two endpoints attached for one node.
	ErrDuplicateNode = errors.New("loopback: node already attached")
)

// Fabric connects loopback endpoints within one process.
type Fabric struct {
	mu    sync.RWMutex
	nodes map[i2o.NodeID]*Endpoint
}

// NewFabric returns an empty fabric.
func NewFabric() *Fabric {
	return &Fabric{nodes: make(map[i2o.NodeID]*Endpoint)}
}

// Attach creates the endpoint for one node.
func (f *Fabric) Attach(node i2o.NodeID) (*Endpoint, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.nodes[node]; dup {
		return nil, fmt.Errorf("%w: %v", ErrDuplicateNode, node)
	}
	ep := &Endpoint{
		fabric: f,
		node:   node,
		cSent:  metrics.Default.Counter(DefaultName + ".sent"),
		cRecv:  metrics.Default.Counter(DefaultName + ".recv"),
	}
	f.nodes[node] = ep
	return ep, nil
}

func (f *Fabric) lookup(node i2o.NodeID) *Endpoint {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.nodes[node]
}

func (f *Fabric) detach(node i2o.NodeID) {
	f.mu.Lock()
	delete(f.nodes, node)
	f.mu.Unlock()
}

// Endpoint is one node's loopback transport.  It implements
// pta.PeerTransport in task mode: delivery happens synchronously on the
// sender's goroutine (an Inject into the peer's inbound scheduler).
type Endpoint struct {
	fabric *Fabric
	node   i2o.NodeID

	mu      sync.RWMutex
	deliver pta.Deliver
	cSent   *metrics.Counter
	cRecv   *metrics.Counter

	flt atomic.Pointer[faults.Injector]
}

// SetFaults installs a fault injector on the send path; nil removes it.
func (e *Endpoint) SetFaults(in *faults.Injector) { e.flt.Store(in) }

// SetMetrics redirects the endpoint's frame counters into reg (normally
// the owning executive's registry).  Call it before the endpoint carries
// traffic.
func (e *Endpoint) SetMetrics(reg *metrics.Registry) {
	e.mu.Lock()
	e.cSent = reg.Counter(DefaultName + ".sent")
	e.cRecv = reg.Counter(DefaultName + ".recv")
	e.mu.Unlock()
}

var _ pta.PeerTransport = (*Endpoint)(nil)

// Name implements pta.PeerTransport.
func (e *Endpoint) Name() string { return DefaultName }

// Node returns the attached node identity.
func (e *Endpoint) Node() i2o.NodeID { return e.node }

// Send implements pta.PeerTransport: the frame pointer crosses directly
// into the destination executive.  Zero copies.
func (e *Endpoint) Send(dst i2o.NodeID, m *i2o.Message) error {
	if in := e.flt.Load(); in != nil {
		// Faults draw from the per-destination stream so the schedule for
		// each peer is deterministic whatever the dispatcher interleaving.
		switch act := in.NextFor(uint64(dst)); act.Op {
		case faults.Drop:
			m.Release()
			return nil // lost on the wire
		case faults.Delay:
			time.Sleep(act.Delay)
		case faults.Error:
			m.Release()
			return fmt.Errorf("loopback: %w", act.Err)
		case faults.Duplicate:
			// The receiver consumes (and recycles) each delivered frame, so
			// the duplicate must be an independent clone of the original.
			if err := e.deliverTo(dst, m.Dup()); err != nil {
				m.Release()
				return err
			}
		}
	}
	return e.deliverTo(dst, m)
}

func (e *Endpoint) deliverTo(dst i2o.NodeID, m *i2o.Message) error {
	peer := e.fabric.lookup(dst)
	if peer == nil {
		m.Release()
		return fmt.Errorf("%w: %v", ErrUnknownNode, dst)
	}
	peer.mu.RLock()
	deliver := peer.deliver
	recv := peer.cRecv
	peer.mu.RUnlock()
	if deliver == nil {
		m.Release()
		return fmt.Errorf("%w: %v", ErrNotStarted, dst)
	}
	e.mu.RLock()
	e.cSent.Inc()
	e.mu.RUnlock()
	recv.Inc()
	return deliver(e.node, m)
}

// Start implements pta.PeerTransport (task mode).
func (e *Endpoint) Start(fn pta.Deliver) error {
	e.mu.Lock()
	e.deliver = fn
	e.mu.Unlock()
	return nil
}

// Poll implements pta.PeerTransport.  Loopback is push-only; there is
// never anything to poll.
func (e *Endpoint) Poll(pta.Deliver, int) int { return 0 }

// Stop implements pta.PeerTransport.
func (e *Endpoint) Stop() error {
	e.mu.Lock()
	e.deliver = nil
	e.mu.Unlock()
	e.fabric.detach(e.node)
	return nil
}
