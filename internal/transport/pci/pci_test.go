package pci

import (
	"errors"
	"sync"
	"testing"
	"time"

	"xdaq/internal/device"
	"xdaq/internal/executive"
	"xdaq/internal/i2o"
	"xdaq/internal/pta"
)

func TestPointerPassing(t *testing.T) {
	s := NewSegment(4)
	a, err := s.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Attach(2)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Stop()
	defer b.Stop()

	sentMsg := &i2o.Message{Target: 5, Function: i2o.UtilNOP, Payload: []byte("shared")}
	if err := a.Send(2, sentMsg); err != nil {
		t.Fatal(err)
	}
	var got *i2o.Message
	var src i2o.NodeID
	n := b.Poll(func(s i2o.NodeID, m *i2o.Message) error {
		src, got = s, m
		return nil
	}, 10)
	if n != 1 || src != 1 {
		t.Fatalf("poll n=%d src=%v", n, src)
	}
	if got != sentMsg {
		t.Fatal("frame was copied; PCI segment must pass pointers")
	}
}

func TestBackpressureOnFullFIFO(t *testing.T) {
	s := NewSegment(2)
	a, _ := s.Attach(1)
	b, _ := s.Attach(2)
	defer a.Stop()
	defer b.Stop()
	for i := 0; i < 2; i++ {
		if err := a.Send(2, &i2o.Message{Target: 1, Function: i2o.UtilNOP}); err != nil {
			t.Fatal(err)
		}
	}
	if b.Pending() != 2 || b.Depth() != 2 {
		t.Fatalf("pending=%d depth=%d", b.Pending(), b.Depth())
	}
	blocked := make(chan error, 1)
	go func() {
		blocked <- a.Send(2, &i2o.Message{Target: 1, Function: i2o.UtilNOP})
	}()
	select {
	case err := <-blocked:
		t.Fatalf("send to full FIFO returned %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	b.Poll(func(i2o.NodeID, *i2o.Message) error { return nil }, 1)
	if err := <-blocked; err != nil {
		t.Fatal(err)
	}
}

func TestTaskMode(t *testing.T) {
	s := NewSegment(0)
	a, _ := s.Attach(1)
	b, _ := s.Attach(2)
	defer a.Stop()
	defer b.Stop()
	got := make(chan *i2o.Message, 1)
	if err := b.Start(func(_ i2o.NodeID, m *i2o.Message) error {
		got <- m
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(func(i2o.NodeID, *i2o.Message) error { return nil }); err == nil {
		t.Fatal("double start")
	}
	if err := a.Send(2, &i2o.Message{Target: 3, Function: i2o.UtilNOP}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(time.Second):
		t.Fatal("task mode never delivered")
	}
}

func TestStopUnblocksSenders(t *testing.T) {
	s := NewSegment(1)
	a, _ := s.Attach(1)
	b, _ := s.Attach(2)
	defer a.Stop()
	if err := a.Send(2, &i2o.Message{Target: 1, Function: i2o.UtilNOP}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := a.Send(2, &i2o.Message{Target: 1, Function: i2o.UtilNOP}); !errors.Is(err, ErrClosed) {
			t.Errorf("blocked send: %v", err)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	if err := b.Stop(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("sender stuck")
	}
	if err := a.Send(2, &i2o.Message{Target: 1, Function: i2o.UtilNOP}); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("send after detach: %v", err)
	}
}

func TestDuplicateAttach(t *testing.T) {
	s := NewSegment(0)
	if _, err := s.Attach(1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Attach(1); !errors.Is(err, ErrDuplicateNode) {
		t.Fatalf("dup: %v", err)
	}
}

func TestFullExecutiveStackOverSegment(t *testing.T) {
	s := NewSegment(8)
	mk := func(id i2o.NodeID) (*executive.Executive, *pta.Agent) {
		e := executive.New(executive.Options{
			Name: "pci", Node: id,
			RequestTimeout: 2 * time.Second,
			Logf:           func(string, ...any) {},
		})
		ep, err := s.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		agent, err := pta.New(e)
		if err != nil {
			t.Fatal(err)
		}
		// Host side polls (the executive scans the hardware FIFO), exactly
		// the polling-mode operation of §4.
		if err := agent.Register(ep, pta.Polling); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			agent.Close()
			e.Close()
		})
		return e, agent
	}
	host, _ := mk(1)
	iop, _ := mk(2)
	host.SetRoute(2, PTName)
	iop.SetRoute(1, PTName)

	d := device.New("block-storage", 0)
	d.Bind(1, func(ctx *device.Context, m *i2o.Message) error {
		return device.ReplyIfExpected(ctx, m, []byte("stored"))
	})
	if _, err := iop.Plug(d); err != nil {
		t.Fatal(err)
	}
	remote, err := host.Discover(2, "block-storage", 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := host.Request(&i2o.Message{
		Target: remote, Initiator: i2o.TIDExecutive,
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Release()
	if string(rep.Payload) != "stored" {
		t.Fatalf("payload %q", rep.Payload)
	}
}
