// Package pci simulates the hardware-FIFO messaging of an intelligent I/O
// board on a PCI segment — the IOP480-based processor board of the paper's
// ongoing-work section ("the board gives I2O support through hardware
// FIFOs, which will allow us to provide communication efficiency
// measurements with and without hardware support").
//
// Endpoints on a segment exchange frame *pointers* through fixed-depth
// inbound FIFOs, modelling figure 2: the host posts a pointer to an I2O
// frame into the IOP's inbound FIFO and the device modules post replies to
// the outbound queue.  A full FIFO blocks the writer, as real message
// units stall the PCI write.  Because only pointers cross, the transport
// is zero-copy like loopback but with hardware-realistic backpressure, and
// it supports both polling and task mode.
package pci

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"xdaq/internal/i2o"
	"xdaq/internal/metrics"
	"xdaq/internal/pta"
	"xdaq/internal/transport/faults"
)

// PTName is the default route name.
const PTName = "pt.pci"

// DefaultDepth is the hardware FIFO depth used when the segment is built
// with depth <= 0; real messaging units have small fixed depths.
const DefaultDepth = 16

// Errors.
var (
	// ErrClosed reports use of a detached endpoint.
	ErrClosed = errors.New("pci: closed")

	// ErrUnknownNode reports a send to a node not on this segment.
	ErrUnknownNode = errors.New("pci: unknown node")

	// ErrDuplicateNode reports attaching one node twice.
	ErrDuplicateNode = errors.New("pci: node already attached")
)

// envelope is one FIFO slot: the frame pointer plus its source.
type envelope struct {
	src i2o.NodeID
	m   *i2o.Message
}

// Segment is one PCI bus segment.
type Segment struct {
	depth int
	mu    sync.RWMutex
	eps   map[i2o.NodeID]*Endpoint
}

// NewSegment builds a segment whose endpoints have FIFOs of the given
// depth (DefaultDepth when <= 0).
func NewSegment(depth int) *Segment {
	if depth <= 0 {
		depth = DefaultDepth
	}
	return &Segment{depth: depth, eps: make(map[i2o.NodeID]*Endpoint)}
}

// Attach adds one endpoint to the segment.
func (s *Segment) Attach(node i2o.NodeID) (*Endpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.eps[node]; dup {
		return nil, fmt.Errorf("%w: %v", ErrDuplicateNode, node)
	}
	ep := &Endpoint{
		segment: s,
		node:    node,
		fifo:    make(chan envelope, s.depth),
		done:    make(chan struct{}),
	}
	ep.SetMetrics(metrics.Default)
	s.eps[node] = ep
	return ep, nil
}

func (s *Segment) lookup(node i2o.NodeID) *Endpoint {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.eps[node]
}

func (s *Segment) detach(node i2o.NodeID) {
	s.mu.Lock()
	delete(s.eps, node)
	s.mu.Unlock()
}

// Endpoint is one node's messaging unit on the segment.
type Endpoint struct {
	segment *Segment
	node    i2o.NodeID
	fifo    chan envelope
	done    chan struct{}
	closed  atomic.Bool

	taskMu   sync.Mutex
	taskDone chan struct{}

	cmu       sync.RWMutex
	nSent     *metrics.Counter
	nRecv     *metrics.Counter
	nFifoFull *metrics.Counter

	flt atomic.Pointer[faults.Injector]
}

// SetFaults installs a fault injector on the send path; nil removes it.
func (e *Endpoint) SetFaults(in *faults.Injector) { e.flt.Store(in) }

// SetMetrics redirects the endpoint's counters (pt.pci.sent, .recv,
// .fifoFull) into reg, normally the owning executive's registry.  Call it
// before the endpoint carries traffic.
func (e *Endpoint) SetMetrics(reg *metrics.Registry) {
	e.cmu.Lock()
	e.nSent = reg.Counter(PTName + ".sent")
	e.nRecv = reg.Counter(PTName + ".recv")
	e.nFifoFull = reg.Counter(PTName + ".fifoFull")
	e.cmu.Unlock()
}

func (e *Endpoint) counters() (sent, recv, full *metrics.Counter) {
	e.cmu.RLock()
	defer e.cmu.RUnlock()
	return e.nSent, e.nRecv, e.nFifoFull
}

var _ pta.PeerTransport = (*Endpoint)(nil)

// Name implements pta.PeerTransport.
func (e *Endpoint) Name() string { return PTName }

// Node returns the endpoint's identity.
func (e *Endpoint) Node() i2o.NodeID { return e.node }

// Depth returns the hardware FIFO depth.
func (e *Endpoint) Depth() int { return cap(e.fifo) }

// Pending returns the inbound FIFO population.
func (e *Endpoint) Pending() int { return len(e.fifo) }

// Send implements pta.PeerTransport: the frame pointer is posted into the
// destination's inbound FIFO, blocking while it is full.
func (e *Endpoint) Send(dst i2o.NodeID, m *i2o.Message) error {
	if in := e.flt.Load(); in != nil {
		// Faults draw from the per-destination stream so the schedule for
		// each peer is deterministic whatever the dispatcher interleaving.
		switch act := in.NextFor(uint64(dst)); act.Op {
		case faults.Drop:
			m.Release()
			return nil // lost on the segment
		case faults.Delay:
			time.Sleep(act.Delay)
		case faults.Error:
			m.Release()
			return fmt.Errorf("pci: %w", act.Err)
		case faults.Duplicate:
			// A doubled doorbell write: the duplicate descriptor lands in
			// the FIFO just before the original.
			if err := e.post(dst, m.Dup()); err != nil {
				m.Release()
				return err
			}
		}
	}
	return e.post(dst, m)
}

// post places one frame in dst's inbound FIFO, blocking while it is full.
func (e *Endpoint) post(dst i2o.NodeID, m *i2o.Message) error {
	peer := e.segment.lookup(dst)
	if peer == nil {
		m.Release()
		return fmt.Errorf("%w: %v", ErrUnknownNode, dst)
	}
	sent, _, full := e.counters()
	env := envelope{src: e.node, m: m}
	// First try without blocking so a full hardware FIFO is visible in the
	// fifoFull counter — the stall a real message unit turns into a held
	// PCI write.
	select {
	case peer.fifo <- env:
		sent.Inc()
		return nil
	default:
		full.Inc()
	}
	select {
	case peer.fifo <- env:
		sent.Inc()
		return nil
	case <-peer.done:
		m.Release()
		return ErrClosed
	case <-e.done:
		m.Release()
		return ErrClosed
	}
}

// Poll implements pta.PeerTransport (polling mode): the executive scans
// the hardware FIFO.
func (e *Endpoint) Poll(fn pta.Deliver, budget int) int {
	n := 0
	for n < budget {
		select {
		case env := <-e.fifo:
			_, recv, _ := e.counters()
			recv.Inc()
			if err := fn(env.src, env.m); err != nil {
				return n
			}
			n++
		default:
			return n
		}
	}
	return n
}

// Start implements pta.PeerTransport (task mode).
func (e *Endpoint) Start(fn pta.Deliver) error {
	e.taskMu.Lock()
	defer e.taskMu.Unlock()
	if e.taskDone != nil {
		return fmt.Errorf("pci: %v already started", e.node)
	}
	done := make(chan struct{})
	e.taskDone = done
	go func() {
		defer close(done)
		for {
			select {
			case env := <-e.fifo:
				_, recv, _ := e.counters()
				recv.Inc()
				_ = fn(env.src, env.m)
			case <-e.done:
				return
			}
		}
	}()
	return nil
}

// Stats reports frames sent and received.
func (e *Endpoint) Stats() (sent, received uint64) {
	s, r, _ := e.counters()
	return s.Value(), r.Value()
}

// Stop implements pta.PeerTransport: detaches from the segment and
// releases queued frames.
func (e *Endpoint) Stop() error {
	if e.closed.Swap(true) {
		return nil
	}
	e.segment.detach(e.node)
	close(e.done)
	e.taskMu.Lock()
	done := e.taskDone
	e.taskDone = nil
	e.taskMu.Unlock()
	if done != nil {
		<-done
	}
	for {
		select {
		case env := <-e.fifo:
			env.m.Release()
		default:
			return nil
		}
	}
}
