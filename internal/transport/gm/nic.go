// Package gm simulates the Myrinet/GM message passing system used for the
// paper's measurements (§5): network interface cards with an on-board
// LANai processor, send descriptor rings, and receive buffers provided by
// the host.
//
// The paper's testbed was a Myricom M2M-PCI64 NIC running the GM 1.1.3
// MCP.  The simulation preserves what the benchmarks depend on: a fixed
// per-message cost (descriptor handling and the LANai service loop) plus a
// linear per-byte cost (the data crosses the "wire" by copy, once from the
// sender into a wire buffer and once from the wire into a receive buffer
// the destination host provided).  Latency therefore grows linearly with
// payload — the straight middle slope of figure 6 — and whatever the XDAQ
// framework adds on top shows up as a constant offset, exactly the
// methodology of the blackbox test.
//
// The API mirrors GM's shape: open a port on the fabric, provide receive
// buffers, send with optional gather, receive completed buffers.
package gm

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Port identifies a NIC on the fabric.
type Port uint16

// MTU is the largest message the simulated NIC carries: sized to hold any
// encoded I2O frame (the pool's 256 KB maximum block).
const MTU = 262144

// Ring depths.
const (
	// SendRingDepth bounds outstanding send descriptors; a full ring
	// blocks the sender (GM send token exhaustion).
	SendRingDepth = 64

	// RecvRingDepth bounds completed-but-unconsumed receives.
	RecvRingDepth = 1024

	// ProvideDepth bounds host-provided receive buffers.
	ProvideDepth = 1024
)

// Errors.
var (
	// ErrClosed reports use of a closed NIC.
	ErrClosed = errors.New("gm: closed")

	// ErrTooLarge reports a message above MTU.
	ErrTooLarge = errors.New("gm: message exceeds MTU")

	// ErrNoBuffers reports a Provide onto a full buffer ring.
	ErrNoBuffers = errors.New("gm: provide ring full")

	// ErrDuplicatePort reports opening a port twice.
	ErrDuplicatePort = errors.New("gm: port already open")

	// ErrUnknownPort reports a send to a port nobody opened.
	ErrUnknownPort = errors.New("gm: unknown port")
)

// DefaultBandwidth is the modelled link speed: 1.28 Gbit/s, the Myrinet
// generation of the paper's M2M-PCI64 testbed.
const DefaultBandwidth = 160e6 // bytes per second

// Fabric is the switch connecting NICs.
type Fabric struct {
	mu        sync.RWMutex
	nics      map[Port]*NIC
	nsPerByte float64
}

// NewFabric returns an empty fabric with the default link bandwidth.
func NewFabric() *Fabric {
	f := &Fabric{nics: make(map[Port]*NIC)}
	f.SetBandwidth(DefaultBandwidth)
	return f
}

// SetBandwidth models the link serialization speed in bytes per second
// (0 disables the delay, leaving only the copy cost).  The LANai loop
// busy-waits for the serialization time of each message, which is what
// makes latency grow linearly with payload — the straight slopes of
// figure 6.
func (f *Fabric) SetBandwidth(bytesPerSecond float64) {
	f.mu.Lock()
	if bytesPerSecond <= 0 {
		f.nsPerByte = 0
	} else {
		f.nsPerByte = 1e9 / bytesPerSecond
	}
	f.mu.Unlock()
}

// wireDelay returns the serialization time of n bytes.
func (f *Fabric) wireDelay(n int) time.Duration {
	f.mu.RLock()
	ns := f.nsPerByte
	f.mu.RUnlock()
	return time.Duration(float64(n) * ns)
}

// busyWait waits out a serialization delay in wall time.  It yields the
// processor on every check so that, unlike a hard spin, the modelled wire
// time never starves the executives sharing the machine — on a
// single-core host a hard spin would serialize the whole system behind
// the simulated link.  Delays below the timer-read granularity are
// skipped; the LANai would not context-switch for them either.
func busyWait(d time.Duration) {
	if d < 200*time.Nanosecond {
		return
	}
	end := time.Now().Add(d)
	for time.Now().Before(end) {
		runtime.Gosched()
	}
}

func (f *Fabric) lookup(p Port) *NIC {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.nics[p]
}

func (f *Fabric) detach(p Port) {
	f.mu.Lock()
	delete(f.nics, p)
	f.mu.Unlock()
}

// Open attaches a NIC at the given port and starts its LANai service loop.
func (f *Fabric) Open(p Port) (*NIC, error) {
	n := &NIC{
		fabric:   f,
		port:     p,
		sendRing: make(chan sendDesc, SendRingDepth),
		provided: make(chan providedBuf, ProvideDepth),
		recvRing: make(chan Recv, RecvRingDepth),
		wireFree: make(chan []byte, SendRingDepth),
		done:     make(chan struct{}),
	}
	f.mu.Lock()
	if _, dup := f.nics[p]; dup {
		f.mu.Unlock()
		return nil, fmt.Errorf("%w: %d", ErrDuplicatePort, p)
	}
	f.nics[p] = n
	f.mu.Unlock()
	n.wg.Add(1)
	go n.lanai()
	return n, nil
}

type sendDesc struct {
	dst  Port
	data []byte // wire buffer slice, owned by the sending NIC
	full []byte // full-capacity wire buffer for recycling
}

type providedBuf struct {
	buf   []byte
	token any
}

// Recv is one completed receive: the message landed in a buffer the host
// provided earlier.  Token is whatever the host attached at Provide time
// (the XDAQ peer transport attaches the pool buffer backing Buf).
type Recv struct {
	Src   Port
	Buf   []byte
	N     int
	Token any
}

// Stats counts NIC activity.
type Stats struct {
	Sent     uint64
	Received uint64
	Dropped  uint64 // frames lost to unknown ports or closed receivers
}

// NIC is one simulated Myrinet interface.
type NIC struct {
	fabric   *Fabric
	port     Port
	sendRing chan sendDesc
	provided chan providedBuf
	recvRing chan Recv
	wireFree chan []byte
	done     chan struct{}
	wg       sync.WaitGroup
	closed   atomic.Bool

	nSent atomic.Uint64
	nRecv atomic.Uint64
	nDrop atomic.Uint64
}

// Port returns the NIC's fabric address.
func (n *NIC) Port() Port { return n.port }

// RingDepth returns the number of send descriptors currently queued —
// outstanding send tokens, in GM terms.  The peer transport exports it as
// the <name>.ring.depth gauge.
func (n *NIC) RingDepth() int { return len(n.sendRing) }

// Stats returns a snapshot of the NIC's counters.
func (n *NIC) Stats() Stats {
	return Stats{Sent: n.nSent.Load(), Received: n.nRecv.Load(), Dropped: n.nDrop.Load()}
}

func (n *NIC) takeWire() []byte {
	select {
	case b := <-n.wireFree:
		return b
	default:
		return make([]byte, MTU)
	}
}

func (n *NIC) recycleWire(b []byte) {
	select {
	case n.wireFree <- b:
	default:
	}
}

// Send transmits one contiguous message; equivalent to SendGather with a
// single segment.
func (n *NIC) Send(dst Port, data []byte) error {
	return n.SendGather(dst, data)
}

// SendGather copies the segments into one wire buffer and posts a send
// descriptor.  It blocks while the send ring is full (token exhaustion)
// and fails once the NIC is closed.
func (n *NIC) SendGather(dst Port, segs ...[]byte) error {
	if n.closed.Load() {
		return ErrClosed
	}
	total := 0
	for _, s := range segs {
		total += len(s)
	}
	if total > MTU {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, total)
	}
	wb := n.takeWire()
	off := 0
	for _, s := range segs {
		off += copy(wb[off:], s)
	}
	select {
	case n.sendRing <- sendDesc{dst: dst, data: wb[:total], full: wb}:
		return nil
	case <-n.done:
		n.recycleWire(wb)
		return ErrClosed
	}
}

// Provide hands the NIC a receive buffer.  Incoming messages land in
// provided buffers in FIFO order; a message larger than the buffer at the
// head of the ring is truncated to it (providers size buffers at MTU to
// avoid this).
func (n *NIC) Provide(buf []byte, token any) error {
	if n.closed.Load() {
		return ErrClosed
	}
	select {
	case n.provided <- providedBuf{buf: buf, token: token}:
		return nil
	default:
		return ErrNoBuffers
	}
}

// Receive blocks for the next completed receive; ok is false once the NIC
// is closed and drained.
func (n *NIC) Receive() (Recv, bool) {
	select {
	case r := <-n.recvRing:
		return r, true
	case <-n.done:
		select {
		case r := <-n.recvRing:
			return r, true
		default:
			return Recv{}, false
		}
	}
}

// TryReceive returns a completed receive without blocking.
func (n *NIC) TryReceive() (Recv, bool) {
	select {
	case r := <-n.recvRing:
		return r, true
	default:
		return Recv{}, false
	}
}

// lanai is the on-board processor loop: it services send descriptors,
// moves bytes across the fabric into a buffer provided by the destination
// host, and completes the receive there.
func (n *NIC) lanai() {
	defer n.wg.Done()
	for {
		select {
		case <-n.done:
			return
		case d := <-n.sendRing:
			n.transmit(d)
		}
	}
}

func (n *NIC) transmit(d sendDesc) {
	defer n.recycleWire(d.full)
	dst := n.fabric.lookup(d.dst)
	if dst == nil {
		n.nDrop.Add(1)
		return
	}
	busyWait(n.fabric.wireDelay(len(d.data)))
	var p providedBuf
	select {
	case p = <-dst.provided:
	case <-dst.done:
		n.nDrop.Add(1)
		return
	case <-n.done:
		return
	}
	c := copy(p.buf, d.data)
	r := Recv{Src: n.port, Buf: p.buf, N: c, Token: p.token}
	select {
	case dst.recvRing <- r:
		n.nSent.Add(1)
		dst.nRecv.Add(1)
	case <-dst.done:
		n.nDrop.Add(1)
	case <-n.done:
	}
}

// Close detaches the NIC from the fabric and stops the LANai loop.  It is
// idempotent.  After Close, ReclaimProvided recovers unused receive
// buffers so their owners can release them.
func (n *NIC) Close() {
	if n.closed.Swap(true) {
		return
	}
	n.fabric.detach(n.port)
	close(n.done)
	n.wg.Wait()
}

// ReclaimProvided returns one still-unused provided buffer after Close;
// ok is false when none remain.
func (n *NIC) ReclaimProvided() (buf []byte, token any, ok bool) {
	if !n.closed.Load() {
		return nil, nil, false
	}
	select {
	case p := <-n.provided:
		return p.buf, p.token, true
	default:
		return nil, nil, false
	}
}
