package gm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"xdaq/internal/i2o"
	"xdaq/internal/metrics"
	"xdaq/internal/pool"
	"xdaq/internal/probe"
	"xdaq/internal/pta"
	"xdaq/internal/transport/faults"
)

// PTName is the route name of the GM peer transport.
const PTName = "pt.gm"

// ProbeName is the whitebox probe for receive-side PT processing (the
// "PT GM processing" row of Table 1).  It covers frame decode and the
// replacement buffer allocation — not the GM library itself, matching the
// paper's note that the measured time excludes calls into Myrinet/GM.
const ProbeName = "pt.gm.processing"

// Transport adapts a NIC to the Peer Transport interface.  On send it
// gathers header, payload and padding straight from the frame (zero
// intermediate flattening); on receive it decodes in place in the pool
// block it provided to the NIC and immediately provides a fresh block —
// which is why, as in the paper, most PT processing time is frame
// allocation.
type Transport struct {
	nic    *NIC
	alloc  pool.Allocator
	name   string
	pProc  *probe.Point
	primed int

	mu     sync.RWMutex
	toPort map[i2o.NodeID]Port
	toNode map[Port]i2o.NodeID

	taskStop chan struct{}
	taskDone chan struct{}

	flt atomic.Pointer[faults.Injector]

	nSent      *metrics.Counter
	nRecv      *metrics.Counter
	nShortRing *metrics.Counter
}

// SetFaults installs a fault injector on the send path; nil removes it.
func (t *Transport) SetFaults(in *faults.Injector) { t.flt.Store(in) }

var _ pta.PeerTransport = (*Transport)(nil)

// Config configures a Transport.
type Config struct {
	// Name overrides the route name; defaults to PTName.
	Name string

	// Routes maps IOP identities to fabric ports, both directions.
	Routes map[i2o.NodeID]Port

	// Provide is how many receive blocks to keep posted; defaults to 32.
	Provide int

	// Probes receives the PT processing samples; defaults to
	// probe.Default.
	Probes *probe.Registry

	// Metrics receives the transport's counters (<name>.sent, .recv,
	// .shortRing); defaults to metrics.Default.
	Metrics *metrics.Registry
}

// NewTransport wraps a NIC.  The allocator supplies receive blocks (it
// should be the executive's pool so received frames are zero-copy
// executive frames).
func NewTransport(nic *NIC, alloc pool.Allocator, cfg Config) (*Transport, error) {
	if cfg.Name == "" {
		cfg.Name = PTName
	}
	if cfg.Provide <= 0 {
		cfg.Provide = 32
	}
	if cfg.Probes == nil {
		cfg.Probes = probe.Default
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.Default
	}
	t := &Transport{
		nic:    nic,
		alloc:  alloc,
		name:   cfg.Name,
		pProc:  cfg.Probes.Point(ProbeName),
		primed: cfg.Provide,
		toPort: make(map[i2o.NodeID]Port),
		toNode: make(map[Port]i2o.NodeID),

		nSent:      cfg.Metrics.Counter(cfg.Name + ".sent"),
		nRecv:      cfg.Metrics.Counter(cfg.Name + ".recv"),
		nShortRing: cfg.Metrics.Counter(cfg.Name + ".shortRing"),
	}
	cfg.Metrics.Func(cfg.Name+".ring.depth", func() int64 { return int64(nic.RingDepth()) })
	for node, port := range cfg.Routes {
		t.toPort[node] = port
		t.toNode[port] = node
	}
	for i := 0; i < cfg.Provide; i++ {
		if err := t.provideBlock(); err != nil {
			t.reclaim()
			return nil, err
		}
	}
	return t, nil
}

// AddRoute maps a node to a fabric port at runtime.
func (t *Transport) AddRoute(node i2o.NodeID, port Port) {
	t.mu.Lock()
	t.toPort[node] = port
	t.toNode[port] = node
	t.mu.Unlock()
}

func (t *Transport) provideBlock() error {
	b, err := t.alloc.Alloc(pool.MaxBlock)
	if err != nil {
		return fmt.Errorf("gm: provide receive block: %w", err)
	}
	if err := t.nic.Provide(b.Bytes(), b); err != nil {
		b.Release()
		return err
	}
	return nil
}

// Name implements pta.PeerTransport.
func (t *Transport) Name() string { return t.name }

// Send implements pta.PeerTransport: header + payload + padding gathered
// straight onto the wire, then the frame's pool buffer is released.
func (t *Transport) Send(dst i2o.NodeID, m *i2o.Message) error {
	dup := false
	if in := t.flt.Load(); in != nil {
		// Faults draw from the per-destination stream so the schedule for
		// each peer is deterministic whatever the dispatcher interleaving.
		switch act := in.NextFor(uint64(dst)); act.Op {
		case faults.Drop:
			m.Release()
			return nil // descriptor dropped by the fabric
		case faults.Delay:
			time.Sleep(act.Delay)
		case faults.Error:
			m.Release()
			return fmt.Errorf("gm: %w", act.Err)
		case faults.Duplicate:
			dup = true
		}
	}
	t.mu.RLock()
	port, ok := t.toPort[dst]
	t.mu.RUnlock()
	if !ok {
		m.Release()
		return fmt.Errorf("gm: no port for %v", dst)
	}
	if dup {
		// A lost-ack retransmission: the same frame hits the wire twice.
		if err := t.transmit(port, m); err != nil {
			m.Release()
			return err
		}
		t.nSent.Inc()
	}
	if err := t.transmit(port, m); err != nil {
		// The buffer is released but the struct stays intact, so the
		// agent's retry policy can re-attach and resend the frame.
		m.Release()
		return err
	}
	m.Recycle()
	t.nSent.Inc()
	return nil
}

// transmit serializes one frame onto the wire: header + payload (flat or
// gathered segment chain) + padding.  It neither releases nor recycles m.
func (t *Transport) transmit(port Port, m *i2o.Message) error {
	var hdr [i2o.PrivateHeaderSize]byte
	n, err := m.EncodeHeader(hdr[:])
	if err != nil {
		return err
	}
	if m.List() != nil {
		// Chained payload: gather every segment straight onto the wire —
		// the SGL path of the paper's §4, no flattening copy.
		vp := vecPool.Get().(*[][]byte)
		vec := append((*vp)[:0], hdr[:n])
		vec = m.AppendBody(vec)
		err = t.nic.SendGather(port, vec...)
		for i := range vec {
			vec[i] = nil
		}
		*vp = vec[:0]
		vecPool.Put(vp)
	} else {
		pad := i2o.PadBytes(len(m.Payload))
		err = t.nic.SendGather(port, hdr[:n], m.Payload, i2o.ZeroPad[:pad])
	}
	return err
}

// vecPool recycles gather vectors for segmented sends; the common
// flat-payload send builds its three-element vector on the stack instead.
var vecPool = sync.Pool{New: func() any {
	v := make([][]byte, 0, 8)
	return &v
}}

// handle turns one completed receive into an executive frame and reposts a
// fresh block.
func (t *Transport) handle(r Recv, fn pta.Deliver) error {
	var start time.Time
	probing := probe.Enabled()
	if probing {
		start = time.Now()
	}
	t.mu.RLock()
	src, known := t.toNode[r.Src]
	t.mu.RUnlock()
	buf, isBlock := r.Token.(*pool.Buffer)
	if !known {
		if isBlock {
			buf.Release()
		}
		return fmt.Errorf("gm: frame from unmapped port %d", r.Src)
	}
	m, _, err := i2o.DecodeAcquired(r.Buf[:r.N])
	if err != nil {
		if isBlock {
			buf.Release()
		}
		return fmt.Errorf("gm: undecodable frame from %v: %w", src, err)
	}
	if isBlock {
		m.AttachBuffer(buf)
	}
	// Keep the receive ring populated; this allocation dominates PT
	// processing time, as the whitebox test shows.  A failure here means
	// the ring runs one block short until the next successful receive.
	if err := t.provideBlock(); err != nil {
		t.nShortRing.Inc()
		m.Release()
		return err
	}
	t.nRecv.Inc()
	if probing {
		t.pProc.Since(start)
	}
	return fn(src, m)
}

// Start implements pta.PeerTransport (task mode): a dedicated goroutine
// blocks on the NIC receive ring.
func (t *Transport) Start(fn pta.Deliver) error {
	t.mu.Lock()
	if t.taskStop != nil {
		t.mu.Unlock()
		return fmt.Errorf("gm: %s already started", t.name)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	t.taskStop = stop
	t.taskDone = done
	t.mu.Unlock()

	go func() {
		defer close(done)
		for {
			r, ok := t.nic.Receive()
			if !ok {
				return
			}
			if err := t.handle(r, fn); err != nil {
				select {
				case <-stop:
					return
				default:
				}
			}
		}
	}()
	return nil
}

// Poll implements pta.PeerTransport (polling mode).
func (t *Transport) Poll(fn pta.Deliver, budget int) int {
	n := 0
	for n < budget {
		r, ok := t.nic.TryReceive()
		if !ok {
			break
		}
		if err := t.handle(r, fn); err == nil {
			n++
		}
	}
	return n
}

// Stop implements pta.PeerTransport: closes the NIC, stops the task loop
// and releases all still-provided pool blocks.
func (t *Transport) Stop() error {
	t.nic.Close()
	t.mu.Lock()
	done := t.taskDone
	t.taskStop = nil
	t.taskDone = nil
	t.mu.Unlock()
	if done != nil {
		<-done
	}
	t.reclaim()
	return nil
}

// reclaim drains provided and completed-but-unconsumed receive blocks
// after the NIC closed.
func (t *Transport) reclaim() {
	for {
		_, token, ok := t.nic.ReclaimProvided()
		if !ok {
			break
		}
		if b, isBlock := token.(*pool.Buffer); isBlock {
			b.Release()
		}
	}
	for {
		r, ok := t.nic.TryReceive()
		if !ok {
			break
		}
		if b, isBlock := r.Token.(*pool.Buffer); isBlock {
			b.Release()
		}
	}
}
