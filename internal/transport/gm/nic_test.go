package gm

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

func openPair(t *testing.T) (*NIC, *NIC) {
	t.Helper()
	f := NewFabric()
	a, err := f.Open(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Open(2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	t.Cleanup(b.Close)
	return a, b
}

func provide(t *testing.T, n *NIC, count, size int) {
	t.Helper()
	for i := 0; i < count; i++ {
		if err := n.Provide(make([]byte, size), nil); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSendReceive(t *testing.T) {
	a, b := openPair(t)
	provide(t, b, 1, 64)
	if err := a.Send(2, []byte("hello myrinet")); err != nil {
		t.Fatal(err)
	}
	r, ok := b.Receive()
	if !ok {
		t.Fatal("receive")
	}
	if r.Src != 1 || string(r.Buf[:r.N]) != "hello myrinet" {
		t.Fatalf("recv %+v", r)
	}
}

func TestSendGatherConcatenates(t *testing.T) {
	a, b := openPair(t)
	provide(t, b, 1, 64)
	if err := a.SendGather(2, []byte("head|"), []byte("body|"), []byte("pad")); err != nil {
		t.Fatal(err)
	}
	r, _ := b.Receive()
	if string(r.Buf[:r.N]) != "head|body|pad" {
		t.Fatalf("gather %q", r.Buf[:r.N])
	}
}

func TestReceiveToken(t *testing.T) {
	a, b := openPair(t)
	type tok struct{ id int }
	want := &tok{7}
	if err := b.Provide(make([]byte, 16), want); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, []byte("x")); err != nil {
		t.Fatal(err)
	}
	r, _ := b.Receive()
	if r.Token != want {
		t.Fatalf("token %v", r.Token)
	}
}

func TestProvideOrderIsFIFO(t *testing.T) {
	a, b := openPair(t)
	if err := b.Provide(make([]byte, 16), "first"); err != nil {
		t.Fatal(err)
	}
	if err := b.Provide(make([]byte, 16), "second"); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, []byte("2")); err != nil {
		t.Fatal(err)
	}
	r1, _ := b.Receive()
	r2, _ := b.Receive()
	if r1.Token != "first" || r2.Token != "second" {
		t.Fatalf("tokens %v %v", r1.Token, r2.Token)
	}
}

func TestTruncationToProvidedBuffer(t *testing.T) {
	a, b := openPair(t)
	provide(t, b, 1, 4)
	if err := a.Send(2, []byte("longer than four")); err != nil {
		t.Fatal(err)
	}
	r, _ := b.Receive()
	if r.N != 4 || string(r.Buf[:r.N]) != "long" {
		t.Fatalf("truncated recv %q n=%d", r.Buf[:r.N], r.N)
	}
}

func TestOversizeSend(t *testing.T) {
	a, _ := openPair(t)
	if err := a.Send(2, make([]byte, MTU+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize: %v", err)
	}
}

func TestUnknownPortDrops(t *testing.T) {
	a, _ := openPair(t)
	if err := a.Send(99, []byte("void")); err != nil {
		t.Fatal(err) // posting succeeds; the LANai drops it
	}
	deadline := time.After(time.Second)
	for a.Stats().Dropped == 0 {
		select {
		case <-deadline:
			t.Fatal("drop never counted")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

func TestDuplicatePort(t *testing.T) {
	f := NewFabric()
	n, err := f.Open(5)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if _, err := f.Open(5); !errors.Is(err, ErrDuplicatePort) {
		t.Fatalf("dup: %v", err)
	}
}

func TestCloseSemantics(t *testing.T) {
	f := NewFabric()
	n, err := f.Open(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Provide(make([]byte, 8), "t"); err != nil {
		t.Fatal(err)
	}
	n.Close()
	n.Close() // idempotent
	if err := n.Send(1, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
	if err := n.Provide(make([]byte, 8), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("provide after close: %v", err)
	}
	if _, ok := n.Receive(); ok {
		t.Fatal("receive after close")
	}
	_, tok, ok := n.ReclaimProvided()
	if !ok || tok != "t" {
		t.Fatalf("reclaim %v %v", tok, ok)
	}
	if _, _, ok := n.ReclaimProvided(); ok {
		t.Fatal("second reclaim")
	}
}

func TestReclaimBeforeCloseRefuses(t *testing.T) {
	f := NewFabric()
	n, _ := f.Open(1)
	defer n.Close()
	if err := n.Provide(make([]byte, 8), nil); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := n.ReclaimProvided(); ok {
		t.Fatal("reclaim on open NIC")
	}
}

func TestProvideRingBound(t *testing.T) {
	f := NewFabric()
	n, _ := f.Open(1)
	defer n.Close()
	for i := 0; i < ProvideDepth; i++ {
		if err := n.Provide(make([]byte, 1), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Provide(make([]byte, 1), nil); !errors.Is(err, ErrNoBuffers) {
		t.Fatalf("over-provide: %v", err)
	}
}

func TestBlockedSenderUnblocksOnClose(t *testing.T) {
	f := NewFabric()
	a, _ := f.Open(1)
	b, _ := f.Open(2)
	defer b.Close()
	// No provided buffers at b: a's LANai blocks, then a's send ring fills.
	errs := make(chan error, SendRingDepth+4)
	var wg sync.WaitGroup
	for i := 0; i < SendRingDepth+4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- a.Send(2, []byte("jam"))
		}()
	}
	time.Sleep(20 * time.Millisecond)
	a.Close()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("senders stuck after close")
	}
}

func TestPingPongRoundTrip(t *testing.T) {
	a, b := openPair(t)
	provide(t, a, 4, 1024)
	provide(t, b, 4, 1024)
	payload := bytes.Repeat([]byte{0x5A}, 777)
	for i := 0; i < 100; i++ {
		if err := a.Send(2, payload); err != nil {
			t.Fatal(err)
		}
		r, ok := b.Receive()
		if !ok || !bytes.Equal(r.Buf[:r.N], payload) {
			t.Fatalf("iter %d: b recv", i)
		}
		if err := b.Provide(r.Buf, r.Token); err != nil {
			t.Fatal(err)
		}
		if err := b.Send(1, payload); err != nil {
			t.Fatal(err)
		}
		r, ok = a.Receive()
		if !ok || !bytes.Equal(r.Buf[:r.N], payload) {
			t.Fatalf("iter %d: a recv", i)
		}
		if err := a.Provide(r.Buf, r.Token); err != nil {
			t.Fatal(err)
		}
	}
	if a.Stats().Sent != 100 || b.Stats().Received != 100 {
		t.Fatalf("stats a=%+v b=%+v", a.Stats(), b.Stats())
	}
}

func TestManySendersOneReceiver(t *testing.T) {
	f := NewFabric()
	dst, _ := f.Open(100)
	defer dst.Close()
	provide(t, dst, 400, 64)
	const senders, per = 4, 100
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		n, err := f.Open(Port(s + 1))
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		wg.Add(1)
		go func(n *NIC) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := n.Send(100, []byte("m")); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(n)
	}
	wg.Wait()
	got := 0
	deadline := time.After(2 * time.Second)
	for got < senders*per {
		if r, ok := dst.TryReceive(); ok {
			if r.N != 1 {
				t.Fatalf("recv n=%d", r.N)
			}
			got++
			continue
		}
		select {
		case <-deadline:
			t.Fatalf("received %d of %d", got, senders*per)
		default:
			time.Sleep(time.Millisecond)
		}
	}
}
