package gm

import (
	"bytes"
	"testing"
	"time"

	"xdaq/internal/device"
	"xdaq/internal/executive"
	"xdaq/internal/i2o"
	"xdaq/internal/pta"
)

// node bundles one simulated IOP for tests.
type node struct {
	exec  *executive.Executive
	agent *pta.Agent
	pt    *Transport
}

// buildPair wires two executives over a GM fabric in the given PTA mode.
func buildPair(t *testing.T, mode pta.Mode) (*node, *node) {
	t.Helper()
	fabric := NewFabric()
	routes := map[i2o.NodeID]Port{1: 1, 2: 2}

	mk := func(id i2o.NodeID, name string) *node {
		e := executive.New(executive.Options{
			Name: name, Node: id,
			RequestTimeout: 3 * time.Second,
			Logf:           func(string, ...any) {},
		})
		nic, err := fabric.Open(routes[id])
		if err != nil {
			t.Fatal(err)
		}
		tr, err := NewTransport(nic, e.Allocator(), Config{Routes: routes})
		if err != nil {
			t.Fatal(err)
		}
		agent, err := pta.New(e)
		if err != nil {
			t.Fatal(err)
		}
		if err := agent.Register(tr, mode); err != nil {
			t.Fatal(err)
		}
		e.SetRoute(1, PTName)
		e.SetRoute(2, PTName)
		n := &node{exec: e, agent: agent, pt: tr}
		t.Cleanup(func() {
			agent.Close()
			e.Close()
		})
		return n
	}
	return mk(1, "gm-a"), mk(2, "gm-b")
}

func plugEcho(t *testing.T, n *node) i2o.TID {
	t.Helper()
	d := device.New("echo", 0)
	d.Bind(1, func(ctx *device.Context, m *i2o.Message) error {
		if !m.Flags.Has(i2o.FlagReplyExpected) {
			return nil
		}
		rep := i2o.NewReply(m)
		buf, err := ctx.Host.Alloc(len(m.Payload))
		if err != nil {
			return err
		}
		copy(buf.Bytes(), m.Payload)
		rep.Payload = buf.Bytes()
		rep.AttachBuffer(buf)
		return ctx.Host.Send(rep)
	})
	id, err := n.exec.Plug(d)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func testRoundTrips(t *testing.T, mode pta.Mode) {
	a, b := buildPair(t, mode)
	plugEcho(t, b)
	remote, err := a.exec.Discover(2, "echo", 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{0, 1, 64, 4096, 65536} {
		payload := bytes.Repeat([]byte{0xA5}, size)
		m, err := a.exec.AllocMessage(size)
		if err != nil {
			t.Fatal(err)
		}
		copy(m.Payload, payload)
		m.Target = remote
		m.Initiator = i2o.TIDExecutive
		m.XFunction = 1
		rep, err := a.exec.Request(m)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !bytes.Equal(rep.Payload, payload) {
			t.Fatalf("size %d: payload mismatch (%d back)", size, len(rep.Payload))
		}
		rep.Release()
	}
	if a.agent.Stats().Sent == 0 || b.agent.Stats().Received == 0 {
		t.Fatalf("agent stats a=%+v b=%+v", a.agent.Stats(), b.agent.Stats())
	}
}

func TestRoundTripsTaskMode(t *testing.T)    { testRoundTrips(t, pta.Task) }
func TestRoundTripsPollingMode(t *testing.T) { testRoundTrips(t, pta.Polling) }

func TestNoBufferLeaksAcrossWire(t *testing.T) {
	a, b := buildPair(t, pta.Task)
	plugEcho(t, b)
	remote, err := a.exec.Discover(2, "echo", 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		m, err := a.exec.AllocMessage(512)
		if err != nil {
			t.Fatal(err)
		}
		m.Target = remote
		m.Initiator = i2o.TIDExecutive
		m.XFunction = 1
		rep, err := a.exec.Request(m)
		if err != nil {
			t.Fatal(err)
		}
		rep.Release()
	}
	// Everything still held should be exactly the PT's provided receive
	// blocks (32 each side by default).
	for name, n := range map[string]*node{"a": a, "b": b} {
		inUse := n.exec.Allocator().Stats().InUse
		if inUse != 32 {
			t.Errorf("node %s: %d blocks in use, want 32 provided blocks", name, inUse)
		}
	}
}

func TestStopReleasesProvidedBlocks(t *testing.T) {
	fabric := NewFabric()
	e := executive.New(executive.Options{Name: "x", Node: 1, Logf: func(string, ...any) {}})
	defer e.Close()
	nic, err := fabric.Open(1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTransport(nic, e.Allocator(), Config{Provide: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Allocator().Stats().InUse; got != 8 {
		t.Fatalf("provided %d", got)
	}
	if err := tr.Stop(); err != nil {
		t.Fatal(err)
	}
	if got := e.Allocator().Stats().InUse; got != 0 {
		t.Fatalf("%d blocks leaked after stop", got)
	}
}

func TestSendToUnroutedNode(t *testing.T) {
	fabric := NewFabric()
	e := executive.New(executive.Options{Name: "x", Node: 1, Logf: func(string, ...any) {}})
	defer e.Close()
	nic, _ := fabric.Open(1)
	tr, err := NewTransport(nic, e.Allocator(), Config{Provide: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Stop()
	m, _ := e.AllocMessage(8)
	m.Target = 5
	if err := tr.Send(99, m); err == nil {
		t.Fatal("send to unrouted node succeeded")
	}
	// The frame's buffer must have been released on the error path: only
	// the single provided block remains.
	if got := e.Allocator().Stats().InUse; got != 1 {
		t.Fatalf("in use %d", got)
	}
}

func TestAddRoute(t *testing.T) {
	fabric := NewFabric()
	e := executive.New(executive.Options{Name: "x", Node: 1, Logf: func(string, ...any) {}})
	defer e.Close()
	nic, _ := fabric.Open(1)
	tr, err := NewTransport(nic, e.Allocator(), Config{Provide: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Stop()
	tr.AddRoute(7, 7)
	m, _ := e.AllocMessage(8)
	m.Target = 5
	// Port 7 exists in the route table but not on the fabric; the send is
	// accepted and the LANai drops it.
	if err := tr.Send(7, m); err != nil {
		t.Fatalf("send after AddRoute: %v", err)
	}
}

func TestDoubleStartRefused(t *testing.T) {
	fabric := NewFabric()
	e := executive.New(executive.Options{Name: "x", Node: 1, Logf: func(string, ...any) {}})
	defer e.Close()
	nic, _ := fabric.Open(1)
	tr, err := NewTransport(nic, e.Allocator(), Config{Provide: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Stop()
	fn := func(i2o.NodeID, *i2o.Message) error { return nil }
	if err := tr.Start(fn); err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(fn); err == nil {
		t.Fatal("second start succeeded")
	}
}
