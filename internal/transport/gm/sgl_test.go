package gm

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"xdaq/internal/i2o"
	"xdaq/internal/pool"
	"xdaq/internal/sgl"
)

// TestSGLPayloadOverFabric sends a chained payload through the simulated
// NIC and checks the gather path reassembles the exact byte sequence on
// the receiving side.
func TestSGLPayloadOverFabric(t *testing.T) {
	fabric := NewFabric()
	fabric.SetBandwidth(0) // no wire delay; this is a correctness test
	routes := map[i2o.NodeID]Port{1: 1, 2: 2}

	mkTransport := func(id i2o.NodeID) (*Transport, *pool.Table) {
		nic, err := fabric.Open(routes[id])
		if err != nil {
			t.Fatal(err)
		}
		alloc := pool.NewTable(0)
		tr, err := NewTransport(nic, alloc, Config{Routes: routes})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tr.Stop() })
		return tr, alloc
	}
	send, sendAlloc := mkTransport(1)
	recv, _ := mkTransport(2)

	var (
		mu  sync.Mutex
		got []byte
	)
	if err := recv.Start(func(_ i2o.NodeID, m *i2o.Message) error {
		mu.Lock()
		got = append([]byte(nil), m.Payload...)
		mu.Unlock()
		m.Release()
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// The transport keeps receive blocks provided to its NIC; only the
	// SGL chain on top of that baseline must drain back to the pool.
	base := sendAlloc.Stats().InUse

	data := make([]byte, 20_000)
	for i := range data {
		data[i] = byte(i * 17)
	}
	l, err := sgl.FromBytes(sendAlloc, data, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if l.Segments() < 2 {
		t.Fatalf("list has %d segments; the test needs a real chain", l.Segments())
	}
	m := &i2o.Message{
		Target: 1, Initiator: i2o.TIDExecutive,
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
	}
	m.AttachList(l)
	if err := send.Send(2, m); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		ok := got != nil
		mu.Unlock()
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("frame never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("payload mismatch: %d bytes back, want %d", len(got), len(data))
	}
	// SendGather copied the segments to the wire and Send recycled the
	// frame; the whole chain must be back in the pool.
	deadline = time.Now().Add(time.Second)
	for sendAlloc.Stats().InUse != base {
		if time.Now().After(deadline) {
			t.Fatalf("sender leaked %d blocks", sendAlloc.Stats().InUse-base)
		}
		time.Sleep(time.Millisecond)
	}
}
