package ring

import (
	"errors"
	"sync"
	"testing"
)

func TestPushPopBatchOrder(t *testing.T) {
	q := New[int](8)
	for i := 0; i < 5; i++ {
		if err := q.Push(i); err != nil {
			t.Fatalf("Push(%d): %v", i, err)
		}
	}
	if q.Len() != 5 {
		t.Fatalf("Len = %d, want 5", q.Len())
	}
	batch, closed := q.PopBatch(nil)
	if closed {
		t.Fatal("PopBatch reported closed on open ring")
	}
	if len(batch) != 5 {
		t.Fatalf("batch len = %d, want 5", len(batch))
	}
	for i, v := range batch {
		if v != i {
			t.Fatalf("batch[%d] = %d, want %d", i, v, i)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len after drain = %d, want 0", q.Len())
	}
}

func TestPushFullRing(t *testing.T) {
	q := New[int](2)
	if err := q.Push(1); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(2); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(3); !errors.Is(err, ErrFull) {
		t.Fatalf("Push on full ring = %v, want ErrFull", err)
	}
	// Draining makes room again.
	q.PopBatch(nil)
	if err := q.Push(4); err != nil {
		t.Fatalf("Push after drain: %v", err)
	}
}

func TestCloseRejectsPushAndDrains(t *testing.T) {
	q := New[string](4)
	if err := q.Push("a"); err != nil {
		t.Fatal(err)
	}
	q.Close()
	if err := q.Push("b"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Push after Close = %v, want ErrClosed", err)
	}
	batch, closed := q.PopBatch(nil)
	if !closed {
		t.Fatal("PopBatch did not report closed")
	}
	if len(batch) != 1 || batch[0] != "a" {
		t.Fatalf("drained %v, want [a]", batch)
	}
}

func TestWaitWakesOnPushAndStop(t *testing.T) {
	q := New[int](4)
	woke := make(chan bool, 1)
	go func() { woke <- q.Wait(nil) }()
	if err := q.Push(1); err != nil {
		t.Fatal(err)
	}
	if !<-woke {
		t.Fatal("Wait returned false after Push")
	}

	stop := make(chan struct{})
	go func() { woke <- q.Wait(stop) }()
	close(stop)
	if <-woke {
		t.Fatal("Wait returned true after stop")
	}
}

func TestWaitWakesOnClose(t *testing.T) {
	q := New[int](4)
	woke := make(chan bool, 1)
	go func() { woke <- q.Wait(nil) }()
	q.Close()
	if !<-woke {
		t.Fatal("Wait returned false after Close")
	}
}

// TestIdleTracksQueueAndConsumer checks the rendezvous ordering gate: the
// ring is idle only when nothing is queued AND the consumer holds no popped
// batch.  A frame between PopBatch and Done must keep Idle false, or a
// large frame could overtake it on the bulk lane.
func TestIdleTracksQueueAndConsumer(t *testing.T) {
	q := New[int](4)
	if !q.Idle() {
		t.Fatal("fresh ring is not idle")
	}
	if err := q.Push(1); err != nil {
		t.Fatal(err)
	}
	if q.Idle() {
		t.Fatal("ring with a queued item reports idle")
	}
	batch, _ := q.PopBatch(nil)
	if len(batch) != 1 {
		t.Fatalf("popped %d items, want 1", len(batch))
	}
	if q.Idle() {
		t.Fatal("ring reports idle while the consumer holds a popped batch")
	}
	q.Done()
	if !q.Idle() {
		t.Fatal("ring not idle after Done")
	}
	// An empty pop must not flip the busy flag back on.
	if batch, _ = q.PopBatch(batch); len(batch) != 0 {
		t.Fatalf("popped %d items from empty ring", len(batch))
	}
	if !q.Idle() {
		t.Fatal("empty PopBatch marked the consumer busy")
	}
}

// TestConcurrentProducersPreservePerProducerOrder drives the ring the way
// the transport does: many senders, one writer.  Each producer's items must
// drain in its own push order even though batches interleave producers.
func TestConcurrentProducersPreservePerProducerOrder(t *testing.T) {
	type item struct{ producer, seq int }
	const producers, perProducer = 8, 500

	q := New[item](64)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for s := 0; s < perProducer; s++ {
				for q.Push(item{p, s}) != nil {
					// Full ring: real senders back off via the retry
					// policy; here a bare spin is enough.
				}
			}
		}(p)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); q.Close(); close(done) }()

	next := make([]int, producers)
	var batch []item
	total := 0
	for {
		var closed bool
		batch, closed = q.PopBatch(batch)
		for _, it := range batch {
			if it.seq != next[it.producer] {
				t.Fatalf("producer %d: got seq %d, want %d", it.producer, it.seq, next[it.producer])
			}
			next[it.producer]++
			total++
		}
		if closed && len(batch) == 0 {
			break
		}
		if len(batch) == 0 {
			q.Wait(nil)
		}
	}
	<-done
	if total != producers*perProducer {
		t.Fatalf("drained %d items, want %d", total, producers*perProducer)
	}
}
