// Package ring implements the bounded send descriptor queue behind the
// batched remote data path.  It mirrors the GM NIC model of the paper's
// testbed (a fixed-depth ring of send descriptors drained by the LANai
// service loop, see internal/transport/gm): producers enqueue frame
// descriptors without blocking, a single consumer drains everything queued
// in one batch and puts it on the wire with a single vectored write.
//
// The queue is multi-producer single-consumer.  Push never blocks: a full
// ring is reported to the caller, which maps it to queue.ErrFull so the
// agent's retry policy treats it as transient backpressure — the software
// equivalent of GM send token exhaustion.  PopBatch copies the queued
// descriptors into a caller-owned slice, so the steady state allocates
// nothing on either side.
package ring

import (
	"errors"
	"sync"
	"sync/atomic"
)

// Errors.
var (
	// ErrFull reports a push onto a ring at capacity.
	ErrFull = errors.New("ring: full")

	// ErrClosed reports a push onto a closed ring.
	ErrClosed = errors.New("ring: closed")
)

// DefaultDepth is the ring capacity used when the owner does not choose
// one.  GM's hardware ring holds 64 descriptors; the software ring defaults
// deeper because frames here are only pointers and a deeper ring lets more
// senders ride out one slow write.
const DefaultDepth = 512

// Queue is a bounded multi-producer single-consumer descriptor queue.
type Queue[T any] struct {
	mu     sync.Mutex
	items  []T
	depth  int
	closed bool

	// signal wakes the consumer; capacity 1 so producers never block on it
	// and repeated pushes coalesce into one wakeup (that coalescing is what
	// turns a burst of sends into a single vectored write downstream).
	signal chan struct{}

	// busy is true from the moment PopBatch hands descriptors to the
	// consumer until the consumer calls Done.  Together with an empty ring
	// it defines Idle: no descriptor is queued or in the consumer's hands.
	busy atomic.Bool
}

// New returns a ring holding up to depth descriptors (depth <= 0 selects
// DefaultDepth).
func New[T any](depth int) *Queue[T] {
	if depth <= 0 {
		depth = DefaultDepth
	}
	return &Queue[T]{
		items:  make([]T, 0, depth),
		depth:  depth,
		signal: make(chan struct{}, 1),
	}
}

// Depth returns the ring capacity.
func (q *Queue[T]) Depth() int { return q.depth }

// Len returns the number of queued descriptors.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	n := len(q.items)
	q.mu.Unlock()
	return n
}

// Push enqueues one descriptor and wakes the consumer.  It never blocks:
// a ring at capacity returns ErrFull, a closed ring ErrClosed.
func (q *Queue[T]) Push(v T) error {
	q.mu.Lock()
	switch {
	case q.closed:
		q.mu.Unlock()
		return ErrClosed
	case len(q.items) >= q.depth:
		q.mu.Unlock()
		return ErrFull
	}
	q.items = append(q.items, v)
	q.mu.Unlock()
	q.wake()
	return nil
}

func (q *Queue[T]) wake() {
	select {
	case q.signal <- struct{}{}:
	default:
	}
}

// PopBatch moves every queued descriptor into dst (reusing its capacity)
// and reports whether the ring is closed.  Only the single consumer may
// call it.  Queue slots are zeroed so the ring never pins descriptors it
// no longer owns.
func (q *Queue[T]) PopBatch(dst []T) ([]T, bool) {
	q.mu.Lock()
	dst = append(dst[:0], q.items...)
	var zero T
	for i := range q.items {
		q.items[i] = zero
	}
	q.items = q.items[:0]
	closed := q.closed
	if len(dst) > 0 {
		// Mark the consumer busy before releasing the lock: an Idle caller
		// that observes the ring empty is thereby guaranteed to also observe
		// busy, so descriptors in flight between PopBatch and Done are never
		// invisible.
		q.busy.Store(true)
	}
	q.mu.Unlock()
	return dst, closed
}

// Done marks the batch handed out by the last PopBatch as fully resolved
// (written, failed or abandoned).  Only the single consumer may call it.
func (q *Queue[T]) Done() { q.busy.Store(false) }

// Idle reports that no descriptor is queued on the ring or held by the
// consumer between PopBatch and Done.  The rendezvous send path uses it as
// its ordering gate: a large frame may bypass the ring only while every
// earlier ring frame for the same peer is already on the wire — a frame a
// producer pushed before calling Idle is always observed (Push and Idle
// synchronize on the ring mutex), so per-producer FIFO order holds across
// the eager and rendezvous lanes.
func (q *Queue[T]) Idle() bool {
	q.mu.Lock()
	n := len(q.items)
	q.mu.Unlock()
	return n == 0 && !q.busy.Load()
}

// Wait blocks until a push (or Close) signals, or stop fires; it returns
// false only for stop.  A true return does not guarantee a non-empty ring
// (the signal is coalescing) — the consumer loops PopBatch/Wait.
func (q *Queue[T]) Wait(stop <-chan struct{}) bool {
	select {
	case <-q.signal:
		return true
	case <-stop:
		return false
	}
}

// Close marks the ring closed and wakes the consumer so it can drain the
// remaining descriptors and exit.  Pushes after Close fail with ErrClosed.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.wake()
}
