// Package ring implements the bounded send descriptor queue behind the
// batched remote data path.  It mirrors the GM NIC model of the paper's
// testbed (a fixed-depth ring of send descriptors drained by the LANai
// service loop, see internal/transport/gm): producers enqueue frame
// descriptors without blocking, a single consumer drains everything queued
// in one batch and puts it on the wire with a single vectored write.
//
// The queue is multi-producer single-consumer.  Push never blocks: a full
// ring is reported to the caller, which maps it to queue.ErrFull so the
// agent's retry policy treats it as transient backpressure — the software
// equivalent of GM send token exhaustion.  PopBatch copies the queued
// descriptors into a caller-owned slice, so the steady state allocates
// nothing on either side.
package ring

import (
	"errors"
	"sync"
)

// Errors.
var (
	// ErrFull reports a push onto a ring at capacity.
	ErrFull = errors.New("ring: full")

	// ErrClosed reports a push onto a closed ring.
	ErrClosed = errors.New("ring: closed")
)

// DefaultDepth is the ring capacity used when the owner does not choose
// one.  GM's hardware ring holds 64 descriptors; the software ring defaults
// deeper because frames here are only pointers and a deeper ring lets more
// senders ride out one slow write.
const DefaultDepth = 512

// Queue is a bounded multi-producer single-consumer descriptor queue.
type Queue[T any] struct {
	mu     sync.Mutex
	items  []T
	depth  int
	closed bool

	// signal wakes the consumer; capacity 1 so producers never block on it
	// and repeated pushes coalesce into one wakeup (that coalescing is what
	// turns a burst of sends into a single vectored write downstream).
	signal chan struct{}
}

// New returns a ring holding up to depth descriptors (depth <= 0 selects
// DefaultDepth).
func New[T any](depth int) *Queue[T] {
	if depth <= 0 {
		depth = DefaultDepth
	}
	return &Queue[T]{
		items:  make([]T, 0, depth),
		depth:  depth,
		signal: make(chan struct{}, 1),
	}
}

// Depth returns the ring capacity.
func (q *Queue[T]) Depth() int { return q.depth }

// Len returns the number of queued descriptors.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	n := len(q.items)
	q.mu.Unlock()
	return n
}

// Push enqueues one descriptor and wakes the consumer.  It never blocks:
// a ring at capacity returns ErrFull, a closed ring ErrClosed.
func (q *Queue[T]) Push(v T) error {
	q.mu.Lock()
	switch {
	case q.closed:
		q.mu.Unlock()
		return ErrClosed
	case len(q.items) >= q.depth:
		q.mu.Unlock()
		return ErrFull
	}
	q.items = append(q.items, v)
	q.mu.Unlock()
	q.wake()
	return nil
}

func (q *Queue[T]) wake() {
	select {
	case q.signal <- struct{}{}:
	default:
	}
}

// PopBatch moves every queued descriptor into dst (reusing its capacity)
// and reports whether the ring is closed.  Only the single consumer may
// call it.  Queue slots are zeroed so the ring never pins descriptors it
// no longer owns.
func (q *Queue[T]) PopBatch(dst []T) ([]T, bool) {
	q.mu.Lock()
	dst = append(dst[:0], q.items...)
	var zero T
	for i := range q.items {
		q.items[i] = zero
	}
	q.items = q.items[:0]
	closed := q.closed
	q.mu.Unlock()
	return dst, closed
}

// Wait blocks until a push (or Close) signals, or stop fires; it returns
// false only for stop.  A true return does not guarantee a non-empty ring
// (the signal is coalescing) — the consumer loops PopBatch/Wait.
func (q *Queue[T]) Wait(stop <-chan struct{}) bool {
	select {
	case <-q.signal:
		return true
	case <-stop:
		return false
	}
}

// Close marks the ring closed and wakes the consumer so it can drain the
// remaining descriptors and exit.  Pushes after Close fail with ErrClosed.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.wake()
}
