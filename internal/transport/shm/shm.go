// Package shm implements a shared-memory peer transport: executives on
// the same host exchange encoded I2O frames through mmap'd per-peer
// descriptor rings, so colocated processes move data without crossing the
// kernel.  It is the "shared memory (e.g. PCI)" interconnect of §2 of the
// paper realized for separate OS processes — the loopback transport covers
// executives in one address space, TCP covers distinct hosts, and shm
// covers the middle: distinct processes, one machine.
//
// The model matches the gm/tcp transports: one SPSC ring per direction
// per peer pair (see ring.go for the byte layout), record words framing
// each encoded message, and ring-full backpressure surfaced as a
// transient error that feeds the PTA retry policy.  Receivers copy each
// frame out of the ring into a pool block before delivery, so ring slots
// recycle immediately and frames keep the executive's zero-copy
// reference-counted lifecycle from the first in-process hop on.
package shm

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"xdaq/internal/i2o"
	"xdaq/internal/metrics"
	"xdaq/internal/pool"
	"xdaq/internal/pta"
	"xdaq/internal/queue"
	"xdaq/internal/transport/faults"
)

// PTName is the default route name.
const PTName = "pt.shm"

// DefaultRingBytes is the per-direction ring data size.
const DefaultRingBytes = 1 << 20

// Errors.
var (
	// ErrClosed reports use after Stop.
	ErrClosed = errors.New("shm: transport stopped")

	// ErrUnknownPeer reports a send to a node never passed to AddPeer.
	ErrUnknownPeer = errors.New("shm: unknown peer (AddPeer first)")

	// ErrFrameTooLarge reports a frame that could never fit the ring.
	ErrFrameTooLarge = errors.New("shm: frame too large for ring")

	// ErrRingFull reports a peer ring with no room for the frame.  It
	// wraps queue.ErrFull (the public ErrQueueFull sentinel) and
	// pta.ErrTransient so the agent's retry policy backs off and
	// resends, exactly like the gm and tcp rings.
	ErrRingFull = fmt.Errorf("shm: peer ring full: %w (%w)", queue.ErrFull, pta.ErrTransient)
)

// Config configures a Transport.
type Config struct {
	// Name overrides the route name; defaults to PTName.
	Name string

	// Dir is the ring directory shared by the colocated executives.
	// Every member of one shm fabric must use the same directory, and a
	// fresh directory per cluster incarnation (stale ring files from a
	// crashed run are not rejoined — they carry dead cursors).
	Dir string

	// RingBytes is the per-direction ring capacity; <=0 selects
	// DefaultRingBytes.  All endpoints sharing Dir must agree.
	RingBytes int

	// Metrics receives the transport's counters (<name>.sent, .recv,
	// .ring.full, .sendErrors); defaults to metrics.Default.
	Metrics *metrics.Registry
}

// Transport is one node's endpoint on a shared-memory fabric.  It
// implements pta.PeerTransport in both modes: polling (the agent's scan
// loop drains the inbound rings) and task (Start spawns an adaptive
// spin-then-sleep poller).
type Transport struct {
	node      i2o.NodeID
	alloc     pool.Allocator
	name      string
	dir       string
	ringBytes int

	mu      sync.Mutex
	out     map[i2o.NodeID]*ring
	in      map[i2o.NodeID]*ring
	deliver pta.Deliver
	started bool
	stop    chan struct{}
	done    chan struct{}

	// inScan is the poll loop's lock-free snapshot of inbound rings.
	inScan atomic.Pointer[[]inRing]
	rr     int // round-robin poll start, poll-loop-owned

	closed atomic.Bool
	flt    atomic.Pointer[faults.Injector]

	cSent, cRecv, cFull, cErr *metrics.Counter
}

type inRing struct {
	src i2o.NodeID
	r   *ring
}

var _ pta.PeerTransport = (*Transport)(nil)

// New creates the endpoint and its ring directory.
func New(node i2o.NodeID, alloc pool.Allocator, cfg Config) (*Transport, error) {
	if cfg.Dir == "" {
		return nil, errors.New("shm: Config.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("shm: %w", err)
	}
	name := cfg.Name
	if name == "" {
		name = PTName
	}
	rb := cfg.RingBytes
	if rb <= 0 {
		rb = DefaultRingBytes
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.Default
	}
	t := &Transport{
		node:      node,
		alloc:     alloc,
		name:      name,
		dir:       cfg.Dir,
		ringBytes: rb,
		out:       make(map[i2o.NodeID]*ring),
		in:        make(map[i2o.NodeID]*ring),
		cSent:     reg.Counter(name + ".sent"),
		cRecv:     reg.Counter(name + ".recv"),
		cFull:     reg.Counter(name + ".ring.full"),
		cErr:      reg.Counter(name + ".sendErrors"),
	}
	t.inScan.Store(&[]inRing{})
	return t, nil
}

// Name implements pta.PeerTransport.
func (t *Transport) Name() string { return t.name }

// Node returns the attached node identity.
func (t *Transport) Node() i2o.NodeID { return t.node }

// Dir returns the ring directory.
func (t *Transport) Dir() string { return t.dir }

// SetFaults installs a fault injector on the send path; nil removes it.
func (t *Transport) SetFaults(in *faults.Injector) { t.flt.Store(in) }

// AddPeer maps both ring directions for peer, creating the files as
// needed.  Idempotent.
func (t *Transport) AddPeer(peer i2o.NodeID) error {
	if peer == t.node {
		return fmt.Errorf("shm: cannot peer node %v with itself", peer)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed.Load() {
		return ErrClosed
	}
	if _, ok := t.out[peer]; ok {
		return nil
	}
	out, err := openRing(t.dir, t.node, peer, t.ringBytes)
	if err != nil {
		return err
	}
	in, err := openRing(t.dir, peer, t.node, t.ringBytes)
	if err != nil {
		out.close()
		return err
	}
	t.out[peer] = out
	t.in[peer] = in
	scan := make([]inRing, 0, len(t.in))
	for src, r := range t.in {
		scan = append(scan, inRing{src: src, r: r})
	}
	t.inScan.Store(&scan)
	return nil
}

// Send implements pta.PeerTransport: encode the frame into the peer's
// ring and recycle it.  On error the frame's buffer is released but the
// struct is left intact, matching the gm/tcp convention, so the agent's
// retry policy can re-attach and resend it.
func (t *Transport) Send(dst i2o.NodeID, m *i2o.Message) error {
	if t.closed.Load() {
		m.Release()
		return ErrClosed
	}
	if in := t.flt.Load(); in != nil {
		switch act := in.NextFor(uint64(dst)); act.Op {
		case faults.Drop:
			m.Recycle()
			return nil // lost in the ring
		case faults.Delay:
			time.Sleep(act.Delay)
		case faults.Error:
			m.Release()
			t.cErr.Inc()
			return fmt.Errorf("shm: %w", act.Err)
		}
	}
	t.mu.Lock()
	r := t.out[dst]
	t.mu.Unlock()
	if r == nil {
		m.Release()
		t.cErr.Inc()
		return fmt.Errorf("%w: %v", ErrUnknownPeer, dst)
	}
	if err := r.push(m); err != nil {
		m.Release()
		if errors.Is(err, queue.ErrFull) {
			t.cFull.Inc()
		} else {
			t.cErr.Inc()
		}
		return err
	}
	t.cSent.Inc()
	m.Recycle()
	return nil
}

// Poll implements pta.PeerTransport: drain up to budget frames from the
// inbound rings, round-robin across peers.  Single consumer: only one
// goroutine (the agent's scan loop or the task-mode poller) may call it.
func (t *Transport) Poll(fn pta.Deliver, budget int) int {
	scan := *t.inScan.Load()
	if len(scan) == 0 || budget <= 0 {
		return 0
	}
	n := 0
	t.rr++
	for i := 0; i < len(scan) && n < budget; i++ {
		ir := scan[(t.rr+i)%len(scan)]
		n += t.drain(ir.src, ir.r, fn, budget-n)
	}
	return n
}

// drain copies pending records out of one ring into pool blocks and
// delivers them.
func (t *Transport) drain(src i2o.NodeID, r *ring, fn pta.Deliver, budget int) int {
	n := 0
	for n < budget {
		frame, adv, ok := r.next()
		if !ok {
			return n
		}
		buf, err := t.alloc.Alloc(len(frame))
		if err != nil {
			// Pool exhausted: leave the record in the ring and retry on
			// the next poll once receive blocks recycle.
			return n
		}
		copy(buf.Bytes(), frame)
		r.consume(adv) // slot recycled before dispatch, like tcp's streaming receive
		m, _, err := i2o.DecodeAcquired(buf.Bytes())
		if err != nil {
			buf.Release()
			t.cErr.Inc()
			n++
			continue
		}
		m.AttachBuffer(buf)
		t.cRecv.Inc()
		fn(src, m) // ownership passes; deliver releases on failure
		n++
	}
	return n
}

// Start implements pta.PeerTransport (task mode): an adaptive poller
// stays hot (yield-spinning) while frames flow, then sleeps in 200µs
// steps so an idle daemon does not burn a core.  Two details matter for
// latency.  The hot window is time-based rather than a spin count: a
// request/reply exchange leaves sub-millisecond gaps between frames, and
// a counted spin budget expires mid-gap — parking the poller into a
// sleep whose real resolution is the scheduler's, an order of magnitude
// above the ring's latency.  And the hot spin yields the processor, not
// just the Go scheduler: runtime.Gosched rotates goroutines inside this
// process, but the frame we are waiting for is produced by a *different*
// process, so on hosts with fewer cores than colocated executives a
// Gosched-only spin pins the CPU until the kernel preempts it — turning
// every ring hop into a full OS timeslice.  sched_yield hands the core
// to the runnable peer instead.
func (t *Transport) Start(fn pta.Deliver) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed.Load() {
		return ErrClosed
	}
	if t.started {
		return errors.New("shm: already started")
	}
	t.started = true
	t.deliver = fn
	t.stop = make(chan struct{})
	t.done = make(chan struct{})
	go t.pollLoop(fn, t.stop, t.done)
	return nil
}

func (t *Transport) pollLoop(fn pta.Deliver, stop, done chan struct{}) {
	defer close(done)
	const hot = 500 * time.Microsecond
	last := time.Now()
	for {
		select {
		case <-stop:
			return
		default:
		}
		if t.Poll(fn, 64) > 0 {
			last = time.Now()
			continue
		}
		if time.Since(last) < hot {
			runtime.Gosched()
			osYield()
			continue
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// osYield cedes the processor to any runnable thread of any process —
// the colocated executive filling our ring, in particular.
func osYield() { syscall.Syscall(syscall.SYS_SCHED_YIELD, 0, 0, 0) }

// Stop implements pta.PeerTransport: halt the poller, unmap every ring
// and unlink the files this endpoint created.
func (t *Transport) Stop() error {
	if t.closed.Swap(true) {
		return nil
	}
	t.mu.Lock()
	stop, done, started := t.stop, t.done, t.started
	t.mu.Unlock()
	if started {
		close(stop)
		<-done
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.inScan.Store(&[]inRing{})
	for _, r := range t.out {
		r.close()
	}
	for _, r := range t.in {
		r.close()
	}
	t.out, t.in = map[i2o.NodeID]*ring{}, map[i2o.NodeID]*ring{}
	return nil
}
