// Ring file layout and the single-producer/single-consumer byte ring
// mapped over it.
//
// One file carries one direction of one peer pair: frames from src to
// dst.  The layout is a 128-byte header followed by a circular data area:
//
//	offset  size  field
//	     0     8  magic "XDAQSHM1"
//	     8     4  version (1)
//	    12     4  capacity: data area bytes
//	    16     4  src node id
//	    20     4  dst node id
//	    24     4  ready flag (atomic; 1 once the creator finished the header)
//	    32     8  head: consumer cursor (atomic, free-running byte count)
//	    64     8  tail: producer cursor (atomic, free-running byte count)
//	   128     -  data[capacity]
//
// head and tail sit on separate cache lines so the producer and consumer
// never false-share.  Both count bytes consumed/produced since creation
// and never wrap; the ring offset is cursor mod capacity and occupancy is
// tail-head.  A record is a 4-byte little-endian record word (the same
// 24-bit-size encoding as the TCP framing, i2o.PackRecordWord) followed
// by the encoded frame, which is always a multiple of 4 bytes.  When a
// record would not fit contiguously before the end of the data area the
// producer writes the wrap marker 0xFFFFFFFF (an impossible record word:
// frames are capped at i2o.MaxWireSize) and continues at offset 0.
//
// Either endpoint may create the file: creation races through
// O_CREATE|O_EXCL, the loser opens the existing file and spins on the
// ready flag.  Memory ordering leans on Go's atomic semantics applied to
// the mapped words: the producer publishes payload bytes with a
// store-release of tail, the consumer acquires them with a load-acquire
// of tail, and symmetrically for head when returning space.
package shm

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
	"unsafe"

	"xdaq/internal/i2o"
)

const (
	ringMagic   = "XDAQSHM1"
	ringVersion = 1

	headerSize  = 128
	offMagic    = 0
	offVersion  = 8
	offCapacity = 12
	offSrc      = 16
	offDst      = 20
	offReady    = 24
	offHead     = 32
	offTail     = 64

	// wrapMarker pads the tail of the data area when a record will not
	// fit contiguously.  It can never be a real record word: the size
	// field would read 0xFFFFFF, far above i2o.MaxWireSize.
	wrapMarker = ^uint32(0)

	// openWait bounds the spin for a concurrently-created ring's header
	// to become ready.
	openWait = 5 * time.Second
)

// errRingClosed reports a push against an unmapped ring (transport
// stopping); the transport maps it to ErrClosed.
var errRingClosed = fmt.Errorf("shm: ring closed")

// ring is one mapped direction.  The producer side serializes in-process
// writers with wmu; the consumer side is owned by the transport's single
// poll loop.
type ring struct {
	path    string
	created bool

	mem  []byte
	data []byte
	cap  uint64

	head  *uint64
	tail  *uint64
	ready *uint32

	wmu sync.Mutex
}

func word32(mem []byte, off int) *uint32 { return (*uint32)(unsafe.Pointer(&mem[off])) }
func word64(mem []byte, off int) *uint64 { return (*uint64)(unsafe.Pointer(&mem[off])) }

// ringPath names the file for the src→dst direction inside dir.
func ringPath(dir string, src, dst i2o.NodeID) string {
	return fmt.Sprintf("%s/ring-%d-to-%d.shm", dir, src, dst)
}

// openRing creates or attaches the src→dst ring file in dir.  capacity is
// the data-area size in bytes and must match between the two endpoints
// (both derive it from their transport config; a mismatch is an error).
func openRing(dir string, src, dst i2o.NodeID, capacity int) (*ring, error) {
	if capacity < 4*1024 || capacity%8 != 0 {
		return nil, fmt.Errorf("shm: ring capacity %d: want a multiple of 8 ≥ 4096", capacity)
	}
	path := ringPath(dir, src, dst)
	total := headerSize + capacity

	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	created := err == nil
	if !created {
		if !os.IsExist(err) {
			return nil, fmt.Errorf("shm: create %s: %w", path, err)
		}
		if f, err = os.OpenFile(path, os.O_RDWR, 0o644); err != nil {
			return nil, fmt.Errorf("shm: open %s: %w", path, err)
		}
	}
	defer f.Close()

	if created {
		if err := f.Truncate(int64(total)); err != nil {
			os.Remove(path)
			return nil, fmt.Errorf("shm: size %s: %w", path, err)
		}
	} else if err := waitSize(f, int64(total)); err != nil {
		return nil, err
	}

	mem, err := syscall.Mmap(int(f.Fd()), 0, total, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("shm: mmap %s: %w", path, err)
	}
	r := &ring{
		path:    path,
		created: created,
		mem:     mem,
		data:    mem[headerSize:],
		cap:     uint64(capacity),
		head:    word64(mem, offHead),
		tail:    word64(mem, offTail),
		ready:   word32(mem, offReady),
	}
	if created {
		copy(mem[offMagic:], ringMagic)
		binary.LittleEndian.PutUint32(mem[offVersion:], ringVersion)
		binary.LittleEndian.PutUint32(mem[offCapacity:], uint32(capacity))
		binary.LittleEndian.PutUint32(mem[offSrc:], uint32(src))
		binary.LittleEndian.PutUint32(mem[offDst:], uint32(dst))
		atomic.StoreUint32(r.ready, 1) // release: header visible before ready
		return r, nil
	}
	if err := r.attach(src, dst, capacity); err != nil {
		r.close()
		return nil, err
	}
	return r, nil
}

// waitSize polls until the creator's Truncate lands (the open/truncate
// pair is not atomic for the losing side of the creation race).
func waitSize(f *os.File, want int64) error {
	deadline := time.Now().Add(openWait)
	for {
		st, err := f.Stat()
		if err != nil {
			return fmt.Errorf("shm: stat %s: %w", f.Name(), err)
		}
		if st.Size() >= want {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("shm: %s: ring not sized by creator (have %d, want %d)", f.Name(), st.Size(), want)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// attach validates an existing ring's header, waiting for the creator to
// publish it.
func (r *ring) attach(src, dst i2o.NodeID, capacity int) error {
	deadline := time.Now().Add(openWait)
	for atomic.LoadUint32(r.ready) == 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("shm: %s: ring never became ready", r.path)
		}
		time.Sleep(200 * time.Microsecond)
	}
	if string(r.mem[offMagic:offMagic+8]) != ringMagic {
		return fmt.Errorf("shm: %s: bad magic", r.path)
	}
	if v := binary.LittleEndian.Uint32(r.mem[offVersion:]); v != ringVersion {
		return fmt.Errorf("shm: %s: layout version %d (want %d)", r.path, v, ringVersion)
	}
	if c := binary.LittleEndian.Uint32(r.mem[offCapacity:]); int(c) != capacity {
		return fmt.Errorf("shm: %s: capacity %d does not match configured %d", r.path, c, capacity)
	}
	if s := binary.LittleEndian.Uint32(r.mem[offSrc:]); i2o.NodeID(s) != src {
		return fmt.Errorf("shm: %s: src %d (want %v)", r.path, s, src)
	}
	if d := binary.LittleEndian.Uint32(r.mem[offDst:]); i2o.NodeID(d) != dst {
		return fmt.Errorf("shm: %s: dst %d (want %v)", r.path, d, dst)
	}
	return nil
}

// push encodes m into the ring.  On success the record is published and
// the frame is NOT released — the caller owns the handoff.  ErrRingFull
// (transient) reports insufficient space; the record is untouched.
func (r *ring) push(m *i2o.Message) error {
	size := m.WireSize()
	need := uint64(4 + size)
	if need > r.cap/2 {
		return fmt.Errorf("%w: %d bytes into %d-byte ring", ErrFrameTooLarge, size, r.cap)
	}
	r.wmu.Lock()
	defer r.wmu.Unlock()
	if r.mem == nil {
		return errRingClosed
	}

	head := atomic.LoadUint64(r.head) // acquire: space freed by consumer
	tail := atomic.LoadUint64(r.tail)
	off := tail % r.cap
	free := r.cap - (tail - head)
	if off+need > r.cap {
		// Wrap: a marker pads [off, cap) and the record starts at 0.
		pad := r.cap - off
		if free < pad+need {
			return ErrRingFull
		}
		binary.LittleEndian.PutUint32(r.data[off:], wrapMarker)
		tail += pad
		off = 0
	} else if free < need {
		return ErrRingFull
	}
	if _, err := m.Encode(r.data[off+4 : off+4+uint64(size)]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(r.data[off:], i2o.PackRecordWord(size, 0))
	atomic.StoreUint64(r.tail, tail+need) // release: publish marker+record
	return nil
}

// next returns the byte range of the next pending record, or ok=false
// when the ring is empty.  consume() must be called after the bytes have
// been copied out.
func (r *ring) next() (frame []byte, adv uint64, ok bool) {
	head := atomic.LoadUint64(r.head)
	for {
		tail := atomic.LoadUint64(r.tail) // acquire: record bytes visible
		if head == tail {
			return nil, 0, false
		}
		off := head % r.cap
		word := binary.LittleEndian.Uint32(r.data[off:])
		if word == wrapMarker {
			skip := r.cap - off
			head += skip
			atomic.StoreUint64(r.head, head) // release padding back
			continue
		}
		size, _ := i2o.UnpackRecordWord(word)
		return r.data[off+4 : off+4+uint64(size)], uint64(4 + size), true
	}
}

// consume returns adv bytes (one record, as reported by next) to the
// producer.
func (r *ring) consume(adv uint64) {
	atomic.StoreUint64(r.head, atomic.LoadUint64(r.head)+adv)
}

// close unmaps the ring and, when this endpoint created the file, unlinks
// it.  A peer still attached keeps its mapping — on POSIX systems an
// unlinked mapped file stays alive until the last munmap.  Taking wmu
// fences out an in-flight producer; the consumer side must already be
// stopped (the transport joins its poller before closing rings).
func (r *ring) close() {
	r.wmu.Lock()
	defer r.wmu.Unlock()
	if r.mem != nil {
		syscall.Munmap(r.mem)
		r.mem, r.data = nil, nil
		r.head, r.tail, r.ready = nil, nil, nil
	}
	if r.created {
		os.Remove(r.path)
	}
}
