package shm

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"xdaq/internal/device"
	"xdaq/internal/executive"
	"xdaq/internal/i2o"
	"xdaq/internal/pta"
	"xdaq/internal/queue"
)

type shmNode struct {
	exec  *executive.Executive
	agent *pta.Agent
	tr    *Transport
}

func buildNode(t testing.TB, id i2o.NodeID, dir string, mode pta.Mode) *shmNode {
	t.Helper()
	e := executive.New(executive.Options{
		Name: "shm", Node: id,
		RequestTimeout: 3 * time.Second,
		Logf:           func(string, ...any) {},
	})
	tr, err := New(id, e.Allocator(), Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	agent, err := pta.New(e)
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.Register(tr, mode); err != nil {
		t.Fatal(err)
	}
	n := &shmNode{exec: e, agent: agent, tr: tr}
	t.Cleanup(func() {
		agent.Close()
		e.Close()
	})
	return n
}

func connectPair(t testing.TB, mode pta.Mode) (*shmNode, *shmNode) {
	t.Helper()
	dir := t.TempDir()
	a := buildNode(t, 1, dir, mode)
	b := buildNode(t, 2, dir, mode)
	if err := a.tr.AddPeer(2); err != nil {
		t.Fatal(err)
	}
	if err := b.tr.AddPeer(1); err != nil {
		t.Fatal(err)
	}
	a.exec.SetRoute(2, PTName)
	b.exec.SetRoute(1, PTName)
	return a, b
}

func plugEcho(t testing.TB, n *shmNode) {
	t.Helper()
	d := device.New("echo", 0)
	d.Bind(1, func(ctx *device.Context, m *i2o.Message) error {
		return device.ReplyIfExpected(ctx, m, append([]byte(nil), m.Payload...))
	})
	if _, err := n.exec.Plug(d); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripOverMappedRings(t *testing.T) {
	for _, mode := range []pta.Mode{pta.Task, pta.Polling} {
		name := "task"
		if mode == pta.Polling {
			name = "polling"
		}
		t.Run(name, func(t *testing.T) {
			a, b := connectPair(t, mode)
			plugEcho(t, b)
			remote, err := a.exec.Discover(2, "echo", 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, size := range []int{0, 3, 1500, 100_000} {
				payload := bytes.Repeat([]byte{0x5a}, size)
				rep, err := a.exec.Request(&i2o.Message{
					Target: remote, Initiator: i2o.TIDExecutive,
					Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
					Payload: payload,
				})
				if err != nil {
					t.Fatalf("size %d: %v", size, err)
				}
				if !bytes.Equal(rep.Payload, payload) {
					t.Fatalf("size %d: payload mismatch (got %d bytes)", size, len(rep.Payload))
				}
				rep.Recycle()
			}
		})
	}
}

// TestWrapAround pushes enough mixed-size frames through a ring to force
// many wrap-marker transitions and verifies every payload survives.
func TestWrapAround(t *testing.T) {
	a, b := connectPair(t, pta.Task)
	plugEcho(t, b)
	remote, err := a.exec.Discover(2, "echo", 0)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{7, 4093, 64 * 1024, 1, 25_000, 3000}
	var wg sync.WaitGroup
	errc := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				size := sizes[(w+i)%len(sizes)]
				payload := bytes.Repeat([]byte{byte(i)}, size)
				rep, err := a.exec.Request(&i2o.Message{
					Target: remote, Initiator: i2o.TIDExecutive,
					Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
					Payload: payload,
				})
				if err != nil {
					errc <- err
					return
				}
				ok := bytes.Equal(rep.Payload, payload)
				rep.Recycle()
				if !ok {
					errc <- errors.New("payload mismatch")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}

// TestRingFullIsTransient fills a tiny ring with no consumer and checks
// the error classification feeding the PTA retry policy.
func TestRingFullIsTransient(t *testing.T) {
	dir := t.TempDir()
	e := executive.New(executive.Options{Name: "solo", Node: 1, Logf: func(string, ...any) {}})
	defer e.Close()
	tr, err := New(1, e.Allocator(), Config{Dir: dir, RingBytes: 8192})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Stop()
	if err := tr.AddPeer(2); err != nil {
		t.Fatal(err)
	}
	var sawFull bool
	for i := 0; i < 100; i++ {
		err := tr.Send(2, &i2o.Message{
			Target: 10, Initiator: i2o.TIDExecutive,
			Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
			Payload: bytes.Repeat([]byte{1}, 1024),
		})
		if err == nil {
			continue
		}
		if !errors.Is(err, queue.ErrFull) || !errors.Is(err, pta.ErrTransient) {
			t.Fatalf("want transient ring-full, got %v", err)
		}
		sawFull = true
		break
	}
	if !sawFull {
		t.Fatal("ring never filled")
	}
	// A frame that can never fit is a hard error, not a transient one.
	err = tr.Send(2, &i2o.Message{
		Target: 10, Initiator: i2o.TIDExecutive,
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
		Payload: bytes.Repeat([]byte{1}, 6000),
	})
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
	if errors.Is(err, pta.ErrTransient) {
		t.Fatal("oversized frame must not be retryable")
	}
}

func TestSendToUnknownPeer(t *testing.T) {
	dir := t.TempDir()
	e := executive.New(executive.Options{Name: "solo", Node: 1, Logf: func(string, ...any) {}})
	defer e.Close()
	tr, err := New(1, e.Allocator(), Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Stop()
	err = tr.Send(9, &i2o.Message{Target: 1, Function: i2o.UtilNOP})
	if !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("want ErrUnknownPeer, got %v", err)
	}
}
