package tcp

import (
	"bytes"
	"encoding/binary"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"xdaq/internal/i2o"
	"xdaq/internal/metrics"
	"xdaq/internal/pool"
	"xdaq/internal/pta"
	"xdaq/internal/queue"
	"xdaq/internal/sgl"
	"xdaq/internal/transport/faults"
)

// rawPair builds two bare transports (no executive, no agent) with the
// sender configured by cfg.  The receiver listens and delivers into fn.
func rawPair(t testing.TB, cfg Config, fn pta.Deliver) (*Transport, *Transport) {
	t.Helper()
	recv, err := New(2, pool.NewTable(0), Config{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { recv.Stop() })
	if fn != nil {
		if err := recv.Start(fn); err != nil {
			t.Fatal(err)
		}
	}
	if cfg.Peers == nil {
		cfg.Peers = map[i2o.NodeID]string{}
	}
	cfg.Peers[2] = recv.Addr()
	send, err := New(1, pool.NewTable(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { send.Stop() })
	return send, recv
}

// TestConcurrentDialDedup is the regression test for the duplicate-dial
// race: concurrent senders to a not-yet-connected peer must share a single
// in-flight dial instead of each opening (and then discarding) its own
// connection.
func TestConcurrentDialDedup(t *testing.T) {
	reg := metrics.NewRegistry()
	send, _ := rawPair(t, Config{Unbatched: true, Metrics: reg}, nil)

	const senders = 16
	var (
		start = make(chan struct{})
		wg    sync.WaitGroup
		errs  = make(chan error, senders)
	)
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			errs <- send.Send(2, &i2o.Message{Target: 1, Function: i2o.UtilNOP})
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	if n := reg.Counter(PTName + ".dials").Value(); n != 1 {
		t.Fatalf("%d dials for %d concurrent senders, want 1", n, senders)
	}
}

// TestSGLPayloadOverTCP sends a chained payload and checks the receiver
// reassembles the exact byte sequence: the writer must walk the segments
// onto the wire in order, without flattening.
func TestSGLPayloadOverTCP(t *testing.T) {
	var (
		mu  sync.Mutex
		got [][]byte
	)
	send, _ := rawPair(t, Config{}, func(_ i2o.NodeID, m *i2o.Message) error {
		mu.Lock()
		got = append(got, append([]byte(nil), m.Payload...))
		mu.Unlock()
		m.Release()
		return nil
	})

	alloc := pool.NewTable(0)
	data := make([]byte, 10_000)
	for i := range data {
		data[i] = byte(i * 31)
	}
	l, err := sgl.FromBytes(alloc, data, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if l.Segments() < 2 {
		t.Fatalf("list has %d segments; the test needs a real chain", l.Segments())
	}
	m := &i2o.Message{
		Target: 1, Initiator: i2o.TIDExecutive,
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
	}
	m.AttachList(l)
	if err := send.Send(2, m); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("frame never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	if !bytes.Equal(got[0], data) {
		t.Fatalf("payload mismatch: %d bytes back, want %d", len(got[0]), len(data))
	}
	// The writer recycled the frame, releasing every chained block.
	deadline = time.Now().Add(time.Second)
	for alloc.Stats().InUse != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sender leaked %d blocks", alloc.Stats().InUse)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRingBackpressureSignalsTransient stalls the writer with wire delays
// until the tiny ring overflows, then checks the refusal carries both
// public sentinels: queue.ErrFull (the ErrQueueFull contract) and
// pta.ErrTransient (the retry policy re-attempts instead of failing).
func TestRingBackpressureSignalsTransient(t *testing.T) {
	send, _ := rawPair(t, Config{RingDepth: 2}, nil)
	send.SetWireFaults(faults.New(1).DelayNth(1, 20*time.Millisecond))

	var full error
	for i := 0; i < 200 && full == nil; i++ {
		err := send.Send(2, &i2o.Message{Target: 1, Function: i2o.UtilNOP})
		if err != nil {
			full = err
		}
	}
	if full == nil {
		t.Fatal("200 sends onto a depth-2 ring behind a stalled writer never hit backpressure")
	}
	if !errors.Is(full, queue.ErrFull) {
		t.Fatalf("%v does not wrap queue.ErrFull", full)
	}
	if !errors.Is(full, pta.ErrTransient) {
		t.Fatalf("%v does not wrap pta.ErrTransient", full)
	}
}

// TestReconnectUnderConcurrentSenders severs the connection repeatedly
// while four senders stream sequence-numbered frames, and checks every
// frame arrives exactly once, in per-sender order: the writer's
// redial-and-resend must neither drop nor duplicate nor reorder.
func TestReconnectUnderConcurrentSenders(t *testing.T) {
	const (
		senders = 4
		frames  = 200
	)
	var (
		mu   sync.Mutex
		seqs [senders][]uint32
	)
	reg := metrics.NewRegistry()
	send, _ := rawPair(t, Config{
		Metrics:   reg,
		RingDepth: 64,
		Redial:    RedialPolicy{Attempts: 10, Backoff: time.Millisecond},
	}, func(_ i2o.NodeID, m *i2o.Message) error {
		if len(m.Payload) == 5 {
			mu.Lock()
			s := m.Payload[0]
			seqs[s] = append(seqs[s], binary.LittleEndian.Uint32(m.Payload[1:]))
			mu.Unlock()
		}
		m.Release()
		return nil
	})
	// Sever the connection on every second batch, three times, once
	// traffic is established.  The fault fires before the vectored write,
	// so the queued frames stay on the ring and ride the redial.
	send.SetWireFaults(faults.New(1).Add(faults.Rule{
		Op: faults.Error, Nth: 2, After: 2, Limit: 3,
	}))

	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 1; i <= frames; i++ {
				p := make([]byte, 5)
				p[0] = byte(s)
				binary.LittleEndian.PutUint32(p[1:], uint32(i))
				m := &i2o.Message{
					Target: 1, Initiator: i2o.TIDExecutive,
					Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
					Payload: p,
				}
				for {
					err := send.Send(2, m)
					if err == nil {
						break
					}
					if !errors.Is(err, queue.ErrFull) {
						t.Errorf("sender %d frame %d: %v", s, i, err)
						return
					}
					runtime.Gosched() // backpressure: ring full, writer busy
				}
			}
		}(s)
	}
	wg.Wait()

	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		total := 0
		for s := range seqs {
			total += len(seqs[s])
		}
		mu.Unlock()
		if total == senders*frames {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d of %d frames", total, senders*frames)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for s := 0; s < senders; s++ {
		if len(seqs[s]) != frames {
			t.Fatalf("sender %d: %d frames, want %d", s, len(seqs[s]), frames)
		}
		for i, got := range seqs[s] {
			if got != uint32(i+1) {
				t.Fatalf("sender %d position %d: seq %d (duplicated, lost or reordered)", s, i, got)
			}
		}
	}
	if n := reg.Counter(PTName + ".dials").Value(); n < 2 {
		t.Fatalf("dials = %d; the connection was never re-established", n)
	}
	if n := reg.Counter(PTName + ".connDrops").Value(); n < 1 {
		t.Fatalf("connDrops = %d; the faults never severed the connection", n)
	}
	if n := reg.Counter(PTName + ".sendErrors").Value(); n != 0 {
		t.Fatalf("sendErrors = %d; the writer gave up on frames", n)
	}
	writes := reg.Counter(PTName + ".batch.writes").Value()
	batched := reg.Counter(PTName + ".batch.frames").Value()
	if writes == 0 || batched != senders*frames {
		t.Fatalf("batch.writes=%d batch.frames=%d, want frames=%d", writes, batched, senders*frames)
	}
}

// TestEagerRendezvousBoundaryOrder interleaves frames straddling a pinned
// threshold from several senders: small frames ride the ring, large ones
// the bulk lane, and the ring-idle gate must still deliver every sender's
// frames in its own send order.
func TestEagerRendezvousBoundaryOrder(t *testing.T) {
	const (
		senders = 4
		frames  = 300
		thr     = 512
	)
	var (
		mu   sync.Mutex
		seqs [senders][]uint32
	)
	reg := metrics.NewRegistry()
	send, _ := rawPair(t, Config{Metrics: reg, Threshold: thr}, func(_ i2o.NodeID, m *i2o.Message) error {
		mu.Lock()
		s := m.Payload[0]
		seqs[s] = append(seqs[s], binary.LittleEndian.Uint32(m.Payload[1:]))
		mu.Unlock()
		m.Release()
		return nil
	})

	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 1; i <= frames; i++ {
				// Alternate strictly below and above the threshold, with
				// one length that lands exactly on it (wire size thr means
				// rendezvous-eligible by the >= rule).
				n := 5
				switch i % 3 {
				case 1:
					n = thr - i2o.PrivateHeaderSize // exactly at the boundary
				case 2:
					n = thr + 1024 // comfortably rendezvous
				}
				p := make([]byte, n)
				p[0] = byte(s)
				binary.LittleEndian.PutUint32(p[1:], uint32(i))
				m := &i2o.Message{
					Target: 1, Initiator: i2o.TIDExecutive,
					Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
					Payload: p,
				}
				for {
					err := send.Send(2, m)
					if err == nil {
						break
					}
					if !errors.Is(err, queue.ErrFull) {
						t.Errorf("sender %d frame %d: %v", s, i, err)
						return
					}
					runtime.Gosched()
				}
			}
		}(s)
	}
	wg.Wait()

	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		total := 0
		for s := range seqs {
			total += len(seqs[s])
		}
		mu.Unlock()
		if total == senders*frames {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d of %d frames", total, senders*frames)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for s := 0; s < senders; s++ {
		for i, got := range seqs[s] {
			if got != uint32(i+1) {
				t.Fatalf("sender %d position %d: seq %d (lost, duplicated or reordered across lanes)", s, i, got)
			}
		}
	}
	// Lane accounting: every delivered frame was written exactly once, by
	// exactly one lane.  Fallback counts per Send attempt (a frame can
	// fall back, hit a full ring, and fall back again on retry), so the
	// eligible 2/3 of the traffic is a floor for sends+fallbacks, not an
	// exact match.
	var (
		rvSends = reg.Counter(PTName + ".rendezvous.sends").Value()
		rvFall  = reg.Counter(PTName + ".rendezvous.fallback").Value()
		eager   = reg.Counter(PTName + ".batch.frames").Value()
	)
	const eligible = senders * frames * 2 / 3
	if rvSends+rvFall < eligible {
		t.Fatalf("rendezvous.sends=%d + fallback=%d < %d eligible frames", rvSends, rvFall, eligible)
	}
	if eager+rvSends != uint64(senders*frames) {
		t.Fatalf("batch.frames=%d + rendezvous.sends=%d != %d frames delivered", eager, rvSends, senders*frames)
	}
	mu.Unlock()
	// With the ring quiesced, a large frame must take the direct lane.
	m := &i2o.Message{
		Target: 1, Initiator: i2o.TIDExecutive,
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
		Payload: make([]byte, 4096),
	}
	if err := send.Send(2, m); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if got := reg.Counter(PTName + ".rendezvous.sends").Value(); got != rvSends+1 {
		t.Fatalf("idle-ring bulk send did not take the rendezvous lane (sends %d -> %d)", rvSends, got)
	}
}

// TestCreditExhaustionSignalsTransient grants a tiny window, has the
// receiver hold every delivered frame, and checks the refusal carries the
// backpressure sentinels — then releases the frames and checks the window
// refills (the receiver's per-frame credit return reaches the sender).
func TestCreditExhaustionSignalsTransient(t *testing.T) {
	const window = 4
	var (
		mu   sync.Mutex
		held []*i2o.Message
	)
	recv, err := New(2, pool.NewTable(0), Config{Listen: "127.0.0.1:0", Credits: window})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { recv.Stop() })
	if err := recv.Start(func(_ i2o.NodeID, m *i2o.Message) error {
		mu.Lock()
		held = append(held, m)
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	send, err := New(1, pool.NewTable(0), Config{Peers: map[i2o.NodeID]string{2: recv.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { send.Stop() })

	frame := func() *i2o.Message {
		return &i2o.Message{
			Target: 1, Initiator: i2o.TIDExecutive,
			Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
			Payload: []byte("credit"),
		}
	}
	// The window is consumed at enqueue time, so at most `window` sends can
	// succeed once the handshake's grant replaces the optimistic default.
	var stall error
	for i := 0; i < 100 && stall == nil; i++ {
		if err := send.Send(2, frame()); err != nil {
			stall = err
		} else {
			time.Sleep(time.Millisecond) // let the handshake grant land
		}
	}
	if stall == nil {
		t.Fatalf("100 sends against a %d-frame window never stalled", window)
	}
	if !errors.Is(stall, queue.ErrFull) || !errors.Is(stall, pta.ErrTransient) {
		t.Fatalf("credit stall %v does not wrap queue.ErrFull and pta.ErrTransient", stall)
	}

	// Releasing the held frames returns their credits (the tiny grant
	// flushes every one); the window must reopen.
	mu.Lock()
	for _, m := range held {
		m.Release()
	}
	held = held[:0]
	mu.Unlock()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := send.Send(2, frame()); err == nil {
			break
		} else if !errors.Is(err, queue.ErrFull) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("window never recovered after the receiver recycled its frames")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBulkLaneRedialResends severs the connection via the bulk lane's own
// fault stream while large frames flow: the rendezvous sender must redial
// and resend the torn frame, never dropping or duplicating.  Eager pings
// after the storm prove the ring lane survives the churn too.
func TestBulkLaneRedialResends(t *testing.T) {
	const (
		frames = 60
		pings  = 10
	)
	var (
		mu    sync.Mutex
		big   []uint32
		small int
	)
	reg := metrics.NewRegistry()
	send, _ := rawPair(t, Config{
		Metrics:   reg,
		Threshold: 256,
		Redial:    RedialPolicy{Attempts: 10, Backoff: time.Millisecond},
	}, func(_ i2o.NodeID, m *i2o.Message) error {
		mu.Lock()
		if len(m.Payload) > 256 {
			big = append(big, binary.LittleEndian.Uint32(m.Payload))
		} else {
			small++
		}
		mu.Unlock()
		m.Release()
		return nil
	})
	// Bulk-lane stream for peer 2: Error on draws 5, 8, 11 and 14.  The
	// writer's stream (plain key 2) never fires, so any redial observed
	// below was forced by the rendezvous lane.
	send.SetWireFaults(faults.New(7).Add(faults.Rule{
		Op: faults.Error, Nth: 3, After: 2, Limit: 4,
	}))

	for i := 1; i <= frames; i++ { // bulk storm: sole sender, ring idle
		p := make([]byte, 4096)
		binary.LittleEndian.PutUint32(p, uint32(i))
		m := &i2o.Message{
			Target: 1, Initiator: i2o.TIDExecutive,
			Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
			Payload: p,
		}
		for {
			err := send.Send(2, m)
			if err == nil {
				break
			}
			if !errors.Is(err, pta.ErrTransient) {
				t.Fatalf("bulk frame %d: %v", i, err)
			}
			runtime.Gosched() // transient: redial budget exhausted mid-storm
		}
	}
	for i := 0; i < pings; i++ { // the eager lane must still work after
		m := &i2o.Message{
			Target: 1, Initiator: i2o.TIDExecutive,
			Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
			Payload: []byte("ping"),
		}
		for {
			err := send.Send(2, m)
			if err == nil {
				break
			}
			if !errors.Is(err, queue.ErrFull) {
				t.Fatalf("eager frame %d: %v", i, err)
			}
			runtime.Gosched()
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		done := len(big) == frames && small == pings
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			mu.Lock()
			t.Fatalf("received %d bulk + %d eager frames, want %d and %d", len(big), small, frames, pings)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, got := range big {
		if got != uint32(i+1) {
			t.Fatalf("bulk position %d: seq %d (lost, duplicated or reordered)", i, got)
		}
	}
	if n := reg.Counter(PTName + ".rendezvous.sends").Value(); n != frames {
		t.Fatalf("rendezvous.sends = %d, want %d", n, frames)
	}
	if n := reg.Counter(PTName + ".connDrops").Value(); n < 1 {
		t.Fatalf("connDrops = %d; the bulk-lane faults never severed the connection", n)
	}
	if n := reg.Counter(PTName + ".dials").Value(); n < 2 {
		t.Fatalf("dials = %d; the bulk lane never redialed", n)
	}
}

// TestStopReleasesQueuedFrames checks that frames stranded on a ring when
// the transport stops are released, not leaked: the writer is stalled so
// the frames cannot drain before Stop.
func TestStopReleasesQueuedFrames(t *testing.T) {
	send, _ := rawPair(t, Config{RingDepth: 8}, nil)
	send.SetWireFaults(faults.New(1).DelayNth(1, 50*time.Millisecond))
	alloc := pool.NewTable(0)
	for i := 0; i < 4; i++ {
		b, err := alloc.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		m := &i2o.Message{
			Target: 1, Initiator: i2o.TIDExecutive,
			Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
			Payload: b.Bytes(),
		}
		m.AttachBuffer(b)
		if err := send.Send(2, m); err != nil {
			t.Fatal(err)
		}
	}
	if err := send.Stop(); err != nil {
		t.Fatal(err)
	}
	if n := alloc.Stats().InUse; n != 0 {
		t.Fatalf("%d buffers leaked on Stop", n)
	}
}
