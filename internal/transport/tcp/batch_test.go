package tcp

import (
	"bytes"
	"encoding/binary"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"xdaq/internal/i2o"
	"xdaq/internal/metrics"
	"xdaq/internal/pool"
	"xdaq/internal/pta"
	"xdaq/internal/queue"
	"xdaq/internal/sgl"
	"xdaq/internal/transport/faults"
)

// rawPair builds two bare transports (no executive, no agent) with the
// sender configured by cfg.  The receiver listens and delivers into fn.
func rawPair(t testing.TB, cfg Config, fn pta.Deliver) (*Transport, *Transport) {
	t.Helper()
	recv, err := New(2, pool.NewTable(0), Config{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { recv.Stop() })
	if fn != nil {
		if err := recv.Start(fn); err != nil {
			t.Fatal(err)
		}
	}
	if cfg.Peers == nil {
		cfg.Peers = map[i2o.NodeID]string{}
	}
	cfg.Peers[2] = recv.Addr()
	send, err := New(1, pool.NewTable(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { send.Stop() })
	return send, recv
}

// TestConcurrentDialDedup is the regression test for the duplicate-dial
// race: concurrent senders to a not-yet-connected peer must share a single
// in-flight dial instead of each opening (and then discarding) its own
// connection.
func TestConcurrentDialDedup(t *testing.T) {
	reg := metrics.NewRegistry()
	send, _ := rawPair(t, Config{Unbatched: true, Metrics: reg}, nil)

	const senders = 16
	var (
		start = make(chan struct{})
		wg    sync.WaitGroup
		errs  = make(chan error, senders)
	)
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			errs <- send.Send(2, &i2o.Message{Target: 1, Function: i2o.UtilNOP})
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	if n := reg.Counter(PTName + ".dials").Value(); n != 1 {
		t.Fatalf("%d dials for %d concurrent senders, want 1", n, senders)
	}
}

// TestSGLPayloadOverTCP sends a chained payload and checks the receiver
// reassembles the exact byte sequence: the writer must walk the segments
// onto the wire in order, without flattening.
func TestSGLPayloadOverTCP(t *testing.T) {
	var (
		mu  sync.Mutex
		got [][]byte
	)
	send, _ := rawPair(t, Config{}, func(_ i2o.NodeID, m *i2o.Message) error {
		mu.Lock()
		got = append(got, append([]byte(nil), m.Payload...))
		mu.Unlock()
		m.Release()
		return nil
	})

	alloc := pool.NewTable(0)
	data := make([]byte, 10_000)
	for i := range data {
		data[i] = byte(i * 31)
	}
	l, err := sgl.FromBytes(alloc, data, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if l.Segments() < 2 {
		t.Fatalf("list has %d segments; the test needs a real chain", l.Segments())
	}
	m := &i2o.Message{
		Target: 1, Initiator: i2o.TIDExecutive,
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
	}
	m.AttachList(l)
	if err := send.Send(2, m); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("frame never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	if !bytes.Equal(got[0], data) {
		t.Fatalf("payload mismatch: %d bytes back, want %d", len(got[0]), len(data))
	}
	// The writer recycled the frame, releasing every chained block.
	deadline = time.Now().Add(time.Second)
	for alloc.Stats().InUse != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sender leaked %d blocks", alloc.Stats().InUse)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRingBackpressureSignalsTransient stalls the writer with wire delays
// until the tiny ring overflows, then checks the refusal carries both
// public sentinels: queue.ErrFull (the ErrQueueFull contract) and
// pta.ErrTransient (the retry policy re-attempts instead of failing).
func TestRingBackpressureSignalsTransient(t *testing.T) {
	send, _ := rawPair(t, Config{RingDepth: 2}, nil)
	send.SetWireFaults(faults.New(1).DelayNth(1, 20*time.Millisecond))

	var full error
	for i := 0; i < 200 && full == nil; i++ {
		err := send.Send(2, &i2o.Message{Target: 1, Function: i2o.UtilNOP})
		if err != nil {
			full = err
		}
	}
	if full == nil {
		t.Fatal("200 sends onto a depth-2 ring behind a stalled writer never hit backpressure")
	}
	if !errors.Is(full, queue.ErrFull) {
		t.Fatalf("%v does not wrap queue.ErrFull", full)
	}
	if !errors.Is(full, pta.ErrTransient) {
		t.Fatalf("%v does not wrap pta.ErrTransient", full)
	}
}

// TestReconnectUnderConcurrentSenders severs the connection repeatedly
// while four senders stream sequence-numbered frames, and checks every
// frame arrives exactly once, in per-sender order: the writer's
// redial-and-resend must neither drop nor duplicate nor reorder.
func TestReconnectUnderConcurrentSenders(t *testing.T) {
	const (
		senders = 4
		frames  = 200
	)
	var (
		mu   sync.Mutex
		seqs [senders][]uint32
	)
	reg := metrics.NewRegistry()
	send, _ := rawPair(t, Config{
		Metrics:   reg,
		RingDepth: 64,
		Redial:    RedialPolicy{Attempts: 10, Backoff: time.Millisecond},
	}, func(_ i2o.NodeID, m *i2o.Message) error {
		if len(m.Payload) == 5 {
			mu.Lock()
			s := m.Payload[0]
			seqs[s] = append(seqs[s], binary.LittleEndian.Uint32(m.Payload[1:]))
			mu.Unlock()
		}
		m.Release()
		return nil
	})
	// Sever the connection on every second batch, three times, once
	// traffic is established.  The fault fires before the vectored write,
	// so the queued frames stay on the ring and ride the redial.
	send.SetWireFaults(faults.New(1).Add(faults.Rule{
		Op: faults.Error, Nth: 2, After: 2, Limit: 3,
	}))

	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 1; i <= frames; i++ {
				p := make([]byte, 5)
				p[0] = byte(s)
				binary.LittleEndian.PutUint32(p[1:], uint32(i))
				m := &i2o.Message{
					Target: 1, Initiator: i2o.TIDExecutive,
					Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
					Payload: p,
				}
				for {
					err := send.Send(2, m)
					if err == nil {
						break
					}
					if !errors.Is(err, queue.ErrFull) {
						t.Errorf("sender %d frame %d: %v", s, i, err)
						return
					}
					runtime.Gosched() // backpressure: ring full, writer busy
				}
			}
		}(s)
	}
	wg.Wait()

	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		total := 0
		for s := range seqs {
			total += len(seqs[s])
		}
		mu.Unlock()
		if total == senders*frames {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d of %d frames", total, senders*frames)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for s := 0; s < senders; s++ {
		if len(seqs[s]) != frames {
			t.Fatalf("sender %d: %d frames, want %d", s, len(seqs[s]), frames)
		}
		for i, got := range seqs[s] {
			if got != uint32(i+1) {
				t.Fatalf("sender %d position %d: seq %d (duplicated, lost or reordered)", s, i, got)
			}
		}
	}
	if n := reg.Counter(PTName + ".dials").Value(); n < 2 {
		t.Fatalf("dials = %d; the connection was never re-established", n)
	}
	if n := reg.Counter(PTName + ".connDrops").Value(); n < 1 {
		t.Fatalf("connDrops = %d; the faults never severed the connection", n)
	}
	if n := reg.Counter(PTName + ".sendErrors").Value(); n != 0 {
		t.Fatalf("sendErrors = %d; the writer gave up on frames", n)
	}
	writes := reg.Counter(PTName + ".batch.writes").Value()
	batched := reg.Counter(PTName + ".batch.frames").Value()
	if writes == 0 || batched != senders*frames {
		t.Fatalf("batch.writes=%d batch.frames=%d, want frames=%d", writes, batched, senders*frames)
	}
}

// TestStopReleasesQueuedFrames checks that frames stranded on a ring when
// the transport stops are released, not leaked: the writer is stalled so
// the frames cannot drain before Stop.
func TestStopReleasesQueuedFrames(t *testing.T) {
	send, _ := rawPair(t, Config{RingDepth: 8}, nil)
	send.SetWireFaults(faults.New(1).DelayNth(1, 50*time.Millisecond))
	alloc := pool.NewTable(0)
	for i := 0; i < 4; i++ {
		b, err := alloc.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		m := &i2o.Message{
			Target: 1, Initiator: i2o.TIDExecutive,
			Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
			Payload: b.Bytes(),
		}
		m.AttachBuffer(b)
		if err := send.Send(2, m); err != nil {
			t.Fatal(err)
		}
	}
	if err := send.Stop(); err != nil {
		t.Fatal(err)
	}
	if n := alloc.Stats().InUse; n != 0 {
		t.Fatalf("%d buffers leaked on Stop", n)
	}
}
