package tcp

import (
	"context"
	"bytes"
	"errors"
	"net"
	"testing"
	"time"

	"xdaq/internal/device"
	"xdaq/internal/executive"
	"xdaq/internal/i2o"
	"xdaq/internal/pool"
	"xdaq/internal/pta"
)

type tcpNode struct {
	exec  *executive.Executive
	agent *pta.Agent
	tr    *Transport
}

func buildNode(t testing.TB, id i2o.NodeID) *tcpNode {
	t.Helper()
	e := executive.New(executive.Options{
		Name: "tcp", Node: id,
		RequestTimeout: 3 * time.Second,
		Logf:           func(string, ...any) {},
	})
	tr, err := New(id, e.Allocator(), Config{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	agent, err := pta.New(e)
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.Register(tr, pta.Task); err != nil {
		t.Fatal(err)
	}
	n := &tcpNode{exec: e, agent: agent, tr: tr}
	t.Cleanup(func() {
		agent.Close()
		e.Close()
	})
	return n
}

func connectPair(t testing.TB) (*tcpNode, *tcpNode) {
	t.Helper()
	a := buildNode(t, 1)
	b := buildNode(t, 2)
	a.tr.AddPeer(2, b.tr.Addr())
	b.tr.AddPeer(1, a.tr.Addr())
	a.exec.SetRoute(2, PTName)
	b.exec.SetRoute(1, PTName)
	return a, b
}

func TestRoundTripOverRealSockets(t *testing.T) {
	a, b := connectPair(t)
	d := device.New("echo", 0)
	d.Bind(1, func(ctx *device.Context, m *i2o.Message) error {
		return device.ReplyIfExpected(ctx, m, append([]byte(nil), m.Payload...))
	})
	if _, err := b.exec.Plug(d); err != nil {
		t.Fatal(err)
	}
	remote, err := a.exec.Discover(2, "echo", 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{0, 3, 1500, 100_000} {
		payload := bytes.Repeat([]byte{0x42}, size)
		rep, err := a.exec.Request(&i2o.Message{
			Target: remote, Initiator: i2o.TIDExecutive,
			Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
			Payload: payload,
		})
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !bytes.Equal(rep.Payload, payload) {
			t.Fatalf("size %d: mismatch", size)
		}
		rep.Release()
	}
	sent, _ := a.tr.Stats()
	_, recv := b.tr.Stats()
	if sent == 0 || recv == 0 {
		t.Fatal("stats not counted")
	}
}

func TestBidirectionalSimultaneousTraffic(t *testing.T) {
	a, b := connectPair(t)
	for _, n := range []*tcpNode{a, b} {
		d := device.New("echo", 0)
		d.Bind(1, func(ctx *device.Context, m *i2o.Message) error {
			return device.ReplyIfExpected(ctx, m, m.Payload)
		})
		if _, err := n.exec.Plug(d); err != nil {
			t.Fatal(err)
		}
	}
	ra, err := a.exec.Discover(2, "echo", 0)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.exec.Discover(1, "echo", 0)
	if err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	run := func(e *executive.Executive, target i2o.TID) {
		for i := 0; i < 50; i++ {
			rep, err := e.Request(&i2o.Message{
				Target: target, Initiator: i2o.TIDExecutive,
				Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
				Payload: []byte("x"),
			})
			if err != nil {
				errs <- err
				return
			}
			rep.Release()
		}
		errs <- nil
	}
	go run(a.exec, ra)
	go run(b.exec, rb)
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestSendWithoutPeerAddress(t *testing.T) {
	e := executive.New(executive.Options{Name: "x", Node: 1, Logf: func(string, ...any) {}})
	defer e.Close()
	tr, err := New(1, e.Allocator(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Stop()
	m := &i2o.Message{Target: 1, Function: i2o.UtilNOP}
	if err := tr.Send(9, m); !errors.Is(err, ErrNoPeer) {
		t.Fatalf("send: %v", err)
	}
}

func TestHandshakeRejectsBadMagic(t *testing.T) {
	alloc := pool.NewTable(0)
	tr, err := New(1, alloc, Config{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Stop()
	c, err := net.Dial("tcp", tr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("BADMAGIC00000000")); err != nil {
		t.Fatal(err)
	}
	// The server must close the connection without handing back a hello.
	c.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err == nil {
		t.Fatal("server answered a bad handshake")
	}
}

func TestOversizeRecordDropsConnection(t *testing.T) {
	a, b := connectPair(t)
	// Establish a healthy connection first.
	rep, err := a.exec.Request(&i2o.Message{
		Target: mustExecProxy(t, a.exec, 2), Initiator: i2o.TIDExecutive,
		Function: i2o.ExecStatusGet,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep.Release()
	_ = b
	// Now connect raw and send a poisoned length prefix.
	c, err := net.Dial("tcp", b.tr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	hello := append(append([]byte{}, magic[:]...), 9, 0, 0, 0, 1, 0, 0, 0)
	if _, err := c.Write(hello); err != nil {
		t.Fatal(err)
	}
	var back [16]byte
	if _, err := readFull(c, back[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(time.Second))
	one := make([]byte, 1)
	if _, err := c.Read(one); err == nil {
		t.Fatal("connection survived oversize record")
	}
}

func readFull(c net.Conn, b []byte) (int, error) {
	n := 0
	for n < len(b) {
		k, err := c.Read(b[n:])
		n += k
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

func mustExecProxy(t *testing.T, e *executive.Executive, node i2o.NodeID) i2o.TID {
	t.Helper()
	id, err := e.ExecProxy(node)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestStopIsIdempotent(t *testing.T) {
	alloc := pool.NewTable(0)
	tr, err := New(1, alloc, Config{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Stop(); err != nil {
		t.Fatal(err)
	}
	m := &i2o.Message{Target: 1, Function: i2o.UtilNOP}
	if err := tr.Send(2, m); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after stop: %v", err)
	}
}

func TestPollIsNoop(t *testing.T) {
	alloc := pool.NewTable(0)
	tr, err := New(1, alloc, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Stop()
	if n := tr.Poll(func(i2o.NodeID, *i2o.Message) error { return nil }, 5); n != 0 {
		t.Fatalf("poll %d", n)
	}
	if tr.Addr() != "" {
		t.Fatal("client-only transport has an address")
	}
}

// TestIdentify checks the address-only rendezvous handshake: a node that
// knows only "host:port" learns the peer's identity and ends up with a
// working adopted connection.
func TestIdentify(t *testing.T) {
	a := buildNode(t, 1)
	b := buildNode(t, 2)
	peer, err := a.tr.Identify(context.Background(), b.tr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if peer != 2 {
		t.Fatalf("identified node %v, want 2", peer)
	}
	b.tr.AddPeer(1, a.tr.Addr())
	a.exec.SetRoute(2, PTName)
	b.exec.SetRoute(1, PTName)
	d := device.New("echo", 0)
	d.Bind(1, func(ctx *device.Context, m *i2o.Message) error {
		return device.ReplyIfExpected(ctx, m, append([]byte(nil), m.Payload...))
	})
	if _, err := b.exec.Plug(d); err != nil {
		t.Fatal(err)
	}
	remote, err := a.exec.Discover(2, "echo", 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.exec.Request(&i2o.Message{
		Target: remote, Initiator: i2o.TIDExecutive,
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
		Payload: []byte("who"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(rep.Payload) != "who" {
		t.Fatalf("payload = %q", rep.Payload)
	}
	rep.Recycle()

	// Identifying ourselves is an error, not a half-adopted connection.
	if _, err := a.tr.Identify(context.Background(), a.tr.Addr()); err == nil {
		t.Fatal("self-identify succeeded")
	}
}
