package tcp

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"xdaq/internal/device"
	"xdaq/internal/i2o"
	"xdaq/internal/pool"
	"xdaq/internal/queue"
)

// sendRetained enqueues one pooled frame whose payload aliases blk,
// spinning through ring backpressure.  It is the benchmark hot path and
// must not allocate: the frame struct comes from the i2o free list (the
// writer recycles it), the payload is a retained shared block, and a full
// ring returns the prebuilt ErrRingFull sentinel.
func sendRetained(b *testing.B, tr *Transport, blk *pool.Buffer, payload []byte) {
	m := i2o.AcquireMessage()
	m.Target, m.Initiator = 1, i2o.TIDExecutive
	m.Function, m.Org, m.XFunction = i2o.FuncPrivate, i2o.OrgXDAQ, 1
	blk.Retain()
	m.AttachBuffer(blk)
	m.Payload = payload
	for {
		err := tr.Send(2, m)
		if err == nil {
			return
		}
		if !errors.Is(err, queue.ErrFull) {
			b.Fatal(err)
		}
		// Send released our block reference; re-arm the frame and retry
		// once the writer has drained some of the ring.
		runtime.Gosched()
		blk.Retain()
		m.AttachBuffer(blk)
	}
}

func waitDelivered(b *testing.B, c *atomic.Uint64, want uint64) {
	deadline := time.Now().Add(30 * time.Second)
	for c.Load() < want {
		if time.Now().After(deadline) {
			b.Fatalf("delivered %d of %d frames", c.Load(), want)
		}
		runtime.Gosched()
	}
}

// BenchmarkRemoteSend measures the eager (coalescing) send path end to
// end over a real socket pair: enqueue on the ring, vectored write,
// streaming pooled decode, delivery.  The 64 B payload keeps the wire
// size well under DefaultThreshold so every frame rides the ring; the
// bulk lane has its own gate in BenchmarkRemoteSendRendezvous.  The
// steady state must not allocate on either side — the acceptance gate of
// the zero-copy data path.
func BenchmarkRemoteSend(b *testing.B) {
	var recvd atomic.Uint64
	send, _ := rawPair(b, Config{}, func(_ i2o.NodeID, m *i2o.Message) error {
		m.Recycle()
		recvd.Add(1)
		return nil
	})
	alloc := pool.NewTable(0)
	blk, err := alloc.Alloc(64)
	if err != nil {
		b.Fatal(err)
	}
	payload := blk.Bytes()
	for i := range payload {
		payload[i] = byte(i)
	}
	// Warm up: fill the frame free list, grow the writer's scratch
	// buffers and the fd's iovec cache.
	for i := 0; i < 2048; i++ {
		sendRetained(b, send, blk, payload)
	}
	waitDelivered(b, &recvd, 2048)

	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sendRetained(b, send, blk, payload)
	}
	waitDelivered(b, &recvd, 2048+uint64(b.N))
	b.StopTimer()
}

// BenchmarkRemoteSendRendezvous is BenchmarkRemoteSend for the bulk lane: a
// 16 KiB payload, far above any threshold, so every frame takes the direct
// vectored write that bypasses the coalescing arena.  Steady state must not
// allocate — the rendezvous path shares the zero-alloc acceptance gate with
// the eager path.
func BenchmarkRemoteSendRendezvous(b *testing.B) {
	var recvd atomic.Uint64
	send, _ := rawPair(b, Config{}, func(_ i2o.NodeID, m *i2o.Message) error {
		m.Recycle()
		recvd.Add(1)
		return nil
	})
	alloc := pool.NewTable(0)
	blk, err := alloc.Alloc(16384)
	if err != nil {
		b.Fatal(err)
	}
	payload := blk.Bytes()
	for i := range payload {
		payload[i] = byte(i)
	}
	for i := 0; i < 512; i++ {
		sendRetained(b, send, blk, payload)
	}
	waitDelivered(b, &recvd, 512)

	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sendRetained(b, send, blk, payload)
	}
	waitDelivered(b, &recvd, 512+uint64(b.N))
	b.StopTimer()
}

// BenchmarkRemoteThreshold sweeps the eager/rendezvous switch point across
// payload sizes and sender counts — the measurement behind the threshold
// choice in doc/performance.md.  thr=eager pins every frame to the
// coalescing ring (Threshold -1), thr=rv forces every frame onto the direct
// lane (Threshold 1), and the middle setting splits at 512 wire bytes.
func BenchmarkRemoteThreshold(b *testing.B) {
	var recvd atomic.Uint64
	fn := func(_ i2o.NodeID, m *i2o.Message) error {
		m.Recycle()
		recvd.Add(1)
		return nil
	}
	transports := []struct {
		name string
		tr   *Transport
	}{
		{"eager", nil},
		{"512", nil},
		{"rv", nil},
	}
	for i, thr := range []int{-1, 512, 1} {
		transports[i].tr, _ = rawPair(b, Config{Threshold: thr}, fn)
	}
	alloc := pool.NewTable(0)
	blk, err := alloc.Alloc(4096)
	if err != nil {
		b.Fatal(err)
	}
	for i := range blk.Bytes() {
		blk.Bytes()[i] = byte(i)
	}
	for _, tc := range transports {
		for _, size := range []int{256, 4096} {
			for _, senders := range []int{1, 4} {
				name := fmt.Sprintf("size=%dB/thr=%s/senders=%d", size, tc.name, senders)
				b.Run(name, func(b *testing.B) {
					payload := blk.Bytes()[:size]
					base := recvd.Load()
					b.SetBytes(int64(size))
					b.SetParallelism(senders)
					b.ResetTimer()
					b.RunParallel(func(pb *testing.PB) {
						for pb.Next() {
							sendRetained(b, tc.tr, blk, payload)
						}
					})
					waitDelivered(b, &recvd, base+uint64(b.N))
					b.StopTimer()
				})
			}
		}
	}
}

// BenchmarkRemoteRoundTrip measures request/reply latency through the full
// stack (executive, agent, transport, socket, echo device and back) across
// payload sizes — the remote analogue of the paper's figure 6 sweep.
func BenchmarkRemoteRoundTrip(b *testing.B) {
	a, bn := connectPair(b)
	d := device.New("echo", 0)
	d.Bind(1, func(ctx *device.Context, m *i2o.Message) error {
		return device.ReplyIfExpected(ctx, m, m.Payload)
	})
	if _, err := bn.exec.Plug(d); err != nil {
		b.Fatal(err)
	}
	remote, err := a.exec.Discover(2, "echo", 0)
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range []int{1, 64, 256, 1024, 4096, 16384, 65536} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			payload := make([]byte, size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := a.exec.Request(&i2o.Message{
					Target: remote, Initiator: i2o.TIDExecutive,
					Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
					Payload: payload,
				})
				if err != nil {
					b.Fatal(err)
				}
				rep.Release()
			}
		})
	}
}

// BenchmarkRemoteThroughput drives four concurrent senders through one
// connection and measures delivered payload throughput, batched against
// the unbatched baseline (every frame its own encode + write syscall).
// The small-frame cases are where coalescing pays: many frames per
// vectored write instead of one syscall each.
func BenchmarkRemoteThroughput(b *testing.B) {
	const senders = 4
	var recvd atomic.Uint64
	fn := func(_ i2o.NodeID, m *i2o.Message) error {
		m.Recycle()
		recvd.Add(1)
		return nil
	}
	batched, _ := rawPair(b, Config{}, fn)
	unbatched, _ := rawPair(b, Config{Unbatched: true}, fn)

	alloc := pool.NewTable(0)
	blk, err := alloc.Alloc(16384)
	if err != nil {
		b.Fatal(err)
	}
	for i := range blk.Bytes() {
		blk.Bytes()[i] = byte(i)
	}
	for _, tc := range []struct {
		name string
		tr   *Transport
	}{
		{"batched", batched},
		{"unbatched", unbatched},
	} {
		for _, size := range []int{64, 256, 1024, 4096, 16384} {
			b.Run(fmt.Sprintf("%s/%dB/senders=%d", tc.name, size, senders), func(b *testing.B) {
				payload := blk.Bytes()[:size]
				base := recvd.Load()
				b.SetBytes(int64(size))
				b.SetParallelism(senders)
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						sendRetained(b, tc.tr, blk, payload)
					}
				})
				// Throughput is delivered frames, not enqueued ones: the
				// clock stops when the receiver has seen every frame.
				waitDelivered(b, &recvd, base+uint64(b.N))
				b.StopTimer()
			})
		}
	}
}
