// Package tcp implements a peer transport over TCP/IP.  In the paper's
// benchmark system (§5) the TCP PT carried configuration and control
// traffic next to the low-latency Myrinet PT ("another PT thread was
// handling TCP communication for configuration and control purposes");
// here it also serves as the transport for genuinely distributed
// deployments of the cmd/xdaqd node daemon.
//
// Wire format per connection: a 12-byte handshake (8-byte magic, 4-byte
// node id little-endian), then a stream of records, each a 4-byte frame
// length followed by the encoded I2O frame.
//
// The data path mirrors the descriptor-ring model of the paper's Myrinet
// NIC (internal/transport/gm).  Send enqueues the frame descriptor on a
// per-peer ring and returns; a per-peer writer drains the ring and
// coalesces everything queued into one vectored write (writev via
// net.Buffers) — length prefixes and headers in a reused scratch buffer,
// payload slices (or every segment of an SGL) appended zero-copy.  A full
// ring is GM send-token exhaustion: Send fails with ErrRingFull, which the
// agent's retry policy treats as transient backpressure.  Receive streams
// the socket into 256 KB pool blocks and decodes frames in place; one
// block backs many frames by reference count, so the steady state
// allocates nothing on either end.
package tcp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"xdaq/internal/i2o"
	"xdaq/internal/metrics"
	"xdaq/internal/pool"
	"xdaq/internal/pta"
	"xdaq/internal/queue"
	"xdaq/internal/transport/faults"
	"xdaq/internal/transport/ring"
)

// PTName is the default route name.
const PTName = "pt.tcp"

var magic = [8]byte{'X', 'D', 'A', 'Q', 'I', '2', 'O', '1'}

// readBlockSize is the streaming receive buffer: one pool block sized so
// that any length-prefixed record fits whole.  It lands exactly on
// pool.MaxBlock (4 + 0xFFFF*4 = 256 KiB), the paper's maximum block length.
const readBlockSize = 4 + i2o.MaxWireSize

// recordHeader is the per-frame wire overhead the writer encodes into its
// scratch buffer: the 4-byte length prefix plus the largest frame header.
const recordHeader = 4 + i2o.PrivateHeaderSize

// dialTimeout bounds one connection attempt so a writer redialing a dead
// peer stays responsive to Stop.
const dialTimeout = 3 * time.Second

// Errors.
var (
	// ErrClosed reports use of a stopped transport.
	ErrClosed = errors.New("tcp: closed")

	// ErrNoPeer reports a send to a node with no known address or
	// connection.
	ErrNoPeer = errors.New("tcp: no peer address")

	// ErrHandshake reports a connection with a bad magic or node id.
	ErrHandshake = errors.New("tcp: handshake failed")

	// ErrRingFull reports a send onto a full per-peer ring.  It is
	// prebuilt (the backpressure path must not allocate) and wraps both
	// queue.ErrFull — the public ErrQueueFull sentinel — and
	// pta.ErrTransient, so the agent's retry policy backs off and
	// re-attempts instead of failing the frame.
	ErrRingFull = fmt.Errorf("tcp: send ring full: %w (%w)", queue.ErrFull, pta.ErrTransient)
)

// RedialPolicy bounds a writer's attempts to reconnect and resend after a
// broken connection, with exponential backoff between attempts.
type RedialPolicy struct {
	Attempts   int           // dial+write attempts per batch; <1 selects 5
	Backoff    time.Duration // first retry delay; <=0 selects 1ms
	MaxBackoff time.Duration // backoff cap; 0 selects 200ms
}

func (p RedialPolicy) withDefaults() RedialPolicy {
	if p.Attempts < 1 {
		p.Attempts = 5
	}
	if p.Backoff <= 0 {
		p.Backoff = time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 200 * time.Millisecond
	}
	return p
}

// Transport is one node's TCP peer transport.
type Transport struct {
	node  i2o.NodeID
	alloc pool.Allocator
	name  string
	ln    net.Listener

	mu      sync.Mutex
	conns   map[i2o.NodeID]*peerConn
	addrs   map[i2o.NodeID]string
	peers   map[i2o.NodeID]*peer
	dialing map[i2o.NodeID]*dialCall
	deliver pta.Deliver

	closed atomic.Bool
	stopc  chan struct{}
	wg     sync.WaitGroup

	unbatched bool
	depth     int
	redial    RedialPolicy

	flt  atomic.Pointer[faults.Injector] // send path (enqueue)
	wflt atomic.Pointer[faults.Injector] // wire path (writer)

	nSent    *metrics.Counter
	nRecv    *metrics.Counter
	nDials   *metrics.Counter
	nAccs    *metrics.Counter
	nDrops   *metrics.Counter
	nWrites  *metrics.Counter // batch.writes: vectored writes issued
	nBatched *metrics.Counter // batch.frames: frames carried by them
	nFull    *metrics.Counter // ring.full: sends refused by backpressure
	nErrs    *metrics.Counter // sendErrors: frames dropped by the writer
}

type peerConn struct {
	node      i2o.NodeID
	initiator i2o.NodeID // who dialed this stream (simultaneous-connect tie-break)
	c         net.Conn
	writeMu   sync.Mutex // serializes unbatched senders; writers are sole
}

// peer is the batched-mode send state: the descriptor ring and the writer
// draining it.
type peer struct {
	node i2o.NodeID
	q    *ring.Queue[*i2o.Message]
}

// dialCall dedupes concurrent dials to the same peer (singleflight): the
// first sender dials, the rest wait for its result.
type dialCall struct {
	done chan struct{}
	pc   *peerConn
	err  error
}

var _ pta.PeerTransport = (*Transport)(nil)

// Config configures a Transport.
type Config struct {
	// Name overrides the route name; defaults to PTName.
	Name string

	// Listen is the accept address, e.g. "127.0.0.1:0".  Empty disables
	// listening (a pure client node).
	Listen string

	// Peers maps node identities to dial addresses.
	Peers map[i2o.NodeID]string

	// Metrics receives the transport's counters (<name>.sent, .recv,
	// .dials, .accepts, .connDrops, .batch.writes, .batch.frames,
	// .ring.full, .sendErrors and the .ring.depth gauge); defaults to
	// metrics.Default.  Pass the owning executive's registry so the
	// counters show up in that node's scrape.
	Metrics *metrics.Registry

	// Unbatched disables the per-peer send rings: every Send encodes and
	// writes its frame synchronously under a per-connection mutex.  This
	// is the pre-ring data path, kept as the measured baseline for the
	// remote benchmarks (see doc/performance.md).
	Unbatched bool

	// RingDepth is the per-peer send ring capacity; <=0 selects
	// ring.DefaultDepth.
	RingDepth int

	// Redial bounds writer reconnect attempts after a broken connection.
	Redial RedialPolicy
}

// New creates the transport and, when configured, starts listening.
func New(node i2o.NodeID, alloc pool.Allocator, cfg Config) (*Transport, error) {
	if cfg.Name == "" {
		cfg.Name = PTName
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.Default
	}
	if cfg.RingDepth <= 0 {
		cfg.RingDepth = ring.DefaultDepth
	}
	t := &Transport{
		node:    node,
		alloc:   alloc,
		name:    cfg.Name,
		conns:   make(map[i2o.NodeID]*peerConn),
		addrs:   make(map[i2o.NodeID]string),
		peers:   make(map[i2o.NodeID]*peer),
		dialing: make(map[i2o.NodeID]*dialCall),
		stopc:   make(chan struct{}),

		unbatched: cfg.Unbatched,
		depth:     cfg.RingDepth,
		redial:    cfg.Redial.withDefaults(),

		nSent:    cfg.Metrics.Counter(cfg.Name + ".sent"),
		nRecv:    cfg.Metrics.Counter(cfg.Name + ".recv"),
		nDials:   cfg.Metrics.Counter(cfg.Name + ".dials"),
		nAccs:    cfg.Metrics.Counter(cfg.Name + ".accepts"),
		nDrops:   cfg.Metrics.Counter(cfg.Name + ".connDrops"),
		nWrites:  cfg.Metrics.Counter(cfg.Name + ".batch.writes"),
		nBatched: cfg.Metrics.Counter(cfg.Name + ".batch.frames"),
		nFull:    cfg.Metrics.Counter(cfg.Name + ".ring.full"),
		nErrs:    cfg.Metrics.Counter(cfg.Name + ".sendErrors"),
	}
	cfg.Metrics.Func(cfg.Name+".ring.depth", t.ringDepth)
	for n, a := range cfg.Peers {
		t.addrs[n] = a
	}
	if cfg.Listen != "" {
		ln, err := net.Listen("tcp", cfg.Listen)
		if err != nil {
			return nil, fmt.Errorf("tcp: listen %s: %w", cfg.Listen, err)
		}
		t.ln = ln
		t.wg.Add(1)
		go t.acceptLoop()
	}
	return t, nil
}

// ringDepth samples the total frames queued across all per-peer rings.
func (t *Transport) ringDepth() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int64
	for _, p := range t.peers {
		n += int64(p.q.Len())
	}
	return n
}

// Addr returns the listening address, or "" for client-only transports.
func (t *Transport) Addr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// AddPeer maps a node to a dial address at runtime.
func (t *Transport) AddPeer(node i2o.NodeID, addr string) {
	t.mu.Lock()
	t.addrs[node] = addr
	t.mu.Unlock()
}

// SetFaults installs a fault injector on the send (enqueue) path; nil
// removes it.
func (t *Transport) SetFaults(in *faults.Injector) { t.flt.Store(in) }

// SetWireFaults installs a fault injector on the wire path: the writer
// consults it before each vectored write.  Drop and Error sever the live
// connection — a byte stream cannot lose a single frame, so a wire fault
// kills the whole stream and the queued frames ride the redial — and Delay
// stalls the writer (ring backpressure builds up behind it).  Nil removes
// the injector.
func (t *Transport) SetWireFaults(in *faults.Injector) { t.wflt.Store(in) }

// Name implements pta.PeerTransport.
func (t *Transport) Name() string { return t.name }

// Start implements pta.PeerTransport.  TCP runs in task mode only: every
// connection has its own read goroutine.
func (t *Transport) Start(fn pta.Deliver) error {
	t.mu.Lock()
	t.deliver = fn
	t.mu.Unlock()
	return nil
}

// Poll implements pta.PeerTransport; TCP is push-only.
func (t *Transport) Poll(pta.Deliver, int) int { return 0 }

func (t *Transport) deliverFn() pta.Deliver {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.deliver
}

// Send implements pta.PeerTransport.  In batched mode (the default) it
// enqueues the frame on the peer's send ring and returns immediately; the
// frame then belongs to the writer, which recycles it after the vectored
// write.  A full ring fails with ErrRingFull.  On any error return the
// frame's buffer is released but the struct is left intact, so the agent's
// retry policy can re-attach and resend it.
func (t *Transport) Send(dst i2o.NodeID, m *i2o.Message) error {
	if t.closed.Load() {
		m.Release()
		return ErrClosed
	}
	dup := false
	if in := t.flt.Load(); in != nil {
		// Faults draw from the per-destination stream so the schedule for
		// each peer is deterministic whatever the dispatcher interleaving.
		switch act := in.NextFor(uint64(dst)); act.Op {
		case faults.Drop:
			m.Release()
			return nil // lost on the wire
		case faults.Delay:
			time.Sleep(act.Delay)
		case faults.Error:
			m.Release()
			return fmt.Errorf("tcp: %w", act.Err)
		case faults.Duplicate:
			dup = true
		}
	}
	if t.unbatched {
		if dup {
			if err := t.sendDirect(dst, m.Dup()); err != nil {
				m.Release()
				return err
			}
		}
		return t.sendDirect(dst, m)
	}
	p, err := t.peerFor(dst)
	if err != nil {
		m.Release()
		return err
	}
	if dup {
		// A lost-ack retransmission: an independent clone rides the ring
		// just ahead of the original, so the peer sees the frame twice,
		// back to back.  Ring-full here simply loses the duplicate.
		d := m.Dup()
		if err := p.q.Push(d); err != nil {
			d.Release()
		}
	}
	if err := p.q.Push(m); err != nil {
		m.Release()
		if errors.Is(err, ring.ErrClosed) {
			return ErrClosed
		}
		t.nFull.Inc()
		return ErrRingFull
	}
	return nil
}

// sendDirect is the unbatched baseline: encode into a fresh buffer and
// write it under the connection mutex.
func (t *Transport) sendDirect(dst i2o.NodeID, m *i2o.Message) error {
	defer m.Release()
	pc, err := t.connTo(dst)
	if err != nil {
		return err
	}
	size := m.WireSize()
	buf := make([]byte, 4+size)
	binary.LittleEndian.PutUint32(buf, uint32(size))
	if _, err := m.Encode(buf[4:]); err != nil {
		return err
	}
	pc.writeMu.Lock()
	_, err = pc.c.Write(buf)
	pc.writeMu.Unlock()
	if err != nil {
		t.dropConn(pc)
		// A broken connection is transient from the agent's view: the next
		// attempt redials, so the retry policy may recover the frame.
		return fmt.Errorf("tcp: write to %v: %w (%w)", dst, err, pta.ErrTransient)
	}
	t.nSent.Inc()
	return nil
}

// peerFor returns dst's send ring, creating the ring and its writer on
// first use.  A peer is only created when dst is reachable: a known dial
// address or an already-adopted connection.
func (t *Transport) peerFor(dst i2o.NodeID) (*peer, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed.Load() {
		return nil, ErrClosed
	}
	p := t.peers[dst]
	if p == nil {
		if _, ok := t.addrs[dst]; !ok {
			if _, ok := t.conns[dst]; !ok {
				return nil, fmt.Errorf("%w: %v", ErrNoPeer, dst)
			}
		}
		p = &peer{node: dst, q: ring.New[*i2o.Message](t.depth)}
		t.peers[dst] = p
		t.wg.Add(1)
		go t.writeLoop(p)
	}
	return p, nil
}

// writeLoop drains one peer's ring: every frame queued since the last
// write goes out in a single writev.  The scratch buffers (batch slice,
// header arena, iovec) are reused across batches, so the steady state
// allocates nothing.  On a broken connection the loop redials and resends
// the frames the kernel never consumed, preserving order.
func (t *Transport) writeLoop(p *peer) {
	defer t.wg.Done()
	var (
		pend  = make([]*i2o.Message, 0, t.depth) // unsent frames, oldest first
		vec   = make([][]byte, 0, 64)            // iovec under construction
		sizes = make([]int, 0, t.depth)          // per-frame record sizes
		hdr   []byte                             // prefix+header arena
		tries int                                // attempts for the current pend
	)
	for {
		if len(pend) == 0 {
			var closed bool
			pend, closed = p.q.PopBatch(pend)
			if len(pend) == 0 {
				if closed {
					return
				}
				if !p.q.Wait(t.stopc) {
					t.drainPeer(p, pend)
					return
				}
				continue
			}
			tries = 0
		}
		if t.closed.Load() {
			t.failFrames(pend)
			t.drainPeer(p, pend[:0])
			return
		}

		if in := t.wflt.Load(); in != nil {
			// Wire faults are keyed by the destination peer: each writer
			// goroutine owns one peer, so its fault stream is a pure
			// function of that peer's batch sequence.
			switch act := in.NextFor(uint64(p.node)); act.Op {
			case faults.Delay:
				time.Sleep(act.Delay)
			case faults.Drop, faults.Error:
				t.mu.Lock()
				pc := t.conns[p.node]
				t.mu.Unlock()
				if pc != nil {
					t.dropConn(pc)
				}
			case faults.Duplicate:
				// Retransmit the oldest unsent frame: its clone goes on the
				// wire immediately before it, like a sender whose ack timer
				// fired just as the kernel drained the socket.
				pend = append(pend, nil)
				copy(pend[1:], pend)
				pend[0] = pend[1].Dup()
			}
		}

		pc, err := t.connTo(p.node)
		if err != nil {
			if errors.Is(err, ErrNoPeer) || errors.Is(err, ErrClosed) || !t.backoff(&tries) {
				t.failFrames(pend)
				pend = pend[:0]
			}
			continue
		}

		// Build the batch: for each frame a [len|header] slice from the
		// arena, then the body — flat payload or SGL segments — appended
		// zero-copy, then padding.
		if need := len(pend) * recordHeader; cap(hdr) < need {
			hdr = make([]byte, 0, need)
		}
		hdr, vec, sizes = hdr[:0], vec[:0], sizes[:0]
		kept := pend[:0]
		for _, m := range pend {
			off := len(hdr)
			hdr = hdr[:off+recordHeader]
			h, err := m.EncodeHeader(hdr[off+4:])
			if err != nil {
				hdr = hdr[:off]
				t.nErrs.Inc()
				m.Recycle()
				continue
			}
			size := m.WireSize()
			binary.LittleEndian.PutUint32(hdr[off:], uint32(size))
			hdr = hdr[:off+4+h]
			vec = append(vec, hdr[off:off+4+h])
			vec = m.AppendBody(vec)
			sizes = append(sizes, 4+size)
			kept = append(kept, m)
		}
		pend = kept
		if len(pend) == 0 {
			continue
		}

		bufs := net.Buffers(vec)
		n, err := bufs.WriteTo(pc.c)
		// WriteTo consumes through the shared backing array; clear the
		// leftover entries so the scratch iovec never pins payload blocks
		// across batches.
		for i := range vec {
			vec[i] = nil
		}
		if err != nil {
			t.dropConn(pc)
			// Frames fully consumed by the kernel may have reached the
			// peer; only the rest are retried, so a frame is never sent
			// twice and order is preserved.
			done := framesWritten(sizes, n)
			for _, m := range pend[:done] {
				m.Recycle()
			}
			t.nSent.Add(uint64(done))
			pend = append(pend[:0], pend[done:]...)
			if !t.backoff(&tries) {
				t.failFrames(pend)
				pend = pend[:0]
			}
			continue
		}
		t.nWrites.Inc()
		t.nBatched.Add(uint64(len(pend)))
		t.nSent.Add(uint64(len(pend)))
		for _, m := range pend {
			m.Recycle()
		}
		pend = pend[:0]
		tries = 0
	}
}

// framesWritten counts the leading frames fully covered by n bytes of a
// partial write.
func framesWritten(sizes []int, n int64) int {
	done := 0
	for _, s := range sizes {
		if n < int64(s) {
			break
		}
		n -= int64(s)
		done++
	}
	return done
}

// backoff sleeps out the redial delay for the given attempt count and
// reports whether another attempt is allowed.  It wakes early on Stop.
func (t *Transport) backoff(tries *int) bool {
	*tries++
	if *tries >= t.redial.Attempts {
		return false
	}
	d := t.redial.Backoff << (*tries - 1)
	if d > t.redial.MaxBackoff {
		d = t.redial.MaxBackoff
	}
	timer := time.NewTimer(d)
	select {
	case <-timer.C:
	case <-t.stopc:
		timer.Stop()
	}
	return true
}

// failFrames drops frames the writer could not deliver.
func (t *Transport) failFrames(ms []*i2o.Message) {
	for _, m := range ms {
		t.nErrs.Inc()
		m.Recycle()
	}
}

// drainPeer empties a closed ring, recycling the stranded frames.
func (t *Transport) drainPeer(p *peer, scratch []*i2o.Message) {
	items, _ := p.q.PopBatch(scratch)
	t.failFrames(items)
}

// connTo returns the connection to dst, dialing if necessary.  Concurrent
// callers (unbatched senders, or a writer racing the accept side) share a
// single in-flight dial.
func (t *Transport) connTo(dst i2o.NodeID) (*peerConn, error) {
	for {
		t.mu.Lock()
		if pc, ok := t.conns[dst]; ok {
			t.mu.Unlock()
			return pc, nil
		}
		if t.closed.Load() {
			t.mu.Unlock()
			return nil, ErrClosed
		}
		if d, ok := t.dialing[dst]; ok {
			t.mu.Unlock()
			<-d.done
			if d.err != nil {
				return nil, d.err
			}
			if d.pc != nil {
				return d.pc, nil
			}
			continue
		}
		addr, ok := t.addrs[dst]
		if !ok {
			t.mu.Unlock()
			return nil, fmt.Errorf("%w: %v", ErrNoPeer, dst)
		}
		d := &dialCall{done: make(chan struct{})}
		t.dialing[dst] = d
		t.mu.Unlock()

		d.pc, d.err = t.dial(dst, addr)
		t.mu.Lock()
		delete(t.dialing, dst)
		t.mu.Unlock()
		close(d.done)
		return d.pc, d.err
	}
}

// dial opens, handshakes and adopts one connection to dst.
func (t *Transport) dial(dst i2o.NodeID, addr string) (*peerConn, error) {
	c, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("tcp: dial %v at %s: %w (%w)", dst, addr, err, pta.ErrTransient)
	}
	t.nDials.Inc()
	// Send our identity, read theirs.
	var hello [12]byte
	copy(hello[:8], magic[:])
	binary.LittleEndian.PutUint32(hello[8:], uint32(t.node))
	if _, err := c.Write(hello[:]); err != nil {
		c.Close()
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	peer, err := readHello(c)
	if err != nil {
		c.Close()
		return nil, err
	}
	if peer != dst {
		c.Close()
		return nil, fmt.Errorf("%w: dialed %v, got %v", ErrHandshake, dst, peer)
	}
	return t.adopt(peer, c, t.node)
}

func readHello(c net.Conn) (i2o.NodeID, error) {
	var hello [12]byte
	if _, err := io.ReadFull(c, hello[:]); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	if [8]byte(hello[:8]) != magic {
		return 0, fmt.Errorf("%w: bad magic", ErrHandshake)
	}
	return i2o.NodeID(binary.LittleEndian.Uint32(hello[8:])), nil
}

// adopt registers a live connection and starts its read loop.  On a
// simultaneous-connect race — both nodes dialed each other at once, so two
// streams exist — both sides apply the same tie-break and keep the stream
// dialed by the lower node id; picking deterministically means the peers
// agree on the surviving stream instead of each closing the one the other
// kept (which churns connections until the race happens to resolve).  When
// the same initiator shows up twice the newer stream wins: the initiator
// only redials after dropping the old one, so the old one is dead.
func (t *Transport) adopt(peer i2o.NodeID, c net.Conn, initiator i2o.NodeID) (*peerConn, error) {
	pc := &peerConn{node: peer, initiator: initiator, c: c}
	t.mu.Lock()
	if t.closed.Load() {
		t.mu.Unlock()
		c.Close()
		return nil, ErrClosed
	}
	if existing, ok := t.conns[peer]; ok {
		keepNew := existing.initiator == pc.initiator
		if !keepNew {
			low := min(t.node, peer)
			keepNew = pc.initiator == low
		}
		if !keepNew {
			t.mu.Unlock()
			c.Close()
			return existing, nil
		}
		delete(t.conns, peer)
		t.conns[peer] = pc
		t.mu.Unlock()
		existing.c.Close() // its readLoop exits; dropConn is a no-op now
	} else {
		t.conns[peer] = pc
		t.mu.Unlock()
	}
	t.wg.Add(1)
	go t.readLoop(pc)
	return pc, nil
}

// Conns returns the number of live identified connections.  Each one's
// readLoop holds one pooled receive block while the connection is open, so
// pool-population audits (the chaos harness's leak checker) subtract the
// live-connection count before comparing against a baseline: failover and
// redial legitimately move it.
func (t *Transport) Conns() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.conns)
}

func (t *Transport) dropConn(pc *peerConn) {
	t.mu.Lock()
	dropped := t.conns[pc.node] == pc
	if dropped {
		delete(t.conns, pc.node)
	}
	t.mu.Unlock()
	if dropped {
		t.nDrops.Inc()
	}
	pc.c.Close()
}

func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			peer, err := readHello(c)
			if err != nil {
				c.Close()
				return
			}
			var hello [12]byte
			copy(hello[:8], magic[:])
			binary.LittleEndian.PutUint32(hello[8:], uint32(t.node))
			if _, err := c.Write(hello[:]); err != nil {
				c.Close()
				return
			}
			t.nAccs.Inc()
			_, _ = t.adopt(peer, c, peer)
		}()
	}
}

// readLoop streams records out of one connection.  Bytes land in a 256 KB
// pool block; frames decode in place and retain the block, so one block
// backs every frame it holds and recycles itself when the last consumer
// releases.  The loop rewinds the block only when it is the sole owner and
// moves a partial record to a fresh block otherwise — delivered payloads
// are never overwritten.
func (t *Transport) readLoop(pc *peerConn) {
	defer t.wg.Done()
	defer t.dropConn(pc)
	var (
		block      *pool.Buffer
		data       []byte
		start, end int
	)
	defer func() {
		if block != nil {
			block.Release()
		}
	}()
	newBlock := func() bool {
		b, err := t.alloc.Alloc(readBlockSize)
		if err != nil {
			return false
		}
		nd := b.Bytes()
		n := 0
		if block != nil {
			n = copy(nd, data[start:end])
			block.Release()
		}
		block, data, start, end = b, nd, 0, n
		return true
	}
	if !newBlock() {
		return
	}
	for {
		// Decode every complete record in the block.
		for end-start >= 4 {
			size := int(binary.LittleEndian.Uint32(data[start:]))
			if size < i2o.StandardHeaderSize || size > i2o.MaxWireSize {
				return // protocol violation; drop the connection
			}
			if end-start < 4+size {
				break
			}
			m, _, err := i2o.DecodeAcquired(data[start+4 : start+4+size])
			if err != nil {
				return
			}
			block.Retain()
			m.AttachBuffer(block)
			start += 4 + size
			fn := t.deliverFn()
			if fn == nil {
				m.Release()
				continue
			}
			t.nRecv.Inc()
			if err := fn(pc.node, m); err != nil && t.closed.Load() {
				return
			}
		}
		// Make room for the next read.
		if start == end {
			if block.Refs() == 1 {
				start, end = 0, 0 // sole owner: reuse in place
			} else if end == len(data) {
				if !newBlock() { // block pinned by in-flight frames
					return
				}
			}
		} else {
			span := 4
			if end-start >= 4 {
				span = 4 + int(binary.LittleEndian.Uint32(data[start:]))
			}
			if start+span > len(data) {
				if !newBlock() { // partial record cannot complete in place
					return
				}
			}
		}
		n, err := pc.c.Read(data[end:])
		end += n
		if err != nil && n == 0 {
			return
		}
	}
}

// Stats reports frames sent and received.
func (t *Transport) Stats() (sent, received uint64) {
	return t.nSent.Value(), t.nRecv.Value()
}

// Stop implements pta.PeerTransport.  Frames still queued on send rings
// are released, not flushed: by the time the executive stops a transport
// their initiators have failed over or timed out already.
func (t *Transport) Stop() error {
	if t.closed.Swap(true) {
		return nil
	}
	close(t.stopc)
	if t.ln != nil {
		t.ln.Close()
	}
	t.mu.Lock()
	for _, p := range t.peers {
		p.q.Close()
	}
	for _, pc := range t.conns {
		pc.c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}
