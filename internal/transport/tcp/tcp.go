// Package tcp implements a peer transport over TCP/IP.  In the paper's
// benchmark system (§5) the TCP PT carried configuration and control
// traffic next to the low-latency Myrinet PT ("another PT thread was
// handling TCP communication for configuration and control purposes");
// here it also serves as the transport for genuinely distributed
// deployments of the cmd/xdaqd node daemon.
//
// Wire format per connection: a 16-byte handshake (8-byte magic, 4-byte
// node id, 4-byte credit grant, all little-endian), then a stream of
// records.  Each record starts with one 32-bit word packing a 24-bit frame
// length and an 8-bit piggybacked credit return (see i2o.PackRecordWord),
// followed by the encoded I2O frame; a zero-length record carries a
// standalone credit return.
//
// The send path runs two protocols, selected per frame — the small/large
// message split MPICH2-over-InfiniBand makes with its eager and rendezvous
// protocols (Liu et al., PAPERS.md):
//
//   - Eager: frames below a threshold enqueue on a per-peer descriptor
//     ring (the GM NIC model of internal/transport/gm); a per-peer writer
//     drains the ring and coalesces everything queued into one vectored
//     write — length prefixes and headers in a reused scratch arena,
//     payload slices (or every segment of an SGL) appended zero-copy.
//     Coalescing amortizes the syscall over many small frames.
//   - Rendezvous: frames at or above the threshold bypass the ring and go
//     out via a direct vectored write on the sender's own goroutine, under
//     the connection write mutex.  Large payloads are never copied through
//     or serialized behind the writer, so concurrent bulk senders keep the
//     socket full instead of queuing behind one goroutine.  The bypass is
//     gated on an idle ring (ring.Idle), which preserves per-sender FIFO
//     order across the two lanes.
//
// The threshold auto-tunes from the live coalescing metrics, one-sidedly:
// when writer batches degenerate to a frame or two per writev the
// threshold trims toward thresholdMin so near-threshold frames take the
// direct lane, and when batches amortize many frames per syscall again it
// recovers toward its DefaultThreshold ceiling.  It never rises above the
// ceiling.  Config.Threshold pins it instead.
//
// Flow control is credit-based, as on an InfiniBand link: the handshake
// grants a per-peer window of in-flight frames, Send consumes one credit
// per frame, and the receiver returns credits when its pooled receive
// block recycles, piggybacked on the record words of reverse traffic (or a
// standalone zero-length record when the link is one-way).  An exhausted
// window fails with ErrNoCredit — transient backpressure for the agent's
// retry policy, like a full ring — so a slow receiver throttles senders
// proactively instead of letting frames pile up in kernel buffers.
// Receive streams the socket into 256 KB pool blocks and decodes frames in
// place; one block backs many frames by reference count, so the steady
// state allocates nothing on either end, on either lane.
package tcp

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"xdaq/internal/i2o"
	"xdaq/internal/metrics"
	"xdaq/internal/pool"
	"xdaq/internal/pta"
	"xdaq/internal/queue"
	"xdaq/internal/transport/faults"
	"xdaq/internal/transport/ring"
)

// PTName is the default route name.
const PTName = "pt.tcp"

var magic = [8]byte{'X', 'D', 'A', 'Q', 'I', '2', 'O', '2'}

// helloSize is the handshake length: magic, node id, credit grant.
const helloSize = 16

// readBlockSize is the streaming receive buffer: one pool block sized so
// that any length-prefixed record fits whole.  It lands exactly on
// pool.MaxBlock (4 + 0xFFFF*4 = 256 KiB), the paper's maximum block length.
const readBlockSize = 4 + i2o.MaxWireSize

// recordHeader is the per-frame wire overhead the writer encodes into its
// scratch buffer: the 4-byte record word plus the largest frame header.
const recordHeader = 4 + i2o.PrivateHeaderSize

// dialTimeout bounds one connection attempt so a writer redialing a dead
// peer stays responsive to Stop.
const dialTimeout = 3 * time.Second

// DefaultThreshold is the eager/rendezvous switch point in wire bytes —
// the small/large message split of MPICH2-over-InfiniBand (PAPERS.md),
// scaled to this transport: coalescing amortizes its writev only while
// per-frame overhead dominates the wire time, and on a loopback TCP link
// that crossover sits near a few hundred bytes, not the tens of kilobytes
// of an RDMA eager limit.  With auto-tuning enabled (Config.Threshold ==
// 0) this is also the ceiling; the live coalescing metrics only trim the
// threshold within [thresholdMin, DefaultThreshold].
const DefaultThreshold = 256

const (
	// thresholdMin bounds how far the auto-tuner trims the threshold.
	thresholdMin = 64

	// tuneFrameFloor restores (doubles) the threshold toward
	// DefaultThreshold when the writer's average batch carries at least
	// this many frames: live traffic proves the writev amortizes, so
	// frames below the ceiling belong in the coalescing.  The tuner
	// never raises the threshold past DefaultThreshold — batch metrics
	// describe frames already riding the ring, and say nothing about
	// whether the larger frames a raise would admit are better off
	// there; measured on this path, they are not.
	tuneFrameFloor = 8

	// tuneFrameCeil halves the threshold when the average batch carries
	// no more than this many frames: the ring is not amortizing
	// anything, so the hop through the writer buys near-threshold frames
	// only latency — send them directly.  The gap between the two bounds
	// is the hysteresis band.
	tuneFrameCeil = 2
)

// DefaultCredits is the per-peer receive window granted on connect when
// Config.Credits is zero: how many frames a peer may have in flight toward
// us before its sends fail with ErrNoCredit.  Credit-based flow control is
// the InfiniBand reliable-connection discipline MPICH2 layers its channel
// on (PAPERS.md): the receiver pre-declares buffer capacity and the sender
// never overruns it, turning backpressure from a reactive failure into a
// proactive window.
//
// The window is a safety valve against a wedged receiver, not a rate
// limiter, so it must clear the link's bandwidth-delay product — and the
// delay that matters is not the wire RTT but the worst-case scheduling
// latency of the credit-return read on a loaded host (~10ms when runnable
// goroutines keep the netpoller waiting), at millions of eager frames per
// second.  A window below that product caps throughput at window/latency
// regardless of how fast both ends are; 32Ki frames rides out the stall
// while still bounding a silent peer.
const DefaultCredits = 32 * 1024

// bulkLaneBit keys the rendezvous lane's wire-fault stream: bulk sends to
// peer n draw from stream n|bulkLaneBit, the writer from stream n, so each
// lane sees its own deterministic schedule (faults.Injector.NextFor).
const bulkLaneBit = uint64(1) << 32

// Errors.
var (
	// ErrClosed reports use of a stopped transport.
	ErrClosed = errors.New("tcp: closed")

	// ErrNoPeer reports a send to a node with no known address or
	// connection.
	ErrNoPeer = errors.New("tcp: no peer address")

	// ErrHandshake reports a connection with a bad magic or node id.
	ErrHandshake = errors.New("tcp: handshake failed")

	// ErrRingFull reports a send onto a full per-peer ring.  It is
	// prebuilt (the backpressure path must not allocate) and wraps both
	// queue.ErrFull — the public ErrQueueFull sentinel — and
	// pta.ErrTransient, so the agent's retry policy backs off and
	// re-attempts instead of failing the frame.
	ErrRingFull = fmt.Errorf("tcp: send ring full: %w (%w)", queue.ErrFull, pta.ErrTransient)

	// ErrNoCredit reports a send against an exhausted per-peer credit
	// window: the receiver has not yet recycled enough of the frames in
	// flight.  Like ErrRingFull it is prebuilt and wraps queue.ErrFull and
	// pta.ErrTransient — credit exhaustion is transient backpressure, and
	// the window refills as the receiver returns credits.
	ErrNoCredit = fmt.Errorf("tcp: peer send window exhausted: %w (%w)", queue.ErrFull, pta.ErrTransient)
)

// RedialPolicy bounds a writer's attempts to reconnect and resend after a
// broken connection, with exponential backoff between attempts.
type RedialPolicy struct {
	Attempts   int           // dial+write attempts per batch; <1 selects 5
	Backoff    time.Duration // first retry delay; <=0 selects 1ms
	MaxBackoff time.Duration // backoff cap; 0 selects 200ms
}

func (p RedialPolicy) withDefaults() RedialPolicy {
	if p.Attempts < 1 {
		p.Attempts = 5
	}
	if p.Backoff <= 0 {
		p.Backoff = time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 200 * time.Millisecond
	}
	return p
}

// Transport is one node's TCP peer transport.
type Transport struct {
	node  i2o.NodeID
	alloc pool.Allocator
	name  string
	ln    net.Listener

	mu      sync.Mutex
	conns   map[i2o.NodeID]*peerConn
	addrs   map[i2o.NodeID]string
	peers   map[i2o.NodeID]*peer
	dialing map[i2o.NodeID]*dialCall
	deliver pta.Deliver

	closed atomic.Bool
	stopc  chan struct{}
	wg     sync.WaitGroup

	unbatched  bool
	depth      int
	redial     RedialPolicy
	rendezvous bool         // large frames may bypass the ring
	autoTune   atomic.Bool  // threshold follows the coalescing metrics
	thr        atomic.Int64 // current eager/rendezvous threshold, wire bytes
	grant      int64        // receive window granted to each peer; 0 = unlimited
	flushAt    int64        // owed credits that trigger a standalone return

	// EWMA of the writer's batch shape, 1/16 fixed point, alpha 1/8.
	// Shared across per-peer writers; the races are benign (the tuner is
	// a heuristic reading approximate averages).
	avgFrames atomic.Int64
	avgBytes  atomic.Int64

	scratch sync.Pool // *bulkScratch, reused across rendezvous sends

	flt  atomic.Pointer[faults.Injector] // send path (enqueue)
	wflt atomic.Pointer[faults.Injector] // wire path (writer + bulk lane)

	nSent    *metrics.Counter
	nRecv    *metrics.Counter
	nDials   *metrics.Counter
	nAccs    *metrics.Counter
	nDrops   *metrics.Counter
	nWrites  *metrics.Counter // batch.writes: vectored writes issued
	nBatched *metrics.Counter // batch.frames: frames carried by them
	nFull    *metrics.Counter // ring.full: sends refused by backpressure
	nErrs    *metrics.Counter // sendErrors: frames dropped by the writer
	nRvSends *metrics.Counter // rendezvous.sends: frames on the bulk lane
	nRvBytes *metrics.Counter // rendezvous.bytes: wire bytes they carried
	nRvFall  *metrics.Counter // rendezvous.fallback: bulk frames via the ring
	nStalls  *metrics.Counter // credits.stalls: sends refused by ErrNoCredit
	nCredRet *metrics.Counter // credits.returned: credits accrued for peers
	nCredSnt *metrics.Counter // credits.sent: credits put on the wire
}

type peerConn struct {
	node      i2o.NodeID
	initiator i2o.NodeID // who dialed this stream (simultaneous-connect tie-break)
	c         net.Conn
	grant     uint32     // credit window the peer granted us; 0 = unlimited
	writeMu   sync.Mutex // serializes writer batches, bulk sends, unbatched sends, credit flushes
}

// peer is the per-destination send state: the descriptor ring, the writer
// draining it, and both directions of the credit account — credits is our
// remaining send window toward the peer, owed is what we have to give back
// for frames received from it.
type peer struct {
	node i2o.NodeID
	q    *ring.Queue[*i2o.Message]

	wstarted bool // writer goroutine running (guarded by Transport.mu)

	credits atomic.Int64 // send window remaining toward this peer
	limit   atomic.Int64 // granted window size; 0 = flow control off
	owed    atomic.Int64 // credits to return for frames received from it
}

// refill returns n credits to the send window, clamped at the granted
// limit: reconnect re-grants and duplicated frames can over-return, and
// the clamp keeps the window honest.
func (p *peer) refill(n int64) {
	lim := p.limit.Load()
	if lim == 0 || n <= 0 {
		return
	}
	for {
		cur := p.credits.Load()
		next := cur + n
		if next > lim {
			next = lim
		}
		if next <= cur || p.credits.CompareAndSwap(cur, next) {
			return
		}
	}
}

// bulkScratch is a rendezvous send's reusable encode state: the record
// word and header land in hdr, the iovec in vec.  Pooled so the
// steady-state bulk path allocates nothing.  bufs shares vec's backing
// array for the writev: net.Buffers.WriteTo advances its receiver through
// the slice, so the call needs a heap-resident header to escape into —
// keeping it in the pooled struct avoids a per-frame allocation that a
// stack net.Buffers would pay at the interface call.
type bulkScratch struct {
	hdr  [recordHeader]byte
	buf  []byte // contiguous staging for frames <= bulkCopyLimit
	vec  [][]byte
	bufs net.Buffers
}

// bulkCopyLimit is the largest wire size the bulk lane copies into
// contiguous scratch instead of sending as a zero-copy writev.
const bulkCopyLimit = 4096

// dialCall dedupes concurrent dials to the same peer (singleflight): the
// first sender dials, the rest wait for its result.
type dialCall struct {
	done chan struct{}
	pc   *peerConn
	err  error
}

var _ pta.PeerTransport = (*Transport)(nil)

// Config configures a Transport.
type Config struct {
	// Name overrides the route name; defaults to PTName.
	Name string

	// Listen is the accept address, e.g. "127.0.0.1:0".  Empty disables
	// listening (a pure client node).
	Listen string

	// Peers maps node identities to dial addresses.
	Peers map[i2o.NodeID]string

	// Metrics receives the transport's counters (<name>.sent, .recv,
	// .dials, .accepts, .connDrops, .batch.writes, .batch.frames,
	// .ring.full, .sendErrors, .rendezvous.sends, .rendezvous.bytes,
	// .rendezvous.fallback, .credits.stalls, .credits.returned,
	// .credits.sent and the .ring.depth, .rendezvous.threshold,
	// .credits.available gauges); defaults to metrics.Default.  Pass the
	// owning executive's registry so the counters show up in that node's
	// scrape.
	Metrics *metrics.Registry

	// Unbatched disables the per-peer send rings and the rendezvous lane:
	// every Send encodes and writes its frame synchronously under a
	// per-connection mutex.  This is the pre-ring data path, kept as the
	// measured baseline for the remote benchmarks (see doc/performance.md
	// and the `make bench-gate` regression gate).
	Unbatched bool

	// RingDepth is the per-peer send ring capacity; <=0 selects
	// ring.DefaultDepth.
	RingDepth int

	// Redial bounds writer reconnect attempts after a broken connection.
	Redial RedialPolicy

	// Threshold selects the eager/rendezvous switch point in wire bytes —
	// the small/large message split of MPICH2-over-InfiniBand (PAPERS.md).
	// Frames at or above it bypass the coalescing ring via a direct
	// vectored write when ordering allows.  Zero (the default) starts at
	// DefaultThreshold and auto-tunes from the live batch.* coalescing
	// metrics, trimming within [64, DefaultThreshold] — never above it; a
	// positive value pins the threshold; a negative value disables the
	// rendezvous lane entirely (every frame coalesces, the pre-split data
	// path).
	Threshold int

	// Credits is the receive window granted to each connecting peer: the
	// number of frames it may have in flight toward this node before its
	// sends see ErrNoCredit, returned as the receiver recycles its pooled
	// blocks (credit-based flow control, as on an InfiniBand link).  Zero
	// selects DefaultCredits; a negative value disables flow control (an
	// unlimited grant is advertised).
	Credits int
}

// New creates the transport and, when configured, starts listening.
func New(node i2o.NodeID, alloc pool.Allocator, cfg Config) (*Transport, error) {
	if cfg.Name == "" {
		cfg.Name = PTName
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.Default
	}
	if cfg.RingDepth <= 0 {
		cfg.RingDepth = ring.DefaultDepth
	}
	t := &Transport{
		node:    node,
		alloc:   alloc,
		name:    cfg.Name,
		conns:   make(map[i2o.NodeID]*peerConn),
		addrs:   make(map[i2o.NodeID]string),
		peers:   make(map[i2o.NodeID]*peer),
		dialing: make(map[i2o.NodeID]*dialCall),
		stopc:   make(chan struct{}),

		unbatched: cfg.Unbatched,
		depth:     cfg.RingDepth,
		redial:    cfg.Redial.withDefaults(),

		nSent:    cfg.Metrics.Counter(cfg.Name + ".sent"),
		nRecv:    cfg.Metrics.Counter(cfg.Name + ".recv"),
		nDials:   cfg.Metrics.Counter(cfg.Name + ".dials"),
		nAccs:    cfg.Metrics.Counter(cfg.Name + ".accepts"),
		nDrops:   cfg.Metrics.Counter(cfg.Name + ".connDrops"),
		nWrites:  cfg.Metrics.Counter(cfg.Name + ".batch.writes"),
		nBatched: cfg.Metrics.Counter(cfg.Name + ".batch.frames"),
		nFull:    cfg.Metrics.Counter(cfg.Name + ".ring.full"),
		nErrs:    cfg.Metrics.Counter(cfg.Name + ".sendErrors"),
		nRvSends: cfg.Metrics.Counter(cfg.Name + ".rendezvous.sends"),
		nRvBytes: cfg.Metrics.Counter(cfg.Name + ".rendezvous.bytes"),
		nRvFall:  cfg.Metrics.Counter(cfg.Name + ".rendezvous.fallback"),
		nStalls:  cfg.Metrics.Counter(cfg.Name + ".credits.stalls"),
		nCredRet: cfg.Metrics.Counter(cfg.Name + ".credits.returned"),
		nCredSnt: cfg.Metrics.Counter(cfg.Name + ".credits.sent"),
	}
	t.scratch.New = func() any {
		return &bulkScratch{
			buf: make([]byte, 4+bulkCopyLimit),
			vec: make([][]byte, 0, 16),
		}
	}
	thr := cfg.Threshold
	t.autoTune.Store(thr == 0)
	t.rendezvous = thr >= 0 && !cfg.Unbatched
	if thr <= 0 {
		thr = DefaultThreshold
	}
	t.thr.Store(int64(thr))
	switch {
	case cfg.Credits < 0:
		t.grant = 0
	case cfg.Credits == 0:
		t.grant = DefaultCredits
	default:
		t.grant = int64(cfg.Credits)
	}
	if t.grant > 1<<31-1 {
		t.grant = 1<<31 - 1
	}
	t.flushAt = t.grant / 4
	if t.flushAt < 1 {
		t.flushAt = 1
	}
	if t.flushAt > i2o.MaxRecordCredits {
		t.flushAt = i2o.MaxRecordCredits
	}
	cfg.Metrics.Func(cfg.Name+".ring.depth", t.ringDepth)
	cfg.Metrics.Func(cfg.Name+".rendezvous.threshold", t.thresholdGauge)
	cfg.Metrics.Func(cfg.Name+".credits.available", t.creditsAvailable)
	for n, a := range cfg.Peers {
		t.addrs[n] = a
	}
	if cfg.Listen != "" {
		ln, err := net.Listen("tcp", cfg.Listen)
		if err != nil {
			return nil, fmt.Errorf("tcp: listen %s: %w", cfg.Listen, err)
		}
		t.ln = ln
		t.wg.Add(1)
		go t.acceptLoop()
	}
	return t, nil
}

// ringDepth samples the total frames queued across all per-peer rings.
func (t *Transport) ringDepth() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int64
	for _, p := range t.peers {
		n += int64(p.q.Len())
	}
	return n
}

// thresholdGauge samples the live eager/rendezvous threshold; 0 means the
// rendezvous lane is disabled.
func (t *Transport) thresholdGauge() int64 {
	if !t.rendezvous {
		return 0
	}
	return t.thr.Load()
}

// creditsAvailable samples the remaining send window summed over peers
// with flow control active.
func (t *Transport) creditsAvailable() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int64
	for _, p := range t.peers {
		if p.limit.Load() > 0 {
			n += p.credits.Load()
		}
	}
	return n
}

// Addr returns the listening address, or "" for client-only transports.
func (t *Transport) Addr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// AddPeer maps a node to a dial address at runtime.
func (t *Transport) AddPeer(node i2o.NodeID, addr string) {
	t.mu.Lock()
	t.addrs[node] = addr
	t.mu.Unlock()
}

// SetThreshold pins the eager/rendezvous threshold at runtime: frames at
// or above n wire bytes take the direct lane, smaller ones coalesce
// through the ring.  Pinning disables the auto-tuner; n == 0 hands the
// threshold back to it (from wherever it currently sits).  No effect when
// the rendezvous lane is disabled.  This is the knob the control-plane
// autopilot turns on coalescing stats (doc/control-plane.md).
func (t *Transport) SetThreshold(n int) {
	if n > 0 {
		t.autoTune.Store(false)
		t.thr.Store(int64(n))
		return
	}
	t.autoTune.Store(true)
}

// Threshold reports the live eager/rendezvous threshold in wire bytes;
// 0 means the rendezvous lane is disabled.
func (t *Transport) Threshold() int { return int(t.thresholdGauge()) }

// SetTunable implements pta.Tunable: the remote-actuation path for the
// transport's runtime knobs.  "threshold" maps to SetThreshold.
func (t *Transport) SetTunable(key string, value int64) error {
	switch key {
	case "threshold":
		t.SetThreshold(int(value))
		return nil
	}
	return fmt.Errorf("tcp: no tunable %q", key)
}

// SetFaults installs a fault injector on the send (enqueue) path; nil
// removes it.
func (t *Transport) SetFaults(in *faults.Injector) { t.flt.Store(in) }

// SetWireFaults installs a fault injector on the wire path: the writer
// consults it before each vectored write, and a rendezvous send before
// each bulk write, each lane drawing from its own per-peer stream (the
// bulk lane's key is BulkFaultStream) so both schedules stay
// deterministic.  Drop and Error sever the live connection — a byte stream
// cannot lose a single frame, so a wire fault kills the whole stream and
// the affected frames ride the redial — and Delay stalls the sending
// goroutine (backpressure builds up behind it).  Nil removes the injector.
func (t *Transport) SetWireFaults(in *faults.Injector) { t.wflt.Store(in) }

// BulkFaultStream returns the wire-fault stream key the rendezvous lane
// draws for sends to node — distinct from the eager writer's stream (the
// bare node id), so each lane sees its own deterministic fault schedule.
// The chaos harness uses it to render bulk-lane fault plans
// (chaos.PlanString) that replay byte-identically from a seed.
func BulkFaultStream(node i2o.NodeID) uint64 { return uint64(node) | bulkLaneBit }

// Name implements pta.PeerTransport.
func (t *Transport) Name() string { return t.name }

// Start implements pta.PeerTransport.  TCP runs in task mode only: every
// connection has its own read goroutine.
func (t *Transport) Start(fn pta.Deliver) error {
	t.mu.Lock()
	t.deliver = fn
	t.mu.Unlock()
	return nil
}

// Poll implements pta.PeerTransport; TCP is push-only.
func (t *Transport) Poll(pta.Deliver, int) int { return 0 }

func (t *Transport) deliverFn() pta.Deliver {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.deliver
}

// Send implements pta.PeerTransport.  Every frame first consumes one
// credit from the peer's window (ErrNoCredit when exhausted).  Small
// frames enqueue on the peer's send ring and return immediately — the
// frame then belongs to the writer, which recycles it after the vectored
// write; a full ring fails with ErrRingFull.  Frames at or above the
// rendezvous threshold go out synchronously on the bulk lane when the ring
// is idle, falling back to the ring otherwise to preserve per-sender
// order.  On any error return the frame's buffer is released but the
// struct is left intact, so the agent's retry policy can re-attach and
// resend it.
func (t *Transport) Send(dst i2o.NodeID, m *i2o.Message) error {
	if t.closed.Load() {
		m.Release()
		return ErrClosed
	}
	dup := false
	if in := t.flt.Load(); in != nil {
		// Faults draw from the per-destination stream so the schedule for
		// each peer is deterministic whatever the dispatcher interleaving.
		switch act := in.NextFor(uint64(dst)); act.Op {
		case faults.Drop:
			m.Release()
			return nil // lost on the wire
		case faults.Delay:
			time.Sleep(act.Delay)
		case faults.Error:
			m.Release()
			return fmt.Errorf("tcp: %w", act.Err)
		case faults.Duplicate:
			dup = true
		}
	}
	if t.unbatched {
		if dup {
			if err := t.sendDirect(dst, m.Dup()); err != nil {
				m.Release()
				return err
			}
		}
		return t.sendDirect(dst, m)
	}
	p, err := t.peerFor(dst)
	if err != nil {
		m.Release()
		return err
	}
	credited := false
	if p.limit.Load() != 0 {
		if p.credits.Add(-1) < 0 {
			p.credits.Add(1)
			m.Release()
			t.nStalls.Inc()
			return ErrNoCredit
		}
		credited = true
	}
	if t.rendezvous && m.WireSize() >= int(t.thr.Load()) {
		if p.q.Idle() {
			if dup {
				// The retransmitted clone goes on the wire immediately
				// before the original, uncredited (its credit return is
				// the clamp's problem, not the window's).
				_ = t.bulkWrite(p, m.Dup())
			}
			return t.sendBulk(p, m, credited)
		}
		// Earlier frames are still on or behind the ring; ride it so
		// per-sender order holds across the lanes.
		t.nRvFall.Inc()
	}
	if dup {
		// A lost-ack retransmission: an independent clone rides the ring
		// just ahead of the original, so the peer sees the frame twice,
		// back to back.  Ring-full here simply loses the duplicate.
		d := m.Dup()
		if err := p.q.Push(d); err != nil {
			d.Release()
		}
	}
	if err := p.q.Push(m); err != nil {
		if credited {
			p.refill(1)
		}
		m.Release()
		if errors.Is(err, ring.ErrClosed) {
			return ErrClosed
		}
		t.nFull.Inc()
		return ErrRingFull
	}
	return nil
}

// sendDirect is the unbatched baseline: encode into a fresh buffer and
// write it under the connection mutex.  It neither consumes credits nor
// piggybacks returns — the baseline stays the pre-split data path — but
// its bare length prefix is a valid record word (zero credit byte).
func (t *Transport) sendDirect(dst i2o.NodeID, m *i2o.Message) error {
	defer m.Release()
	pc, err := t.connTo(dst)
	if err != nil {
		return err
	}
	size := m.WireSize()
	buf := make([]byte, 4+size)
	binary.LittleEndian.PutUint32(buf, uint32(size))
	if _, err := m.Encode(buf[4:]); err != nil {
		return err
	}
	pc.writeMu.Lock()
	_, err = pc.c.Write(buf)
	pc.writeMu.Unlock()
	if err != nil {
		t.dropConn(pc)
		// A broken connection is transient from the agent's view: the next
		// attempt redials, so the retry policy may recover the frame.
		return fmt.Errorf("tcp: write to %v: %w (%w)", dst, err, pta.ErrTransient)
	}
	t.nSent.Inc()
	return nil
}

// sendBulk is the rendezvous lane: wire faults for the bulk stream, then a
// direct vectored write.  A failed send refunds the frame's credit — the
// agent's retry re-enters Send and consumes a fresh one.
func (t *Transport) sendBulk(p *peer, m *i2o.Message, credited bool) error {
	if in := t.wflt.Load(); in != nil {
		switch act := in.NextFor(BulkFaultStream(p.node)); act.Op {
		case faults.Delay:
			time.Sleep(act.Delay)
		case faults.Drop, faults.Error:
			t.mu.Lock()
			pc := t.conns[p.node]
			t.mu.Unlock()
			if pc != nil {
				t.dropConn(pc)
			}
		case faults.Duplicate:
			_ = t.bulkWrite(p, m.Dup())
		}
	}
	err := t.bulkWrite(p, m)
	if err != nil && credited {
		p.refill(1)
	}
	return err
}

// bulkWrite puts one frame on the wire from the sender's own goroutine,
// under the connection write mutex.  Frames up to bulkCopyLimit are copied
// whole into pooled scratch and leave in a single contiguous write: at
// these sizes the memcpy is cheaper than the extra iovec bookkeeping of a
// writev (measured — the copying unbatched path beat a two-segment writev
// up to 4 KiB on this host).  Larger frames go out as a zero-copy writev
// of record word, header and body segments.  On a broken connection it
// redials and resends exactly like the writer — the record either reached
// the kernel whole or the receiver discards the torn tail with the
// connection, so the frame is never delivered twice.
func (t *Transport) bulkWrite(p *peer, m *i2o.Message) error {
	s := t.scratch.Get().(*bulkScratch)
	defer t.scratch.Put(s)
	tries := 0
	for {
		if t.closed.Load() {
			m.Release()
			return ErrClosed
		}
		pc, err := t.connTo(p.node)
		if err != nil {
			if errors.Is(err, ErrNoPeer) || errors.Is(err, ErrClosed) || !t.backoff(&tries) {
				t.nErrs.Inc()
				m.Release()
				return err
			}
			continue
		}
		size := m.WireSize()
		var (
			n    int64
			werr error
		)
		if size <= bulkCopyLimit {
			buf := s.buf[:4+size]
			binary.LittleEndian.PutUint32(buf, i2o.PackRecordWord(size, t.claimOwed(p)))
			if _, err := m.Encode(buf[4:]); err != nil {
				t.nErrs.Inc()
				m.Release()
				return err
			}
			pc.writeMu.Lock()
			wn, e := pc.c.Write(buf)
			pc.writeMu.Unlock()
			n, werr = int64(wn), e
		} else {
			h, err := m.EncodeHeader(s.hdr[4:])
			if err != nil {
				t.nErrs.Inc()
				m.Release()
				return err
			}
			binary.LittleEndian.PutUint32(s.hdr[:4], i2o.PackRecordWord(size, t.claimOwed(p)))
			s.vec = append(s.vec[:0], s.hdr[:4+h])
			s.vec = m.AppendBody(s.vec)
			s.bufs = net.Buffers(s.vec)
			pc.writeMu.Lock()
			n, werr = s.bufs.WriteTo(pc.c)
			pc.writeMu.Unlock()
			// WriteTo consumes through the shared backing array; clear
			// the leftovers so the pooled scratch never pins payload
			// blocks.
			s.bufs = nil
			for i := range s.vec {
				s.vec[i] = nil
			}
		}
		if werr != nil {
			t.dropConn(pc)
			if n < int64(4+size) {
				// Nothing delivered: a torn record dies with the stream.
				if !t.backoff(&tries) {
					t.nErrs.Inc()
					m.Release()
					return fmt.Errorf("tcp: bulk write to %v: %w (%w)", p.node, werr, pta.ErrTransient)
				}
				continue
			}
			// The kernel consumed the whole record before the error: the
			// frame may have reached the peer, so it counts as sent.
		}
		t.nSent.Inc()
		t.nRvSends.Inc()
		t.nRvBytes.Add(uint64(size))
		m.Recycle()
		return nil
	}
}

// claimOwed drains up to one record word's worth of the credits owed to a
// peer, for piggybacking on an outbound record.  Claims riding a write
// that never reaches the peer are simply lost: the connection died with
// them, and both windows reset on reconnect.
func (t *Transport) claimOwed(p *peer) int {
	if p == nil {
		return 0
	}
	for {
		o := p.owed.Load()
		if o <= 0 {
			return 0
		}
		take := o
		if take > i2o.MaxRecordCredits {
			take = i2o.MaxRecordCredits
		}
		if p.owed.CompareAndSwap(o, o-take) {
			t.nCredSnt.Add(uint64(take))
			return int(take)
		}
	}
}

// returnCredits accrues credits owed to a peer for recycled receive
// frames, flushing a standalone return when reverse traffic has not
// piggybacked them away fast enough.
func (t *Transport) returnCredits(p *peer, n int64) {
	if p == nil || n <= 0 || t.grant == 0 || t.closed.Load() {
		return
	}
	t.nCredRet.Add(uint64(n))
	if p.owed.Add(n) >= t.flushAt {
		t.flushCredits(p)
	}
}

// flushCredits writes a zero-length record carrying only a credit return —
// the one-way-traffic fallback for receivers with nothing to piggyback on.
func (t *Transport) flushCredits(p *peer) {
	t.mu.Lock()
	pc := t.conns[p.node]
	t.mu.Unlock()
	if pc == nil {
		return
	}
	take := t.claimOwed(p)
	if take == 0 {
		return
	}
	var w [4]byte
	binary.LittleEndian.PutUint32(w[:], i2o.PackRecordWord(0, take))
	pc.writeMu.Lock()
	_, err := pc.c.Write(w[:])
	pc.writeMu.Unlock()
	if err != nil {
		t.dropConn(pc)
	}
}

// stateLocked returns dst's peer state, creating it (ring, credit account,
// no writer) under t.mu.  The initial window is the connection's grant
// when one exists, optimistic DefaultCredits otherwise — adopt resets it
// to the real grant as soon as a handshake completes.
func (t *Transport) stateLocked(dst i2o.NodeID) *peer {
	p := t.peers[dst]
	if p != nil {
		return p
	}
	p = &peer{node: dst, q: ring.New[*i2o.Message](t.depth)}
	grant := int64(DefaultCredits)
	if pc := t.conns[dst]; pc != nil {
		grant = int64(pc.grant)
	}
	p.limit.Store(grant)
	p.credits.Store(grant)
	t.peers[dst] = p
	return p
}

// stateFor is stateLocked for callers that already hold a connection (the
// read loop's credit accounting); it returns nil only while stopping.
func (t *Transport) stateFor(dst i2o.NodeID) *peer {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed.Load() {
		return nil
	}
	return t.stateLocked(dst)
}

// peerFor returns dst's send state, creating it and starting its writer on
// first use.  A peer is only created when dst is reachable: a known dial
// address or an already-adopted connection.
func (t *Transport) peerFor(dst i2o.NodeID) (*peer, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed.Load() {
		return nil, ErrClosed
	}
	p := t.peers[dst]
	if p == nil {
		if _, ok := t.addrs[dst]; !ok {
			if _, ok := t.conns[dst]; !ok {
				return nil, fmt.Errorf("%w: %v", ErrNoPeer, dst)
			}
		}
		p = t.stateLocked(dst)
	}
	if !p.wstarted {
		p.wstarted = true
		t.wg.Add(1)
		go t.writeLoop(p)
	}
	return p, nil
}

// writeLoop drains one peer's ring: every frame queued since the last
// write goes out in a single writev.  The scratch buffers (batch slice,
// header arena, iovec) are reused across batches, so the steady state
// allocates nothing.  On a broken connection the loop redials and resends
// the frames the kernel never consumed, preserving order.  Credits owed to
// the peer piggyback on the record words; abandoned frames do not refund
// their senders' credits — abandonment means the connection is gone, and
// dropConn already reset the window.
func (t *Transport) writeLoop(p *peer) {
	defer t.wg.Done()
	var (
		pend  = make([]*i2o.Message, 0, t.depth) // unsent frames, oldest first
		vec   = make([][]byte, 0, 64)            // iovec under construction
		sizes = make([]int, 0, t.depth)          // per-frame record sizes
		hdr   []byte                             // prefix+header arena
		tries int                                // attempts for the current pend
	)
	for {
		if len(pend) == 0 {
			p.q.Done() // batch resolved: reopen the rendezvous gate
			var closed bool
			pend, closed = p.q.PopBatch(pend)
			if len(pend) == 0 {
				if closed {
					return
				}
				if !p.q.Wait(t.stopc) {
					t.drainPeer(p, pend)
					return
				}
				continue
			}
			tries = 0
		}
		if t.closed.Load() {
			t.failFrames(pend)
			t.drainPeer(p, pend[:0])
			return
		}

		if in := t.wflt.Load(); in != nil {
			// Wire faults are keyed by the destination peer: each writer
			// goroutine owns one peer, so its fault stream is a pure
			// function of that peer's batch sequence.
			switch act := in.NextFor(uint64(p.node)); act.Op {
			case faults.Delay:
				time.Sleep(act.Delay)
			case faults.Drop, faults.Error:
				t.mu.Lock()
				pc := t.conns[p.node]
				t.mu.Unlock()
				if pc != nil {
					t.dropConn(pc)
				}
			case faults.Duplicate:
				// Retransmit the oldest unsent frame: its clone goes on the
				// wire immediately before it, like a sender whose ack timer
				// fired just as the kernel drained the socket.
				pend = append(pend, nil)
				copy(pend[1:], pend)
				pend[0] = pend[1].Dup()
			}
		}

		pc, err := t.connTo(p.node)
		if err != nil {
			if errors.Is(err, ErrNoPeer) || errors.Is(err, ErrClosed) || !t.backoff(&tries) {
				t.failFrames(pend)
				pend = pend[:0]
			}
			continue
		}

		// Build the batch: for each frame a [record word|header] slice from
		// the arena, then the body — flat payload or SGL segments — appended
		// zero-copy, then padding.
		if need := len(pend) * recordHeader; cap(hdr) < need {
			hdr = make([]byte, 0, need)
		}
		hdr, vec, sizes = hdr[:0], vec[:0], sizes[:0]
		kept := pend[:0]
		for _, m := range pend {
			off := len(hdr)
			hdr = hdr[:off+recordHeader]
			h, err := m.EncodeHeader(hdr[off+4:])
			if err != nil {
				hdr = hdr[:off]
				t.nErrs.Inc()
				p.refill(1) // unencodable frames never fly; undo their credit
				m.Recycle()
				continue
			}
			size := m.WireSize()
			binary.LittleEndian.PutUint32(hdr[off:], i2o.PackRecordWord(size, t.claimOwed(p)))
			hdr = hdr[:off+4+h]
			vec = append(vec, hdr[off:off+4+h])
			vec = m.AppendBody(vec)
			sizes = append(sizes, 4+size)
			kept = append(kept, m)
		}
		pend = kept
		if len(pend) == 0 {
			continue
		}

		bufs := net.Buffers(vec)
		pc.writeMu.Lock()
		n, err := bufs.WriteTo(pc.c)
		pc.writeMu.Unlock()
		// WriteTo consumes through the shared backing array; clear the
		// leftover entries so the scratch iovec never pins payload blocks
		// across batches.
		for i := range vec {
			vec[i] = nil
		}
		if err != nil {
			t.dropConn(pc)
			// Frames fully consumed by the kernel may have reached the
			// peer; only the rest are retried, so a frame is never sent
			// twice and order is preserved.
			done := framesWritten(sizes, n)
			for _, m := range pend[:done] {
				m.Recycle()
			}
			t.nSent.Add(uint64(done))
			pend = append(pend[:0], pend[done:]...)
			if !t.backoff(&tries) {
				t.failFrames(pend)
				pend = pend[:0]
			}
			continue
		}
		t.nWrites.Inc()
		t.nBatched.Add(uint64(len(pend)))
		t.nSent.Add(uint64(len(pend)))
		t.tuneThreshold(len(pend), int(n))
		for _, m := range pend {
			m.Recycle()
		}
		pend = pend[:0]
		tries = 0
	}
}

// tuneThreshold adapts the eager/rendezvous split to the writer's measured
// batch shape (an EWMA over the batch.* metrics' inputs).  The signal is
// frames per writev: when batches degenerate to one or two frames, the
// ring hop amortizes nothing and the threshold halves so near-threshold
// frames take the direct lane instead; when many frames share each
// syscall again, the threshold doubles back toward its DefaultThreshold
// ceiling.  The tuner is deliberately one-sided — it trims, it never
// raises past the ceiling — and total batch bytes are deliberately not a
// trigger: a byte-heavy batch of many small frames is coalescing at its
// best, not a reason to divert traffic.  Mis-tuned states self-correct
// within a few batches.
func (t *Transport) tuneThreshold(frames, bytes int) {
	if !t.autoTune.Load() {
		return
	}
	af := t.avgFrames.Load()
	af += (int64(frames)<<4 - af) >> 3
	t.avgFrames.Store(af)
	ab := t.avgBytes.Load()
	ab += (int64(bytes)<<4 - ab) >> 3
	t.avgBytes.Store(ab)
	thr := t.thr.Load()
	switch {
	case af>>4 >= tuneFrameFloor && thr < DefaultThreshold:
		t.thr.Store(thr << 1)
	case af>>4 <= tuneFrameCeil && thr > thresholdMin:
		t.thr.Store(thr >> 1)
	}
}

// framesWritten counts the leading frames fully covered by n bytes of a
// partial write.
func framesWritten(sizes []int, n int64) int {
	done := 0
	for _, s := range sizes {
		if n < int64(s) {
			break
		}
		n -= int64(s)
		done++
	}
	return done
}

// backoff sleeps out the redial delay for the given attempt count and
// reports whether another attempt is allowed.  It wakes early on Stop.
func (t *Transport) backoff(tries *int) bool {
	*tries++
	if *tries >= t.redial.Attempts {
		return false
	}
	d := t.redial.Backoff << (*tries - 1)
	if d > t.redial.MaxBackoff {
		d = t.redial.MaxBackoff
	}
	timer := time.NewTimer(d)
	select {
	case <-timer.C:
	case <-t.stopc:
		timer.Stop()
	}
	return true
}

// failFrames drops frames the writer could not deliver.
func (t *Transport) failFrames(ms []*i2o.Message) {
	for _, m := range ms {
		t.nErrs.Inc()
		m.Recycle()
	}
}

// drainPeer empties a closed ring, recycling the stranded frames.
func (t *Transport) drainPeer(p *peer, scratch []*i2o.Message) {
	items, _ := p.q.PopBatch(scratch)
	t.failFrames(items)
	p.q.Done()
}

// connTo returns the connection to dst, dialing if necessary.  Concurrent
// callers (bulk or unbatched senders, or a writer racing the accept side)
// share a single in-flight dial.
func (t *Transport) connTo(dst i2o.NodeID) (*peerConn, error) {
	for {
		t.mu.Lock()
		if pc, ok := t.conns[dst]; ok {
			t.mu.Unlock()
			return pc, nil
		}
		if t.closed.Load() {
			t.mu.Unlock()
			return nil, ErrClosed
		}
		if d, ok := t.dialing[dst]; ok {
			t.mu.Unlock()
			<-d.done
			if d.err != nil {
				return nil, d.err
			}
			if d.pc != nil {
				return d.pc, nil
			}
			continue
		}
		addr, ok := t.addrs[dst]
		if !ok {
			t.mu.Unlock()
			return nil, fmt.Errorf("%w: %v", ErrNoPeer, dst)
		}
		d := &dialCall{done: make(chan struct{})}
		t.dialing[dst] = d
		t.mu.Unlock()

		d.pc, d.err = t.dial(dst, addr)
		t.mu.Lock()
		delete(t.dialing, dst)
		t.mu.Unlock()
		close(d.done)
		return d.pc, d.err
	}
}

// dial opens, handshakes and adopts one connection to dst.
func (t *Transport) dial(dst i2o.NodeID, addr string) (*peerConn, error) {
	c, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("tcp: dial %v at %s: %w (%w)", dst, addr, err, pta.ErrTransient)
	}
	t.nDials.Inc()
	// Send our identity and credit grant, read theirs.
	if err := t.writeHello(c); err != nil {
		c.Close()
		return nil, err
	}
	peer, grant, err := readHello(c)
	if err != nil {
		c.Close()
		return nil, err
	}
	if peer != dst {
		c.Close()
		return nil, fmt.Errorf("%w: dialed %v, got %v", ErrHandshake, dst, peer)
	}
	return t.adopt(peer, grant, c, t.node)
}

// Identify dials addr, handshakes, and adopts the connection for
// whichever node answers — the inverse of dial, which requires knowing
// the peer's identity up front.  It returns the peer's node id after
// registering addr as its dial address, so the cluster bootstrap can
// rendezvous with a seed member knowing only "host:port".  The context
// bounds the dial; the handshake itself rides the connection's own
// deadline handling.
func (t *Transport) Identify(ctx context.Context, addr string) (i2o.NodeID, error) {
	if t.closed.Load() {
		return 0, ErrClosed
	}
	d := net.Dialer{Timeout: dialTimeout}
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return 0, fmt.Errorf("tcp: identify %s: %w (%w)", addr, err, pta.ErrTransient)
	}
	t.nDials.Inc()
	if err := t.writeHello(c); err != nil {
		c.Close()
		return 0, err
	}
	peer, grant, err := readHello(c)
	if err != nil {
		c.Close()
		return 0, err
	}
	if peer == t.node {
		c.Close()
		return 0, fmt.Errorf("%w: %s is ourselves (node %v)", ErrHandshake, addr, peer)
	}
	t.AddPeer(peer, addr)
	if _, err := t.adopt(peer, grant, c, t.node); err != nil {
		return 0, err
	}
	return peer, nil
}

func (t *Transport) writeHello(c net.Conn) error {
	var hello [helloSize]byte
	copy(hello[:8], magic[:])
	binary.LittleEndian.PutUint32(hello[8:], uint32(t.node))
	binary.LittleEndian.PutUint32(hello[12:], uint32(t.grant))
	if _, err := c.Write(hello[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	return nil
}

func readHello(c net.Conn) (i2o.NodeID, uint32, error) {
	var hello [helloSize]byte
	if _, err := io.ReadFull(c, hello[:]); err != nil {
		return 0, 0, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	if [8]byte(hello[:8]) != magic {
		return 0, 0, fmt.Errorf("%w: bad magic", ErrHandshake)
	}
	node := i2o.NodeID(binary.LittleEndian.Uint32(hello[8:]))
	grant := binary.LittleEndian.Uint32(hello[12:])
	return node, grant, nil
}

// adopt registers a live connection and starts its read loop.  On a
// simultaneous-connect race — both nodes dialed each other at once, so two
// streams exist — both sides apply the same tie-break and keep the stream
// dialed by the lower node id; picking deterministically means the peers
// agree on the surviving stream instead of each closing the one the other
// kept (which churns connections until the race happens to resolve).  When
// the same initiator shows up twice the newer stream wins: the initiator
// only redials after dropping the old one, so the old one is dead.
//
// Adoption also resets the peer's credit account to the fresh grant:
// credits consumed or owed on the dead stream died with it, and both sides
// re-grant on reconnect so the windows stay in agreement.
func (t *Transport) adopt(peer i2o.NodeID, grant uint32, c net.Conn, initiator i2o.NodeID) (*peerConn, error) {
	pc := &peerConn{node: peer, initiator: initiator, c: c, grant: grant}
	t.mu.Lock()
	if t.closed.Load() {
		t.mu.Unlock()
		c.Close()
		return nil, ErrClosed
	}
	if existing, ok := t.conns[peer]; ok {
		keepNew := existing.initiator == pc.initiator
		if !keepNew {
			low := min(t.node, peer)
			keepNew = pc.initiator == low
		}
		if !keepNew {
			t.mu.Unlock()
			c.Close()
			return existing, nil
		}
		delete(t.conns, peer)
		t.conns[peer] = pc
		if p := t.peers[peer]; p != nil {
			p.limit.Store(int64(grant))
			p.credits.Store(int64(grant))
			p.owed.Store(0)
		}
		t.mu.Unlock()
		existing.c.Close() // its readLoop exits; dropConn is a no-op now
	} else {
		t.conns[peer] = pc
		if p := t.peers[peer]; p != nil {
			p.limit.Store(int64(grant))
			p.credits.Store(int64(grant))
			p.owed.Store(0)
		}
		t.mu.Unlock()
	}
	t.wg.Add(1)
	go t.readLoop(pc)
	return pc, nil
}

// Conns returns the number of live identified connections.  Each one's
// readLoop holds one pooled receive block while the connection is open, so
// pool-population audits (the chaos harness's leak checker) subtract the
// live-connection count before comparing against a baseline: failover and
// redial legitimately move it.
func (t *Transport) Conns() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.conns)
}

// dropConn retires a dead connection.  The credit account dies with the
// stream: consumed credits whose frames were lost in flight would
// otherwise leak the window shut — and an exhausted window with no live
// connection would refuse every Send before anything redials, wedging the
// link for good.  Resetting here is safe because the next handshake
// re-grants both sides anyway.
func (t *Transport) dropConn(pc *peerConn) {
	t.mu.Lock()
	dropped := t.conns[pc.node] == pc
	if dropped {
		delete(t.conns, pc.node)
		if p := t.peers[pc.node]; p != nil {
			p.credits.Store(p.limit.Load())
			p.owed.Store(0)
		}
	}
	t.mu.Unlock()
	if dropped {
		t.nDrops.Inc()
	}
	pc.c.Close()
}

func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			peer, grant, err := readHello(c)
			if err != nil {
				c.Close()
				return
			}
			if err := t.writeHello(c); err != nil {
				c.Close()
				return
			}
			t.nAccs.Inc()
			_, _ = t.adopt(peer, grant, c, peer)
		}()
	}
}

// recvBlock wraps one pooled receive block in the transport's credit
// accounting: frames decoded from the block retain the wrapper instead of
// the block, and every consumer Release recycles one frame back to the
// pool and returns its credit to the sending peer right away.  Returning
// per frame rather than per block keeps the window liquid — one long-held
// frame (a pending request payload, say) must not pin the credits of the
// thousands of short-lived frames its block also served.  One wrapper
// serves the whole block, so the per-frame receive path stays
// allocation-free.
type recvBlock struct {
	t    *Transport
	p    *peer
	buf  *pool.Buffer
	refs atomic.Int64
}

func (b *recvBlock) Retain() { b.refs.Add(1) }

// Release is the frame consumers' hook: one frame done, one credit back.
// Retain/Release pairs beyond the decode-time reference (agent retries,
// duplicated frames) over-return; the sender's window clamp absorbs that.
func (b *recvBlock) Release() {
	b.t.returnCredits(b.p, 1)
	b.drop()
}

// drop releases a reference without a credit return — the read loop's own
// block ownership is not a frame.
func (b *recvBlock) drop() {
	if b.refs.Add(-1) == 0 {
		b.buf.Release()
	}
}

// readLoop streams records out of one connection.  Bytes land in a 256 KB
// pool block; frames decode in place and retain the block (via its credit
// wrapper), so one block backs every frame it holds and recycles itself
// when the last consumer releases.  The loop rewinds the block only when
// it is the sole owner and moves a partial record to a fresh block
// otherwise — delivered payloads are never overwritten.  Credit returns
// arriving on record words refill the send window toward this peer.
func (t *Transport) readLoop(pc *peerConn) {
	defer t.wg.Done()
	defer t.dropConn(pc)
	p := t.stateFor(pc.node) // nil only while stopping
	var (
		rb         *recvBlock
		data       []byte
		start, end int
	)
	defer func() {
		if rb != nil {
			rb.drop()
		}
	}()
	newBlock := func() bool {
		b, err := t.alloc.Alloc(readBlockSize)
		if err != nil {
			return false
		}
		nrb := &recvBlock{t: t, p: p, buf: b}
		nrb.refs.Store(1)
		nd := b.Bytes()
		n := 0
		if rb != nil {
			n = copy(nd, data[start:end])
			rb.drop()
		}
		rb, data, start, end = nrb, nd, 0, n
		return true
	}
	if !newBlock() {
		return
	}
	for {
		// Decode every complete record in the block.
		for end-start >= 4 {
			size, cred := i2o.UnpackRecordWord(binary.LittleEndian.Uint32(data[start:]))
			if size == 0 {
				if cred == 0 {
					return // all-zero word: protocol violation
				}
				// Standalone credit return.
				if p != nil {
					p.refill(int64(cred))
				}
				start += 4
				continue
			}
			if size < i2o.StandardHeaderSize || size > i2o.MaxWireSize {
				return // protocol violation; drop the connection
			}
			if end-start < 4+size {
				break
			}
			if cred > 0 && p != nil {
				p.refill(int64(cred)) // piggybacked return
			}
			m, _, err := i2o.DecodeAcquired(data[start+4 : start+4+size])
			if err != nil {
				return
			}
			rb.Retain()
			m.AttachBuffer(rb)
			start += 4 + size
			fn := t.deliverFn()
			if fn == nil {
				m.Release()
				continue
			}
			t.nRecv.Inc()
			if err := fn(pc.node, m); err != nil && t.closed.Load() {
				return
			}
		}
		// Make room for the next read.
		if start == end {
			if rb.refs.Load() == 1 {
				start, end = 0, 0 // sole owner: reuse in place
			} else if end == len(data) {
				if !newBlock() { // block pinned by in-flight frames
					return
				}
			}
		} else {
			span := 4
			if end-start >= 4 {
				sz, _ := i2o.UnpackRecordWord(binary.LittleEndian.Uint32(data[start:]))
				span = 4 + sz
			}
			if start+span > len(data) {
				if !newBlock() { // partial record cannot complete in place
					return
				}
			}
		}
		n, err := pc.c.Read(data[end:])
		end += n
		if err != nil && n == 0 {
			return
		}
	}
}

// Stats reports frames sent and received.
func (t *Transport) Stats() (sent, received uint64) {
	return t.nSent.Value(), t.nRecv.Value()
}

// Stop implements pta.PeerTransport.  Frames still queued on send rings
// are released, not flushed: by the time the executive stops a transport
// their initiators have failed over or timed out already.
func (t *Transport) Stop() error {
	if t.closed.Swap(true) {
		return nil
	}
	close(t.stopc)
	if t.ln != nil {
		t.ln.Close()
	}
	t.mu.Lock()
	for _, p := range t.peers {
		p.q.Close()
	}
	for _, pc := range t.conns {
		pc.c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}
