// Package tcp implements a peer transport over TCP/IP.  In the paper's
// benchmark system (§5) the TCP PT carried configuration and control
// traffic next to the low-latency Myrinet PT ("another PT thread was
// handling TCP communication for configuration and control purposes");
// here it also serves as the transport for genuinely distributed
// deployments of the cmd/xdaqd node daemon.
//
// Wire format per connection: an 12-byte handshake (8-byte magic, 4-byte
// node id little-endian), then a stream of records, each a 4-byte frame
// length followed by the encoded I2O frame.  Received payloads land
// directly in executive pool blocks, preserving zero-copy from the socket
// buffer onward.
package tcp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"time"

	"xdaq/internal/i2o"
	"xdaq/internal/metrics"
	"xdaq/internal/pool"
	"xdaq/internal/pta"
	"xdaq/internal/transport/faults"
)

// PTName is the default route name.
const PTName = "pt.tcp"

var magic = [8]byte{'X', 'D', 'A', 'Q', 'I', '2', 'O', '1'}

// Errors.
var (
	// ErrClosed reports use of a stopped transport.
	ErrClosed = errors.New("tcp: closed")

	// ErrNoPeer reports a send to a node with no known address or
	// connection.
	ErrNoPeer = errors.New("tcp: no peer address")

	// ErrHandshake reports a connection with a bad magic or node id.
	ErrHandshake = errors.New("tcp: handshake failed")
)

// Transport is one node's TCP peer transport.
type Transport struct {
	node  i2o.NodeID
	alloc pool.Allocator
	name  string
	ln    net.Listener

	mu      sync.Mutex
	conns   map[i2o.NodeID]*peerConn
	addrs   map[i2o.NodeID]string
	deliver pta.Deliver

	closed atomic.Bool
	wg     sync.WaitGroup

	flt atomic.Pointer[faults.Injector]

	nSent  *metrics.Counter
	nRecv  *metrics.Counter
	nDials *metrics.Counter
	nAccs  *metrics.Counter
	nDrops *metrics.Counter
}

type peerConn struct {
	node    i2o.NodeID
	c       net.Conn
	writeMu sync.Mutex
}

var _ pta.PeerTransport = (*Transport)(nil)

// Config configures a Transport.
type Config struct {
	// Name overrides the route name; defaults to PTName.
	Name string

	// Listen is the accept address, e.g. "127.0.0.1:0".  Empty disables
	// listening (a pure client node).
	Listen string

	// Peers maps node identities to dial addresses.
	Peers map[i2o.NodeID]string

	// Metrics receives the transport's counters (<name>.sent, .recv,
	// .dials, .accepts, .connDrops); defaults to metrics.Default.  Pass
	// the owning executive's registry so the counters show up in that
	// node's scrape.
	Metrics *metrics.Registry
}

// New creates the transport and, when configured, starts listening.
func New(node i2o.NodeID, alloc pool.Allocator, cfg Config) (*Transport, error) {
	if cfg.Name == "" {
		cfg.Name = PTName
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.Default
	}
	t := &Transport{
		node:  node,
		alloc: alloc,
		name:  cfg.Name,
		conns: make(map[i2o.NodeID]*peerConn),
		addrs: make(map[i2o.NodeID]string),

		nSent:  cfg.Metrics.Counter(cfg.Name + ".sent"),
		nRecv:  cfg.Metrics.Counter(cfg.Name + ".recv"),
		nDials: cfg.Metrics.Counter(cfg.Name + ".dials"),
		nAccs:  cfg.Metrics.Counter(cfg.Name + ".accepts"),
		nDrops: cfg.Metrics.Counter(cfg.Name + ".connDrops"),
	}
	for n, a := range cfg.Peers {
		t.addrs[n] = a
	}
	if cfg.Listen != "" {
		ln, err := net.Listen("tcp", cfg.Listen)
		if err != nil {
			return nil, fmt.Errorf("tcp: listen %s: %w", cfg.Listen, err)
		}
		t.ln = ln
		t.wg.Add(1)
		go t.acceptLoop()
	}
	return t, nil
}

// Addr returns the listening address, or "" for client-only transports.
func (t *Transport) Addr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// AddPeer maps a node to a dial address at runtime.
func (t *Transport) AddPeer(node i2o.NodeID, addr string) {
	t.mu.Lock()
	t.addrs[node] = addr
	t.mu.Unlock()
}

// SetFaults installs a fault injector on the send path; nil removes it.
func (t *Transport) SetFaults(in *faults.Injector) { t.flt.Store(in) }

// Name implements pta.PeerTransport.
func (t *Transport) Name() string { return t.name }

// Start implements pta.PeerTransport.  TCP runs in task mode only: every
// connection has its own read goroutine.
func (t *Transport) Start(fn pta.Deliver) error {
	t.mu.Lock()
	t.deliver = fn
	t.mu.Unlock()
	return nil
}

// Poll implements pta.PeerTransport; TCP is push-only.
func (t *Transport) Poll(pta.Deliver, int) int { return 0 }

func (t *Transport) deliverFn() pta.Deliver {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.deliver
}

// Send implements pta.PeerTransport.
func (t *Transport) Send(dst i2o.NodeID, m *i2o.Message) error {
	defer m.Release()
	if t.closed.Load() {
		return ErrClosed
	}
	if in := t.flt.Load(); in != nil {
		switch act := in.Next(); act.Op {
		case faults.Drop:
			return nil // lost on the wire
		case faults.Delay:
			time.Sleep(act.Delay)
		case faults.Error:
			return fmt.Errorf("tcp: %w", act.Err)
		}
	}
	pc, err := t.connTo(dst)
	if err != nil {
		return err
	}
	size := m.WireSize()
	buf := make([]byte, 4+size)
	binary.LittleEndian.PutUint32(buf, uint32(size))
	if _, err := m.Encode(buf[4:]); err != nil {
		return err
	}
	pc.writeMu.Lock()
	_, err = pc.c.Write(buf)
	pc.writeMu.Unlock()
	if err != nil {
		t.dropConn(pc)
		// A broken connection is transient from the agent's view: the next
		// attempt redials, so the retry policy may recover the frame.
		return fmt.Errorf("tcp: write to %v: %w (%w)", dst, err, pta.ErrTransient)
	}
	t.nSent.Inc()
	return nil
}

// connTo returns the connection to dst, dialing if necessary.
func (t *Transport) connTo(dst i2o.NodeID) (*peerConn, error) {
	t.mu.Lock()
	if pc, ok := t.conns[dst]; ok {
		t.mu.Unlock()
		return pc, nil
	}
	addr, ok := t.addrs[dst]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNoPeer, dst)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcp: dial %v at %s: %w (%w)", dst, addr, err, pta.ErrTransient)
	}
	t.nDials.Inc()
	// Send our identity, read theirs.
	var hello [12]byte
	copy(hello[:8], magic[:])
	binary.LittleEndian.PutUint32(hello[8:], uint32(t.node))
	if _, err := c.Write(hello[:]); err != nil {
		c.Close()
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	peer, err := readHello(c)
	if err != nil {
		c.Close()
		return nil, err
	}
	if peer != dst {
		c.Close()
		return nil, fmt.Errorf("%w: dialed %v, got %v", ErrHandshake, dst, peer)
	}
	return t.adopt(peer, c)
}

func readHello(c net.Conn) (i2o.NodeID, error) {
	var hello [12]byte
	if _, err := io.ReadFull(c, hello[:]); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	if [8]byte(hello[:8]) != magic {
		return 0, fmt.Errorf("%w: bad magic", ErrHandshake)
	}
	return i2o.NodeID(binary.LittleEndian.Uint32(hello[8:])), nil
}

// adopt registers a live connection and starts its read loop.  On a
// simultaneous-connect race the existing connection wins.
func (t *Transport) adopt(peer i2o.NodeID, c net.Conn) (*peerConn, error) {
	pc := &peerConn{node: peer, c: c}
	t.mu.Lock()
	if existing, ok := t.conns[peer]; ok {
		t.mu.Unlock()
		c.Close()
		return existing, nil
	}
	t.conns[peer] = pc
	t.mu.Unlock()
	t.wg.Add(1)
	go t.readLoop(pc)
	return pc, nil
}

func (t *Transport) dropConn(pc *peerConn) {
	t.mu.Lock()
	dropped := t.conns[pc.node] == pc
	if dropped {
		delete(t.conns, pc.node)
	}
	t.mu.Unlock()
	if dropped {
		t.nDrops.Inc()
	}
	pc.c.Close()
}

func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			peer, err := readHello(c)
			if err != nil {
				c.Close()
				return
			}
			var hello [12]byte
			copy(hello[:8], magic[:])
			binary.LittleEndian.PutUint32(hello[8:], uint32(t.node))
			if _, err := c.Write(hello[:]); err != nil {
				c.Close()
				return
			}
			t.nAccs.Inc()
			_, _ = t.adopt(peer, c)
		}()
	}
}

func (t *Transport) readLoop(pc *peerConn) {
	defer t.wg.Done()
	defer t.dropConn(pc)
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(pc.c, lenBuf[:]); err != nil {
			return
		}
		size := int(binary.LittleEndian.Uint32(lenBuf[:]))
		if size < i2o.StandardHeaderSize || size > i2o.MaxWireSize {
			return // protocol violation; drop the connection
		}
		block, err := t.alloc.Alloc(size)
		if err != nil {
			return
		}
		if _, err := io.ReadFull(pc.c, block.Bytes()); err != nil {
			block.Release()
			return
		}
		m, _, err := i2o.DecodeAcquired(block.Bytes())
		if err != nil {
			block.Release()
			return
		}
		m.AttachBuffer(block)
		fn := t.deliverFn()
		if fn == nil {
			m.Release()
			continue
		}
		t.nRecv.Inc()
		if err := fn(pc.node, m); err != nil && t.closed.Load() {
			return
		}
	}
}

// Stats reports frames sent and received.
func (t *Transport) Stats() (sent, received uint64) {
	return t.nSent.Value(), t.nRecv.Value()
}

// Stop implements pta.PeerTransport.
func (t *Transport) Stop() error {
	if t.closed.Swap(true) {
		return nil
	}
	if t.ln != nil {
		t.ln.Close()
	}
	t.mu.Lock()
	for _, pc := range t.conns {
		pc.c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}
