package bsa

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"xdaq/internal/executive"
	"xdaq/internal/i2o"
	"xdaq/internal/pta"
	"xdaq/internal/transport/loopback"
)

func localVolume(t *testing.T, blockSize int, blocks uint64) (*Device, *Client) {
	t.Helper()
	e := executive.New(executive.Options{
		Name: "bsa", Node: 1,
		RequestTimeout: 2 * time.Second,
		Logf:           func(string, ...any) {},
	})
	t.Cleanup(e.Close)
	vol := New(0, blockSize, blocks)
	id, err := e.Plug(vol.Module())
	if err != nil {
		t.Fatal(err)
	}
	return vol, NewClient(e, id, vol.BlockSize())
}

func TestReadWriteRoundTrip(t *testing.T) {
	vol, c := localVolume(t, 512, 128)
	data := bytes.Repeat([]byte{0xAB}, 3*512)
	if err := c.Write(10, data); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read back mismatch")
	}
	if vol.Written() != 3 {
		t.Fatalf("written %d", vol.Written())
	}
}

func TestUnwrittenBlocksReadZero(t *testing.T) {
	_, c := localVolume(t, 256, 16)
	got, err := c.Read(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("byte %d = %#02x", i, b)
		}
	}
}

func TestPartialOverwrite(t *testing.T) {
	_, c := localVolume(t, 64, 8)
	first := bytes.Repeat([]byte{1}, 2*64)
	if err := c.Write(0, first); err != nil {
		t.Fatal(err)
	}
	second := bytes.Repeat([]byte{2}, 64)
	if err := c.Write(1, second); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[64] != 2 {
		t.Fatalf("blocks %v %v", got[0], got[64])
	}
}

func TestRangeAndValidationErrors(t *testing.T) {
	_, c := localVolume(t, 128, 4)
	cases := []struct {
		name string
		call func() error
		want string
	}{
		{"read past end", func() error { _, err := c.Read(3, 2); return err }, "out of range"},
		{"read zero blocks", func() error { _, err := c.Read(0, 0); return err }, "malformed"},
		{"read too many", func() error { _, err := c.Read(0, MaxIOBlocks+1); return err }, "malformed"},
		{"write past end", func() error { return c.Write(4, make([]byte, 128)) }, "out of range"},
		{"write misaligned", func() error { return c.Write(0, make([]byte, 100)) }, "malformed"},
		{"write empty", func() error { return c.Write(0, nil) }, "malformed"},
	}
	for _, tc := range cases {
		err := tc.call()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: %v", tc.name, err)
		}
		var rec *i2o.FailRecord
		if !errors.As(err, &rec) {
			t.Errorf("%s: error is %T, want fail reply", tc.name, err)
		}
	}
}

func TestFlushAndStatus(t *testing.T) {
	_, c := localVolume(t, 512, 64)
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c.Write(1, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st["blocks"] != int64(64) || st["blocksize"] != int64(512) ||
		st["flushes"] != uint64(1) || st["stored"] != int64(1) || st["written"] != uint64(1) {
		t.Fatalf("status %v", st)
	}
}

func TestRemoteVolume(t *testing.T) {
	fabric := loopback.NewFabric()
	mk := func(id i2o.NodeID) *executive.Executive {
		e := executive.New(executive.Options{
			Name: "bsa", Node: id,
			RequestTimeout: 2 * time.Second,
			Logf:           func(string, ...any) {},
		})
		agent, err := pta.New(e)
		if err != nil {
			t.Fatal(err)
		}
		ep, err := fabric.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := agent.Register(ep, pta.Task); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			agent.Close()
			e.Close()
		})
		e.SetRoute(1, loopback.DefaultName)
		e.SetRoute(2, loopback.DefaultName)
		return e
	}
	server := mk(1)
	client := mk(2)
	vol := New(0, 1024, 32)
	if _, err := server.Plug(vol.Module()); err != nil {
		t.Fatal(err)
	}
	target, err := client.Discover(1, Class, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(client, target, 1024)
	data := bytes.Repeat([]byte{0x5C}, 1024)
	if err := c.Write(7, data); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("remote read mismatch")
	}
	// The device itself never knew the caller was remote.
	if vol.Written() != 1 {
		t.Fatalf("written %d", vol.Written())
	}
}

func TestQuickVolumeModel(t *testing.T) {
	// The device must behave like a flat byte array under random aligned
	// reads and writes.
	const blockSize, blocks = 32, 16
	_, c := localVolume(t, blockSize, blocks)
	model := make([]byte, blockSize*blocks)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for op := 0; op < 10; op++ {
			lba := uint64(r.Intn(blocks))
			count := 1 + r.Intn(3)
			if int(lba)+count > blocks {
				count = blocks - int(lba)
			}
			if r.Intn(2) == 0 {
				data := make([]byte, count*blockSize)
				r.Read(data)
				if err := c.Write(lba, data); err != nil {
					return false
				}
				copy(model[int(lba)*blockSize:], data)
			} else {
				got, err := c.Read(lba, count)
				if err != nil {
					return false
				}
				if !bytes.Equal(got, model[int(lba)*blockSize:int(lba)*blockSize+count*blockSize]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultGeometry(t *testing.T) {
	vol := New(3, 0, 10)
	if vol.BlockSize() != DefaultBlockSize || vol.Blocks() != 10 {
		t.Fatalf("geometry %d/%d", vol.BlockSize(), vol.Blocks())
	}
	if vol.Module().Class() != Class || vol.Module().Instance() != 3 {
		t.Fatal("module identity")
	}
	if vol.Module().Params().Int("blocksize", 0) != DefaultBlockSize {
		t.Fatal("blocksize parameter")
	}
}
