// Package bsa implements an I2O Block Storage device class — the example
// the paper reaches for when it explains what makes a module a Device
// Driver Module (§3.3): "each concrete I2O device has to implement
// executive and utility events … Finally it must implement the interface
// of one of the I2O devices, e.g. the Block Storage or Tape device
// class."
//
// The device serves block read/write/flush operations over private
// frames against an in-memory volume (sparse, so large virtual volumes
// cost only what is written).  A Client wraps the frame protocol for
// callers.  Like every module in the system it is fully remote-capable:
// plug it on one node, access it from another through a proxy TiD.
package bsa

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"xdaq/internal/device"
	"xdaq/internal/i2o"
)

// Class is the device class name.
const Class = "i2o.bsa"

// Private function codes, following the I2O BSA operation set.
const (
	// XFuncRead reads whole blocks: request carries lba (uint64) and
	// count (uint32); the reply carries count*BlockSize data bytes.
	XFuncRead uint16 = 0x30

	// XFuncWrite writes whole blocks: request carries lba (uint64) and
	// the data (a multiple of the block size); the reply is empty.
	XFuncWrite uint16 = 0x31

	// XFuncFlush commits outstanding writes (a no-op for the in-memory
	// volume, counted for inspection).
	XFuncFlush uint16 = 0x37

	// XFuncStatus reports volume geometry and usage: blocksize, blocks,
	// written, flushes as a parameter list.
	XFuncStatus uint16 = 0x38
)

// Geometry limits.
const (
	// DefaultBlockSize is used when the device is built with size <= 0.
	DefaultBlockSize = 4096

	// MaxIOBlocks bounds one request so replies fit a single frame.
	MaxIOBlocks = 32
)

// Errors.
var (
	// ErrOutOfRange reports an access past the end of the volume.
	ErrOutOfRange = errors.New("bsa: block out of range")

	// ErrBadRequest reports a malformed operation payload.
	ErrBadRequest = errors.New("bsa: malformed request")
)

// Device is one block storage volume.
type Device struct {
	dev       *device.Device
	blockSize int
	blocks    uint64

	mu      sync.RWMutex
	data    map[uint64][]byte // sparse: lba -> block
	written uint64
	flushes uint64
}

// New builds volume `instance` with the given geometry (DefaultBlockSize
// when size <= 0).
func New(instance int, blockSize int, blocks uint64) *Device {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	b := &Device{
		blockSize: blockSize,
		blocks:    blocks,
		data:      make(map[uint64][]byte),
	}
	b.dev = device.New(Class, instance)
	b.dev.Params().Set("blocksize", int64(blockSize))
	b.dev.Params().Set("blocks", int64(blocks))
	b.dev.Bind(XFuncRead, b.handleRead)
	b.dev.Bind(XFuncWrite, b.handleWrite)
	b.dev.Bind(XFuncFlush, b.handleFlush)
	b.dev.Bind(XFuncStatus, b.handleStatus)
	return b
}

// Module returns the device module to plug into an executive.
func (b *Device) Module() *device.Device { return b.dev }

// BlockSize returns the volume's block size in bytes.
func (b *Device) BlockSize() int { return b.blockSize }

// Blocks returns the volume's capacity in blocks.
func (b *Device) Blocks() uint64 { return b.blocks }

// Written returns how many block writes were served.
func (b *Device) Written() uint64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.written
}

func parseExtent(payload []byte) (lba uint64, rest []byte, err error) {
	if len(payload) < 12 {
		return 0, nil, fmt.Errorf("%w: %d bytes", ErrBadRequest, len(payload))
	}
	return binary.LittleEndian.Uint64(payload), payload[12:], nil
}

func (b *Device) checkRange(lba uint64, count int) error {
	if count <= 0 || count > MaxIOBlocks {
		return fmt.Errorf("%w: %d blocks (max %d)", ErrBadRequest, count, MaxIOBlocks)
	}
	if lba+uint64(count) > b.blocks || lba+uint64(count) < lba {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrOutOfRange, lba, lba+uint64(count), b.blocks)
	}
	return nil
}

func (b *Device) handleRead(ctx *device.Context, m *i2o.Message) error {
	lba, _, err := parseExtent(m.Payload)
	if err != nil {
		return err
	}
	count := int(binary.LittleEndian.Uint32(m.Payload[8:]))
	if err := b.checkRange(lba, count); err != nil {
		return err
	}
	buf, err := ctx.Host.Alloc(count * b.blockSize)
	if err != nil {
		return err
	}
	out := buf.Bytes()
	b.mu.RLock()
	for i := 0; i < count; i++ {
		dst := out[i*b.blockSize : (i+1)*b.blockSize]
		if block, ok := b.data[lba+uint64(i)]; ok {
			copy(dst, block)
		} else {
			for j := range dst {
				dst[j] = 0 // unwritten blocks read as zero
			}
		}
	}
	b.mu.RUnlock()
	rep := i2o.NewReply(m)
	rep.Payload = out
	rep.AttachBuffer(buf)
	return ctx.Host.Send(rep)
}

func (b *Device) handleWrite(ctx *device.Context, m *i2o.Message) error {
	lba, data, err := parseExtent(m.Payload)
	if err != nil {
		return err
	}
	if len(data)%b.blockSize != 0 || len(data) == 0 {
		return fmt.Errorf("%w: write of %d bytes with %d-byte blocks", ErrBadRequest, len(data), b.blockSize)
	}
	count := len(data) / b.blockSize
	if err := b.checkRange(lba, count); err != nil {
		return err
	}
	b.mu.Lock()
	for i := 0; i < count; i++ {
		block := make([]byte, b.blockSize)
		copy(block, data[i*b.blockSize:])
		b.data[lba+uint64(i)] = block
		b.written++
	}
	b.mu.Unlock()
	return device.ReplyIfExpected(ctx, m, nil)
}

func (b *Device) handleFlush(ctx *device.Context, m *i2o.Message) error {
	b.mu.Lock()
	b.flushes++
	b.mu.Unlock()
	return device.ReplyIfExpected(ctx, m, nil)
}

func (b *Device) handleStatus(ctx *device.Context, m *i2o.Message) error {
	b.mu.RLock()
	params := []i2o.Param{
		{Key: "blocks", Value: int64(b.blocks)},
		{Key: "blocksize", Value: int64(b.blockSize)},
		{Key: "flushes", Value: b.flushes},
		{Key: "stored", Value: int64(len(b.data))},
		{Key: "written", Value: b.written},
	}
	b.mu.RUnlock()
	payload, err := i2o.EncodeParams(params)
	if err != nil {
		return err
	}
	return device.ReplyIfExpected(ctx, m, payload)
}

// Client wraps the frame protocol for callers, local or remote.
type Client struct {
	host      device.Host
	target    i2o.TID
	blockSize int
}

// NewClient builds a client for the volume at target.  blockSize must
// match the volume's (read it via Status or the "blocksize" parameter).
func NewClient(host device.Host, target i2o.TID, blockSize int) *Client {
	return &Client{host: host, target: target, blockSize: blockSize}
}

func (c *Client) request(xfunc uint16, payload []byte) (*i2o.Message, error) {
	return c.host.Request(&i2o.Message{
		Priority:  i2o.PriorityNormal,
		Target:    c.target,
		Initiator: i2o.TIDExecutive,
		Function:  i2o.FuncPrivate,
		Org:       i2o.OrgXDAQ,
		XFunction: xfunc,
		Payload:   payload,
	})
}

// Read returns count blocks starting at lba.
func (c *Client) Read(lba uint64, count int) ([]byte, error) {
	req := make([]byte, 12)
	binary.LittleEndian.PutUint64(req, lba)
	binary.LittleEndian.PutUint32(req[8:], uint32(count))
	rep, err := c.request(XFuncRead, req)
	if err != nil {
		return nil, err
	}
	out := append([]byte(nil), rep.Payload...)
	rep.Release()
	if len(out) != count*c.blockSize {
		return nil, fmt.Errorf("%w: read returned %d bytes", ErrBadRequest, len(out))
	}
	return out, nil
}

// Write stores data (a multiple of the block size) starting at lba.
func (c *Client) Write(lba uint64, data []byte) error {
	req := make([]byte, 12+len(data))
	binary.LittleEndian.PutUint64(req, lba)
	copy(req[12:], data)
	rep, err := c.request(XFuncWrite, req)
	if err != nil {
		return err
	}
	rep.Release()
	return nil
}

// Flush commits outstanding writes.
func (c *Client) Flush() error {
	rep, err := c.request(XFuncFlush, nil)
	if err != nil {
		return err
	}
	rep.Release()
	return nil
}

// Status returns the volume's reported parameters.
func (c *Client) Status() (map[string]any, error) {
	rep, err := c.request(XFuncStatus, nil)
	if err != nil {
		return nil, err
	}
	defer rep.Release()
	params, err := i2o.DecodeParams(rep.Payload)
	if err != nil {
		return nil, err
	}
	out := make(map[string]any, len(params))
	for _, p := range params {
		out[p.Key] = p.Value
	}
	return out, nil
}
