package modules

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"xdaq/internal/daq"
	"xdaq/internal/executive"
	"xdaq/internal/i2o"
	"xdaq/internal/storage"
)

func newExec(t *testing.T) *executive.Executive {
	t.Helper()
	e := executive.New(executive.Options{
		Name: "mods", Node: 1,
		RequestTimeout: 2 * time.Second,
		Logf:           func(string, ...any) {},
	})
	t.Cleanup(e.Close)
	return e
}

func TestAllStandardModulesRegistered(t *testing.T) {
	want := map[string]bool{"echo": false, "daq.evm": false, "daq.ru": false, "daq.bu": false, "i2o.bsa": false, "storage.sw": false}
	for _, name := range executive.Modules() {
		if _, ok := want[name]; ok {
			want[name] = true
		}
	}
	for name, found := range want {
		if !found {
			t.Errorf("module %q not registered", name)
		}
	}
}

// The storage.sw module opens its segment at plug time and closes it
// cleanly (footer written) at unplug, so a controller can deploy and
// retire stripes with ExecPlugin alone.
func TestStorageWriterModule(t *testing.T) {
	e := newExec(t)
	dir := t.TempDir()
	d, err := executive.Instantiate("storage.sw", 2, []i2o.Param{{Key: "dir", Value: dir}})
	if err != nil {
		t.Fatal(err)
	}
	id, err := e.Plug(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "seg-002.xseg")); err != nil {
		t.Fatalf("plug did not open the segment: %v", err)
	}
	if err := e.Unplug(id); err != nil {
		t.Fatal(err)
	}
	// A clean close leaves a footer: reopening recovers without a scan
	// truncation and the writer is attachable again.
	w, err := storage.Open(storage.Options{Dir: dir, Instance: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if st := w.Stats(); st.Truncations != 0 {
		t.Fatalf("clean unplug left a torn segment: %+v", st)
	}

	if _, err := executive.Instantiate("storage.sw", 0, nil); err == nil {
		t.Fatal("storage.sw without dir did not error")
	}
}

func TestEchoModule(t *testing.T) {
	e := newExec(t)
	d, err := executive.Instantiate("echo", 3, []i2o.Param{{Key: "note", Value: "hi"}})
	if err != nil {
		t.Fatal(err)
	}
	if d.Class() != "echo" || d.Instance() != 3 {
		t.Fatalf("device %v", d)
	}
	if d.Params().String("note", "") != "hi" {
		t.Fatal("plug-time parameter not applied")
	}
	id, err := e.Plug(d)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Request(&i2o.Message{
		Target: id, Initiator: i2o.TIDExecutive,
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
		Payload: []byte("roundtrip"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Release()
	if string(rep.Payload) != "roundtrip" {
		t.Fatalf("echo %q", rep.Payload)
	}
}

func TestEchoModuleFireAndForget(t *testing.T) {
	e := newExec(t)
	d, err := executive.Instantiate("echo", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	id, err := e.Plug(d)
	if err != nil {
		t.Fatal(err)
	}
	// No reply expected: must not generate one (would be dropped anyway,
	// but the handler path must not error either).
	if err := e.Send(&i2o.Message{
		Target: id, Initiator: i2o.TIDExecutive,
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for e.Stats().Dispatched == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if e.Stats().Failures != 0 {
		t.Fatalf("stats %+v", e.Stats())
	}
}

func TestDaqModulesHonorParams(t *testing.T) {
	evm, err := executive.Instantiate("daq.evm", 0, []i2o.Param{{Key: "events", Value: int64(17)}})
	if err != nil {
		t.Fatal(err)
	}
	if evm.Class() != daq.EVMClass {
		t.Fatalf("class %q", evm.Class())
	}
	if evm.Params().Int("events", 0) != 17 {
		t.Fatal("events parameter not applied")
	}

	ru, err := executive.Instantiate("daq.ru", 2, []i2o.Param{{Key: "fragsize", Value: int64(4096)}})
	if err != nil {
		t.Fatal(err)
	}
	if ru.Class() != daq.RUClass || ru.Instance() != 2 {
		t.Fatalf("ru %v", ru)
	}
	if ru.Params().Int("fragsize", 0) != 4096 {
		t.Fatal("fragsize parameter not applied")
	}

	bu, err := executive.Instantiate("daq.bu", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bu.Class() != daq.BUClass {
		t.Fatalf("bu %v", bu)
	}
}

func TestPluggableEndToEnd(t *testing.T) {
	// The full path a controller uses: ExecPlugin message -> module
	// factory -> device serving requests.
	e := newExec(t)
	payload, err := i2o.EncodeParams([]i2o.Param{
		{Key: "module", Value: "daq.ru"},
		{Key: "instance", Value: int64(0)},
		{Key: "fragsize", Value: int64(256)},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Request(&i2o.Message{
		Target: i2o.TIDExecutive, Initiator: i2o.TIDExecutive,
		Function: i2o.ExecPlugin, Payload: payload,
	})
	if err != nil {
		t.Fatal(err)
	}
	params, _ := i2o.DecodeParams(rep.Payload)
	rep.Release()
	ruTID := i2o.TID(params[0].Value.(int64))

	// Ask the plugged RU for a one-event block.
	req := daq.EncodeFragReq(daq.FragReq{BU: 0, First: 9, Count: 1})
	rep, err = e.Request(&i2o.Message{
		Target: ruTID, Initiator: i2o.TIDExecutive,
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: daq.XFuncFragment,
		Payload: req,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Release()
	frep, err := daq.DecodeFragRep(rep.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(frep.Frags) != 1 || frep.Frags[0].Event != 9 || len(frep.Frags[0].Data) != 256 {
		t.Fatalf("fragment reply %+v", frep)
	}
}
