// Package modules registers the toolkit's standard device classes with
// the executive's module registry, so cluster controllers can instantiate
// them on any node with ExecPlugin messages — the paper's dynamic module
// download (§4: "Applications can be downloaded and configured during run
// time in the form of modules"), adapted to Go with compiled-in factories
// instead of relocatable object code.
//
// Importing this package (for side effects) makes the following modules
// pluggable:
//
//	echo      — replies to private function 1 with the request payload
//	daq.evm   — event manager (parameter: events)
//	daq.ru    — readout unit (parameter: fragsize)
//	daq.bu    — builder unit (wire it with Configure before starting)
//	daq.agg   — event-builder aggregator stage (wire it with Configure)
//	i2o.bsa   — block storage volume (parameters: blocksize, blocks)
package modules

import (
	"xdaq/internal/bsa"
	"xdaq/internal/daq"
	"xdaq/internal/device"
	"xdaq/internal/executive"
	"xdaq/internal/i2o"
)

func init() {
	executive.RegisterModule("echo", func(instance int, params []i2o.Param) (*device.Device, error) {
		d := device.New("echo", instance)
		d.Bind(1, func(ctx *device.Context, m *i2o.Message) error {
			if !m.Flags.Has(i2o.FlagReplyExpected) {
				return nil
			}
			buf, err := ctx.Host.Alloc(len(m.Payload))
			if err != nil {
				return err
			}
			copy(buf.Bytes(), m.Payload)
			rep := i2o.NewReply(m)
			rep.Payload = buf.Bytes()
			rep.AttachBuffer(buf)
			return ctx.Host.Send(rep)
		})
		applyParams(d, params)
		return d, nil
	})

	executive.RegisterModule("daq.evm", func(instance int, params []i2o.Param) (*device.Device, error) {
		limit := uint64(0)
		for _, p := range params {
			if p.Key == "events" {
				if n, ok := p.Value.(int64); ok && n >= 0 {
					limit = uint64(n)
				}
			}
		}
		return daq.NewEVM(limit).Device(), nil
	})

	executive.RegisterModule("daq.ru", func(instance int, params []i2o.Param) (*device.Device, error) {
		fragSize := 0
		for _, p := range params {
			if p.Key == "fragsize" {
				if n, ok := p.Value.(int64); ok && n > 0 {
					fragSize = int(n)
				}
			}
		}
		return daq.NewRU(instance, fragSize).Device(), nil
	})

	executive.RegisterModule("daq.bu", func(instance int, params []i2o.Param) (*device.Device, error) {
		return daq.NewBU(instance).Device(), nil
	})

	executive.RegisterModule("daq.agg", func(instance int, params []i2o.Param) (*device.Device, error) {
		return daq.NewAggregator(instance).Device(), nil
	})

	executive.RegisterModule("i2o.bsa", func(instance int, params []i2o.Param) (*device.Device, error) {
		blockSize, blocks := 0, uint64(1024)
		for _, p := range params {
			switch p.Key {
			case "blocksize":
				if n, ok := p.Value.(int64); ok && n > 0 {
					blockSize = int(n)
				}
			case "blocks":
				if n, ok := p.Value.(int64); ok && n > 0 {
					blocks = uint64(n)
				}
			}
		}
		return bsa.New(instance, blockSize, blocks).Module(), nil
	})
}

// applyParams copies plug-time parameters (minus the bookkeeping keys)
// into a device's parameter store.
func applyParams(d *device.Device, params []i2o.Param) {
	for _, p := range params {
		if p.Key != "module" && p.Key != "instance" {
			d.Params().Set(p.Key, p.Value)
		}
	}
}
