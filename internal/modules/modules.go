// Package modules registers the toolkit's standard device classes with
// the executive's module registry, so cluster controllers can instantiate
// them on any node with ExecPlugin messages — the paper's dynamic module
// download (§4: "Applications can be downloaded and configured during run
// time in the form of modules"), adapted to Go with compiled-in factories
// instead of relocatable object code.
//
// Importing this package (for side effects) makes the following modules
// pluggable:
//
//	echo      — replies to private function 1 with the request payload
//	daq.evm   — event manager (parameter: events)
//	daq.ru    — readout unit (parameter: fragsize)
//	daq.bu    — builder unit (wire it with Configure before starting)
//	daq.agg   — event-builder aggregator stage (wire it with Configure)
//	i2o.bsa   — block storage volume (parameters: blocksize, blocks)
//	storage.sw — striped-storage segment writer (parameters: dir
//	            (required), arena, hint, sync); opens seg-<instance>.xseg
//	            in dir at plug time, closes it at unplug
package modules

import (
	"fmt"

	"xdaq/internal/bsa"
	"xdaq/internal/daq"
	"xdaq/internal/device"
	"xdaq/internal/executive"
	"xdaq/internal/i2o"
	"xdaq/internal/pool"
	"xdaq/internal/storage"
)

func init() {
	executive.RegisterModule("echo", func(instance int, params []i2o.Param) (*device.Device, error) {
		d := device.New("echo", instance)
		d.Bind(1, func(ctx *device.Context, m *i2o.Message) error {
			if !m.Flags.Has(i2o.FlagReplyExpected) {
				return nil
			}
			buf, err := ctx.Host.Alloc(len(m.Payload))
			if err != nil {
				return err
			}
			copy(buf.Bytes(), m.Payload)
			rep := i2o.NewReply(m)
			rep.Payload = buf.Bytes()
			rep.AttachBuffer(buf)
			return ctx.Host.Send(rep)
		})
		applyParams(d, params)
		return d, nil
	})

	executive.RegisterModule("daq.evm", func(instance int, params []i2o.Param) (*device.Device, error) {
		limit := uint64(0)
		for _, p := range params {
			if p.Key == "events" {
				if n, ok := p.Value.(int64); ok && n >= 0 {
					limit = uint64(n)
				}
			}
		}
		return daq.NewEVM(limit).Device(), nil
	})

	executive.RegisterModule("daq.ru", func(instance int, params []i2o.Param) (*device.Device, error) {
		fragSize := 0
		for _, p := range params {
			if p.Key == "fragsize" {
				if n, ok := p.Value.(int64); ok && n > 0 {
					fragSize = int(n)
				}
			}
		}
		return daq.NewRU(instance, fragSize).Device(), nil
	})

	executive.RegisterModule("daq.bu", func(instance int, params []i2o.Param) (*device.Device, error) {
		return daq.NewBU(instance).Device(), nil
	})

	executive.RegisterModule("daq.agg", func(instance int, params []i2o.Param) (*device.Device, error) {
		return daq.NewAggregator(instance).Device(), nil
	})

	executive.RegisterModule("storage.sw", func(instance int, params []i2o.Param) (*device.Device, error) {
		opts := storage.Options{Instance: instance}
		for _, p := range params {
			switch p.Key {
			case "dir":
				if s, ok := p.Value.(string); ok {
					opts.Dir = s
				}
			case "arena":
				if n, ok := p.Value.(int64); ok && n > 0 {
					opts.ArenaSize = int(n)
				}
			case "hint":
				if n, ok := p.Value.(int64); ok && n > 0 {
					opts.IndexHint = int(n)
				}
			case "sync":
				if b, ok := p.Value.(bool); ok {
					opts.Sync = b
				}
			}
		}
		if opts.Dir == "" {
			return nil, fmt.Errorf("storage.sw: a dir parameter is required")
		}
		// The reassembler's allocator is only exercised once frames
		// arrive, so it can bind to the host executive at plug time.
		alloc := &pluggedAllocator{}
		sw := storage.NewSW(instance, alloc)
		dev := sw.Device()
		inner := dev.OnPlugged
		dev.OnPlugged = func(ctx *device.Context) error {
			alloc.host = ctx.Host
			w, err := storage.Open(opts)
			if err != nil {
				return err
			}
			sw.Attach(w)
			return inner(ctx)
		}
		dev.OnUnplugged = func() {
			if w := sw.Writer(); w != nil {
				w.Close()
			}
		}
		return dev, nil
	})

	executive.RegisterModule("i2o.bsa", func(instance int, params []i2o.Param) (*device.Device, error) {
		blockSize, blocks := 0, uint64(1024)
		for _, p := range params {
			switch p.Key {
			case "blocksize":
				if n, ok := p.Value.(int64); ok && n > 0 {
					blockSize = int(n)
				}
			case "blocks":
				if n, ok := p.Value.(int64); ok && n > 0 {
					blocks = uint64(n)
				}
			}
		}
		return bsa.New(instance, blockSize, blocks).Module(), nil
	})
}

// pluggedAllocator adapts the plug-time device host to pool.Allocator,
// for modules whose factories run before any executive is in sight.
type pluggedAllocator struct{ host device.Host }

func (a *pluggedAllocator) Alloc(n int) (*pool.Buffer, error) {
	if a.host == nil {
		return nil, fmt.Errorf("storage.sw: not plugged")
	}
	return a.host.Alloc(n)
}
func (a *pluggedAllocator) Stats() pool.Stats { return pool.Stats{} }
func (a *pluggedAllocator) Name() string      { return "plugged-host" }

// applyParams copies plug-time parameters (minus the bookkeeping keys)
// into a device's parameter store.
func applyParams(d *device.Device, params []i2o.Param) {
	for _, p := range params {
		if p.Key != "module" && p.Key != "instance" {
			d.Params().Set(p.Key, p.Value)
		}
	}
}
