package tclish

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Command is a builtin or registered command: it receives the substituted
// argument words (args[0] is the command name) and returns a result
// string.
type Command func(in *Interp, args []string) (string, error)

// Control-flow signals travel as sentinel errors.
var (
	errBreak    = errors.New("tclish: break outside loop")
	errContinue = errors.New("tclish: continue outside loop")
)

// returnSignal unwinds a proc body.
type returnSignal struct{ value string }

func (returnSignal) Error() string { return "tclish: return outside proc" }

// Interp is one interpreter instance.  It is not safe for concurrent use;
// cluster controllers run one interpreter per control session.
type Interp struct {
	commands map[string]Command
	frames   []map[string]string // frames[0] is the global scope
	out      io.Writer
	depth    int

	// LoopLimit bounds while/for iterations so a runaway control script
	// fails instead of hanging the session.  Defaults to DefaultLoopLimit.
	LoopLimit int
}

// MaxDepth bounds recursive evaluation (procs calling procs, bracket
// nesting) so runaway scripts fail instead of exhausting the stack.
const MaxDepth = 200

// DefaultLoopLimit is the default iteration bound of while and for.
const DefaultLoopLimit = 10_000_000

// New returns an interpreter with the core command set.  Output of puts
// goes to out (io.Discard when nil).
func New(out io.Writer) *Interp {
	if out == nil {
		out = io.Discard
	}
	in := &Interp{
		commands:  make(map[string]Command),
		frames:    []map[string]string{make(map[string]string)},
		out:       out,
		LoopLimit: DefaultLoopLimit,
	}
	registerCore(in)
	return in
}

// Register adds or replaces a command.
func (in *Interp) Register(name string, cmd Command) { in.commands[name] = cmd }

// Commands returns the registered command names, sorted.
func (in *Interp) Commands() []string {
	out := make([]string, 0, len(in.commands))
	for name := range in.commands {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// frame returns the current variable scope.
func (in *Interp) frame() map[string]string { return in.frames[len(in.frames)-1] }

// SetVar sets a variable in the current scope.
func (in *Interp) SetVar(name, value string) { in.frame()[name] = value }

// Var reads a variable from the current scope, falling back to the global
// scope (a pragmatic simplification of Tcl's explicit `global`).
func (in *Interp) Var(name string) (string, bool) {
	if v, ok := in.frame()[name]; ok {
		return v, true
	}
	if v, ok := in.frames[0][name]; ok {
		return v, true
	}
	return "", false
}

// Eval runs a script and returns the result of its last command.
func (in *Interp) Eval(script string) (string, error) {
	in.depth++
	defer func() { in.depth-- }()
	if in.depth > MaxDepth {
		return "", fmt.Errorf("tclish: evaluation nested deeper than %d", MaxDepth)
	}
	p := &parser{src: script}
	result := ""
	for {
		p.skipCommandSeparators()
		if p.eof() {
			return result, nil
		}
		var words []word
		for {
			p.skipBlank()
			if p.atCommandEnd() {
				break
			}
			w, err := p.nextWord()
			if err != nil {
				return "", err
			}
			words = append(words, w)
		}
		if len(words) == 0 {
			continue
		}
		args := make([]string, len(words))
		for i, w := range words {
			if w.braced {
				args[i] = w.text
				continue
			}
			sub, err := in.Substitute(w.text)
			if err != nil {
				return "", err
			}
			args[i] = sub
		}
		var err error
		result, err = in.invoke(args)
		if err != nil {
			return result, err
		}
	}
}

func (in *Interp) invoke(args []string) (string, error) {
	cmd, ok := in.commands[args[0]]
	if !ok {
		return "", fmt.Errorf("tclish: unknown command %q", args[0])
	}
	return cmd(in, args)
}

// Substitute performs $variable, [command] and backslash substitution on
// one word.
func (in *Interp) Substitute(s string) (string, error) {
	if !strings.ContainsAny(s, "$[\\") {
		return s, nil
	}
	var b strings.Builder
	for i := 0; i < len(s); {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				b.WriteByte('\\')
				i++
				continue
			}
			b.WriteByte(unescape(s[i+1]))
			i += 2
		case '$':
			name, next, err := scanVarName(s, i+1)
			if err != nil {
				return "", err
			}
			if name == "" { // a lone dollar sign
				b.WriteByte('$')
				i++
				continue
			}
			v, ok := in.Var(name)
			if !ok {
				return "", fmt.Errorf("tclish: no such variable %q", name)
			}
			b.WriteString(v)
			i = next
		case '[':
			script, next, err := scanBracket(s, i)
			if err != nil {
				return "", err
			}
			res, err := in.Eval(script)
			if err != nil {
				return "", err
			}
			b.WriteString(res)
			i = next
		default:
			b.WriteByte(s[i])
			i++
		}
	}
	return b.String(), nil
}

func unescape(c byte) byte {
	switch c {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	default:
		return c
	}
}

// scanVarName reads a variable name at s[i:] (after the $): either
// ${name} or an alphanumeric/underscore run.  It returns the name and the
// index after it.
func scanVarName(s string, i int) (string, int, error) {
	if i < len(s) && s[i] == '{' {
		end := strings.IndexByte(s[i:], '}')
		if end < 0 {
			return "", 0, fmt.Errorf("%w: ${ without }", ErrBadSubst)
		}
		return s[i+1 : i+end], i + end + 1, nil
	}
	j := i
	for j < len(s) && (isAlnum(s[j]) || s[j] == '_') {
		j++
	}
	return s[i:j], j, nil
}

func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// scanBracket reads a balanced [script] at s[i:] and returns the inner
// script and the index after the closing bracket.
func scanBracket(s string, i int) (string, int, error) {
	depth := 0
	for j := i; j < len(s); j++ {
		switch s[j] {
		case '\\':
			j++
		case '[':
			depth++
		case ']':
			depth--
			if depth == 0 {
				return s[i+1 : j], j + 1, nil
			}
		}
	}
	return "", 0, fmt.Errorf("%w: bracket opened at %d", ErrUnbalanced, i)
}

// arity fails unless len(args)-1 (the argument count) is within [min,max];
// max < 0 means unbounded.
func arity(args []string, min, max int) error {
	n := len(args) - 1
	if n < min || (max >= 0 && n > max) {
		return fmt.Errorf("tclish: wrong # args for %q", args[0])
	}
	return nil
}

func registerCore(in *Interp) {
	in.Register("set", func(in *Interp, args []string) (string, error) {
		if err := arity(args, 1, 2); err != nil {
			return "", err
		}
		if len(args) == 2 {
			v, ok := in.Var(args[1])
			if !ok {
				return "", fmt.Errorf("tclish: no such variable %q", args[1])
			}
			return v, nil
		}
		in.SetVar(args[1], args[2])
		return args[2], nil
	})

	in.Register("unset", func(in *Interp, args []string) (string, error) {
		if err := arity(args, 1, 1); err != nil {
			return "", err
		}
		delete(in.frame(), args[1])
		return "", nil
	})

	in.Register("puts", func(in *Interp, args []string) (string, error) {
		if err := arity(args, 1, 2); err != nil {
			return "", err
		}
		text := args[len(args)-1]
		if len(args) == 3 && args[1] != "-nonewline" {
			return "", fmt.Errorf("tclish: puts: unknown option %q", args[1])
		}
		if len(args) == 3 {
			fmt.Fprint(in.out, text)
		} else {
			fmt.Fprintln(in.out, text)
		}
		return "", nil
	})

	in.Register("expr", func(in *Interp, args []string) (string, error) {
		if err := arity(args, 1, -1); err != nil {
			return "", err
		}
		return in.exprString(strings.Join(args[1:], " "))
	})

	in.Register("incr", func(in *Interp, args []string) (string, error) {
		if err := arity(args, 1, 2); err != nil {
			return "", err
		}
		delta := int64(1)
		if len(args) == 3 {
			d, err := strconv.ParseInt(args[2], 10, 64)
			if err != nil {
				return "", fmt.Errorf("tclish: incr: %w", err)
			}
			delta = d
		}
		cur := int64(0)
		if v, ok := in.Var(args[1]); ok && v != "" {
			c, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return "", fmt.Errorf("tclish: incr %q: %w", args[1], err)
			}
			cur = c
		}
		out := strconv.FormatInt(cur+delta, 10)
		in.SetVar(args[1], out)
		return out, nil
	})

	in.Register("if", cmdIf)
	in.Register("while", cmdWhile)
	in.Register("for", cmdFor)
	in.Register("foreach", cmdForeach)
	in.Register("proc", cmdProc)

	in.Register("break", func(in *Interp, args []string) (string, error) {
		return "", errBreak
	})
	in.Register("continue", func(in *Interp, args []string) (string, error) {
		return "", errContinue
	})
	in.Register("return", func(in *Interp, args []string) (string, error) {
		if err := arity(args, 0, 1); err != nil {
			return "", err
		}
		v := ""
		if len(args) == 2 {
			v = args[1]
		}
		return v, returnSignal{value: v}
	})

	in.Register("list", func(in *Interp, args []string) (string, error) {
		return JoinList(args[1:]), nil
	})
	in.Register("lindex", func(in *Interp, args []string) (string, error) {
		if err := arity(args, 2, 2); err != nil {
			return "", err
		}
		elems, err := SplitList(args[1])
		if err != nil {
			return "", err
		}
		idx, err := strconv.Atoi(args[2])
		if err != nil || idx < 0 || idx >= len(elems) {
			return "", nil // Tcl returns empty for out-of-range
		}
		return elems[idx], nil
	})
	in.Register("llength", func(in *Interp, args []string) (string, error) {
		if err := arity(args, 1, 1); err != nil {
			return "", err
		}
		elems, err := SplitList(args[1])
		if err != nil {
			return "", err
		}
		return strconv.Itoa(len(elems)), nil
	})
	in.Register("lappend", func(in *Interp, args []string) (string, error) {
		if err := arity(args, 1, -1); err != nil {
			return "", err
		}
		cur, _ := in.Var(args[1])
		for _, e := range args[2:] {
			q := QuoteListElement(e)
			if cur == "" {
				cur = q
			} else {
				cur += " " + q
			}
		}
		in.SetVar(args[1], cur)
		return cur, nil
	})
	in.Register("eval", func(in *Interp, args []string) (string, error) {
		if err := arity(args, 1, -1); err != nil {
			return "", err
		}
		return in.Eval(strings.Join(args[1:], " "))
	})
	in.Register("string", cmdString)
}

func cmdIf(in *Interp, args []string) (string, error) {
	// if cond body ?elseif cond body?* ?else body?
	i := 1
	for i < len(args) {
		if args[i] == "else" {
			if i+1 != len(args)-1 {
				return "", fmt.Errorf("tclish: malformed else clause")
			}
			return in.Eval(args[i+1])
		}
		if args[i] == "elseif" {
			i++
			continue
		}
		if i+1 >= len(args) {
			return "", fmt.Errorf("tclish: if: missing body")
		}
		ok, err := in.exprBool(args[i])
		if err != nil {
			return "", err
		}
		if ok {
			return in.Eval(args[i+1])
		}
		i += 2
	}
	return "", nil
}

func cmdWhile(in *Interp, args []string) (string, error) {
	if err := arity(args, 2, 2); err != nil {
		return "", err
	}
	result := ""
	for iter := 0; ; iter++ {
		if iter > in.LoopLimit {
			return "", fmt.Errorf("tclish: while: iteration limit reached")
		}
		ok, err := in.exprBool(args[1])
		if err != nil {
			return "", err
		}
		if !ok {
			return result, nil
		}
		result, err = in.Eval(args[2])
		if err != nil {
			if errors.Is(err, errBreak) {
				return "", nil
			}
			if errors.Is(err, errContinue) {
				continue
			}
			return result, err
		}
	}
}

func cmdFor(in *Interp, args []string) (string, error) {
	if err := arity(args, 4, 4); err != nil {
		return "", err
	}
	if _, err := in.Eval(args[1]); err != nil {
		return "", err
	}
	for iter := 0; ; iter++ {
		if iter > in.LoopLimit {
			return "", fmt.Errorf("tclish: for: iteration limit reached")
		}
		ok, err := in.exprBool(args[2])
		if err != nil {
			return "", err
		}
		if !ok {
			return "", nil
		}
		if _, err := in.Eval(args[4]); err != nil {
			if errors.Is(err, errBreak) {
				return "", nil
			}
			if !errors.Is(err, errContinue) {
				return "", err
			}
		}
		if _, err := in.Eval(args[3]); err != nil {
			return "", err
		}
	}
}

func cmdForeach(in *Interp, args []string) (string, error) {
	if err := arity(args, 3, 3); err != nil {
		return "", err
	}
	elems, err := SplitList(args[2])
	if err != nil {
		return "", err
	}
	for _, e := range elems {
		in.SetVar(args[1], e)
		if _, err := in.Eval(args[3]); err != nil {
			if errors.Is(err, errBreak) {
				return "", nil
			}
			if errors.Is(err, errContinue) {
				continue
			}
			return "", err
		}
	}
	return "", nil
}

func cmdProc(in *Interp, args []string) (string, error) {
	if err := arity(args, 3, 3); err != nil {
		return "", err
	}
	name := args[1]
	params, err := SplitList(args[2])
	if err != nil {
		return "", err
	}
	body := args[3]
	in.Register(name, func(in *Interp, callArgs []string) (string, error) {
		if len(callArgs)-1 != len(params) {
			return "", fmt.Errorf("tclish: proc %q wants %d args, got %d", name, len(params), len(callArgs)-1)
		}
		frame := make(map[string]string, len(params))
		for i, p := range params {
			frame[p] = callArgs[i+1]
		}
		in.frames = append(in.frames, frame)
		defer func() { in.frames = in.frames[:len(in.frames)-1] }()
		result, err := in.Eval(body)
		var ret returnSignal
		if errors.As(err, &ret) {
			return ret.value, nil
		}
		return result, err
	})
	return "", nil
}

func cmdString(in *Interp, args []string) (string, error) {
	if err := arity(args, 2, -1); err != nil {
		return "", err
	}
	switch args[1] {
	case "length":
		return strconv.Itoa(len(args[2])), nil
	case "toupper":
		return strings.ToUpper(args[2]), nil
	case "tolower":
		return strings.ToLower(args[2]), nil
	case "equal":
		if err := arity(args, 3, 3); err != nil {
			return "", err
		}
		if args[2] == args[3] {
			return "1", nil
		}
		return "0", nil
	case "trim":
		return strings.TrimSpace(args[2]), nil
	default:
		return "", fmt.Errorf("tclish: string: unknown subcommand %q", args[1])
	}
}
