// Package tclish implements a miniature Tcl-like command language.
//
// The paper configures and controls every executive "from a Tcl script
// that resides on the primary host ... because it is the I2O recommended
// way for configuration and control" (§4).  tclish reproduces the subset
// that cluster control scripts need: commands, variables with $
// substitution, [bracket] command substitution, {brace} quoting, "double
// quotes", comments, expressions, control flow (if/while/foreach), and
// user procedures.  Cluster-specific commands (configure, plug, enable,
// param, ...) are registered by package cluster on top of this core.
package tclish

import (
	"errors"
	"fmt"
	"strings"
)

// Parse errors.
var (
	// ErrUnbalanced reports an unterminated brace, bracket or quote.
	ErrUnbalanced = errors.New("tclish: unbalanced delimiter")

	// ErrBadSubst reports a malformed $ substitution.
	ErrBadSubst = errors.New("tclish: bad variable substitution")
)

// parser walks one script.
type parser struct {
	src string
	pos int
}

func (p *parser) eof() bool  { return p.pos >= len(p.src) }
func (p *parser) peek() byte { return p.src[p.pos] }

// skipBlank consumes spaces and tabs (not newlines: those terminate
// commands).
func (p *parser) skipBlank() {
	for !p.eof() {
		switch p.peek() {
		case ' ', '\t', '\r':
			p.pos++
		case '\\':
			// A backslash-newline is a line continuation.
			if p.pos+1 < len(p.src) && p.src[p.pos+1] == '\n' {
				p.pos += 2
				continue
			}
			return
		default:
			return
		}
	}
}

// skipCommandSeparators consumes newlines, semicolons, blanks and
// comments between commands.
func (p *parser) skipCommandSeparators() {
	for !p.eof() {
		switch p.peek() {
		case ' ', '\t', '\r', '\n', ';':
			p.pos++
		case '#':
			for !p.eof() && p.peek() != '\n' {
				p.pos++
			}
		case '\\':
			if p.pos+1 < len(p.src) && p.src[p.pos+1] == '\n' {
				p.pos += 2
				continue
			}
			return
		default:
			return
		}
	}
}

// atCommandEnd reports whether the current position terminates a command.
func (p *parser) atCommandEnd() bool {
	return p.eof() || p.peek() == '\n' || p.peek() == ';'
}

// word is one raw command word plus how it was quoted (braced words are
// exempt from substitution).
type word struct {
	text   string
	braced bool
}

// nextWord parses one word.  Quoted and bare words keep their raw text;
// substitution happens at evaluation time against interpreter state.
func (p *parser) nextWord() (word, error) {
	switch p.peek() {
	case '{':
		text, err := p.readBraced()
		return word{text: text, braced: true}, err
	case '"':
		text, err := p.readQuoted()
		return word{text: text}, err
	default:
		return word{text: p.readBare()}, nil
	}
}

// readBraced consumes a balanced {...} block and returns its inside.
func (p *parser) readBraced() (string, error) {
	start := p.pos
	depth := 0
	for !p.eof() {
		switch p.peek() {
		case '\\':
			p.pos++ // skip the escaped character too
			if !p.eof() {
				p.pos++
			}
			continue
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				inner := p.src[start+1 : p.pos]
				p.pos++
				return inner, nil
			}
		}
		p.pos++
	}
	return "", fmt.Errorf("%w: brace opened at offset %d", ErrUnbalanced, start)
}

// readQuoted consumes a "..." word, returning the raw inside (with escapes
// and substitutions untouched; they apply at eval time).
func (p *parser) readQuoted() (string, error) {
	start := p.pos
	p.pos++ // opening quote
	var b strings.Builder
	for !p.eof() {
		c := p.peek()
		switch c {
		case '\\':
			b.WriteByte(c)
			p.pos++
			if !p.eof() {
				b.WriteByte(p.peek())
				p.pos++
			}
			continue
		case '"':
			p.pos++
			return b.String(), nil
		}
		b.WriteByte(c)
		p.pos++
	}
	return "", fmt.Errorf("%w: quote opened at offset %d", ErrUnbalanced, start)
}

// readBare consumes an unquoted word, keeping bracket scripts intact.
func (p *parser) readBare() string {
	var b strings.Builder
	for !p.eof() {
		c := p.peek()
		switch c {
		case ' ', '\t', '\r', '\n', ';':
			return b.String()
		case '[':
			depth := 0
			for !p.eof() {
				c := p.peek()
				b.WriteByte(c)
				if c == '\\' {
					p.pos++
					if !p.eof() {
						b.WriteByte(p.peek())
						p.pos++
					}
					continue
				}
				if c == '[' {
					depth++
				}
				if c == ']' {
					depth--
					if depth == 0 {
						p.pos++
						break
					}
				}
				p.pos++
			}
			continue
		case '\\':
			b.WriteByte(c)
			p.pos++
			if !p.eof() {
				b.WriteByte(p.peek())
				p.pos++
			}
			continue
		default:
			b.WriteByte(c)
			p.pos++
		}
	}
	return b.String()
}

// SplitList splits a Tcl list into elements: whitespace separated, with
// braces and quotes grouping.  Used by foreach, proc parameters and the
// cluster commands.
func SplitList(list string) ([]string, error) {
	p := &parser{src: list}
	var out []string
	for {
		p.skipBlank()
		for !p.eof() && (p.peek() == '\n') {
			p.pos++
			p.skipBlank()
		}
		if p.eof() {
			return out, nil
		}
		w, err := p.nextWord()
		if err != nil {
			return nil, err
		}
		out = append(out, w.text)
	}
}

// QuoteListElement renders one element so SplitList reads it back as a
// single element.
func QuoteListElement(s string) string {
	if s == "" {
		return "{}"
	}
	if strings.ContainsAny(s, " \t\r\n;{}\"[]$\\") {
		return "{" + s + "}"
	}
	return s
}

// JoinList renders elements as a Tcl list.
func JoinList(elems []string) string {
	quoted := make([]string, len(elems))
	for i, e := range elems {
		quoted[i] = QuoteListElement(e)
	}
	return strings.Join(quoted, " ")
}
