package tclish

import (
	"strings"
	"testing"
)

// Policy conditions substitute raw uint64 metric counters into expr;
// these cases pin the exact-integer semantics the control plane relies
// on.  Every value here is above 2^53, where a float64 round trip would
// silently merge adjacent integers.
func TestExprUint64Exact(t *testing.T) {
	cases := []struct{ script, want string }{
		// 1<<63 and up parse as unsigned, not floats.
		{`expr 9223372036854775808 == 9223372036854775808`, "1"},
		{`expr 9223372036854775808 == 9223372036854775809`, "0"},
		{`expr 18446744073709551615 > 18446744073709551614`, "1"},
		{`expr 18446744073709551614 >= 18446744073709551615`, "0"},
		// Adjacent counters above 2^53: float64 cannot tell these apart.
		{`expr 9007199254740993 == 9007199254740992`, "0"},
		{`expr 9007199254740993 - 9007199254740992`, "1"},
		// Mixed sign: a negative int64 is below any uint64.
		{`expr -1 < 18446744073709551615`, "1"},
		{`expr 18446744073709551615 > -1`, "1"},
		{`expr -9223372036854775808 < 9223372036854775808`, "1"},
		// Exact unsigned arithmetic where the result fits.
		{`expr 18446744073709551615 - 18446744073709551614`, "1"},
		{`expr 18446744073709551615 - 1`, "18446744073709551614"},
		{`expr 9223372036854775808 + 1`, "9223372036854775809"},
		{`expr 9223372036854775808 / 2`, "4611686018427387904"},
		{`expr 18446744073709551615 % 10`, "5"},
		{`expr 9223372036854775808 * 2`, "1.8446744073709552e+19"}, // overflow: float fallback
		{`expr 1 - 18446744073709551615`, "-1.8446744073709552e+19"},
		// Unsigned result text keeps full precision.
		{`expr 18446744073709551615 + 0`, "18446744073709551615"},
		// Rate-style division demotes cleanly.
		{`expr 9223372036854775808 > 9223372036854775807`, "1"},
		// Substituted through a variable, same exactness.
		{`set c 18446744073709551615; expr {$c == 18446744073709551615}`, "1"},
		{`set c 18446744073709551615; expr {$c + 1}`, "1.8446744073709552e+19"}, // overflow: float fallback
	}
	for _, c := range cases {
		if got := eval(t, c.script); got != c.want {
			t.Errorf("Eval(%q) = %q, want %q", c.script, got, c.want)
		}
	}
}

// Unsigned division/modulo by zero must be the expression error, not a
// fallthrough into the float path.
func TestExprUint64DivZero(t *testing.T) {
	for _, script := range []string{
		`expr 18446744073709551615 / 0`,
		`expr 18446744073709551615 % 0`,
	} {
		if err := evalErr(t, script); !strings.Contains(err.Error(), "division by zero") {
			t.Errorf("Eval(%q): %v, want division by zero", script, err)
		}
	}
}

// An undefined variable inside a braced expr condition surfaces as the
// interpreter's no-such-variable error — the shape the policy loader
// turns into a load failure.
func TestExprUndefinedVariable(t *testing.T) {
	for _, script := range []string{
		`expr {$missing > 1}`,
		`if {$missing} {set a 1}`,
		`while {$missing < 3} {set a 1}`,
	} {
		err := evalErr(t, script)
		if !strings.Contains(err.Error(), `no such variable "missing"`) {
			t.Errorf("Eval(%q): %v, want no such variable", script, err)
		}
	}
	// Same for an unknown command substituted inside the condition.
	err := evalErr(t, `expr {[nosuchmetric x] > 1}`)
	if !strings.Contains(err.Error(), `unknown command "nosuchmetric"`) {
		t.Errorf("unknown command in condition: %v", err)
	}
}
