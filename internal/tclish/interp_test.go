package tclish

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func eval(t *testing.T, script string) string {
	t.Helper()
	in := New(nil)
	out, err := in.Eval(script)
	if err != nil {
		t.Fatalf("Eval(%q): %v", script, err)
	}
	return out
}

func evalErr(t *testing.T, script string) error {
	t.Helper()
	in := New(nil)
	_, err := in.Eval(script)
	if err == nil {
		t.Fatalf("Eval(%q) succeeded", script)
	}
	return err
}

func TestSetAndSubstitute(t *testing.T) {
	cases := []struct{ script, want string }{
		{`set a 5`, "5"},
		{"set a 5\nset a", "5"},
		{`set a 5; set b $a`, "5"},
		{`set a 5; set b ${a}x`, "5x"},
		{`set a hello; set b "$a world"`, "hello world"},
		{`set a hello; set b {$a world}`, "$a world"},
		{`set x [expr 2 + 3]`, "5"},
		{`set a 1; set b "nested [set a]"`, "nested 1"},
		{"set a 7 ;# trailing comment\nset a", "7"},
		{`set s "tab\there"`, "tab\there"},
		{`set d "\$notavar"`, "$notavar"},
	}
	for _, c := range cases {
		if got := eval(t, c.script); got != c.want {
			t.Errorf("Eval(%q) = %q, want %q", c.script, got, c.want)
		}
	}
}

func TestUnknownVariableAndCommand(t *testing.T) {
	if err := evalErr(t, `set b $nope`); !strings.Contains(err.Error(), "no such variable") {
		t.Error(err)
	}
	if err := evalErr(t, `frobnicate 1 2`); !strings.Contains(err.Error(), "unknown command") {
		t.Error(err)
	}
	if err := evalErr(t, `set`); !strings.Contains(err.Error(), "wrong # args") {
		t.Error(err)
	}
}

func TestUnset(t *testing.T) {
	in := New(nil)
	if _, err := in.Eval(`set a 1; unset a`); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Eval(`set a`); err == nil {
		t.Fatal("variable survives unset")
	}
}

func TestPuts(t *testing.T) {
	var buf bytes.Buffer
	in := New(&buf)
	if _, err := in.Eval(`puts "hello"; puts -nonewline done`); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "hello\ndone" {
		t.Fatalf("output %q", buf.String())
	}
}

func TestExpr(t *testing.T) {
	cases := []struct{ script, want string }{
		{`expr 1 + 2 * 3`, "7"},
		{`expr (1 + 2) * 3`, "9"},
		{`expr 7 / 2`, "3"},
		{`expr 7.0 / 2`, "3.5"},
		{`expr 7 % 3`, "1"},
		{`expr -4 + 1`, "-3"},
		{`expr 2 < 3`, "1"},
		{`expr 2 >= 3`, "0"},
		{`expr 1 && 0`, "0"},
		{`expr 1 || 0`, "1"},
		{`expr !0`, "1"},
		{`expr 0x10 + 1`, "17"},
		{`expr 1e2 + 1`, "101"},
		{`set a 4; expr {$a * $a}`, "16"},
		{`expr abc eq abc`, "1"},
		{`expr abc ne abc`, "0"},
		{`expr {"a b" eq "a b"}`, "1"},
		{`expr 1 == 1.0`, "1"},
		{`expr abc == abc`, "1"},
	}
	for _, c := range cases {
		if got := eval(t, c.script); got != c.want {
			t.Errorf("Eval(%q) = %q, want %q", c.script, got, c.want)
		}
	}
}

func TestExprErrors(t *testing.T) {
	for _, script := range []string{
		`expr 1 /`,
		`expr 1 / 0`,
		`expr 5 % 0`,
		`expr (1 + 2`,
		`expr abc + 1`,
		`expr 1 +* 2`,
		`expr abc < def`,
	} {
		err := evalErr(t, script)
		if !errors.Is(err, ErrExpr) {
			t.Errorf("Eval(%q): %v not an expression error", script, err)
		}
	}
}

func TestIfElse(t *testing.T) {
	script := `
set x 7
if {$x > 10} {
    set r big
} elseif {$x > 5} {
    set r medium
} else {
    set r small
}
set r`
	if got := eval(t, script); got != "medium" {
		t.Fatalf("if chain = %q", got)
	}
	if got := eval(t, `if {1 > 2} {set r a}; set r unset-ok`); got != "unset-ok" {
		t.Fatalf("no-branch if = %q", got)
	}
}

func TestWhileLoop(t *testing.T) {
	script := `
set sum 0
set i 0
while {$i < 10} {
    set sum [expr $sum + $i]
    incr i
}
set sum`
	if got := eval(t, script); got != "45" {
		t.Fatalf("while sum = %q", got)
	}
}

func TestForLoop(t *testing.T) {
	script := `
set sum 0
for {set i 1} {$i <= 4} {incr i} {
    set sum [expr $sum + $i]
}
set sum`
	if got := eval(t, script); got != "10" {
		t.Fatalf("for sum = %q", got)
	}
}

func TestBreakContinue(t *testing.T) {
	script := `
set acc ""
set i 0
while {$i < 10} {
    incr i
    if {$i == 3} { continue }
    if {$i == 6} { break }
    set acc "$acc$i"
}
set acc`
	if got := eval(t, script); got != "1245" {
		t.Fatalf("acc = %q", got)
	}
}

func TestForeach(t *testing.T) {
	script := `
set acc ""
foreach x {a b {c d} e} {
    set acc "$acc<$x>"
}
set acc`
	if got := eval(t, script); got != "<a><b><c d><e>" {
		t.Fatalf("acc = %q", got)
	}
}

func TestProc(t *testing.T) {
	script := `
proc square {x} { return [expr $x * $x] }
proc sumsq {a b} {
    set s [expr [square $a] + [square $b]]
    return $s
}
sumsq 3 4`
	if got := eval(t, script); got != "25" {
		t.Fatalf("sumsq = %q", got)
	}
}

func TestProcScoping(t *testing.T) {
	script := `
set x global
proc touch {} { set x local; return $x }
touch
set x`
	if got := eval(t, script); got != "global" {
		t.Fatalf("global x = %q", got)
	}
	// Procs read globals when no local exists.
	script2 := `
set g 42
proc readg {} { return $g }
readg`
	if got := eval(t, script2); got != "42" {
		t.Fatalf("readg = %q", got)
	}
}

func TestProcArity(t *testing.T) {
	err := evalErr(t, `proc two {a b} {return $a}; two 1`)
	if !strings.Contains(err.Error(), "wants 2 args") {
		t.Fatal(err)
	}
}

func TestReturnOutsideProcBubbles(t *testing.T) {
	in := New(nil)
	out, err := in.Eval(`return topvalue`)
	var sig returnSignal
	if !errors.As(err, &sig) || out != "topvalue" {
		t.Fatalf("top-level return: %q %v", out, err)
	}
}

func TestListCommands(t *testing.T) {
	cases := []struct{ script, want string }{
		{`list a b "c d"`, "a b {c d}"},
		{`list`, ""},
		{`lindex {a b c} 1`, "b"},
		{`lindex {a b c} 9`, ""},
		{`llength {a {b c} d}`, "3"},
		{`llength {}`, "0"},
		{`set l {}; lappend l x; lappend l "y z"; set l`, "x {y z}"},
	}
	for _, c := range cases {
		if got := eval(t, c.script); got != c.want {
			t.Errorf("Eval(%q) = %q, want %q", c.script, got, c.want)
		}
	}
}

func TestStringCommand(t *testing.T) {
	cases := []struct{ script, want string }{
		{`string length hello`, "5"},
		{`string toupper abc`, "ABC"},
		{`string tolower ABC`, "abc"},
		{`string equal a a`, "1"},
		{`string equal a b`, "0"},
		{`string trim "  x  "`, "x"},
	}
	for _, c := range cases {
		if got := eval(t, c.script); got != c.want {
			t.Errorf("Eval(%q) = %q, want %q", c.script, got, c.want)
		}
	}
	if err := evalErr(t, `string frob a`); !strings.Contains(err.Error(), "unknown subcommand") {
		t.Error(err)
	}
}

func TestEvalCommand(t *testing.T) {
	if got := eval(t, `set cmd {expr 1 + 1}; eval $cmd`); got != "2" {
		t.Fatalf("eval = %q", got)
	}
}

func TestUnbalancedDelimiters(t *testing.T) {
	for _, script := range []string{
		`set a {unclosed`,
		`set a "unclosed`,
		`set a [expr 1`,
	} {
		if err := evalErr(t, script); !errors.Is(err, ErrUnbalanced) {
			t.Errorf("Eval(%q): %v", script, err)
		}
	}
}

func TestRecursionDepthLimit(t *testing.T) {
	err := evalErr(t, `proc loop {} { loop }; loop`)
	if !strings.Contains(err.Error(), "nested deeper") {
		t.Fatal(err)
	}
}

func TestWhileIterationLimit(t *testing.T) {
	// An infinite loop must terminate with the iteration guard rather
	// than hang the control session.  Use a cheap body.
	in := New(nil)
	in.LoopLimit = 1000
	_, err := in.Eval(`while {1} {}`)
	if err == nil || !strings.Contains(err.Error(), "iteration limit") {
		t.Fatal(err)
	}
	in.LoopLimit = 1000
	_, err = in.Eval(`for {set i 0} {1} {} {}`)
	if err == nil || !strings.Contains(err.Error(), "iteration limit") {
		t.Fatal(err)
	}
}

func TestSplitListRoundTrip(t *testing.T) {
	elems := []string{"plain", "two words", "", "braces{inside}", "dollar$var"}
	joined := JoinList(elems)
	got, err := SplitList(joined)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, elems) {
		t.Fatalf("round trip: %#v via %q", got, joined)
	}
}

func TestQuickSplitListNeverPanics(t *testing.T) {
	f := func(s string) bool {
		_, _ = SplitList(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEvalNeverPanics(t *testing.T) {
	f := func(s string) bool {
		in := New(nil)
		_, _ = in.Eval(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterCustomCommand(t *testing.T) {
	in := New(nil)
	in.Register("double", func(in *Interp, args []string) (string, error) {
		if err := arity(args, 1, 1); err != nil {
			return "", err
		}
		return args[1] + args[1], nil
	})
	out, err := in.Eval(`double ab`)
	if err != nil || out != "abab" {
		t.Fatalf("%q %v", out, err)
	}
	names := in.Commands()
	found := false
	for _, n := range names {
		if n == "double" {
			found = true
		}
	}
	if !found {
		t.Fatal("command not listed")
	}
}

func TestLineContinuation(t *testing.T) {
	if got := eval(t, "set a \\\n5"); got != "5" {
		t.Fatalf("continuation = %q", got)
	}
}
