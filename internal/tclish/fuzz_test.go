package tclish

import "testing"

func FuzzEval(f *testing.F) {
	f.Add(`set a 1; puts "$a [expr 1 + 1]"`)
	f.Add(`proc p {x} {return $x}; p {a b}`)
	f.Add(`foreach x {1 2 3} { if {$x == 2} { break } }`)
	f.Add("{unbalanced")
	f.Add(`expr (((((1)))))`)
	f.Fuzz(func(t *testing.T, script string) {
		in := New(nil)
		in.LoopLimit = 1000
		// Must terminate (depth/loop limits) and never panic.
		_, _ = in.Eval(script)
	})
}

func FuzzSplitList(f *testing.F) {
	f.Add(`a {b c} "d e" $f`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, list string) {
		elems, err := SplitList(list)
		if err != nil {
			return
		}
		// Join/Split must be stable on the produced elements.
		again, err := SplitList(JoinList(elems))
		if err != nil || len(again) != len(elems) {
			t.Fatalf("round trip: %v (%d vs %d)", err, len(again), len(elems))
		}
		for i := range elems {
			if elems[i] != again[i] {
				t.Fatalf("element %d: %q vs %q", i, elems[i], again[i])
			}
		}
	})
}
