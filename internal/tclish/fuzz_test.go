package tclish

import "testing"

func FuzzEval(f *testing.F) {
	f.Add(`set a 1; puts "$a [expr 1 + 1]"`)
	f.Add(`proc p {x} {return $x}; p {a b}`)
	f.Add(`foreach x {1 2 3} { if {$x == 2} { break } }`)
	f.Add("{unbalanced")
	f.Add(`expr (((((1)))))`)
	// Policy-shaped corpus: the control plane feeds operator scripts of
	// this shape straight into Eval, so the fuzzer should mutate from
	// them too — rule blocks, braced conditions, large unsigned metric
	// counters, command substitution inside expr.
	f.Add("rule scale-up {\n when {[metric exec.queue.depth] > 8}\n for 3\n cooldown 10\n deadband 10\n do {dispatchers 8}\n}")
	f.Add(`expr {18446744073709551615 > 9223372036854775808 && $x < 10}`)
	f.Add(`expr {9007199254740993 - 9007199254740992 == 1}`)
	f.Add("foreach n {1 2 3} {\n rule r$n { when {1} do {log r} }\n}")
	f.Add(`rule q { when {[rate pt.tcp.tx.frames] > 1000} do {qos bulk 6 500 64} }`)
	f.Fuzz(func(t *testing.T, script string) {
		in := New(nil)
		in.LoopLimit = 1000
		// Must terminate (depth/loop limits) and never panic.
		_, _ = in.Eval(script)
	})
}

func FuzzSplitList(f *testing.F) {
	f.Add(`a {b c} "d e" $f`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, list string) {
		elems, err := SplitList(list)
		if err != nil {
			return
		}
		// Join/Split must be stable on the produced elements.
		again, err := SplitList(JoinList(elems))
		if err != nil || len(again) != len(elems) {
			t.Fatalf("round trip: %v (%d vs %d)", err, len(again), len(elems))
		}
		for i := range elems {
			if elems[i] != again[i] {
				t.Fatalf("element %d: %q vs %q", i, elems[i], again[i])
			}
		}
	})
}
