package tclish

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrExpr reports a malformed expression.
var ErrExpr = errors.New("tclish: expression error")

// exprString evaluates an expression after performing substitution on it
// (Tcl's expr runs its own substitution pass, which is what makes braced
// conditions like {$i < 10} work in while loops).
func (in *Interp) exprString(raw string) (string, error) {
	sub, err := in.Substitute(raw)
	if err != nil {
		return "", err
	}
	v, err := evalExpr(sub)
	if err != nil {
		return "", err
	}
	return v.text(), nil
}

// exprBool evaluates an expression as a condition.
func (in *Interp) exprBool(raw string) (bool, error) {
	s, err := in.exprString(raw)
	if err != nil {
		return false, err
	}
	switch strings.TrimSpace(s) {
	case "0", "false", "no", "":
		return false, nil
	default:
		return true, nil
	}
}

// value is an expression operand: integer, unsigned integer (literals
// above 1<<63-1, e.g. raw uint64 metric counters substituted into policy
// conditions), float or string.  The 'u' kind exists so comparisons on
// large counters stay exact: the float fallback loses integer precision
// above 2^53, which is well inside the range of a long-lived counter.
type value struct {
	kind byte // 'i', 'u', 'f' or 's'
	i    int64
	u    uint64
	f    float64
	s    string
}

func intVal(i int64) value     { return value{kind: 'i', i: i} }
func uintVal(u uint64) value   { return value{kind: 'u', u: u} }
func floatVal(f float64) value { return value{kind: 'f', f: f} }
func strVal(s string) value    { return value{kind: 's', s: s} }
func boolVal(b bool) value {
	if b {
		return intVal(1)
	}
	return intVal(0)
}

func (v value) text() string {
	switch v.kind {
	case 'i':
		return strconv.FormatInt(v.i, 10)
	case 'u':
		return strconv.FormatUint(v.u, 10)
	case 'f':
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	default:
		return v.s
	}
}

func (v value) asFloat() float64 {
	switch v.kind {
	case 'i':
		return float64(v.i)
	case 'u':
		return float64(v.u)
	case 'f':
		return v.f
	default:
		return 0
	}
}

func (v value) isNumber() bool { return v.kind == 'i' || v.kind == 'u' || v.kind == 'f' }

// isInt reports an exact-integer operand ('i' or 'u').
func (v value) isInt() bool { return v.kind == 'i' || v.kind == 'u' }

func (v value) truthy() bool {
	switch v.kind {
	case 'i':
		return v.i != 0
	case 'u':
		return v.u != 0
	case 'f':
		return v.f != 0
	default:
		return v.s != "" && v.s != "0" && v.s != "false" && v.s != "no"
	}
}

// lexer

type exprToken struct {
	kind byte // 'n' number, 's' string, 'o' operator, '(' , ')', 0 EOF
	text string
}

type exprLexer struct {
	src string
	pos int
	tok exprToken
}

var exprOps = []string{"<=", ">=", "==", "!=", "&&", "||", "+", "-", "*", "/", "%", "<", ">", "!", "(", ")"}

func (l *exprLexer) next() error {
	for l.pos < len(l.src) && (l.src[l.pos] == ' ' || l.src[l.pos] == '\t' || l.src[l.pos] == '\n' || l.src[l.pos] == '\r') {
		l.pos++
	}
	if l.pos >= len(l.src) {
		l.tok = exprToken{kind: 0}
		return nil
	}
	c := l.src[l.pos]
	if c == '(' || c == ')' {
		l.tok = exprToken{kind: c}
		l.pos++
		return nil
	}
	for _, op := range exprOps {
		if strings.HasPrefix(l.src[l.pos:], op) {
			l.tok = exprToken{kind: 'o', text: op}
			l.pos += len(op)
			return nil
		}
	}
	if c >= '0' && c <= '9' || c == '.' {
		j := l.pos
		for j < len(l.src) {
			d := l.src[j]
			if d >= '0' && d <= '9' || d == '.' || d == 'e' || d == 'E' || d == 'x' || d == 'X' ||
				(d >= 'a' && d <= 'f') || (d >= 'A' && d <= 'F') ||
				((d == '+' || d == '-') && j > l.pos && (l.src[j-1] == 'e' || l.src[j-1] == 'E')) {
				j++
				continue
			}
			break
		}
		l.tok = exprToken{kind: 'n', text: l.src[l.pos:j]}
		l.pos = j
		return nil
	}
	if c == '"' {
		j := l.pos + 1
		for j < len(l.src) && l.src[j] != '"' {
			j++
		}
		if j >= len(l.src) {
			return fmt.Errorf("%w: unterminated string", ErrExpr)
		}
		l.tok = exprToken{kind: 's', text: l.src[l.pos+1 : j]}
		l.pos = j + 1
		return nil
	}
	// A bare word: identifier-like operand (eq/ne operators or a string).
	j := l.pos
	for j < len(l.src) && (isAlnum(l.src[j]) || l.src[j] == '_' || l.src[j] == '.') {
		j++
	}
	if j == l.pos {
		return fmt.Errorf("%w: unexpected character %q", ErrExpr, c)
	}
	word := l.src[l.pos:j]
	l.pos = j
	switch word {
	case "eq", "ne":
		l.tok = exprToken{kind: 'o', text: word}
	case "true", "false", "yes", "no":
		l.tok = exprToken{kind: 's', text: word}
	default:
		l.tok = exprToken{kind: 's', text: word}
	}
	return nil
}

// evalExpr parses and evaluates one fully substituted expression.
func evalExpr(src string) (value, error) {
	l := &exprLexer{src: src}
	if err := l.next(); err != nil {
		return value{}, err
	}
	v, err := parseOr(l)
	if err != nil {
		return value{}, err
	}
	if l.tok.kind != 0 {
		return value{}, fmt.Errorf("%w: trailing %q", ErrExpr, l.tok.text)
	}
	return v, nil
}

func parseOr(l *exprLexer) (value, error) {
	v, err := parseAnd(l)
	if err != nil {
		return value{}, err
	}
	for l.tok.kind == 'o' && l.tok.text == "||" {
		if err := l.next(); err != nil {
			return value{}, err
		}
		rhs, err := parseAnd(l)
		if err != nil {
			return value{}, err
		}
		v = boolVal(v.truthy() || rhs.truthy())
	}
	return v, nil
}

func parseAnd(l *exprLexer) (value, error) {
	v, err := parseCmp(l)
	if err != nil {
		return value{}, err
	}
	for l.tok.kind == 'o' && l.tok.text == "&&" {
		if err := l.next(); err != nil {
			return value{}, err
		}
		rhs, err := parseCmp(l)
		if err != nil {
			return value{}, err
		}
		v = boolVal(v.truthy() && rhs.truthy())
	}
	return v, nil
}

func parseCmp(l *exprLexer) (value, error) {
	v, err := parseAdd(l)
	if err != nil {
		return value{}, err
	}
	for l.tok.kind == 'o' {
		op := l.tok.text
		switch op {
		case "==", "!=", "<", "<=", ">", ">=", "eq", "ne":
		default:
			return v, nil
		}
		if err := l.next(); err != nil {
			return value{}, err
		}
		rhs, err := parseAdd(l)
		if err != nil {
			return value{}, err
		}
		v, err = compare(op, v, rhs)
		if err != nil {
			return value{}, err
		}
	}
	return v, nil
}

// cmpInt orders two exact-integer values without rounding: -1, 0 or +1.
// Sign handles the mixed case — a negative int64 is below any uint64, and
// a uint64 above 1<<63-1 is above any int64.
func cmpInt(a, b value) int {
	an, bn := a.kind == 'i' && a.i < 0, b.kind == 'i' && b.i < 0
	switch {
	case an && !bn:
		return -1
	case !an && bn:
		return 1
	case an && bn:
		switch {
		case a.i < b.i:
			return -1
		case a.i > b.i:
			return 1
		}
		return 0
	}
	au, bu := a.u, b.u
	if a.kind == 'i' {
		au = uint64(a.i)
	}
	if b.kind == 'i' {
		bu = uint64(b.i)
	}
	switch {
	case au < bu:
		return -1
	case au > bu:
		return 1
	}
	return 0
}

func compare(op string, a, b value) (value, error) {
	if op == "eq" || op == "ne" {
		eq := a.text() == b.text()
		return boolVal(eq == (op == "eq")), nil
	}
	if a.isInt() && b.isInt() {
		// Exact-integer comparison: large uint64 metric counters must not
		// round through float64 (equality above 2^53 would lie).
		c := cmpInt(a, b)
		switch op {
		case "==":
			return boolVal(c == 0), nil
		case "!=":
			return boolVal(c != 0), nil
		case "<":
			return boolVal(c < 0), nil
		case "<=":
			return boolVal(c <= 0), nil
		case ">":
			return boolVal(c > 0), nil
		case ">=":
			return boolVal(c >= 0), nil
		}
	}
	if a.isNumber() && b.isNumber() {
		x, y := a.asFloat(), b.asFloat()
		switch op {
		case "==":
			return boolVal(x == y), nil
		case "!=":
			return boolVal(x != y), nil
		case "<":
			return boolVal(x < y), nil
		case "<=":
			return boolVal(x <= y), nil
		case ">":
			return boolVal(x > y), nil
		case ">=":
			return boolVal(x >= y), nil
		}
	}
	// String comparison for non-numeric operands.
	switch op {
	case "==":
		return boolVal(a.text() == b.text()), nil
	case "!=":
		return boolVal(a.text() != b.text()), nil
	default:
		return value{}, fmt.Errorf("%w: %q needs numeric operands", ErrExpr, op)
	}
}

func parseAdd(l *exprLexer) (value, error) {
	v, err := parseMul(l)
	if err != nil {
		return value{}, err
	}
	for l.tok.kind == 'o' && (l.tok.text == "+" || l.tok.text == "-") {
		op := l.tok.text
		if err := l.next(); err != nil {
			return value{}, err
		}
		rhs, err := parseMul(l)
		if err != nil {
			return value{}, err
		}
		v, err = arith(op, v, rhs)
		if err != nil {
			return value{}, err
		}
	}
	return v, nil
}

func parseMul(l *exprLexer) (value, error) {
	v, err := parseUnary(l)
	if err != nil {
		return value{}, err
	}
	for l.tok.kind == 'o' && (l.tok.text == "*" || l.tok.text == "/" || l.tok.text == "%") {
		op := l.tok.text
		if err := l.next(); err != nil {
			return value{}, err
		}
		rhs, err := parseUnary(l)
		if err != nil {
			return value{}, err
		}
		v, err = arith(op, v, rhs)
		if err != nil {
			return value{}, err
		}
	}
	return v, nil
}

func arith(op string, a, b value) (value, error) {
	if !a.isNumber() || !b.isNumber() {
		return value{}, fmt.Errorf("%w: %q needs numeric operands", ErrExpr, op)
	}
	// Unsigned operands that fit in int64 demote to the plain integer
	// path; genuinely large ones get exact uint64 arithmetic below.
	if a.kind == 'u' && a.u <= 1<<63-1 {
		a = intVal(int64(a.u))
	}
	if b.kind == 'u' && b.u <= 1<<63-1 {
		b = intVal(int64(b.u))
	}
	if (a.kind == 'u' || b.kind == 'u') && a.isInt() && b.isInt() {
		if v, ok, err := arithUint(op, a, b); ok || err != nil {
			return v, err
		}
		// Result not exactly representable (mixed sign, overflow):
		// fall through to the float path, precision loss documented in
		// doc/control-plane.md.
	}
	if a.kind == 'i' && b.kind == 'i' {
		switch op {
		case "+":
			return intVal(a.i + b.i), nil
		case "-":
			return intVal(a.i - b.i), nil
		case "*":
			return intVal(a.i * b.i), nil
		case "/":
			if b.i == 0 {
				return value{}, fmt.Errorf("%w: division by zero", ErrExpr)
			}
			return intVal(a.i / b.i), nil
		case "%":
			if b.i == 0 {
				return value{}, fmt.Errorf("%w: division by zero", ErrExpr)
			}
			return intVal(a.i % b.i), nil
		}
	}
	x, y := a.asFloat(), b.asFloat()
	switch op {
	case "+":
		return floatVal(x + y), nil
	case "-":
		return floatVal(x - y), nil
	case "*":
		return floatVal(x * y), nil
	case "/":
		if y == 0 {
			return value{}, fmt.Errorf("%w: division by zero", ErrExpr)
		}
		return floatVal(x / y), nil
	case "%":
		return value{}, fmt.Errorf("%w: %% needs integer operands", ErrExpr)
	}
	return value{}, fmt.Errorf("%w: unknown operator %q", ErrExpr, op)
}

// arithUint performs exact arithmetic when at least one operand is a large
// uint64.  ok=false means the result is not exactly representable in the
// integer kinds (a negative operand, an overflow, an underflow past
// -(1<<63-1)) and the caller should fall back to float.
func arithUint(op string, a, b value) (value, bool, error) {
	if (a.kind == 'i' && a.i < 0) || (b.kind == 'i' && b.i < 0) {
		return value{}, false, nil
	}
	au, bu := a.u, b.u
	if a.kind == 'i' {
		au = uint64(a.i)
	}
	if b.kind == 'i' {
		bu = uint64(b.i)
	}
	switch op {
	case "+":
		if s := au + bu; s >= au {
			return uintVal(s), true, nil
		}
	case "-":
		if au >= bu {
			return uintVal(au - bu), true, nil
		}
		if d := bu - au; d <= 1<<63-1 {
			return intVal(-int64(d)), true, nil
		}
	case "*":
		if au == 0 || bu == 0 {
			return uintVal(0), true, nil
		}
		if p := au * bu; p/au == bu {
			return uintVal(p), true, nil
		}
	case "/":
		if bu == 0 {
			return value{}, false, fmt.Errorf("%w: division by zero", ErrExpr)
		}
		return uintVal(au / bu), true, nil
	case "%":
		if bu == 0 {
			return value{}, false, fmt.Errorf("%w: division by zero", ErrExpr)
		}
		return uintVal(au % bu), true, nil
	}
	return value{}, false, nil
}

func parseUnary(l *exprLexer) (value, error) {
	if l.tok.kind == 'o' {
		switch l.tok.text {
		case "-":
			if err := l.next(); err != nil {
				return value{}, err
			}
			v, err := parseUnary(l)
			if err != nil {
				return value{}, err
			}
			if v.kind == 'i' {
				return intVal(-v.i), nil
			}
			if v.kind == 'u' {
				if v.u <= 1<<63-1 {
					return intVal(-int64(v.u)), nil
				}
				return floatVal(-float64(v.u)), nil
			}
			if v.kind == 'f' {
				return floatVal(-v.f), nil
			}
			return value{}, fmt.Errorf("%w: unary - on string", ErrExpr)
		case "+":
			if err := l.next(); err != nil {
				return value{}, err
			}
			return parseUnary(l)
		case "!":
			if err := l.next(); err != nil {
				return value{}, err
			}
			v, err := parseUnary(l)
			if err != nil {
				return value{}, err
			}
			return boolVal(!v.truthy()), nil
		}
	}
	return parsePrimary(l)
}

func parsePrimary(l *exprLexer) (value, error) {
	switch l.tok.kind {
	case '(':
		if err := l.next(); err != nil {
			return value{}, err
		}
		v, err := parseOr(l)
		if err != nil {
			return value{}, err
		}
		if l.tok.kind != ')' {
			return value{}, fmt.Errorf("%w: missing )", ErrExpr)
		}
		return v, l.next()
	case 'n':
		text := l.tok.text
		if err := l.next(); err != nil {
			return value{}, err
		}
		if i, err := strconv.ParseInt(text, 0, 64); err == nil {
			return intVal(i), nil
		}
		// Above 1<<63-1 (raw uint64 counters): keep exact, don't round
		// through float.
		if u, err := strconv.ParseUint(text, 0, 64); err == nil {
			return uintVal(u), nil
		}
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return value{}, fmt.Errorf("%w: bad number %q", ErrExpr, text)
		}
		return floatVal(f), nil
	case 's':
		text := l.tok.text
		if err := l.next(); err != nil {
			return value{}, err
		}
		switch text {
		case "true", "yes":
			return intVal(1), nil
		case "false", "no":
			return intVal(0), nil
		}
		return strVal(text), nil
	case 0:
		return value{}, fmt.Errorf("%w: unexpected end of expression", ErrExpr)
	default:
		return value{}, fmt.Errorf("%w: unexpected %q", ErrExpr, l.tok.text)
	}
}
