package daq

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"xdaq/internal/device"
	"xdaq/internal/i2o"
)

// DefaultShardSlots is the shard slot count when SetSharding is not
// called.  It only needs to comfortably exceed the builder-unit count so
// rebalancing granularity stays fine; it is not a scaling parameter.
const DefaultShardSlots = 16

// EVM is the event manager: the owner of the event space.  It maintains
// the versioned shard map assigning event-range blocks to builder units,
// grants blocks on allocation requests (each block to exactly the unit
// owning its slot), accounts built events, and — when a builder is
// removed, typically because internal/health declared its node down —
// reassigns the dead unit's slots and re-queues its in-flight blocks for
// the survivors, skipping the events already built so nothing is built
// twice.
type EVM struct {
	dev *device.Device

	limit      atomic.Uint64 // events per run, 0 = unbounded
	allocated  atomic.Uint64 // events granted (fresh grants only)
	built      atomic.Uint64 // distinct events reported built
	duplicates atomic.Uint64 // built notes for already-built or unknown events
	reassigned atomic.Uint64 // blocks orphaned by builder removal

	mu        sync.Mutex
	slots     int    // shard map geometry, fixed at first registration
	rangeSize uint32 // events per block
	shard     *ShardMap
	bus       map[uint32]*evmBU
	cursor    []uint64               // per slot: ordinal of its next fresh block
	out       map[uint64]*blockState // granted, not fully built
	orphans   map[uint64]*blockState // owner removed, awaiting re-grant
	subs      map[i2o.TID]bool       // shard map subscribers (RUs, aggregators)
}

// evmBU is one registered builder unit.
type evmBU struct {
	node i2o.NodeID
	rr   int // round-robin start into its slot list
}

// blockState tracks one granted block of events.
type blockState struct {
	bu    uint32
	first uint64
	count uint32
	built uint64 // bit i: event first+i is built
}

func (b *blockState) done() bool {
	return bits.OnesCount64(b.built) == int(b.count)
}

// NewEVM creates the event manager device.  limit bounds the number of
// events handed out (0 = unbounded); it is also exposed as the "events"
// parameter so the run size is configurable from the cluster controller.
func NewEVM(limit uint64) *EVM {
	e := &EVM{
		slots:     DefaultShardSlots,
		rangeSize: 1,
		bus:       make(map[uint32]*evmBU),
		out:       make(map[uint64]*blockState),
		orphans:   make(map[uint64]*blockState),
		subs:      make(map[i2o.TID]bool),
	}
	e.limit.Store(limit)
	e.dev = device.New(EVMClass, 0)
	e.dev.OnPlugged = func(ctx *device.Context) error {
		registerEVMMetrics(ctx, e)
		return nil
	}
	e.dev.Params().Set("events", int64(limit))
	e.dev.Params().OnSet(func(changed []i2o.Param) {
		for _, p := range changed {
			if p.Key == "events" {
				if n, ok := p.Value.(int64); ok && n >= 0 {
					e.limit.Store(uint64(n))
				}
			}
		}
	})
	e.dev.Bind(XFuncAllocate, e.handleAllocate)
	e.dev.Bind(XFuncBuilt, e.handleBuilt)
	e.dev.Bind(XFuncRegister, e.handleRegister)
	e.dev.Bind(XFuncShardMap, e.handleShardMap)
	e.dev.Bind(XFuncRelease, e.handleRelease)
	return e
}

// Device returns the module to plug into an executive.
func (e *EVM) Device() *device.Device { return e.dev }

// SetSharding configures the shard geometry: slot count (granularity of
// rebalancing; keep it above the builder count) and events per block (the
// batching factor of the hierarchical data path).  It must be called
// before the first builder registers; afterwards the geometry is frozen
// for the life of the map.
func (e *EVM) SetSharding(slots int, rangeSize uint32) {
	if slots < 1 {
		slots = 1
	}
	if rangeSize < 1 {
		rangeSize = 1
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.shard != nil {
		return // geometry is frozen once the map exists
	}
	e.slots = slots
	e.rangeSize = rangeSize
}

// Allocated returns how many events have been granted.
func (e *EVM) Allocated() uint64 { return e.allocated.Load() }

// Built returns how many distinct events were reported built.
func (e *EVM) Built() uint64 { return e.built.Load() }

// Duplicates returns how many built notifications named an event already
// built (or never granted) — the exactly-once violation counter the chaos
// checker audits.
func (e *EVM) Duplicates() uint64 { return e.duplicates.Load() }

// Reassigned returns how many in-flight blocks were orphaned and
// re-queued by builder removals.
func (e *EVM) Reassigned() uint64 { return e.reassigned.Load() }

// ShardVersion returns the current shard map version (0 before any
// builder registered).
func (e *EVM) ShardVersion() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.shard == nil {
		return 0
	}
	return e.shard.Version
}

// Reset rewinds the event space for a new run (between benchmark or chaos
// rounds).  Registrations, the shard map, and subscribers survive; grant
// cursors, in-flight blocks, and counters do not.
func (e *EVM) Reset(limit uint64) {
	e.mu.Lock()
	e.limit.Store(limit)
	e.allocated.Store(0)
	e.built.Store(0)
	e.duplicates.Store(0)
	e.reassigned.Store(0)
	for i := range e.cursor {
		e.cursor[i] = 0
	}
	e.out = make(map[uint64]*blockState)
	e.orphans = make(map[uint64]*blockState)
	e.mu.Unlock()
}

// PeerDown removes every builder unit registered from the given node —
// the hook internal/health's OnState callback plugs into (wired by the
// caller to avoid coupling the DAQ layer to the monitor).
func (e *EVM) PeerDown(node i2o.NodeID) {
	e.mu.Lock()
	var gone []uint32
	for id, bu := range e.bus {
		if bu.node == node {
			gone = append(gone, id)
		}
	}
	e.mu.Unlock()
	for _, id := range gone {
		e.RemoveBU(id)
	}
}

// RemoveBU evicts one builder unit: its slots are reassigned to the
// survivors and its in-flight blocks are re-queued for re-grant with the
// already-built events masked out, so every event is still built exactly
// once.
func (e *EVM) RemoveBU(bu uint32) {
	e.mu.Lock()
	if _, ok := e.bus[bu]; !ok {
		e.mu.Unlock()
		return
	}
	delete(e.bus, bu)
	e.shard.Remove(bu)
	n := 0
	for id, st := range e.out {
		if st.bu != bu {
			continue
		}
		delete(e.out, id)
		if st.done() {
			continue
		}
		st.bu = NoOwner
		e.orphans[id] = st
		n++
	}
	e.reassigned.Add(uint64(n))
	payload := EncodeShardMap(e.shard)
	subs := e.subscribers()
	e.mu.Unlock()
	e.push(subs, payload)
}

// subscribers snapshots the subscriber set; callers hold e.mu.
func (e *EVM) subscribers() []i2o.TID {
	out := make([]i2o.TID, 0, len(e.subs))
	for t := range e.subs {
		out = append(out, t)
	}
	return out
}

// push sends the encoded shard map one-way to every subscriber.
func (e *EVM) push(subs []i2o.TID, payload []byte) {
	if len(subs) == 0 {
		return
	}
	ctx, err := e.dev.Ctx()
	if err != nil {
		return
	}
	for _, t := range subs {
		if err := send(ctx.Host, t, e.dev.TID(), XFuncShardMap, i2o.PriorityHigh, payload); err != nil {
			ctx.Host.Logf("daq: shard map push to %v: %v", t, err)
		}
	}
}

// handleRegister admits a builder unit to the shard map.
func (e *EVM) handleRegister(ctx *device.Context, m *i2o.Message) error {
	req, err := DecodeRegisterReq(m.Payload)
	if err != nil {
		return err
	}
	e.mu.Lock()
	if e.shard == nil {
		e.shard = NewShardMap(e.slots, e.rangeSize)
		e.cursor = make([]uint64, len(e.shard.Owners))
	}
	changed := e.shard.Add(req.BU)
	if _, ok := e.bus[req.BU]; !ok {
		e.bus[req.BU] = &evmBU{node: i2o.NodeID(req.Node)}
	}
	version := e.shard.Version
	var payload []byte
	var subs []i2o.TID
	if changed {
		payload = EncodeShardMap(e.shard)
		subs = e.subscribers()
	}
	e.mu.Unlock()
	e.push(subs, payload)
	return device.ReplyIfExpected(ctx, m, EncodeRegisterRep(RegisterRep{Version: version}))
}

// handleShardMap serves the current map and records the asker as a
// subscriber for future pushes.
func (e *EVM) handleShardMap(ctx *device.Context, m *i2o.Message) error {
	if !m.Flags.Has(i2o.FlagReplyExpected) {
		return nil
	}
	e.mu.Lock()
	if e.shard == nil {
		e.shard = NewShardMap(e.slots, e.rangeSize)
		e.cursor = make([]uint64, len(e.shard.Owners))
	}
	e.subs[m.Initiator] = true
	payload := EncodeShardMap(e.shard)
	e.mu.Unlock()
	return device.ReplyIfExpected(ctx, m, payload)
}

// handleAllocate grants the next event block owned by the asking builder.
func (e *EVM) handleAllocate(ctx *device.Context, m *i2o.Message) error {
	if !m.Flags.Has(i2o.FlagReplyExpected) {
		return nil // an allocation nobody waits for is pointless
	}
	req, err := DecodeAllocReq(m.Payload)
	if err != nil {
		return err
	}
	e.mu.Lock()
	rep := e.allocate(req.BU)
	e.mu.Unlock()
	return device.ReplyIfExpected(ctx, m, EncodeAllocRep(rep))
}

// allocate picks the next block for bu; the caller holds e.mu.
func (e *EVM) allocate(bu uint32) AllocRep {
	if e.shard == nil {
		return AllocRep{Status: AllocOver}
	}
	rep := AllocRep{Version: e.shard.Version}
	me, registered := e.bus[bu]
	if !registered {
		// Unknown or evicted builders are told to stop: their event range
		// belongs to someone else now.
		rep.Status = AllocOver
		return rep
	}

	// Orphaned blocks first: work a removed builder left behind, granted
	// to whichever survivor now owns the slot.  The skip mask carries the
	// events the dead builder already finished.
	var pick uint64
	found := false
	for id := range e.orphans {
		if e.shard.Owners[e.shard.Slot(id)] != bu {
			continue
		}
		if !found || id < pick {
			pick, found = id, true
		}
	}
	if found {
		st := e.orphans[pick]
		delete(e.orphans, pick)
		st.bu = bu
		e.out[pick] = st
		rep.Status = AllocGrant
		rep.First = st.first
		rep.Count = st.count
		rep.Skip = st.built
		return rep
	}

	// Fresh blocks: round-robin over the slots this builder owns, bounded
	// by the event limit.
	limit := e.limit.Load()
	var mine []int
	for s, o := range e.shard.Owners {
		if o == bu {
			mine = append(mine, s)
		}
	}
	S := uint64(len(e.shard.Owners))
	R := uint64(e.shard.Range)
	for i := 0; i < len(mine); i++ {
		s := mine[(me.rr+i)%len(mine)]
		block := uint64(s) + e.cursor[s]*S
		first := block*R + 1
		if limit > 0 && first > limit {
			continue // slot exhausted for this run
		}
		count := uint32(R)
		if limit > 0 && first+R-1 > limit {
			count = uint32(limit - first + 1)
		}
		e.cursor[s]++
		me.rr = (me.rr + i + 1) % len(mine)
		e.out[block] = &blockState{bu: bu, first: first, count: count}
		e.allocated.Add(uint64(count))
		rep.Status = AllocGrant
		rep.First = first
		rep.Count = count
		return rep
	}

	// Nothing fresh for this builder.  If any block is still in flight or
	// orphaned — or events in other builders' slots have not even been
	// granted yet — work may still come to us through a rebalance, so the
	// builder must keep asking.  Over is only safe once the entire range
	// is granted and every block accounted: a builder that quits earlier
	// would strand the events of a peer that dies after the quit.
	if len(e.out) > 0 || len(e.orphans) > 0 || (limit > 0 && e.allocated.Load() < limit) {
		rep.Status = AllocRetry
	} else {
		rep.Status = AllocOver
	}
	return rep
}

// handleRelease takes back a granted block its holder cannot finish: a
// rebalance changed the slot's owner between the grant and the fragment
// fetch, so the readout units fence the holder as not-owner.  The block
// (with whatever events are already built masked out) goes to the orphan
// queue and the next allocation from the current slot owner picks it up.
// Only the recorded holder can return a block — a stale note from an
// earlier grant generation is ignored.
func (e *EVM) handleRelease(ctx *device.Context, m *i2o.Message) error {
	note, err := DecodeReleaseNote(m.Payload)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.shard == nil {
		return nil
	}
	block := e.shard.Block(note.First)
	st := e.out[block]
	if st == nil || st.bu != note.BU || st.first != note.First {
		return nil // already re-granted, completed, or never ours
	}
	delete(e.out, block)
	if !st.done() {
		st.bu = NoOwner
		e.orphans[block] = st
		e.reassigned.Add(1)
	}
	return nil
}

// handleBuilt accounts one completed event.
func (e *EVM) handleBuilt(ctx *device.Context, m *i2o.Message) error {
	note, err := DecodeBuiltNote(m.Payload)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.shard == nil {
		e.duplicates.Add(1)
		return nil
	}
	block := e.shard.Block(note.Event)
	st := e.out[block]
	orphan := false
	if st == nil {
		st = e.orphans[block]
		orphan = true
	}
	if st == nil || note.Event < st.first || note.Event >= st.first+uint64(st.count) {
		e.duplicates.Add(1)
		return nil
	}
	bit := uint64(1) << (note.Event - st.first)
	if st.built&bit != 0 {
		e.duplicates.Add(1)
		return nil
	}
	st.built |= bit
	e.built.Add(1)
	if st.done() {
		if orphan {
			delete(e.orphans, block)
		} else {
			delete(e.out, block)
		}
	}
	return nil
}
