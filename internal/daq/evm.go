package daq

import (
	"sync/atomic"

	"xdaq/internal/device"
	"xdaq/internal/i2o"
)

// EVM is the event manager: the allocator of event identifiers.  One EVM
// serves any number of builder units; allocation is a single atomic
// counter bounded by the configured event count.
type EVM struct {
	dev   *device.Device
	limit atomic.Uint64 // 0 = unbounded
	next  atomic.Uint64
	built atomic.Uint64
}

// NewEVM creates the event manager device.  limit bounds the number of
// events handed out (0 = unbounded); it is also exposed as the "events"
// parameter so the run size is configurable from the cluster controller.
func NewEVM(limit uint64) *EVM {
	e := &EVM{}
	e.limit.Store(limit)
	e.dev = device.New(EVMClass, 0)
	e.dev.Params().Set("events", int64(limit))
	e.dev.Params().OnSet(func(changed []i2o.Param) {
		for _, p := range changed {
			if p.Key == "events" {
				if n, ok := p.Value.(int64); ok && n >= 0 {
					e.limit.Store(uint64(n))
				}
			}
		}
	})
	e.dev.Bind(XFuncAllocate, e.handleAllocate)
	e.dev.Bind(XFuncBuilt, e.handleBuilt)
	return e
}

// Device returns the module to plug into an executive.
func (e *EVM) Device() *device.Device { return e.dev }

// Allocated returns how many event ids have been handed out.
func (e *EVM) Allocated() uint64 { return e.next.Load() }

// Built returns how many completion notifications arrived.
func (e *EVM) Built() uint64 { return e.built.Load() }

// Reset rewinds the allocator (between benchmark runs).
func (e *EVM) Reset(limit uint64) {
	e.limit.Store(limit)
	e.next.Store(0)
	e.built.Store(0)
}

func (e *EVM) handleAllocate(ctx *device.Context, m *i2o.Message) error {
	if !m.Flags.Has(i2o.FlagReplyExpected) {
		return nil // an allocation nobody waits for is pointless
	}
	limit := e.limit.Load()
	id := e.next.Add(1)
	if limit > 0 && id > limit {
		e.next.Add(^uint64(0)) // undo; reply empty: the run is over
		return device.ReplyIfExpected(ctx, m, nil)
	}
	return device.ReplyIfExpected(ctx, m, putU64(id))
}

func (e *EVM) handleBuilt(ctx *device.Context, m *i2o.Message) error {
	if _, ok := getU64(m.Payload); !ok {
		return i2o.ErrTruncated
	}
	e.built.Add(1)
	return nil
}
