package daq

import (
	"testing"
	"time"

	"xdaq/internal/executive"
	"xdaq/internal/i2o"
	"xdaq/internal/pta"
	"xdaq/internal/storage"
	"xdaq/internal/transport/loopback"
)

// storageRig is the full chain under test: EVM on node 1, RUs next,
// one BU, then the storage writers, all over loopback.
type storageRig struct {
	dir string
	evm *EVM
	bu  *BU
	sws []*storage.SW
}

func buildStorageRig(t *testing.T, nRU, nSW int, events uint64, fragSize int, opts storage.Options) *storageRig {
	t.Helper()
	fabric := loopback.NewFabric()
	total := 1 + nRU + 1 + nSW
	ids := make([]i2o.NodeID, total)
	for i := range ids {
		ids[i] = i2o.NodeID(i + 1)
	}
	execs := make(map[i2o.NodeID]*executive.Executive, total)
	for _, id := range ids {
		e := executive.New(executive.Options{
			Name: "daq", Node: id,
			RequestTimeout: 3 * time.Second,
			Logf:           func(string, ...any) {},
		})
		agent, err := pta.New(e)
		if err != nil {
			t.Fatal(err)
		}
		ep, err := fabric.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := agent.Register(ep, pta.Task); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			agent.Close()
			e.Close()
		})
		for _, peer := range ids {
			if peer != id {
				e.SetRoute(peer, loopback.DefaultName)
			}
		}
		execs[id] = e
	}

	r := &storageRig{dir: t.TempDir()}
	r.evm = NewEVM(events)
	if _, err := execs[1].Plug(r.evm.Device()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nRU; i++ {
		ru := NewRU(i, fragSize)
		if _, err := execs[i2o.NodeID(2+i)].Plug(ru.Device()); err != nil {
			t.Fatal(err)
		}
	}
	buNode := i2o.NodeID(2 + nRU)
	opts.Dir = r.dir
	for i := 0; i < nSW; i++ {
		e := execs[i2o.NodeID(3+nRU+i)]
		sw := storage.NewSW(i, e.Allocator())
		if _, err := e.Plug(sw.Device()); err != nil {
			t.Fatal(err)
		}
		o := opts
		o.Instance = i
		w, err := storage.Open(o)
		if err != nil {
			t.Fatal(err)
		}
		sw.Attach(w)
		r.sws = append(r.sws, sw)
	}

	r.bu = NewBU(0)
	buExec := execs[buNode]
	if _, err := buExec.Plug(r.bu.Device()); err != nil {
		t.Fatal(err)
	}
	evmTID, err := buExec.Discover(1, EVMClass, 0)
	if err != nil {
		t.Fatal(err)
	}
	ruTIDs := make([]i2o.TID, nRU)
	for j := 0; j < nRU; j++ {
		if ruTIDs[j], err = buExec.Discover(i2o.NodeID(2+j), RUClass, j); err != nil {
			t.Fatal(err)
		}
	}
	swTIDs := make([]i2o.TID, nSW)
	for j := 0; j < nSW; j++ {
		if swTIDs[j], err = buExec.Discover(i2o.NodeID(3+nRU+j), storage.ClassSW, j); err != nil {
			t.Fatal(err)
		}
	}
	r.bu.Configure(evmTID, ruTIDs)
	r.bu.SetStorage(swTIDs, 8)
	return r
}

// TestBUStreamsToStorage runs the whole acquisition pipeline: RUs feed
// the builder, every built event streams to its stripe's writer, and
// the run only completes when the store holds all of them.
func TestBUStreamsToStorage(t *testing.T) {
	const (
		events   = 30
		nRU      = 2
		fragSize = 128
	)
	r := buildStorageRig(t, nRU, 2, events, fragSize, storage.Options{ArenaSize: 1 << 16})
	if _, err := r.bu.Start(0, 4); err != nil {
		t.Fatal(err)
	}
	stats, err := r.bu.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Built != events || stats.Stored != events {
		t.Fatalf("built=%d stored=%d, want %d/%d", stats.Built, stats.Stored, events, events)
	}
	// The EVM allocates event ids from 1.
	for i, sw := range r.sws {
		for ev := uint64(1); ev <= events; ev++ {
			want := ev%2 == uint64(i)
			if sw.Writer().Contains(ev) != want {
				t.Fatalf("stripe %d: contains(%d)=%v, want %v", i, ev, !want, want)
			}
		}
		if err := sw.Writer().Close(); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := storage.LoadSet(r.dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != events {
		t.Fatalf("store holds %d events, want %d", len(recs), events)
	}
	for i, rec := range recs {
		if rec.Event != uint64(i+1) {
			t.Fatalf("record %d: event %d (lost or duplicated)", i, rec.Event)
		}
		if len(rec.Data) != nRU*fragSize {
			t.Fatalf("event %d: %d bytes, want %d", rec.Event, len(rec.Data), nRU*fragSize)
		}
		// Each fragment's fill byte identifies its RU and event.
		for ru := 0; ru < nRU; ru++ {
			fill := rec.Data[ru*fragSize]
			if fill != FragmentFill(0, rec.Event) && fill != FragmentFill(1, rec.Event) {
				t.Fatalf("event %d: fragment %d fill %#x unrecognized", rec.Event, ru, fill)
			}
		}
	}
}

// TestBUStorageBackpressure saturates a single slow writer and checks
// the window throttles the build instead of losing events: the run
// still completes, every event is durable, and the stall counter shows
// the backpressure actually engaged.
func TestBUStorageBackpressure(t *testing.T) {
	const events = 24
	r := buildStorageRig(t, 2, 1, events, 256, storage.Options{
		ArenaSize: 1 << 10,
		SimDelay:  2 * time.Millisecond,
	})
	if _, err := r.bu.Start(0, 4); err != nil {
		t.Fatal(err)
	}
	stats, err := r.bu.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Built != events || stats.Stored != events {
		t.Fatalf("built=%d stored=%d, want %d/%d", stats.Built, stats.Stored, events, events)
	}
	if stats.WriteStalls == 0 {
		t.Fatalf("expected write stalls from the saturated writer, got none (%+v)", stats)
	}
	if err := r.sws[0].Writer().Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := storage.LoadSet(r.dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != events {
		t.Fatalf("store holds %d events, want %d", len(recs), events)
	}
}
