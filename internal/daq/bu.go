package daq

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"xdaq/internal/chain"
	"xdaq/internal/device"
	"xdaq/internal/i2o"
)

// BUStats summarizes a builder unit's run.
type BUStats struct {
	Built   uint64 // complete events assembled
	Bytes   uint64 // fragment payload bytes received
	Corrupt uint64 // fragments whose fill byte did not verify
}

// BU is a builder unit: the consumer side of the event builder.  It is a
// pure event-driven state machine — every transition happens inside a
// message handler on the executive's dispatch goroutine, so the run state
// needs no locking.  Start itself only posts a kickoff frame to the BU's
// own TiD ("essentially every occurrence in the system is mapped to an
// I2O message").
type BU struct {
	dev      *device.Device
	instance int

	// Wiring, set before Start.
	evm i2o.TID
	rus []i2o.TID
	fu  i2o.TID // optional filter unit receiving built events

	// OnEvent, if set, runs on the dispatch goroutine for every built
	// event (the hook where a filter unit would attach).
	OnEvent func(event uint64, size int)

	// Run state, touched only on the dispatch goroutine.
	target    uint64
	pipeline  int
	inflight  map[uint64]*eventBuild
	allocsOut int
	issued    uint64
	drained   bool

	built   atomic.Uint64
	bytes   atomic.Uint64
	corrupt atomic.Uint64

	xferSeq atomic.Uint32

	mu      sync.Mutex
	done    chan struct{}
	running bool
	failure error
}

type eventBuild struct {
	got   int
	bytes int
	frags [][]byte // fragment copies, kept only when forwarding to an FU
}

// NewBU creates builder unit `instance`.
func NewBU(instance int) *BU {
	b := &BU{instance: instance}
	b.dev = device.New(BUClass, instance)
	b.dev.Bind(XFuncStart, b.handleStart)
	b.dev.Bind(XFuncAllocate, b.handleAllocateReply)
	b.dev.Bind(XFuncFragment, b.handleFragmentReply)
	return b
}

// Device returns the module to plug into an executive.
func (b *BU) Device() *device.Device { return b.dev }

// Configure wires the builder to its event manager and readout units
// (local TiDs; proxies for remote devices).  Must precede Start.
func (b *BU) Configure(evm i2o.TID, rus []i2o.TID) {
	b.evm = evm
	b.rus = append([]i2o.TID(nil), rus...)
}

// SetFilterUnit streams every built event to the filter unit at fu as a
// chained transfer (the CMS chain's next stage).  i2o.TIDNone disables
// forwarding.  Must precede Start.
func (b *BU) SetFilterUnit(fu i2o.TID) { b.fu = fu }

// Stats returns the current counters.
func (b *BU) Stats() BUStats {
	return BUStats{Built: b.built.Load(), Bytes: b.bytes.Load(), Corrupt: b.corrupt.Load()}
}

// Err returns the failure that ended the run, if any.
func (b *BU) Err() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.failure
}

// Start begins building nevents events (0 = run until the EVM is
// exhausted), keeping up to pipeline allocations in flight.  It returns
// the channel closed at completion.
func (b *BU) Start(nevents uint64, pipeline int) (<-chan struct{}, error) {
	if pipeline <= 0 {
		pipeline = 1
	}
	ctx, err := b.dev.Ctx()
	if err != nil {
		return nil, err
	}
	if b.evm == i2o.TIDNone || len(b.rus) == 0 {
		return nil, errors.New("daq: builder unit not configured")
	}
	b.mu.Lock()
	if b.running {
		b.mu.Unlock()
		return nil, errors.New("daq: builder unit already running")
	}
	b.running = true
	b.failure = nil
	b.done = make(chan struct{})
	done := b.done
	b.mu.Unlock()

	payload := make([]byte, 12)
	binary.LittleEndian.PutUint64(payload, nevents)
	binary.LittleEndian.PutUint32(payload[8:], uint32(pipeline))
	if err := send(ctx.Host, b.dev.TID(), b.dev.TID(), XFuncStart, i2o.PriorityHigh, payload); err != nil {
		b.finish(err)
		return done, err
	}
	return done, nil
}

// Wait blocks until the current run completes and returns its stats.
func (b *BU) Wait() (BUStats, error) {
	b.mu.Lock()
	done := b.done
	b.mu.Unlock()
	if done != nil {
		<-done
	}
	return b.Stats(), b.Err()
}

func (b *BU) finish(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.running {
		return
	}
	b.running = false
	b.failure = err
	close(b.done)
}

func (b *BU) handleStart(ctx *device.Context, m *i2o.Message) error {
	if len(m.Payload) < 12 {
		b.finish(i2o.ErrTruncated)
		return i2o.ErrTruncated
	}
	b.target = binary.LittleEndian.Uint64(m.Payload)
	b.pipeline = int(binary.LittleEndian.Uint32(m.Payload[8:]))
	b.inflight = make(map[uint64]*eventBuild, b.pipeline)
	b.allocsOut = 0
	b.issued = 0
	b.drained = false
	b.built.Store(0)
	b.bytes.Store(0)
	b.corrupt.Store(0)
	b.pump(ctx)
	b.maybeFinish()
	return nil
}

// pump keeps the allocation pipeline full.
func (b *BU) pump(ctx *device.Context) {
	for b.allocsOut+len(b.inflight) < b.pipeline {
		if b.drained || (b.target > 0 && b.issued >= b.target) {
			return
		}
		if err := request(ctx.Host, b.evm, b.dev.TID(), XFuncAllocate, i2o.PriorityNormal, nil); err != nil {
			b.finish(fmt.Errorf("daq: allocate request: %w", err))
			return
		}
		b.allocsOut++
		b.issued++
	}
}

func (b *BU) handleAllocateReply(ctx *device.Context, m *i2o.Message) error {
	if !m.Flags.Has(i2o.FlagReply) {
		return fmt.Errorf("daq: builder unit does not allocate events")
	}
	b.allocsOut--
	if err := i2o.ReplyError(m); err != nil {
		b.finish(fmt.Errorf("daq: allocation failed: %w", err))
		return nil
	}
	event, ok := getU64(m.Payload)
	if !ok {
		// Empty allocation: the EVM ran out of events.
		b.drained = true
		b.maybeFinish()
		return nil
	}
	b.inflight[event] = &eventBuild{}
	payload := putU64(event)
	for _, ru := range b.rus {
		if err := request(ctx.Host, ru, b.dev.TID(), XFuncFragment, i2o.PriorityNormal, payload); err != nil {
			b.finish(fmt.Errorf("daq: fragment request to %v: %w", ru, err))
			return nil
		}
	}
	return nil
}

func (b *BU) handleFragmentReply(ctx *device.Context, m *i2o.Message) error {
	if !m.Flags.Has(i2o.FlagReply) {
		return fmt.Errorf("daq: builder unit serves no fragments")
	}
	if err := i2o.ReplyError(m); err != nil {
		b.finish(fmt.Errorf("daq: fragment failed: %w", err))
		return nil
	}
	event, ok := getU64(m.Payload)
	if !ok {
		b.finish(fmt.Errorf("daq: fragment reply without event id"))
		return nil
	}
	build, ok := b.inflight[event]
	if !ok {
		return nil // duplicate or stale; ignore
	}
	frag := m.Payload[8:]
	build.got++
	build.bytes += len(frag)
	if b.fu != i2o.TIDNone {
		// The frame's pool buffer is released after this handler returns;
		// keep a copy for the filter unit.
		build.frags = append(build.frags, append([]byte(nil), frag...))
	}
	if len(frag) > 0 {
		// Verify the deterministic fill without knowing which RU answered:
		// the fill byte must match one of our readout units for this event.
		valid := false
		for i := range b.rus {
			if frag[0] == FragmentFill(i, event) {
				valid = true
				break
			}
		}
		if !valid {
			b.corrupt.Add(1)
		}
	}
	if build.got < len(b.rus) {
		return nil
	}
	// Event complete.
	delete(b.inflight, event)
	b.built.Add(1)
	b.bytes.Add(uint64(build.bytes))
	if b.OnEvent != nil {
		b.OnEvent(event, build.bytes)
	}
	if err := send(ctx.Host, b.evm, b.dev.TID(), XFuncBuilt, i2o.PriorityLow, putU64(event)); err != nil {
		ctx.Host.Logf("daq: built notification: %v", err)
	}
	if b.fu != i2o.TIDNone {
		if err := b.forwardEvent(ctx, event, build); err != nil {
			ctx.Host.Logf("daq: event %d to filter unit: %v", event, err)
		}
	}
	b.pump(ctx)
	b.maybeFinish()
	return nil
}

// forwardEvent ships one complete event to the filter unit as a chain
// transfer: 8-byte event id, then the fragments in arrival order.
func (b *BU) forwardEvent(ctx *device.Context, event uint64, build *eventBuild) error {
	payload := make([]byte, 8, 8+build.bytes)
	binary.LittleEndian.PutUint64(payload, event)
	for _, f := range build.frags {
		payload = append(payload, f...)
	}
	id := uint32(b.xferSeq.Add(1))
	return chain.SendBytes(ctx.Host, b.fu, b.dev.TID(), XFuncEvent, i2o.PriorityBulk, id, payload)
}

// maybeFinish closes the run once no work remains.
func (b *BU) maybeFinish() {
	finished := b.allocsOut == 0 && len(b.inflight) == 0 &&
		(b.drained || (b.target > 0 && b.built.Load() >= b.target))
	if finished {
		b.finish(nil)
	}
}
