package daq

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"xdaq/internal/chain"
	"xdaq/internal/device"
	"xdaq/internal/i2o"
	"xdaq/internal/storage"
)

// storeSweepDelay paces the resend sweep over unacked storage writes.
// A lost frame (or a lost ack) heals on the next sweep; the writers'
// duplicate filter makes any double-delivery harmless.
const storeSweepDelay = 50 * time.Millisecond

// ErrKilled reports a run terminated by Kill (the chaos harness's builder
// failure injection).
var ErrKilled = errors.New("daq: builder unit killed")

// retryDelay paces the BU's polling retries: allocation re-asks after an
// AllocRetry, and fragment re-requests after a transient FailStaleShard.
const retryDelay = 500 * time.Microsecond

// BUStats summarizes a builder unit's run.  Every field is maintained
// with atomics, so Stats is safe to call from any goroutine while
// dispatchers and retry timers are mutating the run concurrently.
type BUStats struct {
	Built        uint64 // complete events assembled
	Bytes        uint64 // fragment payload bytes received
	Corrupt      uint64 // fragments whose fill byte did not verify
	StaleRetries uint64 // fragment requests retried after a shard fence
	LostBlocks   uint64 // blocks dropped because ownership moved away
	Stored       uint64 // events acked durable by a storage writer
	WriteStalls  uint64 // AckFull nacks (storage backpressure events)
}

// BU is a builder unit: the consumer side of the event builder.  It is an
// event-driven state machine — transitions happen inside message handlers
// and retry timers, guarded by one mutex (timers run off the dispatch
// goroutine, so the run state is no longer single-threaded).  Start
// itself only posts a kickoff frame to the BU's own TiD ("essentially
// every occurrence in the system is mapped to an I2O message").
//
// The unit works in event blocks: it registers with the EVM (entering the
// shard map), then keeps up to `pipeline` block allocations in flight.
// Each granted block fans out one FragReq per source — every RU in the
// flat wiring, or a handful of aggregator roots in the tree wiring — and
// completes as the batched replies drain in.
type BU struct {
	dev      *device.Device
	instance int

	// Wiring, set before Start.
	evm      i2o.TID
	srcs     []i2o.TID // fragment sources: RUs (flat) or aggregator roots (tree)
	srcFunc  uint16    // XFuncFragment (flat) or XFuncSuper (tree)
	perEvent int       // fragments expected per event (= total RUs)
	fu       i2o.TID   // optional filter unit receiving built events

	// Storage wiring, set before Start: built events stream to
	// writers[event % len(writers)] and the run only finishes once every
	// one is acked durable.
	writers     []i2o.TID
	storeWindow int

	// OnEvent, if set, runs for every built event (the hook where a
	// filter unit would attach).  It is called with the BU's run lock
	// held; keep it short and never call back into the BU.
	OnEvent func(event uint64, size int)

	// Run state, guarded by mu (handlers and retry timers).
	mu        sync.Mutex
	target    uint64
	pipeline  int
	issued    uint64
	allocsOut int
	timersOut int
	over      bool
	blocks    map[uint32]*blockBuild
	unacked   map[uint64][]byte // event -> write payload awaiting a storage ack
	sweeping  bool
	done      chan struct{}
	running   bool
	failure   error
	runCtx    *device.Context

	blockSeq atomic.Uint32 // monotonic across runs: stale replies miss
	runGen   atomic.Uint32 // stamped on alloc/register requests
	killed   atomic.Bool
	shardVer atomic.Uint64

	built   atomic.Uint64
	bytes   atomic.Uint64
	corrupt atomic.Uint64
	stale   atomic.Uint64
	lost    atomic.Uint64
	stored  atomic.Uint64
	wstalls atomic.Uint64

	xferSeq atomic.Uint32
}

// blockBuild is one event block under assembly.
type blockBuild struct {
	first       uint64
	count       uint32
	skip        uint64
	pendingSrcs int
	doneEvents  int
	events      []eventBuild
}

type eventBuild struct {
	got   int
	bytes int
	done  bool
	frags [][]byte // fragment copies, kept only when forwarding to an FU
}

// NewBU creates builder unit `instance`.
func NewBU(instance int) *BU {
	b := &BU{instance: instance, evm: i2o.TIDNone, fu: i2o.TIDNone}
	b.dev = device.New(BUClass, instance)
	b.dev.Bind(XFuncStart, b.handleStart)
	b.dev.Bind(XFuncAllocate, b.handleAllocateReply)
	b.dev.Bind(XFuncRegister, b.handleRegisterReply)
	b.dev.Bind(XFuncFragment, b.handleFragmentReply)
	b.dev.Bind(XFuncSuper, b.handleFragmentReply)
	b.dev.Bind(storage.XFuncWriteAck, b.handleWriteAck)
	b.dev.OnPlugged = func(ctx *device.Context) error {
		registerBUMetrics(ctx, b)
		return nil
	}
	return b
}

// Device returns the module to plug into an executive.
func (b *BU) Device() *device.Device { return b.dev }

// Configure wires the builder flat: it talks to every readout unit
// directly (local TiDs; proxies for remote devices).  Must precede Start.
func (b *BU) Configure(evm i2o.TID, rus []i2o.TID) {
	b.evm = evm
	b.srcs = append([]i2o.TID(nil), rus...)
	b.srcFunc = XFuncFragment
	b.perEvent = len(rus)
}

// ConfigureTree wires the builder hierarchically: fragment requests go to
// the given aggregator roots, each covering a subtree of readout units;
// totalRUs is the number of leaf RUs across all subtrees (the fragment
// count that completes an event).  Must precede Start.
func (b *BU) ConfigureTree(evm i2o.TID, roots []i2o.TID, totalRUs int) {
	b.evm = evm
	b.srcs = append([]i2o.TID(nil), roots...)
	b.srcFunc = XFuncSuper
	b.perEvent = totalRUs
}

// SetFilterUnit streams every built event to the filter unit at fu as a
// chained transfer (the CMS chain's next stage).  i2o.TIDNone disables
// forwarding.  Must precede Start.
func (b *BU) SetFilterUnit(fu i2o.TID) { b.fu = fu }

// SetStorage streams every built event to a striped set of storage
// writers: event e goes to writers[e % len(writers)] as an XFuncWrite
// chain transfer.  window bounds the events awaiting a durable ack —
// when it fills, the BU stops asking the EVM for grants, which is how
// slow disks throttle the whole readout.  nil disables storage.  Must
// precede Start.
func (b *BU) SetStorage(writers []i2o.TID, window int) {
	if window <= 0 {
		window = 32
	}
	b.writers = append([]i2o.TID(nil), writers...)
	b.storeWindow = window
}

// Stats returns the current counters (atomic reads; safe concurrently
// with a running build).
func (b *BU) Stats() BUStats {
	return BUStats{
		Built:        b.built.Load(),
		Bytes:        b.bytes.Load(),
		Corrupt:      b.corrupt.Load(),
		StaleRetries: b.stale.Load(),
		LostBlocks:   b.lost.Load(),
		Stored:       b.stored.Load(),
		WriteStalls:  b.wstalls.Load(),
	}
}

// Err returns the failure that ended the run, if any.
func (b *BU) Err() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.failure
}

// Start begins building nevents events (0 = run until the EVM is
// exhausted), keeping up to pipeline event blocks in flight.  It returns
// the channel closed at completion.
func (b *BU) Start(nevents uint64, pipeline int) (<-chan struct{}, error) {
	if pipeline <= 0 {
		pipeline = 1
	}
	ctx, err := b.dev.Ctx()
	if err != nil {
		return nil, err
	}
	if b.evm == i2o.TIDNone || len(b.srcs) == 0 {
		return nil, errors.New("daq: builder unit not configured")
	}
	b.mu.Lock()
	if b.running {
		b.mu.Unlock()
		return nil, errors.New("daq: builder unit already running")
	}
	b.running = true
	b.failure = nil
	b.done = make(chan struct{})
	done := b.done
	b.killed.Store(false)
	b.runGen.Add(1)
	// Counters reset here, not in the kickoff handler: the moment Start
	// returns, Stats reports this run — a caller gating on progress (the
	// chaos harness's builder-kill trigger) must never read a stale tally
	// from the previous round.
	b.built.Store(0)
	b.bytes.Store(0)
	b.corrupt.Store(0)
	b.stale.Store(0)
	b.lost.Store(0)
	b.stored.Store(0)
	b.wstalls.Store(0)
	b.mu.Unlock()

	payload := make([]byte, 12)
	binary.LittleEndian.PutUint64(payload, nevents)
	binary.LittleEndian.PutUint32(payload[8:], uint32(pipeline))
	if err := send(ctx.Host, b.dev.TID(), b.dev.TID(), XFuncStart, i2o.PriorityHigh, payload); err != nil {
		b.finish(err)
		return done, err
	}
	return done, nil
}

// Wait blocks until the current run completes and returns its stats.
func (b *BU) Wait() (BUStats, error) {
	b.mu.Lock()
	done := b.done
	b.mu.Unlock()
	if done != nil {
		<-done
	}
	return b.Stats(), b.Err()
}

// Kill terminates the run immediately: in-flight frames are dropped on
// arrival and Wait returns ErrKilled.  It models a crashed builder for
// failover tests — the EVM re-grants the unit's blocks to the survivors
// once RemoveBU (or PeerDown) runs.
func (b *BU) Kill() {
	b.killed.Store(true)
	b.finish(ErrKilled)
}

func (b *BU) finish(err error) {
	b.mu.Lock()
	b.finishLocked(err)
	b.mu.Unlock()
}

func (b *BU) finishLocked(err error) {
	if !b.running {
		return
	}
	b.running = false
	b.failure = err
	close(b.done)
}

// maybeFinishLocked closes the run once no work remains anywhere: no
// allocation or retry in flight, no block under assembly, and either the
// EVM said the run is over or the local target is reached.
func (b *BU) maybeFinishLocked() {
	if b.allocsOut == 0 && b.timersOut == 0 && len(b.blocks) == 0 &&
		len(b.unacked) == 0 &&
		(b.over || (b.target > 0 && b.built.Load() >= b.target)) {
		b.finishLocked(nil)
	}
}

func (b *BU) handleStart(ctx *device.Context, m *i2o.Message) error {
	if len(m.Payload) < 12 {
		b.finish(i2o.ErrTruncated)
		return i2o.ErrTruncated
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.target = binary.LittleEndian.Uint64(m.Payload)
	b.pipeline = int(binary.LittleEndian.Uint32(m.Payload[8:]))
	b.issued = 0
	b.allocsOut = 0
	b.timersOut = 0
	b.over = false
	b.blocks = make(map[uint32]*blockBuild, b.pipeline)
	b.unacked = make(map[uint64][]byte, b.storeWindow)
	b.runCtx = ctx

	// Register with the EVM (idempotent): the reply carries the shard map
	// version and unblocks the allocation pump.
	req := EncodeRegisterReq(RegisterReq{BU: uint32(b.instance), Node: uint32(ctx.Host.Node())})
	if err := b.requestTagged(ctx, b.evm, XFuncRegister, b.runGen.Load(), req); err != nil {
		b.finishLocked(fmt.Errorf("daq: register: %w", err))
	}
	return nil
}

// requestTagged sends a reply-expected private frame with the given
// transaction context (for correlating replies to runs and blocks).
func (b *BU) requestTagged(ctx *device.Context, target i2o.TID, xfunc uint16, txn uint32, payload []byte) error {
	return ctx.Host.Send(&i2o.Message{
		Flags:              i2o.FlagReplyExpected,
		Priority:           i2o.PriorityNormal,
		Target:             target,
		Initiator:          b.dev.TID(),
		Function:           i2o.FuncPrivate,
		Org:                i2o.OrgXDAQ,
		XFunction:          xfunc,
		TransactionContext: txn,
		Payload:            payload,
	})
}

func (b *BU) handleRegisterReply(ctx *device.Context, m *i2o.Message) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.running || b.killed.Load() || m.TransactionContext != b.runGen.Load() {
		return nil
	}
	if err := i2o.ReplyError(m); err != nil {
		b.finishLocked(fmt.Errorf("daq: register: %w", err))
		return nil
	}
	rep, err := DecodeRegisterRep(m.Payload)
	if err != nil {
		b.finishLocked(err)
		return nil
	}
	b.shardVer.Store(rep.Version)
	b.pumpLocked(ctx)
	b.maybeFinishLocked()
	return nil
}

// pumpLocked keeps the block-allocation pipeline full.  Each outstanding
// allocation request reserves at least one event against the target, so a
// bounded run never over-asks (with the default one-event blocks the
// reservation is exact — the legacy Start(n, p) contract).
func (b *BU) pumpLocked(ctx *device.Context) {
	for b.allocsOut+b.timersOut+len(b.blocks) < b.pipeline {
		if b.over || (b.target > 0 && b.issued >= b.target) {
			return
		}
		if len(b.writers) > 0 && len(b.unacked) >= b.storeWindow {
			// Storage backpressure: the write window is full, so stop
			// asking the EVM for event grants.  The pump restarts from
			// the write-ack handler as acks drain the window — writer
			// pressure thereby reaches all the way back to the readout.
			return
		}
		if err := b.sendAllocLocked(ctx); err != nil {
			b.finishLocked(fmt.Errorf("daq: allocate request: %w", err))
			return
		}
		b.issued++
	}
}

func (b *BU) sendAllocLocked(ctx *device.Context) error {
	payload := EncodeAllocReq(AllocReq{BU: uint32(b.instance)})
	if err := b.requestTagged(ctx, b.evm, XFuncAllocate, b.runGen.Load(), payload); err != nil {
		return err
	}
	b.allocsOut++
	return nil
}

func (b *BU) handleAllocateReply(ctx *device.Context, m *i2o.Message) error {
	if !m.Flags.Has(i2o.FlagReply) {
		return fmt.Errorf("daq: builder unit does not allocate events")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.running || b.killed.Load() || m.TransactionContext != b.runGen.Load() {
		return nil
	}
	b.allocsOut--
	if err := i2o.ReplyError(m); err != nil {
		b.finishLocked(fmt.Errorf("daq: allocation failed: %w", err))
		return nil
	}
	rep, err := DecodeAllocRep(m.Payload)
	if err != nil {
		b.finishLocked(err)
		return nil
	}
	b.shardVer.Store(rep.Version)
	switch rep.Status {
	case AllocOver:
		b.over = true
	case AllocRetry:
		// The EVM has nothing for us yet (other builders hold blocks that
		// may orphan back).  Re-ask after a beat.
		b.scheduleLocked(func(ctx *device.Context) {
			if b.over {
				return
			}
			if err := b.sendAllocLocked(ctx); err != nil {
				b.finishLocked(fmt.Errorf("daq: allocate retry: %w", err))
			}
		})
	case AllocGrant:
		if uint64(rep.Count) > 1 {
			// A multi-event grant consumes more of the target than the one
			// event the request reserved.
			b.issued += uint64(rep.Count) - 1
		}
		seq := b.blockSeq.Add(1)
		bb := &blockBuild{
			first:       rep.First,
			count:       rep.Count,
			skip:        rep.Skip,
			pendingSrcs: len(b.srcs),
			events:      make([]eventBuild, rep.Count),
		}
		for i := uint32(0); i < rep.Count; i++ {
			if rep.Skip&(1<<i) != 0 {
				bb.events[i].done = true
				bb.doneEvents++
			}
		}
		b.blocks[seq] = bb
		req := FragReq{
			Version: rep.Version,
			BU:      uint32(b.instance),
			First:   rep.First,
			Count:   rep.Count,
			Skip:    rep.Skip,
		}
		payload := EncodeFragReq(req)
		for i, src := range b.srcs {
			if err := b.requestTagged(ctx, src, b.srcFunc, seq<<8|uint32(i), payload); err != nil {
				b.finishLocked(fmt.Errorf("daq: fragment request to %v: %w", src, err))
				return nil
			}
		}
	}
	b.pumpLocked(ctx)
	b.maybeFinishLocked()
	return nil
}

// scheduleLocked arms a retry timer.  The callback runs with the lock
// held, only while the same run is still live.
func (b *BU) scheduleLocked(f func(ctx *device.Context)) {
	b.timersOut++
	gen := b.runGen.Load()
	time.AfterFunc(retryDelay, func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if gen != b.runGen.Load() {
			return // a newer run owns the state now
		}
		b.timersOut--
		if !b.running || b.killed.Load() {
			return
		}
		f(b.runCtx)
		b.maybeFinishLocked()
	})
}

func (b *BU) handleFragmentReply(ctx *device.Context, m *i2o.Message) error {
	if !m.Flags.Has(i2o.FlagReply) {
		return fmt.Errorf("daq: builder unit serves no fragments")
	}
	seq, srcIdx := m.TransactionContext>>8, int(m.TransactionContext&0xFF)
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.running || b.killed.Load() {
		return nil
	}
	bb := b.blocks[seq]
	if bb == nil || srcIdx >= len(b.srcs) {
		return nil // stale reply from a dropped block or an earlier run
	}
	if err := i2o.ReplyError(m); err != nil {
		var rec *i2o.FailRecord
		if errors.As(err, &rec) {
			switch rec.Code {
			case FailStaleShard:
				// Transient: the source's map copy lags ours.  It is
				// refreshing; re-ask shortly with our latest version.
				b.stale.Add(1)
				b.scheduleLocked(func(ctx *device.Context) {
					if b.blocks[seq] != bb {
						return
					}
					req := FragReq{
						Version: b.shardVer.Load(),
						BU:      uint32(b.instance),
						First:   bb.first,
						Count:   bb.count,
						Skip:    bb.skip,
					}
					if err := b.requestTagged(ctx, b.srcs[srcIdx], b.srcFunc, seq<<8|uint32(srcIdx), EncodeFragReq(req)); err != nil {
						b.finishLocked(fmt.Errorf("daq: fragment retry to %v: %w", b.srcs[srcIdx], err))
					}
				})
				return nil
			case FailNotOwner:
				// Permanent: a rebalance changed the slot's owner after
				// our grant.  Return the block to the EVM so it re-grants
				// to the current owner — without the release it would sit
				// in the EVM's in-flight table forever and the run could
				// never drain.
				b.lost.Add(1)
				delete(b.blocks, seq)
				rel := EncodeReleaseNote(ReleaseNote{BU: uint32(b.instance), First: bb.first})
				if err := send(ctx.Host, b.evm, b.dev.TID(), XFuncRelease, i2o.PriorityHigh, rel); err != nil {
					ctx.Host.Logf("daq: block release: %v", err)
				}
				b.pumpLocked(ctx)
				b.maybeFinishLocked()
				return nil
			}
		}
		b.finishLocked(fmt.Errorf("daq: fragment failed: %w", err))
		return nil
	}
	rep, err := DecodeFragRep(m.Payload)
	if err != nil {
		b.finishLocked(err)
		return nil
	}
	if rep.Version > b.shardVer.Load() {
		b.shardVer.Store(rep.Version)
	}
	for _, f := range rep.Frags {
		idx := f.Event - bb.first
		if idx >= uint64(bb.count) {
			continue // decode already bounds-checks; defensive
		}
		ev := &bb.events[idx]
		if ev.done {
			continue
		}
		ev.got++
		ev.bytes += len(f.Data)
		b.bytes.Add(uint64(len(f.Data)))
		if len(f.Data) > 0 && f.Data[0] != FragmentFill(int(f.RU), f.Event) {
			b.corrupt.Add(1)
		}
		if b.fu != i2o.TIDNone || len(b.writers) > 0 {
			// The frame's pool buffer is released after this handler
			// returns; keep a copy for the filter unit / storage writer.
			ev.frags = append(ev.frags, append([]byte(nil), f.Data...))
		}
		if ev.got >= b.perEvent {
			ev.done = true
			bb.doneEvents++
			b.built.Add(1)
			if b.OnEvent != nil {
				b.OnEvent(f.Event, ev.bytes)
			}
			note := EncodeBuiltNote(BuiltNote{BU: uint32(b.instance), Event: f.Event})
			if err := send(ctx.Host, b.evm, b.dev.TID(), XFuncBuilt, i2o.PriorityLow, note); err != nil {
				ctx.Host.Logf("daq: built notification: %v", err)
			}
			if b.fu != i2o.TIDNone {
				if err := b.forwardEvent(ctx, f.Event, ev); err != nil {
					ctx.Host.Logf("daq: event %d to filter unit: %v", f.Event, err)
				}
			}
			if len(b.writers) > 0 {
				b.storeEventLocked(f.Event, ev)
			}
		}
	}
	bb.pendingSrcs--
	if bb.pendingSrcs > 0 {
		return nil
	}
	// All sources answered for this block.
	if bb.doneEvents != int(bb.count) {
		served := int(bb.count) - bits.OnesCount64(bb.skip)
		b.finishLocked(fmt.Errorf(
			"daq: block %d incomplete: %d of %d events built (%d served)",
			bb.first, bb.doneEvents, bb.count, served))
		return nil
	}
	delete(b.blocks, seq)
	b.pumpLocked(ctx)
	b.maybeFinishLocked()
	return nil
}

// forwardEvent ships one complete event to the filter unit as a chain
// transfer: 8-byte event id, then the fragments in arrival order.
func (b *BU) forwardEvent(ctx *device.Context, event uint64, ev *eventBuild) error {
	payload := make([]byte, 8, 8+ev.bytes)
	binary.LittleEndian.PutUint64(payload, event)
	for _, f := range ev.frags {
		payload = append(payload, f...)
	}
	id := uint32(b.xferSeq.Add(1))
	return chain.SendBytes(ctx.Host, b.fu, b.dev.TID(), XFuncEvent, i2o.PriorityBulk, id, payload)
}

// storeEventLocked queues one built event for its stripe's storage
// writer and sends the first attempt.  The payload stays in unacked
// until a durable ack arrives; resends are safe because the writer
// dedups by event id.  Caller holds b.mu.
func (b *BU) storeEventLocked(event uint64, ev *eventBuild) {
	payload := make([]byte, 8, 8+ev.bytes)
	binary.LittleEndian.PutUint64(payload, event)
	for _, f := range ev.frags {
		payload = append(payload, f...)
	}
	b.unacked[event] = payload
	b.sendStoreLocked(event, payload)
	b.armStoreSweepLocked()
}

// sendStoreLocked issues one write transfer.  Send errors are not
// fatal: the resend sweep retries until the ack lands.  Caller holds
// b.mu.
func (b *BU) sendStoreLocked(event uint64, payload []byte) {
	target := b.writers[event%uint64(len(b.writers))]
	id := uint32(b.xferSeq.Add(1))
	if err := chain.SendBytes(b.runCtx.Host, target, b.dev.TID(), storage.XFuncWrite,
		i2o.PriorityBulk, id, payload); err != nil {
		b.runCtx.Host.Logf("daq: store event %d: %v", event, err)
	}
}

// armStoreSweepLocked keeps one resend timer alive while writes await
// acks.  Every sweep re-sends the whole unacked window — it only has
// anything to do when a frame or an ack was lost, and the writers'
// duplicate filter absorbs the rest.  Caller holds b.mu.
func (b *BU) armStoreSweepLocked() {
	if b.sweeping || len(b.unacked) == 0 {
		return
	}
	b.sweeping = true
	gen := b.runGen.Load()
	time.AfterFunc(storeSweepDelay, func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		b.sweeping = false
		if gen != b.runGen.Load() || !b.running || b.killed.Load() {
			return
		}
		for event, payload := range b.unacked {
			b.sendStoreLocked(event, payload)
		}
		b.armStoreSweepLocked()
	})
}

// handleWriteAck drains the storage write window as acks arrive.
func (b *BU) handleWriteAck(ctx *device.Context, m *i2o.Message) error {
	a, err := storage.DecodeWriteAck(m.Payload)
	if err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.running || b.killed.Load() {
		return nil
	}
	if _, ok := b.unacked[a.Event]; !ok {
		return nil // stale ack (a resend raced the original)
	}
	switch a.Status {
	case storage.AckStored, storage.AckDup:
		b.stored.Add(1)
		delete(b.unacked, a.Event)
		b.pumpLocked(ctx)
		b.maybeFinishLocked()
	case storage.AckFull:
		// Writer backpressure: retry after a beat, well before the
		// sweep would.  The window entry stays, holding the grant pump.
		b.wstalls.Add(1)
		b.scheduleLocked(func(ctx *device.Context) {
			if payload, ok := b.unacked[a.Event]; ok {
				b.sendStoreLocked(a.Event, payload)
			}
		})
	default:
		b.finishLocked(fmt.Errorf("daq: storage writer refused event %d", a.Event))
	}
	return nil
}
