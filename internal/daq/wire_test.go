package daq

import (
	"bytes"
	"testing"
)

func TestFragReqRoundTrip(t *testing.T) {
	in := FragReq{Version: 7, BU: 3, First: 129, Count: 8, Skip: 0b1010}
	out, err := DecodeFragReq(EncodeFragReq(in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestFragReqRejectsBadRecords(t *testing.T) {
	good := FragReq{Version: 1, BU: 0, First: 1, Count: 4}
	cases := map[string][]byte{
		"short":     EncodeFragReq(good)[:12],
		"long":      append(EncodeFragReq(good), 0),
		"event0":    EncodeFragReq(FragReq{First: 0, Count: 1}),
		"count0":    EncodeFragReq(FragReq{First: 1, Count: 0}),
		"count>64":  EncodeFragReq(FragReq{First: 1, Count: 65}),
		"wide skip": EncodeFragReq(FragReq{First: 1, Count: 4, Skip: 1 << 4}),
	}
	for name, p := range cases {
		if _, err := DecodeFragReq(p); err == nil {
			t.Errorf("%s: decoded", name)
		}
	}
}

func TestFragRepRoundTrip(t *testing.T) {
	in := FragRep{
		Version: 3, First: 9, Count: 2,
		Frags: []Fragment{
			{RU: 0, Event: 9, Data: []byte{1, 2, 3}},
			{RU: 1, Event: 10, Data: nil},
			{RU: 1, Event: 9, Data: []byte{4}},
		},
	}
	p := EncodeFragRep(in)
	out, err := DecodeFragRep(p)
	if err != nil {
		t.Fatal(err)
	}
	if out.Version != in.Version || out.First != in.First || out.Count != in.Count ||
		len(out.Frags) != len(in.Frags) {
		t.Fatalf("header: %+v", out)
	}
	for i := range in.Frags {
		if out.Frags[i].RU != in.Frags[i].RU || out.Frags[i].Event != in.Frags[i].Event ||
			!bytes.Equal(out.Frags[i].Data, in.Frags[i].Data) {
			t.Fatalf("fragment %d: %+v", i, out.Frags[i])
		}
	}
	if !bytes.Equal(EncodeFragRep(out), p) {
		t.Fatal("re-encode differs")
	}
}

func TestFragRepRejectsBadRecords(t *testing.T) {
	good := EncodeFragRep(FragRep{Version: 1, First: 1, Count: 2,
		Frags: []Fragment{{RU: 0, Event: 1, Data: []byte{9}}}})
	outside := EncodeFragRep(FragRep{Version: 1, First: 1, Count: 2,
		Frags: []Fragment{{RU: 0, Event: 3, Data: nil}}})
	cases := map[string][]byte{
		"short header":  good[:10],
		"short frag":    good[:len(good)-1],
		"trailing":      append(append([]byte(nil), good...), 0),
		"event outside": outside,
	}
	for name, p := range cases {
		if _, err := DecodeFragRep(p); err == nil {
			t.Errorf("%s: decoded", name)
		}
	}
}

func TestAllocRoundTrips(t *testing.T) {
	if out, err := DecodeAllocReq(EncodeAllocReq(AllocReq{BU: 12})); err != nil || out.BU != 12 {
		t.Fatalf("alloc req: %+v %v", out, err)
	}
	reps := []AllocRep{
		{Status: AllocGrant, Version: 2, First: 33, Count: 8, Skip: 0b0110},
		{Status: AllocRetry, Version: 5},
		{Status: AllocOver, Version: 9},
	}
	for _, in := range reps {
		out, err := DecodeAllocRep(EncodeAllocRep(in))
		if err != nil {
			t.Fatalf("%+v: %v", in, err)
		}
		if out != in {
			t.Fatalf("round trip: %+v != %+v", out, in)
		}
	}
	bad := map[string][]byte{
		"status":     EncodeAllocRep(AllocRep{Status: 9}),
		"grant none": EncodeAllocRep(AllocRep{Status: AllocGrant, First: 1, Count: 0}),
		"fully skip": EncodeAllocRep(AllocRep{Status: AllocGrant, First: 1, Count: 2, Skip: 0b11}),
		"short":      EncodeAllocRep(AllocRep{Status: AllocOver})[:8],
	}
	for name, p := range bad {
		if _, err := DecodeAllocRep(p); err == nil {
			t.Errorf("%s: decoded", name)
		}
	}
}

func TestRegisterAndBuiltRoundTrips(t *testing.T) {
	if out, err := DecodeRegisterReq(EncodeRegisterReq(RegisterReq{BU: 2, Node: 7})); err != nil || out != (RegisterReq{BU: 2, Node: 7}) {
		t.Fatalf("register req: %+v %v", out, err)
	}
	if out, err := DecodeRegisterRep(EncodeRegisterRep(RegisterRep{Version: 11})); err != nil || out.Version != 11 {
		t.Fatalf("register rep: %+v %v", out, err)
	}
	if out, err := DecodeBuiltNote(EncodeBuiltNote(BuiltNote{BU: 1, Event: 42})); err != nil || out != (BuiltNote{BU: 1, Event: 42}) {
		t.Fatalf("built note: %+v %v", out, err)
	}
	if _, err := DecodeBuiltNote(EncodeBuiltNote(BuiltNote{BU: 1, Event: 0})); err == nil {
		t.Error("built note for event 0 decoded")
	}
	if out, err := DecodeReleaseNote(EncodeReleaseNote(ReleaseNote{BU: 3, First: 17})); err != nil || out != (ReleaseNote{BU: 3, First: 17}) {
		t.Fatalf("release note: %+v %v", out, err)
	}
	if _, err := DecodeReleaseNote(EncodeReleaseNote(ReleaseNote{BU: 3, First: 0})); err == nil {
		t.Error("release note for event 0 decoded")
	}
	if _, err := DecodeRegisterReq([]byte{1, 2, 3}); err == nil {
		t.Error("short register req decoded")
	}
}

// FuzzWireRecords asserts every DAQ record decoder is total (no panics on
// arbitrary input) and an exact inverse of its encoder: any payload that
// decodes must re-encode to the identical bytes.  That property is what
// makes the codecs safe to use on fenced, versioned records — a sloppy
// bound that accepted trailing or aliased bytes would break it instantly.
func FuzzWireRecords(f *testing.F) {
	f.Add(uint8(0), EncodeFragReq(FragReq{Version: 1, BU: 2, First: 3, Count: 4, Skip: 5}))
	f.Add(uint8(1), EncodeFragRep(FragRep{Version: 1, First: 1, Count: 2,
		Frags: []Fragment{{RU: 0, Event: 1, Data: []byte("abc")}, {RU: 1, Event: 2}}}))
	f.Add(uint8(2), EncodeAllocReq(AllocReq{BU: 3}))
	f.Add(uint8(3), EncodeAllocRep(AllocRep{Status: AllocGrant, Version: 1, First: 9, Count: 4, Skip: 2}))
	f.Add(uint8(4), EncodeRegisterReq(RegisterReq{BU: 1, Node: 2}))
	f.Add(uint8(5), EncodeRegisterRep(RegisterRep{Version: 3}))
	f.Add(uint8(6), EncodeBuiltNote(BuiltNote{BU: 1, Event: 2}))
	f.Add(uint8(7), EncodeShardMap(NewShardMap(4, 2)))
	f.Add(uint8(8), EncodeReleaseNote(ReleaseNote{BU: 1, First: 5}))
	f.Fuzz(func(t *testing.T, kind uint8, p []byte) {
		switch kind % 9 {
		case 0:
			if r, err := DecodeFragReq(p); err == nil {
				if !bytes.Equal(EncodeFragReq(r), p) {
					t.Fatalf("FragReq re-encode differs for %x", p)
				}
			}
		case 1:
			if r, err := DecodeFragRep(p); err == nil {
				if !bytes.Equal(EncodeFragRep(r), p) {
					t.Fatalf("FragRep re-encode differs for %x", p)
				}
			}
		case 2:
			if r, err := DecodeAllocReq(p); err == nil {
				if !bytes.Equal(EncodeAllocReq(r), p) {
					t.Fatalf("AllocReq re-encode differs for %x", p)
				}
			}
		case 3:
			if r, err := DecodeAllocRep(p); err == nil {
				if !bytes.Equal(EncodeAllocRep(r), p) {
					t.Fatalf("AllocRep re-encode differs for %x", p)
				}
			}
		case 4:
			if r, err := DecodeRegisterReq(p); err == nil {
				if !bytes.Equal(EncodeRegisterReq(r), p) {
					t.Fatalf("RegisterReq re-encode differs for %x", p)
				}
			}
		case 5:
			if r, err := DecodeRegisterRep(p); err == nil {
				if !bytes.Equal(EncodeRegisterRep(r), p) {
					t.Fatalf("RegisterRep re-encode differs for %x", p)
				}
			}
		case 6:
			if r, err := DecodeBuiltNote(p); err == nil {
				if !bytes.Equal(EncodeBuiltNote(r), p) {
					t.Fatalf("BuiltNote re-encode differs for %x", p)
				}
			}
		case 7:
			if r, err := DecodeShardMap(p); err == nil {
				if !bytes.Equal(EncodeShardMap(r), p) {
					t.Fatalf("ShardMap re-encode differs for %x", p)
				}
			}
		case 8:
			if r, err := DecodeReleaseNote(p); err == nil {
				if !bytes.Equal(EncodeReleaseNote(r), p) {
					t.Fatalf("ReleaseNote re-encode differs for %x", p)
				}
			}
		}
	})
}
