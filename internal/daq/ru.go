package daq

import (
	"fmt"
	"sync"
	"sync/atomic"

	"xdaq/internal/device"
	"xdaq/internal/i2o"
)

// DefaultFragmentSize is the synthetic fragment size when none is
// configured (2 KB, a typical CMS readout fragment).
const DefaultFragmentSize = 2048

// RU is a readout unit.  The real system buffers detector data arriving
// over custom readout links; here the fragment for an event is
// synthesized deterministically on request (the substitution recorded in
// DESIGN.md), which preserves the communication pattern — the part the
// paper is about — while removing the detector.
//
// Requests arrive as FragReq records covering a whole event block; the
// reply batches one fragment per served event.  When wired to an EVM via
// SetEVM the unit fences on the shard map: a request carrying a newer map
// version than the local copy answers FailStaleShard (transient — the RU
// refreshes its map and the builder retries), and a request for a block
// the local map assigns to a different builder answers FailNotOwner, so a
// stale builder can never be fed events that now belong to someone else.
type RU struct {
	dev      *device.Device
	instance int
	size     atomic.Int64
	served   atomic.Uint64 // events served (not requests)
	stale    atomic.Uint64 // requests fenced as stale
	refused  atomic.Uint64 // requests fenced as not-owner

	evm i2o.TID // i2o.TIDNone: fence disabled (flat legacy wiring)

	mu       sync.Mutex
	shard    *ShardMap
	fetchOut bool
}

// NewRU creates readout unit `instance` serving fragments of fragSize
// bytes (DefaultFragmentSize when <= 0).  The size is reconfigurable at
// runtime through the "fragsize" parameter.
func NewRU(instance, fragSize int) *RU {
	if fragSize <= 0 {
		fragSize = DefaultFragmentSize
	}
	r := &RU{instance: instance, evm: i2o.TIDNone}
	r.size.Store(int64(fragSize))
	r.dev = device.New(RUClass, instance)
	r.dev.OnPlugged = func(ctx *device.Context) error {
		registerRUMetrics(ctx, r)
		return nil
	}
	r.dev.Params().Set("fragsize", int64(fragSize))
	r.dev.Params().OnSet(func(changed []i2o.Param) {
		for _, p := range changed {
			if p.Key == "fragsize" {
				if n, ok := p.Value.(int64); ok && n > 0 {
					r.size.Store(n)
				}
			}
		}
	})
	r.dev.Bind(XFuncFragment, r.handleFragment)
	r.dev.Bind(XFuncShardMap, r.handleShardMap)
	return r
}

// Device returns the module to plug into an executive.
func (r *RU) Device() *device.Device { return r.dev }

// SetEVM enables the shard fence: the readout unit lazily fetches the
// shard map from the EVM at evm and refuses requests that disagree with
// it.  Without it the unit serves every request (the flat wiring the
// original tests and xdaqctl use).  Must precede serving.
func (r *RU) SetEVM(evm i2o.TID) { r.evm = evm }

// Served returns how many event fragments were sent.
func (r *RU) Served() uint64 { return r.served.Load() }

// Stale returns how many requests were fenced for carrying a newer shard
// map version than the local copy.
func (r *RU) Stale() uint64 { return r.stale.Load() }

// Refused returns how many requests were fenced because the local map
// assigns the block to a different builder.
func (r *RU) Refused() uint64 { return r.refused.Load() }

// FragmentSize returns the current fragment size.
func (r *RU) FragmentSize() int { return int(r.size.Load()) }

// ShardVersion returns the version of the local shard map copy (0 before
// the first fetch).
func (r *RU) ShardVersion() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.shard == nil {
		return 0
	}
	return r.shard.Version
}

// fence checks req against the local shard map.  It returns a nil message
// to serve, or a fail reply to send instead.  A stale local map triggers
// an asynchronous refresh from the EVM.
func (r *RU) fence(ctx *device.Context, m *i2o.Message, req FragReq) *i2o.Message {
	if r.evm == i2o.TIDNone {
		return nil
	}
	r.mu.Lock()
	shard := r.shard
	needFetch := shard == nil || req.Version > shard.Version
	doFetch := needFetch && !r.fetchOut
	if doFetch {
		r.fetchOut = true
	}
	r.mu.Unlock()
	if doFetch {
		if err := request(ctx.Host, r.evm, r.dev.TID(), XFuncShardMap, i2o.PriorityHigh, nil); err != nil {
			ctx.Host.Logf("daq: ru %d shard map fetch: %v", r.instance, err)
			r.mu.Lock()
			r.fetchOut = false
			r.mu.Unlock()
		}
	}
	if needFetch {
		r.stale.Add(1)
		return i2o.NewFailReply(m, FailStaleShard, "shard map behind request")
	}
	if owner, ok := shard.Owner(req.First); !ok || owner != req.BU {
		r.refused.Add(1)
		return i2o.NewFailReply(m, FailNotOwner, "block owned by another builder")
	}
	return nil
}

// handleShardMap installs map updates: replies to our own fetches and
// one-way pushes from the EVM on rebalances.
func (r *RU) handleShardMap(ctx *device.Context, m *i2o.Message) error {
	isReply := m.Flags.Has(i2o.FlagReply)
	if !isReply && m.Flags.Has(i2o.FlagReplyExpected) {
		return fmt.Errorf("daq: readout unit serves no shard maps")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if isReply {
		r.fetchOut = false
		if err := i2o.ReplyError(m); err != nil {
			return nil // transient; the next stale request refetches
		}
	}
	shard, err := DecodeShardMap(m.Payload)
	if err != nil {
		return err
	}
	if r.shard == nil || shard.Version > r.shard.Version {
		r.shard = shard
	}
	return nil
}

func (r *RU) handleFragment(ctx *device.Context, m *i2o.Message) error {
	req, err := DecodeFragReq(m.Payload)
	if err != nil {
		return err
	}
	if !m.Flags.Has(i2o.FlagReplyExpected) {
		return nil
	}
	if fail := r.fence(ctx, m, req); fail != nil {
		return ctx.Host.Send(fail)
	}
	size := int(r.size.Load())
	serve := make([]uint64, 0, req.Count)
	for i := uint32(0); i < req.Count; i++ {
		if req.Skip&(1<<i) == 0 {
			serve = append(serve, req.First+uint64(i))
		}
	}
	buf, err := ctx.Host.Alloc(EncodedFragRepLen(len(serve), len(serve)*size))
	if err != nil {
		return err
	}
	body := buf.Bytes()
	version := req.Version
	r.mu.Lock()
	if r.shard != nil {
		version = r.shard.Version
	}
	r.mu.Unlock()
	off := AppendFragRepHeader(body, version, req.First, req.Count, uint32(len(serve)))
	for _, event := range serve {
		dataOff, next := AppendFragment(body, off, uint32(r.instance), event, size)
		fill := FragmentFill(r.instance, event)
		for i := dataOff; i < next; i++ {
			body[i] = fill
		}
		off = next
	}
	rep := i2o.NewReply(m)
	rep.Payload = body
	rep.AttachBuffer(buf)
	if err := ctx.Host.Send(rep); err != nil {
		return err
	}
	r.served.Add(uint64(len(serve)))
	return nil
}
