package daq

import (
	"fmt"
	"sync/atomic"

	"xdaq/internal/device"
	"xdaq/internal/i2o"
)

// DefaultFragmentSize is the synthetic fragment size when none is
// configured (2 KB, a typical CMS readout fragment).
const DefaultFragmentSize = 2048

// RU is a readout unit.  The real system buffers detector data arriving
// over custom readout links; here the fragment for an event is
// synthesized deterministically on request (the substitution recorded in
// DESIGN.md), which preserves the communication pattern — the part the
// paper is about — while removing the detector.
type RU struct {
	dev      *device.Device
	instance int
	size     atomic.Int64
	served   atomic.Uint64
}

// NewRU creates readout unit `instance` serving fragments of fragSize
// bytes (DefaultFragmentSize when <= 0).  The size is reconfigurable at
// runtime through the "fragsize" parameter.
func NewRU(instance, fragSize int) *RU {
	if fragSize <= 0 {
		fragSize = DefaultFragmentSize
	}
	r := &RU{instance: instance}
	r.size.Store(int64(fragSize))
	r.dev = device.New(RUClass, instance)
	r.dev.Params().Set("fragsize", int64(fragSize))
	r.dev.Params().OnSet(func(changed []i2o.Param) {
		for _, p := range changed {
			if p.Key == "fragsize" {
				if n, ok := p.Value.(int64); ok && n > 0 {
					r.size.Store(n)
				}
			}
		}
	})
	r.dev.Bind(XFuncFragment, r.handleFragment)
	return r
}

// Device returns the module to plug into an executive.
func (r *RU) Device() *device.Device { return r.dev }

// Served returns how many fragments were sent.
func (r *RU) Served() uint64 { return r.served.Load() }

// FragmentSize returns the current fragment size.
func (r *RU) FragmentSize() int { return int(r.size.Load()) }

func (r *RU) handleFragment(ctx *device.Context, m *i2o.Message) error {
	event, ok := getU64(m.Payload)
	if !ok {
		return fmt.Errorf("%w: fragment request without event id", i2o.ErrTruncated)
	}
	if !m.Flags.Has(i2o.FlagReplyExpected) {
		return nil
	}
	size := int(r.size.Load())
	buf, err := ctx.Host.Alloc(8 + size)
	if err != nil {
		return err
	}
	body := buf.Bytes()
	copy(body, m.Payload[:8])
	fill := FragmentFill(r.instance, event)
	for i := 8; i < len(body); i++ {
		body[i] = fill
	}
	rep := i2o.NewReply(m)
	rep.Payload = body
	rep.AttachBuffer(buf)
	if err := ctx.Host.Send(rep); err != nil {
		return err
	}
	r.served.Add(1)
	return nil
}
