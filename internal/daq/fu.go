package daq

import (
	"encoding/binary"
	"sync/atomic"

	"xdaq/internal/chain"
	"xdaq/internal/device"
	"xdaq/internal/i2o"
	"xdaq/internal/pool"
)

// FUClass is the filter unit device class name.
const FUClass = "daq.fu"

// XFuncEvent carries complete built events from builder units to filter
// units as chunked chain transfers: first 8 bytes event id, then the
// concatenated fragments.
const XFuncEvent uint16 = 5

// Filter decides whether a built event is kept.  It runs on the filter
// unit's dispatch goroutine with a flattened view of the event data.
type Filter func(event uint64, data []byte) bool

// FU is a filter unit: the stage after event building in the CMS chain.
// Builder units stream complete events to it; the filter callback selects
// which survive.  Events arrive as chain transfers, so they may exceed
// the single-frame limit.
type FU struct {
	dev   *device.Device
	reasm *chain.Reassembler

	filter   Filter
	OnAccept func(event uint64, data []byte)

	accepted atomic.Uint64
	rejected atomic.Uint64
	bytes    atomic.Uint64
}

// NewFU creates filter unit `instance` with the given selection.  A nil
// filter accepts everything.
func NewFU(instance int, alloc pool.Allocator, filter Filter) *FU {
	f := &FU{filter: filter}
	f.dev = device.New(FUClass, instance)
	f.dev.OnPlugged = func(ctx *device.Context) error {
		registerFUMetrics(ctx, f)
		return nil
	}
	f.reasm = chain.NewReassembler(alloc, f.onEvent)
	f.dev.Bind(XFuncEvent, f.reasm.Handler)
	return f
}

// Device returns the module to plug into an executive.
func (f *FU) Device() *device.Device { return f.dev }

// Accepted returns how many events passed the filter.
func (f *FU) Accepted() uint64 { return f.accepted.Load() }

// Rejected returns how many events the filter dropped.
func (f *FU) Rejected() uint64 { return f.rejected.Load() }

// Bytes returns the event payload bytes received.
func (f *FU) Bytes() uint64 { return f.bytes.Load() }

func (f *FU) onEvent(t *chain.Transfer) error {
	defer t.Data.Release()
	if t.Data.Len() < 8 {
		return i2o.ErrTruncated
	}
	flat := t.Data.Bytes()
	event := binary.LittleEndian.Uint64(flat)
	data := flat[8:]
	f.bytes.Add(uint64(len(data)))
	if f.filter == nil || f.filter(event, data) {
		f.accepted.Add(1)
		if f.OnAccept != nil {
			f.OnAccept(event, data)
		}
	} else {
		f.rejected.Add(1)
	}
	return nil
}
