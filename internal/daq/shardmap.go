package daq

import (
	"encoding/binary"
	"fmt"

	"xdaq/internal/i2o"
)

// NoOwner marks a shard slot with no builder unit assigned (the map
// before any registration, or after the last builder left).
const NoOwner = ^uint32(0)

// ShardMap is the consistent event-range→builder-unit assignment owned by
// the EVM.  The event space is cut into fixed-size blocks of Range
// events; block b hashes to slot b mod len(Owners), and the slot's owner
// builds every event of the block.  Like membership epochs, every
// mutation bumps Version, and the version rides every data-path record so
// stale holders are fenced instead of misrouting (see doc/architecture.md,
// "Hierarchical event building").
//
// The structure is deliberately tiny: a handful of slots, not a hash ring
// with thousands of virtual nodes.  Rebalancing quality only needs slots
// to comfortably exceed the builder count.
type ShardMap struct {
	Version uint64
	Range   uint32   // events per block (>= 1)
	Owners  []uint32 // slot -> builder unit id, NoOwner when unassigned
}

// NewShardMap creates an empty map with the given slot count and block
// size.  Arguments are clamped to at least 1.
func NewShardMap(slots int, rangeSize uint32) *ShardMap {
	if slots < 1 {
		slots = 1
	}
	if rangeSize < 1 {
		rangeSize = 1
	}
	owners := make([]uint32, slots)
	for i := range owners {
		owners[i] = NoOwner
	}
	return &ShardMap{Range: rangeSize, Owners: owners}
}

// Clone returns a deep copy.
func (s *ShardMap) Clone() *ShardMap {
	return &ShardMap{
		Version: s.Version,
		Range:   s.Range,
		Owners:  append([]uint32(nil), s.Owners...),
	}
}

// Block returns the block ordinal of an event (events are 1-based).
func (s *ShardMap) Block(event uint64) uint64 {
	return (event - 1) / uint64(s.Range)
}

// First returns the first event of a block.
func (s *ShardMap) First(block uint64) uint64 {
	return block*uint64(s.Range) + 1
}

// Slot returns the slot a block hashes to.
func (s *ShardMap) Slot(block uint64) int {
	return int(block % uint64(len(s.Owners)))
}

// Owner returns the builder unit that owns an event, or (NoOwner, false)
// when its slot is unassigned.
func (s *ShardMap) Owner(event uint64) (uint32, bool) {
	bu := s.Owners[s.Slot(s.Block(event))]
	return bu, bu != NoOwner
}

// Members returns the distinct builder units present, ascending.
func (s *ShardMap) Members() []uint32 {
	seen := map[uint32]bool{}
	var out []uint32
	for _, o := range s.Owners {
		if o != NoOwner && !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// load returns slot counts per owner.
func (s *ShardMap) load() map[uint32]int {
	l := map[uint32]int{}
	for _, o := range s.Owners {
		if o != NoOwner {
			l[o]++
		}
	}
	return l
}

// Add admits a builder unit, stealing its fair share of slots — and only
// its fair share: every reassigned slot goes to the newcomer, so at most
// ceil(slots/members) slots move.  Deterministic: victims are the most
// loaded owners (ties to the smaller id), and the stolen slot is the
// victim's highest-index one.  Adding a present member is a no-op (no
// version bump).  Returns whether the map changed.
func (s *ShardMap) Add(bu uint32) bool {
	if bu == NoOwner {
		return false
	}
	load := s.load()
	if _, ok := load[bu]; ok {
		return false
	}
	members := len(load) + 1
	target := (len(s.Owners) + members - 1) / members // ceil share
	got := 0
	// Unassigned slots first: they are free to take.
	for i, o := range s.Owners {
		if got >= target {
			break
		}
		if o == NoOwner {
			s.Owners[i] = bu
			got++
		}
	}
	for got < target {
		victim, max := NoOwner, 1
		for o, n := range load {
			if n > max || (n == max && victim != NoOwner && o < victim) {
				victim, max = o, n
			}
		}
		if victim == NoOwner {
			break // nobody has a spare slot to give
		}
		for i := len(s.Owners) - 1; i >= 0; i-- {
			if s.Owners[i] == victim {
				s.Owners[i] = bu
				load[victim]--
				got++
				break
			}
		}
	}
	s.Version++
	return true
}

// Remove evicts a builder unit, reassigning only its slots — the minimal
// movement property the unit tests pin down.  Orphaned slots go to the
// least-loaded survivors (ties to the smaller id), keeping the map
// balanced; with no survivor they become NoOwner.  Removing an absent
// member is a no-op.  Returns whether the map changed.
func (s *ShardMap) Remove(bu uint32) bool {
	load := s.load()
	if _, ok := load[bu]; !ok {
		return false
	}
	delete(load, bu)
	for i, o := range s.Owners {
		if o != bu {
			continue
		}
		heir, min := NoOwner, int(^uint(0)>>1)
		for o, n := range load {
			if n < min || (n == min && o < heir) {
				heir, min = o, n
			}
		}
		s.Owners[i] = heir
		if heir != NoOwner {
			load[heir]++
		}
	}
	s.Version++
	return true
}

// EncodeShardMap renders the map as a frame payload: version, range,
// slot count, then one owner per slot.
func EncodeShardMap(s *ShardMap) []byte {
	b := make([]byte, 16+4*len(s.Owners))
	binary.LittleEndian.PutUint64(b, s.Version)
	binary.LittleEndian.PutUint32(b[8:], s.Range)
	binary.LittleEndian.PutUint32(b[12:], uint32(len(s.Owners)))
	for i, o := range s.Owners {
		binary.LittleEndian.PutUint32(b[16+4*i:], o)
	}
	return b
}

// DecodeShardMap parses a payload written by EncodeShardMap.
func DecodeShardMap(p []byte) (*ShardMap, error) {
	if len(p) < 16 {
		return nil, fmt.Errorf("%w: shard map of %d bytes", i2o.ErrTruncated, len(p))
	}
	s := &ShardMap{
		Version: binary.LittleEndian.Uint64(p),
		Range:   binary.LittleEndian.Uint32(p[8:]),
	}
	slots := binary.LittleEndian.Uint32(p[12:])
	if s.Range == 0 || slots == 0 || slots > 1<<16 {
		return nil, fmt.Errorf("daq: shard map with %d slots, range %d", slots, s.Range)
	}
	if len(p) != 16+4*int(slots) {
		return nil, fmt.Errorf("%w: shard map of %d bytes for %d slots", i2o.ErrTruncated, len(p), slots)
	}
	s.Owners = make([]uint32, slots)
	for i := range s.Owners {
		s.Owners[i] = binary.LittleEndian.Uint32(p[16+4*i:])
	}
	return s, nil
}
