package daq

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xdaq/internal/executive"
	"xdaq/internal/health"
	"xdaq/internal/i2o"
	"xdaq/internal/pta"
	"xdaq/internal/transport/loopback"
)

// TestFailoverRebalancesEventRange is the tentpole's failover story end
// to end: two builders share the event range; one is killed and its node
// goes dark; the health monitor declares it down; the EVM reassigns its
// slots and re-grants its unfinished blocks (with built events masked
// out); the survivor builds the rest.  The OnEvent logs on both builders
// prove every event was built exactly once across the handoff.
func TestFailoverRebalancesEventRange(t *testing.T) {
	// The range must be large enough that the whole run cannot complete
	// before the kill lands: loopback builds hundreds of events per
	// millisecond, and a run that drains first leaves nothing to fail
	// over.
	const (
		events   = 40000
		fragSize = 128
	)
	fabric := loopback.NewFabric()
	execs := make(map[i2o.NodeID]*executive.Executive)
	agents := make(map[i2o.NodeID]*pta.Agent)
	nodes := []i2o.NodeID{1, 2, 3}
	for _, id := range nodes {
		e := executive.New(executive.Options{
			Name: "fo", Node: id,
			RequestTimeout: 2 * time.Second,
			Logf:           func(string, ...any) {},
		})
		agent, err := pta.New(e)
		if err != nil {
			t.Fatal(err)
		}
		ep, err := fabric.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := agent.Register(ep, pta.Task); err != nil {
			t.Fatal(err)
		}
		for _, peer := range nodes {
			if peer != id {
				e.SetRoute(peer, loopback.DefaultName)
			}
		}
		execs[id], agents[id] = e, agent
	}
	t.Cleanup(func() {
		for _, id := range nodes {
			agents[id].Close()
			execs[id].Close()
		}
	})

	// Node 1: EVM, both RUs, and the health monitor that evicts dead
	// builder nodes from the shard map.
	evm := NewEVM(events)
	evm.SetSharding(8, 4)
	if _, err := execs[1].Plug(evm.Device()); err != nil {
		t.Fatal(err)
	}
	rus := make([]*RU, 2)
	for i := range rus {
		rus[i] = NewRU(i, fragSize)
		rus[i].SetEVM(evm.Device().TID())
		if _, err := execs[1].Plug(rus[i].Device()); err != nil {
			t.Fatal(err)
		}
	}
	var downs atomic.Int64
	mon := health.New(execs[1], health.Config{
		Interval:  20 * time.Millisecond,
		Timeout:   20 * time.Millisecond,
		Threshold: 2,
		OnState: func(node i2o.NodeID, state health.State) {
			if state == health.Down {
				downs.Add(1)
				evm.PeerDown(node)
			}
		},
	})
	t.Cleanup(mon.Close)

	// Nodes 2 and 3: one builder each, flat-wired to the node-1 RUs.
	var mu sync.Mutex
	builtBy := make(map[uint64][]int) // event -> builders that completed it
	bus := make([]*BU, 2)
	for i := range bus {
		bus[i] = NewBU(i)
		buExec := execs[i2o.NodeID(2+i)]
		if _, err := buExec.Plug(bus[i].Device()); err != nil {
			t.Fatal(err)
		}
		evmTID, err := buExec.Discover(1, EVMClass, 0)
		if err != nil {
			t.Fatal(err)
		}
		ruTIDs := make([]i2o.TID, len(rus))
		for j := range rus {
			ruTIDs[j], err = buExec.Discover(1, RUClass, j)
			if err != nil {
				t.Fatal(err)
			}
		}
		bus[i].Configure(evmTID, ruTIDs)
		who := i
		bus[i].OnEvent = func(event uint64, size int) {
			mu.Lock()
			builtBy[event] = append(builtBy[event], who)
			mu.Unlock()
		}
	}

	for i := range bus {
		if _, err := bus[i].Start(0, 4); err != nil {
			t.Fatal(err)
		}
	}

	// Let builder 0 make real progress, then fail its node hard: the
	// builder stops mid-pipeline and the node stops answering probes.
	deadline := time.Now().Add(5 * time.Second)
	for bus[0].Stats().Built < 20 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if bus[0].Stats().Built < 20 {
		t.Fatalf("builder 0 stalled at %d events", bus[0].Stats().Built)
	}
	bus[0].Kill()
	if _, err := bus[0].Wait(); !errors.Is(err, ErrKilled) {
		t.Fatalf("killed builder returned %v", err)
	}
	agents[2].Close()
	execs[2].Close()

	// The monitor must notice the dead node on its own — if it never
	// fires, the survivor would spin on AllocRetry forever, so fail fast
	// here rather than wedging in Wait below.
	detect := time.Now().Add(3 * time.Second)
	for downs.Load() == 0 && time.Now().Before(detect) {
		time.Sleep(time.Millisecond)
	}
	if downs.Load() == 0 {
		t.Fatal("health monitor never declared node 2 down")
	}

	// The survivor must finish the whole range.
	stats, err := bus[1].Wait()
	if err != nil {
		t.Fatal(err)
	}
	if evm.Built() != events {
		t.Fatalf("evm built %d, want %d", evm.Built(), events)
	}
	if evm.Duplicates() != 0 {
		t.Fatalf("%d duplicate built notes", evm.Duplicates())
	}
	if evm.Reassigned() == 0 {
		t.Fatalf("no blocks were reassigned — failover never happened (bu0=%+v bu1=%+v allocated=%d shardv=%d)",
			bus[0].Stats(), stats, evm.Allocated(), evm.ShardVersion())
	}
	if stats.Corrupt != 0 {
		t.Fatalf("%d corrupt fragments", stats.Corrupt)
	}

	// Exactly once: every event in the range completed on exactly one
	// builder, and both builders contributed.
	mu.Lock()
	defer mu.Unlock()
	for ev := uint64(1); ev <= events; ev++ {
		switch who := builtBy[ev]; len(who) {
		case 0:
			t.Fatalf("event %d never built", ev)
		case 1:
		default:
			t.Fatalf("event %d built %d times by %v", ev, len(who), who)
		}
	}
	if len(builtBy) != events {
		t.Fatalf("%d distinct events built, want %d", len(builtBy), events)
	}
	seen := map[int]bool{}
	for _, who := range builtBy {
		seen[who[0]] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("expected both builders to contribute, got %v", seen)
	}
}
