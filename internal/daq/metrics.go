package daq

import (
	"xdaq/internal/device"
	"xdaq/internal/metrics"
)

// The daq.* gauges mirror each device's atomic counters into the host
// executive's metrics registry, so `xdaqctl metrics <node>` (and the
// soak harness) can watch a run without touching device APIs.  One
// device class per node is the deployed shape; when a test packs
// several instances of a class onto one executive, the last one plugged
// owns the names.

// hostMetrics pulls the registry off hosts that carry one (the
// executive does; bare test fakes need not).
func hostMetrics(ctx *device.Context) *metrics.Registry {
	host, ok := ctx.Host.(interface{ Metrics() *metrics.Registry })
	if !ok {
		return nil
	}
	return host.Metrics()
}

func registerEVMMetrics(ctx *device.Context, e *EVM) {
	reg := hostMetrics(ctx)
	if reg == nil {
		return
	}
	reg.Func("daq.evm.allocated", func() int64 { return int64(e.Allocated()) })
	reg.Func("daq.evm.built", func() int64 { return int64(e.Built()) })
	reg.Func("daq.evm.duplicates", func() int64 { return int64(e.Duplicates()) })
	reg.Func("daq.evm.reassigned", func() int64 { return int64(e.Reassigned()) })
	reg.Func("daq.evm.shard.version", func() int64 { return int64(e.ShardVersion()) })
}

func registerRUMetrics(ctx *device.Context, r *RU) {
	reg := hostMetrics(ctx)
	if reg == nil {
		return
	}
	reg.Func("daq.ru.served", func() int64 { return int64(r.Served()) })
	reg.Func("daq.ru.stale", func() int64 { return int64(r.Stale()) })
	reg.Func("daq.ru.refused", func() int64 { return int64(r.Refused()) })
}

func registerBUMetrics(ctx *device.Context, b *BU) {
	reg := hostMetrics(ctx)
	if reg == nil {
		return
	}
	reg.Func("daq.bu.built", func() int64 { return int64(b.built.Load()) })
	reg.Func("daq.bu.bytes", func() int64 { return int64(b.bytes.Load()) })
	reg.Func("daq.bu.corrupt", func() int64 { return int64(b.corrupt.Load()) })
	reg.Func("daq.bu.stale", func() int64 { return int64(b.stale.Load()) })
	reg.Func("daq.bu.lost", func() int64 { return int64(b.lost.Load()) })
	reg.Func("daq.bu.stored", func() int64 { return int64(b.stored.Load()) })
	reg.Func("daq.bu.write.stalls", func() int64 { return int64(b.wstalls.Load()) })
}

func registerFUMetrics(ctx *device.Context, f *FU) {
	reg := hostMetrics(ctx)
	if reg == nil {
		return
	}
	reg.Func("daq.fu.accepted", func() int64 { return int64(f.Accepted()) })
	reg.Func("daq.fu.rejected", func() int64 { return int64(f.Rejected()) })
	reg.Func("daq.fu.bytes", func() int64 { return int64(f.Bytes()) })
}
