package daq

import (
	"strings"
	"testing"
	"time"

	"xdaq/internal/executive"
	"xdaq/internal/i2o"
	"xdaq/internal/pta"
	"xdaq/internal/transport/loopback"
)

// rig is a small DAQ system for tests: EVM on node 1, RUs on nodes 2..,
// BUs on the last nodes, all over loopback.
type rig struct {
	execs map[i2o.NodeID]*executive.Executive
	evm   *EVM
	rus   []*RU
	bus   []*BU
}

func buildRig(t *testing.T, nRU, nBU int, events uint64, fragSize int) *rig {
	t.Helper()
	fabric := loopback.NewFabric()
	r := &rig{execs: make(map[i2o.NodeID]*executive.Executive)}
	total := 1 + nRU + nBU
	ids := make([]i2o.NodeID, total)
	for i := range ids {
		ids[i] = i2o.NodeID(i + 1)
	}
	for _, id := range ids {
		e := executive.New(executive.Options{
			Name: "daq", Node: id,
			RequestTimeout: 3 * time.Second,
			Logf:           func(string, ...any) {},
		})
		agent, err := pta.New(e)
		if err != nil {
			t.Fatal(err)
		}
		ep, err := fabric.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := agent.Register(ep, pta.Task); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			agent.Close()
			e.Close()
		})
		for _, peer := range ids {
			if peer != id {
				e.SetRoute(peer, loopback.DefaultName)
			}
		}
		r.execs[id] = e
	}

	r.evm = NewEVM(events)
	if _, err := r.execs[1].Plug(r.evm.Device()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nRU; i++ {
		ru := NewRU(i, fragSize)
		if _, err := r.execs[i2o.NodeID(2+i)].Plug(ru.Device()); err != nil {
			t.Fatal(err)
		}
		r.rus = append(r.rus, ru)
	}
	for i := 0; i < nBU; i++ {
		bu := NewBU(i)
		buExec := r.execs[i2o.NodeID(2+nRU+i)]
		if _, err := buExec.Plug(bu.Device()); err != nil {
			t.Fatal(err)
		}
		evmTID, err := buExec.Discover(1, EVMClass, 0)
		if err != nil {
			t.Fatal(err)
		}
		ruTIDs := make([]i2o.TID, nRU)
		for j := 0; j < nRU; j++ {
			ruTIDs[j], err = buExec.Discover(i2o.NodeID(2+j), RUClass, j)
			if err != nil {
				t.Fatal(err)
			}
		}
		bu.Configure(evmTID, ruTIDs)
		r.bus = append(r.bus, bu)
	}
	return r
}

func TestSingleBUBuildsAllEvents(t *testing.T) {
	r := buildRig(t, 3, 1, 20, 256)
	if _, err := r.bus[0].Start(0, 4); err != nil {
		t.Fatal(err)
	}
	stats, err := r.bus[0].Wait()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Built != 20 {
		t.Fatalf("built %d, want 20", stats.Built)
	}
	if stats.Corrupt != 0 {
		t.Fatalf("%d corrupt fragments", stats.Corrupt)
	}
	if want := uint64(20 * 3 * 256); stats.Bytes != want {
		t.Fatalf("bytes %d, want %d", stats.Bytes, want)
	}
	if r.evm.Allocated() != 20 || r.evm.Built() != 20 {
		t.Fatalf("evm allocated=%d built=%d", r.evm.Allocated(), r.evm.Built())
	}
	for i, ru := range r.rus {
		if ru.Served() != 20 {
			t.Fatalf("ru %d served %d", i, ru.Served())
		}
	}
}

func TestMultipleBUsShareEventStream(t *testing.T) {
	const events = 60
	r := buildRig(t, 2, 3, events, 128)
	for _, bu := range r.bus {
		if _, err := bu.Start(0, 3); err != nil {
			t.Fatal(err)
		}
	}
	var total uint64
	for i, bu := range r.bus {
		stats, err := bu.Wait()
		if err != nil {
			t.Fatalf("bu %d: %v", i, err)
		}
		total += stats.Built
	}
	if total != events {
		t.Fatalf("total built %d, want %d", total, events)
	}
	if r.evm.Built() != events {
		t.Fatalf("evm built %d", r.evm.Built())
	}
}

func TestBUTargetBelowLimit(t *testing.T) {
	r := buildRig(t, 2, 1, 100, 64)
	if _, err := r.bus[0].Start(10, 2); err != nil {
		t.Fatal(err)
	}
	stats, err := r.bus[0].Wait()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Built != 10 {
		t.Fatalf("built %d, want 10", stats.Built)
	}
}

func TestBURestartableAfterCompletion(t *testing.T) {
	r := buildRig(t, 1, 1, 0, 64) // unbounded EVM
	if _, err := r.bus[0].Start(5, 2); err != nil {
		t.Fatal(err)
	}
	if stats, err := r.bus[0].Wait(); err != nil || stats.Built != 5 {
		t.Fatalf("first run: %v %v", stats, err)
	}
	if _, err := r.bus[0].Start(7, 2); err != nil {
		t.Fatal(err)
	}
	if stats, err := r.bus[0].Wait(); err != nil || stats.Built != 7 {
		t.Fatalf("second run: %v %v", stats, err)
	}
}

func TestBUDoubleStartRefused(t *testing.T) {
	r := buildRig(t, 1, 1, 0, 64)
	if _, err := r.bus[0].Start(1000, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.bus[0].Start(1, 1); err == nil || !strings.Contains(err.Error(), "already running") {
		t.Fatalf("double start: %v", err)
	}
	if _, err := r.bus[0].Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestBUUnconfigured(t *testing.T) {
	r := buildRig(t, 1, 1, 0, 64)
	bu := NewBU(9)
	if _, err := r.execs[1].Plug(bu.Device()); err != nil {
		t.Fatal(err)
	}
	if _, err := bu.Start(1, 1); err == nil || !strings.Contains(err.Error(), "not configured") {
		t.Fatalf("unconfigured start: %v", err)
	}
	unplugged := NewBU(10)
	if _, err := unplugged.Start(1, 1); err == nil {
		t.Fatal("unplugged start succeeded")
	}
}

func TestOnEventCallback(t *testing.T) {
	r := buildRig(t, 2, 1, 4, 32)
	var events []uint64
	r.bus[0].OnEvent = func(event uint64, size int) {
		events = append(events, event)
		if size != 2*32 {
			t.Errorf("event %d size %d", event, size)
		}
	}
	if _, err := r.bus[0].Start(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.bus[0].Wait(); err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("callback saw %d events", len(events))
	}
}

func TestEVMReconfigurableViaParams(t *testing.T) {
	evm := NewEVM(10)
	evm.Device().Params().Set("events", int64(3))
	// The OnSet hook fires only through UtilParamsSet; simulate the store
	// update path used by the cluster controller.
	r := buildRig(t, 1, 1, 10, 32)
	payload, err := i2o.EncodeParams([]i2o.Param{{Key: "events", Value: int64(3)}})
	if err != nil {
		t.Fatal(err)
	}
	evmTID, err := r.execs[1].Resolve(EVMClass, 0, i2o.NodeNone)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.execs[1].Request(&i2o.Message{
		Target: evmTID, Initiator: i2o.TIDExecutive,
		Function: i2o.UtilParamsSet, Payload: payload,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep.Release()
	if _, err := r.bus[0].Start(0, 2); err != nil {
		t.Fatal(err)
	}
	stats, err := r.bus[0].Wait()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Built != 3 {
		t.Fatalf("built %d after reconfiguration, want 3", stats.Built)
	}
}

func TestRUFragSizeReconfigurable(t *testing.T) {
	r := buildRig(t, 1, 1, 5, 100)
	payload, _ := i2o.EncodeParams([]i2o.Param{{Key: "fragsize", Value: int64(500)}})
	ruTID, err := r.execs[2].Resolve(RUClass, 0, i2o.NodeNone)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.execs[2].Request(&i2o.Message{
		Target: ruTID, Initiator: i2o.TIDExecutive,
		Function: i2o.UtilParamsSet, Payload: payload,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep.Release()
	if r.rus[0].FragmentSize() != 500 {
		t.Fatalf("fragsize %d", r.rus[0].FragmentSize())
	}
	if _, err := r.bus[0].Start(0, 1); err != nil {
		t.Fatal(err)
	}
	stats, err := r.bus[0].Wait()
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(5 * 500); stats.Bytes != want {
		t.Fatalf("bytes %d, want %d", stats.Bytes, want)
	}
}

func TestEVMReset(t *testing.T) {
	evm := NewEVM(5)
	evm.allocated.Add(5)
	evm.built.Add(5)
	evm.Reset(8)
	if evm.Allocated() != 0 || evm.Built() != 0 || evm.limit.Load() != 8 {
		t.Fatal("reset")
	}
}

func TestFragmentFillDistinct(t *testing.T) {
	// Different RUs must produce different fills for the same event most
	// of the time (the corruption check depends on it being meaningful).
	same := 0
	for e := uint64(0); e < 100; e++ {
		if FragmentFill(0, e) == FragmentFill(1, e) {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("fill bytes collide for %d of 100 events", same)
	}
}

func TestNoBufferLeaksAfterRun(t *testing.T) {
	r := buildRig(t, 2, 1, 50, 512)
	if _, err := r.bus[0].Start(0, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := r.bus[0].Wait(); err != nil {
		t.Fatal(err)
	}
	// Loopback passes pointers; every fragment buffer must be back in a
	// pool once the run completed.
	time.Sleep(50 * time.Millisecond) // let the final XFuncBuilt frames drain
	for id, e := range r.execs {
		if in := e.Allocator().Stats().InUse; in != 0 {
			t.Errorf("node %v: %d buffers in use", id, in)
		}
	}
}
