package daq

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"xdaq/internal/i2o"
)

// The DAQ wire records.  Every multi-field payload the sharded event
// builder exchanges is encoded through this file with explicit bounds
// checks on both sides; FuzzWireRecords asserts decode/encode are exact
// inverses.  All integers are little-endian, matching the I2O frame
// convention.
//
// Event identifiers are 1-based.  Events are grouped into fixed-size
// blocks ("event ranges"): block b covers events [b*R+1, b*R+R] where R
// is the shard map's range size.  A block is the unit of allocation,
// fragment transfer, and shard ownership, so the per-event message costs
// of the flat protocol amortize over R events.

// DAQ-specific failure codes, carried in i2o fail replies.  They live in
// the adapter-specific code space above i2o.FailApplication.
const (
	// FailStaleShard is transient: the replier's shard map is older than
	// the request's (or not yet fetched).  The replier refreshes its map
	// from the EVM; the requester retries shortly.
	FailStaleShard i2o.FailCode = 200

	// FailNotOwner is permanent for the requested block: the shard map
	// assigns it to a different builder unit.  The requester lost the
	// range in a rebalance and must drop it (the new owner rebuilds it).
	FailNotOwner i2o.FailCode = 201
)

// Allocation reply status codes.
const (
	// AllocGrant carries one event block.
	AllocGrant uint8 = 0

	// AllocRetry means the EVM has nothing for this builder right now but
	// the run is not over (other builders still hold outstanding blocks
	// that may orphan back).  Ask again shortly.
	AllocRetry uint8 = 1

	// AllocOver means the run is complete: the event limit is exhausted
	// and no block is outstanding anywhere.
	AllocOver uint8 = 2
)

// FragReq asks a readout unit (XFuncFragment) or an aggregator
// (XFuncSuper) for the fragments of one event block.
type FragReq struct {
	Version uint64 // requester's shard map version
	BU      uint32 // requesting builder unit (shard identity, not TiD)
	First   uint64 // first event id of the block
	Count   uint32 // events in the block (1..64)
	Skip    uint64 // bit i set: event First+i is already built, don't serve it
}

const fragReqLen = 8 + 4 + 8 + 4 + 8

// EncodeFragReq renders r as a frame payload.
func EncodeFragReq(r FragReq) []byte {
	b := make([]byte, fragReqLen)
	binary.LittleEndian.PutUint64(b[0:], r.Version)
	binary.LittleEndian.PutUint32(b[8:], r.BU)
	binary.LittleEndian.PutUint64(b[12:], r.First)
	binary.LittleEndian.PutUint32(b[20:], r.Count)
	binary.LittleEndian.PutUint64(b[24:], r.Skip)
	return b
}

// DecodeFragReq parses a FragReq, rejecting short, oversized, and
// internally inconsistent payloads.
func DecodeFragReq(p []byte) (FragReq, error) {
	var r FragReq
	if len(p) != fragReqLen {
		return r, fmt.Errorf("%w: fragment request of %d bytes, want %d", i2o.ErrTruncated, len(p), fragReqLen)
	}
	r.Version = binary.LittleEndian.Uint64(p[0:])
	r.BU = binary.LittleEndian.Uint32(p[8:])
	r.First = binary.LittleEndian.Uint64(p[12:])
	r.Count = binary.LittleEndian.Uint32(p[20:])
	r.Skip = binary.LittleEndian.Uint64(p[24:])
	if r.First == 0 || r.Count == 0 || r.Count > 64 {
		return r, fmt.Errorf("daq: fragment request block [%d,+%d) out of range", r.First, r.Count)
	}
	if r.Count < 64 && r.Skip>>r.Count != 0 {
		return r, fmt.Errorf("daq: fragment request skip mask %#x wider than count %d", r.Skip, r.Count)
	}
	return r, nil
}

// Fragment is one readout unit's data for one event inside a FragRep.
type Fragment struct {
	RU    uint32 // readout unit instance that produced the data
	Event uint64
	Data  []byte
}

// FragRep answers a FragReq: the fragments of a block, from one RU (one
// fragment per served event) or from an aggregator subtree (a
// super-fragment: every descendant RU's fragment for every served event).
type FragRep struct {
	Version uint64
	First   uint64
	Count   uint32
	Frags   []Fragment
}

const fragRepHdrLen = 8 + 8 + 4 + 4
const fragHdrLen = 4 + 8 + 4

// EncodedFragRepLen returns the encoded size of a reply carrying nfrags
// fragments of dataLen bytes total.
func EncodedFragRepLen(nfrags, dataLen int) int {
	return fragRepHdrLen + nfrags*fragHdrLen + dataLen
}

// AppendFragRepHeader writes the fixed reply header into b, which must
// hold at least fragRepHdrLen bytes, and returns the write cursor.
func AppendFragRepHeader(b []byte, version, first uint64, count, nfrags uint32) int {
	binary.LittleEndian.PutUint64(b[0:], version)
	binary.LittleEndian.PutUint64(b[8:], first)
	binary.LittleEndian.PutUint32(b[16:], count)
	binary.LittleEndian.PutUint32(b[20:], nfrags)
	return fragRepHdrLen
}

// AppendFragment writes one fragment header at b[off:] and returns the
// offset of its data section (the caller fills the data in place) plus
// the cursor past the fragment.
func AppendFragment(b []byte, off int, ru uint32, event uint64, size int) (dataOff, next int) {
	binary.LittleEndian.PutUint32(b[off:], ru)
	binary.LittleEndian.PutUint64(b[off+4:], event)
	binary.LittleEndian.PutUint32(b[off+12:], uint32(size))
	return off + fragHdrLen, off + fragHdrLen + size
}

// EncodeFragRep renders r as a frame payload.
func EncodeFragRep(r FragRep) []byte {
	total := 0
	for _, f := range r.Frags {
		total += len(f.Data)
	}
	b := make([]byte, EncodedFragRepLen(len(r.Frags), total))
	off := AppendFragRepHeader(b, r.Version, r.First, r.Count, uint32(len(r.Frags)))
	for _, f := range r.Frags {
		dataOff, next := AppendFragment(b, off, f.RU, f.Event, len(f.Data))
		copy(b[dataOff:], f.Data)
		off = next
	}
	return b
}

// DecodeFragRep parses a FragRep.  Fragment data aliases p — callers that
// keep fragments past the frame's lifetime must copy.
func DecodeFragRep(p []byte) (FragRep, error) {
	var r FragRep
	if len(p) < fragRepHdrLen {
		return r, fmt.Errorf("%w: fragment reply of %d bytes", i2o.ErrTruncated, len(p))
	}
	r.Version = binary.LittleEndian.Uint64(p[0:])
	r.First = binary.LittleEndian.Uint64(p[8:])
	r.Count = binary.LittleEndian.Uint32(p[16:])
	nfrags := binary.LittleEndian.Uint32(p[20:])
	if r.First == 0 || r.Count == 0 || r.Count > 64 {
		return r, fmt.Errorf("daq: fragment reply block [%d,+%d) out of range", r.First, r.Count)
	}
	if rem := len(p) - fragRepHdrLen; uint64(nfrags) > uint64(rem)/fragHdrLen {
		return r, fmt.Errorf("%w: %d fragments in %d bytes", i2o.ErrTruncated, nfrags, rem)
	}
	off := fragRepHdrLen
	r.Frags = make([]Fragment, 0, nfrags)
	for i := uint32(0); i < nfrags; i++ {
		if len(p)-off < fragHdrLen {
			return r, fmt.Errorf("%w: fragment %d header", i2o.ErrTruncated, i)
		}
		f := Fragment{
			RU:    binary.LittleEndian.Uint32(p[off:]),
			Event: binary.LittleEndian.Uint64(p[off+4:]),
		}
		n := int(binary.LittleEndian.Uint32(p[off+12:]))
		off += fragHdrLen
		if n < 0 || len(p)-off < n {
			return r, fmt.Errorf("%w: fragment %d data of %d bytes", i2o.ErrTruncated, i, n)
		}
		if f.Event < r.First || f.Event >= r.First+uint64(r.Count) {
			return r, fmt.Errorf("daq: fragment %d for event %d outside block [%d,+%d)", i, f.Event, r.First, r.Count)
		}
		f.Data = p[off : off+n : off+n]
		off += n
		r.Frags = append(r.Frags, f)
	}
	if off != len(p) {
		return r, fmt.Errorf("daq: fragment reply has %d trailing bytes", len(p)-off)
	}
	return r, nil
}

// AllocReq asks the EVM for the next event block.
type AllocReq struct {
	BU uint32
}

const allocReqLen = 4

// EncodeAllocReq renders r as a frame payload.
func EncodeAllocReq(r AllocReq) []byte {
	b := make([]byte, allocReqLen)
	binary.LittleEndian.PutUint32(b, r.BU)
	return b
}

// DecodeAllocReq parses an AllocReq.
func DecodeAllocReq(p []byte) (AllocReq, error) {
	var r AllocReq
	if len(p) != allocReqLen {
		return r, fmt.Errorf("%w: allocation request of %d bytes", i2o.ErrTruncated, len(p))
	}
	r.BU = binary.LittleEndian.Uint32(p)
	return r, nil
}

// AllocRep answers an AllocReq.  First/Count/Skip are meaningful only
// with Status == AllocGrant; Version is always the EVM's current shard
// map version.
type AllocRep struct {
	Status  uint8
	Version uint64
	First   uint64
	Count   uint32
	Skip    uint64
}

const allocRepLen = 1 + 8 + 8 + 4 + 8

// EncodeAllocRep renders r as a frame payload.
func EncodeAllocRep(r AllocRep) []byte {
	b := make([]byte, allocRepLen)
	b[0] = r.Status
	binary.LittleEndian.PutUint64(b[1:], r.Version)
	binary.LittleEndian.PutUint64(b[9:], r.First)
	binary.LittleEndian.PutUint32(b[17:], r.Count)
	binary.LittleEndian.PutUint64(b[21:], r.Skip)
	return b
}

// DecodeAllocRep parses an AllocRep.
func DecodeAllocRep(p []byte) (AllocRep, error) {
	var r AllocRep
	if len(p) != allocRepLen {
		return r, fmt.Errorf("%w: allocation reply of %d bytes", i2o.ErrTruncated, len(p))
	}
	r.Status = p[0]
	r.Version = binary.LittleEndian.Uint64(p[1:])
	r.First = binary.LittleEndian.Uint64(p[9:])
	r.Count = binary.LittleEndian.Uint32(p[17:])
	r.Skip = binary.LittleEndian.Uint64(p[21:])
	if r.Status > AllocOver {
		return r, fmt.Errorf("daq: allocation status %d unknown", r.Status)
	}
	if r.Status == AllocGrant {
		if r.First == 0 || r.Count == 0 || r.Count > 64 {
			return r, fmt.Errorf("daq: allocation block [%d,+%d) out of range", r.First, r.Count)
		}
		if r.Count < 64 && r.Skip>>r.Count != 0 {
			return r, fmt.Errorf("daq: allocation skip mask %#x wider than count %d", r.Skip, r.Count)
		}
		if bits.OnesCount64(r.Skip) == int(r.Count) {
			return r, fmt.Errorf("daq: allocation grants fully built block %d", r.First)
		}
	}
	return r, nil
}

// RegisterReq announces a builder unit to the EVM before its first
// allocation; the EVM adds it to the shard map.  Node lets the EVM evict
// every builder of a peer the health monitor declares down.
type RegisterReq struct {
	BU   uint32
	Node uint32
}

const registerReqLen = 8

// EncodeRegisterReq renders r as a frame payload.
func EncodeRegisterReq(r RegisterReq) []byte {
	b := make([]byte, registerReqLen)
	binary.LittleEndian.PutUint32(b, r.BU)
	binary.LittleEndian.PutUint32(b[4:], r.Node)
	return b
}

// DecodeRegisterReq parses a RegisterReq.
func DecodeRegisterReq(p []byte) (RegisterReq, error) {
	var r RegisterReq
	if len(p) != registerReqLen {
		return r, fmt.Errorf("%w: register request of %d bytes", i2o.ErrTruncated, len(p))
	}
	r.BU = binary.LittleEndian.Uint32(p)
	r.Node = binary.LittleEndian.Uint32(p[4:])
	return r, nil
}

// RegisterRep acknowledges a registration with the current map version.
type RegisterRep struct {
	Version uint64
}

const registerRepLen = 8

// EncodeRegisterRep renders r as a frame payload.
func EncodeRegisterRep(r RegisterRep) []byte {
	b := make([]byte, registerRepLen)
	binary.LittleEndian.PutUint64(b, r.Version)
	return b
}

// DecodeRegisterRep parses a RegisterRep.
func DecodeRegisterRep(p []byte) (RegisterRep, error) {
	var r RegisterRep
	if len(p) != registerRepLen {
		return r, fmt.Errorf("%w: register reply of %d bytes", i2o.ErrTruncated, len(p))
	}
	r.Version = binary.LittleEndian.Uint64(p)
	return r, nil
}

// BuiltNote is the fire-and-forget completion notification for one event.
type BuiltNote struct {
	BU    uint32
	Event uint64
}

const builtNoteLen = 12

// EncodeBuiltNote renders r as a frame payload.
func EncodeBuiltNote(r BuiltNote) []byte {
	b := make([]byte, builtNoteLen)
	binary.LittleEndian.PutUint32(b, r.BU)
	binary.LittleEndian.PutUint64(b[4:], r.Event)
	return b
}

// DecodeBuiltNote parses a BuiltNote.
func DecodeBuiltNote(p []byte) (BuiltNote, error) {
	var r BuiltNote
	if len(p) != builtNoteLen {
		return r, fmt.Errorf("%w: built note of %d bytes", i2o.ErrTruncated, len(p))
	}
	r.BU = binary.LittleEndian.Uint32(p)
	r.Event = binary.LittleEndian.Uint64(p[4:])
	if r.Event == 0 {
		return r, fmt.Errorf("daq: built note for event 0")
	}
	return r, nil
}

// ReleaseNote returns a granted block to the EVM: the holder hit a
// permanent not-owner fence (a rebalance changed the slot's owner after
// the grant was issued but before the fragments were fetched), so the
// block must be re-granted to whoever owns the slot now.  Without it the
// block would sit in the EVM's in-flight table forever — never built,
// never re-queued — and the run could not drain.
type ReleaseNote struct {
	BU    uint32
	First uint64 // first event of the granted block being returned
}

const releaseNoteLen = 12

// EncodeReleaseNote renders r as a frame payload.
func EncodeReleaseNote(r ReleaseNote) []byte {
	b := make([]byte, releaseNoteLen)
	binary.LittleEndian.PutUint32(b, r.BU)
	binary.LittleEndian.PutUint64(b[4:], r.First)
	return b
}

// DecodeReleaseNote parses a ReleaseNote.
func DecodeReleaseNote(p []byte) (ReleaseNote, error) {
	var r ReleaseNote
	if len(p) != releaseNoteLen {
		return r, fmt.Errorf("%w: release note of %d bytes", i2o.ErrTruncated, len(p))
	}
	r.BU = binary.LittleEndian.Uint32(p)
	r.First = binary.LittleEndian.Uint64(p[4:])
	if r.First == 0 {
		return r, fmt.Errorf("daq: release note for event 0")
	}
	return r, nil
}
