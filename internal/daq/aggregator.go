package daq

import (
	"fmt"
	"sync"
	"sync/atomic"

	"xdaq/internal/device"
	"xdaq/internal/i2o"
)

// AggClass is the aggregator device class name.
const AggClass = "daq.agg"

// AggChild describes one downstream source of an aggregator: a readout
// unit (leaf) or another aggregator (interior node of a deeper tree).
type AggChild struct {
	TID i2o.TID
	Agg bool // child is an aggregator, addressed via XFuncSuper
}

// Aggregator is an intermediate event-builder stage: it absorbs the
// fan-in of a bounded set of readout units (or deeper aggregators),
// combining their fragments for an event block into one super-fragment
// reply.  A builder unit then talks to O(log RUs) aggregator roots
// instead of every RU — the QCDSP-style tree the paper's flat topology
// lacks (see doc/architecture.md).
//
// Like the BU it is a pure event-driven state machine: the parent's
// XFuncSuper request fans out as child requests, the child replies
// complete the pending super, and the merged reply goes back to the
// parent.  Fences are inherited from the children — a stale or not-owner
// failure anywhere in the subtree propagates to the parent with the same
// code, so the builder's retry logic is identical with and without
// intermediate stages.
type Aggregator struct {
	dev      *device.Device
	instance int

	evm      i2o.TID
	children []AggChild

	mu      sync.Mutex
	pending map[uint32]*aggPending
	seq     uint32

	supers atomic.Uint64 // super-fragments assembled
	failed atomic.Uint64 // supers abandoned on a child failure
}

// aggPending is one super-fragment under assembly.  The originating
// request frame is recycled when its handler returns, so every field
// needed to address the eventual reply is copied here.
type aggPending struct {
	// Reply routing, copied from the parent's request.
	target, initiator i2o.TID
	prio              i2o.Priority
	initCtx, txnCtx   uint32

	version   uint64
	first     uint64
	count     uint32
	remaining int
	frags     []Fragment // data copied out of child reply frames
	bytes     int
}

// NewAggregator creates aggregator `instance`.
func NewAggregator(instance int) *Aggregator {
	a := &Aggregator{instance: instance, evm: i2o.TIDNone}
	a.dev = device.New(AggClass, instance)
	a.dev.Bind(XFuncSuper, a.handleSuper)
	a.dev.Bind(XFuncFragment, a.handleChildReply)
	a.pending = make(map[uint32]*aggPending)
	return a
}

// Device returns the module to plug into an executive.
func (a *Aggregator) Device() *device.Device { return a.dev }

// Configure wires the aggregator to its children; evm (optional,
// i2o.TIDNone to disable) names the event manager whose shard map pushes
// the aggregator should receive — the aggregator itself does not fence,
// its leaf RUs do, but subscribing keeps a deep tree's map copies warm.
// Must precede use.
func (a *Aggregator) Configure(evm i2o.TID, children []AggChild) {
	a.evm = evm
	a.children = append([]AggChild(nil), children...)
}

// Supers returns how many super-fragments were assembled and sent.
func (a *Aggregator) Supers() uint64 { return a.supers.Load() }

// Failed returns how many supers were abandoned because a child reported
// a failure (propagated to the parent).
func (a *Aggregator) Failed() uint64 { return a.failed.Load() }

// handleSuper accepts a parent's block request (and, in deeper trees,
// aggregator children's replies, which carry FlagReply).
func (a *Aggregator) handleSuper(ctx *device.Context, m *i2o.Message) error {
	if m.Flags.Has(i2o.FlagReply) {
		return a.handleChildReply(ctx, m)
	}
	if !m.Flags.Has(i2o.FlagReplyExpected) {
		return nil
	}
	req, err := DecodeFragReq(m.Payload)
	if err != nil {
		return err
	}
	if len(a.children) == 0 {
		return fmt.Errorf("daq: aggregator %d not configured", a.instance)
	}
	p := &aggPending{
		target:    m.Initiator,
		initiator: m.Target,
		prio:      m.Priority,
		initCtx:   m.InitiatorContext,
		txnCtx:    m.TransactionContext,
		version:   req.Version,
		first:     req.First,
		count:     req.Count,
		remaining: len(a.children),
	}
	a.mu.Lock()
	a.seq++
	key := a.seq
	a.pending[key] = p
	a.mu.Unlock()

	// The request payload is forwarded unchanged to every child, but the
	// frame it rides in is recycled after this handler — each child send
	// needs its own copy.
	payload := m.Payload
	for i, c := range a.children {
		xfunc := uint16(XFuncFragment)
		if c.Agg {
			xfunc = XFuncSuper
		}
		cm := &i2o.Message{
			Flags:              i2o.FlagReplyExpected,
			Priority:           m.Priority,
			Target:             c.TID,
			Initiator:          a.dev.TID(),
			Function:           i2o.FuncPrivate,
			Org:                i2o.OrgXDAQ,
			XFunction:          xfunc,
			TransactionContext: key<<8 | uint32(i),
			Payload:            append([]byte(nil), payload...),
		}
		if err := ctx.Host.Send(cm); err != nil {
			a.abandon(ctx, key, FailStaleShard, fmt.Sprintf("child %d unreachable: %v", i, err))
			return nil
		}
	}
	return nil
}

// handleChildReply folds one child's fragments into the pending super.
func (a *Aggregator) handleChildReply(ctx *device.Context, m *i2o.Message) error {
	if !m.Flags.Has(i2o.FlagReply) {
		return fmt.Errorf("daq: aggregator serves no leaf fragments")
	}
	key := m.TransactionContext >> 8
	a.mu.Lock()
	p := a.pending[key]
	a.mu.Unlock()
	if p == nil {
		return nil // super already abandoned; late child reply
	}
	if err := i2o.ReplyError(m); err != nil {
		code := i2o.FailApplication
		if rec, ok := err.(*i2o.FailRecord); ok {
			code = rec.Code
		}
		a.abandon(ctx, key, code, err.Error())
		return nil
	}
	rep, err := DecodeFragRep(m.Payload)
	if err != nil {
		a.abandon(ctx, key, i2o.FailBadFrame, err.Error())
		return nil
	}

	a.mu.Lock()
	p = a.pending[key]
	if p == nil {
		a.mu.Unlock()
		return nil
	}
	if rep.Version > p.version {
		p.version = rep.Version
	}
	for _, f := range rep.Frags {
		// The reply frame's buffer is recycled after this handler; the
		// fragment data must be copied to outlive it.
		p.frags = append(p.frags, Fragment{
			RU:    f.RU,
			Event: f.Event,
			Data:  append([]byte(nil), f.Data...),
		})
		p.bytes += len(f.Data)
	}
	p.remaining--
	done := p.remaining == 0
	if done {
		delete(a.pending, key)
	}
	a.mu.Unlock()
	if !done {
		return nil
	}

	buf, err := ctx.Host.Alloc(EncodedFragRepLen(len(p.frags), p.bytes))
	if err != nil {
		return err
	}
	body := buf.Bytes()
	off := AppendFragRepHeader(body, p.version, p.first, p.count, uint32(len(p.frags)))
	for _, f := range p.frags {
		dataOff, next := AppendFragment(body, off, f.RU, f.Event, len(f.Data))
		copy(body[dataOff:], f.Data)
		off = next
	}
	out := a.replySkeleton(p)
	out.Payload = body
	out.AttachBuffer(buf)
	if err := ctx.Host.Send(out); err != nil {
		return err
	}
	a.supers.Add(1)
	return nil
}

// abandon drops a pending super and propagates a failure to the parent.
func (a *Aggregator) abandon(ctx *device.Context, key uint32, code i2o.FailCode, detail string) {
	a.mu.Lock()
	p := a.pending[key]
	delete(a.pending, key)
	a.mu.Unlock()
	if p == nil {
		return
	}
	a.failed.Add(1)
	out := a.replySkeleton(p)
	out.Flags |= i2o.FlagFail
	out.Payload = (&i2o.FailRecord{Code: code, Detail: detail}).EncodeFail()
	if err := ctx.Host.Send(out); err != nil {
		ctx.Host.Logf("daq: aggregator %d fail reply: %v", a.instance, err)
	}
}

// replySkeleton reconstructs the reply frame NewReply would have built
// from the original request (which is long recycled).
func (a *Aggregator) replySkeleton(p *aggPending) *i2o.Message {
	return &i2o.Message{
		Flags:              i2o.FlagReply,
		Priority:           p.prio,
		Target:             p.target,
		Initiator:          p.initiator,
		Function:           i2o.FuncPrivate,
		Org:                i2o.OrgXDAQ,
		XFunction:          XFuncSuper,
		InitiatorContext:   p.initCtx,
		TransactionContext: p.txnCtx,
	}
	// Note: the parent addressed us with XFuncSuper, so the reply carries
	// the same code and lands in its XFuncSuper handler.
}
