package daq

import (
	"errors"
	"sync"
	"testing"
	"time"

	"xdaq/internal/executive"
	"xdaq/internal/i2o"
)

// localExec builds one executive hosting the whole device tree; over the
// in-process dispatch path the tree protocol is exercised end to end
// without a fabric.
func localExec(t *testing.T) *executive.Executive {
	t.Helper()
	e := executive.New(executive.Options{
		Name: "tree", Node: 1,
		RequestTimeout: 3 * time.Second,
		Logf:           func(string, ...any) {},
	})
	t.Cleanup(e.Close)
	return e
}

// buildTree plugs an EVM, nRU readout units, a layer of aggregators with
// the given fan-in, and one BU wired to the aggregator roots.
func buildTree(t *testing.T, e *executive.Executive, nRU, fanin, fragSize int, events uint64, rangeSize uint32) (*EVM, []*RU, []*Aggregator, *BU) {
	t.Helper()
	evm := NewEVM(events)
	evm.SetSharding(8, rangeSize)
	if _, err := e.Plug(evm.Device()); err != nil {
		t.Fatal(err)
	}
	rus := make([]*RU, nRU)
	for i := range rus {
		rus[i] = NewRU(i, fragSize)
		rus[i].SetEVM(evm.Device().TID())
		if _, err := e.Plug(rus[i].Device()); err != nil {
			t.Fatal(err)
		}
	}
	var aggs []*Aggregator
	var roots []i2o.TID
	for lo := 0; lo < nRU; lo += fanin {
		hi := lo + fanin
		if hi > nRU {
			hi = nRU
		}
		agg := NewAggregator(len(aggs))
		if _, err := e.Plug(agg.Device()); err != nil {
			t.Fatal(err)
		}
		var children []AggChild
		for i := lo; i < hi; i++ {
			children = append(children, AggChild{TID: rus[i].Device().TID()})
		}
		agg.Configure(evm.Device().TID(), children)
		aggs = append(aggs, agg)
		roots = append(roots, agg.Device().TID())
	}
	bu := NewBU(0)
	if _, err := e.Plug(bu.Device()); err != nil {
		t.Fatal(err)
	}
	bu.ConfigureTree(evm.Device().TID(), roots, nRU)
	return evm, rus, aggs, bu
}

func TestTreeTopologyBuildsAllEvents(t *testing.T) {
	const (
		nRU    = 8
		events = 64
		frag   = 96
	)
	e := localExec(t)
	evm, rus, aggs, bu := buildTree(t, e, nRU, 4, frag, events, 4)
	if _, err := bu.Start(0, 4); err != nil {
		t.Fatal(err)
	}
	stats, err := bu.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Built != events {
		t.Fatalf("built %d, want %d", stats.Built, events)
	}
	if stats.Corrupt != 0 {
		t.Fatalf("%d corrupt fragments", stats.Corrupt)
	}
	if want := uint64(events * nRU * frag); stats.Bytes != want {
		t.Fatalf("bytes %d, want %d", stats.Bytes, want)
	}
	if evm.Built() != events || evm.Duplicates() != 0 {
		t.Fatalf("evm built=%d dup=%d", evm.Built(), evm.Duplicates())
	}
	for i, ru := range rus {
		if ru.Served() != events {
			t.Fatalf("ru %d served %d", i, ru.Served())
		}
	}
	for i, agg := range aggs {
		if agg.Supers() == 0 {
			t.Fatalf("aggregator %d assembled no supers", i)
		}
	}
}

func TestDeepTreeAggregatorOfAggregators(t *testing.T) {
	const (
		nRU    = 4
		events = 24
		frag   = 64
	)
	e := localExec(t)
	evm := NewEVM(events)
	evm.SetSharding(4, 4)
	if _, err := e.Plug(evm.Device()); err != nil {
		t.Fatal(err)
	}
	rus := make([]*RU, nRU)
	for i := range rus {
		rus[i] = NewRU(i, frag)
		rus[i].SetEVM(evm.Device().TID())
		if _, err := e.Plug(rus[i].Device()); err != nil {
			t.Fatal(err)
		}
	}
	// Two leaf aggregators of two RUs each, one root over both.
	var leaves []*Aggregator
	for i := 0; i < 2; i++ {
		agg := NewAggregator(i)
		if _, err := e.Plug(agg.Device()); err != nil {
			t.Fatal(err)
		}
		agg.Configure(evm.Device().TID(), []AggChild{
			{TID: rus[2*i].Device().TID()},
			{TID: rus[2*i+1].Device().TID()},
		})
		leaves = append(leaves, agg)
	}
	root := NewAggregator(2)
	if _, err := e.Plug(root.Device()); err != nil {
		t.Fatal(err)
	}
	root.Configure(evm.Device().TID(), []AggChild{
		{TID: leaves[0].Device().TID(), Agg: true},
		{TID: leaves[1].Device().TID(), Agg: true},
	})
	bu := NewBU(0)
	if _, err := e.Plug(bu.Device()); err != nil {
		t.Fatal(err)
	}
	bu.ConfigureTree(evm.Device().TID(), []i2o.TID{root.Device().TID()}, nRU)

	if _, err := bu.Start(0, 2); err != nil {
		t.Fatal(err)
	}
	stats, err := bu.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Built != events || stats.Corrupt != 0 {
		t.Fatalf("built=%d corrupt=%d", stats.Built, stats.Corrupt)
	}
	if want := uint64(events * nRU * frag); stats.Bytes != want {
		t.Fatalf("bytes %d, want %d", stats.Bytes, want)
	}
	if root.Supers() == 0 || leaves[0].Supers() == 0 || leaves[1].Supers() == 0 {
		t.Fatal("some aggregator stage assembled no supers")
	}
}

// TestRUVersionSkewFenced pins the satellite requirement: a readout unit
// holding a stale shard map answers a transient FailStaleShard — and a
// builder the map does not name gets FailNotOwner — never a silently
// misrouted fragment.
func TestRUVersionSkewFenced(t *testing.T) {
	e := localExec(t)
	evm := NewEVM(100)
	evm.SetSharding(4, 4)
	if _, err := e.Plug(evm.Device()); err != nil {
		t.Fatal(err)
	}
	ru := NewRU(0, 64)
	ru.SetEVM(evm.Device().TID())
	if _, err := e.Plug(ru.Device()); err != nil {
		t.Fatal(err)
	}

	// Register builder 7: map version 1, every slot owned by 7.
	rep, err := e.Request(&i2o.Message{
		Target: evm.Device().TID(), Initiator: i2o.TIDExecutive,
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: XFuncRegister,
		Payload: EncodeRegisterReq(RegisterReq{BU: 7, Node: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := DecodeRegisterRep(rep.Payload)
	rep.Release()
	if err != nil || reg.Version != 1 {
		t.Fatalf("register: %+v %v", reg, err)
	}

	ask := func(req FragReq) (*FragRep, *i2o.FailRecord) {
		t.Helper()
		rep, err := e.Request(&i2o.Message{
			Target: ru.Device().TID(), Initiator: i2o.TIDExecutive,
			Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: XFuncFragment,
			Payload: EncodeFragReq(req),
		})
		if err != nil {
			var rec *i2o.FailRecord
			if errors.As(err, &rec) {
				return nil, rec
			}
			t.Fatal(err)
		}
		defer rep.Release()
		fr, err := DecodeFragRep(rep.Payload)
		if err != nil {
			t.Fatal(err)
		}
		return &fr, nil
	}

	// The RU has not fetched a map yet: the correct-version request is
	// fenced as stale (transient), never served on faith.
	if fr, fail := ask(FragReq{Version: 1, BU: 7, First: 1, Count: 4}); fail == nil {
		t.Fatalf("unfetched map served %+v", fr)
	} else if fail.Code != FailStaleShard {
		t.Fatalf("unfetched map failed with %v, want FailStaleShard", fail.Code)
	}
	if ru.Stale() == 0 {
		t.Fatal("stale counter did not move")
	}

	// The fence triggered an asynchronous map fetch; once it lands the
	// same request is served.
	deadline := time.Now().Add(2 * time.Second)
	for ru.ShardVersion() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if ru.ShardVersion() < 1 {
		t.Fatal("RU never refreshed its shard map")
	}
	fr, fail := ask(FragReq{Version: 1, BU: 7, First: 1, Count: 4})
	if fail != nil {
		t.Fatalf("refreshed map still fenced: %v", fail)
	}
	if len(fr.Frags) != 4 || fr.Version != 1 {
		t.Fatalf("served %+v", fr)
	}

	// A builder the map does not name is refused permanently.
	if _, fail := ask(FragReq{Version: 1, BU: 9, First: 1, Count: 4}); fail == nil || fail.Code != FailNotOwner {
		t.Fatalf("misrouted request not refused: %v", fail)
	}
	if ru.Refused() == 0 {
		t.Fatal("refused counter did not move")
	}

	// A request from the future fences again (and refetches).
	if _, fail := ask(FragReq{Version: 99, BU: 7, First: 1, Count: 4}); fail == nil || fail.Code != FailStaleShard {
		t.Fatalf("future-version request not fenced: %v", fail)
	}
}

// TestBUStatsRaceClean hammers Stats from other goroutines while a build
// runs; the race detector (internal/daq is in the Makefile race list)
// verifies the counters are safe under concurrent dispatchers and timers.
func TestBUStatsRaceClean(t *testing.T) {
	r := buildRig(t, 2, 1, 200, 64)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = r.bus[0].Stats()
					_ = r.evm.Built()
				}
			}
		}()
	}
	if _, err := r.bus[0].Start(0, 4); err != nil {
		t.Fatal(err)
	}
	stats, err := r.bus[0].Wait()
	close(stop)
	wg.Wait()
	if err != nil || stats.Built != 200 {
		t.Fatalf("built=%d err=%v", stats.Built, err)
	}
}
