package daq

import (
	"reflect"
	"testing"
)

func TestShardMapDeterministicAssignment(t *testing.T) {
	build := func() *ShardMap {
		s := NewShardMap(16, 4)
		s.Add(3)
		s.Add(1)
		s.Add(7)
		s.Remove(1)
		s.Add(5)
		return s
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same operations, different maps:\n%v\n%v", a, b)
	}
	if a.Version != 5 {
		t.Fatalf("version %d after 5 mutations", a.Version)
	}
	// Owner is a pure function of the map.
	for ev := uint64(1); ev <= 256; ev++ {
		ao, aok := a.Owner(ev)
		bo, bok := b.Owner(ev)
		if ao != bo || aok != bok {
			t.Fatalf("event %d: owners differ (%d vs %d)", ev, ao, bo)
		}
	}
}

func TestShardMapAddTakesOnlyItsShare(t *testing.T) {
	s := NewShardMap(16, 1)
	s.Add(0)
	for _, bu := range []uint32{1, 2, 3} {
		before := append([]uint32(nil), s.Owners...)
		if !s.Add(bu) {
			t.Fatalf("add %d: no change", bu)
		}
		moved := 0
		for i := range s.Owners {
			if s.Owners[i] != before[i] {
				if s.Owners[i] != bu {
					t.Fatalf("add %d reassigned slot %d to %d (only the newcomer may gain slots)",
						bu, i, s.Owners[i])
				}
				moved++
			}
		}
		members := len(s.Members())
		ceil := (len(s.Owners) + members - 1) / members
		if moved == 0 || moved > ceil {
			t.Fatalf("add %d moved %d slots, want 1..%d", bu, moved, ceil)
		}
		// The result stays balanced: no owner more than one slot above
		// another... except the ceil rounding.
		load := s.load()
		min, max := 1<<30, 0
		for _, n := range load {
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		if max-min > 1 {
			t.Fatalf("after add %d: unbalanced loads %v", bu, load)
		}
	}
}

func TestShardMapRemoveMinimalMovement(t *testing.T) {
	s := NewShardMap(16, 1)
	for bu := uint32(0); bu < 4; bu++ {
		s.Add(bu)
	}
	before := append([]uint32(nil), s.Owners...)
	if !s.Remove(2) {
		t.Fatal("remove 2: no change")
	}
	for i := range s.Owners {
		if before[i] != 2 && s.Owners[i] != before[i] {
			t.Fatalf("slot %d moved from %d to %d, but only builder 2's slots may move",
				i, before[i], s.Owners[i])
		}
		if before[i] == 2 && s.Owners[i] == 2 {
			t.Fatalf("slot %d still owned by removed builder 2", i)
		}
	}
	load := s.load()
	min, max := 1<<30, 0
	for _, n := range load {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max-min > 1 {
		t.Fatalf("after remove: unbalanced loads %v", load)
	}
	if s.Remove(2) {
		t.Fatal("removing an absent member changed the map")
	}
}

func TestShardMapRemoveLastOwnerOrphansSlots(t *testing.T) {
	s := NewShardMap(4, 1)
	s.Add(9)
	s.Remove(9)
	for i, o := range s.Owners {
		if o != NoOwner {
			t.Fatalf("slot %d still owned by %d after last member left", i, o)
		}
	}
	if _, ok := s.Owner(1); ok {
		t.Fatal("ownerless map claims an owner")
	}
}

func TestShardMapReAddIsNoOp(t *testing.T) {
	s := NewShardMap(8, 2)
	s.Add(1)
	v := s.Version
	if s.Add(1) {
		t.Fatal("re-adding a member changed the map")
	}
	if s.Version != v {
		t.Fatal("re-add bumped the version")
	}
}

func TestShardMapBlockGeometry(t *testing.T) {
	s := NewShardMap(4, 8)
	if s.Block(1) != 0 || s.Block(8) != 0 || s.Block(9) != 1 {
		t.Fatal("block boundaries")
	}
	if s.First(0) != 1 || s.First(3) != 25 {
		t.Fatal("block first events")
	}
	if s.Slot(5) != 1 || s.Slot(4) != 0 {
		t.Fatal("slot hashing")
	}
}

func TestShardMapEncodeDecode(t *testing.T) {
	s := NewShardMap(16, 4)
	s.Add(3)
	s.Add(11)
	s.Remove(3)
	got, err := DecodeShardMap(EncodeShardMap(s))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip:\n%v\n%v", s, got)
	}
	if _, err := DecodeShardMap(EncodeShardMap(s)[:10]); err == nil {
		t.Fatal("truncated map decoded")
	}
}
