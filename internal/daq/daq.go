// Package daq implements the paper's motivating application domain: a
// distributed data acquisition event builder in the style of the CMS
// experiment the XDAQ framework was built for.
//
// Four device classes cooperate:
//
//   - EVM, the event manager: owns the versioned shard map assigning
//     event-range blocks to builder units, grants blocks on request, and
//     accounts for completed events — rebalancing the map when a builder
//     is removed so every event is still built exactly once.
//   - RU, a readout unit: holds (here: synthesizes) one detector
//     fragment per event and serves whole blocks of them on request,
//     fencing requests that disagree with its shard map copy.
//   - Aggregator: an intermediate stage absorbing the fan-in of a bounded
//     set of RUs (or deeper aggregators), merging their block replies
//     into one super-fragment — the tree topology that takes a builder
//     from O(RUs) conversations per event to O(log RUs).
//   - BU, a builder unit: registers with the EVM, requests event blocks,
//     collects every RU's fragment for each event (directly or through
//     aggregator roots), verifies and counts the built events.
//
// True to the paper's event-based processing model (§3.2), every unit is
// a state machine driven entirely by message arrival: it never blocks for
// a reply.  Requests carry FlagReplyExpected; the replies come back as
// ordinary private frames into the same bound handlers, and the next step
// of the protocol fires from there.  All multi-field payloads are the
// bounds-checked records of wire.go.
package daq

import (
	"xdaq/internal/i2o"
)

// Device class names.
const (
	EVMClass = "daq.evm"
	RUClass  = "daq.ru"
	BUClass  = "daq.bu"
)

// Private function codes.  (XFuncEvent = 5 lives in fu.go with the filter
// unit, AggClass in aggregator.go.)
const (
	// XFuncAllocate (to EVM): request the next event block.  Payload:
	// AllocReq; reply: AllocRep (grant, retry, or run-over).
	XFuncAllocate uint16 = 1

	// XFuncBuilt (to EVM): one-way notification that one event was built.
	// Payload: BuiltNote.
	XFuncBuilt uint16 = 2

	// XFuncFragment (to RU): request the fragments of one event block.
	// Payload: FragReq; reply: FragRep (one fragment per served event), or
	// a fail reply with FailStaleShard/FailNotOwner from the shard fence.
	XFuncFragment uint16 = 3

	// XFuncStart (to BU, self-addressed): kick off building.  Payload:
	// uint64 number of events (0 = until the EVM runs dry), uint32
	// pipeline depth in event blocks.
	XFuncStart uint16 = 4

	// XFuncSuper (to aggregator): request the super-fragment of one event
	// block — every descendant RU's fragment for every served event.
	// Payload: FragReq; reply: FragRep.
	XFuncSuper uint16 = 6

	// XFuncRegister (to EVM): a builder unit announces itself before its
	// first allocation; the EVM adds it to the shard map.  Payload:
	// RegisterReq; reply: RegisterRep.
	XFuncRegister uint16 = 7

	// XFuncShardMap (to EVM): fetch the current shard map; the asker is
	// recorded as a subscriber and receives one-way pushes (same code, no
	// reply expected) on every later version bump.
	XFuncShardMap uint16 = 8

	// XFuncRelease (to EVM): one-way return of a granted block the holder
	// cannot finish — a readout unit refused it as not-owner after a
	// rebalance overtook the grant.  The EVM re-queues it for the current
	// slot owner.  Payload: ReleaseNote.
	XFuncRelease uint16 = 9
)

// FragmentFill returns the fill byte of the fragment of event on the
// given readout unit; builder units verify it on receipt.
func FragmentFill(ruInstance int, event uint64) byte {
	return byte(event*2654435761 + uint64(ruInstance)*40503 + 17)
}

// send fires one private frame (no reply expected).
func send(host hostAPI, target, initiator i2o.TID, xfunc uint16, prio i2o.Priority, payload []byte) error {
	return host.Send(&i2o.Message{
		Priority:  prio,
		Target:    target,
		Initiator: initiator,
		Function:  i2o.FuncPrivate,
		Org:       i2o.OrgXDAQ,
		XFunction: xfunc,
		Payload:   payload,
	})
}

// request fires one private frame with a reply expected; the reply comes
// back asynchronously into the initiator's handler for the same xfunc.
func request(host hostAPI, target, initiator i2o.TID, xfunc uint16, prio i2o.Priority, payload []byte) error {
	return host.Send(&i2o.Message{
		Flags:     i2o.FlagReplyExpected,
		Priority:  prio,
		Target:    target,
		Initiator: initiator,
		Function:  i2o.FuncPrivate,
		Org:       i2o.OrgXDAQ,
		XFunction: xfunc,
		Payload:   payload,
	})
}

// hostAPI is the slice of device.Host the helpers need (kept narrow so
// tests can fake it).
type hostAPI interface {
	Send(m *i2o.Message) error
}
