// Package daq implements the paper's motivating application domain: a
// distributed data acquisition event builder in the style of the CMS
// experiment the XDAQ framework was built for.
//
// Three device classes cooperate:
//
//   - EVM, the event manager: allocates event identifiers to builder
//     units and accounts for completed events.
//   - RU, a readout unit: holds (here: synthesizes) one detector
//     fragment per event and serves it on request.
//   - BU, a builder unit: requests event allocations from the EVM,
//     collects the event's fragment from every RU, verifies and counts
//     the built event.
//
// True to the paper's event-based processing model (§3.2), the builder
// unit is a state machine driven entirely by message arrival: it never
// blocks for a reply.  Requests carry FlagReplyExpected; the replies come
// back as ordinary private frames into the same bound handlers, and the
// next step of the protocol fires from there.  n BUs talk to m RUs in
// both directions — the cross traffic that gave XDAQ its name.
package daq

import (
	"encoding/binary"

	"xdaq/internal/i2o"
)

// Device class names.
const (
	EVMClass = "daq.evm"
	RUClass  = "daq.ru"
	BUClass  = "daq.bu"
)

// Private function codes.
const (
	// XFuncAllocate (to EVM): request the next event id.  The reply
	// payload is the uint64 event id, or empty when the configured event
	// count is exhausted.
	XFuncAllocate uint16 = 1

	// XFuncBuilt (to EVM): one-way notification that an event was built.
	// Payload: uint64 event id.
	XFuncBuilt uint16 = 2

	// XFuncFragment (to RU): request the fragment of one event.  Payload:
	// uint64 event id.  Reply payload: uint64 event id, then the fragment
	// bytes.
	XFuncFragment uint16 = 3

	// XFuncStart (to BU, self-addressed): kick off building.  Payload:
	// uint64 number of events (0 = until the EVM runs dry), uint32
	// pipeline depth.
	XFuncStart uint16 = 4
)

// FragmentFill returns the fill byte of the fragment of event on the
// given readout unit; builder units verify it on receipt.
func FragmentFill(ruInstance int, event uint64) byte {
	return byte(event*2654435761 + uint64(ruInstance)*40503 + 17)
}

func putU64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func getU64(p []byte) (uint64, bool) {
	if len(p) < 8 {
		return 0, false
	}
	return binary.LittleEndian.Uint64(p), true
}

// send fires one private frame (no reply expected).
func send(host hostAPI, target, initiator i2o.TID, xfunc uint16, prio i2o.Priority, payload []byte) error {
	return host.Send(&i2o.Message{
		Priority:  prio,
		Target:    target,
		Initiator: initiator,
		Function:  i2o.FuncPrivate,
		Org:       i2o.OrgXDAQ,
		XFunction: xfunc,
		Payload:   payload,
	})
}

// request fires one private frame with a reply expected; the reply comes
// back asynchronously into the initiator's handler for the same xfunc.
func request(host hostAPI, target, initiator i2o.TID, xfunc uint16, prio i2o.Priority, payload []byte) error {
	return host.Send(&i2o.Message{
		Flags:     i2o.FlagReplyExpected,
		Priority:  prio,
		Target:    target,
		Initiator: initiator,
		Function:  i2o.FuncPrivate,
		Org:       i2o.OrgXDAQ,
		XFunction: xfunc,
		Payload:   payload,
	})
}

// hostAPI is the slice of device.Host the helpers need (kept narrow so
// tests can fake it).
type hostAPI interface {
	Send(m *i2o.Message) error
}
