package daq

import (
	"encoding/binary"
	"testing"
	"time"

	"xdaq/internal/i2o"
)

// buildRigWithFU extends the standard rig with a filter unit on the BU's
// node, wired into the first BU.
func buildRigWithFU(t *testing.T, nRU int, events uint64, fragSize int, filter Filter) (*rig, *FU) {
	t.Helper()
	r := buildRig(t, nRU, 1, events, fragSize)
	buNode := i2o.NodeID(2 + nRU)
	fuExec := r.execs[buNode]
	fu := NewFU(0, fuExec.Allocator(), filter)
	if _, err := fuExec.Plug(fu.Device()); err != nil {
		t.Fatal(err)
	}
	fuTID, err := fuExec.Resolve(FUClass, 0, i2o.NodeNone)
	if err != nil {
		t.Fatal(err)
	}
	r.bus[0].SetFilterUnit(fuTID)
	return r, fu
}

func waitCount(t *testing.T, what string, want uint64, get func() uint64) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for get() != want {
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d, want %d", what, get(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFilterUnitReceivesAllEvents(t *testing.T) {
	const events = 25
	r, fu := buildRigWithFU(t, 2, events, 300, nil)
	if _, err := r.bus[0].Start(0, 4); err != nil {
		t.Fatal(err)
	}
	stats, err := r.bus[0].Wait()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Built != events {
		t.Fatalf("built %d", stats.Built)
	}
	waitCount(t, "accepted", events, fu.Accepted)
	if fu.Rejected() != 0 {
		t.Fatalf("rejected %d with nil filter", fu.Rejected())
	}
	if want := uint64(events * 2 * 300); fu.Bytes() != want {
		t.Fatalf("fu bytes %d, want %d", fu.Bytes(), want)
	}
}

func TestFilterSelectsEvents(t *testing.T) {
	const events = 40
	// Keep only even event ids.
	filter := func(event uint64, data []byte) bool { return event%2 == 0 }
	r, fu := buildRigWithFU(t, 1, events, 64, filter)
	if _, err := r.bus[0].Start(0, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := r.bus[0].Wait(); err != nil {
		t.Fatal(err)
	}
	waitCount(t, "accepted+rejected", events, func() uint64 { return fu.Accepted() + fu.Rejected() })
	if fu.Accepted() != events/2 || fu.Rejected() != events/2 {
		t.Fatalf("accepted=%d rejected=%d", fu.Accepted(), fu.Rejected())
	}
}

func TestFilterUnitEventContent(t *testing.T) {
	const fragSize = 128
	seen := make(chan struct {
		event uint64
		data  []byte
	}, 8)
	r, fu := buildRigWithFU(t, 2, 3, fragSize, nil)
	fu.OnAccept = func(event uint64, data []byte) {
		seen <- struct {
			event uint64
			data  []byte
		}{event, append([]byte(nil), data...)}
	}
	if _, err := r.bus[0].Start(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.bus[0].Wait(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		select {
		case ev := <-seen:
			if len(ev.data) != 2*fragSize {
				t.Fatalf("event %d: %d bytes", ev.event, len(ev.data))
			}
			// Each fragment's fill byte must match one of the RUs.
			for _, off := range []int{0, fragSize} {
				fill := ev.data[off]
				if fill != FragmentFill(0, ev.event) && fill != FragmentFill(1, ev.event) {
					t.Fatalf("event %d: unexpected fill %#02x at %d", ev.event, fill, off)
				}
			}
		case <-time.After(3 * time.Second):
			t.Fatal("accepted events missing")
		}
	}
}

func TestFilterUnitRejectsTruncated(t *testing.T) {
	fuExec := buildRig(t, 1, 1, 1, 16).execs[1]
	fu := NewFU(1, fuExec.Allocator(), nil)
	if _, err := fuExec.Plug(fu.Device()); err != nil {
		t.Fatal(err)
	}
	// A chain transfer shorter than the 8-byte event header must error.
	payload := make([]byte, 16+4) // chain header + 4 bytes
	binary.LittleEndian.PutUint32(payload, 0)
	binary.LittleEndian.PutUint32(payload[4:], 1)
	binary.LittleEndian.PutUint64(payload[8:], 4)
	_, err := fuExec.Request(&i2o.Message{
		Target:    fu.Device().TID(),
		Initiator: i2o.TIDExecutive,
		Function:  i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: XFuncEvent,
		Payload: payload,
	})
	if err == nil {
		t.Fatal("truncated event accepted")
	}
}
