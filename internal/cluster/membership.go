// Cluster bootstrap and membership: the protocol that lets executives in
// separate OS processes find each other, modeled on the single-system-
// image management layer of the Cluster Computing White Paper (PAPERS.md)
// grafted onto the paper's I2O message fabric.
//
// The protocol is deliberately small:
//
//   - Join (ExecJoin, request/reply).  A joining executive sends its
//     member record — identity, TCP listen address, optional shm ring
//     directory, and its exported device table (the TiD exchange) — to
//     any current member (the seed rendezvous).  The receiver wires a
//     route to the joiner, adopts it, bumps its membership epoch, pushes
//     the updated list to every other member, and replies with the full
//     list.  One round trip bootstraps a complete node.
//
//   - Peer list push (ExecPeerList, fire-and-forget).  Membership sync is
//     additive: receivers adopt members and exported devices they have
//     not seen and never remove anyone on a push.  Removal travels only
//     as an explicit leave or as a local health eviction, so two
//     concurrent joins rendezvousing at different members can never
//     erase each other — the lists merge.
//
//   - Leave (ExecJoin with op=leave, an acknowledged request to every
//     member — the leaver tears its transports down right after, so an
//     unacknowledged notification could die in a send ring).  Receivers
//     drop the member and mark the peer down.  A member that misses the
//     leave keeps a stale entry until its health monitor declares the
//     peer down and evicts it (Evict), which is also the only path for
//     crashed members — the health-integrated leave-on-down.  A peer
//     that recovers (health Up) is re-admitted from its tombstone
//     (Revive).
//
// Transport wiring stays out of this package: the owner supplies a Wire
// callback that connects the fabric to a learned member (dial its TCP
// address, map its shm rings) and returns the route name for the system
// table.  In-process clusters (tests, the chaos harness) pass no Wire and
// reuse whatever routes already exist.
package cluster

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"xdaq/internal/executive"
	"xdaq/internal/i2o"
	"xdaq/internal/tid"
)

// DeviceExport is one row of a member's exported device table: a device
// class instance other members may Discover-free address through a proxy.
type DeviceExport struct {
	Class    string
	Instance int
	TID      i2o.TID
}

// Member is one executive's membership record.
type Member struct {
	// Node is the IOP identity.
	Node i2o.NodeID

	// Name tags logs and status output.
	Name string

	// Addr is the member's TCP listen address ("" for in-process
	// members).
	Addr string

	// Shm is the member's shared-memory ring directory; members that
	// share it exchange frames over mmap'd rings instead of sockets.
	Shm string

	// Devices is the exported device table carried by the join exchange.
	Devices []DeviceExport
}

// MembershipConfig configures a Membership manager.
type MembershipConfig struct {
	// Exec is the owning executive.  Required.
	Exec *executive.Executive

	// Self is this node's member record.  Node must be zero or match the
	// executive's.  Nil Devices track the executive's exported device
	// table live (re-snapshotted whenever the record is shared with a
	// peer); a non-nil slice pins the advertised set.
	Self Member

	// Wire connects the transport fabric to a newly learned member and
	// returns the peer-transport route name for the system table.  Nil
	// means routes already exist (in-process clusters).
	Wire func(Member) (route string, err error)

	// Unwire, when set, is told when a member leaves or is evicted.
	Unwire func(Member)

	// RequestTimeout bounds the join round trip when the caller's
	// context has no deadline; defaults to 5s.
	RequestTimeout time.Duration

	// Logf sinks membership diagnostics; nil silences them.
	Logf func(format string, args ...any)
}

// Membership runs the bootstrap/membership protocol for one executive.
type Membership struct {
	exec *executive.Executive
	cfg  MembershipConfig

	// pinned: the owner supplied an explicit device export list, so the
	// local record is never re-snapshotted from the executive table.
	pinned bool

	mu      sync.Mutex
	members map[i2o.NodeID]Member
	tomb    map[i2o.NodeID]Member
	epoch   uint64
	changed chan struct{}
}

// ExportedDevices snapshots the executive's local device table rows worth
// advertising to peers: everything except the executive itself, transport
// devices ("pt.*") and internal proxy classes ("@*").
func ExportedDevices(e *executive.Executive) []DeviceExport {
	var out []DeviceExport
	for _, entry := range e.Table().Entries() {
		if entry.Kind != tid.Local {
			continue
		}
		if entry.Class == "executive" || strings.HasPrefix(entry.Class, "pt.") || strings.HasPrefix(entry.Class, "@") {
			continue
		}
		out = append(out, DeviceExport{Class: entry.Class, Instance: entry.Instance, TID: entry.TID})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TID < out[j].TID })
	return out
}

// NewMembership starts a manager whose only member is the local node and
// installs it as the executive's ExecJoin/ExecPeerList handler.  Call
// Join to enter an existing cluster through any live member.
func NewMembership(cfg MembershipConfig) (*Membership, error) {
	if cfg.Exec == nil {
		return nil, fmt.Errorf("cluster: MembershipConfig.Exec is required")
	}
	if cfg.Self.Node == 0 {
		cfg.Self.Node = cfg.Exec.Node()
	}
	if cfg.Self.Node != cfg.Exec.Node() {
		return nil, fmt.Errorf("cluster: Self.Node %v does not match executive node %v", cfg.Self.Node, cfg.Exec.Node())
	}
	pinned := cfg.Self.Devices != nil
	if !pinned {
		cfg.Self.Devices = ExportedDevices(cfg.Exec)
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 5 * time.Second
	}
	ms := &Membership{
		exec:    cfg.Exec,
		cfg:     cfg,
		pinned:  pinned,
		members: map[i2o.NodeID]Member{cfg.Self.Node: cfg.Self},
		tomb:    make(map[i2o.NodeID]Member),
		epoch:   1,
		changed: make(chan struct{}),
	}
	cfg.Exec.SetMembershipHandler(ms.handle)
	return ms, nil
}

func (ms *Membership) logf(format string, args ...any) {
	if ms.cfg.Logf != nil {
		ms.cfg.Logf(format, args...)
	}
}

// Self returns the local member record (with a fresh device snapshot
// unless the export list was pinned).
func (ms *Membership) Self() Member {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.refreshSelfLocked()
}

// refreshSelfLocked re-snapshots the local exported device table so the
// record shared with peers covers devices plugged after the manager
// started.  Caller holds ms.mu.
func (ms *Membership) refreshSelfLocked() Member {
	if !ms.pinned {
		ms.cfg.Self.Devices = ExportedDevices(ms.exec)
	}
	ms.members[ms.cfg.Self.Node] = ms.cfg.Self
	return ms.cfg.Self
}

// Epoch returns the local membership epoch: it rises on every local
// change and to the highest epoch seen on a push.
func (ms *Membership) Epoch() uint64 {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.epoch
}

// Members returns the current membership sorted by node id.
func (ms *Membership) Members() []Member {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	out := make([]Member, 0, len(ms.members))
	for _, m := range ms.members {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// Lookup returns one member's record.
func (ms *Membership) Lookup(node i2o.NodeID) (Member, bool) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	m, ok := ms.members[node]
	return m, ok
}

// WaitReady blocks until the membership holds at least n members.
func (ms *Membership) WaitReady(ctx context.Context, n int) error {
	for {
		ms.mu.Lock()
		have := len(ms.members)
		ch := ms.changed
		ms.mu.Unlock()
		if have >= n {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("cluster: waiting for %d members (have %d): %w", n, have, ctx.Err())
		case <-ch:
		}
	}
}

// Join enters the cluster through seed (the rendezvous member): one
// ExecJoin round trip carrying our record, answered with the full
// membership list.  The caller must already have a route to seed (for
// remote seeds, tcp.Transport.Identify establishes one from an address).
func (ms *Membership) Join(ctx context.Context, seed i2o.NodeID) error {
	if seed == ms.cfg.Self.Node {
		return fmt.Errorf("cluster: cannot join through self")
	}
	if _, hasDeadline := ctx.Deadline(); !hasDeadline {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, ms.cfg.RequestTimeout)
		defer cancel()
	}
	ms.mu.Lock()
	self := ms.refreshSelfLocked()
	ms.mu.Unlock()
	params := encodeJoinRequest("join", self)
	rep, err := ms.request(ctx, seed, i2o.ExecJoin, params)
	if err != nil {
		return fmt.Errorf("cluster: join via node %v: %w", seed, err)
	}
	defer rep.Recycle()
	epoch, list, err := decodeMemberList(rep.Payload)
	if err != nil {
		return fmt.Errorf("cluster: join reply: %w", err)
	}
	ms.merge(epoch, list)
	return nil
}

// Leave announces a graceful departure to every other member.  Each
// notification is an acknowledged request, not a push: a leaver usually
// tears its transports down the moment Leave returns, and a
// fire-and-forget frame still queued in a send ring at that point is
// silently lost — leaving peers a stale member they must health-evict.
// A member that cannot be reached within ctx is skipped (reported in
// the returned error) and falls back to health eviction on its side.
// The local membership collapses back to just self.
func (ms *Membership) Leave(ctx context.Context) error {
	if _, hasDeadline := ctx.Deadline(); !hasDeadline {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, ms.cfg.RequestTimeout)
		defer cancel()
	}
	params := encodeJoinRequest("leave", ms.cfg.Self)
	ms.mu.Lock()
	others := make([]Member, 0, len(ms.members)-1)
	for node, m := range ms.members {
		if node != ms.cfg.Self.Node {
			others = append(others, m)
		}
	}
	ms.members = map[i2o.NodeID]Member{ms.cfg.Self.Node: ms.cfg.Self}
	ms.epoch++
	ms.notifyLocked()
	ms.mu.Unlock()

	var firstErr error
	for _, m := range others {
		if err := ctx.Err(); err != nil {
			return err
		}
		rep, err := ms.request(ctx, m.Node, i2o.ExecJoin, params)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: leave notify %v: %w", m.Node, err)
			}
			continue
		}
		rep.Recycle()
	}
	return firstErr
}

// Evict removes a member declared dead by the health layer.  The record
// is kept as a tombstone so a recovered peer can be re-admitted by
// Revive without a new join exchange.
func (ms *Membership) Evict(node i2o.NodeID) {
	ms.remove(node, "evicted (health down)")
}

// Revive re-admits a tombstoned member after its health recovered.
func (ms *Membership) Revive(node i2o.NodeID) {
	ms.mu.Lock()
	m, ok := ms.tomb[node]
	if !ok {
		ms.mu.Unlock()
		return
	}
	delete(ms.tomb, node)
	ms.members[node] = m
	ms.epoch++
	ms.notifyLocked()
	ms.mu.Unlock()
	ms.logf("cluster: member %v revived", node)
}

// Close uninstalls the executive hooks.  It does not announce a leave;
// call Leave first for a graceful departure.
func (ms *Membership) Close() {
	ms.exec.SetMembershipHandler(nil)
}

// handle is the executive's ExecJoin/ExecPeerList hook.
func (ms *Membership) handle(fn i2o.Function, params []i2o.Param) ([]i2o.Param, error) {
	switch fn {
	case i2o.ExecJoin:
		op, m, err := decodeJoinRequest(params)
		if err != nil {
			return nil, err
		}
		switch op {
		case "join":
			return ms.admit(m)
		case "leave":
			ms.remove(m.Node, "left")
			return nil, nil
		default:
			return nil, fmt.Errorf("cluster: unknown join op %q", op)
		}
	case i2o.ExecPeerList:
		epoch, list, err := decodeMemberListParams(params)
		if err != nil {
			return nil, err
		}
		ms.merge(epoch, list)
		return nil, nil
	}
	return nil, fmt.Errorf("cluster: unexpected function %v", fn)
}

// admit handles one join request: adopt the member, push the new list to
// everyone else, reply with the full list.
func (ms *Membership) admit(m Member) ([]i2o.Param, error) {
	if m.Node == ms.cfg.Self.Node {
		return nil, fmt.Errorf("cluster: node %v tried to join itself", m.Node)
	}
	ms.mu.Lock()
	ms.refreshSelfLocked()
	_, known := ms.members[m.Node]
	if !known {
		delete(ms.tomb, m.Node) // a rejoin supersedes any tombstone
		if err := ms.adoptLocked(m); err != nil {
			ms.mu.Unlock()
			return nil, err
		}
		ms.epoch++
		ms.notifyLocked()
	} else {
		// A rejoin refreshes the record (the devices may differ).
		ms.members[m.Node] = m
	}
	epoch := ms.epoch
	list := ms.membersLocked()
	ms.mu.Unlock()

	ms.logf("cluster: member %v (%s) joined via us, %d members at epoch %d", m.Node, m.Name, len(list), epoch)
	// Propagate asynchronously; the joiner gets the list in the reply.
	go ms.broadcast(epoch, list, m.Node)
	return encodeMemberList(epoch, list), nil
}

// remove drops a member (leave or eviction) and tombstones its record.
func (ms *Membership) remove(node i2o.NodeID, why string) {
	if node == ms.cfg.Self.Node {
		return
	}
	ms.mu.Lock()
	m, ok := ms.members[node]
	if !ok {
		ms.mu.Unlock()
		return
	}
	delete(ms.members, node)
	ms.tomb[node] = m
	ms.epoch++
	ms.notifyLocked()
	ms.mu.Unlock()

	// Fast-fail anything still addressed at the departed peer.  Idempotent
	// for evictions (health already marked it down); adoptLocked clears
	// the flag on rejoin or revival.
	ms.exec.SetPeerDown(node, true)
	if ms.cfg.Unwire != nil {
		ms.cfg.Unwire(m)
	}
	ms.logf("cluster: member %v (%s) %s", node, m.Name, why)
}

// merge applies a membership list additively: unknown members are
// adopted, known ones refreshed, nobody is removed.
func (ms *Membership) merge(epoch uint64, list []Member) {
	ms.mu.Lock()
	if epoch > ms.epoch {
		ms.epoch = epoch
	}
	added := 0
	for _, m := range list {
		if m.Node == ms.cfg.Self.Node {
			continue
		}
		if _, known := ms.members[m.Node]; known {
			ms.members[m.Node] = m
			continue
		}
		// A push can re-announce a member we evicted; trust the sender
		// (our health monitor will evict again if it is still dead).
		delete(ms.tomb, m.Node)
		if err := ms.adoptLocked(m); err != nil {
			ms.logf("cluster: adopting member %v: %v", m.Node, err)
			continue
		}
		added++
	}
	if added > 0 {
		ms.notifyLocked()
	}
	ms.mu.Unlock()
	if added > 0 {
		ms.logf("cluster: adopted %d members from push (epoch %d)", added, epoch)
	}
}

// adoptLocked wires a new member into the fabric and the TiD table.
// Caller holds ms.mu.
func (ms *Membership) adoptLocked(m Member) error {
	route := ""
	if ms.cfg.Wire != nil {
		r, err := ms.cfg.Wire(m)
		if err != nil {
			return err
		}
		route = r
		ms.exec.SetRoute(m.Node, route)
	} else if r, ok := ms.exec.Route(m.Node); ok {
		route = r
	} else {
		return fmt.Errorf("cluster: no route to member %v and no Wire callback", m.Node)
	}
	ms.exec.SetPeerDown(m.Node, false)
	ms.members[m.Node] = m

	// TiD exchange: every exported device appears behind a local proxy,
	// so callers Resolve instead of a Discover round trip per device.
	table := ms.exec.Table()
	for _, d := range m.Devices {
		if _, ok := table.Resolve(d.Class, d.Instance, m.Node); ok {
			continue
		}
		if _, err := table.AllocProxy(d.Class, d.Instance, m.Node, route, d.TID); err != nil {
			ms.logf("cluster: proxy %s[%d]@%v: %v", d.Class, d.Instance, m.Node, err)
		}
	}
	return nil
}

// membersLocked snapshots the list; caller holds ms.mu.
func (ms *Membership) membersLocked() []Member {
	out := make([]Member, 0, len(ms.members))
	for _, m := range ms.members {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// notifyLocked wakes WaitReady waiters; caller holds ms.mu.
func (ms *Membership) notifyLocked() {
	close(ms.changed)
	ms.changed = make(chan struct{})
}

// broadcast pushes the member list to every member except self and skip.
func (ms *Membership) broadcast(epoch uint64, list []Member, skip i2o.NodeID) {
	params := encodeMemberList(epoch, list)
	for _, m := range list {
		if m.Node == ms.cfg.Self.Node || m.Node == skip {
			continue
		}
		if err := ms.push(m.Node, i2o.ExecPeerList, params); err != nil {
			ms.logf("cluster: push to %v: %v", m.Node, err)
		}
	}
}

// push sends one fire-and-forget executive frame carrying params.
func (ms *Membership) push(node i2o.NodeID, fn i2o.Function, params []i2o.Param) error {
	target, err := ms.exec.ExecProxy(node)
	if err != nil {
		return err
	}
	payload, err := i2o.EncodeParams(params)
	if err != nil {
		return err
	}
	m, err := ms.exec.AllocMessage(len(payload))
	if err != nil {
		return err
	}
	copy(m.Payload, payload)
	m.Priority = i2o.PriorityHigh
	m.Target = target
	m.Initiator = i2o.TIDExecutive
	m.Function = fn
	return ms.exec.Send(m)
}

// request sends one executive request carrying params and returns the
// reply.
func (ms *Membership) request(ctx context.Context, node i2o.NodeID, fn i2o.Function, params []i2o.Param) (*i2o.Message, error) {
	target, err := ms.exec.ExecProxy(node)
	if err != nil {
		return nil, err
	}
	payload, err := i2o.EncodeParams(params)
	if err != nil {
		return nil, err
	}
	m, err := ms.exec.AllocMessage(len(payload))
	if err != nil {
		return nil, err
	}
	copy(m.Payload, payload)
	m.Priority = i2o.PriorityHigh
	m.Target = target
	m.Initiator = i2o.TIDExecutive
	m.Function = fn
	return ms.exec.RequestContext(ctx, m)
}

// ---- wire encoding -------------------------------------------------------
//
// Join request:   op, node, name, addr, shm, dev.<class>#<instance>=tid
// Member list:    epoch, then per member m.<node>.{name,addr,shm} and
//                 m.<node>.dev.<class>#<instance>=tid

func encodeJoinRequest(op string, m Member) []i2o.Param {
	params := []i2o.Param{
		{Key: "op", Value: op},
		{Key: "node", Value: int64(m.Node)},
		{Key: "name", Value: m.Name},
		{Key: "addr", Value: m.Addr},
		{Key: "shm", Value: m.Shm},
	}
	for _, d := range m.Devices {
		params = append(params, i2o.Param{
			Key:   fmt.Sprintf("dev.%s#%d", d.Class, d.Instance),
			Value: int64(d.TID),
		})
	}
	return params
}

func decodeJoinRequest(params []i2o.Param) (op string, m Member, err error) {
	for _, p := range params {
		switch {
		case p.Key == "op":
			op, _ = p.Value.(string)
		case p.Key == "node":
			n, ok := p.Value.(int64)
			if !ok || n <= 0 {
				return "", m, fmt.Errorf("cluster: bad node %v", p.Value)
			}
			m.Node = i2o.NodeID(n)
		case p.Key == "name":
			m.Name, _ = p.Value.(string)
		case p.Key == "addr":
			m.Addr, _ = p.Value.(string)
		case p.Key == "shm":
			m.Shm, _ = p.Value.(string)
		case strings.HasPrefix(p.Key, "dev."):
			d, derr := parseDeviceKey(strings.TrimPrefix(p.Key, "dev."), p.Value)
			if derr != nil {
				return "", m, derr
			}
			m.Devices = append(m.Devices, d)
		}
	}
	if op == "" || m.Node == 0 {
		return "", m, fmt.Errorf("cluster: join request missing op or node")
	}
	return op, m, nil
}

func encodeMemberList(epoch uint64, list []Member) []i2o.Param {
	params := []i2o.Param{{Key: "epoch", Value: epoch}}
	for _, m := range list {
		prefix := fmt.Sprintf("m.%d.", m.Node)
		params = append(params,
			i2o.Param{Key: prefix + "name", Value: m.Name},
			i2o.Param{Key: prefix + "addr", Value: m.Addr},
			i2o.Param{Key: prefix + "shm", Value: m.Shm},
		)
		for _, d := range m.Devices {
			params = append(params, i2o.Param{
				Key:   fmt.Sprintf("%sdev.%s#%d", prefix, d.Class, d.Instance),
				Value: int64(d.TID),
			})
		}
	}
	return params
}

func decodeMemberList(payload []byte) (uint64, []Member, error) {
	params, err := i2o.DecodeParams(payload)
	if err != nil {
		return 0, nil, err
	}
	return decodeMemberListParams(params)
}

func decodeMemberListParams(params []i2o.Param) (uint64, []Member, error) {
	var epoch uint64
	byNode := make(map[i2o.NodeID]*Member)
	order := []i2o.NodeID{}
	for _, p := range params {
		if p.Key == "epoch" {
			switch v := p.Value.(type) {
			case uint64:
				epoch = v
			case int64:
				epoch = uint64(v)
			}
			continue
		}
		if !strings.HasPrefix(p.Key, "m.") {
			continue
		}
		rest := strings.TrimPrefix(p.Key, "m.")
		dot := strings.IndexByte(rest, '.')
		if dot < 0 {
			return 0, nil, fmt.Errorf("cluster: bad member key %q", p.Key)
		}
		n, err := strconv.ParseUint(rest[:dot], 10, 32)
		if err != nil || n == 0 {
			return 0, nil, fmt.Errorf("cluster: bad member key %q", p.Key)
		}
		node := i2o.NodeID(n)
		m := byNode[node]
		if m == nil {
			m = &Member{Node: node}
			byNode[node] = m
			order = append(order, node)
		}
		field := rest[dot+1:]
		switch {
		case field == "name":
			m.Name, _ = p.Value.(string)
		case field == "addr":
			m.Addr, _ = p.Value.(string)
		case field == "shm":
			m.Shm, _ = p.Value.(string)
		case strings.HasPrefix(field, "dev."):
			d, derr := parseDeviceKey(strings.TrimPrefix(field, "dev."), p.Value)
			if derr != nil {
				return 0, nil, derr
			}
			m.Devices = append(m.Devices, d)
		}
	}
	list := make([]Member, 0, len(order))
	for _, node := range order {
		list = append(list, *byNode[node])
	}
	sort.Slice(list, func(i, j int) bool { return list[i].Node < list[j].Node })
	return epoch, list, nil
}

// parseDeviceKey decodes "<class>#<instance>" (the HRT row key; the class
// may contain dots) and the TiD value.
func parseDeviceKey(key string, value any) (DeviceExport, error) {
	hash := strings.LastIndexByte(key, '#')
	if hash <= 0 {
		return DeviceExport{}, fmt.Errorf("cluster: bad device key %q", key)
	}
	inst, err := strconv.Atoi(key[hash+1:])
	if err != nil {
		return DeviceExport{}, fmt.Errorf("cluster: bad device key %q: %w", key, err)
	}
	t, ok := value.(int64)
	if !ok || !i2o.TID(t).Valid() {
		return DeviceExport{}, fmt.Errorf("cluster: bad device tid %v for %q", value, key)
	}
	return DeviceExport{Class: key[:hash], Instance: inst, TID: i2o.TID(t)}, nil
}
