package cluster

import (
	"errors"
	"strings"
	"testing"
	"time"

	"xdaq/internal/device"
	"xdaq/internal/executive"
	"xdaq/internal/health"
	"xdaq/internal/i2o"
	"xdaq/internal/pta"
	"xdaq/internal/tclish"
	"xdaq/internal/transport/loopback"
)

// testCluster wires a host (node 100) and two processing nodes (1, 2)
// over loopback.
type testCluster struct {
	host  *executive.Executive
	nodes map[i2o.NodeID]*executive.Executive
}

func buildCluster(t *testing.T, extraHosts ...i2o.NodeID) *testCluster {
	t.Helper()
	fabric := loopback.NewFabric()
	ids := append([]i2o.NodeID{100, 1, 2}, extraHosts...)
	execs := make(map[i2o.NodeID]*executive.Executive, len(ids))
	for _, id := range ids {
		e := executive.New(executive.Options{
			Name: "n", Node: id,
			RequestTimeout: 2 * time.Second,
			Logf:           func(string, ...any) {},
		})
		agent, err := pta.New(e)
		if err != nil {
			t.Fatal(err)
		}
		ep, err := fabric.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := agent.Register(ep, pta.Task); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			agent.Close()
			e.Close()
		})
		execs[id] = e
	}
	for _, a := range ids {
		for _, b := range ids {
			if a != b {
				execs[a].SetRoute(b, loopback.DefaultName)
			}
		}
	}
	return &testCluster{host: execs[100], nodes: execs}
}

func init() {
	executive.RegisterModule("cluster.echo", func(instance int, params []i2o.Param) (*device.Device, error) {
		d := device.New("echo", instance)
		d.Bind(1, func(ctx *device.Context, m *i2o.Message) error {
			return device.ReplyIfExpected(ctx, m, m.Payload)
		})
		for _, p := range params {
			if p.Key != "module" && p.Key != "instance" {
				d.Params().Set(p.Key, p.Value)
			}
		}
		return d, nil
	})
}

func primary(t *testing.T, tc *testCluster) *Controller {
	t.Helper()
	c, err := NewPrimary(tc.host)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []i2o.NodeID{1, 2} {
		if err := c.AddNode(n, "worker"); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestPrimaryLifecycle(t *testing.T) {
	tc := buildCluster(t)
	c := primary(t, tc)
	if c.Role() != Primary || !c.HoldsControl() {
		t.Fatal("primary role/control")
	}
	if got := c.Nodes(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("nodes %v", got)
	}
	if name, ok := c.NodeName(1); !ok || name != "worker" {
		t.Fatalf("name %q %v", name, ok)
	}
	if err := c.AddNode(55, "unrouted"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unrouted add: %v", err)
	}
}

func TestStatusAndResources(t *testing.T) {
	tc := buildCluster(t)
	c := primary(t, tc)
	status, err := c.Status(1)
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]any{}
	for _, p := range status {
		found[p.Key] = p.Value
	}
	if found["node"] != int64(1) || found["state"] != "operational" {
		t.Fatalf("status %v", found)
	}
	res, err := c.Resources(1)
	if err != nil {
		t.Fatal(err)
	}
	hasExec := false
	for _, p := range res {
		if p.Key == "executive#0" {
			hasExec = true
		}
	}
	if !hasExec {
		t.Fatalf("resources %v", res)
	}
	if _, err := c.Status(42); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("status unknown node: %v", err)
	}
}

func TestPlugConfigureUnplugRemotely(t *testing.T) {
	tc := buildCluster(t)
	c := primary(t, tc)
	id, err := c.Plug(1, "cluster.echo", 3, []i2o.Param{{Key: "rate", Value: int64(50)}})
	if err != nil {
		t.Fatal(err)
	}
	if !id.Valid() {
		t.Fatalf("tid %v", id)
	}
	params, err := c.GetParams(1, "echo", 3, []string{"rate"})
	if err != nil {
		t.Fatal(err)
	}
	if len(params) != 1 || params[0].Value != int64(50) {
		t.Fatalf("params %v", params)
	}
	if err := c.SetParams(1, "echo", 3, []i2o.Param{{Key: "rate", Value: int64(99)}}); err != nil {
		t.Fatal(err)
	}
	params, _ = c.GetParams(1, "echo", 3, []string{"rate"})
	if params[0].Value != int64(99) {
		t.Fatalf("params after set %v", params)
	}
	if err := c.Unplug(1, id); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetParams(1, "echo", 3, nil); err == nil {
		t.Fatal("device survived unplug")
	}
}

func TestEnableQuiesceAll(t *testing.T) {
	tc := buildCluster(t)
	c := primary(t, tc)
	if err := c.QuiesceAll(); err != nil {
		t.Fatal(err)
	}
	for _, n := range []i2o.NodeID{1, 2} {
		if tc.nodes[n].State() != device.Quiesced {
			t.Fatalf("node %v state %v", n, tc.nodes[n].State())
		}
	}
	if err := c.EnableAll(); err != nil {
		t.Fatal(err)
	}
	for _, n := range []i2o.NodeID{1, 2} {
		if tc.nodes[n].State() != device.Operational {
			t.Fatalf("node %v state %v", n, tc.nodes[n].State())
		}
	}
}

func TestSetSystemTable(t *testing.T) {
	tc := buildCluster(t)
	c := primary(t, tc)
	if err := c.SetSystemTable(1, map[i2o.NodeID]string{7: "pt.gm", 8: "pt.tcp"}); err != nil {
		t.Fatal(err)
	}
	if r, ok := tc.nodes[1].Route(7); !ok || r != "pt.gm" {
		t.Fatalf("route 7: %q %v", r, ok)
	}
}

func TestSecondaryControlRights(t *testing.T) {
	tc := buildCluster(t, 101)
	p := primary(t, tc)
	_ = p
	s, err := NewSecondary(tc.nodes[101], 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddNode(1, "worker"); err != nil {
		t.Fatal(err)
	}
	// Without rights, mutating commands fail; reads are allowed.
	if _, err := s.Status(1); err != nil {
		t.Fatalf("secondary status: %v", err)
	}
	if err := s.Enable(1); !errors.Is(err, ErrNoControl) {
		t.Fatalf("enable without rights: %v", err)
	}
	if err := s.RequestControl(); err != nil {
		t.Fatal(err)
	}
	if !s.HoldsControl() {
		t.Fatal("rights not recorded")
	}
	if err := s.Enable(1); err != nil {
		t.Fatal(err)
	}
	if err := s.ReleaseControl(); err != nil {
		t.Fatal(err)
	}
	if s.HoldsControl() {
		t.Fatal("rights survive release")
	}
}

func TestControlRightsMutualExclusion(t *testing.T) {
	tc := buildCluster(t, 101, 102)
	if _, err := NewPrimary(tc.host); err != nil {
		t.Fatal(err)
	}
	s1, err := NewSecondary(tc.nodes[101], 100)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSecondary(tc.nodes[102], 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.RequestControl(); err != nil {
		t.Fatal(err)
	}
	if err := s2.RequestControl(); err == nil {
		t.Fatal("second host acquired held rights")
	}
	if err := s1.ReleaseControl(); err != nil {
		t.Fatal(err)
	}
	if err := s2.RequestControl(); err != nil {
		t.Fatalf("rights not released: %v", err)
	}
	// Re-request by the current holder is idempotent.
	if err := s2.RequestControl(); err != nil {
		t.Fatalf("re-request: %v", err)
	}
}

func TestTclBinding(t *testing.T) {
	tc := buildCluster(t)
	c := primary(t, tc)
	in := tclish.New(nil)
	c.Bind(in)

	script := `
set n [nodes]
if {[llength $n] != 2} { return "bad node count: $n" }
set tid [plug 1 cluster.echo 5 rate 25]
paramset 1 echo 5 rate 75
set rate [paramget 1 echo 5 rate]
quiesce all
enable all
unplug 1 $tid
systab 2 {9 pt.fake}
return "rate=$rate control=[control holding]"
`
	out, err := in.Eval(script)
	if err != nil && !strings.Contains(err.Error(), "return outside proc") {
		t.Fatal(err)
	}
	if out != "rate=75 control=1" {
		t.Fatalf("script result %q", out)
	}
	if r, ok := tc.nodes[2].Route(9); !ok || r != "pt.fake" {
		t.Fatal("systab not applied")
	}
}

func TestTclBindingErrors(t *testing.T) {
	tc := buildCluster(t)
	c := primary(t, tc)
	in := tclish.New(nil)
	c.Bind(in)
	for _, script := range []string{
		`status`,
		`status notanode`,
		`status 42`,
		`plug 1 cluster.echo`,
		`plug 1 no.such.module 0`,
		`unplug 1 notanumber`,
		`enable`,
		`systab 1 {1 a b}`,
		`paramget 1 echo 0 missing`,
		`paramset 1 echo 0 k`,
		`control frob`,
	} {
		if _, err := in.Eval(script); err == nil {
			t.Errorf("Eval(%q) succeeded", script)
		}
	}
}

func TestTraceRemotely(t *testing.T) {
	tc := buildCluster(t)
	c := primary(t, tc)
	if err := c.SetNodeTrace(1, true); err != nil {
		t.Fatal(err)
	}
	// Generate some traffic on node 1.
	if _, err := c.Status(1); err != nil {
		t.Fatal(err)
	}
	dump, err := c.TraceDump(1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dump, "dispatch") {
		t.Fatalf("dump %q", dump)
	}
	if err := c.ResetNodeTrace(1); err != nil {
		t.Fatal(err)
	}
	if err := c.SetNodeTrace(1, false); err != nil {
		t.Fatal(err)
	}
	// After reset+off, only the reset/off requests themselves may appear;
	// traffic while disabled must not.
	if _, err := c.Status(1); err != nil {
		t.Fatal(err)
	}
	dump2, err := c.TraceDump(1)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(dump2, "ExecStatusGet") {
		t.Fatalf("disabled tracer recorded traffic:\n%s", dump2)
	}
}

func TestTraceTclCommand(t *testing.T) {
	tc := buildCluster(t)
	c := primary(t, tc)
	in := tclish.New(nil)
	c.Bind(in)
	if _, err := in.Eval(`trace 1 on; status 1`); err != nil {
		t.Fatal(err)
	}
	out, err := in.Eval(`trace 1 dump`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "dispatch") {
		t.Fatalf("tcl dump %q", out)
	}
	if _, err := in.Eval(`trace 1 reset; trace 1 off`); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Eval(`trace 1 frob`); err == nil {
		t.Fatal("bad trace action accepted")
	}
	if _, err := in.Eval(`trace 77 on`); err == nil {
		t.Fatal("trace on unknown node accepted")
	}
}

func TestRoleString(t *testing.T) {
	if Primary.String() == Secondary.String() {
		t.Fatal("role strings")
	}
}

func TestMetricsRemotely(t *testing.T) {
	tc := buildCluster(t)
	c := primary(t, tc)

	// Generate traffic on node 1 so its counters move.
	if _, err := c.Status(1); err != nil {
		t.Fatal(err)
	}
	params, err := c.Metrics(1, "")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range params {
		if p.Key == "exec.dispatched" {
			found = true
			if n, ok := p.Value.(uint64); !ok || n == 0 {
				t.Fatalf("exec.dispatched = %v (%T), want nonzero uint64", p.Value, p.Value)
			}
		}
	}
	if !found {
		t.Fatalf("exec.dispatched missing from %d params", len(params))
	}

	// Prefix filter restricts, and the tclish command renders the list.
	in := tclish.New(nil)
	c.Bind(in)
	out, err := in.Eval("metrics 1 exec.dispatched")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "exec.dispatched ") {
		t.Fatalf("tclish metrics output %q", out)
	}
	if strings.Contains(out, "pool.") {
		t.Fatalf("prefix filter leaked: %q", out)
	}
}

func TestHealthRemotely(t *testing.T) {
	tc := buildCluster(t)
	c := primary(t, tc)

	// Node 1 runs no monitor: the query must still answer.
	params, err := c.Health(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(params) != 1 || params[0].Key != "monitor" || params[0].Value != "off" {
		t.Fatalf("monitor-less node answered %v", params)
	}

	// Give node 2 a monitor and wait for its first probe verdicts.
	mon := health.New(tc.nodes[2], health.Config{
		Interval: 20 * time.Millisecond, Threshold: 2,
	})
	defer mon.Close()
	deadline := time.Now().Add(2 * time.Second)
	var report []i2o.Param
	for time.Now().Before(deadline) {
		report, err = c.Health(2)
		if err != nil {
			t.Fatal(err)
		}
		if len(report) > 3 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	keys := make(map[string]any, len(report))
	for _, p := range report {
		keys[p.Key] = p.Value
	}
	if keys["monitor"] != "on" {
		t.Fatalf("monitor state in %v", report)
	}
	// Node 2 routes to 1 and 100; both should appear with a state row.
	for _, want := range []string{"peer.1.state", "peer.100.state"} {
		if _, ok := keys[want]; !ok {
			t.Fatalf("%s missing from %v", want, report)
		}
	}

	// The tclish command renders the same view.
	in := tclish.New(nil)
	c.Bind(in)
	out, err := in.Eval("health 2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "monitor on") {
		t.Fatalf("tclish health output %q", out)
	}
}
