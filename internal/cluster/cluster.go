// Package cluster implements the host side of the paper's operational
// model (§3.5): "In a distributed I2O environment in which IOPs do not
// reside on the same bus segment, a primary host controls all processing
// nodes.  Secondary hosts may register and subsequently apply for control
// rights."
//
// A Controller runs on a host's own executive (hosts are IOPs too) and
// drives the processing nodes entirely through I2O executive messages:
// status, parameter get/set, module plug/unplug, enable/quiesce, system
// table installation.  The primary controller owns the control-rights
// token; secondary controllers register with it and must acquire the
// rights before issuing mutating commands.  Package tclish scripts bind to
// a controller through Bind, giving the Tcl-style configuration channel
// the paper describes.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"xdaq/internal/device"
	"xdaq/internal/executive"
	"xdaq/internal/i2o"
)

// HostClass is the device class name of the controller's device module.
const HostClass = "host"

// Private function codes of the host device class.
const (
	// XFuncRegister announces a secondary host to the primary.
	XFuncRegister uint16 = 1

	// XFuncRequestControl asks the primary for the control rights.
	XFuncRequestControl uint16 = 2

	// XFuncReleaseControl returns the control rights.
	XFuncReleaseControl uint16 = 3
)

// Role distinguishes the primary host from secondaries.
type Role int

const (
	// Primary owns the cluster and the control-rights token.
	Primary Role = iota

	// Secondary must register with the primary and acquire control
	// rights before mutating the cluster.
	Secondary
)

func (r Role) String() string {
	if r == Primary {
		return "primary"
	}
	return "secondary"
}

// Errors.
var (
	// ErrNoControl reports a mutating command without control rights.
	ErrNoControl = errors.New("cluster: control rights not held")

	// ErrControlBusy reports a control request while another host holds
	// the rights.
	ErrControlBusy = errors.New("cluster: control rights held elsewhere")

	// ErrUnknownNode reports a command for an unregistered node.
	ErrUnknownNode = errors.New("cluster: unknown node")
)

// Controller drives a set of processing nodes.
type Controller struct {
	exec *executive.Executive
	dev  *device.Device
	role Role

	mu    sync.Mutex
	nodes map[i2o.NodeID]string // node -> name

	// Primary: the current rights holder (TIDNone when free; the
	// primary's own commands always pass).  Holders are identified by the
	// local (return-proxy) TiD their requests arrive from.
	holder i2o.TID

	// Secondary: proxy TiD of the primary's host device, and whether we
	// currently hold the rights.
	primary  i2o.TID
	haveCtrl bool
}

// NewPrimary creates the primary controller on the given (host) executive.
func NewPrimary(exec *executive.Executive) (*Controller, error) {
	c := &Controller{
		exec:  exec,
		role:  Primary,
		nodes: make(map[i2o.NodeID]string),
	}
	c.dev = device.New(HostClass, 0)
	c.dev.Bind(XFuncRegister, c.handleRegister)
	c.dev.Bind(XFuncRequestControl, c.handleRequestControl)
	c.dev.Bind(XFuncReleaseControl, c.handleReleaseControl)
	if _, err := exec.Plug(c.dev); err != nil {
		return nil, err
	}
	return c, nil
}

// NewSecondary creates a secondary controller and registers it with the
// primary host on primaryNode (a route to that node must exist).
func NewSecondary(exec *executive.Executive, primaryNode i2o.NodeID) (*Controller, error) {
	c := &Controller{
		exec:  exec,
		role:  Secondary,
		nodes: make(map[i2o.NodeID]string),
	}
	c.dev = device.New(HostClass, int(exec.Node()))
	if _, err := exec.Plug(c.dev); err != nil {
		return nil, err
	}
	primary, err := exec.Discover(primaryNode, HostClass, 0)
	if err != nil {
		return nil, fmt.Errorf("cluster: discover primary host: %w", err)
	}
	c.primary = primary
	rep, err := exec.Request(&i2o.Message{
		Priority: i2o.PriorityHigh, Target: primary, Initiator: c.dev.TID(),
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: XFuncRegister,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: register with primary: %w", err)
	}
	rep.Release()
	return c, nil
}

// Role returns the controller's role.
func (c *Controller) Role() Role { return c.role }

// handleRegister records a secondary host.
func (c *Controller) handleRegister(ctx *device.Context, m *i2o.Message) error {
	ctx.Host.Logf("cluster: secondary host registered via %v", m.Initiator)
	return device.ReplyIfExpected(ctx, m, nil)
}

func (c *Controller) handleRequestControl(ctx *device.Context, m *i2o.Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.holder != i2o.TIDNone && c.holder != m.Initiator {
		return ErrControlBusy
	}
	c.holder = m.Initiator
	return device.ReplyIfExpected(ctx, m, nil)
}

func (c *Controller) handleReleaseControl(ctx *device.Context, m *i2o.Message) error {
	c.mu.Lock()
	if c.holder == m.Initiator {
		c.holder = i2o.TIDNone
	}
	c.mu.Unlock()
	return device.ReplyIfExpected(ctx, m, nil)
}

// RequestControl acquires the control rights from the primary (no-op for
// the primary itself).
func (c *Controller) RequestControl() error {
	if c.role == Primary {
		return nil
	}
	rep, err := c.exec.Request(&i2o.Message{
		Priority: i2o.PriorityHigh, Target: c.primary, Initiator: c.dev.TID(),
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: XFuncRequestControl,
	})
	if err != nil {
		return err
	}
	rep.Release()
	c.mu.Lock()
	c.haveCtrl = true
	c.mu.Unlock()
	return nil
}

// ReleaseControl returns the control rights.
func (c *Controller) ReleaseControl() error {
	if c.role == Primary {
		return nil
	}
	rep, err := c.exec.Request(&i2o.Message{
		Priority: i2o.PriorityHigh, Target: c.primary, Initiator: c.dev.TID(),
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: XFuncReleaseControl,
	})
	if err != nil {
		return err
	}
	rep.Release()
	c.mu.Lock()
	c.haveCtrl = false
	c.mu.Unlock()
	return nil
}

// HoldsControl reports whether mutating commands may be issued.
func (c *Controller) HoldsControl() bool {
	if c.role == Primary {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.haveCtrl
}

func (c *Controller) ensureControl() error {
	if !c.HoldsControl() {
		return ErrNoControl
	}
	return nil
}

// AddNode registers a processing node under a human-readable name.  A
// route to the node must already be configured on the controller's
// executive.
func (c *Controller) AddNode(node i2o.NodeID, name string) error {
	if _, ok := c.exec.Route(node); !ok {
		return fmt.Errorf("%w: no route to %v", ErrUnknownNode, node)
	}
	c.mu.Lock()
	c.nodes[node] = name
	c.mu.Unlock()
	return nil
}

// Nodes returns the registered node ids, sorted.
func (c *Controller) Nodes() []i2o.NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]i2o.NodeID, 0, len(c.nodes))
	for n := range c.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NodeName returns the registered name of a node.
func (c *Controller) NodeName(node i2o.NodeID) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	name, ok := c.nodes[node]
	return name, ok
}

// execRequest sends one executive message to a node and returns the reply.
func (c *Controller) execRequest(node i2o.NodeID, fn i2o.Function, payload []byte) (*i2o.Message, error) {
	c.mu.Lock()
	_, known := c.nodes[node]
	c.mu.Unlock()
	if !known {
		return nil, fmt.Errorf("%w: %v", ErrUnknownNode, node)
	}
	target, err := c.exec.ExecProxy(node)
	if err != nil {
		return nil, err
	}
	return c.exec.Request(&i2o.Message{
		Priority: i2o.PriorityHigh, Target: target, Initiator: c.dev.TID(),
		Function: fn, Payload: payload,
	})
}

// Status reads a node's executive status block.
func (c *Controller) Status(node i2o.NodeID) ([]i2o.Param, error) {
	rep, err := c.execRequest(node, i2o.ExecStatusGet, nil)
	if err != nil {
		return nil, err
	}
	defer rep.Release()
	return i2o.DecodeParams(rep.Payload)
}

// Resources reads a node's hardware resource table.
func (c *Controller) Resources(node i2o.NodeID) ([]i2o.Param, error) {
	rep, err := c.execRequest(node, i2o.ExecHrtGet, nil)
	if err != nil {
		return nil, err
	}
	defer rep.Release()
	return i2o.DecodeParams(rep.Payload)
}

// Plug instantiates a registered module on a node and returns its TiD.
func (c *Controller) Plug(node i2o.NodeID, module string, instance int, extra []i2o.Param) (i2o.TID, error) {
	if err := c.ensureControl(); err != nil {
		return i2o.TIDNone, err
	}
	params := append([]i2o.Param{
		{Key: "module", Value: module},
		{Key: "instance", Value: int64(instance)},
	}, extra...)
	payload, err := i2o.EncodeParams(params)
	if err != nil {
		return i2o.TIDNone, err
	}
	rep, err := c.execRequest(node, i2o.ExecPlugin, payload)
	if err != nil {
		return i2o.TIDNone, err
	}
	defer rep.Release()
	out, err := i2o.DecodeParams(rep.Payload)
	if err != nil {
		return i2o.TIDNone, err
	}
	for _, p := range out {
		if p.Key == "tid" {
			if n, ok := p.Value.(int64); ok {
				return i2o.TID(n), nil
			}
		}
	}
	return i2o.TIDNone, fmt.Errorf("cluster: plug reply without tid")
}

// Unplug removes a device module from a node.
func (c *Controller) Unplug(node i2o.NodeID, id i2o.TID) error {
	if err := c.ensureControl(); err != nil {
		return err
	}
	payload, err := i2o.EncodeParams([]i2o.Param{{Key: "tid", Value: int64(id)}})
	if err != nil {
		return err
	}
	rep, err := c.execRequest(node, i2o.ExecUnplug, payload)
	if err != nil {
		return err
	}
	rep.Release()
	return nil
}

// setState sends an IOP-level state transition to one node.
func (c *Controller) setState(node i2o.NodeID, fn i2o.Function) error {
	if err := c.ensureControl(); err != nil {
		return err
	}
	rep, err := c.execRequest(node, fn, nil)
	if err != nil {
		return err
	}
	rep.Release()
	return nil
}

// Enable moves a node to OPERATIONAL.
func (c *Controller) Enable(node i2o.NodeID) error { return c.setState(node, i2o.ExecSysEnable) }

// Quiesce moves a node to READY.
func (c *Controller) Quiesce(node i2o.NodeID) error { return c.setState(node, i2o.ExecSysQuiesce) }

// Clear resets a node's statistics.
func (c *Controller) Clear(node i2o.NodeID) error { return c.setState(node, i2o.ExecSysClear) }

// EnableAll enables every registered node.
func (c *Controller) EnableAll() error {
	for _, n := range c.Nodes() {
		if err := c.Enable(n); err != nil {
			return fmt.Errorf("cluster: enable %v: %w", n, err)
		}
	}
	return nil
}

// QuiesceAll quiesces every registered node.
func (c *Controller) QuiesceAll() error {
	for _, n := range c.Nodes() {
		if err := c.Quiesce(n); err != nil {
			return fmt.Errorf("cluster: quiesce %v: %w", n, err)
		}
	}
	return nil
}

// SetSystemTable installs routes on a node: peer node id -> transport
// route name, so processing nodes can talk to each other directly.
func (c *Controller) SetSystemTable(node i2o.NodeID, routes map[i2o.NodeID]string) error {
	if err := c.ensureControl(); err != nil {
		return err
	}
	params := make([]i2o.Param, 0, len(routes))
	for n, route := range routes {
		params = append(params, i2o.Param{Key: fmt.Sprintf("%d", n), Value: route})
	}
	i2o.SortParams(params)
	payload, err := i2o.EncodeParams(params)
	if err != nil {
		return err
	}
	rep, err := c.execRequest(node, i2o.ExecSysTabSet, payload)
	if err != nil {
		return err
	}
	rep.Release()
	return nil
}

// deviceRequest sends a utility message to a device on a node, resolving
// (class, instance) through the remote HRT.
func (c *Controller) deviceRequest(node i2o.NodeID, class string, instance int, fn i2o.Function, payload []byte) (*i2o.Message, error) {
	c.mu.Lock()
	_, known := c.nodes[node]
	c.mu.Unlock()
	if !known {
		return nil, fmt.Errorf("%w: %v", ErrUnknownNode, node)
	}
	target, err := c.exec.Discover(node, class, instance)
	if err != nil {
		return nil, err
	}
	return c.exec.Request(&i2o.Message{
		Priority: i2o.PriorityHigh, Target: target, Initiator: c.dev.TID(),
		Function: fn, Payload: payload,
	})
}

// trace sends one ExecTraceGet with the given control parameters (nil for
// a pure read) and returns the ring dump.  The handler only applies keys
// present in the request, so a read never toggles recording.
func (c *Controller) trace(node i2o.NodeID, controls []i2o.Param) (string, error) {
	var payload []byte
	if len(controls) > 0 {
		var err error
		payload, err = i2o.EncodeParams(controls)
		if err != nil {
			return "", err
		}
	}
	rep, err := c.execRequest(node, i2o.ExecTraceGet, payload)
	if err != nil {
		return "", err
	}
	defer rep.Release()
	params, err := i2o.DecodeParams(rep.Payload)
	if err != nil {
		return "", err
	}
	for _, p := range params {
		if p.Key == "dump" {
			if s, ok := p.Value.(string); ok {
				return s, nil
			}
		}
	}
	return "", fmt.Errorf("cluster: trace reply without dump")
}

// SetNodeTrace switches a node's frame tracer on or off.
func (c *Controller) SetNodeTrace(node i2o.NodeID, on bool) error {
	_, err := c.trace(node, []i2o.Param{{Key: "enable", Value: on}})
	return err
}

// ResetNodeTrace clears a node's trace ring.
func (c *Controller) ResetNodeTrace(node i2o.NodeID) error {
	_, err := c.trace(node, []i2o.Param{{Key: "reset", Value: true}})
	return err
}

// TraceDump reads a node's trace ring without changing its state.
func (c *Controller) TraceDump(node i2o.NodeID) (string, error) {
	return c.trace(node, nil)
}

// Metrics scrapes a node's metrics registry over ordinary I2O frames.
// An empty prefix returns everything; otherwise only metrics whose name
// starts with prefix.  The reply is the flattened form (counters and
// gauges as scalars, histograms expanded to .count/.sum.ns/.p50.ns/
// .p99.ns rows), identical to what a local metrics.Flatten would see.
func (c *Controller) Metrics(node i2o.NodeID, prefix string) ([]i2o.Param, error) {
	var payload []byte
	if prefix != "" {
		var err error
		payload, err = i2o.EncodeParams([]i2o.Param{{Key: "prefix", Value: prefix}})
		if err != nil {
			return nil, err
		}
	}
	rep, err := c.execRequest(node, i2o.ExecMetricsGet, payload)
	if err != nil {
		return nil, err
	}
	defer rep.Release()
	return i2o.DecodeParams(rep.Payload)
}

// Health queries a node's peer health monitor over ordinary I2O frames.
// Nodes without a running monitor answer a single monitor=off row; nodes
// with one report per-peer state, consecutive failures, current route and
// failover status (see the health package).
func (c *Controller) Health(node i2o.NodeID) ([]i2o.Param, error) {
	rep, err := c.execRequest(node, i2o.ExecHealthGet, nil)
	if err != nil {
		return nil, err
	}
	defer rep.Release()
	return i2o.DecodeParams(rep.Payload)
}

// Policy queries a node's control-plane autopilot: policy identity,
// tick progress and the decision log, or a single "autopilot=off" row
// when the node runs without one.
func (c *Controller) Policy(node i2o.NodeID) ([]i2o.Param, error) {
	rep, err := c.execRequest(node, i2o.ExecPolicyGet, nil)
	if err != nil {
		return nil, err
	}
	defer rep.Release()
	return i2o.DecodeParams(rep.Payload)
}

// GetParams reads parameters of a device on a node (all when keys empty).
func (c *Controller) GetParams(node i2o.NodeID, class string, instance int, keys []string) ([]i2o.Param, error) {
	payload, err := i2o.EncodeKeys(keys)
	if err != nil {
		return nil, err
	}
	rep, err := c.deviceRequest(node, class, instance, i2o.UtilParamsGet, payload)
	if err != nil {
		return nil, err
	}
	defer rep.Release()
	return i2o.DecodeParams(rep.Payload)
}

// SetParams writes parameters of a device on a node.
func (c *Controller) SetParams(node i2o.NodeID, class string, instance int, params []i2o.Param) error {
	if err := c.ensureControl(); err != nil {
		return err
	}
	payload, err := i2o.EncodeParams(params)
	if err != nil {
		return err
	}
	rep, err := c.deviceRequest(node, class, instance, i2o.UtilParamsSet, payload)
	if err != nil {
		return err
	}
	rep.Release()
	return nil
}
