package cluster

import (
	"context"
	"testing"
	"time"

	"xdaq/internal/device"
	"xdaq/internal/executive"
	"xdaq/internal/i2o"
	"xdaq/internal/pta"
	"xdaq/internal/transport/loopback"
)

// memberNode is one in-process cluster member: executive + loopback
// endpoint + membership manager.  Routes are NOT pre-wired; the
// membership Wire callback installs them, like a real deployment.
type memberNode struct {
	exec  *executive.Executive
	agent *pta.Agent
	ms    *Membership
}

func buildMember(t *testing.T, fabric *loopback.Fabric, id i2o.NodeID) *memberNode {
	t.Helper()
	e := executive.New(executive.Options{
		Name: "m", Node: id,
		RequestTimeout: 2 * time.Second,
		Logf:           func(string, ...any) {},
	})
	agent, err := pta.New(e)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := fabric.Attach(id)
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.Register(ep, pta.Task); err != nil {
		t.Fatal(err)
	}
	n := &memberNode{exec: e, agent: agent}
	t.Cleanup(func() {
		agent.Close()
		e.Close()
	})
	return n
}

// startMembership installs a manager whose Wire callback routes members
// over the loopback fabric.
func startMembership(t *testing.T, n *memberNode, name string) *Membership {
	t.Helper()
	ms, err := NewMembership(MembershipConfig{
		Exec: n.exec,
		Self: Member{Name: name},
		Wire: func(Member) (string, error) { return loopback.DefaultName, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	n.ms = ms
	t.Cleanup(ms.Close)
	return ms
}

func plugEchoDevice(t *testing.T, e *executive.Executive) i2o.TID {
	t.Helper()
	d := device.New("echo", 0)
	d.Bind(1, func(ctx *device.Context, m *i2o.Message) error {
		return device.ReplyIfExpected(ctx, m, append([]byte(nil), m.Payload...))
	})
	id, err := e.Plug(d)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func waitMembers(t *testing.T, ms *Membership, want int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := ms.WaitReady(ctx, want); err != nil {
		t.Fatalf("membership never reached %d members: %v (have %v)", want, err, ms.Members())
	}
}

// TestJoinPropagates checks the full bootstrap flow: B joins via seed A,
// then C joins via seed A; every member converges on all three, including
// B and C learning about each other only through A's pushes.
func TestJoinPropagates(t *testing.T) {
	fabric := loopback.NewFabric()
	a := buildMember(t, fabric, 1)
	b := buildMember(t, fabric, 2)
	c := buildMember(t, fabric, 3)
	msA := startMembership(t, a, "a")
	msB := startMembership(t, b, "b")
	msC := startMembership(t, c, "c")

	// Joiners need a route to the seed before the first request (the
	// xdaq layer does this with tcp Identify).
	b.exec.SetRoute(1, loopback.DefaultName)
	c.exec.SetRoute(1, loopback.DefaultName)

	ctx := context.Background()
	if err := msB.Join(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := msC.Join(ctx, 1); err != nil {
		t.Fatal(err)
	}
	for _, ms := range []*Membership{msA, msB, msC} {
		waitMembers(t, ms, 3)
		got := ms.Members()
		if len(got) != 3 || got[0].Node != 1 || got[1].Node != 2 || got[2].Node != 3 {
			t.Fatalf("members = %+v", got)
		}
	}
	if msA.Epoch() < 3 {
		t.Fatalf("seed epoch %d, want >= 3 after two joins", msA.Epoch())
	}
}

// TestTiDExchange verifies the join reply carries exported devices and
// that the joiner can call them through the auto-created proxies with no
// Discover round trip.
func TestTiDExchange(t *testing.T) {
	fabric := loopback.NewFabric()
	a := buildMember(t, fabric, 1)
	b := buildMember(t, fabric, 2)
	echoTID := plugEchoDevice(t, a.exec) // plugged before membership starts
	msA := startMembership(t, a, "a")
	msB := startMembership(t, b, "b")
	_ = msA

	b.exec.SetRoute(1, loopback.DefaultName)
	if err := msB.Join(context.Background(), 1); err != nil {
		t.Fatal(err)
	}

	// The seed's record in B's membership lists the echo device.
	m, ok := msB.Lookup(1)
	if !ok {
		t.Fatal("seed not in members")
	}
	found := false
	for _, d := range m.Devices {
		if d.Class == "echo" && d.Instance == 0 && d.TID == echoTID {
			found = true
		}
	}
	if !found {
		t.Fatalf("echo device not exported: %+v", m.Devices)
	}

	// Resolve works immediately — the proxy was created by the merge.
	proxy, err := b.exec.Resolve("echo", 0, 1)
	if err != nil {
		t.Fatalf("resolve after join: %v", err)
	}
	req, err := b.exec.AllocMessage(4)
	if err != nil {
		t.Fatal(err)
	}
	copy(req.Payload, "ping")
	req.Target = proxy
	req.Initiator = i2o.TIDExecutive
	req.Function = i2o.FuncPrivate
	req.Org = i2o.OrgXDAQ
	req.XFunction = 1
	rep, err := b.exec.Request(req)
	if err != nil {
		t.Fatal(err)
	}
	if string(rep.Payload) != "ping" {
		t.Fatalf("echo = %q", rep.Payload)
	}
	rep.Recycle()
}

// TestLeave checks the graceful departure: every member drops the leaver
// and marks it down; a rejoin re-admits it.
func TestLeave(t *testing.T) {
	fabric := loopback.NewFabric()
	a := buildMember(t, fabric, 1)
	b := buildMember(t, fabric, 2)
	c := buildMember(t, fabric, 3)
	msA := startMembership(t, a, "a")
	msB := startMembership(t, b, "b")
	msC := startMembership(t, c, "c")

	b.exec.SetRoute(1, loopback.DefaultName)
	c.exec.SetRoute(1, loopback.DefaultName)
	ctx := context.Background()
	if err := msB.Join(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := msC.Join(ctx, 1); err != nil {
		t.Fatal(err)
	}
	waitMembers(t, msA, 3)
	waitMembers(t, msB, 3)
	waitMembers(t, msC, 3)

	if err := msC.Leave(ctx); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if len(msA.Members()) == 2 && len(msB.Members()) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("leave did not propagate: a=%v b=%v", msA.Members(), msB.Members())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !a.exec.PeerDown(3) {
		t.Fatal("left peer not marked down on a")
	}
	if got := len(msC.Members()); got != 1 {
		t.Fatalf("leaver still sees %d members", got)
	}

	// Rejoin through B this time (any member is a rendezvous).
	c.exec.SetRoute(2, loopback.DefaultName)
	if err := msC.Join(ctx, 2); err != nil {
		t.Fatal(err)
	}
	waitMembers(t, msA, 3)
	waitMembers(t, msB, 3)
	waitMembers(t, msC, 3)
	if a.exec.PeerDown(3) {
		t.Fatal("rejoined peer still marked down on a")
	}
}

// TestEvictAndRevive drives the health-integration surface directly.
func TestEvictAndRevive(t *testing.T) {
	fabric := loopback.NewFabric()
	a := buildMember(t, fabric, 1)
	b := buildMember(t, fabric, 2)
	msA := startMembership(t, a, "a")
	msB := startMembership(t, b, "b")
	_ = msB

	b.exec.SetRoute(1, loopback.DefaultName)
	if err := msB.Join(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	waitMembers(t, msA, 2)

	msA.Evict(2)
	if got := len(msA.Members()); got != 1 {
		t.Fatalf("after evict: %d members", got)
	}
	if !a.exec.PeerDown(2) {
		t.Fatal("evicted peer not marked down")
	}

	msA.Revive(2)
	if got := len(msA.Members()); got != 2 {
		t.Fatalf("after revive: %d members", got)
	}
	m, _ := msA.Lookup(2)
	if m.Name != "b" {
		t.Fatalf("revived record lost: %+v", m)
	}
}

// TestJoinWithoutManagerFails checks a joiner dialing a non-cluster node
// gets a clean failure, not a timeout.
func TestJoinWithoutManagerFails(t *testing.T) {
	fabric := loopback.NewFabric()
	a := buildMember(t, fabric, 1) // no membership manager
	b := buildMember(t, fabric, 2)
	msB := startMembership(t, b, "b")
	_ = a

	b.exec.SetRoute(1, loopback.DefaultName)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := msB.Join(ctx, 1); err == nil {
		t.Fatal("join against bare node succeeded")
	}
}

// TestMemberListRoundTrip exercises the wire codec with dotted classes
// and multiple members.
func TestMemberListRoundTrip(t *testing.T) {
	in := []Member{
		{Node: 1, Name: "a", Addr: "127.0.0.1:9001", Shm: "/dev/shm/x", Devices: []DeviceExport{
			{Class: "daq.evm", Instance: 0, TID: 5},
			{Class: "echo", Instance: 2, TID: 9},
		}},
		{Node: 7, Name: "b", Devices: nil},
	}
	params := encodeMemberList(42, in)
	payload, err := i2o.EncodeParams(params)
	if err != nil {
		t.Fatal(err)
	}
	epoch, out, err := decodeMemberList(payload)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 42 {
		t.Fatalf("epoch = %d", epoch)
	}
	if len(out) != 2 || out[0].Node != 1 || out[1].Node != 7 {
		t.Fatalf("members = %+v", out)
	}
	if out[0].Addr != in[0].Addr || out[0].Shm != in[0].Shm || out[0].Name != "a" {
		t.Fatalf("member 1 = %+v", out[0])
	}
	if len(out[0].Devices) != 2 || out[0].Devices[0].Class != "daq.evm" || out[0].Devices[1].TID != 9 {
		t.Fatalf("devices = %+v", out[0].Devices)
	}
}
