package cluster

import (
	"fmt"
	"strconv"

	"xdaq/internal/i2o"
	"xdaq/internal/tclish"
)

// Bind registers the cluster control commands on a tclish interpreter,
// turning it into the configuration channel of §4 ("Configuration and
// control of the executive is done through I2O executive messages.  They
// are sent from a Tcl script that resides on the primary host to all
// executives in the distributed system").
//
// Commands:
//
//	nodes                                   -> list of node ids
//	status <node>                           -> {key value ...}
//	resources <node>                        -> {class#inst tid ...}
//	plug <node> <module> <inst> ?k v?...    -> tid
//	unplug <node> <tid>
//	enable <node>|all
//	quiesce <node>|all
//	clear <node>
//	systab <node> {peer route ...}
//	paramget <node> <class> <inst> ?key?    -> value or {key value ...}
//	paramset <node> <class> <inst> <k> <v>
//	trace <node> on|off|dump|reset
//	metrics <node> ?prefix?                 -> {name value ...}
//	health <node>                           -> {key value ...}
//	policy <node>                           -> {key value ...}
//	control request|release|holding
func (c *Controller) Bind(in *tclish.Interp) {
	in.Register("nodes", func(in *tclish.Interp, args []string) (string, error) {
		ids := c.Nodes()
		out := make([]string, len(ids))
		for i, id := range ids {
			out[i] = strconv.FormatUint(uint64(id), 10)
		}
		return tclish.JoinList(out), nil
	})

	in.Register("status", func(in *tclish.Interp, args []string) (string, error) {
		node, err := nodeArg(args, 1)
		if err != nil {
			return "", err
		}
		params, err := c.Status(node)
		if err != nil {
			return "", err
		}
		return paramsToList(params), nil
	})

	in.Register("resources", func(in *tclish.Interp, args []string) (string, error) {
		node, err := nodeArg(args, 1)
		if err != nil {
			return "", err
		}
		params, err := c.Resources(node)
		if err != nil {
			return "", err
		}
		return paramsToList(params), nil
	})

	in.Register("plug", func(in *tclish.Interp, args []string) (string, error) {
		if len(args) < 4 || len(args)%2 != 0 {
			return "", fmt.Errorf("tclish: usage: plug <node> <module> <instance> ?key value?...")
		}
		node, err := nodeArg(args, 1)
		if err != nil {
			return "", err
		}
		instance, err := strconv.Atoi(args[3])
		if err != nil {
			return "", fmt.Errorf("tclish: plug: bad instance %q", args[3])
		}
		var extra []i2o.Param
		for i := 4; i+1 < len(args); i += 2 {
			extra = append(extra, i2o.Param{Key: args[i], Value: coerce(args[i+1])})
		}
		id, err := c.Plug(node, args[2], instance, extra)
		if err != nil {
			return "", err
		}
		return strconv.Itoa(int(id)), nil
	})

	in.Register("unplug", func(in *tclish.Interp, args []string) (string, error) {
		if len(args) != 3 {
			return "", fmt.Errorf("tclish: usage: unplug <node> <tid>")
		}
		node, err := nodeArg(args, 1)
		if err != nil {
			return "", err
		}
		id, err := strconv.Atoi(args[2])
		if err != nil {
			return "", fmt.Errorf("tclish: unplug: bad tid %q", args[2])
		}
		return "", c.Unplug(node, i2o.TID(id))
	})

	forAllOrOne := func(name string, op func(i2o.NodeID) error) tclish.Command {
		return func(in *tclish.Interp, args []string) (string, error) {
			if len(args) != 2 {
				return "", fmt.Errorf("tclish: usage: %s <node>|all", name)
			}
			if args[1] == "all" {
				for _, n := range c.Nodes() {
					if err := op(n); err != nil {
						return "", err
					}
				}
				return "", nil
			}
			node, err := nodeArg(args, 1)
			if err != nil {
				return "", err
			}
			return "", op(node)
		}
	}
	in.Register("enable", forAllOrOne("enable", c.Enable))
	in.Register("quiesce", forAllOrOne("quiesce", c.Quiesce))
	in.Register("clear", forAllOrOne("clear", c.Clear))

	in.Register("systab", func(in *tclish.Interp, args []string) (string, error) {
		if len(args) != 3 {
			return "", fmt.Errorf("tclish: usage: systab <node> {peer route ...}")
		}
		node, err := nodeArg(args, 1)
		if err != nil {
			return "", err
		}
		elems, err := tclish.SplitList(args[2])
		if err != nil {
			return "", err
		}
		if len(elems)%2 != 0 {
			return "", fmt.Errorf("tclish: systab: odd route list")
		}
		routes := make(map[i2o.NodeID]string, len(elems)/2)
		for i := 0; i < len(elems); i += 2 {
			peer, err := strconv.ParseUint(elems[i], 10, 32)
			if err != nil {
				return "", fmt.Errorf("tclish: systab: bad node %q", elems[i])
			}
			routes[i2o.NodeID(peer)] = elems[i+1]
		}
		return "", c.SetSystemTable(node, routes)
	})

	in.Register("paramget", func(in *tclish.Interp, args []string) (string, error) {
		if len(args) != 4 && len(args) != 5 {
			return "", fmt.Errorf("tclish: usage: paramget <node> <class> <instance> ?key?")
		}
		node, err := nodeArg(args, 1)
		if err != nil {
			return "", err
		}
		instance, err := strconv.Atoi(args[3])
		if err != nil {
			return "", fmt.Errorf("tclish: paramget: bad instance %q", args[3])
		}
		var keys []string
		if len(args) == 5 {
			keys = []string{args[4]}
		}
		params, err := c.GetParams(node, args[2], instance, keys)
		if err != nil {
			return "", err
		}
		if len(keys) == 1 {
			if len(params) == 0 {
				return "", fmt.Errorf("tclish: paramget: no parameter %q", keys[0])
			}
			return fmt.Sprint(params[0].Value), nil
		}
		return paramsToList(params), nil
	})

	in.Register("paramset", func(in *tclish.Interp, args []string) (string, error) {
		if len(args) != 6 {
			return "", fmt.Errorf("tclish: usage: paramset <node> <class> <instance> <key> <value>")
		}
		node, err := nodeArg(args, 1)
		if err != nil {
			return "", err
		}
		instance, err := strconv.Atoi(args[3])
		if err != nil {
			return "", fmt.Errorf("tclish: paramset: bad instance %q", args[3])
		}
		return "", c.SetParams(node, args[2], instance, []i2o.Param{{Key: args[4], Value: coerce(args[5])}})
	})

	in.Register("trace", func(in *tclish.Interp, args []string) (string, error) {
		if len(args) != 3 {
			return "", fmt.Errorf("tclish: usage: trace <node> on|off|dump|reset")
		}
		node, err := nodeArg(args, 1)
		if err != nil {
			return "", err
		}
		switch args[2] {
		case "on":
			return "", c.SetNodeTrace(node, true)
		case "off":
			return "", c.SetNodeTrace(node, false)
		case "reset":
			return "", c.ResetNodeTrace(node)
		case "dump":
			return c.TraceDump(node)
		default:
			return "", fmt.Errorf("tclish: trace: unknown action %q", args[2])
		}
	})

	in.Register("metrics", func(in *tclish.Interp, args []string) (string, error) {
		if len(args) != 2 && len(args) != 3 {
			return "", fmt.Errorf("tclish: usage: metrics <node> ?prefix?")
		}
		node, err := nodeArg(args, 1)
		if err != nil {
			return "", err
		}
		prefix := ""
		if len(args) == 3 {
			prefix = args[2]
		}
		params, err := c.Metrics(node, prefix)
		if err != nil {
			return "", err
		}
		return paramsToList(params), nil
	})

	in.Register("health", func(in *tclish.Interp, args []string) (string, error) {
		if len(args) != 2 {
			return "", fmt.Errorf("tclish: usage: health <node>")
		}
		node, err := nodeArg(args, 1)
		if err != nil {
			return "", err
		}
		params, err := c.Health(node)
		if err != nil {
			return "", err
		}
		return paramsToList(params), nil
	})

	in.Register("policy", func(in *tclish.Interp, args []string) (string, error) {
		if len(args) != 2 {
			return "", fmt.Errorf("tclish: usage: policy <node>")
		}
		node, err := nodeArg(args, 1)
		if err != nil {
			return "", err
		}
		params, err := c.Policy(node)
		if err != nil {
			return "", err
		}
		return paramsToList(params), nil
	})

	in.Register("control", func(in *tclish.Interp, args []string) (string, error) {
		if len(args) != 2 {
			return "", fmt.Errorf("tclish: usage: control request|release|holding")
		}
		switch args[1] {
		case "request":
			return "", c.RequestControl()
		case "release":
			return "", c.ReleaseControl()
		case "holding":
			if c.HoldsControl() {
				return "1", nil
			}
			return "0", nil
		default:
			return "", fmt.Errorf("tclish: control: unknown action %q", args[1])
		}
	})
}

func nodeArg(args []string, idx int) (i2o.NodeID, error) {
	if idx >= len(args) {
		return 0, fmt.Errorf("tclish: %s: missing node argument", args[0])
	}
	n, err := strconv.ParseUint(args[idx], 10, 32)
	if err != nil {
		return 0, fmt.Errorf("tclish: %s: bad node %q", args[0], args[idx])
	}
	return i2o.NodeID(n), nil
}

// coerce turns a Tcl word into the most specific parameter type.
func coerce(s string) any {
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	switch s {
	case "true", "yes":
		return true
	case "false", "no":
		return false
	}
	return s
}

func paramsToList(params []i2o.Param) string {
	elems := make([]string, 0, 2*len(params))
	for _, p := range params {
		elems = append(elems, p.Key, fmt.Sprint(p.Value))
	}
	return tclish.JoinList(elems)
}
