package i2o

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestParamsRoundTrip(t *testing.T) {
	in := []Param{
		{Key: "name", Value: "readout-unit"},
		{Key: "instance", Value: int64(-3)},
		{Key: "rate", Value: uint64(100000)},
		{Key: "threshold", Value: 0.25},
		{Key: "enabled", Value: true},
		{Key: "blob", Value: []byte{1, 2, 3, 0, 255}},
		{Key: "", Value: "empty key is legal"},
	}
	payload, err := EncodeParams(in)
	if err != nil {
		t.Fatalf("EncodeParams: %v", err)
	}
	out, err := DecodeParams(payload)
	if err != nil {
		t.Fatalf("DecodeParams: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %#v\nout: %#v", in, out)
	}
}

func TestParamsEmptyList(t *testing.T) {
	payload, err := EncodeParams(nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeParams(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("decoded %d params from empty list", len(out))
	}
}

func TestParamsRejectUnsupportedType(t *testing.T) {
	if _, err := EncodeParams([]Param{{Key: "x", Value: struct{}{}}}); err == nil {
		t.Fatal("EncodeParams accepted a struct value")
	}
	if _, err := EncodeParams([]Param{{Key: "x", Value: int32(1)}}); err == nil {
		t.Fatal("EncodeParams accepted int32; only int64 is supported")
	}
}

func TestParamsDecodeTruncation(t *testing.T) {
	payload, err := EncodeParams([]Param{{Key: "key", Value: "value"}})
	if err != nil {
		t.Fatal(err)
	}
	// Every strict prefix must fail cleanly, never panic.
	for i := 0; i < len(payload); i++ {
		if _, err := DecodeParams(payload[:i]); err == nil {
			t.Fatalf("prefix of %d bytes decoded successfully", i)
		}
	}
}

func TestParamsDecodeUnknownType(t *testing.T) {
	payload, err := EncodeParams([]Param{{Key: "k", Value: true}})
	if err != nil {
		t.Fatal(err)
	}
	payload[2+2+1] = 0xEE // overwrite the type tag after count+keylen+key
	if _, err := DecodeParams(payload); err == nil {
		t.Fatal("unknown type tag decoded successfully")
	}
}

func TestKeysRoundTrip(t *testing.T) {
	in := []string{"a", "b", "third"}
	payload, err := EncodeKeys(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeKeys(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("keys mismatch: %v", out)
	}
}

func TestSortParams(t *testing.T) {
	ps := []Param{{Key: "z"}, {Key: "a"}, {Key: "m"}}
	SortParams(ps)
	if ps[0].Key != "a" || ps[1].Key != "m" || ps[2].Key != "z" {
		t.Fatalf("SortParams: %v", ps)
	}
}

func randParam(r *rand.Rand) Param {
	key := make([]byte, r.Intn(12))
	for i := range key {
		key[i] = byte('a' + r.Intn(26))
	}
	p := Param{Key: string(key)}
	switch r.Intn(6) {
	case 0:
		p.Value = string(key) + "-value"
	case 1:
		p.Value = int64(r.Uint64())
	case 2:
		p.Value = r.Uint64()
	case 3:
		// NaN breaks DeepEqual; use a finite float.
		p.Value = math.Trunc(r.Float64()*1e6) / 1e3
	case 4:
		p.Value = r.Intn(2) == 0
	default:
		b := make([]byte, r.Intn(32))
		r.Read(b)
		p.Value = b
	}
	return p
}

func TestQuickParamsRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := make([]Param, r.Intn(8))
		for i := range in {
			in[i] = randParam(r)
		}
		payload, err := EncodeParams(in)
		if err != nil {
			return false
		}
		out, err := DecodeParams(payload)
		if err != nil {
			return false
		}
		if len(in) != len(out) {
			return false
		}
		for i := range in {
			if in[i].Key != out[i].Key {
				return false
			}
			if b, ok := in[i].Value.([]byte); ok {
				if !bytes.Equal(b, out[i].Value.([]byte)) {
					return false
				}
			} else if in[i].Value != out[i].Value {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDecodeParamsNeverPanics(t *testing.T) {
	f := func(junk []byte) bool {
		_, _ = DecodeParams(junk)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
