package i2o

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// ParamType tags the wire encoding of one parameter value.
type ParamType uint8

const (
	ParamString ParamType = iota + 1
	ParamInt
	ParamUint
	ParamFloat
	ParamBool
	ParamBytes
)

// Param is one device parameter: a named, typed value.  Device parameters
// are read and written with UtilParamsGet/UtilParamsSet frames; every device
// module exposes at least its standard operational parameters this way, so
// the whole cluster is configurable through one common scheme (§2, third
// requirement dimension).
type Param struct {
	Key   string
	Value any // string, int64, uint64, float64, bool or []byte
}

// Type returns the wire type tag for the parameter's value.
func (p Param) Type() (ParamType, error) {
	switch p.Value.(type) {
	case string:
		return ParamString, nil
	case int64:
		return ParamInt, nil
	case uint64:
		return ParamUint, nil
	case float64:
		return ParamFloat, nil
	case bool:
		return ParamBool, nil
	case []byte:
		return ParamBytes, nil
	default:
		return 0, fmt.Errorf("i2o: unsupported parameter type %T for %q", p.Value, p.Key)
	}
}

// EncodeParams renders a parameter list as a frame payload:
//
//	count (uint16), then per parameter:
//	key length (uint16), key bytes, type (byte), value.
//
// Strings and byte values carry a uint32 length prefix; numeric values are
// fixed-width little-endian; booleans are one byte.
func EncodeParams(params []Param) ([]byte, error) {
	if len(params) > math.MaxUint16 {
		return nil, fmt.Errorf("i2o: %d parameters exceed list limit", len(params))
	}
	buf := make([]byte, 2, 2+16*len(params))
	binary.LittleEndian.PutUint16(buf, uint16(len(params)))
	for _, p := range params {
		t, err := p.Type()
		if err != nil {
			return nil, err
		}
		if len(p.Key) > math.MaxUint16 {
			return nil, fmt.Errorf("i2o: parameter key %q too long", p.Key[:32])
		}
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(p.Key)))
		buf = append(buf, p.Key...)
		buf = append(buf, byte(t))
		switch v := p.Value.(type) {
		case string:
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v)))
			buf = append(buf, v...)
		case int64:
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
		case uint64:
			buf = binary.LittleEndian.AppendUint64(buf, v)
		case float64:
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		case bool:
			if v {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		case []byte:
			if len(v) > MaxPayload {
				return nil, fmt.Errorf("i2o: parameter %q value too long", p.Key)
			}
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v)))
			buf = append(buf, v...)
		}
	}
	return buf, nil
}

// DecodeParams parses a payload written by EncodeParams.
func DecodeParams(payload []byte) ([]Param, error) {
	if len(payload) < 2 {
		return nil, fmt.Errorf("%w: parameter list", ErrTruncated)
	}
	count := int(binary.LittleEndian.Uint16(payload))
	payload = payload[2:]
	params := make([]Param, 0, count)
	for i := 0; i < count; i++ {
		if len(payload) < 2 {
			return nil, fmt.Errorf("%w: parameter %d key length", ErrTruncated, i)
		}
		klen := int(binary.LittleEndian.Uint16(payload))
		payload = payload[2:]
		if len(payload) < klen+1 {
			return nil, fmt.Errorf("%w: parameter %d key", ErrTruncated, i)
		}
		key := string(payload[:klen])
		t := ParamType(payload[klen])
		payload = payload[klen+1:]

		var value any
		switch t {
		case ParamString, ParamBytes:
			if len(payload) < 4 {
				return nil, fmt.Errorf("%w: parameter %q length", ErrTruncated, key)
			}
			vlen := int(binary.LittleEndian.Uint32(payload))
			payload = payload[4:]
			if len(payload) < vlen {
				return nil, fmt.Errorf("%w: parameter %q value", ErrTruncated, key)
			}
			if t == ParamString {
				value = string(payload[:vlen])
			} else {
				value = append([]byte(nil), payload[:vlen]...)
			}
			payload = payload[vlen:]
		case ParamInt, ParamUint, ParamFloat:
			if len(payload) < 8 {
				return nil, fmt.Errorf("%w: parameter %q value", ErrTruncated, key)
			}
			u := binary.LittleEndian.Uint64(payload)
			payload = payload[8:]
			switch t {
			case ParamInt:
				value = int64(u)
			case ParamUint:
				value = u
			case ParamFloat:
				value = math.Float64frombits(u)
			}
		case ParamBool:
			if len(payload) < 1 {
				return nil, fmt.Errorf("%w: parameter %q value", ErrTruncated, key)
			}
			value = payload[0] != 0
			payload = payload[1:]
		default:
			return nil, fmt.Errorf("i2o: parameter %q has unknown type %d", key, t)
		}
		params = append(params, Param{Key: key, Value: value})
	}
	return params, nil
}

// EncodeKeys renders a UtilParamsGet request payload: the list of parameter
// keys being read.  An empty list requests all parameters.
func EncodeKeys(keys []string) ([]byte, error) {
	params := make([]Param, len(keys))
	for i, k := range keys {
		params[i] = Param{Key: k, Value: true}
	}
	return EncodeParams(params)
}

// DecodeKeys parses a UtilParamsGet request payload.
func DecodeKeys(payload []byte) ([]string, error) {
	params, err := DecodeParams(payload)
	if err != nil {
		return nil, err
	}
	keys := make([]string, len(params))
	for i, p := range params {
		keys[i] = p.Key
	}
	return keys, nil
}

// SortParams orders a parameter list by key, for deterministic encoding of
// map-derived lists.
func SortParams(params []Param) {
	sort.Slice(params, func(i, j int) bool { return params[i].Key < params[j].Key })
}
