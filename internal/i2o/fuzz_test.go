package i2o

import (
	"bytes"
	"testing"
)

// Fuzz targets complement the testing/quick properties: `go test` runs the
// seed corpus; `go test -fuzz=FuzzX` explores further.

func FuzzDecode(f *testing.F) {
	m := sampleMessage()
	buf := make([]byte, m.WireSize())
	if _, err := m.Encode(buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf)
	f.Add([]byte{})
	f.Add([]byte{Version, 0, 4, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, n, err := Decode(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		// Anything that decodes must re-encode to identical bytes.
		out := make([]byte, m.WireSize())
		k, err := m.Encode(out)
		if err != nil {
			t.Fatalf("re-encode of decoded frame: %v", err)
		}
		if k != n || !bytes.Equal(out[:k], data[:n]) {
			t.Fatalf("decode/encode not idempotent")
		}
	})
}

// FuzzDecodeAcquired drives the pooled decode path — the one the gm and tcp
// receive loops use — through the same idempotence property as FuzzDecode,
// and checks that the pooled and plain decoders always agree.  The seed
// corpus holds frames shaped like chaos-harness traffic: private-function
// request/reply storms, DAQ-style bulk bodies, ExecPing probes.
func FuzzDecodeAcquired(f *testing.F) {
	m := sampleMessage()
	buf := make([]byte, m.WireSize())
	if _, err := m.Encode(buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf)
	// Chaos-storm echo request: private frame, correlated, token payload.
	storm := &Message{
		Flags: FlagReplyExpected, Priority: PriorityNormal,
		Target: 0x021, Initiator: 0x111, Function: FuncPrivate,
		XFunction: 0x0101, Org: 0x049A, InitiatorContext: 0xBEEF,
		Payload: []byte("w03:000017:tok\x01\x02\x03"),
	}
	sb := make([]byte, storm.WireSize())
	if _, err := storm.Encode(sb); err != nil {
		f.Fatal(err)
	}
	f.Add(sb)
	// DAQ-style bulk reply with an unaligned body (exercises pad bits).
	bulk := &Message{
		Flags: FlagReply, Priority: PriorityLow,
		Target: 0x111, Initiator: 0x022, Function: FuncPrivate,
		XFunction: 0x0203, Org: 0x049A,
		Payload: bytes.Repeat([]byte{0xA5}, 1021),
	}
	bb := make([]byte, bulk.WireSize())
	if _, err := bulk.Encode(bb); err != nil {
		f.Fatal(err)
	}
	f.Add(bb)
	f.Add([]byte{})
	f.Add([]byte{Version, 0, 4, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, n, err := DecodeAcquired(data)
		plain, pn, perr := Decode(data)
		if (err == nil) != (perr == nil) {
			t.Fatalf("DecodeAcquired err=%v, Decode err=%v", err, perr)
		}
		if err != nil {
			return
		}
		if n != pn || m.String() != plain.String() {
			t.Fatalf("pooled decode disagrees with plain: %v/%d vs %v/%d", m, n, plain, pn)
		}
		out := make([]byte, m.WireSize())
		k, err := m.Encode(out)
		if err != nil {
			t.Fatalf("re-encode of decoded frame: %v", err)
		}
		if k != n || !bytes.Equal(out[:k], data[:n]) {
			t.Fatalf("decode/encode not idempotent")
		}
		m.Recycle()
	})
}

func FuzzDecodeParams(f *testing.F) {
	good, _ := EncodeParams([]Param{
		{Key: "s", Value: "x"}, {Key: "i", Value: int64(-1)},
		{Key: "u", Value: uint64(2)}, {Key: "f", Value: 1.5},
		{Key: "b", Value: true}, {Key: "raw", Value: []byte{1}},
	})
	f.Add(good)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		params, err := DecodeParams(data)
		if err != nil {
			return
		}
		// Decoded parameter lists must round-trip.
		out, err := EncodeParams(params)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		again, err := DecodeParams(out)
		if err != nil || len(again) != len(params) {
			t.Fatalf("round trip: %v (%d vs %d)", err, len(again), len(params))
		}
	})
}

func FuzzDecodeFail(f *testing.F) {
	f.Add((&FailRecord{Code: FailAborted, Detail: "x"}).EncodeFail())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeFail(data)
		if err != nil {
			return
		}
		got, err := DecodeFail(rec.EncodeFail())
		if err != nil || got.Code != rec.Code || got.Detail != rec.Detail {
			t.Fatalf("round trip: %v", err)
		}
	})
}
