package i2o

import (
	"bytes"
	"testing"
)

// Fuzz targets complement the testing/quick properties: `go test` runs the
// seed corpus; `go test -fuzz=FuzzX` explores further.

func FuzzDecode(f *testing.F) {
	m := sampleMessage()
	buf := make([]byte, m.WireSize())
	if _, err := m.Encode(buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf)
	f.Add([]byte{})
	f.Add([]byte{Version, 0, 4, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, n, err := Decode(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		// Anything that decodes must re-encode to identical bytes.
		out := make([]byte, m.WireSize())
		k, err := m.Encode(out)
		if err != nil {
			t.Fatalf("re-encode of decoded frame: %v", err)
		}
		if k != n || !bytes.Equal(out[:k], data[:n]) {
			t.Fatalf("decode/encode not idempotent")
		}
	})
}

func FuzzDecodeParams(f *testing.F) {
	good, _ := EncodeParams([]Param{
		{Key: "s", Value: "x"}, {Key: "i", Value: int64(-1)},
		{Key: "u", Value: uint64(2)}, {Key: "f", Value: 1.5},
		{Key: "b", Value: true}, {Key: "raw", Value: []byte{1}},
	})
	f.Add(good)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		params, err := DecodeParams(data)
		if err != nil {
			return
		}
		// Decoded parameter lists must round-trip.
		out, err := EncodeParams(params)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		again, err := DecodeParams(out)
		if err != nil || len(again) != len(params) {
			t.Fatalf("round trip: %v (%d vs %d)", err, len(again), len(params))
		}
	})
}

func FuzzDecodeFail(f *testing.F) {
	f.Add((&FailRecord{Code: FailAborted, Detail: "x"}).EncodeFail())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeFail(data)
		if err != nil {
			return
		}
		got, err := DecodeFail(rec.EncodeFail())
		if err != nil || got.Code != rec.Code || got.Detail != rec.Detail {
			t.Fatalf("round trip: %v", err)
		}
	})
}
