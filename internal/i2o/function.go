package i2o

import "fmt"

// Function is an I2O function code: the operation a message frame requests.
// Codes below 0x80 are utility class codes, 0x80-0xFE are executive and
// device class codes, and 0xFF marks a private frame whose operation is
// identified by the (OrgID, XFunction) pair in the private extension.
type Function uint8

// Utility function codes.  Every device module must implement the utility
// interface so that it can be configured and inspected uniformly (§3.3 of
// the paper: executive + utility + device interface make a DDM).
const (
	// UtilNOP does nothing; it is answered with an empty reply and is used
	// by transports and tests as a liveness check.
	UtilNOP Function = 0x00

	// UtilAbort asks a device to abandon the transaction named by the
	// frame's TransactionContext.
	UtilAbort Function = 0x01

	// UtilParamsSet writes device parameters.  The payload is an encoded
	// parameter list (see param.go).
	UtilParamsSet Function = 0x05

	// UtilParamsGet reads device parameters.  The payload names the keys;
	// the reply carries the encoded values.
	UtilParamsGet Function = 0x06

	// UtilEventRegister subscribes the initiator to unsolicited event
	// notifications from the target device (timer expirations, state
	// changes).
	UtilEventRegister Function = 0x13

	// UtilEventAck acknowledges an event notification.
	UtilEventAck Function = 0x14
)

// Executive function codes.  These are addressed to the executive device
// (TIDExecutive) or broadcast by it to change the operational state of the
// IOP and its modules.
const (
	// ExecStatusGet asks for the executive status block (state, module
	// count, queue depths).
	ExecStatusGet Function = 0xA0

	// ExecOutboundInit initializes the outbound queue of the messaging
	// instance; sent by the host during IOP bring-up.
	ExecOutboundInit Function = 0xA1

	// ExecHrtGet reads the hardware resource table (the set of registered
	// devices and their TiDs).
	ExecHrtGet Function = 0xA8

	// ExecSysTabSet installs the system table: the mapping from remote IOP
	// numbers to peer transport routes, enabling peer operation.
	ExecSysTabSet Function = 0xA3

	// ExecSysEnable moves the IOP (or a single device, when targeted at a
	// device TiD) to the OPERATIONAL state.
	ExecSysEnable Function = 0xD1

	// ExecSysQuiesce moves the IOP or device to the READY (quiesced)
	// state: frames keep queueing but are no longer dispatched.
	ExecSysQuiesce Function = 0xC3

	// ExecSysClear resets queues and statistics without unloading modules.
	ExecSysClear Function = 0xC4

	// ExecPlugin loads a device module into the running executive and is
	// answered with the assigned TiD.  The plugin method is not defined by
	// I2O; the paper adds it for dynamic module download (§4).
	ExecPlugin Function = 0xE0

	// ExecUnplug removes a previously plugged device module.
	ExecUnplug Function = 0xE1

	// ExecTimerSet arms an executive core timer; expiry is delivered as a
	// UtilEventAck-able private event frame to the initiator.
	ExecTimerSet Function = 0xE2

	// ExecTimerCancel disarms a timer set with ExecTimerSet.
	ExecTimerCancel Function = 0xE3

	// ExecTraceGet controls and reads the executive's frame tracer.  The
	// request may carry "enable" and "reset" parameters; the reply carries
	// the ring contents.  Not defined by I2O; added for the system
	// management dimension, like ExecPlugin.
	ExecTraceGet Function = 0xE4

	// ExecMetricsGet reads the node's metrics registry: the reply carries
	// an encoded parameter list with one entry per counter and gauge, and
	// flattened count/sum/quantile rows per histogram.  An optional
	// "prefix" parameter in the request restricts the reply to matching
	// names.  Not defined by I2O; added so any node can scrape any other
	// node's operational counters over ordinary message frames.
	ExecMetricsGet Function = 0xE5

	// ExecPing is the liveness probe: an empty request answered with an
	// empty reply by the executive self device.  The health monitor sends
	// it at urgent priority over the configured peer transport route, so a
	// successful round trip proves the route, the remote agent and the
	// remote dispatch loop are all alive.  Not defined by I2O.
	ExecPing Function = 0xE6

	// ExecHealthGet reads the node's peer-liveness report: one parameter
	// row per monitored peer (state, consecutive failures, current route).
	// Nodes without a health monitor answer with a "monitor=off" row.  Not
	// defined by I2O.
	ExecHealthGet Function = 0xE7

	// ExecJoin is the cluster bootstrap rendezvous: a joining executive
	// sends its member record (identity, listen address, shared-memory
	// directory, exported device table) to any current member and the
	// reply carries the full membership list.  With an "op=leave"
	// parameter it is the graceful-departure notification instead, sent
	// fire-and-forget to every member.  Not defined by I2O; see
	// doc/deployment.md.
	ExecJoin Function = 0xE8

	// ExecPeerList pushes the membership list (epoch + one record per
	// member) to a peer after a change.  Membership sync is additive:
	// receivers adopt members they have not seen, and removals travel
	// only as explicit ExecJoin leaves or local health evictions.  Not
	// defined by I2O.
	ExecPeerList Function = 0xE9

	// ExecPolicyGet reads the node's control-plane report: the autopilot's
	// policy identity, tick count, and decision log, one parameter row per
	// decision.  Nodes without an autopilot answer with an "autopilot=off"
	// row, mirroring ExecHealthGet's monitor=off convention.  Not defined
	// by I2O.
	ExecPolicyGet Function = 0xEA
)

// FuncPrivate marks a private frame: the operation is identified by the
// (OrgID, XFunction) pair carried in the private extension header word, and
// the semantics are defined by the application device class (figure 5:
// "Function=FFh if it is private. Then XFunctionCode is interpreted").
const FuncPrivate Function = 0xFF

// IsPrivate reports whether f requires the private extension header.
func (f Function) IsPrivate() bool { return f == FuncPrivate }

// IsUtility reports whether f is in the utility class range.
func (f Function) IsUtility() bool { return f < 0x80 }

// IsExecutive reports whether f is one of the executive control codes.
func (f Function) IsExecutive() bool {
	switch f {
	case ExecStatusGet, ExecOutboundInit, ExecHrtGet, ExecSysTabSet,
		ExecSysEnable, ExecSysQuiesce, ExecSysClear,
		ExecPlugin, ExecUnplug, ExecTimerSet, ExecTimerCancel, ExecTraceGet,
		ExecMetricsGet, ExecPing, ExecHealthGet, ExecJoin, ExecPeerList,
		ExecPolicyGet:
		return true
	}
	return false
}

var functionNames = map[Function]string{
	UtilNOP:           "UtilNOP",
	UtilAbort:         "UtilAbort",
	UtilParamsSet:     "UtilParamsSet",
	UtilParamsGet:     "UtilParamsGet",
	UtilEventRegister: "UtilEventRegister",
	UtilEventAck:      "UtilEventAck",
	ExecStatusGet:     "ExecStatusGet",
	ExecOutboundInit:  "ExecOutboundInit",
	ExecHrtGet:        "ExecHrtGet",
	ExecSysTabSet:     "ExecSysTabSet",
	ExecSysEnable:     "ExecSysEnable",
	ExecSysQuiesce:    "ExecSysQuiesce",
	ExecSysClear:      "ExecSysClear",
	ExecPlugin:        "ExecPlugin",
	ExecUnplug:        "ExecUnplug",
	ExecTimerSet:      "ExecTimerSet",
	ExecTimerCancel:   "ExecTimerCancel",
	ExecTraceGet:      "ExecTraceGet",
	ExecMetricsGet:    "ExecMetricsGet",
	ExecPing:          "ExecPing",
	ExecHealthGet:     "ExecHealthGet",
	ExecJoin:          "ExecJoin",
	ExecPeerList:      "ExecPeerList",
	ExecPolicyGet:     "ExecPolicyGet",
	FuncPrivate:       "Private",
}

func (f Function) String() string {
	if s, ok := functionNames[f]; ok {
		return s
	}
	return fmt.Sprintf("Function(%#02x)", uint8(f))
}
