package i2o

import (
	"bytes"
	"testing"
)

// releaseCounter counts Retain/Release calls standing in for a pool buffer.
type releaseCounter struct {
	retains, releases int
}

func (r *releaseCounter) Retain()  { r.retains++ }
func (r *releaseCounter) Release() { r.releases++ }

func TestAcquireMessageIsZeroed(t *testing.T) {
	m := AcquireMessage()
	m.Target = 5
	m.InitiatorContext = 99
	m.Payload = []byte("x")
	m.Recycle()
	// Whatever frame the pool hands out next must carry no state from a
	// previous life (it may or may not be the same struct).
	n := AcquireMessage()
	defer n.Recycle()
	if n.Target != 0 || n.InitiatorContext != 0 || n.Payload != nil || n.Flags != 0 {
		t.Fatalf("acquired frame carries stale state: %+v", n)
	}
}

func TestRecycleReleasesBuffer(t *testing.T) {
	var rc releaseCounter
	m := AcquireMessage()
	m.Target = 2
	m.AttachBuffer(&rc)
	m.Recycle()
	if rc.releases != 1 {
		t.Fatalf("releases = %d, want 1", rc.releases)
	}
}

func TestRecycleOnLiteralIsRelease(t *testing.T) {
	var rc releaseCounter
	m := &Message{Target: 3, Priority: PriorityNormal, XFunction: 7}
	m.AttachBuffer(&rc)
	m.Recycle()
	if rc.releases != 1 {
		t.Fatalf("releases = %d, want 1", rc.releases)
	}
	// A literal frame is not pool-managed: its fields survive Recycle, so
	// pre-existing callers that read a frame after dispatch stay correct.
	if m.Target != 3 || m.XFunction != 7 {
		t.Fatalf("literal frame scrubbed by Recycle: %+v", m)
	}
}

func TestDecodeAcquiredRoundTrip(t *testing.T) {
	src := &Message{
		Priority: PriorityHigh, Target: 9, Initiator: 1,
		Function: FuncPrivate, Org: OrgXDAQ, XFunction: 42,
		InitiatorContext: 7, TransactionContext: 8,
		Payload: []byte("hello"),
	}
	wire := make([]byte, src.WireSize())
	if _, err := src.Encode(wire); err != nil {
		t.Fatal(err)
	}
	m, n, err := DecodeAcquired(wire)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(wire) {
		t.Fatalf("consumed %d of %d bytes", n, len(wire))
	}
	if m.Target != 9 || m.XFunction != 42 || !bytes.Equal(m.Payload, []byte("hello")) {
		t.Fatalf("decoded %+v", m)
	}
	m.Recycle()
	fresh := AcquireMessage()
	defer fresh.Recycle()
	if fresh.Target != 0 || fresh.Payload != nil {
		t.Fatalf("pool frame not scrubbed after DecodeAcquired/Recycle: %+v", fresh)
	}
}

func TestDecodeAcquiredErrorReturnsFrame(t *testing.T) {
	if _, _, err := DecodeAcquired([]byte{1, 2}); err == nil {
		t.Fatal("truncated decode succeeded")
	}
	// The error path recycles internally; the next acquire must be clean.
	m := AcquireMessage()
	defer m.Recycle()
	if m.Target != 0 || m.Payload != nil {
		t.Fatalf("frame leaked from failed decode: %+v", m)
	}
}

func TestNewReplyIsPooled(t *testing.T) {
	req := &Message{
		Priority: PriorityNormal, Target: 4, Initiator: 1,
		Function: FuncPrivate, Org: OrgXDAQ, XFunction: 3,
		InitiatorContext: 11, TransactionContext: 12,
	}
	rep := NewReply(req)
	if !rep.pooled {
		t.Fatal("NewReply frame is not pool-managed")
	}
	if rep.Target != 1 || rep.Initiator != 4 || !rep.Flags.Has(FlagReply) ||
		rep.InitiatorContext != 11 || rep.TransactionContext != 12 ||
		rep.XFunction != 3 || rep.Org != OrgXDAQ {
		t.Fatalf("reply skeleton %+v", rep)
	}
	rep.Recycle()
}
