package i2o

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestFailRecordRoundTrip(t *testing.T) {
	in := &FailRecord{Code: FailTransport, Detail: "gm wire down"}
	out, err := DecodeFail(in.EncodeFail())
	if err != nil {
		t.Fatalf("DecodeFail: %v", err)
	}
	if out.Code != in.Code || out.Detail != in.Detail {
		t.Fatalf("round trip: %+v", out)
	}
}

func TestFailRecordEmptyDetail(t *testing.T) {
	in := &FailRecord{Code: FailResources}
	out, err := DecodeFail(in.EncodeFail())
	if err != nil {
		t.Fatal(err)
	}
	if out.Detail != "" || out.Code != FailResources {
		t.Fatalf("got %+v", out)
	}
	if !strings.Contains(out.Error(), "resource") {
		t.Fatalf("Error() = %q", out.Error())
	}
}

func TestDecodeFailTruncated(t *testing.T) {
	full := (&FailRecord{Code: FailAborted, Detail: "watchdog"}).EncodeFail()
	for i := 0; i < len(full); i++ {
		if _, err := DecodeFail(full[:i]); err == nil {
			t.Fatalf("prefix %d decoded", i)
		}
	}
}

func TestNewFailReplyAndReplyError(t *testing.T) {
	req := sampleMessage()
	rep := NewFailReply(req, FailUnknownFunction, "no handler for 0x7788")
	if !rep.Flags.Has(FlagReply) || !rep.Flags.Has(FlagFail) {
		t.Fatalf("flags = %v", rep.Flags)
	}
	err := ReplyError(rep)
	var rec *FailRecord
	if !errors.As(err, &rec) {
		t.Fatalf("ReplyError type = %T", err)
	}
	if rec.Code != FailUnknownFunction {
		t.Fatalf("code = %v", rec.Code)
	}
	if !strings.Contains(rec.Error(), "0x7788") {
		t.Fatalf("Error() = %q", rec.Error())
	}
}

func TestReplyErrorOnSuccess(t *testing.T) {
	req := sampleMessage()
	rep := NewReply(req)
	if err := ReplyError(rep); err != nil {
		t.Fatalf("success reply produced error %v", err)
	}
}

func TestReplyErrorUndecodable(t *testing.T) {
	req := sampleMessage()
	rep := NewReply(req)
	rep.Flags |= FlagFail
	rep.Payload = []byte{1} // too short for a fail record
	if err := ReplyError(rep); err == nil {
		t.Fatal("undecodable fail payload produced nil error")
	}
}

func TestFailCodeNames(t *testing.T) {
	for code := FailUnknownTarget; code <= FailApplication; code++ {
		if code.String() == "" {
			t.Fatalf("empty name for %d", code)
		}
	}
	if !strings.Contains(FailCode(999).String(), "999") {
		t.Fatal("unknown code must render its number")
	}
}

func TestQuickFailRoundTrip(t *testing.T) {
	f := func(code uint16, detail string) bool {
		in := &FailRecord{Code: FailCode(code), Detail: detail}
		if len(detail) > 0xFFFF {
			return true // length field is uint16; out of scope
		}
		out, err := DecodeFail(in.EncodeFail())
		return err == nil && out.Code == in.Code && out.Detail == in.Detail
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
