package i2o

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Flags carries the frame control bits.
type Flags uint8

const (
	// FlagReplyExpected marks a request whose initiator waits for a reply
	// frame carrying the same InitiatorContext.
	FlagReplyExpected Flags = 1 << 0

	// FlagReply marks a frame that answers an earlier request.
	FlagReply Flags = 1 << 1

	// FlagFail marks a reply that reports failure; the payload carries an
	// encoded failure record (see FailRecord).
	FlagFail Flags = 1 << 2
)

func (f Flags) Has(bit Flags) bool { return f&bit != 0 }

func (f Flags) String() string {
	s := ""
	if f.Has(FlagReplyExpected) {
		s += "E"
	}
	if f.Has(FlagReply) {
		s += "R"
	}
	if f.Has(FlagFail) {
		s += "F"
	}
	if s == "" {
		return "-"
	}
	return s
}

// Frame sizes, in bytes.  An I2O message is measured in 32-bit words; the
// standard header occupies four words and the private extension adds one.
const (
	wordSize = 4

	// StandardHeaderSize is the byte size of the standard frame header.
	StandardHeaderSize = 4 * wordSize

	// PrivateHeaderSize is the byte size of the header including the
	// private extension word (present when Function == FuncPrivate).
	PrivateHeaderSize = 5 * wordSize

	// MaxWireSize is the largest encodable frame: the MessageSize field is
	// a 16-bit word count.
	MaxWireSize = 0xFFFF * wordSize

	// MaxPayload is the largest payload of a private frame.  This aligns
	// with the paper's 256 KB maximum buffer pool block length.
	MaxPayload = MaxWireSize - PrivateHeaderSize
)

// Releaser is the hook through which a Message participates in buffer pool
// reference counting without this package depending on the pool
// implementation.  The executive attaches the pool buffer backing
// Message.Payload; transports retain it while a frame is in flight and
// release it after delivery, implementing the paper's automatic recycling.
type Releaser interface {
	Retain()
	Release()
}

// SegmentedPayload is a payload chained across several pool blocks — an
// I2O Scatter-Gather List (implemented by sgl.List).  Gather-capable
// transports walk the segments straight onto the wire instead of
// flattening them into one buffer first; that avoided copy is the point of
// the paper's SGL support (§4).  Retain/Release manage the whole chain.
type SegmentedPayload interface {
	Releaser
	Len() int
	Segments() int
	Segment(i int) []byte
}

// Message is one I2O message frame.  The struct form is the in-memory
// representation moved between devices on the same IOP (zero-copy: Payload
// aliases a buffer pool block); Encode/Decode translate to the wire layout
// of figure 5 for transports that serialize.
type Message struct {
	Flags              Flags
	Priority           Priority
	Target             TID
	Initiator          TID
	Function           Function
	InitiatorContext   uint32
	TransactionContext uint32

	// Private extension, meaningful only when Function == FuncPrivate.
	XFunction uint16
	Org       OrgID

	// Payload is the frame body.  When the message was allocated through
	// an executive it aliases a buffer pool block; Release returns it.
	// A frame carries either Payload or an attached segment list (see
	// AttachList), never both.
	Payload []byte

	buf    Releaser
	list   SegmentedPayload
	pooled bool
}

// framePool is the message-struct free list backing the allocation-free
// dispatch hot path: frames acquired here are recycled by the executive
// once dispatch ends (or by the caller, for replies it owns), so the
// steady-state messaging path creates no garbage.  It is the in-memory
// analogue of the paper's frame buffer recycling, applied to the frame
// descriptors themselves.
var framePool = sync.Pool{New: func() any { return new(Message) }}

// AcquireMessage returns a zeroed frame from the package free list.  The
// frame is marked as pool-managed: whoever terminally owns it may call
// Recycle to return the struct for reuse.  Frames built as plain struct
// literals are never pooled and are left to the garbage collector.
func AcquireMessage() *Message {
	m := framePool.Get().(*Message)
	m.pooled = true
	return m
}

// Recycle releases the attached buffer (like Release) and, when the frame
// came from AcquireMessage, returns the struct to the free list.  The
// message must not be used afterwards.  Calling Recycle on a non-pooled
// frame is equivalent to Release, so terminal dispatch paths can call it
// unconditionally.
func (m *Message) Recycle() {
	m.Release()
	if !m.pooled {
		return
	}
	*m = Message{}
	framePool.Put(m)
}

// HeaderSize returns the byte size of this message's header on the wire.
func (m *Message) HeaderSize() int {
	if m.Function.IsPrivate() {
		return PrivateHeaderSize
	}
	return StandardHeaderSize
}

// WireSize returns the total encoded size in bytes, including padding to a
// word boundary.
func (m *Message) WireSize() int {
	n := m.HeaderSize() + m.PayloadLen()
	return (n + wordSize - 1) &^ (wordSize - 1)
}

// PayloadLen returns the byte length of the frame body, whether it is the
// flat Payload slice or an attached segment list.
func (m *Message) PayloadLen() int {
	if m.list != nil {
		return m.list.Len()
	}
	return len(m.Payload)
}

// Validation errors.
var (
	ErrBadVersion  = errors.New("i2o: unsupported frame version")
	ErrBadTID      = errors.New("i2o: invalid target identifier")
	ErrBadPriority = errors.New("i2o: priority out of range")
	ErrTooLarge    = errors.New("i2o: frame exceeds maximum wire size")
	ErrTruncated   = errors.New("i2o: truncated frame")
	ErrShortBuffer = errors.New("i2o: destination buffer too small")
	ErrDualBody    = errors.New("i2o: frame has both flat payload and segment list")
	ErrBadPadding  = errors.New("i2o: nonzero padding bytes")
)

// Validate checks that the message can be represented on the wire.
func (m *Message) Validate() error {
	if !m.Target.Valid() {
		return fmt.Errorf("%w: target %v", ErrBadTID, m.Target)
	}
	if m.Initiator > TIDMax {
		return fmt.Errorf("%w: initiator %v", ErrBadTID, m.Initiator)
	}
	if !m.Priority.Valid() {
		return fmt.Errorf("%w: %d", ErrBadPriority, m.Priority)
	}
	if m.list != nil && len(m.Payload) != 0 {
		return ErrDualBody
	}
	if m.WireSize() > MaxWireSize {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, m.WireSize())
	}
	return nil
}

// AttachBuffer records the pool buffer backing Payload so that Retain and
// Release manage its reference count.  Passing nil detaches.
func (m *Message) AttachBuffer(b Releaser) { m.buf = b }

// Buffer returns the attached pool buffer, or nil.
func (m *Message) Buffer() Releaser { return m.buf }

// AttachList makes l the frame body.  The list takes the attached-buffer
// slot, so Retain/Release manage the whole chain exactly as they would a
// single block; Payload must stay nil (Validate rejects frames carrying
// both).  Only transports that serialize (tcp, gm) can carry a list — the
// pointer-passing transports deliver the frame struct as-is, so a list
// payload crossing them would reach a handler expecting Payload bytes.
func (m *Message) AttachList(l SegmentedPayload) {
	m.list = l
	if l == nil {
		m.buf = nil
		return
	}
	m.buf = l
}

// List returns the attached segment list, or nil for flat frames.
func (m *Message) List() SegmentedPayload { return m.list }

// Retain increments the reference count of the backing buffer, if any.
func (m *Message) Retain() {
	if m.buf != nil {
		m.buf.Retain()
	}
}

// Release decrements the reference count of the backing buffer, if any,
// recycling it to its pool when the count reaches zero.  The message must
// not be used afterwards.
func (m *Message) Release() {
	if m.buf != nil {
		m.buf.Release()
		m.buf = nil
	}
	m.list = nil
}

// Encode writes the wire representation into dst and returns the number of
// bytes written (always a multiple of the word size).
//
// Wire layout, little-endian, one 32-bit word per row:
//
//	word 0: version (byte) | prio+pad+flags (byte) | message size in words (uint16)
//	word 1: target (12 bits) | initiator (12 bits) | function (8 bits)
//	word 2: initiator context
//	word 3: transaction context
//	word 4: xfunction (16 bits) | organization id (16 bits)   [private only]
//	then the payload, zero-padded to a word boundary.
func (m *Message) Encode(dst []byte) (int, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	size := m.WireSize()
	if len(dst) < size {
		return 0, fmt.Errorf("%w: need %d, have %d", ErrShortBuffer, size, len(dst))
	}
	hdr := m.HeaderSize()
	pad := size - hdr - m.PayloadLen()

	dst[0] = Version
	dst[1] = byte(m.Priority) | byte(pad)<<3 | byte(m.Flags)<<5
	binary.LittleEndian.PutUint16(dst[2:], uint16(size/wordSize))

	addr := uint32(m.Target&TIDMax) | uint32(m.Initiator&TIDMax)<<12 | uint32(m.Function)<<24
	binary.LittleEndian.PutUint32(dst[4:], addr)
	binary.LittleEndian.PutUint32(dst[8:], m.InitiatorContext)
	binary.LittleEndian.PutUint32(dst[12:], m.TransactionContext)
	if m.Function.IsPrivate() {
		binary.LittleEndian.PutUint32(dst[16:], uint32(m.XFunction)|uint32(m.Org)<<16)
	}
	if m.list != nil {
		off := hdr
		for i, n := 0, m.list.Segments(); i < n; i++ {
			off += copy(dst[off:], m.list.Segment(i))
		}
	} else {
		copy(dst[hdr:], m.Payload)
	}
	for i := size - pad; i < size; i++ {
		dst[i] = 0
	}
	return size, nil
}

// EncodeHeader writes only the header words into dst (which must hold
// HeaderSize bytes) with the size field covering the full frame including
// payload and padding.  Transports with gather capability use it to put a
// frame on the wire without first flattening header and payload into one
// buffer: header, payload and PadBytes(len(payload)) zero bytes.
func (m *Message) EncodeHeader(dst []byte) (int, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	hdr := m.HeaderSize()
	if len(dst) < hdr {
		return 0, fmt.Errorf("%w: need %d, have %d", ErrShortBuffer, hdr, len(dst))
	}
	size := m.WireSize()
	pad := size - hdr - m.PayloadLen()

	dst[0] = Version
	dst[1] = byte(m.Priority) | byte(pad)<<3 | byte(m.Flags)<<5
	binary.LittleEndian.PutUint16(dst[2:], uint16(size/wordSize))
	addr := uint32(m.Target&TIDMax) | uint32(m.Initiator&TIDMax)<<12 | uint32(m.Function)<<24
	binary.LittleEndian.PutUint32(dst[4:], addr)
	binary.LittleEndian.PutUint32(dst[8:], m.InitiatorContext)
	binary.LittleEndian.PutUint32(dst[12:], m.TransactionContext)
	if m.Function.IsPrivate() {
		binary.LittleEndian.PutUint32(dst[16:], uint32(m.XFunction)|uint32(m.Org)<<16)
	}
	return hdr, nil
}

// PadBytes returns how many zero bytes follow a payload of n bytes on the
// wire to reach word alignment.
func PadBytes(n int) int { return (wordSize - n%wordSize) % wordSize }

// ZeroPad is a ready-made source of padding bytes for gather transmission.
var ZeroPad = [wordSize]byte{}

// AppendBody appends the frame body — the flat Payload or every segment of
// an attached list — plus word-alignment padding to vec, and returns the
// extended vector.  Gather transports call it after EncodeHeader to build
// the iovec for a single vectored write without flattening anything: the
// appended slices alias the frame's pool blocks, so no payload byte is
// copied until the kernel (or the simulated NIC) reads them.
func (m *Message) AppendBody(vec [][]byte) [][]byte {
	n := m.PayloadLen()
	if m.list != nil {
		for i, segs := 0, m.list.Segments(); i < segs; i++ {
			if seg := m.list.Segment(i); len(seg) > 0 {
				vec = append(vec, seg)
			}
		}
	} else if n > 0 {
		vec = append(vec, m.Payload)
	}
	if pad := PadBytes(n); pad > 0 {
		vec = append(vec, ZeroPad[:pad])
	}
	return vec
}

// AppendEncode appends the wire representation to dst and returns the
// extended slice.
func (m *Message) AppendEncode(dst []byte) ([]byte, error) {
	off := len(dst)
	size := m.WireSize()
	if cap(dst)-off < size {
		grown := make([]byte, off, off+size)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:off+size]
	if _, err := m.Encode(dst[off:]); err != nil {
		return dst[:off], err
	}
	return dst, nil
}

// EncodedSize inspects the first header word of an encoded frame and
// returns its total wire size in bytes.  It needs at least 4 bytes of src.
func EncodedSize(src []byte) (int, error) {
	if len(src) < wordSize {
		return 0, ErrTruncated
	}
	return int(binary.LittleEndian.Uint16(src[2:])) * wordSize, nil
}

// Decode parses one frame from src.  The returned message's Payload aliases
// src; callers that need the payload to outlive src must copy it (or decode
// directly into a pool block with DecodeInto).  It returns the number of
// bytes consumed.
func Decode(src []byte) (*Message, int, error) {
	var m Message
	n, err := decode(&m, src, nil)
	if err != nil {
		return nil, 0, err
	}
	return &m, n, nil
}

// DecodeAcquired is Decode returning a frame from the package free list,
// so receive paths that hand the frame to a dispatcher (which recycles it
// at end of dispatch) allocate no frame descriptor per message.  On error
// the acquired frame is returned to the pool before reporting.
func DecodeAcquired(src []byte) (*Message, int, error) {
	m := AcquireMessage()
	n, err := decode(m, src, nil)
	if err != nil {
		m.Recycle()
		return nil, 0, err
	}
	return m, n, nil
}

// DecodeInto parses one frame from src, copying the payload into
// payloadDst, which must be at least as large as the payload.  The parsed
// message's Payload aliases payloadDst.  It returns the bytes consumed
// from src.
func DecodeInto(m *Message, src, payloadDst []byte) (int, error) {
	return decode(m, src, payloadDst)
}

func decode(m *Message, src, payloadDst []byte) (int, error) {
	if len(src) < StandardHeaderSize {
		return 0, ErrTruncated
	}
	if src[0] != Version {
		return 0, fmt.Errorf("%w: %d", ErrBadVersion, src[0])
	}
	b1 := src[1]
	prio := Priority(b1 & 0x07)
	pad := int(b1 >> 3 & 0x03)
	flags := Flags(b1 >> 5)

	size := int(binary.LittleEndian.Uint16(src[2:])) * wordSize
	if size < StandardHeaderSize || size > len(src) {
		return 0, fmt.Errorf("%w: size %d, have %d", ErrTruncated, size, len(src))
	}
	addr := binary.LittleEndian.Uint32(src[4:])
	target := TID(addr & 0xFFF)
	initiator := TID(addr >> 12 & 0xFFF)
	fn := Function(addr >> 24)

	hdr := StandardHeaderSize
	if fn.IsPrivate() {
		hdr = PrivateHeaderSize
		if size < hdr {
			return 0, fmt.Errorf("%w: private frame of %d bytes", ErrTruncated, size)
		}
	}
	payloadLen := size - hdr - pad
	if payloadLen < 0 {
		return 0, fmt.Errorf("%w: pad %d exceeds body", ErrTruncated, pad)
	}
	if !prio.Valid() {
		return 0, fmt.Errorf("%w: %d", ErrBadPriority, prio)
	}
	if !target.Valid() {
		return 0, fmt.Errorf("%w: decoded target %v", ErrBadTID, target)
	}

	*m = Message{
		Flags:              flags,
		Priority:           prio,
		Target:             target,
		Initiator:          initiator,
		Function:           fn,
		InitiatorContext:   binary.LittleEndian.Uint32(src[8:]),
		TransactionContext: binary.LittleEndian.Uint32(src[12:]),
		pooled:             m.pooled,
	}
	if fn.IsPrivate() {
		x := binary.LittleEndian.Uint32(src[16:])
		m.XFunction = uint16(x)
		m.Org = OrgID(x >> 16)
	}
	// Encoders emit zero padding; anything else means the sender and
	// receiver disagree about where the body ends — corruption worth
	// refusing rather than silently dropping bytes.
	for _, p := range src[hdr+payloadLen : size] {
		if p != 0 {
			return 0, ErrBadPadding
		}
	}
	body := src[hdr : hdr+payloadLen]
	if payloadDst != nil {
		if len(payloadDst) < payloadLen {
			return 0, fmt.Errorf("%w: payload %d, buffer %d", ErrShortBuffer, payloadLen, len(payloadDst))
		}
		copy(payloadDst, body)
		m.Payload = payloadDst[:payloadLen]
	} else {
		m.Payload = body
	}
	return size, nil
}

// Dup returns an independent copy of the frame sharing its body: header
// fields are copied, the flat payload or segment list is aliased, and the
// backing pool buffer's reference count is incremented so the original and
// the duplicate can be released (or recycled) independently.  The fault
// injector's Duplicate op uses it to put the same frame on the wire twice
// without either copy freeing the block out from under the other.
func (m *Message) Dup() *Message {
	d := AcquireMessage()
	pooled := d.pooled
	*d = *m
	d.pooled = pooled
	if d.buf != nil {
		d.buf.Retain()
	}
	return d
}

// NewReply builds the reply skeleton for req: addresses are swapped, the
// function code and contexts are preserved, and the reply flag is set.  The
// caller fills in the payload (and the fail flag, for failures).  The frame
// comes from the package free list; the waiter that consumes it may call
// Recycle (Release keeps working and merely leaves the struct to the
// garbage collector).
func NewReply(req *Message) *Message {
	m := AcquireMessage()
	m.Flags = FlagReply
	m.Priority = req.Priority
	m.Target = req.Initiator
	m.Initiator = req.Target
	m.Function = req.Function
	m.InitiatorContext = req.InitiatorContext
	m.TransactionContext = req.TransactionContext
	m.XFunction = req.XFunction
	m.Org = req.Org
	return m
}

// String renders a compact one-line summary for logs and tests.
func (m *Message) String() string {
	if m.Function.IsPrivate() {
		return fmt.Sprintf("frame{%v<-%v %v/%#04x org=%#04x prio=%d flags=%v len=%d}",
			m.Target, m.Initiator, m.Function, m.XFunction, uint16(m.Org), m.Priority, m.Flags, len(m.Payload))
	}
	return fmt.Sprintf("frame{%v<-%v %v prio=%d flags=%v len=%d}",
		m.Target, m.Initiator, m.Function, m.Priority, m.Flags, len(m.Payload))
}
