package i2o

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func sampleMessage() *Message {
	return &Message{
		Flags:              FlagReplyExpected,
		Priority:           PriorityNormal,
		Target:             0x123,
		Initiator:          0x456,
		Function:           FuncPrivate,
		InitiatorContext:   0xDEADBEEF,
		TransactionContext: 0x01020304,
		XFunction:          0x7788,
		Org:                OrgXDAQ,
		Payload:            []byte("hello, cluster"),
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := sampleMessage()
	buf := make([]byte, m.WireSize())
	n, err := m.Encode(buf)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if n != m.WireSize() {
		t.Fatalf("Encode wrote %d, WireSize %d", n, m.WireSize())
	}
	got, consumed, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if consumed != n {
		t.Fatalf("Decode consumed %d, encoded %d", consumed, n)
	}
	if got.Target != m.Target || got.Initiator != m.Initiator ||
		got.Function != m.Function || got.Priority != m.Priority ||
		got.Flags != m.Flags || got.InitiatorContext != m.InitiatorContext ||
		got.TransactionContext != m.TransactionContext ||
		got.XFunction != m.XFunction || got.Org != m.Org {
		t.Fatalf("header mismatch:\n got %+v\nwant %+v", got, m)
	}
	if !bytes.Equal(got.Payload, m.Payload) {
		t.Fatalf("payload mismatch: got %q want %q", got.Payload, m.Payload)
	}
}

func TestStandardFrameHasNoExtension(t *testing.T) {
	m := &Message{
		Priority: PriorityUrgent,
		Target:   TIDExecutive,
		Function: ExecStatusGet,
	}
	if m.HeaderSize() != StandardHeaderSize {
		t.Fatalf("HeaderSize = %d, want %d", m.HeaderSize(), StandardHeaderSize)
	}
	buf := make([]byte, m.WireSize())
	if _, err := m.Encode(buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, _, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.XFunction != 0 || got.Org != 0 {
		t.Fatalf("standard frame decoded with extension values %x/%x", got.XFunction, got.Org)
	}
	if len(got.Payload) != 0 {
		t.Fatalf("empty frame decoded with %d payload bytes", len(got.Payload))
	}
}

func TestEncodePadding(t *testing.T) {
	for payloadLen := 0; payloadLen < 9; payloadLen++ {
		m := sampleMessage()
		m.Payload = bytes.Repeat([]byte{0xAB}, payloadLen)
		buf := make([]byte, m.WireSize())
		if _, err := m.Encode(buf); err != nil {
			t.Fatalf("len %d: Encode: %v", payloadLen, err)
		}
		if m.WireSize()%4 != 0 {
			t.Fatalf("len %d: WireSize %d not word aligned", payloadLen, m.WireSize())
		}
		got, _, err := Decode(buf)
		if err != nil {
			t.Fatalf("len %d: Decode: %v", payloadLen, err)
		}
		if len(got.Payload) != payloadLen {
			t.Fatalf("len %d: decoded payload length %d", payloadLen, len(got.Payload))
		}
	}
}

func TestEncodeValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Message)
		want error
	}{
		{"no target", func(m *Message) { m.Target = TIDNone }, ErrBadTID},
		{"target too wide", func(m *Message) { m.Target = TIDMax + 1 }, ErrBadTID},
		{"initiator too wide", func(m *Message) { m.Initiator = 0x1000 }, ErrBadTID},
		{"priority", func(m *Message) { m.Priority = NumPriorities }, ErrBadPriority},
		{"too large", func(m *Message) { m.Payload = make([]byte, MaxPayload+1) }, ErrTooLarge},
	}
	for _, tc := range cases {
		m := sampleMessage()
		tc.mut(m)
		buf := make([]byte, 64)
		if _, err := m.Encode(buf); !errors.Is(err, tc.want) {
			t.Errorf("%s: Encode err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestEncodeShortBuffer(t *testing.T) {
	m := sampleMessage()
	buf := make([]byte, m.WireSize()-1)
	if _, err := m.Encode(buf); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("Encode into short buffer: %v", err)
	}
}

func TestDecodeErrors(t *testing.T) {
	m := sampleMessage()
	buf := make([]byte, m.WireSize())
	if _, err := m.Encode(buf); err != nil {
		t.Fatal(err)
	}

	if _, _, err := Decode(buf[:StandardHeaderSize-1]); !errors.Is(err, ErrTruncated) {
		t.Errorf("short header: %v", err)
	}
	if _, _, err := Decode(buf[:m.WireSize()-4]); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated body: %v", err)
	}

	bad := append([]byte(nil), buf...)
	bad[0] = 99
	if _, _, err := Decode(bad); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: %v", err)
	}

	// A private frame whose declared size cannot hold the extension word.
	tiny := &Message{Priority: 0, Target: 5, Function: ExecStatusGet}
	tb := make([]byte, tiny.WireSize())
	if _, err := tiny.Encode(tb); err != nil {
		t.Fatal(err)
	}
	tb[7] = byte(FuncPrivate) // function byte lives at the top of word 1
	if _, _, err := Decode(tb); !errors.Is(err, ErrTruncated) {
		t.Errorf("private without extension: %v", err)
	}

	// Garbage in the word-alignment padding means the sender and receiver
	// disagree about where the body ends; the decoder refuses it rather
	// than silently dropping bytes (found by FuzzDecodeAcquired: accepting
	// it also broke decode/encode idempotence).
	padded := &Message{Priority: 0, Target: 5, Function: ExecStatusGet, Payload: []byte{1, 2, 3}}
	pb := make([]byte, padded.WireSize())
	if _, err := padded.Encode(pb); err != nil {
		t.Fatal(err)
	}
	pb[len(pb)-1] = 0xFF
	if _, _, err := Decode(pb); !errors.Is(err, ErrBadPadding) {
		t.Errorf("nonzero padding: %v", err)
	}
}

func TestDecodeInto(t *testing.T) {
	m := sampleMessage()
	buf := make([]byte, m.WireSize())
	if _, err := m.Encode(buf); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(m.Payload))
	var got Message
	if _, err := DecodeInto(&got, buf, dst); err != nil {
		t.Fatalf("DecodeInto: %v", err)
	}
	if &got.Payload[0] != &dst[0] {
		t.Fatal("DecodeInto did not use the provided payload buffer")
	}
	if !bytes.Equal(got.Payload, m.Payload) {
		t.Fatalf("payload mismatch: %q", got.Payload)
	}
	short := make([]byte, len(m.Payload)-1)
	if _, err := DecodeInto(&got, buf, short); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("short payload buffer: %v", err)
	}
}

func TestAppendEncode(t *testing.T) {
	m1 := sampleMessage()
	m2 := sampleMessage()
	m2.Payload = []byte("second")
	var stream []byte
	var err error
	if stream, err = m1.AppendEncode(stream); err != nil {
		t.Fatal(err)
	}
	if stream, err = m2.AppendEncode(stream); err != nil {
		t.Fatal(err)
	}
	got1, n1, err := Decode(stream)
	if err != nil {
		t.Fatal(err)
	}
	got2, _, err := Decode(stream[n1:])
	if err != nil {
		t.Fatal(err)
	}
	if string(got1.Payload) != string(m1.Payload) || string(got2.Payload) != "second" {
		t.Fatalf("stream decode mismatch: %q / %q", got1.Payload, got2.Payload)
	}
}

func TestEncodeHeaderMatchesEncode(t *testing.T) {
	// The gather-send path (header || payload || pad) must produce exactly
	// the bytes of a flat Encode, for any message.
	f := func(seed int64) bool {
		m := quickMessage(rand.New(rand.NewSource(seed)))
		flat := make([]byte, m.WireSize())
		if _, err := m.Encode(flat); err != nil {
			return false
		}
		var hdr [PrivateHeaderSize]byte
		n, err := m.EncodeHeader(hdr[:])
		if err != nil || n != m.HeaderSize() {
			return false
		}
		gathered := append(append(append([]byte(nil), hdr[:n]...), m.Payload...), ZeroPad[:PadBytes(len(m.Payload))]...)
		return bytes.Equal(flat, gathered)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeHeaderErrors(t *testing.T) {
	m := sampleMessage()
	var small [4]byte
	if _, err := m.EncodeHeader(small[:]); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("short dst: %v", err)
	}
	m.Target = TIDNone
	var hdr [PrivateHeaderSize]byte
	if _, err := m.EncodeHeader(hdr[:]); !errors.Is(err, ErrBadTID) {
		t.Fatalf("invalid message: %v", err)
	}
}

func TestPadBytes(t *testing.T) {
	for n, want := range map[int]int{0: 0, 1: 3, 2: 2, 3: 1, 4: 0, 5: 3, 8: 0} {
		if got := PadBytes(n); got != want {
			t.Errorf("PadBytes(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestEncodedSize(t *testing.T) {
	m := sampleMessage()
	buf := make([]byte, m.WireSize())
	if _, err := m.Encode(buf); err != nil {
		t.Fatal(err)
	}
	n, err := EncodedSize(buf[:4])
	if err != nil || n != m.WireSize() {
		t.Fatalf("EncodedSize = %d, %v; want %d", n, err, m.WireSize())
	}
	if _, err := EncodedSize(buf[:3]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("EncodedSize on 3 bytes: %v", err)
	}
}

func TestNewReplySwapsAddresses(t *testing.T) {
	req := sampleMessage()
	rep := NewReply(req)
	if rep.Target != req.Initiator || rep.Initiator != req.Target {
		t.Fatalf("reply addressing: %v <- %v", rep.Target, rep.Initiator)
	}
	if !rep.Flags.Has(FlagReply) || rep.Flags.Has(FlagReplyExpected) {
		t.Fatalf("reply flags = %v", rep.Flags)
	}
	if rep.InitiatorContext != req.InitiatorContext || rep.TransactionContext != req.TransactionContext {
		t.Fatal("reply must preserve contexts")
	}
	if rep.XFunction != req.XFunction || rep.Org != req.Org {
		t.Fatal("reply must preserve private identification")
	}
}

// quickMessage builds a random, always-valid message from quick's generator
// values.
func quickMessage(r *rand.Rand) *Message {
	payload := make([]byte, r.Intn(1024))
	r.Read(payload)
	m := &Message{
		Flags:              Flags(r.Intn(8)),
		Priority:           Priority(r.Intn(NumPriorities)),
		Target:             TID(1 + r.Intn(int(TIDMax))),
		Initiator:          TID(r.Intn(int(TIDMax) + 1)),
		InitiatorContext:   r.Uint32(),
		TransactionContext: r.Uint32(),
		Payload:            payload,
	}
	if r.Intn(2) == 0 {
		m.Function = FuncPrivate
		m.XFunction = uint16(r.Uint32())
		m.Org = OrgID(r.Uint32())
	} else {
		m.Function = Function(r.Intn(0xFF)) // anything but private
	}
	return m
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		m := quickMessage(rand.New(rand.NewSource(seed)))
		buf := make([]byte, m.WireSize())
		if _, err := m.Encode(buf); err != nil {
			t.Logf("Encode: %v", err)
			return false
		}
		got, n, err := Decode(buf)
		if err != nil || n != m.WireSize() {
			t.Logf("Decode: n=%d err=%v", n, err)
			return false
		}
		return got.Target == m.Target && got.Initiator == m.Initiator &&
			got.Function == m.Function && got.Priority == m.Priority &&
			got.Flags == m.Flags &&
			got.InitiatorContext == m.InitiatorContext &&
			got.TransactionContext == m.TransactionContext &&
			bytes.Equal(got.Payload, m.Payload) &&
			(!m.Function.IsPrivate() || (got.XFunction == m.XFunction && got.Org == m.Org))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(junk []byte) bool {
		// Decode must reject or accept arbitrary bytes without panicking.
		_, _, _ = Decode(junk)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

type countingReleaser struct{ retains, releases int }

func (c *countingReleaser) Retain()  { c.retains++ }
func (c *countingReleaser) Release() { c.releases++ }

func TestBufferAttachment(t *testing.T) {
	m := sampleMessage()
	if m.Buffer() != nil {
		t.Fatal("fresh message has a buffer")
	}
	m.Retain()
	m.Release() // both no-ops without a buffer

	c := &countingReleaser{}
	m.AttachBuffer(c)
	m.Retain()
	m.Retain()
	m.Release()
	if c.retains != 2 || c.releases != 1 {
		t.Fatalf("retains=%d releases=%d", c.retains, c.releases)
	}
	if m.Buffer() != nil {
		t.Fatal("Release must detach the buffer")
	}
	m.Release() // second release after detach is a no-op
	if c.releases != 1 {
		t.Fatal("release after detach reached the buffer")
	}
}

func TestTIDValidity(t *testing.T) {
	if TIDNone.Valid() {
		t.Error("TIDNone must be invalid")
	}
	if !TIDExecutive.Valid() || !TIDMax.Valid() {
		t.Error("executive and max TiDs must be valid")
	}
	if (TIDMax + 1).Valid() {
		t.Error("13-bit TiD must be invalid")
	}
}

func TestFunctionClasses(t *testing.T) {
	if !UtilParamsGet.IsUtility() || UtilParamsGet.IsExecutive() || UtilParamsGet.IsPrivate() {
		t.Error("UtilParamsGet classification")
	}
	if !ExecPlugin.IsExecutive() || ExecPlugin.IsUtility() {
		t.Error("ExecPlugin classification")
	}
	if !FuncPrivate.IsPrivate() {
		t.Error("FuncPrivate classification")
	}
}

func TestStringForms(t *testing.T) {
	// Smoke-test the human-readable forms used in logs.
	for _, s := range []string{
		TIDNone.String(), TIDExecutive.String(), TID(0x42).String(),
		NodeID(3).String(), UtilNOP.String(), Function(0x99).String(),
		sampleMessage().String(),
		(&Message{Target: 1, Function: UtilNOP}).String(),
		Flags(0).String(), (FlagReply | FlagFail).String(),
	} {
		if s == "" {
			t.Fatal("empty String()")
		}
	}
}

func TestDupSharesRefcountedBody(t *testing.T) {
	c := &countingReleaser{}
	m := sampleMessage()
	m.AttachBuffer(c)

	d := m.Dup()
	if c.retains != 1 {
		t.Fatalf("Dup retained %d times, want 1", c.retains)
	}
	if d.String() != m.String() {
		t.Fatalf("dup differs from original:\n  %v\n  %v", d, m)
	}
	if &d.Payload[0] != &m.Payload[0] {
		t.Fatal("dup copied the payload instead of aliasing it")
	}
	d.Recycle()
	m.Release()
	if c.releases != 2 {
		t.Fatalf("releases=%d, want 2 (one per frame)", c.releases)
	}

	// A dup of a non-pooled frame is itself pooled (from AcquireMessage)
	// and recyclable; a dup of a pooled frame likewise.
	p := AcquireMessage()
	p.Target, p.Priority = 0x010, PriorityNormal
	pd := p.Dup()
	pd.Recycle()
	p.Recycle()
}
