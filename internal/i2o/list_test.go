package i2o

import (
	"bytes"
	"errors"
	"testing"
)

// stubList is a minimal SegmentedPayload for tests; the real implementation
// is sgl.List, which cannot be imported here (it imports i2o).
type stubList struct {
	segs     [][]byte
	retained int
	released int
}

func (l *stubList) Retain()  { l.retained++ }
func (l *stubList) Release() { l.released++ }
func (l *stubList) Len() int {
	n := 0
	for _, s := range l.segs {
		n += len(s)
	}
	return n
}
func (l *stubList) Segments() int        { return len(l.segs) }
func (l *stubList) Segment(i int) []byte { return l.segs[i] }

func (l *stubList) flat() []byte {
	var out []byte
	for _, s := range l.segs {
		out = append(out, s...)
	}
	return out
}

func listMessage(segs ...[]byte) (*Message, *stubList) {
	l := &stubList{segs: segs}
	m := &Message{
		Target: 0x12, Initiator: 0x34,
		Function: FuncPrivate, Org: OrgXDAQ, XFunction: 7,
	}
	m.AttachList(l)
	return m, l
}

func TestAttachListTakesBufferSlot(t *testing.T) {
	m, l := listMessage([]byte("abc"))
	if m.List() != l || m.Buffer() != Releaser(l) {
		t.Fatal("list not attached as the frame buffer")
	}
	m.Retain()
	if l.retained != 1 {
		t.Fatalf("retained %d, want 1", l.retained)
	}
	m.Release()
	if l.released != 1 {
		t.Fatalf("released %d, want 1", l.released)
	}
	if m.List() != nil || m.Buffer() != nil {
		t.Fatal("release left the list attached")
	}
	// Detach via nil.
	m2, _ := listMessage([]byte("x"))
	m2.AttachList(nil)
	if m2.List() != nil || m2.Buffer() != nil {
		t.Fatal("AttachList(nil) did not detach")
	}
}

func TestPayloadLenCoversList(t *testing.T) {
	m, _ := listMessage([]byte("abcd"), []byte("efg"))
	if m.PayloadLen() != 7 {
		t.Fatalf("PayloadLen = %d, want 7", m.PayloadLen())
	}
	if want := PrivateHeaderSize + 8; m.WireSize() != want { // 7 padded to 8
		t.Fatalf("WireSize = %d, want %d", m.WireSize(), want)
	}
}

func TestValidateRejectsDualBody(t *testing.T) {
	m, _ := listMessage([]byte("abc"))
	m.Payload = []byte("also")
	if err := m.Validate(); !errors.Is(err, ErrDualBody) {
		t.Fatalf("Validate = %v, want ErrDualBody", err)
	}
}

// TestListEncodeMatchesFlat checks a chained body encodes to the identical
// wire bytes as the equivalent flat payload, so receivers cannot tell the
// two apart.
func TestListEncodeMatchesFlat(t *testing.T) {
	segs := [][]byte{[]byte("hello "), []byte("chained "), []byte("world")}
	ml, l := listMessage(segs...)
	mf := &Message{
		Target: 0x12, Initiator: 0x34,
		Function: FuncPrivate, Org: OrgXDAQ, XFunction: 7,
		Payload: l.flat(),
	}
	bl := make([]byte, ml.WireSize())
	bf := make([]byte, mf.WireSize())
	if _, err := ml.Encode(bl); err != nil {
		t.Fatal(err)
	}
	if _, err := mf.Encode(bf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bl, bf) {
		t.Fatal("list encoding differs from flat encoding")
	}
}

func TestAppendBodyGathersSegmentsAndPadding(t *testing.T) {
	segs := [][]byte{[]byte("abc"), {}, []byte("defgh")} // 8 bytes: word-aligned
	m, _ := listMessage(segs...)
	vec := m.AppendBody(nil)
	if len(vec) != 2 { // empty segment skipped, 8 bytes needs no pad
		t.Fatalf("vec has %d entries: %q", len(vec), vec)
	}
	if &vec[0][0] != &segs[0][0] || &vec[1][0] != &segs[2][0] {
		t.Fatal("AppendBody copied segments instead of aliasing them")
	}

	// An unaligned body gains a padding slice.
	mp, _ := listMessage([]byte("abcde"))
	vec = mp.AppendBody(nil)
	if len(vec) != 2 || len(vec[1]) != 3 {
		t.Fatalf("unaligned list: vec %q", vec)
	}

	// Flat payloads gather as a single slice plus padding.
	flat := &Message{Target: 1, Function: UtilNOP, Payload: []byte("abcdef")}
	vec = flat.AppendBody(nil)
	if len(vec) != 2 || &vec[0][0] != &flat.Payload[0] || len(vec[1]) != 2 {
		t.Fatalf("flat body: vec %q", vec)
	}

	// Gathered bytes must equal the Encode body bytes.
	total := 0
	for _, v := range m.AppendBody(nil) {
		total += len(v)
	}
	if total != m.WireSize()-m.HeaderSize() {
		t.Fatalf("gathered %d body bytes, wire wants %d", total, m.WireSize()-m.HeaderSize())
	}
}
