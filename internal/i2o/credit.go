package i2o

// Credit piggybacking on the record word.
//
// The TCP peer transport prefixes every frame on the wire with one 32-bit
// little-endian record word.  Frame sizes are bounded by MaxWireSize
// (0xFFFF words = 262140 bytes < 2^24), so the top byte of the word is
// free; the transport uses it to carry flow-control credit returns
// piggybacked on whatever traffic already flows the other way — the same
// trick MPICH2-over-InfiniBand uses to refresh its send-side credit count
// from "the header of each back traffic message" (Liu et al., "Design and
// Implementation of MPICH2 over InfiniBand with RDMA Support", PAPERS.md)
// so that flow control costs no extra messages on a busy duplex link.
//
// A record word with a zero length and a non-zero credit byte is a
// standalone credit return: a receiver with no reverse traffic still
// returns its credits, it just pays a tiny extra write for it.  A record
// word of all zeroes is invalid.

const (
	// RecordLenBits is the width of the length field in a record word.
	RecordLenBits = 24

	// RecordLenMask extracts the frame length from a record word.
	RecordLenMask = 1<<RecordLenBits - 1

	// MaxRecordCredits is the largest credit return one record word can
	// carry.  A sender owing more returns the rest on subsequent records.
	MaxRecordCredits = 1<<(32-RecordLenBits) - 1
)

// PackRecordWord builds the wire record word for a frame of size bytes
// carrying a piggybacked return of credits.  Size must be 0 (a standalone
// credit return) or a valid frame length ≤ MaxWireSize; credits must be in
// [0, MaxRecordCredits].  Both are the caller's contract — values are
// masked, not validated, because this sits on the zero-alloc hot path.
func PackRecordWord(size, credits int) uint32 {
	return uint32(size&RecordLenMask) | uint32(credits)<<RecordLenBits
}

// UnpackRecordWord splits a wire record word into the frame length and the
// piggybacked credit return.
func UnpackRecordWord(w uint32) (size, credits int) {
	return int(w & RecordLenMask), int(w >> RecordLenBits)
}
