package i2o

import "testing"

func TestRecordWordRoundTrip(t *testing.T) {
	cases := []struct{ size, credits int }{
		{0, 1},
		{0, MaxRecordCredits},
		{StandardHeaderSize, 0},
		{MaxWireSize, MaxRecordCredits},
		{276, 17},
	}
	for _, c := range cases {
		w := PackRecordWord(c.size, c.credits)
		size, credits := UnpackRecordWord(w)
		if size != c.size || credits != c.credits {
			t.Fatalf("pack(%d,%d) -> unpack = (%d,%d)", c.size, c.credits, size, credits)
		}
	}
}

func TestRecordWordFieldsDoNotCollide(t *testing.T) {
	// The largest legal frame must leave the credit byte untouched: a
	// MaxWireSize frame with zero credits decodes with zero credits.
	if MaxWireSize > RecordLenMask {
		t.Fatalf("MaxWireSize %d does not fit in %d length bits", MaxWireSize, RecordLenBits)
	}
	size, credits := UnpackRecordWord(PackRecordWord(MaxWireSize, 0))
	if size != MaxWireSize || credits != 0 {
		t.Fatalf("max frame decoded as (%d,%d)", size, credits)
	}
	// A bare length-prefix word written by the legacy unbatched path (no
	// credit bits set) decodes as a zero credit return.
	size, credits = UnpackRecordWord(1024)
	if size != 1024 || credits != 0 {
		t.Fatalf("legacy prefix decoded as (%d,%d)", size, credits)
	}
}
