// Package i2o implements the Intelligent I/O (I2O) message frame format and
// the addressing primitives that the XDAQ executive builds upon.
//
// Every interaction in the system — application requests, replies, timer
// expirations, executive control, even transport-internal signalling — is
// expressed as an I2O message frame (figure 5 of the paper): a fixed-size
// standard header, an optional private extension identified by function code
// 0xFF, and a payload.  Frames are addressed with 12-bit Target IDs (TiDs)
// that are unique within one I/O processor (IOP, i.e. one executive).
package i2o

import "fmt"

// TID is an I2O target identifier: a numeric address that is unique within
// one executive.  TiDs identify every module — applications, peer
// transports, the peer transport agent and the executive itself.  Only the
// low 12 bits are significant on the wire.
type TID uint16

// Reserved and conventional TiD values.
const (
	// TIDNone is the null address.  A frame targeted at TIDNone is invalid.
	TIDNone TID = 0

	// TIDExecutive is the conventional address of the executive itself on
	// every IOP.  The executive claims it at startup.
	TIDExecutive TID = 1

	// TIDMax is the largest encodable target identifier (12 bits).
	TIDMax TID = 0xFFF
)

// Valid reports whether t fits in the 12-bit wire representation and is not
// the null address.
func (t TID) Valid() bool { return t != TIDNone && t <= TIDMax }

func (t TID) String() string {
	switch t {
	case TIDNone:
		return "tid(none)"
	case TIDExecutive:
		return "tid(exec)"
	default:
		return fmt.Sprintf("tid(%#03x)", uint16(t))
	}
}

// NodeID identifies one IOP (one executive) in the distributed system.  The
// paper treats every communicating node in the processing cluster as an I2O
// IOP; node identifiers are assigned by the primary host at configuration
// time and are carried by peer transports, never inside the standard frame
// header (locality transparency: applications only ever see TiDs).
type NodeID uint32

// NodeNone is the zero NodeID, used for "this node" in local address table
// entries.
const NodeNone NodeID = 0

func (n NodeID) String() string { return fmt.Sprintf("node(%d)", uint32(n)) }

// Priority is a frame scheduling priority.  The I2O specification defines
// seven levels; 0 is the most urgent.  The executive keeps one FIFO per
// level and serves lower values first.
type Priority uint8

// NumPriorities is the number of scheduling levels defined by the I2O
// specification.
const NumPriorities = 7

// Standard priorities.  Applications may use any value in [0, NumPriorities).
const (
	PriorityUrgent  Priority = 0
	PriorityHigh    Priority = 1
	PriorityNormal  Priority = 3
	PriorityLow     Priority = 5
	PriorityBulk    Priority = 6
	PriorityDefault          = PriorityNormal
)

// Valid reports whether p is one of the seven defined levels.
func (p Priority) Valid() bool { return p < NumPriorities }

// Version is the frame format revision implemented by this package.  It is
// carried in the VersionOffset field of every frame.
const Version = 1

// OrgID identifies the organization defining a private function code, per
// the I2O private frame extension.  Applications built on the framework use
// OrgXDAQ unless they carry their own registered identifier.
type OrgID uint16

// OrgXDAQ is the organization identifier used for the framework's own
// private messages and, by default, for application device classes.
const OrgXDAQ OrgID = 0xCE12
