package i2o

import (
	"encoding/binary"
	"fmt"
)

// FailCode classifies a failure reported in a reply frame with FlagFail set.
type FailCode uint16

const (
	// FailUnknownTarget reports a frame addressed to a TiD with no
	// registered device and no proxy route.
	FailUnknownTarget FailCode = 1

	// FailUnknownFunction reports a function or private XFunction code the
	// target device does not implement and for which no default procedure
	// exists.
	FailUnknownFunction FailCode = 2

	// FailDeviceState reports a frame delivered to a device that is not in
	// a state to process it (quiesced, faulted, or being unplugged).
	FailDeviceState FailCode = 3

	// FailTransport reports a peer transport error while forwarding a
	// frame to a remote IOP.
	FailTransport FailCode = 4

	// FailResources reports buffer pool or queue exhaustion.
	FailResources FailCode = 5

	// FailBadFrame reports a malformed request payload.
	FailBadFrame FailCode = 6

	// FailAborted reports a handler terminated by the executive watchdog
	// or an explicit UtilAbort.
	FailAborted FailCode = 7

	// FailPeerDown reports a frame refused because the health monitor has
	// marked the target's node down.
	FailPeerDown FailCode = 8

	// FailApplication is the generic code for errors raised by user device
	// code.
	FailApplication FailCode = 100
)

var failNames = map[FailCode]string{
	FailUnknownTarget:   "unknown target",
	FailUnknownFunction: "unknown function",
	FailDeviceState:     "bad device state",
	FailTransport:       "transport failure",
	FailResources:       "resource exhaustion",
	FailBadFrame:        "malformed frame",
	FailAborted:         "aborted",
	FailPeerDown:        "peer down",
	FailApplication:     "application error",
}

func (c FailCode) String() string {
	if s, ok := failNames[c]; ok {
		return s
	}
	return fmt.Sprintf("FailCode(%d)", uint16(c))
}

// FailRecord is the payload of a failure reply: a code plus a human-readable
// detail string.
type FailRecord struct {
	Code   FailCode
	Detail string
}

// Error implements the error interface so failure replies can be surfaced
// directly to callers of request/reply helpers.
func (r *FailRecord) Error() string {
	if r.Detail == "" {
		return "i2o: " + r.Code.String()
	}
	return fmt.Sprintf("i2o: %v: %s", r.Code, r.Detail)
}

// EncodeFail renders the record as a frame payload: code (uint16), detail
// length (uint16), detail bytes.
func (r *FailRecord) EncodeFail() []byte {
	b := make([]byte, 4+len(r.Detail))
	binary.LittleEndian.PutUint16(b, uint16(r.Code))
	binary.LittleEndian.PutUint16(b[2:], uint16(len(r.Detail)))
	copy(b[4:], r.Detail)
	return b
}

// DecodeFail parses a failure payload written by EncodeFail.
func DecodeFail(payload []byte) (*FailRecord, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("%w: fail record of %d bytes", ErrTruncated, len(payload))
	}
	n := int(binary.LittleEndian.Uint16(payload[2:]))
	if len(payload) < 4+n {
		return nil, fmt.Errorf("%w: fail detail", ErrTruncated)
	}
	return &FailRecord{
		Code:   FailCode(binary.LittleEndian.Uint16(payload)),
		Detail: string(payload[4 : 4+n]),
	}, nil
}

// NewFailReply builds a failure reply to req carrying the given code and
// detail text.
func NewFailReply(req *Message, code FailCode, detail string) *Message {
	m := NewReply(req)
	m.Flags |= FlagFail
	m.Payload = (&FailRecord{Code: code, Detail: detail}).EncodeFail()
	return m
}

// ReplyError extracts the failure from a reply frame: nil if the reply does
// not carry FlagFail, the decoded FailRecord otherwise.
func ReplyError(reply *Message) error {
	if !reply.Flags.Has(FlagFail) {
		return nil
	}
	rec, err := DecodeFail(reply.Payload)
	if err != nil {
		return fmt.Errorf("i2o: undecodable fail reply: %w", err)
	}
	return rec
}
