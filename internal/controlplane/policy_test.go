package controlplane

import (
	"strings"
	"testing"
)

func TestLoadGood(t *testing.T) {
	p, err := Load("p.tcl", `
# comments and blank lines are fine
rule a {
    when {[metric x] > 1}
    for 2
    cooldown 5
    deadband 12.5
    do {dispatchers 4}
}
rule b {
    when {[rate y] > 0}
    do {log hello}
}`)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(p.Rules) != 2 {
		t.Fatalf("rules: got %d, want 2", len(p.Rules))
	}
	r := p.Rules[0]
	if r.Name != "a" || r.For != 2 || r.Cooldown != 5 || r.Deadband != 12.5 {
		t.Errorf("rule a miscompiled: %+v", r)
	}
	if p.Rules[1].For != 1 {
		t.Errorf("rule b: default For = %d, want 1", p.Rules[1].For)
	}
	if p.Hash == "" || p.Hash != hashSource(`
# comments and blank lines are fine
rule a {
    when {[metric x] > 1}
    for 2
    cooldown 5
    deadband 12.5
    do {dispatchers 4}
}
rule b {
    when {[rate y] > 0}
    do {log hello}
}`) {
		t.Errorf("hash not stable: %q", p.Hash)
	}
}

// Every structural and semantic mistake must fail at load, not at tick
// time — the dry run evaluates conditions and actions with metrics
// pinned to zero, so undefined variables and unknown commands surface
// here.
func TestLoadErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"empty", ``, "no rules"},
		{"missing-when", `rule a { do {log x} }`, "missing when"},
		{"missing-do", `rule a { when {1} }`, "missing do"},
		{"duplicate", `rule a { when {1}; do {log x} }
rule a { when {1}; do {log x} }`, "duplicate name"},
		{"nested", `rule a { when {1}; do {log x}; rule b { when {1}; do {log x} } }`, "do not nest"},
		{"bad-for", `rule a { when {1}; for 0; do {log x} }`, "for: want a tick count"},
		{"bad-cooldown", `rule a { when {1}; cooldown -1; do {log x} }`, "cooldown: want a tick count"},
		{"bad-deadband", `rule a { when {1}; deadband x; do {log x} }`, "deadband: want a percentage"},
		{"directive-outside-rule", `when {1}`, "only valid inside a rule"},
		{"undefined-var-in-when", `rule a { when {$nosuch > 1}; do {log x} }`, `no such variable "nosuch"`},
		{"undefined-var-in-do", `rule a { when {1}; do {dispatchers $nosuch} }`, `no such variable "nosuch"`},
		{"unknown-command-in-do", `rule a { when {1}; do {frobnicate 3} }`, `unknown command "frobnicate"`},
		{"bad-expr-in-when", `rule a { when {1 +}; do {log x} }`, "when"},
		{"bad-dispatchers", `rule a { when {1}; do {dispatchers zero} }`, "dispatchers: want a count"},
		{"bad-qos-priority", `rule a { when {1}; do {qos bulk nine 10} }`, "qos: bad priority"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load("p.tcl", tc.src)
			if err == nil {
				t.Fatalf("Load(%q) succeeded, want error containing %q", tc.src, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// Policies are ordinary tclish scripts: rules may be generated with
// loops and variables at load time (foreach, not for — for is the
// sustain directive inside rule bodies).  Braced clause bodies defer
// substitution to tick time, so generated bodies stick to what the
// controller provides.
func TestLoadGenerated(t *testing.T) {
	p, err := Load("p.tcl", `
foreach class {bulk batch} {
    rule throttle-$class {
        when {[metric q] > 64}
        do {log hot}
    }
}`)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(p.Rules) != 2 || p.Rules[0].Name != "throttle-bulk" || p.Rules[1].Name != "throttle-batch" {
		t.Fatalf("generated rules wrong: %+v", p.Rules)
	}
}

func TestMatchGlob(t *testing.T) {
	cases := []struct {
		pattern, name string
		want          bool
	}{
		{"exec.dispatch.busy", "exec.dispatch.busy", true},
		{"exec.dispatch.busy", "exec.dispatch.busy.max", false},
		{"pt.*.ring.full", "pt.gm.ring.full", true},
		{"pt.*.ring.full", "pt.tcp.ring.full", true},
		{"pt.*.ring.full", "pt.tcp.ring.empty", false},
		{"pt.*.ring.full", "pt.a.b.ring.full", false},
		{"exec.dispatch.*", "exec.dispatch.busy", true},
		{"exec.dispatch.*", "exec.dispatch.queue.depth", true},
		{"exec.dispatch.*", "exec.other", false},
		{"*", "anything", true},
		{"*.busy", "exec.busy", true},
		{"*.busy", "busy", false},
	}
	for _, tc := range cases {
		if got := matchGlob(tc.pattern, tc.name); got != tc.want {
			t.Errorf("matchGlob(%q, %q) = %v, want %v", tc.pattern, tc.name, got, tc.want)
		}
	}
}

func TestSum(t *testing.T) {
	s := Snapshot{
		"pt.gm.ring.full":  counter(1 << 62),
		"pt.tcp.ring.full": counter(1 << 62),
		"exec.q":           gauge(-5),
	}
	m, ok := sum(s, "pt.*.ring.full")
	if !ok || !m.IsUint || m.Uint != uint64(2)<<62 {
		t.Errorf("uint sum: got %+v ok=%v", m, ok)
	}
	m, ok = sum(s, "*")
	if !ok || m.IsUint {
		t.Errorf("mixed sum should fold to int64: %+v ok=%v", m, ok)
	}
	if _, ok := sum(s, "no.such"); ok {
		t.Errorf("sum on no match should report !ok")
	}
}
