package controlplane

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"xdaq/internal/tclish"
)

// Policies are tclish scripts.  The policy layer adds one structuring
// command, rule, whose body is evaluated with the directive commands
// below in scope:
//
//	rule scale-up {
//	    when     {[metric exec.dispatch.queue.depth] > 64}
//	    for      3
//	    cooldown 10
//	    deadband 10
//	    do       {dispatchers 8}
//	}
//
// when holds a condition expression evaluated once per node per tick;
// for is the sustain requirement (consecutive true ticks before the rule
// may fire, default 1); cooldown is the quiet period in ticks after a
// fire; deadband is a percentage band suppressing re-actuations whose
// numeric value is within that band of the last actuated value.  Inside
// rule bodies, for is this directive — use while or foreach to loop when
// generating rules programmatically.
//
// Condition and action scripts are stored raw (their words are braced)
// and evaluated per tick by the controller, which provides the metric,
// rate, and actuation commands plus the node and tick variables.  Load
// performs a dry run of every rule with metrics pinned to zero and
// actuations discarded, so a misspelled command or an undefined variable
// is a policy-load failure, not a runtime surprise.

// Rule is one compiled policy rule.
type Rule struct {
	Name     string
	When     string  // condition expression (tclish expr syntax)
	For      int     // consecutive true ticks required before firing
	Cooldown int     // quiet ticks after a fire
	Deadband float64 // percent band suppressing near-identical re-actuations
	Do       string  // action script
}

// Policy is a compiled rule set.
type Policy struct {
	// Name labels the policy in logs and the ExecPolicyGet report
	// (typically the file name).
	Name string

	// Hash fingerprints the source text so operators can tell which
	// revision a node is running.
	Hash string

	Rules []*Rule
}

// Load compiles a policy script.  All structural errors — bad directive
// arity, duplicate rule names, conditions or actions that do not
// evaluate — are reported here.
func Load(name, src string) (*Policy, error) {
	p := &Policy{Name: name, Hash: hashSource(src)}
	in := tclish.New(nil)

	var cur *Rule
	directive := func(name string, fn func(r *Rule, args []string) error) {
		in.Register(name, func(_ *tclish.Interp, args []string) (string, error) {
			if cur == nil {
				return "", fmt.Errorf("%s: only valid inside a rule body", name)
			}
			return "", fn(cur, args[1:])
		})
	}

	in.Register("rule", func(in *tclish.Interp, args []string) (string, error) {
		if len(args) != 3 {
			return "", fmt.Errorf("rule: want \"rule name {body}\", got %d args", len(args)-1)
		}
		if cur != nil {
			return "", fmt.Errorf("rule %q: rules do not nest", args[1])
		}
		for _, r := range p.Rules {
			if r.Name == args[1] {
				return "", fmt.Errorf("rule %q: duplicate name", args[1])
			}
		}
		cur = &Rule{Name: args[1], For: 1}
		defer func() { cur = nil }()
		if _, err := in.Eval(args[2]); err != nil {
			return "", fmt.Errorf("rule %q: %w", args[1], err)
		}
		if cur.When == "" {
			return "", fmt.Errorf("rule %q: missing when clause", args[1])
		}
		if cur.Do == "" {
			return "", fmt.Errorf("rule %q: missing do clause", args[1])
		}
		p.Rules = append(p.Rules, cur)
		return "", nil
	})

	directive("when", func(r *Rule, args []string) error {
		if len(args) != 1 {
			return fmt.Errorf("when: want one condition expression")
		}
		r.When = args[0]
		return nil
	})
	directive("do", func(r *Rule, args []string) error {
		if len(args) != 1 {
			return fmt.Errorf("do: want one action script")
		}
		r.Do = args[0]
		return nil
	})
	directive("for", func(r *Rule, args []string) error {
		n, err := directiveInt("for", args)
		if err != nil || n < 1 {
			return fmt.Errorf("for: want a tick count >= 1")
		}
		r.For = n
		return nil
	})
	directive("cooldown", func(r *Rule, args []string) error {
		n, err := directiveInt("cooldown", args)
		if err != nil || n < 0 {
			return fmt.Errorf("cooldown: want a tick count >= 0")
		}
		r.Cooldown = n
		return nil
	})
	directive("deadband", func(r *Rule, args []string) error {
		if len(args) != 1 {
			return fmt.Errorf("deadband: want one percentage")
		}
		f, err := strconv.ParseFloat(args[0], 64)
		if err != nil || f < 0 {
			return fmt.Errorf("deadband: want a percentage >= 0, got %q", args[0])
		}
		r.Deadband = f
		return nil
	})

	if _, err := in.Eval(src); err != nil {
		return nil, fmt.Errorf("controlplane: policy %s: %w", name, err)
	}
	if len(p.Rules) == 0 {
		return nil, fmt.Errorf("controlplane: policy %s: no rules", name)
	}
	if err := p.validate(); err != nil {
		return nil, fmt.Errorf("controlplane: policy %s: %w", name, err)
	}
	return p, nil
}

// validate dry-runs every rule's condition and action script against a
// zeroed metric view with actuations discarded, surfacing undefined
// variables and unknown commands as load failures.
func (p *Policy) validate() error {
	ctx := &evalCtx{validate: true}
	in := tclish.New(nil)
	bindEval(in, ctx)
	for _, r := range p.Rules {
		ctx.setVars(in)
		if _, err := in.Eval("expr {" + r.When + "}"); err != nil {
			return fmt.Errorf("rule %q: when: %w", r.Name, err)
		}
		ctx.acts = ctx.acts[:0]
		if _, err := in.Eval(r.Do); err != nil {
			return fmt.Errorf("rule %q: do: %w", r.Name, err)
		}
	}
	return nil
}

func directiveInt(name string, args []string) (int, error) {
	if len(args) != 1 {
		return 0, fmt.Errorf("%s: want one argument", name)
	}
	n, err := strconv.Atoi(args[0])
	if err != nil {
		return 0, fmt.Errorf("%s: %q is not an integer", name, args[0])
	}
	return n, nil
}

func hashSource(src string) string {
	h := fnv.New64a()
	h.Write([]byte(src))
	return fmt.Sprintf("%016x", h.Sum64())
}

// matchGlob reports whether a flattened metric name matches a selector.
// Selectors are '.'-separated: a "*" segment matches exactly one name
// segment, and a trailing "*" absorbs the rest of the name, so
// "pt.*.ring.full" matches pt.gm.ring.full and "exec.dispatch.*" matches
// the whole dispatch subtree.
func matchGlob(pattern, name string) bool {
	if pattern == name {
		return true
	}
	if !strings.ContainsRune(pattern, '*') {
		return false
	}
	ps := strings.Split(pattern, ".")
	ns := strings.Split(name, ".")
	for i, seg := range ps {
		if seg == "*" && i == len(ps)-1 {
			return len(ns) >= len(ps)
		}
		if i >= len(ns) {
			return false
		}
		if seg != "*" && seg != ns[i] {
			return false
		}
	}
	return len(ns) == len(ps)
}
