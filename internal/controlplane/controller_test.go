package controlplane

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"xdaq/internal/i2o"
)

// The controller is clock-free: ticks are Step calls and snapshots are
// whatever the source scripts.  These tests drive every rule shape with
// exact metric series and assert the decision log and actuation
// sequence verbatim — the determinism the chaos convergence checker and
// the ExecPolicyGet e2e test build on.

// fakeSource replays a scripted per-node series; entry i answers the
// i-th Scrape of that node.  An error entry fails that scrape.
type fakeSource struct {
	order []i2o.NodeID
	data  map[i2o.NodeID][]any // Snapshot or error
	calls map[i2o.NodeID]int
}

func (s *fakeSource) Nodes() []i2o.NodeID { return s.order }

func (s *fakeSource) Scrape(n i2o.NodeID) (Snapshot, error) {
	if s.calls == nil {
		s.calls = make(map[i2o.NodeID]int)
	}
	i := s.calls[n]
	s.calls[n]++
	seq := s.data[n]
	if i >= len(seq) {
		if len(seq) == 0 {
			return Snapshot{}, nil
		}
		i = len(seq) - 1 // hold the last sample
	}
	switch v := seq[i].(type) {
	case Snapshot:
		return v, nil
	case error:
		return nil, v
	}
	return Snapshot{}, nil
}

// fakeActuator records every call in order.
type fakeActuator struct {
	calls []string
	err   error
}

func (a *fakeActuator) SetDispatchers(n i2o.NodeID, w int) error {
	a.calls = append(a.calls, fmt.Sprintf("dispatchers n%d=%d", n, w))
	return a.err
}

func (a *fakeActuator) SetParam(n i2o.NodeID, class string, inst int, key string, v any) error {
	a.calls = append(a.calls, fmt.Sprintf("param n%d %s/%d %s=%v", n, class, inst, key, v))
	return a.err
}

func (a *fakeActuator) Failover(n i2o.NodeID, route string) error {
	a.calls = append(a.calls, fmt.Sprintf("failover n%d->%s", n, route))
	return a.err
}

func gauge(v int64) Metric   { return Metric{Int: v} }
func counter(v uint64) Metric { return Metric{Uint: v, IsUint: true} }

func build(t *testing.T, policy string, src Source, act Actuator, logCap int) *Controller {
	t.Helper()
	pol, err := Load("test.tcl", policy)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	c, err := New(Config{Policy: pol, Source: src, Actuator: act, LogCap: logCap})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func wantLog(t *testing.T, c *Controller, want []string) {
	t.Helper()
	got := c.Decisions()
	if len(got) != len(want) {
		t.Fatalf("decision log: got %d entries, want %d\ngot: %v", len(got), len(want), got)
	}
	for i, d := range got {
		if d.String() != want[i] {
			t.Errorf("decision[%d]:\n got %s\nwant %s", i, d, want[i])
		}
	}
}

func wantCalls(t *testing.T, a *fakeActuator, want []string) {
	t.Helper()
	if len(a.calls) != len(want) {
		t.Fatalf("actuations: got %v, want %v", a.calls, want)
	}
	for i := range want {
		if a.calls[i] != want[i] {
			t.Errorf("actuation[%d]: got %q, want %q", i, a.calls[i], want[i])
		}
	}
}

// TestSustainThenFire drives the canonical scale-up rule: the condition
// must hold for 3 consecutive ticks before the actuation lands, and the
// log records exactly one actuated decision.
func TestSustainThenFire(t *testing.T) {
	src := &fakeSource{
		order: []i2o.NodeID{1},
		data: map[i2o.NodeID][]any{1: {
			Snapshot{"exec.dispatch.queue.depth": gauge(10)},
			Snapshot{"exec.dispatch.queue.depth": gauge(80)},
			Snapshot{"exec.dispatch.queue.depth": gauge(90)},
			Snapshot{"exec.dispatch.queue.depth": gauge(85)},
		}},
	}
	act := &fakeActuator{}
	c := build(t, `
rule scale-up {
    when {[metric exec.dispatch.queue.depth] > 64}
    for 3
    do {dispatchers 8}
}`, src, act, 0)

	for i := 0; i < 4; i++ {
		c.Step()
	}
	wantCalls(t, act, []string{"dispatchers n1=8"})
	wantLog(t, c, []string{
		"seq=1 tick=4 node=1 rule=scale-up action={dispatchers 8} outcome=actuated",
	})
}

// TestFlappingNeverFires alternates the metric across the threshold
// every tick: with for 2 the rule never sustains, so a flapping input
// produces zero actuations and zero decisions.
func TestFlappingNeverFires(t *testing.T) {
	var series []any
	for i := 0; i < 10; i++ {
		v := int64(10)
		if i%2 == 1 {
			v = 90
		}
		series = append(series, Snapshot{"q": gauge(v)})
	}
	src := &fakeSource{order: []i2o.NodeID{1}, data: map[i2o.NodeID][]any{1: series}}
	act := &fakeActuator{}
	c := build(t, `
rule flap {
    when {[metric q] > 64}
    for 2
    do {dispatchers 8}
}`, src, act, 0)

	for i := 0; i < 10; i++ {
		c.Step()
	}
	wantCalls(t, act, nil)
	wantLog(t, c, nil)
}

// TestCooldownAndDeadband holds the condition true throughout: the rule
// fires once, sits out the cooldown (logged), then re-fires into the
// deadband because the target value has not changed.
func TestCooldownAndDeadband(t *testing.T) {
	src := &fakeSource{
		order: []i2o.NodeID{1},
		data:  map[i2o.NodeID][]any{1: {Snapshot{"q": gauge(100)}}},
	}
	act := &fakeActuator{}
	c := build(t, `
rule hot {
    when {[metric q] > 64}
    cooldown 2
    do {dispatchers 4}
}`, src, act, 0)

	for i := 0; i < 5; i++ {
		c.Step()
	}
	// tick 1: fires.  ticks 2,3: within cooldown (lastFire=1, delta<=2).
	// tick 4: cooldown expired, do runs, dispatchers 4 == last actuated
	// value -> deadband.  tick 5: back in cooldown (lastFire=4).
	wantCalls(t, act, []string{"dispatchers n1=4"})
	wantLog(t, c, []string{
		"seq=1 tick=1 node=1 rule=hot action={dispatchers 4} outcome=actuated",
		"seq=2 tick=2 node=1 rule=hot action={-} outcome=cooldown",
		"seq=3 tick=3 node=1 rule=hot action={-} outcome=cooldown",
		"seq=4 tick=4 node=1 rule=hot action={dispatchers 4} outcome=deadband",
		"seq=5 tick=5 node=1 rule=hot action={-} outcome=cooldown",
	})
}

// TestDeadbandPercent computes the actuation value from the metric: a
// 5% move stays inside the 10% band and is suppressed, a 100% move
// actuates.
func TestDeadbandPercent(t *testing.T) {
	src := &fakeSource{
		order: []i2o.NodeID{1},
		data: map[i2o.NodeID][]any{1: {
			Snapshot{"x": gauge(100)},
			Snapshot{"x": gauge(105)},
			Snapshot{"x": gauge(200)},
		}},
	}
	act := &fakeActuator{}
	c := build(t, `
rule tune {
    when {[metric x] > 0}
    deadband 10
    do {param pt.tcp 0 threshold [metric x]}
}`, src, act, 0)

	for i := 0; i < 3; i++ {
		c.Step()
	}
	wantCalls(t, act, []string{
		"param n1 pt.tcp/0 threshold=100",
		"param n1 pt.tcp/0 threshold=200",
	})
	wantLog(t, c, []string{
		"seq=1 tick=1 node=1 rule=tune action={param pt.tcp 0 threshold 100} outcome=actuated",
		"seq=2 tick=2 node=1 rule=tune action={param pt.tcp 0 threshold 105} outcome=deadband",
		"seq=3 tick=3 node=1 rule=tune action={param pt.tcp 0 threshold 200} outcome=actuated",
	})
}

// TestRateRule triggers on the per-tick delta of a counter, not its
// absolute value; the first tick has no previous snapshot and reads 0.
func TestRateRule(t *testing.T) {
	src := &fakeSource{
		order: []i2o.NodeID{1},
		data: map[i2o.NodeID][]any{1: {
			Snapshot{"pt.tcp.tx.errors": counter(1000)},
			Snapshot{"pt.tcp.tx.errors": counter(1002)},
			Snapshot{"pt.tcp.tx.errors": counter(1500)},
		}},
	}
	act := &fakeActuator{}
	c := build(t, `
rule failover {
    when {[rate pt.tcp.tx.errors] > 100}
    do {failover tcp}
}`, src, act, 0)

	for i := 0; i < 3; i++ {
		c.Step()
	}
	wantCalls(t, act, []string{"failover n1->tcp"})
	wantLog(t, c, []string{
		"seq=1 tick=3 node=1 rule=failover action={failover tcp} outcome=actuated",
	})
}

// TestGlobSumUint64 sums a wildcard selector over raw uint64 counters
// whose values are far above 2^53: the comparison must stay exact, so a
// one-count difference around a huge threshold decides the rule.
func TestGlobSumUint64(t *testing.T) {
	const huge = uint64(1) << 62
	src := &fakeSource{
		order: []i2o.NodeID{1},
		data: map[i2o.NodeID][]any{1: {
			Snapshot{"pt.gm.ring.full": counter(huge), "pt.tcp.ring.full": counter(huge - 1)},
			Snapshot{"pt.gm.ring.full": counter(huge), "pt.tcp.ring.full": counter(huge)},
		}},
	}
	act := &fakeActuator{}
	c := build(t, fmt.Sprintf(`
rule rings {
    when {[metric pt.*.ring.full] >= %d}
    do {log saturated}
}`, uint64(2)<<62), src, act, 0)

	c.Step()
	c.Step()
	wantCalls(t, act, nil)
	wantLog(t, c, []string{
		"seq=1 tick=2 node=1 rule=rings action={log saturated} outcome=noted",
	})
}

// TestQosAction compiles the qos shorthand into the pta parameter write.
func TestQosAction(t *testing.T) {
	src := &fakeSource{
		order: []i2o.NodeID{1},
		data:  map[i2o.NodeID][]any{1: {Snapshot{"q": gauge(100)}}},
	}
	act := &fakeActuator{}
	c := build(t, `
rule throttle {
    when {[metric q] > 64}
    do {qos bulk 6 100 200 true}
}`, src, act, 0)

	c.Step()
	wantCalls(t, act, []string{"param n1 pta/0 qos.bulk=6 100 200 true"})
	wantLog(t, c, []string{
		"seq=1 tick=1 node=1 rule=throttle action={qos bulk 6 100 200 true} outcome=actuated",
	})
}

// TestScrapeErrorSkipsNode asserts a failed scrape neither evaluates nor
// resets sustain: the condition held on ticks 1-2, the scrape fails on
// tick 3, and the rule still fires on tick 4 (for 3 counts held ticks,
// not wall ticks).
func TestScrapeErrorSkipsNode(t *testing.T) {
	src := &fakeSource{
		order: []i2o.NodeID{1},
		data: map[i2o.NodeID][]any{1: {
			Snapshot{"q": gauge(100)},
			Snapshot{"q": gauge(100)},
			errors.New("node unreachable"),
			Snapshot{"q": gauge(100)},
		}},
	}
	act := &fakeActuator{}
	c := build(t, `
rule hot {
    when {[metric q] > 64}
    for 3
    do {dispatchers 2}
}`, src, act, 0)

	for i := 0; i < 4; i++ {
		c.Step()
	}
	wantCalls(t, act, []string{"dispatchers n1=2"})
	wantLog(t, c, []string{
		"seq=1 tick=4 node=1 rule=hot action={dispatchers 2} outcome=actuated",
	})
}

// TestNodesEvaluatedSorted feeds the node list in reverse order and
// asserts decisions land sorted by node id within a tick.
func TestNodesEvaluatedSorted(t *testing.T) {
	hot := Snapshot{"q": gauge(100)}
	src := &fakeSource{
		order: []i2o.NodeID{3, 1, 2},
		data:  map[i2o.NodeID][]any{1: {hot}, 2: {hot}, 3: {hot}},
	}
	act := &fakeActuator{}
	c := build(t, `
rule hot {
    when {[metric q] > 64}
    do {dispatchers 2}
}`, src, act, 0)

	c.Step()
	wantCalls(t, act, []string{"dispatchers n1=2", "dispatchers n2=2", "dispatchers n3=2"})
}

// TestActuatorErrorLogged records a failing actuation as an error
// outcome and does not remember the value, so the next fire retries it.
func TestActuatorErrorLogged(t *testing.T) {
	src := &fakeSource{
		order: []i2o.NodeID{1},
		data:  map[i2o.NodeID][]any{1: {Snapshot{"q": gauge(100)}}},
	}
	act := &fakeActuator{err: errors.New("route down")}
	c := build(t, `
rule hot {
    when {[metric q] > 64}
    do {dispatchers 2}
}`, src, act, 0)

	c.Step()
	act.err = nil
	c.Step()
	wantLog(t, c, []string{
		"seq=1 tick=1 node=1 rule=hot action={dispatchers 2} outcome=error: route down",
		"seq=2 tick=2 node=1 rule=hot action={dispatchers 2} outcome=actuated",
	})
}

// TestDeterminism runs the same scripted series through two independent
// controllers and requires bit-identical decision logs — the pure
// function property the chaos convergence checker relies on.
func TestDeterminism(t *testing.T) {
	mkSrc := func() *fakeSource {
		var series []any
		for i := 0; i < 20; i++ {
			series = append(series, Snapshot{
				"q":    gauge(int64(i * 13 % 97)),
				"errs": counter(uint64(i * i)),
			})
		}
		return &fakeSource{order: []i2o.NodeID{2, 1}, data: map[i2o.NodeID][]any{1: series, 2: series}}
	}
	policy := `
rule hot {
    when {[metric q] > 50}
    for 2
    cooldown 3
    do {dispatchers [expr {[metric q] / 10}]}
}
rule errs {
    when {[rate errs] > 30}
    do {log spike}
}`
	run := func() []string {
		c := build(t, policy, mkSrc(), &fakeActuator{}, 0)
		for i := 0; i < 20; i++ {
			c.Step()
		}
		var out []string
		for _, d := range c.Decisions() {
			out = append(out, d.String())
		}
		return out
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatalf("series produced no decisions; test is vacuous")
	}
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Errorf("two identical runs diverged:\n%v\nvs\n%v", a, b)
	}
}

// TestDecisionLogRing bounds the log and keeps sequence numbers
// monotonic across eviction.
func TestDecisionLogRing(t *testing.T) {
	src := &fakeSource{
		order: []i2o.NodeID{1},
		data:  map[i2o.NodeID][]any{1: {Snapshot{"q": gauge(100)}}},
	}
	c := build(t, `
rule hot {
    when {[metric q] > 64}
    do {log tick}
}`, src, &fakeActuator{}, 3)

	for i := 0; i < 5; i++ {
		c.Step()
	}
	wantLog(t, c, []string{
		"seq=3 tick=3 node=1 rule=hot action={log tick} outcome=noted",
		"seq=4 tick=4 node=1 rule=hot action={log tick} outcome=noted",
		"seq=5 tick=5 node=1 rule=hot action={log tick} outcome=noted",
	})
}

// TestTickAndNodeVars exposes $node and $tick to conditions.
func TestTickAndNodeVars(t *testing.T) {
	hot := Snapshot{"q": gauge(100)}
	src := &fakeSource{
		order: []i2o.NodeID{1, 2},
		data:  map[i2o.NodeID][]any{1: {hot}, 2: {hot}},
	}
	act := &fakeActuator{}
	c := build(t, `
rule only-node-2 {
    when {$node == 2 && $tick >= 2}
    do {dispatchers 3}
}`, src, act, 0)

	c.Step()
	c.Step()
	wantCalls(t, act, []string{"dispatchers n2=3"})
	wantLog(t, c, []string{
		"seq=1 tick=2 node=2 rule=only-node-2 action={dispatchers 3} outcome=actuated",
	})
}
