// The autopilot binds the deterministic controller to a live executive;
// this file exercises that binding on a real two-node loopback cluster —
// local and remote scrapes, every actuation channel, the ExecPolicyGet
// report, and teardown — from outside the package, the way xdaqd wires
// it.  The decision core itself is covered by the in-package tables in
// controller_test.go.
package controlplane_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"xdaq"
	"xdaq/internal/controlplane"
	"xdaq/internal/device"
	"xdaq/internal/i2o"
)

func waitFor(d time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return cond()
}

// policyGet scrapes a node's own ExecPolicyGet report, wire-identical to
// what a cluster controller would request.
func policyGet(n *xdaq.Node) (map[string]any, error) {
	target, err := n.Exec.Resolve("executive", 0, i2o.NodeNone)
	if err != nil {
		return nil, err
	}
	rep, err := n.Exec.Request(&i2o.Message{
		Priority: i2o.PriorityHigh, Target: target, Initiator: i2o.TIDExecutive,
		Function: i2o.ExecPolicyGet,
	})
	if err != nil {
		return nil, err
	}
	defer rep.Release()
	params, err := i2o.DecodeParams(rep.Payload)
	if err != nil {
		return nil, err
	}
	byKey := make(map[string]any, len(params))
	for _, p := range params {
		byKey[p.Key] = p.Value
	}
	return byKey, nil
}

// TestAutopilotActuatesCluster runs the full device on a two-node
// loopback cluster: the pilot on node 1 watches both members, its rules
// fire once, and every actuation channel — dispatcher rescale, device
// parameter write, QoS install, failover — must land both locally and
// across the fabric.
func TestAutopilotActuatesCluster(t *testing.T) {
	pilot, err := xdaq.NewNode(xdaq.NodeOptions{
		Name: "pilot", Node: 1, Logf: func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pilot.Close()
	worker, err := xdaq.NewNode(xdaq.NodeOptions{
		Name: "worker", Node: 2, Logf: func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer worker.Close()
	if err := xdaq.Connect(xdaq.Loopback(), xdaq.Nodes(pilot, worker)); err != nil {
		t.Fatal(err)
	}
	nodes := []*xdaq.Node{pilot, worker}
	knobs := make(map[string]*device.Device, len(nodes))
	for _, n := range nodes {
		knob := device.New("knob", 0)
		if _, err := n.Exec.Plug(knob); err != nil {
			t.Fatal(err)
		}
		knobs[n.Exec.Name()] = knob
	}

	// Each rule fires exactly once per matching node: the condition holds
	// for the first 20 ticks (wide enough that a slow first remote scrape
	// cannot miss the window) and the cooldown outlasts the test.  After
	// tick 20 the conditions go false, so the decision log is static from
	// then on.  drain fires for node 1 only — the failover fan-out then
	// exercises the remote ExecSysTabSet path (node 2 is the only other
	// member).
	pol, err := controlplane.Load("ap.tcl", `
rule tune {
    when {$tick <= 20}
    cooldown 1000000
    do {dispatchers 3; param knob 0 level 7; qos bulk 6 100 64 true; log tuned}
}
rule drain {
    when {$tick <= 20 && $node == 1}
    cooldown 1000000
    do {failover pt.loopback}
}`)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := controlplane.NewAutopilot(controlplane.AutopilotConfig{
		Exec:     pilot.Exec,
		Policy:   pol,
		Interval: 2 * time.Millisecond,
		Nodes:    func() []i2o.NodeID { return []i2o.NodeID{1, 2} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ap.Close()

	// Every actuation lands: the rescale on both executives, the knob
	// parameter through UtilParamsSet, the QoS class at both PTAs.
	for _, n := range nodes {
		n := n
		if !waitFor(5*time.Second, func() bool { return n.Exec.Dispatchers() == 3 }) {
			t.Fatalf("node %s: dispatchers = %d, want 3\ndecisions: %v",
				n.Exec.Name(), n.Exec.Dispatchers(), ap.Controller().Decisions())
		}
		if !waitFor(5*time.Second, func() bool {
			classes := n.Agent.QoS()
			return len(classes) == 1 && classes[0].Name == "bulk" &&
				classes[0].Priority == i2o.PriorityBulk && classes[0].Rate == 100 &&
				classes[0].Burst == 64 && classes[0].Queue
		}) {
			t.Fatalf("node %s: qos classes %v", n.Exec.Name(), n.Agent.QoS())
		}
	}
	for _, n := range nodes {
		knob := knobs[n.Exec.Name()]
		if !waitFor(5*time.Second, func() bool { return knob.Params().Int("level", -1) == 7 }) {
			t.Fatalf("node %s: knob level = %d, want 7", n.Exec.Name(), knob.Params().Int("level", -1))
		}
	}

	// Past tick 20 every condition is false: the decision log is frozen,
	// holding one actuated entry per channel per node and the failover
	// for node 1 exactly once.
	if !waitFor(5*time.Second, func() bool { return ap.Controller().Tick() > 20 }) {
		t.Fatal("controller never reached tick 21")
	}
	count := func(substr string) int {
		n := 0
		for _, d := range ap.Controller().Decisions() {
			if d.Outcome == "actuated" && strings.Contains(d.Action, substr) {
				n++
			}
		}
		return n
	}
	if got := count("dispatchers 3"); got != 2 {
		t.Errorf("dispatcher actuations = %d, want 2 (one per node)", got)
	}
	if got := count("failover pt.loopback"); got != 1 {
		t.Errorf("failover actuations = %d, want 1", got)
	}

	// The report is live on ExecPolicyGet while the autopilot runs...
	byKey, err := policyGet(pilot)
	if err != nil {
		t.Fatal(err)
	}
	if byKey["autopilot"] != "on" || byKey["policy"] != "ap.tcl" || byKey["hash"] != pol.Hash {
		t.Fatalf("report identity %v", byKey)
	}
	if byKey["rules"] != int64(2) {
		t.Fatalf("report rules %v", byKey["rules"])
	}
	local := ap.Controller().Decisions()
	if len(local) == 0 {
		t.Fatal("empty decision log")
	}
	for _, d := range local {
		key := fmt.Sprintf("decision.%08d", d.Seq)
		if got := byKey[key]; got != d.String() {
			t.Errorf("report %s = %q, local log says %q", key, got, d.String())
		}
	}

	// ...and withdrawn after Close: the node answers autopilot=off, the
	// actuated state stays in force, and a second Close is a no-op.
	ap.Close()
	ap.Close()
	byKey, err = policyGet(pilot)
	if err != nil {
		t.Fatal(err)
	}
	if byKey["autopilot"] != "off" {
		t.Fatalf("after Close: %v", byKey)
	}
	if got := pilot.Exec.Dispatchers(); got != 3 {
		t.Fatalf("Close rolled back the rescale: dispatchers = %d", got)
	}
}

// TestNewAutopilotValidation covers the assembly errors: a missing
// executive or policy must be refused before any goroutine starts.
func TestNewAutopilotValidation(t *testing.T) {
	if _, err := controlplane.NewAutopilot(controlplane.AutopilotConfig{}); err == nil {
		t.Error("nil executive accepted")
	}
	n, err := xdaq.NewNode(xdaq.NodeOptions{
		Name: "lone", Node: 9, Logf: func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if _, err := controlplane.NewAutopilot(controlplane.AutopilotConfig{Exec: n.Exec}); err == nil {
		t.Error("nil policy accepted")
	}
}

// stubSource lets the external package probe New's collaborator checks.
type stubSource struct{}

func (stubSource) Nodes() []i2o.NodeID                              { return nil }
func (stubSource) Scrape(i2o.NodeID) (controlplane.Snapshot, error) { return nil, nil }

func TestNewValidation(t *testing.T) {
	pol, err := controlplane.Load("v.tcl", `rule r { when {1}; do {log x} }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := controlplane.New(controlplane.Config{}); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := controlplane.New(controlplane.Config{Policy: pol}); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := controlplane.New(controlplane.Config{Policy: pol, Source: stubSource{}}); err == nil {
		t.Error("nil actuator accepted")
	}
}

// TestSnapshotFromParams keeps the ExecMetricsGet decode honest: uint64
// counters stay unsigned, int64 gauges stay signed, and non-numeric rows
// are dropped.
func TestSnapshotFromParams(t *testing.T) {
	s := controlplane.SnapshotFromParams([]i2o.Param{
		{Key: "c", Value: uint64(1) << 63},
		{Key: "g", Value: int64(-4)},
		{Key: "label", Value: "text"},
	})
	if len(s) != 2 {
		t.Fatalf("snapshot %v", s)
	}
	if m := s["c"]; !m.IsUint || m.Uint != uint64(1)<<63 {
		t.Errorf("counter row %+v", m)
	}
	if m := s["g"]; m.IsUint || m.Int != -4 {
		t.Errorf("gauge row %+v", m)
	}
}

// TestLoadDirectiveArity covers the evaluation-command arity errors the
// in-package tables skip: every one must be a load failure, not a
// runtime surprise.
func TestLoadDirectiveArity(t *testing.T) {
	cases := []struct{ name, src string }{
		{"for-arity", `rule r { when {1}; for 1 2; do {log x} }`},
		{"metric-arity", `rule r { when {[metric a b] > 0}; do {log x} }`},
		{"rate-arity", `rule r { when {[rate] > 0}; do {log x} }`},
		{"param-arity", `rule r { when {1}; do {param knob level 7} }`},
		{"param-instance", `rule r { when {1}; do {param knob x level 7} }`},
		{"failover-arity", `rule r { when {1}; do {failover} }`},
		{"log-arity", `rule r { when {1}; do {log} }`},
		{"qos-rate", `rule r { when {1}; do {qos bulk 6 fast} }`},
		{"dispatchers-arity", `rule r { when {1}; do {dispatchers} }`},
	}
	for _, c := range cases {
		if _, err := controlplane.Load(c.name, c.src); err == nil {
			t.Errorf("%s: loaded", c.name)
		}
	}
}
