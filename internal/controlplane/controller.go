package controlplane

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"xdaq/internal/i2o"
	"xdaq/internal/metrics"
	"xdaq/internal/tclish"
)

// Config assembles a Controller.  Source and Actuator are injected so
// the decision core runs identically against live I2O scrapes and
// against scripted test series.
type Config struct {
	Policy   *Policy
	Source   Source
	Actuator Actuator

	// Registry receives the cp.* metrics; nil allocates a private one.
	Registry *metrics.Registry

	// LogCap bounds the decision log ring; 0 means 256.
	LogCap int
}

// Controller is the deterministic decision core: each Step scrapes every
// node, evaluates every rule against the snapshots, and actuates — or
// suppresses, with hysteresis — what the rules decide.  It holds no
// clock and starts no goroutines; ticks are whatever the caller makes
// them (the Autopilot wraps Step in a real ticker, tests call it
// directly).
type Controller struct {
	mu  sync.Mutex
	pol *Policy
	src Source
	act Actuator
	in  *tclish.Interp
	ctx evalCtx

	tick   uint64
	seq    uint64
	logCap int
	logLo  int // ring start within log
	log    []Decision
	prev   map[i2o.NodeID]Snapshot
	state  map[stateKey]*ruleState

	mTicks      *metrics.Counter
	mScrapes    *metrics.Counter
	mScrapeErrs *metrics.Counter
	mDecisions  *metrics.Counter
	mActuations *metrics.Counter
	mCooldown   *metrics.Counter
	mDeadband   *metrics.Counter
	mErrors     *metrics.Counter
}

type stateKey struct {
	rule string
	node i2o.NodeID
}

// ruleState is the per-(rule, node) hysteresis memory.
type ruleState struct {
	sustained int    // consecutive ticks the condition has held
	lastFire  uint64 // tick the do script last ran
	fired     bool   // lastFire is meaningful
	lastNum   map[string]float64
	lastText  map[string]string
}

// New builds a controller.  The policy must already be loaded, so the
// only errors here are missing collaborators.
func New(cfg Config) (*Controller, error) {
	if cfg.Policy == nil {
		return nil, fmt.Errorf("controlplane: nil policy")
	}
	if cfg.Source == nil {
		return nil, fmt.Errorf("controlplane: nil source")
	}
	if cfg.Actuator == nil {
		return nil, fmt.Errorf("controlplane: nil actuator")
	}
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	cap := cfg.LogCap
	if cap <= 0 {
		cap = 256
	}
	c := &Controller{
		pol:    cfg.Policy,
		src:    cfg.Source,
		act:    cfg.Actuator,
		in:     tclish.New(nil),
		logCap: cap,
		prev:   make(map[i2o.NodeID]Snapshot),
		state:  make(map[stateKey]*ruleState),

		mTicks:      reg.Counter("cp.ticks"),
		mScrapes:    reg.Counter("cp.scrapes"),
		mScrapeErrs: reg.Counter("cp.scrape.errors"),
		mDecisions:  reg.Counter("cp.decisions"),
		mActuations: reg.Counter("cp.actuations"),
		mCooldown:   reg.Counter("cp.suppressed.cooldown"),
		mDeadband:   reg.Counter("cp.suppressed.deadband"),
		mErrors:     reg.Counter("cp.errors"),
	}
	reg.Func("cp.rules", func() int64 { return int64(len(cfg.Policy.Rules)) })
	bindEval(c.in, &c.ctx)
	return c, nil
}

// Policy returns the loaded policy.
func (c *Controller) Policy() *Policy { return c.pol }

// Tick returns the number of completed steps.
func (c *Controller) Tick() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tick
}

// Decisions copies out the decision log, oldest first.
func (c *Controller) Decisions() []Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Decision, len(c.log))
	for i := range c.log {
		out[i] = c.log[(c.logLo+i)%len(c.log)]
	}
	return out
}

// Step runs one control tick: scrape every node, evaluate every rule,
// actuate.  Nodes are visited in sorted order and rules in policy order,
// so the decision sequence is a pure function of the scraped series.
func (c *Controller) Step() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tick++
	c.mTicks.Inc()

	nodes := append([]i2o.NodeID(nil), c.src.Nodes()...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	for _, node := range nodes {
		snap, err := c.src.Scrape(node)
		c.mScrapes.Inc()
		if err != nil {
			// A node that cannot be scraped is not evaluated this tick:
			// rules neither sustain nor reset on missing data, and the
			// previous snapshot is kept so rate calculations resume
			// cleanly when the node answers again.
			c.mScrapeErrs.Inc()
			continue
		}
		c.ctx.node = node
		c.ctx.snap = snap
		c.ctx.prev = c.prev[node]
		c.ctx.tick = c.tick
		for _, r := range c.pol.Rules {
			c.evalRule(r, node)
		}
		c.prev[node] = snap
	}
}

// evalRule evaluates one rule against the current evalCtx node.
func (c *Controller) evalRule(r *Rule, node i2o.NodeID) {
	st := c.state[stateKey{r.Name, node}]
	if st == nil {
		st = &ruleState{lastNum: make(map[string]float64), lastText: make(map[string]string)}
		c.state[stateKey{r.Name, node}] = st
	}

	c.ctx.setVars(c.in)
	res, err := c.in.Eval("expr {" + r.When + "}")
	if err != nil {
		c.mErrors.Inc()
		c.record(node, r.Name, "when", "error: "+err.Error())
		return
	}
	if !truthy(res) {
		st.sustained = 0
		return
	}
	st.sustained++
	if st.sustained < r.For {
		return
	}
	if st.fired && c.tick-st.lastFire <= uint64(r.Cooldown) {
		c.mCooldown.Inc()
		c.record(node, r.Name, "-", "cooldown")
		return
	}

	c.ctx.acts = c.ctx.acts[:0]
	_, err = c.in.Eval(r.Do)
	acts := c.ctx.acts
	// The do script ran: the rule has fired for hysteresis purposes even
	// if every individual actuation is deadband-suppressed, so the
	// condition must sustain through a fresh for-window (after cooldown)
	// before the rule runs again.
	st.fired = true
	st.lastFire = c.tick
	st.sustained = 0
	if err != nil {
		c.mErrors.Inc()
		c.record(node, r.Name, "do", "error: "+err.Error())
		return
	}

	for _, a := range acts {
		if a.apply == nil { // log action
			c.record(node, r.Name, a.render, "noted")
			continue
		}
		if st.suppressed(a, r.Deadband) {
			c.mDeadband.Inc()
			c.record(node, r.Name, a.render, "deadband")
			continue
		}
		if err := a.apply(c.act, node); err != nil {
			c.mErrors.Inc()
			c.record(node, r.Name, a.render, "error: "+err.Error())
			continue
		}
		st.remember(a)
		c.mActuations.Inc()
		c.record(node, r.Name, a.render, "actuated")
	}
}

// suppressed applies the deadband: a numeric actuation within band% of
// the last actuated value for the same key is dropped (band 0 drops
// exact repeats only); non-numeric actuations are dropped on exact
// repeats.
func (st *ruleState) suppressed(a actuation, band float64) bool {
	if a.hasNum {
		old, ok := st.lastNum[a.key]
		if !ok {
			return false
		}
		if old == a.num {
			return true
		}
		if band <= 0 || old == 0 {
			return false
		}
		return math.Abs(a.num-old)/math.Abs(old)*100 <= band
	}
	return st.lastText[a.key] == a.render
}

func (st *ruleState) remember(a actuation) {
	if a.hasNum {
		st.lastNum[a.key] = a.num
	} else {
		st.lastText[a.key] = a.render
	}
}

// record appends one decision-log entry, evicting the oldest past LogCap.
func (c *Controller) record(node i2o.NodeID, rule, action, outcome string) {
	c.seq++
	c.mDecisions.Inc()
	d := Decision{Seq: c.seq, Tick: c.tick, Node: node, Rule: rule, Action: action, Outcome: outcome}
	if len(c.log) < c.logCap {
		c.log = append(c.log, d)
		return
	}
	c.log[c.logLo] = d
	c.logLo = (c.logLo + 1) % len(c.log)
}

// truthy mirrors tclish's condition convention.
func truthy(s string) bool {
	switch strings.TrimSpace(s) {
	case "0", "false", "no", "":
		return false
	}
	return true
}

// evalCtx is the per-evaluation view the policy commands read: the node
// under evaluation, its current and previous snapshots, and the
// actuation list the do commands append to.  In validate mode every
// metric reads as zero and actuations are collected but never applied.
type evalCtx struct {
	node     i2o.NodeID
	tick     uint64
	snap     Snapshot
	prev     Snapshot
	acts     []actuation
	validate bool
}

func (ctx *evalCtx) setVars(in *tclish.Interp) {
	in.SetVar("node", strconv.FormatUint(uint64(ctx.node), 10))
	in.SetVar("tick", strconv.FormatUint(ctx.tick, 10))
}

// actuation is one collected action from a do script.
type actuation struct {
	render string // stable text for the decision log
	key    string // deadband identity
	num    float64
	hasNum bool
	apply  func(a Actuator, node i2o.NodeID) error // nil for log actions
}

// sum folds every metric matching the selector.  The sum is unsigned
// when every matched row is, so large counters keep full precision;
// mixed matches fold through int64.
func sum(s Snapshot, selector string) (Metric, bool) {
	var (
		u       uint64
		i       int64
		n       int
		allUint = true
	)
	for name, m := range s {
		if !matchGlob(selector, name) {
			continue
		}
		n++
		if m.IsUint {
			u += m.Uint
		} else {
			allUint = false
			i += m.Int
		}
	}
	if n == 0 {
		return Metric{}, false
	}
	if allUint {
		return Metric{Uint: u, IsUint: true}, true
	}
	return Metric{Int: i + int64(u)}, true
}

// bindEval registers the policy evaluation commands on an interpreter.
// The ctx pointer is shared: the controller rewrites its fields before
// each evaluation under its own lock.
func bindEval(in *tclish.Interp, ctx *evalCtx) {
	in.Register("metric", func(_ *tclish.Interp, args []string) (string, error) {
		if len(args) != 2 {
			return "", fmt.Errorf("metric: want one selector")
		}
		if ctx.validate {
			return "0", nil
		}
		m, ok := sum(ctx.snap, args[1])
		if !ok {
			return "0", nil
		}
		return m.String(), nil
	})

	in.Register("rate", func(_ *tclish.Interp, args []string) (string, error) {
		if len(args) != 2 {
			return "", fmt.Errorf("rate: want one selector")
		}
		if ctx.validate || ctx.prev == nil {
			return "0", nil
		}
		cur, ok := sum(ctx.snap, args[1])
		if !ok {
			return "0", nil
		}
		old, _ := sum(ctx.prev, args[1])
		if cur.IsUint && old.IsUint {
			if cur.Uint >= old.Uint {
				return strconv.FormatUint(cur.Uint-old.Uint, 10), nil
			}
			return strconv.FormatInt(-int64(old.Uint-cur.Uint), 10), nil
		}
		curI, oldI := cur.Int, old.Int
		if cur.IsUint {
			curI = int64(cur.Uint)
		}
		if old.IsUint {
			oldI = int64(old.Uint)
		}
		return strconv.FormatInt(curI-oldI, 10), nil
	})

	in.Register("dispatchers", func(_ *tclish.Interp, args []string) (string, error) {
		if len(args) != 2 {
			return "", fmt.Errorf("dispatchers: want one worker count")
		}
		n, err := strconv.Atoi(args[1])
		if err != nil {
			return "", fmt.Errorf("dispatchers: want a count >= 1, got %q", args[1])
		}
		// The count is often computed from a metric; the load-time dry
		// run pins metrics to zero, so the range check is runtime-only.
		if n < 1 && !ctx.validate {
			return "", fmt.Errorf("dispatchers: want a count >= 1, got %q", args[1])
		}
		ctx.acts = append(ctx.acts, actuation{
			render: "dispatchers " + args[1],
			key:    "dispatchers",
			num:    float64(n),
			hasNum: true,
			apply: func(a Actuator, node i2o.NodeID) error {
				return a.SetDispatchers(node, n)
			},
		})
		return "", nil
	})

	in.Register("param", func(_ *tclish.Interp, args []string) (string, error) {
		if len(args) != 5 {
			return "", fmt.Errorf("param: want class instance key value")
		}
		class, key, raw := args[1], args[3], args[4]
		inst, err := strconv.Atoi(args[2])
		if err != nil || inst < 0 {
			return "", fmt.Errorf("param: bad instance %q", args[2])
		}
		var value any = raw
		num, hasNum := 0.0, false
		if n, err := strconv.ParseInt(raw, 10, 64); err == nil {
			value = n
			num, hasNum = float64(n), true
		}
		ctx.acts = append(ctx.acts, actuation{
			render: fmt.Sprintf("param %s %d %s %s", class, inst, key, raw),
			key:    fmt.Sprintf("param/%s/%d/%s", class, inst, key),
			num:    num,
			hasNum: hasNum,
			apply: func(a Actuator, node i2o.NodeID) error {
				return a.SetParam(node, class, inst, key, value)
			},
		})
		return "", nil
	})

	in.Register("failover", func(_ *tclish.Interp, args []string) (string, error) {
		if len(args) != 2 {
			return "", fmt.Errorf("failover: want one route name")
		}
		route := args[1]
		ctx.acts = append(ctx.acts, actuation{
			render: "failover " + route,
			key:    "failover",
			apply: func(a Actuator, node i2o.NodeID) error {
				return a.Failover(node, route)
			},
		})
		return "", nil
	})

	in.Register("qos", func(_ *tclish.Interp, args []string) (string, error) {
		if len(args) < 4 || len(args) > 6 {
			return "", fmt.Errorf("qos: want class priority rate ?burst? ?queue?")
		}
		class := args[1]
		spec := strings.Join(args[2:], " ")
		if _, err := strconv.ParseUint(args[2], 10, 8); err != nil {
			return "", fmt.Errorf("qos: bad priority %q", args[2])
		}
		rate, err := strconv.ParseInt(args[3], 10, 64)
		if err != nil {
			return "", fmt.Errorf("qos: bad rate %q", args[3])
		}
		ctx.acts = append(ctx.acts, actuation{
			render: "qos " + class + " " + spec,
			key:    "qos/" + class,
			num:    float64(rate),
			hasNum: true,
			apply: func(a Actuator, node i2o.NodeID) error {
				return a.SetParam(node, "pta", 0, "qos."+class, spec)
			},
		})
		return "", nil
	})

	in.Register("log", func(_ *tclish.Interp, args []string) (string, error) {
		if len(args) != 2 {
			return "", fmt.Errorf("log: want one message")
		}
		ctx.acts = append(ctx.acts, actuation{render: "log " + args[1]})
		return "", nil
	})
}
