package controlplane

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"xdaq/internal/device"
	"xdaq/internal/executive"
	"xdaq/internal/i2o"
	"xdaq/internal/metrics"
)

// AutopilotConfig assembles an Autopilot on a live executive.
type AutopilotConfig struct {
	Exec   *executive.Executive
	Policy *Policy

	// Interval is the scrape period; 0 means one second.
	Interval time.Duration

	// Nodes lists the members to scrape each tick; nil watches only the
	// local node.  Hook it to the membership layer on clustered nodes.
	Nodes func() []i2o.NodeID

	// LogCap bounds the decision log; 0 means 256.
	LogCap int
}

// Autopilot is the cp.autopilot device class: the deterministic
// Controller wrapped in a real scrape ticker, with the Source reading
// ExecMetricsGet over the fabric and the Actuator writing the same
// parameter channels an operator would.  It also installs the
// executive's policy source, so ExecPolicyGet (and therefore
// `xdaqctl policy <node>`) reports this node's decision log.
type Autopilot struct {
	exec *executive.Executive
	ctrl *Controller
	dev  *device.Device

	interval time.Duration
	stop     chan struct{}
	done     chan struct{}
	once     sync.Once
}

// NewAutopilot plugs the cp.autopilot device and starts the control
// loop.
func NewAutopilot(cfg AutopilotConfig) (*Autopilot, error) {
	if cfg.Exec == nil {
		return nil, fmt.Errorf("controlplane: nil executive")
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("controlplane: nil policy")
	}
	interval := cfg.Interval
	if interval <= 0 {
		interval = time.Second
	}
	ap := &Autopilot{
		exec:     cfg.Exec,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	nodes := cfg.Nodes
	if nodes == nil {
		self := cfg.Exec.Node()
		nodes = func() []i2o.NodeID { return []i2o.NodeID{self} }
	}
	ctrl, err := New(Config{
		Policy:   cfg.Policy,
		Source:   &execSource{exec: cfg.Exec, nodes: nodes},
		Actuator: &execActuator{exec: cfg.Exec, nodes: nodes},
		Registry: cfg.Exec.Metrics(),
		LogCap:   cfg.LogCap,
	})
	if err != nil {
		return nil, err
	}
	ap.ctrl = ctrl

	ap.dev = device.New("cp.autopilot", 0)
	ap.dev.Params().Set("policy", cfg.Policy.Name)
	ap.dev.Params().Set("hash", cfg.Policy.Hash)
	if _, err := cfg.Exec.Plug(ap.dev); err != nil {
		return nil, err
	}
	cfg.Exec.SetPolicySource(ap.report)
	go ap.run()
	return ap, nil
}

// Controller exposes the decision core (tests and checkers read its log).
func (ap *Autopilot) Controller() *Controller { return ap.ctrl }

// Close stops the control loop and withdraws the policy report; the last
// actuated state stays in force — graceful degradation, not rollback.
func (ap *Autopilot) Close() {
	ap.once.Do(func() {
		close(ap.stop)
		<-ap.done
		ap.exec.SetPolicySource(nil)
	})
}

func (ap *Autopilot) run() {
	defer close(ap.done)
	t := time.NewTicker(ap.interval)
	defer t.Stop()
	for {
		select {
		case <-ap.stop:
			return
		case <-t.C:
			ap.ctrl.Step()
		}
	}
}

// report renders the ExecPolicyGet reply: policy identity, loop
// progress, then the decision log in Decision.String form, keyed so rows
// sort in sequence order.
func (ap *Autopilot) report() []i2o.Param {
	pol := ap.ctrl.Policy()
	params := []i2o.Param{
		{Key: "autopilot", Value: "on"},
		{Key: "policy", Value: pol.Name},
		{Key: "hash", Value: pol.Hash},
		{Key: "rules", Value: int64(len(pol.Rules))},
		{Key: "tick", Value: int64(ap.ctrl.Tick())},
	}
	for _, d := range ap.ctrl.Decisions() {
		params = append(params, i2o.Param{
			Key:   fmt.Sprintf("decision.%08d", d.Seq),
			Value: d.String(),
		})
	}
	return params
}

// execSource scrapes over the fabric: the local node straight from the
// registry, remote nodes via ExecMetricsGet to their well-known
// executive TiD.
type execSource struct {
	exec  *executive.Executive
	nodes func() []i2o.NodeID
}

func (s *execSource) Nodes() []i2o.NodeID { return s.nodes() }

func (s *execSource) Scrape(node i2o.NodeID) (Snapshot, error) {
	if node == s.exec.Node() {
		flat := metrics.Flatten(s.exec.Metrics().Snapshot())
		snap := make(Snapshot, len(flat))
		for _, fs := range flat {
			snap[fs.Name] = Metric{Uint: fs.Uint, Int: fs.Int, IsUint: fs.IsUint}
		}
		return snap, nil
	}
	target, err := s.exec.ExecProxy(node)
	if err != nil {
		return nil, err
	}
	rep, err := s.exec.Request(&i2o.Message{
		Priority: i2o.PriorityHigh, Target: target, Initiator: i2o.TIDExecutive,
		Function: i2o.ExecMetricsGet,
	})
	if err != nil {
		return nil, err
	}
	defer rep.Release()
	params, err := i2o.DecodeParams(rep.Payload)
	if err != nil {
		return nil, err
	}
	return SnapshotFromParams(params), nil
}

// execActuator turns decisions into the frames an operator's controller
// would send: UtilParamsSet for knobs, ExecSysTabSet for failover.
type execActuator struct {
	exec  *executive.Executive
	nodes func() []i2o.NodeID
}

// SetDispatchers rescales a node's dispatch pool: locally through the
// executive, remotely through the "dispatchers" parameter on the remote
// executive device (its OnSet hook applies it).
func (a *execActuator) SetDispatchers(node i2o.NodeID, n int) error {
	if node == a.exec.Node() {
		a.exec.SetDispatchers(n)
		return nil
	}
	target, err := a.exec.ExecProxy(node)
	if err != nil {
		return err
	}
	return a.paramsSet(target, []i2o.Param{{Key: "dispatchers", Value: int64(n)}})
}

// SetParam writes one device parameter on a node, resolving the device
// through the remote HRT when needed.
func (a *execActuator) SetParam(node i2o.NodeID, class string, instance int, key string, value any) error {
	var target i2o.TID
	var err error
	if node == a.exec.Node() {
		target, err = a.exec.Resolve(class, instance, node)
	} else {
		target, err = a.exec.Discover(node, class, instance)
	}
	if err != nil {
		return err
	}
	return a.paramsSet(target, []i2o.Param{{Key: key, Value: value}})
}

// Failover repoints every other member's route to the ailing node onto
// the named transport, the local table included, so cluster traffic
// drains off the failing fabric without waiting for health eviction.
func (a *execActuator) Failover(node i2o.NodeID, route string) error {
	payload, err := i2o.EncodeParams([]i2o.Param{
		{Key: strconv.FormatUint(uint64(node), 10), Value: route},
	})
	if err != nil {
		return err
	}
	var firstErr error
	for _, member := range a.nodes() {
		if member == node {
			continue
		}
		if member == a.exec.Node() {
			a.exec.FailoverRoute(node, route)
			continue
		}
		target, err := a.exec.ExecProxy(member)
		if err == nil {
			var rep *i2o.Message
			rep, err = a.exec.Request(&i2o.Message{
				Priority: i2o.PriorityHigh, Target: target, Initiator: i2o.TIDExecutive,
				Function: i2o.ExecSysTabSet, Payload: payload,
			})
			if err == nil {
				rep.Release()
			}
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("failover on node %v: %w", member, err)
		}
	}
	return firstErr
}

func (a *execActuator) paramsSet(target i2o.TID, params []i2o.Param) error {
	payload, err := i2o.EncodeParams(params)
	if err != nil {
		return err
	}
	rep, err := a.exec.Request(&i2o.Message{
		Priority: i2o.PriorityHigh, Target: target, Initiator: i2o.TIDExecutive,
		Function: i2o.UtilParamsSet, Payload: payload,
	})
	if err != nil {
		return err
	}
	rep.Release()
	return nil
}
