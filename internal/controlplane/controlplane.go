// Package controlplane closes the feedback loop over the metrics layer:
// a policy-driven autopilot that periodically scrapes cluster-wide
// metrics over the ExecMetricsGet I2O call, evaluates operator rules
// written in tclish, and actuates the knobs the rest of the system
// already exposes — dispatcher counts on sustained queue pressure, the
// TCP eager/rendezvous threshold on coalescing stats, transport failover
// on error rates, and per-tenant QoS budgets at the PTA.
//
// The design follows the shape the cluster-management literature
// converged on (see PAPERS.md): a central policy engine, per-node stat
// collection over the ordinary message fabric, and remediation through
// the same configuration channel an operator would use.  Three
// properties are load-bearing:
//
//   - Determinism: the decision core (Controller.Step) consumes injected
//     scrape snapshots and an injected tick counter — no wall clock, no
//     sleeps — so decision sequences are a pure function of the metric
//     series and are unit-tested as exact tables (controller_test.go).
//   - Hysteresis: every rule carries a sustain requirement ("for N
//     ticks"), a cooldown, and a deadband, so a flapping metric produces
//     zero oscillating actuations (doc/control-plane.md discusses why).
//   - Observability: every decision — actuated, suppressed, or failed —
//     lands in a bounded decision log scrapable via ExecPolicyGet and
//     `xdaqctl policy <node>`, and the loop exports cp.* metrics like
//     any other subsystem.
//
// The package splits along those lines: policy.go parses rule files,
// controller.go is the deterministic core, autopilot.go binds the core
// to a live executive (real clock, I2O scrapes, I2O actuations) as the
// cp.autopilot device class.
package controlplane

import (
	"fmt"
	"strconv"

	"xdaq/internal/i2o"
)

// Metric is one scraped scalar: counters arrive as uint64, gauges as
// int64, exactly as metrics.Flatten and ExecMetricsGet carry them.
type Metric struct {
	Uint   uint64
	Int    int64
	IsUint bool
}

// String renders the value in full precision (uint64 counters do not
// round through float — the tclish expr layer has an exact unsigned kind
// for them).
func (m Metric) String() string {
	if m.IsUint {
		return strconv.FormatUint(m.Uint, 10)
	}
	return strconv.FormatInt(m.Int, 10)
}

// Snapshot is one node's scraped metrics, keyed by flattened name.
type Snapshot map[string]Metric

// SnapshotFromParams converts an ExecMetricsGet reply (or any parameter
// list of numeric rows) into a Snapshot.
func SnapshotFromParams(params []i2o.Param) Snapshot {
	s := make(Snapshot, len(params))
	for _, p := range params {
		switch v := p.Value.(type) {
		case uint64:
			s[p.Key] = Metric{Uint: v, IsUint: true}
		case int64:
			s[p.Key] = Metric{Int: v}
		}
	}
	return s
}

// Source feeds the controller its view of the cluster.  The production
// implementation scrapes ExecMetricsGet over the fabric; tests script
// deterministic metric series.
type Source interface {
	// Nodes lists the members to scrape this tick.  The controller
	// evaluates them in sorted order regardless.
	Nodes() []i2o.NodeID

	// Scrape returns one node's current metrics.
	Scrape(node i2o.NodeID) (Snapshot, error)
}

// Actuator applies the controller's decisions.  The production
// implementation turns them into I2O frames; tests record them.
type Actuator interface {
	// SetDispatchers rescales a node's dispatch worker pool.
	SetDispatchers(node i2o.NodeID, n int) error

	// SetParam writes one device parameter on a node (the UtilParamsSet
	// channel): transport thresholds, QoS budgets, any OnSet-backed knob.
	SetParam(node i2o.NodeID, class string, instance int, key string, value any) error

	// Failover repoints all traffic touching node onto the named peer
	// transport route, cluster-wide.
	Failover(node i2o.NodeID, route string) error
}

// Decision is one decision-log entry: what a rule decided for a node at
// a tick, and what came of it.
type Decision struct {
	// Seq numbers decisions monotonically from 1; the log is a ring, so
	// Seq survives eviction and keeps remote scrapes alignable.
	Seq uint64

	// Tick is the controller tick the decision was made on.
	Tick uint64

	// Node is the member the rule was evaluated against.
	Node i2o.NodeID

	// Rule is the firing rule's name.
	Rule string

	// Action is the rendered actuation, e.g. "dispatchers 4".
	Action string

	// Outcome is "actuated", "noted", "cooldown", "deadband", or
	// "error: ...".
	Outcome string
}

// String renders the entry in the stable form the e2e tests compare
// against remote ExecPolicyGet rows.
func (d Decision) String() string {
	return fmt.Sprintf("seq=%d tick=%d node=%d rule=%s action={%s} outcome=%s",
		d.Seq, d.Tick, d.Node, d.Rule, d.Action, d.Outcome)
}
