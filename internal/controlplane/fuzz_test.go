package controlplane

import (
	"testing"

	"xdaq/internal/i2o"
)

// FuzzPolicy throws mutated policy sources at the loader: whatever the
// bytes, Load must either return a policy or an error — never panic, and
// never hand back rules that later explode the interpreter.  Loadable
// inputs are additionally pushed through one controller step against an
// empty snapshot, the same dry-run surface a live autopilot exposes.
func FuzzPolicy(f *testing.F) {
	f.Add("rule scale-up {\n when {[metric exec.queue.depth] > 8}\n for 3\n cooldown 10\n deadband 10\n do {dispatchers 8}\n}")
	f.Add(`rule q { when {[rate pt.tcp.tx.frames] > 1000}; do {qos bulk 6 500 64} }`)
	f.Add("rule a { when {$tick % 2 == 0}; do {log even} }\nrule b { when {[metric x] > [metric y]}; do {failover tcp} }")
	f.Add("rule bad { when {[metric m] >} do {dispatchers 0} }")
	f.Add("for 3")
	f.Add("{unbalanced")
	f.Fuzz(func(t *testing.T, src string) {
		pol, err := Load("fuzz", src)
		if err != nil {
			return
		}
		c, err := New(Config{Policy: pol, Source: &fakeSource{
			order: []i2o.NodeID{1},
			data:  map[i2o.NodeID][]any{1: {Snapshot{}}},
		}, Actuator: &fakeActuator{}})
		if err != nil {
			t.Fatalf("Load accepted %q but New rejected it: %v", src, err)
		}
		c.Step()
	})
}
