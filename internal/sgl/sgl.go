// Package sgl implements I2O Scatter-Gather Lists: chains of fixed-size
// buffer pool blocks that carry payloads longer than a single block.
//
// The paper (§4): "Memory is allocated in fixed sized blocks with a maximum
// length of 256 KB. Making use of I2O's Scatter-Gather Lists (SGL) or
// chaining blocks helps to transmit arbitrary length information."  A List
// owns references to its blocks; Retain/Release manage the whole chain, so
// a list travels through queues and transports exactly like a single frame
// payload.
package sgl

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"xdaq/internal/i2o"
	"xdaq/internal/pool"
)

// ErrRange reports an out-of-bounds offset or length.
var ErrRange = errors.New("sgl: offset out of range")

// List is a chain of pool blocks viewed as one contiguous byte sequence.
//
// A list is itself reference counted: it owns exactly one block reference
// per segment for its whole lifetime, and Retain/Release move the count of
// *holders of the list*, not of the blocks.  The blocks go back to their
// pool only when the last holder releases.  This is what makes the
// retain → send → release guard around an asynchronous transport safe: the
// guard's release must not tear the chain down while the transport's ring
// still holds the frame.
type List struct {
	segs   []*pool.Buffer
	length int
	refs   atomic.Int32
}

// A List is a frame body for gather-capable transports: attach one with
// i2o.Message.AttachList and the wire transports put each segment on the
// wire without flattening the chain.
var _ i2o.SegmentedPayload = (*List)(nil)

// DefaultSegment is the block size used by builders when the caller does
// not choose one: the paper's maximum block length.
const DefaultSegment = pool.MaxBlock

// Build allocates a list of total bytes, chaining blocks of segSize
// (segSize <= 0 selects DefaultSegment).  The content is uninitialized;
// use a Writer or CopyFrom to fill it.
func Build(alloc pool.Allocator, total, segSize int) (*List, error) {
	if total < 0 {
		return nil, fmt.Errorf("%w: total %d", ErrRange, total)
	}
	if segSize <= 0 {
		segSize = DefaultSegment
	}
	if segSize > pool.MaxBlock {
		segSize = pool.MaxBlock
	}
	l := newList()
	for remaining := total; remaining > 0; {
		n := segSize
		if remaining < n {
			n = remaining
		}
		b, err := alloc.Alloc(n)
		if err != nil {
			l.Release()
			return nil, err
		}
		l.segs = append(l.segs, b)
		l.length += n
		remaining -= n
	}
	return l, nil
}

// FromBytes builds a list containing a copy of data, chained at segSize.
func FromBytes(alloc pool.Allocator, data []byte, segSize int) (*List, error) {
	l, err := Build(alloc, len(data), segSize)
	if err != nil {
		return nil, err
	}
	l.CopyFrom(0, data)
	return l, nil
}

// Len returns the total byte length of the list.
func (l *List) Len() int { return l.length }

// Segments returns the number of chained blocks.
func (l *List) Segments() int { return len(l.segs) }

// Segment returns the byte view of the i-th block.
func (l *List) Segment(i int) []byte { return l.segs[i].Bytes() }

// newList returns an empty list held once by the caller.
func newList() *List {
	l := &List{}
	l.refs.Store(1)
	return l
}

// Retain adds a holder of the list.  The blocks themselves are untouched:
// the list keeps its one reference per segment until the last holder lets
// go.
func (l *List) Retain() { l.refs.Add(1) }

// Clone returns a new list sharing the same blocks, each block retained
// once for the clone's own per-segment reference.  Both lists must
// eventually be released.
func (l *List) Clone() *List {
	c := newList()
	c.segs = append([]*pool.Buffer(nil), l.segs...)
	c.length = l.length
	for _, s := range c.segs {
		s.Retain()
	}
	return c
}

// Release drops one holder.  When the last holder releases, every block's
// reference count is decremented, recycling those that reach zero, and the
// list must not be used afterwards.
func (l *List) Release() {
	if l.refs.Add(-1) != 0 {
		return
	}
	for i, s := range l.segs {
		s.Release()
		l.segs[i] = nil
	}
	l.segs = l.segs[:0]
	l.length = 0
}

// locate maps a list offset to (segment index, offset within segment).
func (l *List) locate(off int) (int, int, error) {
	if off < 0 || off > l.length {
		return 0, 0, fmt.Errorf("%w: %d of %d", ErrRange, off, l.length)
	}
	for i, s := range l.segs {
		if off < s.Len() {
			return i, off, nil
		}
		off -= s.Len()
	}
	return len(l.segs), 0, nil // off == length
}

// CopyFrom writes src into the list starting at off.  It fails if the write
// would run past the end of the list.
func (l *List) CopyFrom(off int, src []byte) error {
	if off < 0 || off+len(src) > l.length {
		return fmt.Errorf("%w: write [%d,%d) of %d", ErrRange, off, off+len(src), l.length)
	}
	i, so, _ := l.locate(off)
	for len(src) > 0 {
		n := copy(l.segs[i].Bytes()[so:], src)
		src = src[n:]
		i++
		so = 0
	}
	return nil
}

// CopyTo reads into dst starting at list offset off and returns the number
// of bytes copied (short at end of list).
func (l *List) CopyTo(off int, dst []byte) (int, error) {
	i, so, err := l.locate(off)
	if err != nil {
		return 0, err
	}
	total := 0
	for total < len(dst) && i < len(l.segs) {
		n := copy(dst[total:], l.segs[i].Bytes()[so:])
		total += n
		i++
		so = 0
	}
	return total, nil
}

// Bytes returns the list contents as one contiguous slice.  A
// single-segment list returns its block's slice directly — no allocation,
// no copy; the caller must not outlive the list's reference.  Longer
// chains flatten into a new slice; the point of an SGL is to avoid that
// copy, so hot paths should gather segments instead (see Walk and
// i2o.Message.AppendBody).
func (l *List) Bytes() []byte {
	if len(l.segs) == 1 {
		return l.segs[0].Bytes()
	}
	out := make([]byte, l.length)
	_, _ = l.CopyTo(0, out)
	return out
}

// Walk calls fn for every segment in order, stopping at the first error.
// Transports use Walk to transmit a chained payload without flattening it.
func (l *List) Walk(fn func(seg []byte) error) error {
	for _, s := range l.segs {
		if err := fn(s.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// Reader returns an io.Reader over the list contents.  The reader does not
// retain the list; the caller keeps it alive.
func (l *List) Reader() io.Reader { return &reader{l: l} }

type reader struct {
	l   *List
	off int
}

func (r *reader) Read(p []byte) (int, error) {
	if r.off >= r.l.length {
		return 0, io.EOF
	}
	n, err := r.l.CopyTo(r.off, p)
	r.off += n
	return n, err
}

// Writer appends bytes to a growing list, allocating blocks on demand.
type Writer struct {
	alloc   pool.Allocator
	segSize int
	list    *List
	fill    int // bytes used in the final segment
	err     error
}

// NewWriter returns a writer chaining blocks of segSize (<= 0 selects
// DefaultSegment) from alloc.
func NewWriter(alloc pool.Allocator, segSize int) *Writer {
	if segSize <= 0 {
		segSize = DefaultSegment
	}
	if segSize > pool.MaxBlock {
		segSize = pool.MaxBlock
	}
	return &Writer{alloc: alloc, segSize: segSize, list: newList()}
}

// Write implements io.Writer.
func (w *Writer) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	written := 0
	for len(p) > 0 {
		if w.fill == 0 || w.fill == w.segSize {
			b, err := w.alloc.Alloc(w.segSize)
			if err != nil {
				w.err = err
				return written, err
			}
			w.list.segs = append(w.list.segs, b)
			w.fill = 0
		}
		seg := w.list.segs[len(w.list.segs)-1]
		n := copy(seg.Bytes()[w.fill:], p)
		w.fill += n
		w.list.length += n
		p = p[n:]
		written += n
	}
	return written, nil
}

// List finalizes and returns the accumulated list, shrinking the final
// block to its used length.  The writer must not be used afterwards.
func (w *Writer) List() (*List, error) {
	if w.err != nil {
		w.list.Release()
		return nil, w.err
	}
	if n := len(w.list.segs); n > 0 && w.fill < w.segSize {
		if err := w.list.segs[n-1].Resize(w.fill); err != nil {
			return nil, err
		}
	}
	l := w.list
	w.list = nil
	return l, nil
}
