package sgl

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"xdaq/internal/pool"
)

func newPool() pool.Allocator { return pool.NewTable(0) }

func TestBuildSegmentation(t *testing.T) {
	p := newPool()
	cases := []struct {
		total, seg, wantSegs int
	}{
		{0, 1024, 0},
		{1, 1024, 1},
		{1024, 1024, 1},
		{1025, 1024, 2},
		{4096, 1024, 4},
		{4097, 1024, 5},
	}
	for _, c := range cases {
		l, err := Build(p, c.total, c.seg)
		if err != nil {
			t.Fatalf("Build(%d,%d): %v", c.total, c.seg, err)
		}
		if l.Len() != c.total || l.Segments() != c.wantSegs {
			t.Fatalf("Build(%d,%d): len=%d segs=%d want segs=%d",
				c.total, c.seg, l.Len(), l.Segments(), c.wantSegs)
		}
		l.Release()
	}
	if p.Stats().InUse != 0 {
		t.Fatalf("leak: %v", p.Stats())
	}
}

func TestBuildNegative(t *testing.T) {
	if _, err := Build(newPool(), -1, 0); !errors.Is(err, ErrRange) {
		t.Fatalf("Build(-1): %v", err)
	}
}

func TestBuildCapsSegmentAtMaxBlock(t *testing.T) {
	l, err := Build(newPool(), pool.MaxBlock+1, pool.MaxBlock*2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Release()
	if l.Segments() != 2 {
		t.Fatalf("segments = %d, want 2 (segment size must cap at MaxBlock)", l.Segments())
	}
}

func TestFromBytesRoundTrip(t *testing.T) {
	p := newPool()
	data := make([]byte, 10_000)
	rand.New(rand.NewSource(1)).Read(data)
	l, err := FromBytes(p, data, 999) // deliberately unaligned segment size
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(l.Bytes(), data) {
		t.Fatal("round trip mismatch")
	}
	l.Release()
	if p.Stats().InUse != 0 {
		t.Fatal("leak after release")
	}
}

func TestCopyToAcrossBoundaries(t *testing.T) {
	data := []byte("abcdefghij") // 10 bytes, 3-byte segments: abc|def|ghi|j
	l, err := FromBytes(newPool(), data, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Release()
	for off := 0; off <= len(data); off++ {
		for n := 0; n <= len(data)-off; n++ {
			dst := make([]byte, n)
			got, err := l.CopyTo(off, dst)
			if err != nil || got != n {
				t.Fatalf("CopyTo(%d, len %d) = %d, %v", off, n, got, err)
			}
			if !bytes.Equal(dst, data[off:off+n]) {
				t.Fatalf("CopyTo(%d, %d) = %q", off, n, dst)
			}
		}
	}
	// Reading past the end is short, not an error.
	dst := make([]byte, 5)
	got, err := l.CopyTo(8, dst)
	if err != nil || got != 2 {
		t.Fatalf("short read = %d, %v", got, err)
	}
	if _, err := l.CopyTo(11, dst); !errors.Is(err, ErrRange) {
		t.Fatalf("offset past end: %v", err)
	}
	if _, err := l.CopyTo(-1, dst); !errors.Is(err, ErrRange) {
		t.Fatalf("negative offset: %v", err)
	}
}

func TestCopyFromAcrossBoundaries(t *testing.T) {
	l, err := Build(newPool(), 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Release()
	if err := l.CopyFrom(0, []byte("0000000000")); err != nil {
		t.Fatal(err)
	}
	if err := l.CopyFrom(2, []byte("ABCDE")); err != nil {
		t.Fatal(err)
	}
	if got := string(l.Bytes()); got != "00ABCDE000" {
		t.Fatalf("content = %q", got)
	}
	if err := l.CopyFrom(8, []byte("xyz")); !errors.Is(err, ErrRange) {
		t.Fatalf("overflow write: %v", err)
	}
	if err := l.CopyFrom(-1, []byte("x")); !errors.Is(err, ErrRange) {
		t.Fatalf("negative write: %v", err)
	}
}

func TestWalkOrderAndError(t *testing.T) {
	l, err := FromBytes(newPool(), []byte("abcdefg"), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Release()
	var joined []byte
	if err := l.Walk(func(seg []byte) error {
		joined = append(joined, seg...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if string(joined) != "abcdefg" {
		t.Fatalf("walk joined %q", joined)
	}
	boom := errors.New("boom")
	calls := 0
	if err := l.Walk(func([]byte) error { calls++; return boom }); !errors.Is(err, boom) {
		t.Fatalf("walk error: %v", err)
	}
	if calls != 1 {
		t.Fatalf("walk continued after error: %d calls", calls)
	}
}

func TestReader(t *testing.T) {
	data := make([]byte, 5000)
	rand.New(rand.NewSource(7)).Read(data)
	l, err := FromBytes(newPool(), data, 512)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Release()
	got, err := io.ReadAll(l.Reader())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("reader mismatch")
	}
}

func TestWriterAccumulates(t *testing.T) {
	p := newPool()
	w := NewWriter(p, 4)
	chunks := [][]byte{[]byte("ab"), []byte("cdefg"), {}, []byte("hij")}
	var want []byte
	for _, c := range chunks {
		n, err := w.Write(c)
		if err != nil || n != len(c) {
			t.Fatalf("Write(%q) = %d, %v", c, n, err)
		}
		want = append(want, c...)
	}
	l, err := w.List()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(l.Bytes(), want) {
		t.Fatalf("writer content %q, want %q", l.Bytes(), want)
	}
	// 10 bytes over 4-byte segments -> 3 segments, last resized to 2.
	if l.Segments() != 3 || l.Segment(2) == nil || len(l.Segment(2)) != 2 {
		t.Fatalf("segments=%d last=%d", l.Segments(), len(l.Segment(l.Segments()-1)))
	}
	l.Release()
	if p.Stats().InUse != 0 {
		t.Fatal("leak")
	}
}

func TestWriterAllocFailure(t *testing.T) {
	p := pool.MustFixed([]pool.FixedClass{{Size: 64, Count: 1}})
	w := NewWriter(p, 64)
	if _, err := w.Write(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("x")); err == nil {
		t.Fatal("write past pool capacity succeeded")
	}
	if _, err := w.List(); err == nil {
		t.Fatal("List after failed write succeeded")
	}
	// The failed writer must have released what it held.
	if p.Stats().InUse != 0 {
		t.Fatalf("failed writer leaked: %v", p.Stats())
	}
}

func TestRetainReleaseChain(t *testing.T) {
	p := newPool()
	l, err := FromBytes(p, make([]byte, 100), 32)
	if err != nil {
		t.Fatal(err)
	}
	l2 := l.Clone() // a second holder of the same chain
	l.Release()
	if p.Stats().InUse == 0 {
		t.Fatal("chain recycled while still retained")
	}
	l2.Release()
	if p.Stats().InUse != 0 {
		t.Fatal("chain leaked")
	}
}

// A guarded send — retain, hand the frame to an asynchronous transport,
// release the guard — must leave the chain intact for the transport's later
// write and release.  An early Release must neither empty the segment slice
// nor recycle the blocks while a holder remains.
func TestRetainReleaseIsSymmetric(t *testing.T) {
	p := newPool()
	l, err := FromBytes(p, []byte("chained body"), 4)
	if err != nil {
		t.Fatal(err)
	}
	segs := l.Segments()

	l.Retain()  // the guard's hold
	l.Release() // the guard lets go; the "transport" still holds the frame
	if l.Segments() != segs || l.Len() == 0 {
		t.Fatalf("early release tore the chain down: %d segments, %d bytes",
			l.Segments(), l.Len())
	}
	if p.Stats().InUse == 0 {
		t.Fatal("blocks recycled while the list was still held")
	}

	l.Release() // the last holder
	if p.Stats().InUse != 0 {
		t.Fatalf("chain leaked after final release: %v", p.Stats())
	}
}

func TestQuickWriterMatchesFlat(t *testing.T) {
	p := newPool()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		segSize := 1 + r.Intn(300)
		w := NewWriter(p, segSize)
		var want []byte
		for i, n := 0, r.Intn(8); i < n; i++ {
			chunk := make([]byte, r.Intn(700))
			r.Read(chunk)
			if _, err := w.Write(chunk); err != nil {
				return false
			}
			want = append(want, chunk...)
		}
		l, err := w.List()
		if err != nil {
			return false
		}
		ok := bytes.Equal(l.Bytes(), want) && l.Len() == len(want)
		l.Release()
		return ok && p.Stats().InUse == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCopyToFromConsistent(t *testing.T) {
	p := newPool()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		total := r.Intn(2000)
		seg := 1 + r.Intn(257)
		l, err := Build(p, total, seg)
		if err != nil {
			return false
		}
		defer l.Release()
		ref := make([]byte, total)
		if err := l.CopyFrom(0, make([]byte, total)); err != nil {
			return false
		}
		for i := 0; i < 5; i++ {
			off := 0
			if total > 0 {
				off = r.Intn(total)
			}
			n := r.Intn(total - off + 1)
			patch := make([]byte, n)
			r.Read(patch)
			if err := l.CopyFrom(off, patch); err != nil {
				return false
			}
			copy(ref[off:], patch)
		}
		return bytes.Equal(l.Bytes(), ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBytesSingleSegmentNoCopy(t *testing.T) {
	p := newPool()
	l, err := FromBytes(p, []byte("hello, wire"), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Release()
	if l.Segments() != 1 {
		t.Fatalf("%d segments, want 1", l.Segments())
	}
	got := l.Bytes()
	seg := l.Segment(0)
	if &got[0] != &seg[0] || len(got) != len(seg) {
		t.Fatal("single-segment Bytes copied instead of aliasing the block")
	}
	// Writes through the returned slice must be visible in the list —
	// the definition of no-copy.
	got[0] = 'H'
	if l.Segment(0)[0] != 'H' {
		t.Fatal("returned slice does not alias the segment")
	}
}

func TestBytesMultiSegmentFlattens(t *testing.T) {
	p := newPool()
	data := bytes.Repeat([]byte{1, 2, 3, 4, 5}, 100)
	l, err := FromBytes(p, data, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Release()
	if l.Segments() < 2 {
		t.Fatalf("%d segments, want a chain", l.Segments())
	}
	got := l.Bytes()
	if !bytes.Equal(got, data) {
		t.Fatal("flattened bytes differ")
	}
	if &got[0] == &l.Segment(0)[0] {
		t.Fatal("multi-segment Bytes aliased the first block")
	}
}
