package sgl

import (
	"bytes"
	"testing"

	"xdaq/internal/i2o"
	"xdaq/internal/pool"
)

// FuzzSGLRoundTrip drives the full chained-payload path the wire transports
// use: build a list from arbitrary bytes at an arbitrary segment size,
// attach it to a frame, gather the body with AppendBody (header + segments
// + padding, exactly what tcp writev and gm SendGather put on the wire),
// and check the gathered bytes equal the flat Encode of the same payload —
// then decode the wire image back and compare contents.  The seed corpus
// mirrors chaos-harness bulk transfers: multi-segment bodies at small
// segment sizes, single-segment fast paths, empty payloads.
func FuzzSGLRoundTrip(f *testing.F) {
	f.Add([]byte{}, 1)
	f.Add([]byte("hello, cluster"), 4)
	f.Add(bytes.Repeat([]byte{0xAB}, 300), 128)    // chaos bulk: 3-segment chain
	f.Add(bytes.Repeat([]byte("evt:"), 64), 1<<20) // clamped to one MaxBlock segment
	f.Add([]byte{1, 2, 3}, 2)                      // odd final segment + wire padding
	f.Fuzz(func(t *testing.T, data []byte, segSize int) {
		if len(data) > 1<<16 {
			data = data[:1<<16]
		}
		alloc := pool.NewTable(0)
		l, err := FromBytes(alloc, data, segSize)
		if err != nil {
			t.Fatalf("FromBytes(%d bytes, seg %d): %v", len(data), segSize, err)
		}

		if l.Len() != len(data) {
			t.Fatalf("Len() = %d, want %d", l.Len(), len(data))
		}
		if got := l.Bytes(); !bytes.Equal(got, data) {
			t.Fatalf("Bytes() round trip differs")
		}

		// Frame with the list attached, gathered segment-per-iovec.
		m := i2o.AcquireMessage()
		m.Flags = i2o.FlagReplyExpected
		m.Priority = i2o.PriorityNormal
		m.Target, m.Initiator = 0x021, 0x111
		m.Function, m.XFunction, m.Org = i2o.FuncPrivate, 0x0142, 0x049A
		m.AttachList(l)

		var hdr [i2o.PrivateHeaderSize]byte
		hn, err := m.EncodeHeader(hdr[:])
		if err != nil {
			t.Fatalf("EncodeHeader: %v", err)
		}
		var gathered []byte
		gathered = append(gathered, hdr[:hn]...)
		for _, seg := range m.AppendBody(nil) {
			gathered = append(gathered, seg...)
		}

		// The same payload sent flat must produce identical wire bytes.
		flat := &i2o.Message{
			Flags: m.Flags, Priority: m.Priority,
			Target: m.Target, Initiator: m.Initiator,
			Function: m.Function, XFunction: m.XFunction, Org: m.Org,
			Payload: data,
		}
		want := make([]byte, flat.WireSize())
		if _, err := flat.Encode(want); err != nil {
			t.Fatalf("flat Encode: %v", err)
		}
		if !bytes.Equal(gathered, want) {
			t.Fatalf("gathered wire image differs from flat encode (%d vs %d bytes)",
				len(gathered), len(want))
		}

		// And the wire image must decode back to the original payload.
		dec, _, err := i2o.DecodeAcquired(gathered)
		if err != nil {
			t.Fatalf("decode of gathered frame: %v", err)
		}
		if !bytes.Equal(dec.Payload, data) {
			t.Fatalf("decoded payload differs from original")
		}
		dec.Recycle()

		// Releasing the frame releases the whole chain: no leaked blocks.
		m.Recycle()
		if in := alloc.Stats().InUse; in != 0 {
			t.Fatalf("leaked %d pool blocks", in)
		}
	})
}
