package health_test

import (
	"errors"
	"testing"
	"time"

	"xdaq/internal/device"
	"xdaq/internal/executive"
	"xdaq/internal/health"
	"xdaq/internal/i2o"
	"xdaq/internal/pta"
	"xdaq/internal/transport/faults"
	"xdaq/internal/transport/loopback"
	"xdaq/internal/transport/pci"
)

type testNode struct {
	exec  *executive.Executive
	agent *pta.Agent
	lb    *loopback.Endpoint
}

// buildPair wires two executives over loopback and, when withPCI is set,
// over a PCI segment as a second parallel route.
func buildPair(t *testing.T, withPCI bool) (a, b *testNode) {
	t.Helper()
	lbFabric := loopback.NewFabric()
	var seg *pci.Segment
	if withPCI {
		seg = pci.NewSegment(0)
	}
	mk := func(id i2o.NodeID) *testNode {
		e := executive.New(executive.Options{
			Name: "health", Node: id,
			RequestTimeout: time.Second,
			Logf:           func(string, ...any) {},
		})
		agent, err := pta.New(e)
		if err != nil {
			t.Fatal(err)
		}
		ep, err := lbFabric.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		ep.SetMetrics(e.Metrics())
		if err := agent.Register(ep, pta.Task); err != nil {
			t.Fatal(err)
		}
		if seg != nil {
			pep, err := seg.Attach(id)
			if err != nil {
				t.Fatal(err)
			}
			pep.SetMetrics(e.Metrics())
			if err := agent.Register(pep, pta.Polling); err != nil {
				t.Fatal(err)
			}
		}
		t.Cleanup(func() {
			agent.Close()
			e.Close()
		})
		return &testNode{exec: e, agent: agent, lb: ep}
	}
	a, b = mk(1), mk(2)
	a.exec.SetRoute(2, loopback.DefaultName)
	b.exec.SetRoute(1, loopback.DefaultName)
	return a, b
}

func plugEcho(t *testing.T, e *executive.Executive) {
	t.Helper()
	d := device.New("echo", 0)
	d.Bind(1, func(ctx *device.Context, m *i2o.Message) error {
		return device.ReplyIfExpected(ctx, m, m.Payload)
	})
	if _, err := e.Plug(d); err != nil {
		t.Fatal(err)
	}
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestMonitorDetectsDeathAndRecovery(t *testing.T) {
	a, _ := buildPair(t, false)
	mon := health.New(a.exec, health.Config{
		Interval:  20 * time.Millisecond,
		Timeout:   30 * time.Millisecond,
		Threshold: 2,
	})
	defer mon.Close()

	waitFor(t, 2*time.Second, "initial up probe", func() bool {
		for _, s := range mon.Status() {
			if s.Node == 2 && s.State == health.Up {
				return true
			}
		}
		return false
	})

	// The peer goes silent: every frame out of A's endpoint is lost.
	a.lb.SetFaults(faults.New(1).Add(faults.Rule{Op: faults.Drop, Nth: 1}))
	waitFor(t, 2*time.Second, "down transition", func() bool {
		return mon.State(2) == health.Down
	})
	if !a.exec.PeerDown(2) {
		t.Fatal("executive not told the peer is down")
	}
	reg := a.exec.Metrics()
	if reg.Counter("health.transitions.down").Value() == 0 {
		t.Fatal("down transition not counted")
	}
	if reg.Gauge("health.peersDown").Value() != 1 {
		t.Fatalf("health.peersDown = %d, want 1", reg.Gauge("health.peersDown").Value())
	}

	// Requests to the dead peer fail fast and typed.
	execTID, err := a.exec.ExecProxy(2)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = a.exec.Request(&i2o.Message{
		Target: execTID, Initiator: i2o.TIDExecutive, Function: i2o.ExecStatusGet,
	})
	if !errors.Is(err, executive.ErrPeerDown) {
		t.Fatalf("request to dead peer: %v, want ErrPeerDown", err)
	}
	if d := time.Since(start); d > 200*time.Millisecond {
		t.Fatalf("fail-fast took %v", d)
	}

	// The fabric heals; probes keep flowing to the down peer and revive it.
	a.lb.SetFaults(nil)
	waitFor(t, 2*time.Second, "recovery", func() bool {
		return mon.State(2) == health.Up && !a.exec.PeerDown(2)
	})
	if reg.Gauge("health.peersDown").Value() != 0 {
		t.Fatal("health.peersDown gauge not decremented on recovery")
	}
}

func TestFailoverToBackupRoute(t *testing.T) {
	a, b := buildPair(t, true)
	plugEcho(t, b.exec)
	target, err := a.exec.Discover(2, "echo", 0)
	if err != nil {
		t.Fatal(err)
	}

	mon := health.New(a.exec, health.Config{
		Interval:  20 * time.Millisecond,
		Timeout:   30 * time.Millisecond,
		Threshold: 2,
		Fallback:  map[i2o.NodeID]string{2: pci.PTName},
	})
	defer mon.Close()

	// Kill the primary (loopback) path out of A only.
	a.lb.SetFaults(faults.New(1).Add(faults.Rule{Op: faults.Drop, Nth: 1}))

	waitFor(t, 2*time.Second, "failover to pci", func() bool {
		r, _ := a.exec.Route(2)
		return r == pci.PTName
	})
	// The peer must come back Up over the fallback without ever being
	// declared down.
	waitFor(t, 2*time.Second, "up over fallback", func() bool {
		return mon.State(2) == health.Up
	})
	if a.exec.PeerDown(2) {
		t.Fatal("peer marked down despite a working fallback")
	}
	reg := a.exec.Metrics()
	if reg.Counter("health.failovers").Value() != 1 {
		t.Fatalf("health.failovers = %d, want 1", reg.Counter("health.failovers").Value())
	}
	if reg.Counter("health.transitions.down").Value() != 0 {
		t.Fatal("down transition counted despite failover")
	}

	// The pre-failover proxy now flows over PCI: calls still succeed.
	m, err := a.exec.AllocMessage(3)
	if err != nil {
		t.Fatal(err)
	}
	copy(m.Payload, "hey")
	m.Target = target
	m.Initiator = i2o.TIDExecutive
	m.XFunction = 1
	rep, err := a.exec.Request(m)
	if err != nil {
		t.Fatalf("call after failover: %v", err)
	}
	if string(rep.Payload) != "hey" {
		t.Fatalf("echo after failover: %q", rep.Payload)
	}
	rep.Release()
}

func TestPendingRequestFailsWhenPeerDies(t *testing.T) {
	a, b := buildPair(t, false)
	// A handler that blocks the peer's single dispatch goroutine: probes
	// stop being answered, exactly like a hung node.
	block := make(chan struct{})
	d := device.New("tarpit", 0)
	d.Bind(1, func(*device.Context, *i2o.Message) error {
		<-block
		return nil
	})
	if _, err := b.exec.Plug(d); err != nil {
		t.Fatal(err)
	}
	defer close(block)
	target, err := a.exec.Discover(2, "tarpit", 0)
	if err != nil {
		t.Fatal(err)
	}

	mon := health.New(a.exec, health.Config{
		Interval:  20 * time.Millisecond,
		Timeout:   30 * time.Millisecond,
		Threshold: 3,
	})
	defer mon.Close()
	waitFor(t, 2*time.Second, "initial up probe", func() bool {
		return mon.State(2) == health.Up && a.exec.Metrics().Counter("health.probes").Value() > 0
	})

	errc := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := a.exec.RequestTimeout(&i2o.Message{
			Target: target, Initiator: i2o.TIDExecutive,
			Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
		}, 10*time.Second)
		errc <- err
	}()

	select {
	case err := <-errc:
		if !errors.Is(err, executive.ErrPeerDown) {
			t.Fatalf("stuck request returned %v, want ErrPeerDown", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("stuck request not failed within the detection bound")
	}
	// Detection bound: interval + threshold probes x (interval + timeout),
	// far below the 10s request deadline.
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("pending request failed after %v; detection too slow", d)
	}
}

func TestReportAndRemoteHealthGet(t *testing.T) {
	a, b := buildPair(t, false)
	monA := health.New(a.exec, health.Config{Interval: 20 * time.Millisecond, Threshold: 2})
	defer monA.Close()
	waitFor(t, 2*time.Second, "peer visible in report", func() bool {
		for _, p := range monA.Report() {
			if p.Key == "peer.2.state" {
				return true
			}
		}
		return false
	})

	// B has no monitor: its ExecHealthGet answers monitor=off.  Query it
	// remotely from A the way xdaqctl does.
	execTID, err := a.exec.ExecProxy(2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.exec.Request(&i2o.Message{
		Target: execTID, Initiator: i2o.TIDExecutive, Function: i2o.ExecHealthGet,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Release()
	params, err := i2o.DecodeParams(rep.Payload)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range params {
		if p.Key == "monitor" && p.Value == "off" {
			found = true
		}
	}
	if !found {
		t.Fatalf("remote health report %v lacks monitor=off", params)
	}
	_ = b
}
