// Package health implements the peer-liveness and failover layer: the
// fault-tolerance dimension the paper's executives leave to the fabric.
// A Monitor owns a probe loop that heartbeats every node in the owning
// executive's system table with the ExecPing message, carried over the
// ordinary peer transport route — so a successful probe proves the whole
// forwarding path, not just the wire.
//
// Per-peer state machine:
//
//	┌────┐  probe fails   ┌─────────┐  fails >= threshold  ┌──────┐
//	│ Up │ ─────────────▶ │ Suspect │ ───────────────────▶ │ Down │
//	└────┘ ◀───────────── └─────────┘ ◀─────────────────── └──────┘
//	         probe ok            probe ok (route or peer recovered)
//
// Crossing the threshold first tries a route failover when a fallback
// transport is configured (e.g. GM primary → TCP control network): the
// executive's system table and every existing proxy are repointed
// atomically and the peer gets a fresh chance over the new fabric.  With
// no (remaining) fallback the peer is marked down in the executive, which
// fails all pending requests for it immediately and refuses new ones with
// ErrPeerDown — tail latency collapses from the request timeout to the
// detection bound (probe interval × threshold).  Probes keep flowing to
// down peers, so a rebooted node is promoted back to Up automatically.
package health

import (
	"context"
	"fmt"
	"sync"
	"time"

	"xdaq/internal/executive"
	"xdaq/internal/i2o"
	"xdaq/internal/metrics"
)

// State is one peer's liveness classification.
type State int

const (
	// Up: the last probe succeeded.
	Up State = iota

	// Suspect: at least one probe failed, fewer than the threshold.
	Suspect

	// Down: the failure threshold was crossed (and no fallback route was
	// left to try).  The executive fails requests for the peer fast.
	Down
)

func (s State) String() string {
	switch s {
	case Up:
		return "up"
	case Suspect:
		return "suspect"
	case Down:
		return "down"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Config tunes a Monitor.
type Config struct {
	// Interval is the probe period per peer; defaults to 1s.
	Interval time.Duration

	// Timeout bounds one probe round trip; defaults to Interval.
	Timeout time.Duration

	// Threshold is how many consecutive failures demote a peer to Down
	// (or trigger a failover); defaults to 3.
	Threshold int

	// Fallback maps peers to a backup peer transport route tried when the
	// threshold is crossed, before the peer is declared down.  Peers
	// learned after the monitor starts are added with SetFallback.
	Fallback map[i2o.NodeID]string

	// OnState, when set, is called after every peer state transition
	// (Up↔Suspect↔Down), outside the monitor's lock so the callback may
	// call back into the monitor or the executive.  The cluster
	// membership layer uses it to evict down peers and re-admit
	// recovered ones.
	OnState func(node i2o.NodeID, state State)

	// Logf sinks state transition diagnostics; nil silences them.
	Logf func(format string, args ...any)
}

// PeerStatus is one peer's externally visible health.
type PeerStatus struct {
	Node       i2o.NodeID
	State      State
	Fails      int    // consecutive probe failures
	Route      string // current system table route
	FailedOver bool   // the fallback route is in use
	LastErr    string // most recent probe error, "" after a success
}

type peer struct {
	state      State
	fails      int
	failedOver bool
	probing    bool
	lastErr    string
}

// Monitor probes the peers of one executive.
type Monitor struct {
	exec *executive.Executive
	cfg  Config

	mu    sync.Mutex
	peers map[i2o.NodeID]*peer

	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	cProbes     *metrics.Counter
	cProbeFails *metrics.Counter
	cUp         *metrics.Counter
	cSuspect    *metrics.Counter
	cDown       *metrics.Counter
	cFailovers  *metrics.Counter
	gPeersDown  *metrics.Gauge
}

// New starts a monitor for the executive's routed peers and registers it
// as the node's ExecHealthGet source.  Close it before the executive.
func New(e *executive.Executive, cfg Config) *Monitor {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = cfg.Interval
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 3
	}
	reg := e.Metrics()
	m := &Monitor{
		exec:  e,
		cfg:   cfg,
		peers: make(map[i2o.NodeID]*peer),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),

		cProbes:     reg.Counter("health.probes"),
		cProbeFails: reg.Counter("health.probeFails"),
		cUp:         reg.Counter("health.transitions.up"),
		cSuspect:    reg.Counter("health.transitions.suspect"),
		cDown:       reg.Counter("health.transitions.down"),
		cFailovers:  reg.Counter("health.failovers"),
		gPeersDown:  reg.Gauge("health.peersDown"),
	}
	e.SetHealthSource(m.Report)
	go m.loop()
	return m
}

func (m *Monitor) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// loop fans one probe per routed peer out every interval.  A slow peer
// never delays the others: each probe runs on its own goroutine and a
// peer with a probe still in flight is skipped this round.
func (m *Monitor) loop() {
	defer close(m.done)
	ticker := time.NewTicker(m.cfg.Interval)
	defer ticker.Stop()
	m.sweep() // probe immediately; the first verdicts arrive within Timeout
	for {
		select {
		case <-m.stop:
			m.wg.Wait()
			return
		case <-ticker.C:
			m.sweep()
		}
	}
}

func (m *Monitor) sweep() {
	for node := range m.exec.Routes() {
		if node == m.exec.Node() {
			continue
		}
		m.mu.Lock()
		p := m.peers[node]
		if p == nil {
			p = &peer{state: Up}
			m.peers[node] = p
		}
		launch := !p.probing
		if launch {
			p.probing = true
		}
		m.mu.Unlock()
		if launch {
			m.wg.Add(1)
			go m.probe(node)
		}
	}
}

func (m *Monitor) probe(node i2o.NodeID) {
	defer m.wg.Done()
	ctx, cancel := context.WithTimeout(context.Background(), m.cfg.Timeout)
	err := m.exec.PingContext(ctx, node)
	cancel()
	m.cProbes.Inc()
	m.record(node, err)
}

// record applies one probe verdict to the peer's state machine and fires
// the OnState hook (outside the lock) when the state changed.
func (m *Monitor) record(node i2o.NodeID, err error) {
	state, changed := m.apply(node, err)
	if changed && m.cfg.OnState != nil {
		m.cfg.OnState(node, state)
	}
}

func (m *Monitor) apply(node i2o.NodeID, err error) (State, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.peers[node]
	if p == nil {
		return Up, false
	}
	p.probing = false

	if err == nil {
		p.fails = 0
		p.lastErr = ""
		if p.state != Up {
			if p.state == Down {
				m.gPeersDown.Add(-1)
				m.exec.SetPeerDown(node, false)
			}
			p.state = Up
			m.cUp.Inc()
			m.logf("health: peer %v up", node)
			return Up, true
		}
		return Up, false
	}

	m.cProbeFails.Inc()
	p.fails++
	p.lastErr = err.Error()
	suspected := false
	if p.state == Up {
		p.state = Suspect
		suspected = true
		m.cSuspect.Inc()
		m.logf("health: peer %v suspect (%v)", node, err)
	}
	if p.fails < m.cfg.Threshold || p.state == Down {
		return p.state, suspected
	}

	// Threshold crossed: try the fallback route once, else declare down.
	if fb, ok := m.cfg.Fallback[node]; ok && !p.failedOver {
		if cur, _ := m.exec.Route(node); cur != fb {
			p.failedOver = true
			p.fails = 0
			moved := m.exec.FailoverRoute(node, fb)
			m.cFailovers.Inc()
			m.logf("health: peer %v failed over to %s (%d proxies rerouted)", node, fb, moved)
			return p.state, suspected
		}
	}
	p.state = Down
	m.cDown.Inc()
	m.gPeersDown.Add(1)
	m.exec.SetPeerDown(node, true)
	m.logf("health: peer %v down after %d failed probes (%v)", node, p.fails, err)
	return Down, true
}

// SetFallback adds or replaces one peer's backup route at runtime — the
// membership layer calls it as peers join (a colocated peer's primary shm
// route falls back to its TCP route).  An empty route removes the entry.
func (m *Monitor) SetFallback(node i2o.NodeID, route string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cfg.Fallback == nil {
		m.cfg.Fallback = make(map[i2o.NodeID]string)
	}
	if route == "" {
		delete(m.cfg.Fallback, node)
		return
	}
	m.cfg.Fallback[node] = route
}

// Status returns a snapshot of every monitored peer.
func (m *Monitor) Status() []PeerStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]PeerStatus, 0, len(m.peers))
	for node, p := range m.peers {
		route, _ := m.exec.Route(node)
		out = append(out, PeerStatus{
			Node:       node,
			State:      p.state,
			Fails:      p.fails,
			Route:      route,
			FailedOver: p.failedOver,
			LastErr:    p.lastErr,
		})
	}
	return out
}

// State returns one peer's state (Up for peers never probed).
func (m *Monitor) State(node i2o.NodeID) State {
	m.mu.Lock()
	defer m.mu.Unlock()
	if p := m.peers[node]; p != nil {
		return p.state
	}
	return Up
}

// Report encodes the monitor's view as a parameter list; it backs the
// ExecHealthGet executive message so `xdaqctl health <node>` sees it.
func (m *Monitor) Report() []i2o.Param {
	params := []i2o.Param{
		{Key: "monitor", Value: "on"},
		{Key: "interval.ms", Value: m.cfg.Interval.Milliseconds()},
		{Key: "threshold", Value: int64(m.cfg.Threshold)},
	}
	for _, s := range m.Status() {
		prefix := fmt.Sprintf("peer.%d.", s.Node)
		params = append(params,
			i2o.Param{Key: prefix + "state", Value: s.State.String()},
			i2o.Param{Key: prefix + "fails", Value: int64(s.Fails)},
			i2o.Param{Key: prefix + "route", Value: s.Route},
			i2o.Param{Key: prefix + "failedOver", Value: s.FailedOver},
		)
		if s.LastErr != "" {
			params = append(params, i2o.Param{Key: prefix + "lastErr", Value: s.LastErr})
		}
	}
	i2o.SortParams(params)
	return params
}

// Close stops the probe loop and waits for in-flight probes.  Peers marked
// down stay down in the executive; closing the monitor does not revive
// anything.
func (m *Monitor) Close() {
	m.closeOnce.Do(func() {
		close(m.stop)
		<-m.done
		m.exec.SetHealthSource(nil)
	})
}
