package queue

import "xdaq/internal/i2o"

// deque is a growable ring buffer of frames with O(1) push-back/pop-front.
type deque struct {
	buf  []*i2o.Message
	head int
	n    int
}

func (d *deque) len() int { return d.n }

func (d *deque) pushBack(m *i2o.Message) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.n)%len(d.buf)] = m
	d.n++
}

func (d *deque) popFront() *i2o.Message {
	if d.n == 0 {
		return nil
	}
	m := d.buf[d.head]
	d.buf[d.head] = nil
	d.head = (d.head + 1) % len(d.buf)
	d.n--
	return m
}

func (d *deque) grow() {
	size := len(d.buf) * 2
	if size == 0 {
		size = 8
	}
	buf := make([]*i2o.Message, size)
	for i := 0; i < d.n; i++ {
		buf[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	d.buf = buf
	d.head = 0
}
