package queue

import (
	"time"

	"xdaq/internal/i2o"
)

// item is one queued frame plus its enqueue timestamp (zero unless a wait
// observer is installed and metrics timing is enabled).
type item struct {
	m  *i2o.Message
	at time.Time
}

// deque is a growable ring buffer of frames with O(1) push-back/pop-front.
type deque struct {
	buf  []item
	head int
	n    int
}

func (d *deque) len() int { return d.n }

func (d *deque) pushBack(it item) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.n)%len(d.buf)] = it
	d.n++
}

func (d *deque) front() item {
	if d.n == 0 {
		return item{}
	}
	return d.buf[d.head]
}

func (d *deque) popFront() item {
	if d.n == 0 {
		return item{}
	}
	it := d.buf[d.head]
	d.buf[d.head] = item{}
	d.head = (d.head + 1) % len(d.buf)
	d.n--
	return it
}

func (d *deque) grow() {
	size := len(d.buf) * 2
	if size == 0 {
		size = 8
	}
	buf := make([]item, size)
	for i := 0; i < d.n; i++ {
		buf[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	d.buf = buf
	d.head = 0
}
