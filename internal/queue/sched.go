// Package queue implements the messaging instance of an IOP: the inbound
// frame scheduler with the I2O dispatch discipline, and the plain bounded
// FIFOs used for outbound paths and simulated hardware queues.
//
// The paper (§4): "For scheduling the dispatching of messages we follow the
// algorithm given in the I2O specification.  There exist seven priority
// levels and for each one the messages are scheduled to a FIFO.  All
// devices are then dispatched in round-robin manner."  Sched implements
// exactly that: per priority level, frames are queued FIFO per target
// device, and within a level the scheduler serves the devices that have
// pending frames in round-robin order.  Lower levels preempt higher ones
// between frames (never mid-handler: the loop of control stays in the
// executive).
package queue

import (
	"errors"
	"sync"
	"time"

	"xdaq/internal/i2o"
	"xdaq/internal/metrics"
)

// Errors.
var (
	// ErrFull reports a push to a scheduler or FIFO at capacity.
	ErrFull = errors.New("queue: full")

	// ErrClosed reports a push to a closed queue.
	ErrClosed = errors.New("queue: closed")
)

// devQueue is one device's FIFO within one priority level.
type devQueue struct {
	tid i2o.TID
	q   deque
}

// level is one priority level: the set of devices with pending frames, in
// round-robin order.  Serving a device rotates it to the back of the ring;
// a device that becomes active (re-)enters at the back, so no device is
// served twice before every other pending device is served once.
type level struct {
	ring  []*devQueue
	byTID map[i2o.TID]*devQueue
}

func (l *level) push(it item) {
	if l.byTID == nil {
		l.byTID = make(map[i2o.TID]*devQueue)
	}
	dq, ok := l.byTID[it.m.Target]
	if !ok {
		dq = &devQueue{tid: it.m.Target}
		l.byTID[it.m.Target] = dq
	}
	if dq.q.len() == 0 {
		l.ring = append(l.ring, dq)
	}
	dq.q.pushBack(it)
}

func (l *level) pop() item {
	if len(l.ring) == 0 {
		return item{}
	}
	dq := l.ring[0]
	it := dq.q.popFront()
	l.ring = l.ring[1:]
	if dq.q.len() > 0 {
		l.ring = append(l.ring, dq)
	} else {
		delete(l.byTID, dq.tid)
	}
	return it
}

// Sched is the inbound scheduler.  It is safe for concurrent use; Pop is
// intended to be called by the single executive dispatch goroutine.
type Sched struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	levels   [i2o.NumPriorities]level
	size     int
	capacity int
	closed   bool
	waitObs  WaitObserver
}

// WaitObserver receives the time one frame spent queued, per priority
// level.  The executive installs one that feeds the per-priority
// exec.queue.wait histograms.
type WaitObserver func(p i2o.Priority, wait time.Duration)

// SetWaitObserver installs (or clears, with nil) the wait-time observer.
// Frames are only timestamped while an observer is installed and
// metrics.Enabled() is true — the same gating discipline as the whitebox
// probes, so the blackbox configuration never reads the clock.
func (s *Sched) SetWaitObserver(fn WaitObserver) {
	s.mu.Lock()
	s.waitObs = fn
	s.mu.Unlock()
}

// NewSched returns a scheduler bounded at capacity frames (0 means
// unbounded).  A full scheduler rejects pushes with ErrFull: the executive
// turns that into a FailResources reply rather than blocking a transport.
func NewSched(capacity int) *Sched {
	s := &Sched{capacity: capacity}
	s.notEmpty = sync.NewCond(&s.mu)
	return s
}

// Push enqueues a frame according to its priority and target.
func (s *Sched) Push(m *i2o.Message) error {
	if !m.Priority.Valid() {
		return i2o.ErrBadPriority
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.capacity > 0 && s.size >= s.capacity {
		s.mu.Unlock()
		return ErrFull
	}
	it := item{m: m}
	if s.waitObs != nil && metrics.Enabled() {
		it.at = time.Now()
	}
	s.levels[m.Priority].push(it)
	s.size++
	s.mu.Unlock()
	s.notEmpty.Signal()
	return nil
}

// Pop blocks until a frame is available and returns it, serving the lowest
// non-empty priority level and rotating among that level's devices.  It
// returns (nil, false) once the scheduler is closed and drained.
func (s *Sched) Pop() (*i2o.Message, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.size > 0 {
			return s.popLocked(), true
		}
		if s.closed {
			return nil, false
		}
		s.notEmpty.Wait()
	}
}

// TryPop returns the next frame without blocking.
func (s *Sched) TryPop() (*i2o.Message, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.size == 0 {
		return nil, false
	}
	return s.popLocked(), true
}

func (s *Sched) popLocked() *i2o.Message {
	for p := range s.levels {
		if it := s.levels[p].pop(); it.m != nil {
			s.size--
			if !it.at.IsZero() && s.waitObs != nil {
				s.waitObs(i2o.Priority(p), time.Since(it.at))
			}
			return it.m
		}
	}
	panic("queue: size positive but all levels empty")
}

// Close wakes all blocked consumers.  Remaining frames are still drained by
// Pop; pushes after Close fail with ErrClosed.
func (s *Sched) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.notEmpty.Broadcast()
}

// Drain removes and returns all pending frames (used on shutdown so their
// pool buffers can be released).
func (s *Sched) Drain() []*i2o.Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*i2o.Message, 0, s.size)
	for s.size > 0 {
		out = append(out, s.popLocked())
	}
	return out
}

// Len returns the number of queued frames.
func (s *Sched) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// LevelLen returns the number of frames queued at one priority level.
func (s *Sched) LevelLen(p i2o.Priority) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, dq := range s.levels[p].byTID {
		n += dq.q.len()
	}
	return n
}
