// Package queue implements the messaging instance of an IOP: the inbound
// frame scheduler with the I2O dispatch discipline, and the plain bounded
// FIFOs used for outbound paths and simulated hardware queues.
//
// The paper (§4): "For scheduling the dispatching of messages we follow the
// algorithm given in the I2O specification.  There exist seven priority
// levels and for each one the messages are scheduled to a FIFO.  All
// devices are then dispatched in round-robin manner."  Sched implements
// exactly that: per priority level, frames are queued FIFO per target
// device, and within a level the scheduler serves the devices that have
// pending frames in round-robin order.  Lower levels preempt higher ones
// between frames (never mid-handler: the loop of control stays in the
// executive).
package queue

import (
	"errors"
	"sync"
	"time"

	"xdaq/internal/i2o"
	"xdaq/internal/metrics"
)

// Errors.
var (
	// ErrFull reports a push to a scheduler or FIFO at capacity.
	ErrFull = errors.New("queue: full")

	// ErrClosed reports a push to a closed queue.
	ErrClosed = errors.New("queue: closed")
)

// devQueue is one device's FIFO within one priority level.
type devQueue struct {
	tid i2o.TID
	q   deque
}

// devRing is a growable circular buffer of device queues.  Unlike the
// slice-trick ring it replaces (`ring = append(ring[1:], dq)`), rotating a
// device to the back never allocates, which matters on the per-frame hot
// path.
type devRing struct {
	buf  []*devQueue
	head int
	n    int
}

func (r *devRing) len() int { return r.n }

func (r *devRing) at(i int) *devQueue { return r.buf[(r.head+i)%len(r.buf)] }

func (r *devRing) pushBack(dq *devQueue) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = dq
	r.n++
}

func (r *devRing) popFront() *devQueue {
	dq := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return dq
}

// removeAt removes the element at logical index i, preserving the order of
// the remaining elements.
func (r *devRing) removeAt(i int) {
	if i == 0 {
		r.popFront()
		return
	}
	for j := i; j < r.n-1; j++ {
		r.buf[(r.head+j)%len(r.buf)] = r.buf[(r.head+j+1)%len(r.buf)]
	}
	r.buf[(r.head+r.n-1)%len(r.buf)] = nil
	r.n--
}

func (r *devRing) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 8
	}
	buf := make([]*devQueue, size)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = buf
	r.head = 0
}

// level is one priority level: the set of devices with pending frames, in
// round-robin order.  Serving a device rotates it to the back of the ring;
// a device that becomes active (re-)enters at the back, so no device is
// served twice before every other pending device is served once.
//
// Device queues are retained in byTID when they drain empty: TIDs are
// 12-bit, so the retained set is bounded, and reusing the entry keeps the
// steady-state push path allocation-free.
type level struct {
	ring  devRing
	byTID map[i2o.TID]*devQueue
}

func (l *level) push(it item) {
	if l.byTID == nil {
		l.byTID = make(map[i2o.TID]*devQueue)
	}
	dq, ok := l.byTID[it.m.Target]
	if !ok {
		dq = &devQueue{tid: it.m.Target}
		l.byTID[it.m.Target] = dq
	}
	if dq.q.len() == 0 {
		l.ring.pushBack(dq)
	}
	dq.q.pushBack(it)
}

func (l *level) pop() item {
	if l.ring.len() == 0 {
		return item{}
	}
	dq := l.ring.popFront()
	it := dq.q.popFront()
	if dq.q.len() > 0 {
		l.ring.pushBack(dq)
	}
	return it
}

// popEligible pops the round-robin-first frame whose target device is not
// checked out.  A device whose head frame is a correlation reply (see
// Exclusive) is always eligible: replies are matched to a parked waiter by
// context, never upcalled into the device handler, so they need no
// serialization against an in-flight dispatch.  Popping an exclusive frame
// checks its device out by adding it to busy.
func (l *level) popEligible(busy map[i2o.TID]struct{}) (item, bool) {
	for i := 0; i < l.ring.len(); i++ {
		dq := l.ring.at(i)
		excl := Exclusive(dq.q.front().m)
		if excl {
			if _, b := busy[dq.tid]; b {
				continue
			}
		}
		it := dq.q.popFront()
		l.ring.removeAt(i)
		if dq.q.len() > 0 {
			l.ring.pushBack(dq)
		}
		if excl {
			busy[dq.tid] = struct{}{}
		}
		return it, true
	}
	return item{}, false
}

// Sched is the inbound scheduler.  It is safe for concurrent use.  Pop and
// PopBatch serve a single consumer; PopExclusiveBatch plus DeviceDone serve
// N consumers while preserving the I2O discipline (per-device FIFO with at
// most one exclusive frame of a device in flight at a time).
type Sched struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	levels   [i2o.NumPriorities]level
	size     int
	capacity int
	closed   bool
	waitObs  WaitObserver

	// busy is the set of devices checked out by PopExclusiveBatch and not
	// yet returned by DeviceDone.  epoch increments on Interrupt so blocked
	// consumers can be bounced out of their wait to re-check external state.
	busy  map[i2o.TID]struct{}
	epoch uint64
}

// Exclusive reports whether dispatching m requires exclusive checkout of
// its target device.  Correlation replies (reply flag plus a nonzero
// initiator context) are matched to the parked requester by context and
// never enter the device handler, so they dispatch concurrently with the
// device's in-flight frame; everything else is serialized per device.
func Exclusive(m *i2o.Message) bool {
	return !(m.Flags.Has(i2o.FlagReply) && m.InitiatorContext != 0)
}

// WaitObserver receives the time one frame spent queued, per priority
// level.  The executive installs one that feeds the per-priority
// exec.queue.wait histograms.
type WaitObserver func(p i2o.Priority, wait time.Duration)

// SetWaitObserver installs (or clears, with nil) the wait-time observer.
// Frames are only timestamped while an observer is installed and
// metrics.Enabled() is true — the same gating discipline as the whitebox
// probes, so the blackbox configuration never reads the clock.
func (s *Sched) SetWaitObserver(fn WaitObserver) {
	s.mu.Lock()
	s.waitObs = fn
	s.mu.Unlock()
}

// NewSched returns a scheduler bounded at capacity frames (0 means
// unbounded).  A full scheduler rejects pushes with ErrFull: the executive
// turns that into a FailResources reply rather than blocking a transport.
func NewSched(capacity int) *Sched {
	s := &Sched{capacity: capacity, busy: make(map[i2o.TID]struct{})}
	s.notEmpty = sync.NewCond(&s.mu)
	return s
}

// Push enqueues a frame according to its priority and target.
func (s *Sched) Push(m *i2o.Message) error {
	if !m.Priority.Valid() {
		return i2o.ErrBadPriority
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.capacity > 0 && s.size >= s.capacity {
		s.mu.Unlock()
		return ErrFull
	}
	it := item{m: m}
	if s.waitObs != nil && metrics.Enabled() {
		it.at = time.Now()
	}
	s.levels[m.Priority].push(it)
	s.size++
	s.mu.Unlock()
	s.notEmpty.Signal()
	return nil
}

// Pop blocks until a frame is available and returns it, serving the lowest
// non-empty priority level and rotating among that level's devices.  It
// returns (nil, false) once the scheduler is closed and drained.
func (s *Sched) Pop() (*i2o.Message, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.size > 0 {
			return s.popLocked(), true
		}
		if s.closed {
			return nil, false
		}
		s.notEmpty.Wait()
	}
}

// TryPop returns the next frame without blocking.
func (s *Sched) TryPop() (*i2o.Message, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.size == 0 {
		return nil, false
	}
	return s.popLocked(), true
}

func (s *Sched) popLocked() *i2o.Message {
	for p := range s.levels {
		if it := s.levels[p].pop(); it.m != nil {
			s.size--
			if !it.at.IsZero() && s.waitObs != nil {
				s.waitObs(i2o.Priority(p), time.Since(it.at))
			}
			return it.m
		}
	}
	panic("queue: size positive but all levels empty")
}

// PopBatch blocks until at least one frame is available and then fills dst
// with up to len(dst) frames in exactly the order repeated Pop calls would
// have returned them, under a single lock acquisition.  It returns the
// count and false once the scheduler is closed and drained.
func (s *Sched) PopBatch(dst []*i2o.Message) (int, bool) {
	if len(dst) == 0 {
		return 0, true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.size > 0 {
			n := 0
			for n < len(dst) && s.size > 0 {
				dst[n] = s.popLocked()
				n++
			}
			return n, true
		}
		if s.closed {
			return 0, false
		}
		s.notEmpty.Wait()
	}
}

// PopExclusiveBatch blocks until at least one eligible frame is available
// and fills dst with up to len(dst) of them, checking out the target device
// of every exclusive frame popped (see Exclusive).  The consumer must call
// DeviceDone for each checked-out device once its dispatch ends; frames for
// checked-out devices stay queued, so per-device FIFO order and
// at-most-one-in-flight are preserved across N concurrent consumers while
// an eligible frame is never held back by an unrelated slow device.
//
// lastEpoch is the caller's record of the interrupt epoch, carried across
// calls (start it at zero).  Whenever the scheduler's epoch differs — an
// Interrupt fired since the caller last looked, even between its calls —
// the call syncs *lastEpoch and returns (0, true) immediately, so a
// consumer can never sleep through an interrupt by arriving just after it.
//
// It returns (n, true) with n > 0 on success, (0, true) on an interrupt
// bounce (the caller should re-check its control state and come back), and
// (0, false) once the scheduler is closed and drained.
func (s *Sched) PopExclusiveBatch(dst []*i2o.Message, lastEpoch *uint64) (int, bool) {
	if len(dst) == 0 {
		return 0, true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.epoch != *lastEpoch {
		*lastEpoch = s.epoch
		return 0, true
	}
	for {
		n := 0
		for n < len(dst) {
			it, ok := s.popEligibleLocked()
			if !ok {
				break
			}
			dst[n] = it
			n++
		}
		if n > 0 {
			if s.size > 0 {
				// More frames remain (possibly eligible for another
				// consumer): chain the wakeup rather than leaving a peer
				// blocked until the next Push.
				s.notEmpty.Signal()
			}
			return n, true
		}
		if s.closed && s.size == 0 {
			return 0, false
		}
		s.notEmpty.Wait()
		if s.epoch != *lastEpoch {
			*lastEpoch = s.epoch
			return 0, true
		}
	}
}

func (s *Sched) popEligibleLocked() (*i2o.Message, bool) {
	for p := range s.levels {
		if it, ok := s.levels[p].popEligible(s.busy); ok {
			s.size--
			if !it.at.IsZero() && s.waitObs != nil {
				s.waitObs(i2o.Priority(p), time.Since(it.at))
			}
			return it.m, true
		}
	}
	return nil, false
}

// DeviceDone returns a device checked out by PopExclusiveBatch, making its
// queued frames eligible again and waking a blocked consumer if frames are
// pending.
func (s *Sched) DeviceDone(tid i2o.TID) {
	s.mu.Lock()
	delete(s.busy, tid)
	pending := s.size > 0
	closed := s.closed
	s.mu.Unlock()
	if pending {
		if closed {
			// During drain every consumer must re-check: the one woken by
			// Signal might not be the one able to exit.
			s.notEmpty.Broadcast()
		} else {
			s.notEmpty.Signal()
		}
	}
}

// Interrupt bounces every consumer blocked in PopExclusiveBatch, which
// returns (0, true) so callers re-evaluate external control state (the
// executive uses this to retire surplus dispatch workers).
func (s *Sched) Interrupt() {
	s.mu.Lock()
	s.epoch++
	s.mu.Unlock()
	s.notEmpty.Broadcast()
}

// Close wakes all blocked consumers.  Remaining frames are still drained by
// Pop; pushes after Close fail with ErrClosed.
func (s *Sched) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.notEmpty.Broadcast()
}

// Drain removes and returns all pending frames (used on shutdown so their
// pool buffers can be released).
func (s *Sched) Drain() []*i2o.Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*i2o.Message, 0, s.size)
	for s.size > 0 {
		out = append(out, s.popLocked())
	}
	return out
}

// Len returns the number of queued frames.
func (s *Sched) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// LevelLen returns the number of frames queued at one priority level.
func (s *Sched) LevelLen(p i2o.Priority) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, dq := range s.levels[p].byTID {
		n += dq.q.len()
	}
	return n
}
