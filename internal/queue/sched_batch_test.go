package queue

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xdaq/internal/i2o"
)

// reply builds a correlated reply frame (non-exclusive under the parallel
// dispatch discipline).
func reply(target i2o.TID, prio i2o.Priority, seq uint32) *i2o.Message {
	m := msg(target, prio, seq)
	m.Flags = i2o.FlagReply
	return m
}

func TestPopBatchMatchesPopOrder(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	one, batched := NewSched(0), NewSched(0)
	const frames = 500
	for i := 0; i < frames; i++ {
		f := msg(i2o.TID(1+r.Intn(6)), i2o.Priority(r.Intn(i2o.NumPriorities)), uint32(i))
		if err := one.Push(f); err != nil {
			t.Fatal(err)
		}
		if err := batched.Push(f); err != nil {
			t.Fatal(err)
		}
	}
	var want, got []*i2o.Message
	for {
		m, ok := one.TryPop()
		if !ok {
			break
		}
		want = append(want, m)
	}
	buf := make([]*i2o.Message, 7) // odd size so batches straddle devices
	batched.Close()
	for {
		n, ok := batched.PopBatch(buf)
		if !ok {
			break
		}
		got = append(got, buf[:n]...)
	}
	if len(got) != len(want) {
		t.Fatalf("PopBatch drained %d frames, Pop %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order diverges at %d: batch %v, pop %v", i, got[i], want[i])
		}
	}
}

func TestExclusiveBatchChecksOutDevice(t *testing.T) {
	s := NewSched(0)
	for i := uint32(0); i < 3; i++ {
		if err := s.Push(msg(9, i2o.PriorityNormal, i)); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]*i2o.Message, 8)
	var ep uint64
	n, ok := s.PopExclusiveBatch(buf, &ep)
	if !ok || n != 1 {
		// Only the head frame is eligible: the device is checked out by the
		// first pop, so its remaining frames stay queued.
		t.Fatalf("first batch: n=%d ok=%v, want 1 frame", n, ok)
	}
	if buf[0].InitiatorContext != 0 {
		t.Fatalf("popped %v, want seq 0", buf[0])
	}
	s.DeviceDone(9)
	n, _ = s.PopExclusiveBatch(buf, &ep)
	if n != 1 || buf[0].InitiatorContext != 1 {
		t.Fatalf("after DeviceDone: n=%d frame=%v, want seq 1", n, buf[0])
	}
}

func TestExclusiveRepliesBypassBusyDevice(t *testing.T) {
	s := NewSched(0)
	if err := s.Push(msg(5, i2o.PriorityNormal, 1)); err != nil {
		t.Fatal(err)
	}
	buf := make([]*i2o.Message, 4)
	var ep uint64
	if n, _ := s.PopExclusiveBatch(buf, &ep); n != 1 {
		t.Fatalf("checkout pop: %d", n)
	}
	// Device 5 is now checked out; a correlated reply addressed to it must
	// still flow (replies are matched to parked waiters, never upcalled).
	if err := s.Push(reply(5, i2o.PriorityNormal, 77)); err != nil {
		t.Fatal(err)
	}
	n, ok := s.PopExclusiveBatch(buf, &ep)
	if !ok || n != 1 || buf[0].InitiatorContext != 77 {
		t.Fatalf("reply did not bypass busy device: n=%d %v", n, buf[0])
	}
}

func TestExclusiveSlowDeviceDoesNotBlockOthers(t *testing.T) {
	s := NewSched(0)
	// Device 1's frame is popped and held (its consumer is "slow"); frames
	// for devices 2..5 must still be poppable by another consumer.
	if err := s.Push(msg(1, i2o.PriorityNormal, 0)); err != nil {
		t.Fatal(err)
	}
	buf := make([]*i2o.Message, 1)
	var ep uint64
	if n, _ := s.PopExclusiveBatch(buf, &ep); n != 1 {
		t.Fatal("checkout pop")
	}
	for d := i2o.TID(2); d <= 5; d++ {
		if err := s.Push(msg(d, i2o.PriorityNormal, uint32(d))); err != nil {
			t.Fatal(err)
		}
		if err := s.Push(msg(1, i2o.PriorityNormal, uint32(100+d))); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[i2o.TID]bool{}
	wide := make([]*i2o.Message, 16)
	n, ok := s.PopExclusiveBatch(wide, &ep)
	if !ok {
		t.Fatal("pop blocked by busy device")
	}
	for i := 0; i < n; i++ {
		if wide[i].Target == 1 {
			t.Fatalf("popped a frame for the checked-out device: %v", wide[i])
		}
		seen[wide[i].Target] = true
	}
	if len(seen) != 4 {
		t.Fatalf("got devices %v, want 2..5", seen)
	}
}

func TestExclusiveBatchFIFOUnderConcurrentConsumers(t *testing.T) {
	s := NewSched(0)
	const devices, perDevice, consumers = 8, 200, 4

	var mu sync.Mutex
	lastSeq := make(map[i2o.TID]uint32)
	inFlight := make(map[i2o.TID]*atomic.Int32)
	for d := 1; d <= devices; d++ {
		inFlight[i2o.TID(d)] = &atomic.Int32{}
	}
	var violations atomic.Int32

	var wg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]*i2o.Message, 4)
			var ep uint64
			for {
				n, ok := s.PopExclusiveBatch(buf, &ep)
				if !ok {
					return
				}
				for i := 0; i < n; i++ {
					m := buf[i]
					if g := inFlight[m.Target]; g.Add(1) != 1 {
						violations.Add(1)
					}
					mu.Lock()
					if last, seen := lastSeq[m.Target]; seen && m.InitiatorContext != last+1 {
						violations.Add(1)
					}
					lastSeq[m.Target] = m.InitiatorContext
					mu.Unlock()
					if m.InitiatorContext%37 == 0 {
						time.Sleep(time.Microsecond) // jitter the interleaving
					}
					inFlight[m.Target].Add(-1)
					s.DeviceDone(m.Target)
				}
			}
		}()
	}

	var pwg sync.WaitGroup
	for d := 1; d <= devices; d++ {
		pwg.Add(1)
		go func(d i2o.TID) {
			defer pwg.Done()
			for i := uint32(1); i <= perDevice; i++ {
				if err := s.Push(msg(d, i2o.PriorityNormal, i)); err != nil {
					t.Errorf("push: %v", err)
					return
				}
			}
		}(i2o.TID(d))
	}
	pwg.Wait()
	s.Close()
	wg.Wait()

	if v := violations.Load(); v != 0 {
		t.Fatalf("%d FIFO/serialization violations", v)
	}
	for d := 1; d <= devices; d++ {
		if lastSeq[i2o.TID(d)] != perDevice {
			t.Fatalf("device %d: consumed up to %d, want %d", d, lastSeq[i2o.TID(d)], perDevice)
		}
	}
}

func TestExclusiveBatchInterrupt(t *testing.T) {
	s := NewSched(0)
	bounced := make(chan bool, 1)
	go func() {
		buf := make([]*i2o.Message, 1)
		var ep uint64
		n, ok := s.PopExclusiveBatch(buf, &ep)
		bounced <- ok && n == 0
	}()
	time.Sleep(10 * time.Millisecond)
	s.Interrupt()
	select {
	case got := <-bounced:
		if !got {
			t.Fatal("Interrupt did not surface as (0, true)")
		}
	case <-time.After(time.Second):
		t.Fatal("Interrupt did not wake the consumer")
	}
}

func TestExclusiveBatchDrainsAfterClose(t *testing.T) {
	s := NewSched(0)
	for i := uint32(0); i < 5; i++ {
		if err := s.Push(msg(i2o.TID(1+i), i2o.PriorityNormal, i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	buf := make([]*i2o.Message, 2)
	var ep uint64
	total := 0
	for {
		n, ok := s.PopExclusiveBatch(buf, &ep)
		if !ok {
			break
		}
		for i := 0; i < n; i++ {
			s.DeviceDone(buf[i].Target)
		}
		total += n
	}
	if total != 5 {
		t.Fatalf("drained %d frames after close, want 5", total)
	}
}
