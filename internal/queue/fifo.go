package queue

import (
	"sync"
	"time"

	"xdaq/internal/i2o"
)

// FIFO is a bounded multi-producer multi-consumer frame queue.  It models
// the plain inbound/outbound hardware queue pairs of the I2O messaging
// instance (figure 2 of the paper) and is reused by the simulated PCI
// transport for its hardware FIFOs.
type FIFO struct {
	ch        chan *i2o.Message
	done      chan struct{}
	closeOnce sync.Once
}

// NewFIFO returns a FIFO bounded at capacity frames; capacity must be
// positive (hardware queues always have a depth).
func NewFIFO(capacity int) *FIFO {
	if capacity <= 0 {
		panic("queue: FIFO capacity must be positive")
	}
	return &FIFO{
		ch:   make(chan *i2o.Message, capacity),
		done: make(chan struct{}),
	}
}

// Push enqueues without blocking; a full queue returns ErrFull.
func (f *FIFO) Push(m *i2o.Message) error {
	select {
	case <-f.done:
		return ErrClosed
	default:
	}
	select {
	case f.ch <- m:
		return nil
	default:
		return ErrFull
	}
}

// PushWait blocks until space is available (backpressure, as a full
// hardware FIFO stalls the writer) or the queue closes.
func (f *FIFO) PushWait(m *i2o.Message) error {
	select {
	case <-f.done:
		return ErrClosed
	default:
	}
	select {
	case f.ch <- m:
		return nil
	case <-f.done:
		return ErrClosed
	}
}

// Pop blocks until a frame is available; it returns (nil, false) once the
// queue is closed and drained.
func (f *FIFO) Pop() (*i2o.Message, bool) {
	select {
	case m := <-f.ch:
		return m, true
	case <-f.done:
		// Closed: drain whatever remains, then report closure.
		select {
		case m := <-f.ch:
			return m, true
		default:
			return nil, false
		}
	}
}

// TryPop returns the next frame without blocking.
func (f *FIFO) TryPop() (*i2o.Message, bool) {
	select {
	case m := <-f.ch:
		return m, true
	default:
		return nil, false
	}
}

// PopTimeout waits up to d for a frame.  It returns (nil, false) on timeout
// or on closure with an empty queue.  Polling-mode peer transports use it
// to bound their scan.
func (f *FIFO) PopTimeout(d time.Duration) (*i2o.Message, bool) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case m := <-f.ch:
		return m, true
	case <-f.done:
		select {
		case m := <-f.ch:
			return m, true
		default:
			return nil, false
		}
	case <-t.C:
		return nil, false
	}
}

// Close wakes all waiters; Pop drains remaining frames first.  Close is
// idempotent.
func (f *FIFO) Close() {
	f.closeOnce.Do(func() { close(f.done) })
}

// Len returns the number of queued frames.
func (f *FIFO) Len() int { return len(f.ch) }

// Cap returns the queue depth.
func (f *FIFO) Cap() int { return cap(f.ch) }
