package queue

import (
	"errors"
	"sync"
	"testing"
	"time"

	"xdaq/internal/i2o"
)

func TestFIFOOrder(t *testing.T) {
	f := NewFIFO(16)
	for i := uint32(0); i < 10; i++ {
		if err := f.Push(msg(1, 0, i)); err != nil {
			t.Fatal(err)
		}
	}
	if f.Len() != 10 || f.Cap() != 16 {
		t.Fatalf("len=%d cap=%d", f.Len(), f.Cap())
	}
	for i := uint32(0); i < 10; i++ {
		m, ok := f.TryPop()
		if !ok || m.InitiatorContext != i {
			t.Fatalf("pop %d: %v %v", i, m, ok)
		}
	}
	if _, ok := f.TryPop(); ok {
		t.Fatal("TryPop on empty returned a frame")
	}
}

func TestFIFOFull(t *testing.T) {
	f := NewFIFO(1)
	if err := f.Push(msg(1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := f.Push(msg(1, 0, 2)); !errors.Is(err, ErrFull) {
		t.Fatalf("push to full: %v", err)
	}
}

func TestFIFOPushWaitBackpressure(t *testing.T) {
	f := NewFIFO(1)
	if err := f.PushWait(msg(1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	unblocked := make(chan error, 1)
	go func() { unblocked <- f.PushWait(msg(1, 0, 2)) }()
	select {
	case <-unblocked:
		t.Fatal("PushWait did not block on a full queue")
	case <-time.After(20 * time.Millisecond):
	}
	if _, ok := f.Pop(); !ok {
		t.Fatal("pop")
	}
	if err := <-unblocked; err != nil {
		t.Fatalf("PushWait after drain: %v", err)
	}
}

func TestFIFOCloseSemantics(t *testing.T) {
	f := NewFIFO(4)
	if err := f.Push(msg(1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	f.Close() // idempotent
	if err := f.Push(msg(1, 0, 2)); !errors.Is(err, ErrClosed) {
		t.Fatalf("push after close: %v", err)
	}
	if err := f.PushWait(msg(1, 0, 3)); !errors.Is(err, ErrClosed) {
		t.Fatalf("pushwait after close: %v", err)
	}
	if m, ok := f.Pop(); !ok || m.InitiatorContext != 1 {
		t.Fatalf("drain after close: %v %v", m, ok)
	}
	if _, ok := f.Pop(); ok {
		t.Fatal("pop after drain")
	}
}

func TestFIFOCloseWakesBlockedPop(t *testing.T) {
	f := NewFIFO(1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, ok := f.Pop(); ok {
			t.Error("blocked Pop on empty queue returned a frame")
		}
	}()
	time.Sleep(20 * time.Millisecond)
	f.Close()
	waitDone(t, &wg, time.Second)
}

func TestFIFOCloseWakesBlockedPushWait(t *testing.T) {
	f := NewFIFO(1)
	if err := f.Push(msg(1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := f.PushWait(msg(1, 0, 2)); !errors.Is(err, ErrClosed) {
			t.Errorf("blocked PushWait: %v", err)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	f.Close()
	waitDone(t, &wg, time.Second)
}

func waitDone(t *testing.T, wg *sync.WaitGroup, d time.Duration) {
	t.Helper()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatal("goroutines did not finish")
	}
}

func TestFIFOPopTimeout(t *testing.T) {
	f := NewFIFO(1)
	start := time.Now()
	if _, ok := f.PopTimeout(10 * time.Millisecond); ok {
		t.Fatal("PopTimeout on empty returned a frame")
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Fatal("PopTimeout returned early")
	}
	if err := f.Push(msg(1, 0, 7)); err != nil {
		t.Fatal(err)
	}
	m, ok := f.PopTimeout(time.Second)
	if !ok || m.InitiatorContext != 7 {
		t.Fatalf("PopTimeout: %v %v", m, ok)
	}
}

func TestFIFOPopTimeoutAfterClose(t *testing.T) {
	f := NewFIFO(1)
	if err := f.Push(msg(1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if m, ok := f.PopTimeout(time.Second); !ok || m.InitiatorContext != 1 {
		t.Fatalf("drain via PopTimeout: %v %v", m, ok)
	}
	if _, ok := f.PopTimeout(time.Millisecond); ok {
		t.Fatal("PopTimeout after drain")
	}
}

func TestFIFOZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFIFO(0) did not panic")
		}
	}()
	NewFIFO(0)
}

func TestFIFOConcurrent(t *testing.T) {
	f := NewFIFO(8)
	const producers, per = 4, 250
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := f.PushWait(msg(i2o.TID(p+1), 0, uint32(i))); err != nil {
					t.Errorf("push: %v", err)
					return
				}
			}
		}(p)
	}
	counts := make(map[i2o.TID]int)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			m, ok := f.Pop()
			if !ok {
				return
			}
			counts[m.Target]++
		}
	}()
	wg.Wait()
	f.Close()
	<-done
	for p := 1; p <= producers; p++ {
		if counts[i2o.TID(p)] != per {
			t.Fatalf("producer %d delivered %d frames", p, counts[i2o.TID(p)])
		}
	}
}

func TestDequeGrowth(t *testing.T) {
	var d deque
	// Interleave pushes and pops so head is nonzero when growth happens.
	for i := uint32(0); i < 3; i++ {
		d.pushBack(item{m: msg(1, 0, i)})
	}
	d.popFront()
	d.popFront()
	for i := uint32(3); i < 50; i++ {
		d.pushBack(item{m: msg(1, 0, i)})
	}
	for want := uint32(2); want < 50; want++ {
		it := d.popFront()
		if it.m == nil || it.m.InitiatorContext != want {
			t.Fatalf("popFront = %v, want seq %d", it.m, want)
		}
	}
	if d.len() != 0 || d.popFront().m != nil {
		t.Fatal("deque not empty at end")
	}
}
