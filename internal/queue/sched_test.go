package queue

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"xdaq/internal/i2o"
)

func msg(target i2o.TID, prio i2o.Priority, seq uint32) *i2o.Message {
	return &i2o.Message{
		Target:           target,
		Priority:         prio,
		Function:         i2o.FuncPrivate,
		InitiatorContext: seq,
	}
}

func TestSchedFIFOWithinDevice(t *testing.T) {
	s := NewSched(0)
	for i := uint32(0); i < 100; i++ {
		if err := s.Push(msg(5, i2o.PriorityNormal, i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint32(0); i < 100; i++ {
		m, ok := s.TryPop()
		if !ok || m.InitiatorContext != i {
			t.Fatalf("pop %d: got %v ok=%v", i, m, ok)
		}
	}
}

func TestSchedPriorityOrder(t *testing.T) {
	s := NewSched(0)
	// Push in reverse priority order; pops must come back urgent-first.
	for p := i2o.Priority(i2o.NumPriorities - 1); ; p-- {
		if err := s.Push(msg(1, p, uint32(p))); err != nil {
			t.Fatal(err)
		}
		if p == 0 {
			break
		}
	}
	for want := i2o.Priority(0); want < i2o.NumPriorities; want++ {
		m, ok := s.TryPop()
		if !ok || m.Priority != want {
			t.Fatalf("want priority %d, got %v", want, m)
		}
	}
}

func TestSchedRoundRobinAcrossDevices(t *testing.T) {
	s := NewSched(0)
	// Three devices, three frames each, same priority.
	for seq := uint32(0); seq < 3; seq++ {
		for _, dev := range []i2o.TID{10, 20, 30} {
			if err := s.Push(msg(dev, i2o.PriorityNormal, seq)); err != nil {
				t.Fatal(err)
			}
		}
	}
	var order []i2o.TID
	for {
		m, ok := s.TryPop()
		if !ok {
			break
		}
		order = append(order, m.Target)
	}
	want := []i2o.TID{10, 20, 30, 10, 20, 30, 10, 20, 30}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("round robin order %v, want %v", order, want)
		}
	}
}

func TestSchedRoundRobinNoStarvation(t *testing.T) {
	s := NewSched(0)
	// Device 1 has a deep backlog; device 2 arrives later with one frame.
	for i := uint32(0); i < 10; i++ {
		if err := s.Push(msg(1, 0, i)); err != nil {
			t.Fatal(err)
		}
	}
	m, _ := s.TryPop() // serve one frame of device 1
	if m.Target != 1 {
		t.Fatal("first pop")
	}
	if err := s.Push(msg(2, 0, 100)); err != nil {
		t.Fatal(err)
	}
	// Device 2 must be served within one full rotation (i.e. among the next
	// two pops), and service then alternates — the backlog cannot starve it.
	first, _ := s.TryPop()
	second, _ := s.TryPop()
	if first.Target != 2 && second.Target != 2 {
		t.Fatalf("late-arriving device starved: popped %v then %v", first, second)
	}
}

func TestSchedBlockingPop(t *testing.T) {
	s := NewSched(0)
	got := make(chan *i2o.Message, 1)
	go func() {
		m, _ := s.Pop()
		got <- m
	}()
	time.Sleep(10 * time.Millisecond)
	if err := s.Push(msg(1, 0, 42)); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m.InitiatorContext != 42 {
			t.Fatalf("got %v", m)
		}
	case <-time.After(time.Second):
		t.Fatal("Pop did not wake")
	}
}

func TestSchedCloseDrains(t *testing.T) {
	s := NewSched(0)
	if err := s.Push(msg(1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.Push(msg(1, 0, 2)); !errors.Is(err, ErrClosed) {
		t.Fatalf("push after close: %v", err)
	}
	if m, ok := s.Pop(); !ok || m.InitiatorContext != 1 {
		t.Fatalf("drain pop: %v %v", m, ok)
	}
	if _, ok := s.Pop(); ok {
		t.Fatal("pop after drain returned a frame")
	}
}

func TestSchedCapacity(t *testing.T) {
	s := NewSched(2)
	if err := s.Push(msg(1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Push(msg(1, 0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Push(msg(1, 0, 3)); !errors.Is(err, ErrFull) {
		t.Fatalf("over-capacity push: %v", err)
	}
	s.TryPop()
	if err := s.Push(msg(1, 0, 3)); err != nil {
		t.Fatalf("push after pop: %v", err)
	}
}

func TestSchedRejectsBadPriority(t *testing.T) {
	s := NewSched(0)
	if err := s.Push(msg(1, i2o.NumPriorities, 0)); !errors.Is(err, i2o.ErrBadPriority) {
		t.Fatalf("bad priority: %v", err)
	}
}

func TestSchedDrain(t *testing.T) {
	s := NewSched(0)
	for i := uint32(0); i < 5; i++ {
		if err := s.Push(msg(i2o.TID(i+1), i2o.Priority(i%3), i)); err != nil {
			t.Fatal(err)
		}
	}
	out := s.Drain()
	if len(out) != 5 || s.Len() != 0 {
		t.Fatalf("drain returned %d, len %d", len(out), s.Len())
	}
}

func TestSchedLevelLen(t *testing.T) {
	s := NewSched(0)
	for i := 0; i < 3; i++ {
		if err := s.Push(msg(1, i2o.PriorityLow, uint32(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Push(msg(2, i2o.PriorityUrgent, 9)); err != nil {
		t.Fatal(err)
	}
	if s.LevelLen(i2o.PriorityLow) != 3 || s.LevelLen(i2o.PriorityUrgent) != 1 || s.LevelLen(i2o.PriorityBulk) != 0 {
		t.Fatalf("level lens: low=%d urgent=%d", s.LevelLen(i2o.PriorityLow), s.LevelLen(i2o.PriorityUrgent))
	}
}

func TestSchedConcurrentProducers(t *testing.T) {
	s := NewSched(0)
	const producers, per = 8, 200
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := s.Push(msg(i2o.TID(p+1), i2o.Priority(i%i2o.NumPriorities), uint32(i))); err != nil {
					t.Errorf("push: %v", err)
					return
				}
			}
		}(p)
	}
	done := make(chan int)
	go func() {
		n := 0
		perDev := make(map[i2o.TID]uint32)
		for {
			m, ok := s.Pop()
			if !ok {
				done <- n
				return
			}
			// Per (device, priority) order is FIFO; with priorities mixed we
			// only check sequence monotonicity per device per priority via
			// context encoding (i%7 == priority so contexts at one priority
			// arrive in increasing order).
			key := m.Target*100 + i2o.TID(m.Priority)
			if last, ok := perDev[key]; ok && m.InitiatorContext <= last {
				t.Errorf("device %v prio %d: context %d after %d", m.Target, m.Priority, m.InitiatorContext, last)
			}
			perDev[key] = m.InitiatorContext
			n++
		}
	}()
	wg.Wait()
	s.Close()
	if n := <-done; n != producers*per {
		t.Fatalf("consumed %d, want %d", n, producers*per)
	}
}

// model reproduces the documented scheduling discipline in plain Go so that
// quick can compare implementation and specification on random workloads.
type modelSched struct {
	levels [i2o.NumPriorities]struct {
		ring []i2o.TID
		q    map[i2o.TID][]*i2o.Message
	}
}

func (m *modelSched) push(f *i2o.Message) {
	l := &m.levels[f.Priority]
	if l.q == nil {
		l.q = map[i2o.TID][]*i2o.Message{}
	}
	if len(l.q[f.Target]) == 0 {
		l.ring = append(l.ring, f.Target)
	}
	l.q[f.Target] = append(l.q[f.Target], f)
}

func (m *modelSched) pop() *i2o.Message {
	for p := range m.levels {
		l := &m.levels[p]
		if len(l.ring) == 0 {
			continue
		}
		dev := l.ring[0]
		f := l.q[dev][0]
		l.q[dev] = l.q[dev][1:]
		l.ring = l.ring[1:]
		if len(l.q[dev]) > 0 {
			l.ring = append(l.ring, dev)
		}
		return f
	}
	return nil
}

func TestQuickSchedMatchesModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewSched(0)
		m := &modelSched{}
		seq := uint32(0)
		for op := 0; op < 200; op++ {
			if r.Intn(3) > 0 || s.Len() == 0 { // bias toward pushes
				f := msg(i2o.TID(1+r.Intn(4)), i2o.Priority(r.Intn(i2o.NumPriorities)), seq)
				seq++
				if s.Push(f) != nil {
					return false
				}
				m.push(f)
			} else {
				got, ok := s.TryPop()
				want := m.pop()
				if !ok || got != want {
					t.Logf("seed %d op %d: got %v want %v", seed, op, got, want)
					return false
				}
			}
		}
		for {
			got, ok := s.TryPop()
			want := m.pop()
			if !ok {
				return want == nil
			}
			if got != want {
				return false
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
