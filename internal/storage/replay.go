package storage

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"xdaq/internal/chain"
	"xdaq/internal/device"
	"xdaq/internal/i2o"
)

// ClassReplay is the replay reader device class name.
const ClassReplay = "storage.replay"

// replayRetryDelay spaces resends after an AckFull nack or a transient
// send failure — the same order as the BU's grant retry.
const replayRetryDelay = 500 * time.Microsecond

// ReplayStats summarizes one replay pass.
type ReplayStats struct {
	Sent   uint64 // write transfers issued (including resends)
	Stored uint64 // events acked AckStored
	Dups   uint64 // events acked AckDup (already durable)
	Fulls  uint64 // AckFull nacks (writer backpressure)
	Fails  uint64 // events refused AckFail (writer dead or closed)
	Done   bool   // every record completed before the deadline
}

// Replayer streams a recorded segment set back through the cluster as a
// load generator: each record travels to its stripe's storage writer as
// a regular XFuncWrite transfer, with a bounded in-flight window paced
// by the acks.  Replaying an already-stored set is harmless (AckDup),
// which is exactly how recovery converges after a writer crash: replay
// the full set, the survivors dedup, the torn tail heals.
type Replayer struct {
	dev *device.Device

	mu       sync.Mutex
	ctx      *device.Context
	targets  []i2o.TID
	window   int
	records  []Record
	next     int
	inflight map[uint64]int // event -> record index
	gen      uint64         // invalidates timers from finished passes
	done     chan struct{}
	finished bool

	xferSeq                               atomic.Uint32
	nSent, nStored, nDups, nFulls, nFails atomic.Uint64
}

// NewReplayer creates replay reader `instance`.
func NewReplayer(instance int) *Replayer {
	r := &Replayer{}
	r.dev = device.New(ClassReplay, instance)
	r.dev.Bind(XFuncWriteAck, r.onAck)
	r.dev.OnPlugged = func(ctx *device.Context) error {
		r.mu.Lock()
		r.ctx = ctx
		r.mu.Unlock()
		return nil
	}
	return r
}

// Device returns the module to plug into an executive.
func (r *Replayer) Device() *device.Device { return r.dev }

// Configure sets the stripe targets (event % len(targets) picks the
// writer) and the in-flight window per pass.
func (r *Replayer) Configure(targets []i2o.TID, window int) {
	if window <= 0 {
		window = 16
	}
	r.mu.Lock()
	r.targets = append([]i2o.TID(nil), targets...)
	r.window = window
	r.mu.Unlock()
}

// Start begins one replay pass over records.  A pass completes when
// every record was acked (stored, duplicate, or failed); Wait blocks for
// that with a deadline, because a killed writer acks nothing.
func (r *Replayer) Start(records []Record) error {
	r.mu.Lock()
	if r.ctx == nil {
		r.mu.Unlock()
		return device.ErrNotPlugged
	}
	if len(r.targets) == 0 {
		r.mu.Unlock()
		return fmt.Errorf("storage: replayer has no targets")
	}
	if r.done != nil && !r.finished {
		r.mu.Unlock()
		return fmt.Errorf("storage: replay pass already running")
	}
	r.records = records
	r.next = 0
	r.inflight = make(map[uint64]int, r.window)
	r.gen++
	r.done = make(chan struct{})
	r.finished = false
	r.nSent.Store(0)
	r.nStored.Store(0)
	r.nDups.Store(0)
	r.nFulls.Store(0)
	r.nFails.Store(0)
	r.pumpLocked()
	r.mu.Unlock()
	return nil
}

// Wait blocks until the pass completes or the deadline passes.
func (r *Replayer) Wait(timeout time.Duration) ReplayStats {
	r.mu.Lock()
	done := r.done
	r.mu.Unlock()
	completed := false
	if done != nil {
		select {
		case <-done:
			completed = true
		case <-time.After(timeout):
		}
	}
	r.mu.Lock()
	r.finished = true // a timed-out pass stops resending
	r.gen++
	r.mu.Unlock()
	return ReplayStats{
		Sent:   r.nSent.Load(),
		Stored: r.nStored.Load(),
		Dups:   r.nDups.Load(),
		Fulls:  r.nFulls.Load(),
		Fails:  r.nFails.Load(),
		Done:   completed,
	}
}

// pumpLocked fills the window.  Caller holds r.mu.
func (r *Replayer) pumpLocked() {
	for len(r.inflight) < r.window && r.next < len(r.records) {
		idx := r.next
		r.next++
		r.inflight[r.records[idx].Event] = idx
		r.sendLocked(idx)
	}
	if len(r.inflight) == 0 && r.next == len(r.records) && !r.finished {
		r.finished = true
		close(r.done)
	}
}

// sendLocked issues one record's write transfer; transient send errors
// reschedule themselves.  Caller holds r.mu.
func (r *Replayer) sendLocked(idx int) {
	rec := r.records[idx]
	target := r.targets[rec.Event%uint64(len(r.targets))]
	payload := make([]byte, 8+len(rec.Data))
	binary.LittleEndian.PutUint64(payload, rec.Event)
	copy(payload[8:], rec.Data)
	err := chain.SendBytes(r.ctx.Host, target, r.dev.TID(), XFuncWrite,
		i2o.PriorityBulk, r.xferSeq.Add(1), payload)
	if err != nil {
		// Ring full or peer briefly unreachable: try again shortly.  A
		// permanently dead target never acks, which the pass deadline
		// absorbs — the next pass restores whatever it missed.
		r.retryLater(rec.Event, idx)
		return
	}
	r.nSent.Add(1)
}

// retryLater re-issues a record's send after the retry delay, unless
// the pass it belongs to is over.
func (r *Replayer) retryLater(event uint64, idx int) {
	gen := r.gen
	time.AfterFunc(replayRetryDelay, func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.gen != gen || r.finished {
			return
		}
		if _, ok := r.inflight[event]; !ok {
			return
		}
		r.sendLocked(idx)
	})
}

// onAck handles one WriteAck.
func (r *Replayer) onAck(ctx *device.Context, m *i2o.Message) error {
	a, err := DecodeWriteAck(m.Payload)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	idx, ok := r.inflight[a.Event]
	if !ok {
		return nil // stale ack from a previous pass or a resend race
	}
	switch a.Status {
	case AckStored:
		r.nStored.Add(1)
	case AckDup:
		r.nDups.Add(1)
	case AckFull:
		r.nFulls.Add(1)
		r.retryLater(a.Event, idx)
		return nil
	default:
		r.nFails.Add(1)
	}
	delete(r.inflight, a.Event)
	r.pumpLocked()
	return nil
}
