package storage

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"xdaq/internal/pta"
)

// BenchmarkStorageAppend measures the raw single-writer hot path: one
// gather-copy into the arena, a CRC, and the background flush to the
// page cache.  The steady state must not allocate — the index and the
// duplicate filter are pre-sized, the arenas are fixed, and the flusher
// reuses its channel slot — so allocs/op here is a gate, not a metric.
func BenchmarkStorageAppend(b *testing.B) {
	const recSize = 64 << 10
	w, err := Open(Options{
		Dir:       b.TempDir(),
		Instance:  0,
		ArenaSize: 1 << 20,
		IndexHint: b.N + 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, recSize)
	for i := range data {
		data[i] = byte(i)
	}
	// One interface value up front: converting the slice at every Append
	// call would charge the benchmark an allocation the writer never makes.
	var src Source = bytesSource(data)
	b.SetBytes(recSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for {
			err := w.Append(uint64(i), recSize, src)
			if err == nil {
				break
			}
			if !errors.Is(err, pta.ErrTransient) {
				b.Fatal(err)
			}
			runtime.Gosched() // writer full: the flusher needs the core
		}
	}
	b.StopTimer()
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStorageStriped measures aggregate throughput of an event
// stream striped across N writers, each with an independent simulated
// disk (SimDelay models one stripe device's service time per arena, the
// way internal/transport/gm models Myrinet — see doc/storage.md).  The
// claim under test is the Fast-Parallel-I/O one: striping hides the
// per-device latency, so aggregate MB/s scales with the writer count
// until the CPU-side gather work saturates.  bench-gate holds
// writers=8 to at least 2x writers=1.
func BenchmarkStorageStriped(b *testing.B) {
	const (
		recSize  = 128 << 10
		simDelay = 2 * time.Millisecond
	)
	for _, writers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			dir := b.TempDir()
			ws := make([]*Writer, writers)
			for i := range ws {
				var err error
				ws[i], err = Open(Options{
					Dir:       dir,
					Instance:  i,
					ArenaSize: 1 << 20,
					IndexHint: b.N/writers + 2,
					SimDelay:  simDelay,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			data := make([]byte, recSize)
			for i := range data {
				data[i] = byte(i)
			}
			b.SetBytes(recSize)
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for s := 0; s < writers; s++ {
				count := b.N / writers
				if s < b.N%writers {
					count++
				}
				wg.Add(1)
				go func(s, count int) {
					defer wg.Done()
					var src Source = bytesSource(data)
					for k := 0; k < count; k++ {
						event := uint64(s + k*writers) // stripe: event % writers == s
						for {
							err := ws[s].Append(event, recSize, src)
							if err == nil {
								break
							}
							if !errors.Is(err, pta.ErrTransient) {
								b.Error(err)
								return
							}
							time.Sleep(200 * time.Microsecond)
						}
					}
				}(s, count)
			}
			wg.Wait()
			b.StopTimer()
			for _, w := range ws {
				if err := w.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
