package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// IndexEntry locates one record inside a segment.
type IndexEntry struct {
	Event uint64
	Off   int64  // file offset of the record header
	Size  uint32 // payload bytes
}

// encodeHeader fills the 16-byte segment header.
func encodeHeader(dst []byte, instance uint32) {
	copy(dst, segMagic)
	binary.LittleEndian.PutUint32(dst[8:], segVersion)
	binary.LittleEndian.PutUint32(dst[12:], instance)
}

// decodeHeader validates a segment header and returns the writer
// instance recorded in it.
func decodeHeader(p []byte) (uint32, error) {
	if len(p) < headerSize || string(p[:8]) != segMagic {
		return 0, fmt.Errorf("%w: bad segment magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(p[8:]); v != segVersion {
		return 0, fmt.Errorf("%w: segment version %d, want %d", ErrCorrupt, v, segVersion)
	}
	return binary.LittleEndian.Uint32(p[12:]), nil
}

// encodeRecHdr fills a 16-byte record header in place.
func encodeRecHdr(dst []byte, size, crc uint32, event uint64) {
	binary.LittleEndian.PutUint32(dst[0:], size)
	binary.LittleEndian.PutUint32(dst[4:], crc)
	binary.LittleEndian.PutUint64(dst[8:], event)
}

// decodeRecHdr splits a record header.
func decodeRecHdr(p []byte) (size, crc uint32, event uint64) {
	return binary.LittleEndian.Uint32(p[0:]),
		binary.LittleEndian.Uint32(p[4:]),
		binary.LittleEndian.Uint64(p[8:])
}

// encodeIndex renders the footer index plus trailer for the given
// entries, to be written at file offset indexOff.
func encodeIndex(entries []IndexEntry, indexOff int64) []byte {
	buf := make([]byte, len(entries)*idxEntSize+trailerSize)
	p := buf
	for _, e := range entries {
		binary.LittleEndian.PutUint64(p[0:], e.Event)
		binary.LittleEndian.PutUint64(p[8:], uint64(e.Off))
		binary.LittleEndian.PutUint32(p[16:], e.Size)
		p = p[idxEntSize:]
	}
	body := buf[:len(entries)*idxEntSize]
	binary.LittleEndian.PutUint64(p[0:], uint64(indexOff))
	binary.LittleEndian.PutUint32(p[8:], uint32(len(entries)))
	binary.LittleEndian.PutUint32(p[12:], crc32.Checksum(body, castagnoli))
	copy(p[16:], idxMagic)
	return buf
}

// loadIndex tries the fast path: a valid trailer at EOF.  It returns the
// index entries and the end of the record region, or ok=false when the
// segment has no (intact) footer and must be scanned instead.
func loadIndex(f *os.File, fileSize int64) (entries []IndexEntry, dataEnd int64, ok bool) {
	if fileSize < headerSize+trailerSize {
		return nil, 0, false
	}
	var tr [trailerSize]byte
	if _, err := f.ReadAt(tr[:], fileSize-trailerSize); err != nil {
		return nil, 0, false
	}
	if string(tr[16:24]) != idxMagic {
		return nil, 0, false
	}
	indexOff := int64(binary.LittleEndian.Uint64(tr[0:]))
	count := int64(binary.LittleEndian.Uint32(tr[8:]))
	wantCRC := binary.LittleEndian.Uint32(tr[12:])
	if indexOff < headerSize || indexOff > fileSize-trailerSize {
		return nil, 0, false
	}
	if count*idxEntSize != fileSize-trailerSize-indexOff {
		return nil, 0, false
	}
	body := make([]byte, count*idxEntSize)
	if _, err := f.ReadAt(body, indexOff); err != nil {
		return nil, 0, false
	}
	if crc32.Checksum(body, castagnoli) != wantCRC {
		return nil, 0, false
	}
	entries = make([]IndexEntry, count)
	for i := range entries {
		p := body[i*idxEntSize:]
		entries[i] = IndexEntry{
			Event: binary.LittleEndian.Uint64(p[0:]),
			Off:   int64(binary.LittleEndian.Uint64(p[8:])),
			Size:  binary.LittleEndian.Uint32(p[16:]),
		}
		// An index claiming records beyond the region it footers is
		// corrupt; fall back to the scan.
		if entries[i].Off < headerSize || entries[i].Off+recHdrSize+int64(entries[i].Size) > indexOff {
			return nil, 0, false
		}
	}
	return entries, indexOff, true
}

// scanSegment walks the record region from the header forward, verifying
// each record's checksum, and stops at the first record that is torn
// (runs past EOF) or corrupt (checksum mismatch).  It returns the valid
// entries and the offset where the valid region ends; everything after
// dataEnd is the torn tail.
func scanSegment(f *os.File, fileSize int64) (entries []IndexEntry, dataEnd int64, err error) {
	off := int64(headerSize)
	var hdr [recHdrSize]byte
	var payload []byte
	for off+recHdrSize <= fileSize {
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			return nil, 0, err
		}
		size, crc, event := decodeRecHdr(hdr[:])
		// size==0 is never written (Append refuses empty payloads): an
		// empty record's checksum is trivially 0, so accepting them would
		// let zeroed tail garbage — a stale index entry, a hole — pass as
		// data.  Zero size therefore marks the end of the record region.
		if size == 0 || size > maxRecord || off+recHdrSize+int64(size) > fileSize {
			break // torn or corrupt size: the tail starts here
		}
		if int(size) > cap(payload) {
			payload = make([]byte, size)
		}
		payload = payload[:size]
		if _, err := f.ReadAt(payload, off+recHdrSize); err != nil && err != io.EOF {
			return nil, 0, err
		}
		if crc32.Checksum(payload, castagnoli) != crc {
			break // torn payload (or index bytes misread as a record)
		}
		entries = append(entries, IndexEntry{Event: event, Off: off, Size: size})
		off += recHdrSize + int64(size)
	}
	return entries, off, nil
}
