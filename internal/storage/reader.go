package storage

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// Reader gives checksum-verified access to one segment's records.  It is
// read-only: a torn tail is reported, never truncated, so a reader can
// inspect a crashed segment without deciding its fate.
type Reader struct {
	f       *os.File
	entries []IndexEntry
	dataEnd int64
	torn    int64 // bytes after the last valid record
	buf     []byte
}

// OpenReader opens a segment file for reading, using the footer index
// when intact and a full checksum scan otherwise.
func OpenReader(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	size := st.Size()
	var hdr [headerSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: short header in %s", ErrCorrupt, path)
	}
	if _, err := decodeHeader(hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	r := &Reader{f: f}
	var ok bool
	if r.entries, r.dataEnd, ok = loadIndex(f, size); !ok {
		if r.entries, r.dataEnd, err = scanSegment(f, size); err != nil {
			f.Close()
			return nil, err
		}
		r.torn = size - r.dataEnd
	}
	return r, nil
}

// Len returns the number of valid records.
func (r *Reader) Len() int { return len(r.entries) }

// Torn returns how many trailing bytes fail validation — nonzero means
// the segment was not closed cleanly.
func (r *Reader) Torn() int64 { return r.torn }

// Entry returns the i-th record's index entry.
func (r *Reader) Entry(i int) IndexEntry { return r.entries[i] }

// Record reads and verifies the i-th record.  The payload slice is valid
// until the next Record call.
func (r *Reader) Record(i int) (event uint64, payload []byte, err error) {
	e := r.entries[i]
	need := recHdrSize + int(e.Size)
	if need > cap(r.buf) {
		r.buf = make([]byte, need)
	}
	r.buf = r.buf[:need]
	if _, err := r.f.ReadAt(r.buf, e.Off); err != nil {
		return 0, nil, err
	}
	size, crc, event := decodeRecHdr(r.buf)
	if size != e.Size || event != e.Event {
		return 0, nil, fmt.Errorf("%w: record %d header disagrees with index", ErrCorrupt, i)
	}
	payload = r.buf[recHdrSize:]
	if crc32.Checksum(payload, castagnoli) != crc {
		return 0, nil, fmt.Errorf("%w: record %d checksum", ErrCorrupt, i)
	}
	return event, payload, nil
}

// Close releases the file.
func (r *Reader) Close() error { return r.f.Close() }

// Record is one event held in memory, the unit the replayer streams.
type Record struct {
	Event uint64
	Data  []byte
}

// LoadSet reads every segment (seg-*.xseg) in dir into memory and
// returns the records sorted by event id.  Duplicate event ids across
// segments are kept — the audit layer decides what they mean.
func LoadSet(dir string) ([]Record, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "seg-*.xseg"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var out []Record
	for _, path := range paths {
		r, err := OpenReader(path)
		if err != nil {
			return nil, err
		}
		for i := 0; i < r.Len(); i++ {
			event, payload, err := r.Record(i)
			if err != nil {
				r.Close()
				return nil, err
			}
			out = append(out, Record{Event: event, Data: append([]byte(nil), payload...)})
		}
		r.Close()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Event < out[j].Event })
	return out, nil
}
