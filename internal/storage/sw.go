package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"xdaq/internal/chain"
	"xdaq/internal/device"
	"xdaq/internal/i2o"
	"xdaq/internal/metrics"
	"xdaq/internal/pool"
	"xdaq/internal/pta"
	"xdaq/internal/sgl"
)

// ClassSW is the storage writer device class name.
const ClassSW = "storage.sw"

// SW is a storage writer device: one stripe of the parallel store.
// Builder units (or the replayer) stream events to it as XFuncWrite
// chain transfers; each completed transfer is appended to the attached
// segment Writer straight from the reassembled SGL chain, and answered
// with a one-way WriteAck.  A full writer nacks AckFull, which the
// sender's retry turns into end-to-end backpressure.
type SW struct {
	instance int
	dev      *device.Device
	reasm    *chain.Reassembler

	mu  sync.Mutex
	w   *Writer
	ctx *device.Context

	killed           atomic.Bool
	nAcked, nRefused atomic.Uint64
}

// NewSW creates storage writer `instance`.  Attach a segment Writer
// before (or after) plugging; transfers arriving with no writer attached
// are refused with AckFail.
func NewSW(instance int, alloc pool.Allocator) *SW {
	s := &SW{instance: instance}
	s.dev = device.New(ClassSW, instance)
	s.reasm = chain.NewReassembler(alloc, s.onWrite)
	s.dev.Bind(XFuncWrite, s.reasm.Handler)
	s.dev.OnPlugged = func(ctx *device.Context) error {
		s.mu.Lock()
		s.ctx = ctx
		s.mu.Unlock()
		s.register(ctx)
		return nil
	}
	return s
}

// Device returns the module to plug into an executive.
func (s *SW) Device() *device.Device { return s.dev }

// Attach installs (or swaps) the segment writer and clears the killed
// flag — the reopen half of crash recovery.
func (s *SW) Attach(w *Writer) {
	s.mu.Lock()
	s.w = w
	s.mu.Unlock()
	s.killed.Store(false)
}

// Writer returns the attached segment writer (nil when none).
func (s *SW) Writer() *Writer {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w
}

// Kill simulates the writer process dying mid-stripe: the segment is
// crashed (torn tail, no footer) and the device goes silent — incoming
// transfers are dropped without an ack, exactly what a dead peer looks
// like to the senders.
func (s *SW) Kill() {
	s.mu.Lock()
	w := s.w
	s.mu.Unlock()
	s.killed.Store(true)
	if w != nil {
		w.Crash()
	}
}

// Reopen recovers from a Kill: the segment is reopened in place (torn
// tail truncated, duplicate filter reseeded) and the device acks again.
// The caller replays the stream to restore whatever the crash lost.
func (s *SW) Reopen() error {
	s.mu.Lock()
	old := s.w
	s.mu.Unlock()
	if old == nil {
		return fmt.Errorf("storage: sw %d has no writer to reopen", s.instance)
	}
	w, err := Open(old.Options())
	if err != nil {
		return err
	}
	s.Attach(w)
	return nil
}

// Stats snapshots the attached writer's counters (zero when none).
func (s *SW) Stats() Stats {
	s.mu.Lock()
	w := s.w
	s.mu.Unlock()
	if w == nil {
		return Stats{}
	}
	return w.Stats()
}

// Acked and Refused count the device-level ack outcomes.
func (s *SW) Acked() uint64   { return s.nAcked.Load() }
func (s *SW) Refused() uint64 { return s.nRefused.Load() }

// tailSource exposes a transfer's payload (after the 8-byte event id)
// to the writer's gather copy, so the SGL chain lands in the arena with
// no intermediate flat buffer.
type tailSource struct{ data *sgl.List }

func (t tailSource) CopyTo(off int, dst []byte) (int, error) {
	return t.data.CopyTo(off+8, dst)
}

// onWrite handles one completed write transfer.
func (s *SW) onWrite(t *chain.Transfer) error {
	defer t.Data.Release()
	if t.Data.Len() < 8+1 {
		return fmt.Errorf("%w: write transfer of %d bytes", i2o.ErrTruncated, t.Data.Len())
	}
	var hdr [8]byte
	if _, err := t.Data.CopyTo(0, hdr[:]); err != nil {
		return err
	}
	event := binary.LittleEndian.Uint64(hdr[:])
	if s.killed.Load() {
		return nil // dead writers don't ack; the sender's replay heals this
	}
	s.mu.Lock()
	w, ctx := s.w, s.ctx
	s.mu.Unlock()

	status := AckStored
	if w == nil {
		status = AckFail
	} else {
		switch err := w.Append(event, t.Data.Len()-8, tailSource{t.Data}); {
		case err == nil:
		case errors.Is(err, ErrDuplicate):
			status = AckDup
		case errors.Is(err, pta.ErrTransient):
			status = AckFull
		default:
			status = AckFail
		}
	}
	if status == AckStored || status == AckDup {
		s.nAcked.Add(1)
	} else {
		s.nRefused.Add(1)
	}
	return s.ack(ctx, t.Initiator, WriteAck{Event: event, Status: status})
}

// ack sends the one-way reply for a write transfer.
func (s *SW) ack(ctx *device.Context, to i2o.TID, a WriteAck) error {
	if ctx == nil {
		return device.ErrNotPlugged
	}
	buf, err := ctx.Host.Alloc(writeAckSize)
	if err != nil {
		return err
	}
	body := buf.Bytes()
	a.Encode(body[:0])
	m := &i2o.Message{
		Priority:  i2o.PriorityHigh,
		Target:    to,
		Initiator: s.dev.TID(),
		Function:  i2o.FuncPrivate,
		Org:       i2o.OrgXDAQ,
		XFunction: XFuncWriteAck,
		Payload:   body,
	}
	m.AttachBuffer(buf)
	return ctx.Host.Send(m)
}

// register publishes the storage.* gauges on hosts that carry a metrics
// registry (the executive does; bare test fakes need not).
func (s *SW) register(ctx *device.Context) {
	host, ok := ctx.Host.(interface{ Metrics() *metrics.Registry })
	if !ok {
		return
	}
	reg := host.Metrics()
	if reg == nil {
		return
	}
	stat := func(pick func(Stats) uint64) func() int64 {
		return func() int64 { return int64(pick(s.Stats())) }
	}
	reg.Func("storage.bytes", stat(func(st Stats) uint64 { return st.Bytes }))
	reg.Func("storage.events", stat(func(st Stats) uint64 { return st.Events }))
	reg.Func("storage.stripe.depth", stat(func(st Stats) uint64 { return st.Events + st.Recovered }))
	reg.Func("storage.stalls", stat(func(st Stats) uint64 { return st.Stalls }))
	reg.Func("storage.dups", stat(func(st Stats) uint64 { return st.Dups }))
	reg.Func("storage.flushes", stat(func(st Stats) uint64 { return st.Flushes }))
	reg.Func("storage.recovered", stat(func(st Stats) uint64 { return st.Recovered }))
	reg.Func("storage.truncations", stat(func(st Stats) uint64 { return st.Truncations }))
}
