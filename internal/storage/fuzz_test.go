package storage

import (
	"bytes"
	"errors"
	"os"
	"testing"
	"time"

	"xdaq/internal/pta"
)

// FuzzSegment drives the segment codec from both ends: a set of records
// written through the Writer must read back identical (decode(encode(x))
// == x), and opening the same image with an arbitrary mutated tail must
// never panic — recovery either finds a consistent record set or reports
// a clean error, and the recovered writer must remain appendable.
func FuzzSegment(f *testing.F) {
	f.Add([]byte("one event payload"), []byte{}, uint8(1), uint16(0))
	f.Add(bytes.Repeat([]byte{0}, 64), []byte{0, 0, 0, 0, 0, 0, 0, 0}, uint8(4), uint16(3))
	f.Add([]byte("XDAQIDX1XDAQSEG1"), []byte("XDAQIDX1"), uint8(3), uint16(40))
	f.Fuzz(func(t *testing.T, payload, suffix []byte, nrec uint8, cut uint16) {
		if len(payload) > 4<<10 {
			payload = payload[:4<<10]
		}
		if len(payload) == 0 {
			payload = []byte{0xA5}
		}
		n := int(nrec%6) + 1
		dir := t.TempDir()
		opts := Options{Dir: dir, Instance: 0, ArenaSize: 2 << 10}

		// Encode a record set; sizes vary with the event id so records
		// straddle arena rotations.
		w, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		want := make([][]byte, n)
		for ev := 0; ev < n; ev++ {
			end := 1 + (len(payload)*(ev+1))/n
			if end > len(payload) {
				end = len(payload)
			}
			rec := payload[:end]
			want[ev] = rec
			for {
				err := w.Append(uint64(ev), len(rec), bytesSource(rec))
				if err == nil {
					break
				}
				if !errors.Is(err, pta.ErrTransient) {
					t.Fatalf("append %d: %v", ev, err)
				}
				time.Sleep(20 * time.Microsecond)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		// decode(encode(x)) == x through the indexed fast path.
		r, err := OpenReader(opts.Path())
		if err != nil {
			t.Fatal(err)
		}
		if r.Len() != n || r.Torn() != 0 {
			t.Fatalf("clean segment reads as %d records, %d torn", r.Len(), r.Torn())
		}
		for i := 0; i < n; i++ {
			event, data, err := r.Record(i)
			if err != nil {
				t.Fatalf("record %d: %v", i, err)
			}
			if event != uint64(i) || !bytes.Equal(data, want[i]) {
				t.Fatalf("record %d: event %d, payload mismatch", i, event)
			}
		}
		r.Close()

		// Mutate the image: cut it anywhere and splice in an arbitrary
		// suffix.  Whatever this produces, open must not panic, and a
		// writer recovered from it must still take appends and close into
		// a self-consistent segment.
		img, err := os.ReadFile(opts.Path())
		if err != nil {
			t.Fatal(err)
		}
		at := int(cut) % (len(img) + 1)
		mut := append(append([]byte(nil), img[:at]...), suffix...)
		if err := os.WriteFile(opts.Path(), mut, 0o644); err != nil {
			t.Fatal(err)
		}

		if r2, err := OpenReader(opts.Path()); err == nil {
			for i := 0; i < r2.Len(); i++ {
				if _, _, err := r2.Record(i); err != nil {
					t.Fatalf("recovered record %d unreadable: %v", i, err)
				}
			}
			r2.Close()
		}
		w2, err := Open(opts)
		if err != nil {
			return // e.g. the header itself was cut: a clean refusal
		}
		fresh := payload[:1+len(payload)/2]
		for {
			err := w2.Append(1<<40, len(fresh), bytesSource(fresh))
			if err == nil || errors.Is(err, ErrDuplicate) {
				break
			}
			if !errors.Is(err, pta.ErrTransient) {
				t.Fatalf("append after recovery: %v", err)
			}
			time.Sleep(20 * time.Microsecond)
		}
		if err := w2.Close(); err != nil {
			t.Fatalf("close after recovery: %v", err)
		}
		r3, err := OpenReader(opts.Path())
		if err != nil {
			t.Fatalf("reopen after recovery+close: %v", err)
		}
		if r3.Torn() != 0 {
			t.Fatalf("recovered segment closed with %d torn bytes", r3.Torn())
		}
		for i := 0; i < r3.Len(); i++ {
			if _, _, err := r3.Record(i); err != nil {
				t.Fatalf("post-recovery record %d: %v", i, err)
			}
		}
		r3.Close()
	})
}
