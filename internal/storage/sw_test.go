package storage

import (
	"bytes"
	"testing"
	"time"

	"xdaq/internal/executive"
	"xdaq/internal/i2o"
	"xdaq/internal/pta"
	"xdaq/internal/transport/loopback"
)

// swRig is a small storage cluster for tests: the replayer on node 1,
// one storage writer per following node, all over loopback, all stripes
// in one shared directory.
type swRig struct {
	dir    string
	sws    []*SW
	swTIDs []i2o.TID
	rep    *Replayer
}

func buildSWRig(t *testing.T, nSW int, opts Options) *swRig {
	t.Helper()
	fabric := loopback.NewFabric()
	total := 1 + nSW
	ids := make([]i2o.NodeID, total)
	for i := range ids {
		ids[i] = i2o.NodeID(i + 1)
	}
	execs := make(map[i2o.NodeID]*executive.Executive, total)
	for _, id := range ids {
		e := executive.New(executive.Options{
			Name: "storage", Node: id,
			RequestTimeout: 3 * time.Second,
			Logf:           func(string, ...any) {},
		})
		agent, err := pta.New(e)
		if err != nil {
			t.Fatal(err)
		}
		ep, err := fabric.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := agent.Register(ep, pta.Task); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			agent.Close()
			e.Close()
		})
		for _, peer := range ids {
			if peer != id {
				e.SetRoute(peer, loopback.DefaultName)
			}
		}
		execs[id] = e
	}

	r := &swRig{dir: t.TempDir()}
	opts.Dir = r.dir
	for i := 0; i < nSW; i++ {
		e := execs[i2o.NodeID(2+i)]
		sw := NewSW(i, e.Allocator())
		if _, err := e.Plug(sw.Device()); err != nil {
			t.Fatal(err)
		}
		o := opts
		o.Instance = i
		w, err := Open(o)
		if err != nil {
			t.Fatal(err)
		}
		sw.Attach(w)
		r.sws = append(r.sws, sw)
	}
	r.rep = NewReplayer(0)
	repExec := execs[1]
	if _, err := repExec.Plug(r.rep.Device()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nSW; i++ {
		tid, err := repExec.Discover(i2o.NodeID(2+i), ClassSW, i)
		if err != nil {
			t.Fatal(err)
		}
		r.swTIDs = append(r.swTIDs, tid)
	}
	return r
}

// makeRecords builds a deterministic record set: event i carries a
// payload whose size and fill vary with i.
func makeRecords(n, base int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		data := make([]byte, base+i%7*11)
		for j := range data {
			data[j] = byte(i + j)
		}
		recs[i] = Record{Event: uint64(i), Data: data}
	}
	return recs
}

// auditSet loads every segment in dir and checks the result is exactly
// the given record set: no loss, no duplication, payloads intact.
func auditSet(t *testing.T, dir string, want []Record) {
	t.Helper()
	got, err := LoadSet(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("stored %d records, want %d", len(got), len(want))
	}
	for i, rec := range got {
		if rec.Event != want[i].Event {
			t.Fatalf("record %d: event %d, want %d (lost or duplicated)", i, rec.Event, want[i].Event)
		}
		if !bytes.Equal(rec.Data, want[i].Data) {
			t.Fatalf("event %d: payload mismatch", rec.Event)
		}
	}
}

func TestSWReplayStoresStriped(t *testing.T) {
	const n = 40
	r := buildSWRig(t, 2, Options{ArenaSize: 1 << 16})
	recs := makeRecords(n, 200)
	r.rep.Configure(r.swTIDs, 8)
	if err := r.rep.Start(recs); err != nil {
		t.Fatal(err)
	}
	st := r.rep.Wait(10 * time.Second)
	if !st.Done {
		t.Fatalf("replay pass timed out: %+v", st)
	}
	if st.Stored != n || st.Fails != 0 {
		t.Fatalf("stored=%d fails=%d, want %d/0", st.Stored, st.Fails, n)
	}
	// The stripes must partition the stream by event id.
	for i, sw := range r.sws {
		w := sw.Writer()
		for ev := uint64(0); ev < n; ev++ {
			want := ev%2 == uint64(i)
			if w.Contains(ev) != want {
				t.Fatalf("stripe %d: contains(%d)=%v, want %v", i, ev, !want, want)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	auditSet(t, r.dir, recs)
}

func TestSWDuplicateReplayConverges(t *testing.T) {
	const n = 25
	r := buildSWRig(t, 2, Options{ArenaSize: 1 << 16})
	recs := makeRecords(n, 100)
	r.rep.Configure(r.swTIDs, 4)
	for pass := 0; pass < 2; pass++ {
		if err := r.rep.Start(recs); err != nil {
			t.Fatal(err)
		}
		st := r.rep.Wait(10 * time.Second)
		if !st.Done {
			t.Fatalf("pass %d timed out: %+v", pass, st)
		}
		if pass == 1 && (st.Dups != n || st.Stored != 0) {
			t.Fatalf("second pass: stored=%d dups=%d, want 0/%d", st.Stored, st.Dups, n)
		}
	}
	for _, sw := range r.sws {
		if err := sw.Writer().Close(); err != nil {
			t.Fatal(err)
		}
	}
	auditSet(t, r.dir, recs)
}

// TestSWKillReopenReplay is the chaos invariant at device level: kill a
// writer mid-replay (torn tail, no acks), reopen it, replay the full
// set, and audit that the store holds every event exactly once.
func TestSWKillReopenReplay(t *testing.T) {
	const n = 80
	r := buildSWRig(t, 2, Options{ArenaSize: 1 << 10, SimDelay: 500 * time.Microsecond})
	recs := makeRecords(n, 150)
	r.rep.Configure(r.swTIDs, 4)
	if err := r.rep.Start(recs); err != nil {
		t.Fatal(err)
	}
	// Let the victim stripe a few arenas, then kill it mid-pass.
	victim := r.sws[0]
	deadline := time.Now().Add(5 * time.Second)
	for victim.Acked() < 5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if victim.Acked() < 5 {
		t.Fatalf("victim acked only %d before deadline", victim.Acked())
	}
	victim.Kill()
	st := r.rep.Wait(300 * time.Millisecond)
	if st.Done {
		// Possible but unlikely: the whole set was acked before the kill
		// landed.  The replay below must still converge.
		t.Logf("pass 1 completed before the kill: %+v", st)
	}

	if err := victim.Reopen(); err != nil {
		t.Fatal(err)
	}
	rst := victim.Stats()
	if rst.Truncations == 0 {
		t.Logf("reopen found no torn tail (crash landed between arenas)")
	}

	// Replay the full set: survivors dedup, the lost suffix is restored.
	if err := r.rep.Start(recs); err != nil {
		t.Fatal(err)
	}
	st = r.rep.Wait(10 * time.Second)
	if !st.Done {
		t.Fatalf("recovery replay timed out: %+v", st)
	}
	if st.Fails != 0 {
		t.Fatalf("recovery replay saw %d failed events", st.Fails)
	}
	for _, sw := range r.sws {
		if err := sw.Writer().Close(); err != nil {
			t.Fatal(err)
		}
	}
	auditSet(t, r.dir, recs)
}

// TestSWBackpressureAcksFull pins the transient path end to end: a tiny
// arena with a slow simulated disk must produce AckFull nacks that the
// replayer absorbs by retrying, and the pass still completes.
func TestSWBackpressureAcksFull(t *testing.T) {
	const n = 30
	r := buildSWRig(t, 1, Options{ArenaSize: 1 << 9, SimDelay: 2 * time.Millisecond})
	recs := makeRecords(n, 180)
	r.rep.Configure(r.swTIDs, 16) // window >> arena capacity
	if err := r.rep.Start(recs); err != nil {
		t.Fatal(err)
	}
	st := r.rep.Wait(20 * time.Second)
	if !st.Done {
		t.Fatalf("pass timed out: %+v", st)
	}
	if st.Fulls == 0 {
		t.Fatalf("expected AckFull nacks from the saturated writer, got none (%+v)", st)
	}
	if err := r.sws[0].Writer().Close(); err != nil {
		t.Fatal(err)
	}
	auditSet(t, r.dir, recs)
}
