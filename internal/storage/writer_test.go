package storage

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"testing"
	"time"

	"xdaq/internal/pta"
)

// bytesSource adapts a flat slice to the gather-copy contract.
type bytesSource []byte

func (s bytesSource) CopyTo(off int, dst []byte) (int, error) {
	return copy(dst, s[off:]), nil
}

// payloadFor builds a deterministic, event-unique payload.
func payloadFor(event uint64, n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(event>>((i%8)*8)) ^ byte(i)
	}
	return p
}

// appendRetry appends with a bounded retry loop on writer-full, the same
// move the SW's clients make when the ack says AckFull.
func appendRetry(t *testing.T, w *Writer, event uint64, data []byte) {
	t.Helper()
	for try := 0; ; try++ {
		err := w.Append(event, len(data), bytesSource(data))
		if err == nil || errors.Is(err, ErrDuplicate) {
			return
		}
		if !errors.Is(err, pta.ErrTransient) || try > 10000 {
			t.Fatalf("append event %d: %v", event, err)
		}
		time.Sleep(50 * time.Microsecond)
	}
}

func TestWriterRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Instance: 3, ArenaSize: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for ev := uint64(0); ev < n; ev++ {
		appendRetry(t, w, ev, payloadFor(ev, 100+int(ev%700)))
	}
	if got := w.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	if !w.Contains(17) || w.Contains(n) {
		t.Fatal("Contains disagrees with appended set")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenReader(w.Options().Path())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Torn() != 0 {
		t.Fatalf("clean close left %d torn bytes", r.Torn())
	}
	if r.Len() != n {
		t.Fatalf("reader sees %d records, want %d", r.Len(), n)
	}
	for i := 0; i < r.Len(); i++ {
		event, payload, err := r.Record(i)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if want := payloadFor(event, 100+int(event%700)); !bytes.Equal(payload, want) {
			t.Fatalf("record %d (event %d) payload mismatch", i, event)
		}
	}
}

func TestWriterDuplicate(t *testing.T) {
	w, err := Open(Options{Dir: t.TempDir(), Instance: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	data := payloadFor(7, 64)
	if err := w.Append(7, len(data), bytesSource(data)); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(7, len(data), bytesSource(data)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("second append: %v, want ErrDuplicate", err)
	}
	if st := w.Stats(); st.Events != 1 || st.Dups != 1 {
		t.Fatalf("stats = %+v, want 1 event 1 dup", st)
	}
}

func TestWriterBackpressureTransient(t *testing.T) {
	// A slow simulated disk and tiny arenas: the third arena's worth of
	// appends must surface writer-full, and it must read as transient so
	// the SW→BU→EVM backpressure chain picks it up.
	w, err := Open(Options{Dir: t.TempDir(), Instance: 0, ArenaSize: 2 << 10, SimDelay: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	data := payloadFor(0, 1800)
	var sawFull bool
	for ev := uint64(0); ev < 4; ev++ {
		err := w.Append(ev, len(data), bytesSource(data))
		if err == nil {
			continue
		}
		if !errors.Is(err, pta.ErrTransient) {
			t.Fatalf("append %d: %v, not transient", ev, err)
		}
		sawFull = true
		break
	}
	if !sawFull {
		t.Fatal("no writer-full with both arenas busy")
	}
	if st := w.Stats(); st.Stalls == 0 {
		t.Fatalf("stats = %+v, want stalls > 0", st)
	}
	// Draining the pipeline makes room again.
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(99, len(data), bytesSource(data)); err != nil {
		t.Fatalf("append after flush: %v", err)
	}
}

func TestWriterOversizedRecord(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Instance: 0, ArenaSize: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	small := payloadFor(1, 512)
	big := payloadFor(2, 64<<10) // 16x the arena
	appendRetry(t, w, 1, small)
	appendRetry(t, w, 2, big)
	appendRetry(t, w, 3, small)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(Options{Dir: dir}.Path())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 3 {
		t.Fatalf("got %d records, want 3", r.Len())
	}
	event, payload, err := r.Record(1)
	if err != nil || event != 2 || !bytes.Equal(payload, big) {
		t.Fatalf("oversized record: event %d err %v match %v", event, err, bytes.Equal(payload, big))
	}
}

func TestWriterReopenAppends(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Instance: 0, ArenaSize: 8 << 10}
	w, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for ev := uint64(0); ev < 50; ev++ {
		appendRetry(t, w, ev, payloadFor(ev, 300))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if st := w2.Stats(); st.Recovered != 50 || st.Truncations != 0 {
		t.Fatalf("reopen stats = %+v, want 50 recovered, clean", st)
	}
	// Recovered events are duplicates; fresh ones append.
	if err := w2.Append(10, 300, bytesSource(payloadFor(10, 300))); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("recovered event re-append: %v, want ErrDuplicate", err)
	}
	for ev := uint64(50); ev < 80; ev++ {
		appendRetry(t, w2, ev, payloadFor(ev, 300))
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	records, err := LoadSet(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 80 {
		t.Fatalf("LoadSet: %d records, want 80", len(records))
	}
	for i, rec := range records {
		if rec.Event != uint64(i) || !bytes.Equal(rec.Data, payloadFor(rec.Event, 300)) {
			t.Fatalf("record %d: event %d, payload match %v", i, rec.Event, bytes.Equal(rec.Data, payloadFor(rec.Event, 300)))
		}
	}
}

func TestWriterCrashRecoverReplay(t *testing.T) {
	// The chaos invariant in miniature: crash tears the active arena, a
	// reopen truncates the torn record, and replaying the full stream
	// restores exactly the lost suffix — nothing lost, nothing doubled.
	dir := t.TempDir()
	opts := Options{Dir: dir, Instance: 0, ArenaSize: 4 << 10}
	w, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for ev := uint64(0); ev < n; ev++ {
		appendRetry(t, w, ev, payloadFor(ev, 700))
	}
	w.Crash()
	if err := w.Append(n, 1, bytesSource{0}); !errors.Is(err, ErrCrashed) {
		t.Fatalf("append after crash: %v, want ErrCrashed", err)
	}

	w2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	st := w2.Stats()
	if st.Recovered >= n {
		t.Fatalf("recovered %d of %d: crash tore nothing", st.Recovered, n)
	}
	if st.Truncations != 1 || st.TruncatedBytes == 0 {
		t.Fatalf("reopen stats = %+v, want a truncated torn tail", st)
	}
	// Replay the full stream: survivors dedup, the torn tail heals.
	for ev := uint64(0); ev < n; ev++ {
		appendRetry(t, w2, ev, payloadFor(ev, 700))
	}
	if st := w2.Stats(); st.Events+st.Recovered != n || st.Dups != st.Recovered {
		t.Fatalf("after replay: %+v, want events+recovered = %d with dups = recovered", st, n)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	records, err := LoadSet(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != n {
		t.Fatalf("after replay: %d records, want %d", len(records), n)
	}
	seen := map[uint64]bool{}
	for _, rec := range records {
		if seen[rec.Event] {
			t.Fatalf("event %d stored twice", rec.Event)
		}
		seen[rec.Event] = true
		if !bytes.Equal(rec.Data, payloadFor(rec.Event, 700)) {
			t.Fatalf("event %d payload mismatch after recovery", rec.Event)
		}
	}
}

// buildSegment writes a clean segment of n records and returns the raw
// file split into (records region, index+trailer region).
func buildSegment(t *testing.T, n int) (string, []byte, []byte) {
	t.Helper()
	dir := t.TempDir()
	opts := Options{Dir: dir, Instance: 0, ArenaSize: 8 << 10}
	w, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	var dataEnd int64 = headerSize
	for ev := uint64(0); ev < uint64(n); ev++ {
		p := payloadFor(ev, 200+int(ev%100))
		appendRetry(t, w, ev, p)
		dataEnd += recHdrSize + int64(len(p))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(opts.Path())
	if err != nil {
		t.Fatal(err)
	}
	return dir, raw[:dataEnd], raw[dataEnd:]
}

func TestRecoveryTornSuffixes(t *testing.T) {
	const n = 20
	cases := []struct {
		name string
		// mutate returns the file image to recover from.
		mutate    func(records, footer []byte) []byte
		recovered uint64 // records Open must find
		truncated bool   // a torn tail was cut
	}{
		{
			name: "clean-footer",
			mutate: func(records, footer []byte) []byte {
				return append(records, footer...)
			},
			recovered: n,
		},
		{
			name: "no-footer",
			mutate: func(records, _ []byte) []byte {
				return records
			},
			recovered: n,
		},
		{
			name: "torn-header",
			mutate: func(records, _ []byte) []byte {
				// A record header cut off mid-way: claims nothing valid.
				return append(records, 0xAA, 0xBB, 0xCC, 0xDD, 0xEE)
			},
			recovered: n,
			truncated: true,
		},
		{
			name: "torn-payload",
			mutate: func(records, _ []byte) []byte {
				// A full header promising 512 bytes, then only 100.
				var hdr [recHdrSize]byte
				encodeRecHdr(hdr[:], 512, 0xDEAD, uint64(n))
				out := append(records, hdr[:]...)
				return append(out, make([]byte, 100)...)
			},
			recovered: n,
			truncated: true,
		},
		{
			name: "corrupt-payload",
			mutate: func(records, _ []byte) []byte {
				// Flip a byte inside the last record's payload: the scan
				// must refuse it and everything after it.
				out := append([]byte(nil), records...)
				out[len(out)-10] ^= 0xFF
				return out
			},
			recovered: n - 1,
			truncated: true,
		},
		{
			name: "torn-index",
			mutate: func(records, footer []byte) []byte {
				// Footer present but damaged mid-index: the trailer CRC
				// fails, the scan fallback recovers every record and the
				// index bytes are truncated away as tail garbage.
				out := append(records, footer...)
				out[len(records)+3] ^= 0xFF
				return out
			},
			recovered: n,
			truncated: true,
		},
		{
			name: "torn-trailer",
			mutate: func(records, footer []byte) []byte {
				// All but the trailer's last 9 bytes: no magic, scan.
				out := append(records, footer...)
				return out[:len(out)-9]
			},
			recovered: n,
			truncated: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, records, footer := buildSegment(t, n)
			dir := t.TempDir()
			opts := Options{Dir: dir, Instance: 0, ArenaSize: 8 << 10}
			img := tc.mutate(append([]byte(nil), records...), footer)
			if err := os.WriteFile(opts.Path(), img, 0o644); err != nil {
				t.Fatal(err)
			}

			// The read-only view agrees about what is recoverable.
			r, err := OpenReader(opts.Path())
			if err != nil {
				t.Fatal(err)
			}
			if uint64(r.Len()) != tc.recovered {
				t.Fatalf("reader: %d records, want %d", r.Len(), tc.recovered)
			}
			r.Close()

			w, err := Open(opts)
			if err != nil {
				t.Fatal(err)
			}
			st := w.Stats()
			if st.Recovered != tc.recovered {
				t.Fatalf("recovered %d, want %d", st.Recovered, tc.recovered)
			}
			if tc.truncated != (st.Truncations > 0) {
				t.Fatalf("truncations = %d, want truncated=%v", st.Truncations, tc.truncated)
			}
			// The segment stays appendable after recovery, and closes
			// back into a cleanly indexed file.
			appendRetry(t, w, 1000, payloadFor(1000, 333))
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			r2, err := OpenReader(opts.Path())
			if err != nil {
				t.Fatal(err)
			}
			defer r2.Close()
			if r2.Torn() != 0 || uint64(r2.Len()) != tc.recovered+1 {
				t.Fatalf("after close: %d records, %d torn bytes", r2.Len(), r2.Torn())
			}
		})
	}
}

func TestLoadSetStripes(t *testing.T) {
	dir := t.TempDir()
	const stripes = 3
	for s := 0; s < stripes; s++ {
		w, err := Open(Options{Dir: dir, Instance: s})
		if err != nil {
			t.Fatal(err)
		}
		for ev := uint64(0); ev < 30; ev++ {
			if ev%stripes != uint64(s) {
				continue
			}
			appendRetry(t, w, ev, payloadFor(ev, 128))
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	records, err := LoadSet(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 30 {
		t.Fatalf("LoadSet: %d records, want 30", len(records))
	}
	for i, rec := range records {
		if rec.Event != uint64(i) {
			t.Fatalf("record %d holds event %d: set not sorted or not complete", i, rec.Event)
		}
	}
}

func TestWriterStatsString(t *testing.T) {
	// Options.Path is part of the tooling surface (xdaqctl, chaos); pin
	// the naming scheme.
	got := Options{Dir: "/data", Instance: 7}.Path()
	if want := "/data/seg-007.xseg"; got != want {
		t.Fatalf("Path = %q, want %q", got, want)
	}
	if fmt.Sprintf("%v", Options{}.withDefaults().ArenaSize) != "1048576" {
		t.Fatal("default arena size changed")
	}
}
