// Package storage terminates the acquisition chain on disk: completed
// super-fragments stream from builder units to a set of storage writer
// (SW) devices, striped by event id, each appending to an indexed
// on-disk segment.  The design follows the striped-server model of
// "Fast Parallel I/O on Cluster Computers": aggregate bandwidth comes
// from writing the event stream across N independent writers, each with
// its own disk queue, rather than from any single fast device.
//
// The write path is built to keep up with the event builder rather than
// throttle it accidentally:
//
//   - double-buffered arenas: events gather into one fixed arena while
//     the previous one is in write(2), so the disk and the copy overlap;
//   - zero-copy gather: a record's payload is copied once, straight from
//     the reassembled super-fragment SGL chain into the arena;
//   - no per-event allocations in steady state (the index and the
//     duplicate-filter bitset grow amortized and can be pre-sized);
//   - bounded queueing: when both arenas are busy the writer refuses the
//     append with ErrWriterFull, which wraps pta.ErrTransient so the
//     refusal propagates through the existing backpressure family —
//     SW nacks the builder unit, the BU stops requesting event grants,
//     the EVM stops granting, the readout units idle.
//
// Torn final records — the signature of a writer killed mid-stripe —
// are detected by checksum on reopen and truncated away; a replayed
// stream then restores the lost suffix, with the recovered duplicate
// filter dropping everything that survived.  See doc/storage.md.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"xdaq/internal/i2o"
	"xdaq/internal/pta"
)

// On-disk segment layout (all integers little-endian):
//
//	header   [8] magic "XDAQSEG1"  [4] version  [4] writer instance
//	records  ([4] size  [4] crc32c(payload)  [8] event id  [size] payload)*
//	index    ([8] event id  [8] record offset  [4] size)*
//	trailer  [8] index offset  [4] entry count  [4] crc32c(index)  [8] magic "XDAQIDX1"
//
// The index and trailer are written by Close; a segment without a valid
// trailer (crash, kill) is recovered by scanning records until the first
// torn or corrupt one and truncating there.
const (
	segMagic    = "XDAQSEG1"
	idxMagic    = "XDAQIDX1"
	segVersion  = 1
	headerSize  = 16
	recHdrSize  = 16
	idxEntSize  = 20
	trailerSize = 24

	// maxRecord bounds a record's payload during recovery scans, so a
	// corrupt size field cannot make the scanner try to load the rest of
	// the file as one record.
	maxRecord = 1 << 30
)

// castagnoli is the CRC-32C polynomial table (hardware-accelerated on
// amd64/arm64), shared by the writer hot path and the recovery scan.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Errors.
var (
	// ErrWriterFull reports that both arenas are busy: the disk is not
	// keeping up.  It wraps pta.ErrTransient, so it travels the same
	// retry/backpressure path as a full send ring.
	ErrWriterFull = fmt.Errorf("storage: writer full (%w)", pta.ErrTransient)

	// ErrDuplicate reports an event id the segment already holds.  The
	// append is refused but the event is durable — callers treat it as
	// success (it is how replay-after-recovery converges).
	ErrDuplicate = errors.New("storage: duplicate event")

	// ErrClosed reports use of a closed writer.
	ErrClosed = errors.New("storage: writer closed")

	// ErrCrashed reports use of a writer after Crash.
	ErrCrashed = errors.New("storage: writer crashed")

	// ErrCorrupt reports a segment whose header or a read-back record
	// fails validation.
	ErrCorrupt = errors.New("storage: corrupt segment")
)

// Private function codes of the storage device class, in the same
// private-code space as the daq codes (which stop at 9).
const (
	// XFuncWrite carries one event from a builder unit to a storage
	// writer as a chunked chain transfer: 8 bytes event id, then the
	// super-fragment payload.
	XFuncWrite uint16 = 10

	// XFuncWriteAck answers every completed write transfer with a
	// WriteAck record, one-way, to the transfer's initiator.
	XFuncWriteAck uint16 = 11
)

// Ack statuses.
const (
	// AckStored: the event is in the writer's arena or on disk.
	AckStored uint32 = 0

	// AckDup: the event was already stored; equivalent to AckStored for
	// the sender's bookkeeping.
	AckDup uint32 = 1

	// AckFull: both arenas busy — transient, resend after a delay.
	AckFull uint32 = 2

	// AckFail: the writer is failed or closed — permanent.
	AckFail uint32 = 3
)

// WriteAck is the reply record for one write transfer.
type WriteAck struct {
	Event  uint64
	Status uint32
}

// writeAckSize is the encoded length.
const writeAckSize = 12

// Encode appends the record to dst.
func (a WriteAck) Encode(dst []byte) []byte {
	var b [writeAckSize]byte
	binary.LittleEndian.PutUint64(b[0:], a.Event)
	binary.LittleEndian.PutUint32(b[8:], a.Status)
	return append(dst, b[:]...)
}

// DecodeWriteAck parses an ack payload.
func DecodeWriteAck(p []byte) (WriteAck, error) {
	if len(p) != writeAckSize {
		return WriteAck{}, fmt.Errorf("%w: write ack %d bytes, want %d", i2o.ErrTruncated, len(p), writeAckSize)
	}
	return WriteAck{
		Event:  binary.LittleEndian.Uint64(p[0:]),
		Status: binary.LittleEndian.Uint32(p[8:]),
	}, nil
}

// denseEvents bounds the bitset half of the duplicate filter: event ids
// below it cost one bit each; ids at or above it fall back to a sparse
// map.  Without the bound, a single huge id — a corrupted record header
// survives recovery because the checksum covers only the payload — would
// make the filter try to allocate id/8 bytes of bitset.
const denseEvents = 1 << 26

// eventSet is the duplicate filter.  Event ids are dense (the EVM
// allocates them sequentially from zero), so the common case is a small
// bitset that — unlike a map — costs no allocation per insert once
// grown, which the zero-alloc append path depends on.  Outliers beyond
// denseEvents land in the sparse overflow map.
type eventSet struct {
	words  []uint64
	sparse map[uint64]struct{}
}

// presize grows the dense words up front so appends up to n event ids
// need no filter allocation at all.
func (b *eventSet) presize(n uint64) {
	if n > denseEvents {
		n = denseEvents
	}
	idx := int(n >> 6)
	if idx >= len(b.words) {
		b.words = append(b.words, make([]uint64, idx+1-len(b.words))...)
	}
}

func (b *eventSet) set(n uint64) {
	if n >= denseEvents {
		if b.sparse == nil {
			b.sparse = make(map[uint64]struct{})
		}
		b.sparse[n] = struct{}{}
		return
	}
	idx := int(n >> 6)
	if idx >= len(b.words) {
		b.words = append(b.words, make([]uint64, idx+1-len(b.words))...)
	}
	b.words[idx] |= 1 << (n & 63)
}

func (b *eventSet) has(n uint64) bool {
	if n >= denseEvents {
		_, ok := b.sparse[n]
		return ok
	}
	idx := int(n >> 6)
	return idx < len(b.words) && b.words[idx]&(1<<(n&63)) != 0
}
